// Just-in-time service instantiation (§7.2): a VM boots when the
// first packet for a new client arrives, answers, and is torn down
// after the client goes idle. Prints the client-perceived latency
// distribution at several arrival rates.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"lightvm"
)

func main() {
	rates := []time.Duration{100 * time.Millisecond, 25 * time.Millisecond, 10 * time.Millisecond}
	const clients = 60

	for _, inter := range rates {
		host, err := lightvm.NewHost(lightvm.Xeon14, 42)
		if err != nil {
			log.Fatal(err)
		}
		img := lightvm.ClickOSFirewall()
		if err := host.EnsureFlavor(img, lightvm.ModeLightVM); err != nil {
			log.Fatal(err)
		}
		var rtts []time.Duration
		var vms []*lightvm.VM
		for k := 0; k < clients; k++ {
			// Open-loop arrivals: client k's first packet lands at
			// k×inter of virtual time; if the host is still busy
			// booting earlier services, this client queues behind
			// them.
			arrival := time.Duration(k) * inter
			if now := time.Duration(host.Clock.Now()); now < arrival {
				host.Clock.Sleep(arrival - now)
			}
			if err := host.Replenish(); err != nil {
				log.Fatal(err)
			}
			vm, err := host.CreateVM(lightvm.ModeLightVM, fmt.Sprintf("svc-%d-%d", inter/time.Millisecond, k), img)
			if err != nil {
				log.Fatal(err)
			}
			vms = append(vms, vm)
			// The queued first packet is answered the moment the
			// service stack is up.
			ready := time.Duration(host.Clock.Now())
			rtts = append(rtts, ready-arrival)
		}
		// Idle services are torn down after the run (2s inactivity in
		// the paper's prototype).
		for _, vm := range vms {
			if err := host.DestroyVM(vm); err != nil {
				log.Fatal(err)
			}
		}
		sort.Slice(rtts, func(i, j int) bool { return rtts[i] < rtts[j] })
		fmt.Printf("inter-arrival %5v: median %10v   p90 %10v   max %10v\n",
			inter, rtts[len(rtts)/2], rtts[len(rtts)*9/10], rtts[len(rtts)-1])
	}
	fmt.Println("\npaper @25ms arrivals: median 13ms, p90 20ms; overload appears only at 10ms")
}
