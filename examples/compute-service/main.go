// Lightweight compute service (§7.4): an Amazon-Lambda-like endpoint
// that spawns a Minipython unikernel per request, runs the submitted
// program on a real interpreter, and tears the VM down afterwards.
package main

import (
	"fmt"
	"log"
	"strings"

	"lightvm"
)

// jobs a tenant might submit: the paper's e-approximation plus a few
// more programs, all executed by the embedded MicroPython-subset
// interpreter.
var jobs = []struct {
	name    string
	program string
}{
	{"approx-e", lightvm.ApproxEProgram},
	{"fibonacci", `
def fib(n):
    if n < 2:
        return n
    return fib(n - 1) + fib(n - 2)
print(fib(18))
`},
	{"primes", `
count = 0
for n in range(2, 200):
    is_prime = True
    d = 2
    while d * d <= n:
        if n % d == 0:
            is_prime = False
            break
        d += 1
    if is_prime:
        count += 1
print(count, 'primes below 200')
`},
	{"wordcount", `
words = ['vm', 'container', 'vm', 'unikernel', 'vm']
total = 0
for w in words:
    if w == 'vm':
        total += 1
print('vm appears', total, 'times')
`},
}

func main() {
	host, err := lightvm.NewHost(lightvm.Xeon4, 3)
	if err != nil {
		log.Fatal(err)
	}
	img := lightvm.Minipython()
	if err := host.EnsureFlavor(img, lightvm.ModeLightVM); err != nil {
		log.Fatal(err)
	}

	fmt.Println("lightweight compute service: one Minipython unikernel per request")
	for i, job := range jobs {
		if err := host.Replenish(); err != nil {
			log.Fatal(err)
		}
		vm, err := host.CreateVM(lightvm.ModeLightVM, fmt.Sprintf("fn-%d", i), img)
		if err != nil {
			log.Fatal(err)
		}
		out, err := lightvm.RunPython(job.program)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s vm up in %8v → %s\n",
			job.name, vm.CreateTime+vm.BootTime, strings.TrimSpace(out))
		if err := host.DestroyVM(vm); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("\npaper: VM creation stays ~1.3ms with the split toolstack even with hundreds of backlogged requests")
}
