// Tinyx image builds (§3.2): assemble minimalistic Linux images for
// several applications and compare their footprints to the paper's
// figures (a Tinyx image is ~10MB vs a 1.1GB Debian).
package main

import (
	"fmt"
	"log"

	"lightvm"
)

func main() {
	apps := []string{"nginx", "micropython", "redis-server", "tls-proxy"}
	fmt.Println("tinyx image builds (kernel shrunk from tinyconfig behind a boot test):")
	for _, app := range apps {
		res, err := lightvm.BuildTinyx(app, "xen")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s:\n", app)
		fmt.Printf("  packages:  %v\n", res.Packages)
		fmt.Printf("  distro:    %6.2f MB in %d files\n",
			float64(res.DistroBytes)/(1<<20), res.Distribution.NumFiles())
		fmt.Printf("  kernel:    %6.2f MB (dropped %d options in %d rebuilds)\n",
			float64(res.KernelBytes)/(1<<20), len(res.Kernel.Dropped), res.Kernel.Rebuilds)
		fmt.Printf("  image:     %6.2f MB\n", float64(res.ImageBytes)/(1<<20))
	}
	deb := lightvm.DebianMinimal()
	fmt.Printf("\nfor comparison, the Debian reference image: %.0f MB on disk, %.0f MB RAM\n",
		float64(deb.SizeBytes)/(1<<20), float64(deb.MemBytes)/(1<<20))
}
