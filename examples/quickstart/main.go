// Quickstart: boot the same unikernel with every toolstack the paper
// compares (Fig. 9) and print the virtual-time cost of each — the
// two-orders-of-magnitude gap between stock xl and LightVM in about
// forty lines.
package main

import (
	"fmt"
	"log"

	"lightvm"
)

func main() {
	modes := []lightvm.Mode{
		lightvm.ModeXL, lightvm.ModeChaosXS, lightvm.ModeChaosSplit,
		lightvm.ModeChaosNoXS, lightvm.ModeLightVM,
	}
	img := lightvm.Daytime()
	fmt.Printf("booting the daytime unikernel (%d KB image, %.1f MB RAM) with each toolstack:\n\n",
		img.SizeBytes/1024, float64(img.MemBytes)/(1<<20))

	for _, mode := range modes {
		// Each configuration gets its own pristine 4-core host, as in
		// the paper's per-curve runs.
		host, err := lightvm.NewHost(lightvm.Xeon4, 1)
		if err != nil {
			log.Fatal(err)
		}
		// The chaos daemon pre-creates domain shells for split modes.
		if err := host.EnsureFlavor(img, mode); err != nil {
			log.Fatal(err)
		}
		vm, err := host.CreateVM(mode, "hello", img)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-18s create %8v  +  boot %8v  =  %v\n",
			mode, vm.CreateTime, vm.BootTime, vm.CreateTime+vm.BootTime)
		if err := host.DestroyVM(vm); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("\nfor reference, the noop unikernel (no devices) on LightVM:")
	host, err := lightvm.NewHost(lightvm.Xeon4, 1)
	if err != nil {
		log.Fatal(err)
	}
	if err := host.EnsureFlavor(lightvm.Noop(), lightvm.ModeLightVM); err != nil {
		log.Fatal(err)
	}
	vm, err := host.CreateVM(lightvm.ModeLightVM, "noop", lightvm.Noop())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-18s create %8v  +  boot %8v  =  %v   (paper: 2.3ms)\n",
		"LightVM", vm.CreateTime, vm.BootTime, vm.CreateTime+vm.BootTime)
}
