// Firewall at the mobile edge (§7.1): per-subscriber ClickOS firewall
// VMs at a cell site. Subscribers attach (VM boots in ~10 ms), their
// traffic is filtered by a real rule engine, and when a subscriber
// moves to the next cell their firewall VM migrates with them.
package main

import (
	"fmt"
	"log"

	"lightvm"
)

func main() {
	clock := lightvm.NewClock()
	// Two cell sites, each a modest edge machine.
	cellA, err := lightvm.NewHostOn(clock, lightvm.Xeon14, 1)
	if err != nil {
		log.Fatal(err)
	}
	cellB, err := lightvm.NewHostOn(clock, lightvm.Xeon14, 2)
	if err != nil {
		log.Fatal(err)
	}
	img := lightvm.ClickOSFirewall()
	if err := cellA.EnsureFlavor(img, lightvm.ModeLightVM); err != nil {
		log.Fatal(err)
	}

	// Subscribers attach to cell A: one firewall VM each.
	const subscribers = 20
	vms := make([]*lightvm.VM, subscribers)
	fws := make([]*lightvm.Firewall, subscribers)
	for i := range vms {
		if err := cellA.Replenish(); err != nil {
			log.Fatal(err)
		}
		vm, err := cellA.CreateVM(lightvm.ModeLightVM, fmt.Sprintf("fw-sub%02d", i), img)
		if err != nil {
			log.Fatal(err)
		}
		vms[i] = vm
		fw, err := lightvm.NewPersonalFirewall(
			fmt.Sprintf("10.0.%d.0/24", i),              // the subscriber's range
			[]string{"203.0.113.0/24", "198.18.0.0/15"}, // their blocklist
		)
		if err != nil {
			log.Fatal(err)
		}
		fws[i] = fw
		if i == 0 {
			fmt.Printf("subscriber firewall boots in %v (paper: ~10ms)\n",
				vm.CreateTime+vm.BootTime)
		}
	}
	fmt.Printf("%d personal firewalls running on cell A, %.1f MB of host RAM total\n",
		subscribers, float64(cellA.MemoryUsedBytes())/(1<<20))

	// Traffic through subscriber 3's firewall.
	fw := fws[3]
	cases := []struct {
		src, dst string
		port     int
	}{
		{"10.0.3.15", "151.101.1.1", 443}, // normal browsing
		{"203.0.113.50", "10.0.3.15", 22}, // blocklisted scanner
		{"198.18.0.9", "10.0.3.15", 80},   // benchmark-range junk
	}
	for _, c := range cases {
		verdict, err := fw.FilterStrings(c.src, c.dst, c.port)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %15s → %-15s :%-4d  %v\n", c.src, c.dst, c.port, verdict)
	}

	// Subscriber 3 drives to the next cell: the firewall follows.
	moved, d, err := cellA.MigrateTo(cellB, vms[3])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("subscriber 3 handed over: %s migrated A→B in %v (paper: ~150ms over 1Gbps/10ms)\n",
		moved.Name, d)
	fmt.Printf("cell A now runs %d firewalls, cell B runs %d\n", cellA.VMs(), cellB.VMs())
}
