// Edge-cluster operations (§7.1 at fleet scale): several cell-site
// machines share one timeline; subscriber firewalls are placed on the
// least-loaded cell, follow subscribers between cells via live
// migration, and the fleet rebalances itself after churn.
package main

import (
	"fmt"
	"log"

	"lightvm"
)

func main() {
	clock := lightvm.NewClock()
	fleet := lightvm.NewCluster(clock)
	for _, cell := range []string{"cell-north", "cell-south", "cell-west"} {
		if _, err := fleet.AddHost(cell, lightvm.Xeon14, 1); err != nil {
			log.Fatal(err)
		}
	}

	// 30 subscribers attach; the cluster spreads their firewalls.
	img := lightvm.ClickOSFirewall()
	for i := 0; i < 30; i++ {
		name := fmt.Sprintf("fw-sub%02d", i)
		if _, _, err := fleet.Place(lightvm.ModeChaosNoXS, name, img); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("after attach:")
	printStats(fleet)

	// Rush hour: the subscribers currently on the north cell drive
	// south.
	var totalMS float64
	moved := 0
	for i := 0; i < 10; i++ {
		name := fmt.Sprintf("fw-sub%02d", i)
		if host, _ := fleet.HostOf(name); host != "cell-north" {
			continue
		}
		d, err := fleet.Move(name, "cell-south")
		if err != nil {
			log.Fatal(err)
		}
		totalMS += d.Seconds() * 1000
		moved++
	}
	fmt.Printf("\n%d handover migrations done (avg %.1f ms each); after the rush:\n", moved, totalMS/float64(moved))
	printStats(fleet)

	// The fleet rebalances itself.
	moves, err := fleet.Rebalance(20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrebalanced with %d migrations:\n", moves)
	printStats(fleet)
}

func printStats(fleet *lightvm.Cluster) {
	for _, st := range fleet.Stats() {
		fmt.Printf("  %-12s %2d VMs  %8.1f MB  %5.2f%% CPU\n",
			st.Name, st.VMs, st.MemoryMB, st.CPU*100)
	}
}
