// High-density TLS termination (§7.3): a CDN node terminates HTTPS
// for many content providers, one isolated VM per customer key. The
// example runs real handshake state machines on both guest stacks and
// shows the lwip-vs-Linux throughput trade-off the paper measures.
package main

import (
	"fmt"
	"log"

	"lightvm"
)

func main() {
	host, err := lightvm.NewHost(lightvm.Xeon14, 7)
	if err != nil {
		log.Fatal(err)
	}

	// A few customers on unikernel terminators, a few on Tinyx.
	uniImg := lightvm.TLSUnikernel()
	txImg := lightvm.TinyxTLS()
	if err := host.EnsureFlavor(uniImg, lightvm.ModeLightVM); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := host.Replenish(); err != nil {
			log.Fatal(err)
		}
		vm, err := host.CreateVM(lightvm.ModeLightVM, fmt.Sprintf("tls-uni-%d", i), uniImg)
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("unikernel terminator boots in %v, %d MB RAM (paper: 6ms, 16MB)\n",
				vm.CreateTime+vm.BootTime, vm.Image.MemBytes>>20)
		}
	}
	vmTx, err := host.CreateVM(lightvm.ModeChaosNoXS, "tls-tinyx", txImg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tinyx terminator boots in %v, %d MB RAM (paper: 190ms, 40MB)\n\n",
		vmTx.CreateTime+vmTx.BootTime, vmTx.Image.MemBytes>>20)

	// Terminate a batch of HTTPS requests on each stack and compare
	// the per-request CPU cost (1024-bit RSA dominates).
	for _, cfg := range []struct {
		label string
		stack lightvm.NetStack
	}{
		{"tinyx / linux-tcp", lightvm.LinuxTCP},
		{"unikernel / lwip ", lightvm.Lwip},
	} {
		term := lightvm.NewTLSTerminator(host, cfg.stack)
		start := host.Clock.Now()
		const reqs = 50
		for i := 0; i < reqs; i++ {
			if _, err := term.ServeRequest(); err != nil {
				log.Fatal(err)
			}
		}
		elapsed := host.Clock.Now().Sub(start)
		perReq := elapsed / reqs
		fmt.Printf("%s: %d requests, %v CPU each → %.0f req/s/core, ~%.0f req/s on 13 guest cores\n",
			cfg.label, reqs, perReq, 1/perReq.Seconds(), 13/perReq.Seconds())
	}
	fmt.Println("\npaper: ~1400 req/s for Tinyx ≈ bare metal; the lwip unikernel reaches ~1/5 of that")
}
