package lightvm_test

import (
	"fmt"
	"strings"

	"lightvm"
)

// ExampleNewHost boots the daytime unikernel through the full LightVM
// control plane and prints its (virtual-time) cost.
func ExampleNewHost() {
	host, err := lightvm.NewHost(lightvm.Xeon4, 1)
	if err != nil {
		panic(err)
	}
	img := lightvm.Daytime()
	if err := host.EnsureFlavor(img, lightvm.ModeLightVM); err != nil {
		panic(err)
	}
	vm, err := host.CreateVM(lightvm.ModeLightVM, "web1", img)
	if err != nil {
		panic(err)
	}
	fmt.Printf("create+boot: %v\n", vm.CreateTime+vm.BootTime)
	// Output: create+boot: 4.785312ms
}

// ExampleRunPython executes the paper's compute-service payload.
func ExampleRunPython() {
	out, err := lightvm.RunPython(lightvm.ApproxEProgram)
	if err != nil {
		panic(err)
	}
	fmt.Print(out)
	// Output: 2.7182818284590455
}

// ExampleBuildTinyx assembles a Tinyx image for nginx.
func ExampleBuildTinyx() {
	res, err := lightvm.BuildTinyx("nginx", "xen")
	if err != nil {
		panic(err)
	}
	fmt.Printf("packages: %v\n", res.Packages)
	fmt.Printf("kernel dropped: %v\n", res.Kernel.Dropped)
	// Output:
	// packages: [busybox libc6 libpcre3 libssl nginx nginx-common zlib1g]
	// kernel dropped: [CRYPTO DEBUG_INFO EXT4_FS IPV6 NETFILTER PCI SWAP]
}

// ExampleParseVMConfig parses an xl-format guest configuration.
func ExampleParseVMConfig() {
	cfg, err := lightvm.ParseVMConfig(strings.TrimSpace(`
name   = "web1"
kernel = "daytime"
memory = 16
`))
	if err != nil {
		panic(err)
	}
	img, err := cfg.ResolveImage()
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s with %d MB\n", img.Name, img.MemBytes>>20)
	// Output: daytime with 16 MB
}
