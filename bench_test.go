package lightvm_test

import (
	"fmt"
	"testing"

	"lightvm"
	"lightvm/internal/devd"
	"lightvm/internal/sim"
	"lightvm/internal/xenstore"
)

// Figure/table benchmarks: each iteration regenerates one paper figure
// end-to-end (system construction, workload, measurement). benchScale
// trades fidelity for wall-clock time; `go run ./cmd/lightvm-bench
// -scale 1.0` reproduces the full paper-scale tables.
const benchScale = 0.25

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := lightvm.RunExperiment(id, benchScale, uint64(i)+1)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(res.Output) == 0 {
			b.Fatalf("%s produced no output", id)
		}
	}
}

func BenchmarkFig01SyscallGrowth(b *testing.B)       { benchExperiment(b, "fig01") }
func BenchmarkFig02BootVsImageSize(b *testing.B)     { benchExperiment(b, "fig02") }
func BenchmarkFig04CreateBootByGuest(b *testing.B)   { benchExperiment(b, "fig04") }
func BenchmarkFig05CreationBreakdown(b *testing.B)   { benchExperiment(b, "fig05") }
func BenchmarkFig09ToolstackComparison(b *testing.B) { benchExperiment(b, "fig09") }
func BenchmarkFig10DensityVsDocker(b *testing.B)     { benchExperiment(b, "fig10") }
func BenchmarkFig11BootUnderLoad(b *testing.B)       { benchExperiment(b, "fig11") }
func BenchmarkFig12aSave(b *testing.B)               { benchExperiment(b, "fig12a") }
func BenchmarkFig12bRestore(b *testing.B)            { benchExperiment(b, "fig12b") }
func BenchmarkFig13Migration(b *testing.B)           { benchExperiment(b, "fig13") }
func BenchmarkFig14MemoryFootprint(b *testing.B)     { benchExperiment(b, "fig14") }
func BenchmarkFig15CPUUsage(b *testing.B)            { benchExperiment(b, "fig15") }
func BenchmarkFig16aFirewalls(b *testing.B)          { benchExperiment(b, "fig16a") }
func BenchmarkFig16bJITInstantiation(b *testing.B)   { benchExperiment(b, "fig16b") }
func BenchmarkFig16cTLSTermination(b *testing.B)     { benchExperiment(b, "fig16c") }
func BenchmarkFig17ComputeService(b *testing.B)      { benchExperiment(b, "fig17") }
func BenchmarkFig18ConcurrentVMs(b *testing.B)       { benchExperiment(b, "fig18") }
func BenchmarkGuestTable(b *testing.B)               { benchExperiment(b, "tbl-guests") }

// ---------------------------------------------------------------------------
// Micro-benchmarks of the primitives the paper's claims rest on.
// ---------------------------------------------------------------------------

// BenchmarkCreateLightVM measures one full create+boot+destroy cycle
// through the complete LightVM control plane (the 2.3 ms headline is
// virtual time; this measures the simulator's real cost).
func BenchmarkCreateLightVM(b *testing.B) {
	host, err := lightvm.NewHost(lightvm.Xeon4, 1)
	if err != nil {
		b.Fatal(err)
	}
	img := lightvm.Noop()
	if err := host.EnsureFlavor(img, lightvm.ModeLightVM); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := host.Replenish(); err != nil {
			b.Fatal(err)
		}
		vm, err := host.CreateVM(lightvm.ModeLightVM, "bench", img)
		if err != nil {
			b.Fatal(err)
		}
		if err := host.DestroyVM(vm); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCreateXL is the same cycle through the stock toolstack.
func BenchmarkCreateXL(b *testing.B) {
	host, err := lightvm.NewHost(lightvm.Xeon4, 1)
	if err != nil {
		b.Fatal(err)
	}
	img := lightvm.Daytime()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vm, err := host.CreateVM(lightvm.ModeXL, "bench", img)
		if err != nil {
			b.Fatal(err)
		}
		if err := host.DestroyVM(vm); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Ablation benches for the design choices DESIGN.md calls out. These
// report the *virtual-time* cost per operation via custom metrics, so
// the ablation's effect is visible directly in the bench output.
// ---------------------------------------------------------------------------

// BenchmarkAblationHotplug compares bash hotplug scripts vs xendevd
// (§5.3) on the same switch plumbing.
func BenchmarkAblationHotplug(b *testing.B) {
	run := func(b *testing.B, hp func(*sim.Clock) devd.Hotplug) {
		clock := sim.NewClock()
		h := hp(clock)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := h.Setup("vif1.0"); err != nil {
				b.Fatal(err)
			}
			if err := h.Teardown("vif1.0"); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(clock.Now().Seconds()/float64(b.N)*1e3, "virt-ms/op")
	}
	b.Run("bash-scripts", func(b *testing.B) {
		run(b, func(c *sim.Clock) devd.Hotplug {
			return &devd.BashScripts{Clock: c, Bridge: &devd.NullBridge{}}
		})
	})
	b.Run("xendevd", func(b *testing.B) {
		run(b, func(c *sim.Clock) devd.Hotplug {
			return &devd.Xendevd{Clock: c, Bridge: &devd.NullBridge{}}
		})
	})
}

// BenchmarkAblationLogRotation measures XenStore op cost with the
// 20-file access log enabled (stock oxenstored) vs disabled.
func BenchmarkAblationLogRotation(b *testing.B) {
	run := func(b *testing.B, logging bool) {
		clock := sim.NewClock()
		s := xenstore.New(clock)
		s.LoggingEnabled = logging
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Write("/local/domain/1/k", "v")
		}
		b.ReportMetric(clock.Now().Seconds()/float64(b.N)*1e6, "virt-us/op")
	}
	b.Run("logging-on", func(b *testing.B) { run(b, true) })
	b.Run("logging-off", func(b *testing.B) { run(b, false) })
}

// BenchmarkAblationPoolDepth measures LightVM creation with different
// shell-pool depths: 0 forces inline prepares on every create.
func BenchmarkAblationPoolDepth(b *testing.B) {
	for _, depth := range []int{0, 1, 8, 64} {
		b.Run(fmt.Sprintf("depth-%d", depth), func(b *testing.B) {
			host, err := lightvm.NewHost(lightvm.Xeon4, 1)
			if err != nil {
				b.Fatal(err)
			}
			host.Env.Pool.SetTarget(depth)
			img := lightvm.Noop()
			if depth > 0 {
				if err := host.EnsureFlavor(img, lightvm.ModeLightVM); err != nil {
					b.Fatal(err)
				}
			}
			var createSum float64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if depth > 0 {
					if err := host.Replenish(); err != nil {
						b.Fatal(err)
					}
				}
				vm, err := host.CreateVM(lightvm.ModeLightVM, "bench", img)
				if err != nil {
					b.Fatal(err)
				}
				createSum += vm.CreateTime.Seconds()
				if err := host.DestroyVM(vm); err != nil {
					b.Fatal(err)
				}
			}
			// The split toolstack's point: create latency collapses
			// once a shell is waiting in the pool.
			b.ReportMetric(createSum/float64(b.N)*1e3, "create-virt-ms")
		})
	}
}

// BenchmarkAblationMemDedup measures per-guest memory with the §9
// page-sharing extension off and on (reported as MB/guest).
func BenchmarkAblationMemDedup(b *testing.B) {
	for _, dedup := range []bool{false, true} {
		name := "off"
		if dedup {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var perGuestMB float64
			for i := 0; i < b.N; i++ {
				host, err := lightvm.NewHost(lightvm.Xeon4, 1)
				if err != nil {
					b.Fatal(err)
				}
				if dedup {
					host.EnableMemDedup()
				}
				base := host.MemoryUsedBytes()
				const guests = 50
				for g := 0; g < guests; g++ {
					if _, err := host.CreateVM(lightvm.ModeChaosNoXS, fmt.Sprintf("g%d", g), lightvm.Minipython()); err != nil {
						b.Fatal(err)
					}
				}
				perGuestMB = float64(host.MemoryUsedBytes()-base) / guests / (1 << 20)
			}
			b.ReportMetric(perGuestMB, "MB/guest")
		})
	}
}

// BenchmarkXenStoreTxn measures transaction throughput on the real
// store implementation.
func BenchmarkXenStoreTxn(b *testing.B) {
	clock := sim.NewClock()
	s := xenstore.New(clock)
	s.LoggingEnabled = false
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		err := s.Txn(4, func(tx *xenstore.Tx) error {
			tx.Write("/local/domain/9/device/vif/0/state", "4")
			tx.Write("/local/domain/9/name", "bench")
			_, _ = tx.Read("/local/domain/9/name")
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMinipy measures the interpreter on the paper's §7.4 job.
func BenchmarkMinipy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := lightvm.RunPython(lightvm.ApproxEProgram); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTinyxBuild measures a full Tinyx image build.
func BenchmarkTinyxBuild(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := lightvm.BuildTinyx("nginx", "xen"); err != nil {
			b.Fatal(err)
		}
	}
}
