GO ?= go

.PHONY: build test verify race bench bench-smoke clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Tier-1 gate: build + vet + full tests, then the race detector over
# the packages the parallel engine touches.
verify: build
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race ./internal/experiments ./internal/xenstore ./internal/sim

race:
	$(GO) test -race ./...

# Full-scale replay of every figure with a JSON timing report.
bench:
	$(GO) run ./cmd/lightvm-bench -exp all -parallel 0 -json

# Quick end-to-end pass at 5% scale — exercises every generator, the
# worker pool and the JSON report in a few seconds.
bench-smoke:
	$(GO) run ./cmd/lightvm-bench -exp all -scale 0.05 -parallel 0 -json

clean:
	rm -f BENCH_*.json
