GO ?= go

.PHONY: build test verify verify-race race fuzz-smoke cover-xenstore bench bench-smoke clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Tier-1 gate: build + vet + full tests, then the race detector over
# the packages the parallel engine touches.
verify: build
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race ./internal/experiments ./internal/xenstore ./internal/sim

# Full gate with the race detector over every package (slower than
# `verify`, which races only the concurrency-bearing ones).
verify-race: build
	$(GO) vet ./...
	$(GO) test -race ./...

race:
	$(GO) test -race ./...

# 20-second smoke of each xenstore fuzz target (native Go fuzzing,
# seeded by the checked-in corpora under
# internal/xenstore/testdata/fuzz plus the f.Add seeds).
fuzz-smoke:
	$(GO) test ./internal/xenstore -run '^$$' -fuzz '^FuzzPath$$' -fuzztime 20s
	$(GO) test ./internal/xenstore -run '^$$' -fuzz '^FuzzSnapshotRoundTrip$$' -fuzztime 20s

# Line-coverage gate for the store: the unit suite plus the
# model-checking harness must keep internal/xenstore at or above 80%.
cover-xenstore:
	$(GO) test ./internal/xenstore -coverprofile=xenstore.cover > /dev/null
	@$(GO) tool cover -func=xenstore.cover | awk '/^total:/ { print "xenstore line coverage: " $$3; if ($$3 + 0 < 80) { print "FAIL: below the 80% gate"; exit 1 } }'
	@rm -f xenstore.cover

# Full-scale replay of every figure with a JSON timing report.
bench:
	$(GO) run ./cmd/lightvm-bench -exp all -parallel 0 -json

# Quick end-to-end pass at 5% scale — exercises every generator, the
# worker pool and the JSON report in a few seconds. The extra
# ext-faults line runs the fault-injection sweep at tiny scale with a
# distinct seed, so the recovery paths get an end-to-end shake too.
bench-smoke:
	$(GO) run ./cmd/lightvm-bench -exp all -scale 0.05 -parallel 0 -json
	$(GO) run ./cmd/lightvm-bench -exp ext-faults -scale 0.02 -seed 7 -parallel 0

clean:
	rm -f BENCH_*.json
