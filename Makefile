GO ?= go

.PHONY: build test verify verify-race race fuzz-smoke cover-xenstore cover-html bench bench-smoke bench-compare profile-smoke fsck-smoke gray-smoke cluster-smoke serve-smoke overload-smoke clean

# Newest checked-in benchmark report; bench-compare reruns its figures
# and fails on regression. Override with BASELINE=path to pin another.
BASELINE ?= $(lastword $(sort $(wildcard BENCH_*.json)))

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Tier-1 gate: build + vet + full tests (including the xenstore alloc
# budgets in internal/xenstore/alloc_test.go), then the race detector
# over the packages the parallel engine touches, then the benchmark
# regression gate against the checked-in baseline report.
verify: build
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race ./internal/experiments ./internal/xenstore ./internal/sim ./internal/profiling ./internal/cluster ./internal/toolstack ./internal/traffic ./cmd/lightvm-bench
	$(MAKE) bench-compare

# Full gate with the race detector over every package (slower than
# `verify`, which races only the concurrency-bearing ones).
verify-race: build
	$(GO) vet ./...
	$(GO) test -race ./...

race:
	$(GO) test -race ./...

# 20-second smoke of each xenstore fuzz target (native Go fuzzing,
# seeded by the checked-in corpora under
# internal/xenstore/testdata/fuzz plus the f.Add seeds).
fuzz-smoke:
	$(GO) test ./internal/xenstore -run '^$$' -fuzz '^FuzzPath$$' -fuzztime 20s
	$(GO) test ./internal/xenstore -run '^$$' -fuzz '^FuzzSnapshotRoundTrip$$' -fuzztime 20s

# Line-coverage gate for the store: the unit suite plus the
# model-checking harness must keep internal/xenstore at or above 80%.
cover-xenstore:
	$(GO) test ./internal/xenstore -coverprofile=xenstore.cover > /dev/null
	@$(GO) tool cover -func=xenstore.cover | awk '/^total:/ { print "xenstore line coverage: " $$3; if ($$3 + 0 < 80) { print "FAIL: below the 80% gate"; exit 1 } }'
	@rm -f xenstore.cover

# Coverage HTML for the xenstore suite (uploaded as a CI artifact).
cover-html:
	$(GO) test ./internal/xenstore -coverprofile=xenstore.cover > /dev/null
	$(GO) tool cover -html=xenstore.cover -o coverage-xenstore.html
	@rm -f xenstore.cover

# Profiling smoke: one store-heavy figure at small scale with CPU+heap
# capture. Asserts both pprof files were written non-empty and that the
# JSON report carries the subsystem attribution block.
profile-smoke:
	$(GO) run ./cmd/lightvm-bench -exp fig12a -scale 0.05 -parallel 1 \
		-profile=cpu,heap -profile-dir profiles -json -out profiles/profile-smoke.json
	@for f in profiles/fig12a.cpu.pb.gz profiles/fig12a.heap.pb.gz; do \
		[ -s $$f ] || { echo "FAIL: $$f missing or empty"; exit 1; }; \
	done
	@grep -q '"heap_delta_bytes"' profiles/profile-smoke.json \
		|| { echo "FAIL: no attribution block in profiles/profile-smoke.json"; exit 1; }
	@echo "profile-smoke: per-figure profiles and attribution OK"

# Crash-consistency gate: run the churn figure (which injects
# toolstack crashes at every labeled crash point) and then audit every
# environment the run built with the cross-layer invariant checker.
# Any violation makes lightvm-bench exit non-zero. Also asserts the
# JSON report carries the per-crash-point counters.
fsck-smoke:
	$(GO) run ./cmd/lightvm-bench -exp ext-churn -scale 0.05 -seed 2 -parallel 1 \
		-fsck -json -out fsck-smoke.json
	@grep -q '"crash_sites"' fsck-smoke.json \
		|| { echo "FAIL: no crash_sites block in fsck-smoke.json"; exit 1; }
	@grep -q '"fsck"' fsck-smoke.json \
		|| { echo "FAIL: no fsck block in fsck-smoke.json"; exit 1; }
	@rm -f fsck-smoke.json
	@echo "fsck-smoke: crash churn scrubbed to zero violations"

# Gray-failure gate: one small ext-gray cell (heartbeat detection,
# lease-fenced failover) plus the cross-layer fsck audit. The generator
# itself enforces zero double-starts and zero lease violations per
# cell — a split-brain or a dirty post-drain state fails the command —
# and -fsck re-audits every environment the run built.
gray-smoke:
	$(GO) run ./cmd/lightvm-bench -exp ext-gray -scale 0.05 -seed 3 -parallel 1 \
		-fsck -json -out gray-smoke.json
	@grep -q '"fsck"' gray-smoke.json \
		|| { echo "FAIL: no fsck block in gray-smoke.json"; exit 1; }
	@rm -f gray-smoke.json
	@echo "gray-smoke: fenced failover with zero double-starts"

# Sharded-cluster gate: ext-cluster at small scale — the full
# controller/agent protocol (placement waves, heartbeat-detected
# failover, fenced re-placement, live migration) on the parallel
# engine, swept over worker counts 1/2/8 with the in-run byte-equality
# check, then the cross-layer fsck audit over every environment the
# run built. Determinism or invariant violations fail the command.
cluster-smoke:
	$(GO) run ./cmd/lightvm-bench -exp ext-cluster -scale 0.02 -seed 1 -parallel 1 -fsck
	@echo "cluster-smoke: sharded churn byte-identical across engine worker counts"

# Open-loop serving gate: one small ext-serve run — seeded arrival
# processes driving per-request unikernels, warm pools (reactive and
# predictive), container and process baselines — with the generator's
# own p99 ordering gate (warm pool < cold VM < container on
# boot-dominated cells) and the cross-layer fsck audit over every host
# the run built.
serve-smoke:
	$(GO) run ./cmd/lightvm-bench -exp ext-serve -scale 0.05 -seed 1 -parallel 1 -fsck
	@echo "serve-smoke: tail ordering holds; hosts fsck clean"

# Overload gate: one small ext-overload run — offered load swept
# through and past each mode's calibrated capacity with the retry
# storm armed. The generator itself asserts the metastability
# signature (defenses off: post-burst goodput collapses below half of
# pre-burst; defenses on: it recovers to >= 95% with a bounded p99),
# so a recovery failure fails the command; -fsck re-audits every host
# the run built.
overload-smoke:
	$(GO) run ./cmd/lightvm-bench -exp ext-overload -scale 0.05 -seed 1 -parallel 1 -fsck
	@echo "overload-smoke: metastable collapse reproduced and defended; hosts fsck clean"

# Full-scale replay of every figure with a JSON timing report.
bench:
	$(GO) run ./cmd/lightvm-bench -exp all -parallel 0 -json

# Quick end-to-end pass at 5% scale — exercises every generator, the
# worker pool and the JSON report in a few seconds. The extra
# ext-faults line runs the fault-injection sweep at tiny scale with a
# distinct seed, so the recovery paths get an end-to-end shake too.
bench-smoke:
	$(GO) run ./cmd/lightvm-bench -exp all -scale 0.05 -parallel 0 -json
	$(GO) run ./cmd/lightvm-bench -exp ext-faults -scale 0.02 -seed 7 -parallel 0

# Regression gate: replay every figure at smoke scale with the same
# seed as the checked-in baseline and diff the two reports with
# cmd/benchdiff. Sequential (-parallel 1) so allocation counts are
# exact rather than sampled; the wall threshold is generous because CI
# runners jitter, while allocation counts are deterministic and gated
# tightly.
# -shards 2 pins the sharded-cluster figures to one engine worker
# count: their tables are identical at every count (gated elsewhere),
# and skipping the in-run 1/2/8 sweep keeps the gate fast.
bench-compare:
	@[ -n "$(BASELINE)" ] || { echo "bench-compare: no BENCH_*.json baseline checked in"; exit 1; }
	@echo "bench-compare: baseline $(BASELINE)"
	$(GO) run ./cmd/lightvm-bench -exp all -scale 0.05 -seed 1 -parallel 1 -shards 2 -json -out bench-fresh.json
	$(GO) run ./cmd/benchdiff -max-wall 75 -max-alloc 10 $(BASELINE) bench-fresh.json
	@rm -f bench-fresh.json

clean:
	rm -f *.cover coverage-xenstore.html fsck-smoke.json gray-smoke.json bench-fresh.json
	rm -rf profiles
