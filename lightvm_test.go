package lightvm_test

import (
	"strings"
	"testing"
	"time"

	"lightvm"
)

func TestQuickstartFlow(t *testing.T) {
	host, err := lightvm.NewHost(lightvm.Xeon4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := host.EnsureFlavor(lightvm.Daytime(), lightvm.ModeLightVM); err != nil {
		t.Fatal(err)
	}
	vm, err := host.CreateVM(lightvm.ModeLightVM, "web1", lightvm.Daytime())
	if err != nil {
		t.Fatal(err)
	}
	total := vm.CreateTime + vm.BootTime
	if total > 8*time.Millisecond {
		t.Fatalf("LightVM daytime create+boot = %v, want a few ms", total)
	}
	if err := host.DestroyVM(vm); err != nil {
		t.Fatal(err)
	}
}

func TestMigrationAcrossHosts(t *testing.T) {
	clock := lightvm.NewClock()
	src, err := lightvm.NewHostOn(clock, lightvm.Xeon4Ckpt, 1)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := lightvm.NewHostOn(clock, lightvm.Xeon4Ckpt, 2)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := src.CreateVM(lightvm.ModeChaosNoXS, "mover", lightvm.Daytime())
	if err != nil {
		t.Fatal(err)
	}
	moved, d, err := src.MigrateTo(dst, vm)
	if err != nil {
		t.Fatal(err)
	}
	if moved.Name != "mover" || d <= 0 {
		t.Fatalf("migration: %v %v", moved.Name, d)
	}
}

func TestExperimentListing(t *testing.T) {
	ids := lightvm.Experiments()
	if len(ids) < 17 {
		t.Fatalf("only %d experiments registered", len(ids))
	}
}

func TestRunExperimentSmall(t *testing.T) {
	res, err := lightvm.RunExperiment("fig09", 0.03, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "fig09" || res.Paper == "" {
		t.Fatalf("metadata: %+v", res)
	}
	for _, want := range []string{"xl_ms", "lightvm_ms", "note:"} {
		if !strings.Contains(res.Output, want) {
			t.Fatalf("output missing %q:\n%s", want, res.Output)
		}
	}
	if _, err := lightvm.RunExperiment("nonesuch", 1, 1); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestBuildTinyx(t *testing.T) {
	res, err := lightvm.BuildTinyx("micropython", "xen")
	if err != nil {
		t.Fatal(err)
	}
	if res.ImageBytes == 0 || len(res.Packages) == 0 {
		t.Fatalf("empty build: %+v", res)
	}
	if _, err := lightvm.BuildTinyx("nonesuch", "xen"); err == nil {
		t.Fatal("unknown app accepted")
	}
	apps := lightvm.TinyxApps()
	if len(apps) < 10 {
		t.Fatalf("tinyx universe has %d packages", len(apps))
	}
}

func TestRunPython(t *testing.T) {
	out, err := lightvm.RunPython(lightvm.ApproxEProgram)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(strings.TrimSpace(out), "2.718281828") {
		t.Fatalf("e ≈ %q", out)
	}
	if _, err := lightvm.RunPython("def broken(:"); err == nil {
		t.Fatal("syntax error not surfaced")
	}
}

func TestImageByName(t *testing.T) {
	im, err := lightvm.ImageByName("daytime")
	if err != nil || im.Name != "daytime" {
		t.Fatalf("ImageByName: %v %v", im.Name, err)
	}
}

func TestClusterThroughFacade(t *testing.T) {
	c := lightvm.NewCluster(lightvm.NewClock())
	if _, err := c.AddHost("edge-a", lightvm.Xeon14, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddHost("edge-b", lightvm.Xeon14, 2); err != nil {
		t.Fatal(err)
	}
	_, host, err := c.Place(lightvm.ModeChaosNoXS, "fw-bob", lightvm.ClickOSFirewall())
	if err != nil {
		t.Fatal(err)
	}
	other := "edge-b"
	if host == other {
		other = "edge-a"
	}
	if _, err := c.Move("fw-bob", other); err != nil {
		t.Fatal(err)
	}
	if got, _ := c.HostOf("fw-bob"); got != other {
		t.Fatalf("HostOf = %q", got)
	}
}
