package metrics

import (
	"math"
	"strings"
	"testing"
	"time"
)

// Table-driven edge cases for the ASCII plotter: degenerate tables,
// single points, NaN/Inf values and zero durations must render without
// panicking or corrupting the axes.
func TestPlotEdgeCases(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	cases := []struct {
		name string
		rows [][]float64
		logY bool
		want string // substring the rendering must contain
	}{
		{"empty table", nil, false, "(no data to plot)"},
		{"single point", [][]float64{{1, 5}}, false, "*"},
		{"single point log", [][]float64{{1, 5}}, true, "(log y)"},
		{"all NaN values", [][]float64{{1, nan}, {2, nan}}, false, "(no plottable values)"},
		{"NaN x skipped", [][]float64{{nan, 5}, {2, 7}}, false, "*"},
		{"NaN mixed in", [][]float64{{1, nan}, {2, 7}, {3, 9}}, false, "*"},
		{"+Inf value skipped", [][]float64{{1, inf}, {2, 7}}, false, "*"},
		{"-Inf value skipped", [][]float64{{1, math.Inf(-1)}, {2, 7}}, false, "*"},
		{"all Inf", [][]float64{{1, inf}}, true, "(no plottable values)"},
		{"zero duration on log axis", [][]float64{{1, 0}, {2, 3}}, true, "(log y)"},
		{"all zero on log axis", [][]float64{{1, 0}, {2, 0}}, true, "(no plottable values)"},
		{"negative linear ok", [][]float64{{1, -3}, {2, 4}}, false, "*"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tab := NewTable(c.name, "x", "y")
			for _, row := range c.rows {
				tab.AddRow(row...)
			}
			out := tab.Plot(40, 8, c.logY)
			if !strings.Contains(out, c.want) {
				t.Fatalf("plot missing %q:\n%s", c.want, out)
			}
		})
	}
}

// A NaN x must not shift the axis range of the remaining points.
func TestPlotNaNXDoesNotCorruptRange(t *testing.T) {
	tab := NewTable("nanx", "x", "y")
	tab.AddRow(math.NaN(), 100)
	tab.AddRow(10, 1)
	tab.AddRow(20, 2)
	out := tab.Plot(40, 8, false)
	if !strings.Contains(out, "10") || !strings.Contains(out, "20") {
		t.Fatalf("x labels lost:\n%s", out)
	}
}

// Series edge cases the figure generators can produce: empty series,
// a single sample, zero durations.
func TestSeriesEdgeCases(t *testing.T) {
	cases := []struct {
		name                string
		values              []float64
		min, max, mean, p50 float64
	}{
		{"empty", nil, 0, 0, 0, 0},
		{"single point", []float64{7}, 7, 7, 7, 7},
		{"all zero", []float64{0, 0, 0}, 0, 0, 0, 0},
		{"negative only", []float64{-3, -1, -2}, -3, -1, -2, -2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := Series{Values: c.values}
			if got := s.Min(); got != c.min {
				t.Errorf("Min = %v, want %v", got, c.min)
			}
			if got := s.Max(); got != c.max {
				t.Errorf("Max = %v, want %v", got, c.max)
			}
			if got := s.Mean(); got != c.mean {
				t.Errorf("Mean = %v, want %v", got, c.mean)
			}
			if got := s.Median(); got != c.p50 {
				t.Errorf("Median = %v, want %v", got, c.p50)
			}
		})
	}
}

func TestAddDurationZeroAndSub(t *testing.T) {
	var s Series
	s.AddDuration(0)
	s.AddDuration(time.Nanosecond)
	if s.Values[0] != 0 {
		t.Fatalf("zero duration stored as %v", s.Values[0])
	}
	if s.Values[1] <= 0 || s.Values[1] >= 1e-5 {
		t.Fatalf("1ns stored as %v ms", s.Values[1])
	}
	// Percentiles on the degenerate series stay in range.
	if p := s.Percentile(99); p != s.Max() {
		t.Fatalf("P99 = %v, max = %v", p, s.Max())
	}
}

func TestFormatCellSpecials(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		1234567: "1234567",
		0.5:     "0.500",
		123.45:  "123.5",
	}
	for v, want := range cases {
		if got := formatCell(v); got != want {
			t.Errorf("formatCell(%v) = %q, want %q", v, got, want)
		}
	}
	// NaN renders as text rather than panicking (generators should
	// never emit it, but the renderer is the last line of defense).
	if got := formatCell(math.NaN()); !strings.Contains(got, "NaN") {
		t.Errorf("formatCell(NaN) = %q", got)
	}
}
