package metrics

import (
	"fmt"
	"math"
	"strings"
)

// plot markers, one per series (paper figures carry up to ~8 series).
var plotMarkers = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// Plot renders the table as an ASCII chart: the first column is the x
// axis, every other column a series. Non-positive values are skipped
// when logY is set (the paper's boot-time figures are log-scale).
func (t *Table) Plot(width, height int, logY bool) string {
	if width < 20 {
		width = 60
	}
	if height < 5 {
		height = 16
	}
	if len(t.Columns) < 2 || len(t.Rows) == 0 {
		return fmt.Sprintf("# %s\n(no data to plot)\n", t.Title)
	}

	tr := func(v float64) (float64, bool) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0, false // unplottable; skip rather than corrupt the axes
		}
		if logY {
			if v <= 0 {
				return 0, false
			}
			return math.Log10(v), true
		}
		return v, true
	}

	// Axis ranges.
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, row := range t.Rows {
		x := row[0]
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue // row has no usable x position
		}
		if x < xmin {
			xmin = x
		}
		if x > xmax {
			xmax = x
		}
		for _, v := range row[1:] {
			tv, ok := tr(v)
			if !ok {
				continue
			}
			if tv < ymin {
				ymin = tv
			}
			if tv > ymax {
				ymax = tv
			}
		}
	}
	if math.IsInf(xmin, 1) || math.IsInf(ymin, 1) {
		return fmt.Sprintf("# %s\n(no plottable values)\n", t.Title)
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	put := func(x, y float64, marker byte) {
		cx := int((x - xmin) / (xmax - xmin) * float64(width-1))
		cy := int((y - ymin) / (ymax - ymin) * float64(height-1))
		row := height - 1 - cy
		if cx >= 0 && cx < width && row >= 0 && row < height {
			grid[row][cx] = marker
		}
	}
	for si := 1; si < len(t.Columns); si++ {
		marker := plotMarkers[(si-1)%len(plotMarkers)]
		for _, row := range t.Rows {
			if math.IsNaN(row[0]) || math.IsInf(row[0], 0) {
				continue
			}
			tv, ok := tr(row[si])
			if !ok {
				continue
			}
			put(row[0], tv, marker)
		}
	}

	// Assemble with y labels.
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", t.Title)
	inv := func(v float64) float64 {
		if logY {
			return math.Pow(10, v)
		}
		return v
	}
	for i, line := range grid {
		frac := float64(height-1-i) / float64(height-1)
		label := ""
		if i == 0 || i == height-1 || i == height/2 {
			label = formatCell(inv(ymin + frac*(ymax-ymin)))
		}
		fmt.Fprintf(&b, "%10s |%s\n", label, string(line))
	}
	fmt.Fprintf(&b, "%10s +%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%10s  %-*s%s\n", "", width-len(formatCell(xmax)), formatCell(xmin), formatCell(xmax))
	// Legend.
	var legend []string
	for si := 1; si < len(t.Columns); si++ {
		legend = append(legend, fmt.Sprintf("%c=%s", plotMarkers[(si-1)%len(plotMarkers)], t.Columns[si]))
	}
	fmt.Fprintf(&b, "x=%s   %s", t.Columns[0], strings.Join(legend, "  "))
	if logY {
		b.WriteString("   (log y)")
	}
	b.WriteByte('\n')
	return b.String()
}
