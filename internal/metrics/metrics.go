// Package metrics provides the small statistics and table machinery
// the experiment harness uses to report paper figures: value series,
// percentiles, CDFs and fixed-width table rendering.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Series is an ordered list of float64 samples.
type Series struct {
	Name   string
	Values []float64
}

// Add appends a sample.
func (s *Series) Add(v float64) { s.Values = append(s.Values, v) }

// AddDuration appends a duration in milliseconds.
func (s *Series) AddDuration(d time.Duration) {
	s.Add(float64(d) / float64(time.Millisecond))
}

// Len reports the sample count.
func (s *Series) Len() int { return len(s.Values) }

// Min returns the smallest sample (0 when empty).
func (s *Series) Min() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	m := s.Values[0]
	for _, v := range s.Values {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest sample (0 when empty).
func (s *Series) Max() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	m := s.Values[0]
	for _, v := range s.Values {
		if v > m {
			m = v
		}
	}
	return m
}

// Mean returns the arithmetic mean (0 when empty).
func (s *Series) Mean() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.Values {
		sum += v
	}
	return sum / float64(len(s.Values))
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using
// nearest-rank on a sorted copy; 0 when empty.
func (s *Series) Percentile(p float64) float64 {
	if len(s.Values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.Values...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// Median is Percentile(50).
func (s *Series) Median() float64 { return s.Percentile(50) }

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	Value    float64
	Fraction float64
}

// CDF returns the empirical CDF of the series.
func (s *Series) CDF() []CDFPoint {
	if len(s.Values) == 0 {
		return nil
	}
	sorted := append([]float64(nil), s.Values...)
	sort.Float64s(sorted)
	out := make([]CDFPoint, len(sorted))
	for i, v := range sorted {
		out[i] = CDFPoint{Value: v, Fraction: float64(i+1) / float64(len(sorted))}
	}
	return out
}

// Table is a rectangular result set with named columns, one row per
// data point — the shape every figure/table generator returns.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]float64
	// Notes carries caveats (substitutions, calibration remarks).
	Notes []string
}

// NewTable creates an empty table.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; it panics if the arity is wrong (programmer
// error in an experiment generator).
func (t *Table) AddRow(vals ...float64) {
	if len(vals) != len(t.Columns) {
		panic(fmt.Sprintf("metrics: row arity %d != %d columns in %q", len(vals), len(t.Columns), t.Title))
	}
	t.Rows = append(t.Rows, vals)
}

// Note appends a caveat line.
func (t *Table) Note(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Column returns the values of the named column.
func (t *Table) Column(name string) ([]float64, error) {
	for i, c := range t.Columns {
		if c == name {
			out := make([]float64, len(t.Rows))
			for r, row := range t.Rows {
				out[r] = row[i]
			}
			return out, nil
		}
	}
	return nil, fmt.Errorf("metrics: table %q has no column %q", t.Title, name)
}

// String renders the table with fixed-width columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", t.Title)
	widths := make([]int, len(t.Columns))
	cells := make([][]string, len(t.Rows))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for r, row := range t.Rows {
		cells[r] = make([]string, len(row))
		for i, v := range row {
			cells[r][i] = formatCell(v)
			if len(cells[r][i]) > widths[i] {
				widths[i] = len(cells[r][i])
			}
		}
	}
	for i, c := range t.Columns {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%*s", widths[i], c)
	}
	b.WriteByte('\n')
	for _, row := range cells {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// formatCell renders a float compactly: integers without decimals,
// small values with three significant decimals.
func formatCell(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e12 {
		return fmt.Sprintf("%.0f", v)
	}
	if math.Abs(v) >= 100 {
		return fmt.Sprintf("%.1f", v)
	}
	return fmt.Sprintf("%.3f", v)
}

// Monotone reports whether the column values are non-decreasing.
func Monotone(vals []float64) bool {
	for i := 1; i < len(vals); i++ {
		if vals[i] < vals[i-1] {
			return false
		}
	}
	return true
}
