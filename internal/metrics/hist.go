package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
	"time"
)

// Histogram is a fixed-bucket log-linear latency histogram, the shape
// the open-loop traffic harness records request latencies into. The
// bucket layout is HDR-style: each power-of-two range of nanoseconds
// is split into histSubBuckets linear sub-buckets, so the relative
// quantile error is bounded by 1/histSubBuckets (≈3%) at every scale
// from nanoseconds to hours, while Observe stays O(1) with zero
// allocations — at 100k simulated requests per second, per-sample
// garbage would multiply straight into GC pauses exactly like the
// xenstore op paths did before their allocation diet.
//
// Quantiles are extracted by exact nearest-rank over the bucket
// counts: Quantile(p) returns the lower bound of the bucket holding
// the rank-⌈p/100·n⌉ sample. Samples that sit exactly on a bucket
// boundary are therefore reported exactly; everything else is rounded
// down by less than one sub-bucket width. The zero value is ready to
// use. Histograms from independent workers merge losslessly with
// Merge — bucket counts add, so a merged histogram reports exactly
// what one histogram observing all streams would have.
type Histogram struct {
	count   uint64
	buckets [histBuckets]uint32
}

const (
	// histSubBits sets the linear split per octave: 2^5 = 32
	// sub-buckets, bounding relative error at 1/32.
	histSubBits = 5
	histSub     = 1 << histSubBits

	// histOctaves covers nanosecond values up to 2^42 ns ≈ 73 min,
	// far beyond any simulated request latency; larger values clamp
	// into the top bucket.
	histOctaves = 42 - histSubBits

	// histBuckets: the first 2·histSub values are exact (width-1
	// buckets), then histSub sub-buckets per remaining octave.
	histBuckets = 2*histSub + (histOctaves-1)*histSub
)

// histIndex maps a non-negative nanosecond value to its bucket.
// Values below 2·histSub map exactly (one value per bucket); beyond,
// value v with 2^k ≤ v < 2^(k+1) lands in sub-bucket (v>>(k-histSubBits))
// of octave k.
func histIndex(v uint64) int {
	if v < 2*histSub {
		return int(v)
	}
	k := bits.Len64(v) - 1 // 2^k ≤ v < 2^(k+1), k ≥ histSubBits+1
	idx := (k-histSubBits)*histSub + int(v>>(uint(k)-histSubBits))
	if idx >= histBuckets {
		return histBuckets - 1
	}
	return idx
}

// histLower is histIndex's left inverse: the smallest value mapping
// to bucket idx.
func histLower(idx int) uint64 {
	if idx < 2*histSub {
		return uint64(idx)
	}
	k := idx/histSub + histSubBits - 1 // octave
	sub := uint64(idx % histSub)
	return (histSub + sub) << (uint(k) - histSubBits)
}

// Observe records one latency sample. Negative durations clamp to 0.
// It never allocates.
func (h *Histogram) Observe(d time.Duration) {
	v := uint64(0)
	if d > 0 {
		v = uint64(d)
	}
	h.buckets[histIndex(v)]++
	h.count++
}

// Count reports the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count }

// Merge adds another histogram's counts into h (per-worker histograms
// fold into the fleet-wide distribution; order never matters).
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	for i, c := range o.buckets {
		h.buckets[i] += c
	}
	h.count += o.count
}

// Quantile returns the p-th percentile (0 ≤ p ≤ 100) by exact
// nearest-rank over the bucket counts: the lower bound of the bucket
// containing the rank-⌈p/100·n⌉ sample (0 when empty). p ≤ 0 returns
// the smallest sample's bucket; p ≥ 100 the largest's.
func (h *Histogram) Quantile(p float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(p / 100 * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var cum uint64
	for i, c := range h.buckets {
		cum += uint64(c)
		if cum >= rank {
			return time.Duration(histLower(i))
		}
	}
	// Unreachable: cum == count ≥ rank by the clamp above.
	return time.Duration(histLower(histBuckets - 1))
}

// P50, P99 and P999 are the serving-path headline quantiles.
func (h *Histogram) P50() time.Duration  { return h.Quantile(50) }
func (h *Histogram) P99() time.Duration  { return h.Quantile(99) }
func (h *Histogram) P999() time.Duration { return h.Quantile(99.9) }

// Mean returns the average of the bucket-quantized samples (each
// sample contributes its bucket's lower bound).
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	var sum float64
	for i, c := range h.buckets {
		if c > 0 {
			sum += float64(histLower(i)) * float64(c)
		}
	}
	return time.Duration(sum / float64(h.count))
}

// String renders the headline quantiles, for debugging and traces.
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d p50=%v p99=%v p999=%v", h.count, h.P50(), h.P99(), h.P999())
	return b.String()
}
