package metrics

import (
	"math"
	"sort"
	"testing"
	"time"

	"lightvm/internal/sim"
)

// refQuantile is the sorted-slice nearest-rank reference the histogram
// must agree with (up to bucket rounding): the rank-⌈p/100·n⌉ sample.
func refQuantile(samples []time.Duration, p float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// bucketFloor quantizes a value the way the histogram stores it.
func bucketFloor(d time.Duration) time.Duration {
	v := uint64(0)
	if d > 0 {
		v = uint64(d)
	}
	return time.Duration(histLower(histIndex(v)))
}

var quantilePoints = []float64{0, 10, 25, 50, 75, 90, 99, 99.9, 100}

// checkAgainstReference asserts the histogram's quantiles equal the
// bucket-quantized sorted-slice reference at every probe point.
func checkAgainstReference(t *testing.T, name string, samples []time.Duration) {
	t.Helper()
	var h Histogram
	for _, s := range samples {
		h.Observe(s)
	}
	if h.Count() != uint64(len(samples)) {
		t.Fatalf("%s: count %d, want %d", name, h.Count(), len(samples))
	}
	// The histogram quantizes each sample to its bucket floor before
	// ranking; ranking first and quantizing after yields the same
	// bucket because quantization is monotone.
	for _, p := range quantilePoints {
		want := bucketFloor(refQuantile(samples, p))
		if got := h.Quantile(p); got != want {
			t.Errorf("%s: Quantile(%v) = %v, want %v (exact ref %v)",
				name, p, got, want, refQuantile(samples, p))
		}
	}
}

// TestHistIndexRoundTrip pins the bucket layout: histLower is the left
// inverse of histIndex, indexes are monotone, and every bucket
// boundary maps to itself.
func TestHistIndexRoundTrip(t *testing.T) {
	last := -1
	for idx := 0; idx < histBuckets; idx++ {
		lo := histLower(idx)
		if got := histIndex(lo); got != idx {
			t.Fatalf("histIndex(histLower(%d)) = %d", idx, got)
		}
		if int(lo) <= last && idx > 0 {
			t.Fatalf("bucket %d lower bound %d not increasing", idx, lo)
		}
		last = int(lo)
		// The value just below the next boundary stays in this bucket.
		if idx+1 < histBuckets {
			hi := histLower(idx+1) - 1
			if got := histIndex(hi); got != idx {
				t.Fatalf("histIndex(%d) = %d, want %d", hi, got, idx)
			}
		}
	}
	// Overflow clamps into the top bucket instead of panicking.
	if got := histIndex(math.MaxUint64); got != histBuckets-1 {
		t.Fatalf("histIndex(max) = %d, want %d", got, histBuckets-1)
	}
}

// TestHistogramExactAtBoundaries: samples sitting exactly on bucket
// boundaries are reported exactly — no rounding at all.
func TestHistogramExactAtBoundaries(t *testing.T) {
	var samples []time.Duration
	for idx := 0; idx < histBuckets; idx += 7 {
		samples = append(samples, time.Duration(histLower(idx)))
	}
	var h Histogram
	for _, s := range samples {
		h.Observe(s)
	}
	for _, p := range quantilePoints {
		want := refQuantile(samples, p)
		if got := h.Quantile(p); got != want {
			t.Errorf("boundary samples: Quantile(%v) = %v, want exact %v", p, got, want)
		}
	}
}

// TestHistogramQuantilesSeededDistributions compares against the
// reference over seeded exponential, Pareto and uniform distributions.
func TestHistogramQuantilesSeededDistributions(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		rng := sim.NewRNG(seed * 7919)
		exp := make([]time.Duration, 0, 3000)
		par := make([]time.Duration, 0, 3000)
		uni := make([]time.Duration, 0, 3000)
		for i := 0; i < 3000; i++ {
			exp = append(exp, rng.Exp(7*time.Millisecond))
			par = append(par, rng.Pareto(time.Millisecond, 10*time.Second, 1.3))
			uni = append(uni, time.Duration(rng.Intn(int(2*time.Second))))
		}
		checkAgainstReference(t, "exp", exp)
		checkAgainstReference(t, "pareto", par)
		checkAgainstReference(t, "uniform", uni)
	}
}

// TestHistogramP999SmallN: with fewer than 1000 samples the p999
// nearest rank is the maximum sample; the histogram must agree.
func TestHistogramP999SmallN(t *testing.T) {
	rng := sim.NewRNG(42)
	for _, n := range []int{1, 9, 99, 500, 999} {
		samples := make([]time.Duration, 0, n)
		var h Histogram
		for i := 0; i < n; i++ {
			s := rng.Exp(3 * time.Millisecond)
			samples = append(samples, s)
			h.Observe(s)
		}
		max := samples[0]
		for _, s := range samples {
			if s > max {
				max = s
			}
		}
		if got, want := h.P999(), bucketFloor(max); got != want {
			t.Errorf("n=%d: P999 = %v, want max bucket %v", n, got, want)
		}
	}
}

// TestHistogramMerge: merging per-worker histograms in any order is
// identical to one histogram observing every stream.
func TestHistogramMerge(t *testing.T) {
	rng := sim.NewRNG(7)
	var whole Histogram
	workers := make([]Histogram, 8)
	var all []time.Duration
	for i := 0; i < 4000; i++ {
		s := rng.Pareto(200*time.Microsecond, time.Minute, 1.1)
		all = append(all, s)
		whole.Observe(s)
		workers[i%len(workers)].Observe(s)
	}
	var fwd, rev Histogram
	for i := range workers {
		fwd.Merge(&workers[i])
		rev.Merge(&workers[len(workers)-1-i])
	}
	fwd.Merge(nil) // nil merge is a no-op
	if fwd != whole || rev != whole {
		t.Fatalf("merged histograms differ from whole-stream histogram")
	}
	for _, p := range quantilePoints {
		if got, want := fwd.Quantile(p), bucketFloor(refQuantile(all, p)); got != want {
			t.Errorf("merged Quantile(%v) = %v, want %v", p, got, want)
		}
	}
}

// TestHistogramEdgeCases: zero value, negative samples, empty
// histogram, mean.
func TestHistogramEdgeCases(t *testing.T) {
	var h Histogram
	if h.Quantile(50) != 0 || h.Count() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Observe(-time.Second) // clamps to 0
	h.Observe(0)
	if h.Count() != 2 || h.Quantile(100) != 0 {
		t.Fatalf("negative/zero samples: count %d q100 %v", h.Count(), h.Quantile(100))
	}
	h.Observe(4 * time.Millisecond)
	if got := h.Mean(); got == 0 || got > 2*time.Millisecond {
		t.Fatalf("mean %v outside (0, 2ms]", got)
	}
	if s := h.String(); s == "" {
		t.Fatal("String() empty")
	}
}

// TestHistogramObserveAllocBudget pins the serving hot path at zero
// allocations per sample.
func TestHistogramObserveAllocBudget(t *testing.T) {
	var h Histogram
	rng := sim.NewRNG(3)
	samples := make([]time.Duration, 1024)
	for i := range samples {
		samples[i] = rng.Exp(5 * time.Millisecond)
	}
	allocs := testing.AllocsPerRun(10, func() {
		for _, s := range samples {
			h.Observe(s)
		}
	})
	if allocs != 0 {
		t.Fatalf("Observe allocates %.2f objects per 1024 samples, budget 0", allocs)
	}
}

// BenchmarkHistogramObserve measures the per-sample recording cost
// (must report 0 allocs/op).
func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	rng := sim.NewRNG(3)
	samples := make([]time.Duration, 4096)
	for i := range samples {
		samples[i] = rng.Exp(5 * time.Millisecond)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(samples[i&4095])
	}
}

// BenchmarkHistogramQuantile measures headline quantile extraction.
func BenchmarkHistogramQuantile(b *testing.B) {
	var h Histogram
	rng := sim.NewRNG(3)
	for i := 0; i < 100000; i++ {
		h.Observe(rng.Exp(5 * time.Millisecond))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.P999()
	}
}
