package metrics

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSeriesBasics(t *testing.T) {
	var s Series
	if s.Min() != 0 || s.Max() != 0 || s.Mean() != 0 || s.Median() != 0 {
		t.Fatal("empty series stats not zero")
	}
	for _, v := range []float64{3, 1, 2} {
		s.Add(v)
	}
	if s.Len() != 3 || s.Min() != 1 || s.Max() != 3 || s.Mean() != 2 {
		t.Fatalf("stats: len=%d min=%v max=%v mean=%v", s.Len(), s.Min(), s.Max(), s.Mean())
	}
}

func TestAddDuration(t *testing.T) {
	var s Series
	s.AddDuration(1500 * time.Microsecond)
	if s.Values[0] != 1.5 {
		t.Fatalf("AddDuration stored %v, want 1.5 ms", s.Values[0])
	}
}

func TestPercentiles(t *testing.T) {
	var s Series
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cases := map[float64]float64{0: 1, 50: 50, 90: 90, 100: 100, 99: 99}
	for p, want := range cases {
		if got := s.Percentile(p); got != want {
			t.Fatalf("P%v = %v, want %v", p, got, want)
		}
	}
}

func TestMedianOddEven(t *testing.T) {
	s := Series{Values: []float64{5, 1, 3}}
	if s.Median() != 3 {
		t.Fatalf("odd median = %v", s.Median())
	}
	s.Add(7)
	if m := s.Median(); m != 3 && m != 5 {
		t.Fatalf("even median = %v", m)
	}
}

func TestCDF(t *testing.T) {
	s := Series{Values: []float64{10, 20, 30, 40}}
	cdf := s.CDF()
	if len(cdf) != 4 {
		t.Fatalf("CDF len = %d", len(cdf))
	}
	if cdf[0].Value != 10 || cdf[0].Fraction != 0.25 {
		t.Fatalf("first point %+v", cdf[0])
	}
	if cdf[3].Value != 40 || cdf[3].Fraction != 1 {
		t.Fatalf("last point %+v", cdf[3])
	}
	if !sort.Float64sAreSorted([]float64{cdf[0].Value, cdf[1].Value, cdf[2].Value, cdf[3].Value}) {
		t.Fatal("CDF values unsorted")
	}
	if (&Series{}).CDF() != nil {
		t.Fatal("empty CDF not nil")
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("fig-test", "n", "time_ms")
	tab.AddRow(1, 2.5)
	tab.AddRow(1000, 4.125)
	tab.Note("calibrated against §6.1")
	out := tab.String()
	for _, want := range []string{"# fig-test", "n", "time_ms", "1000", "2.500", "note: calibrated"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestTableColumn(t *testing.T) {
	tab := NewTable("t", "a", "b")
	tab.AddRow(1, 10)
	tab.AddRow(2, 20)
	b, err := tab.Column("b")
	if err != nil || len(b) != 2 || b[1] != 20 {
		t.Fatalf("Column = %v, %v", b, err)
	}
	if _, err := tab.Column("zzz"); err == nil {
		t.Fatal("unknown column accepted")
	}
}

func TestTableArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("wrong arity did not panic")
		}
	}()
	NewTable("t", "a").AddRow(1, 2)
}

func TestMonotone(t *testing.T) {
	if !Monotone([]float64{1, 1, 2, 3}) {
		t.Fatal("monotone rejected")
	}
	if Monotone([]float64{1, 3, 2}) {
		t.Fatal("non-monotone accepted")
	}
	if !Monotone(nil) {
		t.Fatal("empty not monotone")
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileMonotoneQuick(t *testing.T) {
	f := func(raw []float64, pa, pb uint8) bool {
		var s Series
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				s.Add(v)
			}
		}
		if s.Len() == 0 {
			return true
		}
		a, b := float64(pa%101), float64(pb%101)
		if a > b {
			a, b = b, a
		}
		va, vb := s.Percentile(a), s.Percentile(b)
		return va <= vb && va >= s.Min() && vb <= s.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPlotBasics(t *testing.T) {
	tab := NewTable("fig-plot", "n", "xl_ms", "lightvm_ms")
	for i := 1; i <= 10; i++ {
		tab.AddRow(float64(i*100), float64(i)*90, 4.1)
	}
	out := tab.Plot(60, 12, false)
	for _, want := range []string{"# fig-plot", "x=n", "*=xl_ms", "+=lightvm_ms"} {
		if !strings.Contains(out, want) {
			t.Fatalf("plot missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Fatal("plot has no data markers")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + height rows + axis + xlabels + legend
	if len(lines) != 1+12+1+1+1 {
		t.Fatalf("plot has %d lines", len(lines))
	}
}

func TestPlotLogScaleSkipsNonPositive(t *testing.T) {
	tab := NewTable("log", "n", "v")
	tab.AddRow(1, 0) // skipped on log axis
	tab.AddRow(10, 1)
	tab.AddRow(100, 1000)
	out := tab.Plot(40, 8, true)
	if !strings.Contains(out, "(log y)") {
		t.Fatal("log marker missing")
	}
	// Two plotted points plus one '*' in the legend.
	if strings.Count(out, "*") != 3 {
		t.Fatalf("want 2 plotted points (+legend), got:\n%s", out)
	}
}

func TestPlotDegenerate(t *testing.T) {
	empty := NewTable("e", "x", "y")
	if !strings.Contains(empty.Plot(40, 8, false), "no data") {
		t.Fatal("empty table plot")
	}
	flat := NewTable("f", "x", "y")
	flat.AddRow(1, 5)
	flat.AddRow(2, 5)
	if out := flat.Plot(40, 8, false); !strings.Contains(out, "*") {
		t.Fatalf("constant series unplotted:\n%s", out)
	}
	allNeg := NewTable("n", "x", "y")
	allNeg.AddRow(1, -1)
	if out := allNeg.Plot(40, 8, true); !strings.Contains(out, "no plottable") {
		t.Fatalf("negative-only log plot: %s", out)
	}
}
