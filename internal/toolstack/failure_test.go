package toolstack

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"lightvm/internal/guest"
	"lightvm/internal/mm"
	"lightvm/internal/sched"
	"lightvm/internal/sim"
)

// tinyEnv returns an environment on a host with very little memory, so
// allocations fail quickly (failure injection).
func tinyEnv() *Env {
	return NewEnv(sim.NewClock(), sched.Machine{Name: "tiny", Cores: 4, Dom0Cores: 1, MemoryGB: 1})
}

func TestCreateOOMRollsBackCleanly(t *testing.T) {
	for _, mode := range []Mode{ModeXL, ModeChaosXS, ModeChaosNoXS} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			e := tinyEnv()
			drv := e.ForMode(mode)
			// Debian needs 111MB; a 1GB host (minus Dom0's 512MB and
			// the base overheads) fits only a few.
			var firstErr error
			created := 0
			for i := 0; i < 64; i++ {
				_, err := drv.Create(fmt.Sprintf("g%d", i), guest.DebianMinimal())
				if err != nil {
					firstErr = err
					break
				}
				created++
			}
			if firstErr == nil {
				t.Fatal("never hit OOM on a 1GB host")
			}
			if !errors.Is(firstErr, mm.ErrOutOfMemory) {
				t.Fatalf("unexpected error type: %v", firstErr)
			}
			// The failed creation must leave no trace: VM count and
			// domain count match the successes exactly.
			if e.VMs() != created {
				t.Fatalf("VMs=%d, created=%d — failed create leaked a VM", e.VMs(), created)
			}
			if e.HV.NumDomains() != created {
				t.Fatalf("domains=%d, created=%d — failed create leaked a domain", e.HV.NumDomains(), created)
			}
			// The failed name is reusable after freeing memory.
			failedName := fmt.Sprintf("g%d", created)
			victim, err := e.VM("g0")
			if err != nil {
				t.Fatal(err)
			}
			if err := drv.Destroy(victim); err != nil {
				t.Fatal(err)
			}
			if _, err := drv.Create(failedName, guest.Daytime()); err != nil {
				t.Fatalf("name %q unusable after failed create: %v", failedName, err)
			}
		})
	}
}

func TestSplitCreateOOMDuringPrepare(t *testing.T) {
	e := tinyEnv()
	drv := e.ForMode(ModeLightVM)
	// Fill the host, then force a pool miss + inline prepare failure.
	created := 0
	for i := 0; i < 64; i++ {
		if _, err := drv.Create(fmt.Sprintf("f%d", i), guest.DebianMinimal()); err != nil {
			break
		}
		created++
	}
	_, err := drv.Create("doomed", guest.DebianMinimal())
	if err == nil {
		t.Skip("host unexpectedly had room")
	}
	if e.VMs() != created || e.HV.NumDomains() != created {
		t.Fatalf("prepare failure leaked state: vms=%d doms=%d created=%d",
			e.VMs(), e.HV.NumDomains(), created)
	}
}

func TestReplenishSurfacesOOM(t *testing.T) {
	e := tinyEnv()
	e.Pool.SetTarget(64) // 64 Debian shells can never fit in 1GB
	f := FlavorFor(guest.DebianMinimal(), false)
	e.Pool.flavors[f.key()] = f
	if err := e.Pool.Replenish(); !errors.Is(err, mm.ErrOutOfMemory) {
		t.Fatalf("replenish on full host: %v", err)
	}
}

func TestDestroyedVMNameReusable(t *testing.T) {
	e := NewEnv(sim.NewClock(), sched.Xeon4)
	drv := e.ForMode(ModeChaosXS)
	for i := 0; i < 3; i++ {
		vm, err := drv.Create("recycled", guest.Daytime())
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		if err := drv.Destroy(vm); err != nil {
			t.Fatalf("round %d destroy: %v", i, err)
		}
	}
}

func TestXLDestroyCleansUniqueName(t *testing.T) {
	e := NewEnv(sim.NewClock(), sched.Xeon4)
	drv := e.ForMode(ModeXL)
	vm, err := drv.Create("unique-one", guest.Daytime())
	if err != nil {
		t.Fatal(err)
	}
	if err := drv.Destroy(vm); err != nil {
		t.Fatal(err)
	}
	// Same name must pass the store's uniqueness scan again.
	if _, err := drv.Create("unique-one", guest.Daytime()); err != nil {
		t.Fatalf("name not released from the store: %v", err)
	}
}

// Property: any interleaving of creates and destroys keeps the
// environment's bookkeeping consistent, and destroying everything
// returns host memory to its baseline.
func TestCreateDestroyInvariantsQuick(t *testing.T) {
	f := func(ops []uint8) bool {
		e := NewEnv(sim.NewClock(), sched.Machine{Name: "q", Cores: 4, Dom0Cores: 1, MemoryGB: 16})
		drv := e.ForMode(ModeChaosNoXS)
		base := e.HV.UsedMemBytes()
		var live []*VM
		id := 0
		for _, op := range ops {
			if op%3 != 0 || len(live) == 0 {
				id++
				img := guest.Daytime()
				if op%5 == 0 {
					img = guest.Minipython()
				}
				vm, err := drv.Create(fmt.Sprintf("q%d", id), img)
				if err != nil {
					return false
				}
				live = append(live, vm)
			} else {
				i := int(op/3) % len(live)
				if err := drv.Destroy(live[i]); err != nil {
					return false
				}
				live = append(live[:i], live[i+1:]...)
			}
			if e.VMs() != len(live) || e.HV.NumDomains() != len(live) {
				return false
			}
		}
		for _, vm := range live {
			if err := drv.Destroy(vm); err != nil {
				return false
			}
		}
		return e.VMs() == 0 && e.HV.NumDomains() == 0 && e.HV.UsedMemBytes() == base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: the same op sequence at the same seed produces identical
// virtual-time outcomes (determinism end to end).
func TestDeterminismQuick(t *testing.T) {
	f := func(ops []uint8) bool {
		run := func() (sim.Time, uint64, int) {
			e := NewEnv(sim.NewClock(), sched.Xeon4)
			drv := e.ForMode(ModeChaosXS)
			id := 0
			var live []*VM
			for _, op := range ops {
				if op%2 == 0 || len(live) == 0 {
					id++
					vm, err := drv.Create(fmt.Sprintf("d%d", id), guest.Daytime())
					if err != nil {
						return 0, 0, -1
					}
					live = append(live, vm)
				} else {
					vm := live[len(live)-1]
					live = live[:len(live)-1]
					if err := drv.Destroy(vm); err != nil {
						return 0, 0, -1
					}
				}
			}
			return e.Clock.Now(), e.HV.UsedMemBytes(), e.Store.NumNodes()
		}
		t1, m1, n1 := run()
		t2, m2, n2 := run()
		return t1 == t2 && m1 == m2 && n1 == n2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestDestroyPausedVMDoesNotCorruptScheduler(t *testing.T) {
	// Regression: destroying a paused guest must not remove its idle
	// load twice (which used to drive the per-core guest count
	// negative and panic the scheduler).
	e := NewEnv(sim.NewClock(), sched.Xeon4)
	drv := e.ForMode(ModeChaosNoXS)
	a, err := drv.Create("a", guest.TinyxNoop())
	if err != nil {
		t.Fatal(err)
	}
	b, err := drv.Create("b", guest.TinyxNoop())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.PauseVM(a); err != nil {
		t.Fatal(err)
	}
	if err := e.PauseVM(a); err == nil {
		t.Fatal("double pause accepted")
	}
	if err := drv.Destroy(a); err != nil {
		t.Fatal(err)
	}
	// The scheduler still works for the remaining guest.
	if err := e.PauseVM(b); err != nil {
		t.Fatal(err)
	}
	if err := e.UnpauseVM(b); err != nil {
		t.Fatal(err)
	}
	if err := e.UnpauseVM(b); err == nil {
		t.Fatal("double unpause accepted")
	}
	if err := drv.Destroy(b); err != nil {
		t.Fatal(err)
	}
	if e.Sched.Guests(b.Core) != 0 && e.Sched.Guests(a.Core) != 0 {
		t.Fatal("scheduler guest counts not clean")
	}
}

func TestDestroyRemovesFrontendWatches(t *testing.T) {
	// Regression: a destroyed guest's netfront watch must leave the
	// store, or churn makes every write progressively slower.
	e := NewEnv(sim.NewClock(), sched.Xeon4)
	drv := e.ForMode(ModeChaosXS)
	baseline := e.Store.NumWatches()
	for i := 0; i < 20; i++ {
		vm, err := drv.Create(fmt.Sprintf("churn%d", i), guest.Daytime())
		if err != nil {
			t.Fatal(err)
		}
		if err := drv.Destroy(vm); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.Store.NumWatches(); got != baseline {
		t.Fatalf("watches leaked under churn: %d → %d", baseline, got)
	}
}
