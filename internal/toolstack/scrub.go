package toolstack

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"lightvm/internal/hv"
	"lightvm/internal/xenbus"
)

// The scrubber is the recovery half of the crash-consistent lifecycle
// (crash.go is the journaling half): what a restarted toolstack runs
// before accepting new work. It first replays the intent journal —
// destroy intents roll forward (finish the teardown the user asked
// for), create/clone/prepare intents roll back (reap the half-built
// domain) — then, on the store-based designs only, sweeps the whole
// registry for anything the journal did not cover.
//
// The cost asymmetry the paper predicts emerges from mechanism, not
// from tuned constants: chaos recovery is one journal ioctl plus
// per-domain teardown (the noxs module holds all truth in kernel
// memory), while xl recovery must Directory-walk /local/domain, /vm,
// /vm/names and the backend trees, paying a store round trip per node
// it touches — a walk whose cost grows with everything every toolstack
// ever leaked.

// ScrubReport summarizes one recovery pass.
type ScrubReport struct {
	Mode     Mode
	Journals int // intent records replayed (rolled forward or back)
	Orphans  int // leaked domains reaped (hv + devices + memory)
	Residue  int // stale registry litter removed (store paths, watches)
	Duration time.Duration
}

// Add accumulates another pass into r (churn loops aggregate).
func (r *ScrubReport) Add(o ScrubReport) {
	r.Journals += o.Journals
	r.Orphans += o.Orphans
	r.Residue += o.Residue
	r.Duration += o.Duration
}

// Scrub runs recovery for a toolstack of the given mode: journal
// replay always, plus the whole-store orphan sweep on store-based
// modes. It charges virtual time like any other toolstack operation
// and is idempotent — a second pass finds nothing.
func (e *Env) Scrub(mode Mode) ScrubReport {
	start := e.Clock.Now()
	r := ScrubReport{Mode: mode}
	us := mode.UsesStore()
	e.RunDom0(func() {
		for _, rec := range e.journalEntries(us) {
			e.replayJournal(rec, us, &r)
		}
		if us {
			e.sweepStore(&r)
		}
	})
	r.Duration = e.Clock.Now().Sub(start)
	e.Trace.Emit("toolstack", "scrub", mode.String(),
		fmt.Sprintf("journals=%d orphans=%d residue=%d", r.Journals, r.Orphans, r.Residue), r.Duration)
	return r
}

// replayJournal recovers one intent record. Both directions converge
// on reapDomain: for a destroy intent that IS the roll-forward, for
// every other op it is the roll-back of whatever had been built.
func (e *Env) replayJournal(rec journalRecord, useStore bool, r *ScrubReport) {
	if rec.Op == journalOpLease {
		// Not an intent: a durable ownership claim. Valid claims stay;
		// stale ones fence the local copy (lease.go).
		e.scrubLease(rec, useStore, r)
		return
	}
	_ = e.reapDomain(rec.Dom, useStore, rec.Key, r)
	// Clear directly (not via the gated journalClear): the record
	// exists, whatever the injector's current plan says.
	if useStore {
		_ = e.Store.Rm(journalRoot + "/" + rec.Key)
	} else {
		e.Noxs.JournalClear(rec.Key)
	}
	r.Journals++
	e.Trace.Emit("toolstack", "recover", rec.Key, "op="+rec.Op+" step="+rec.Step, 0)
}

// backendFor maps a device kind to its Dom0 backend.
func (e *Env) backendFor(kind hv.DevKind) *xenbus.Backend {
	switch kind {
	case hv.DevVif:
		return e.BackVif
	case hv.DevVbd:
		return e.BackVbd
	default:
		return e.BackConsole
	}
}

// scrubKinds is the fixed walk order over device kinds.
var scrubKinds = []hv.DevKind{hv.DevVif, hv.DevVbd, hv.DevConsole}

// reapDomain reclaims everything a half-done operation may have left
// for one domain: device state (store dirs + backend teardown, or the
// noxs device page), registry entries, and the domain itself with its
// memory, event channels and grants. name is the journal key; for VM
// keys the /vm/<name> tree is removed too. r may be nil (rollback
// callers reap without reporting); the returned error is the domain
// destroy's, for callers that must not swallow it.
func (e *Env) reapDomain(dom hv.DomID, useStore bool, name string, r *ScrubReport) error {
	var destroyErr error
	if dom != 0 {
		if useStore {
			for _, kind := range scrubKinds {
				dir := fmt.Sprintf("/local/domain/0/backend/%s/%d", xenbus.KindName(kind), dom)
				idxs, err := e.Store.Directory(dir)
				if err != nil {
					continue
				}
				sort.Strings(idxs)
				for _, is := range idxs {
					idx, aerr := strconv.Atoi(is)
					if aerr != nil {
						continue
					}
					e.backendFor(kind).Teardown(dom, idx)
					xenbus.RemoveDeviceEntries(e.Store, dom, kind, idx)
				}
				_ = e.Store.Rm(dir)
			}
			_ = e.Store.Rm(xenbus.DomainPath(dom))
			_ = e.Store.Rm(fmt.Sprintf("/vm/names/%d", dom))
		} else {
			e.Noxs.DestroyAll(dom)
		}
		if _, err := e.HV.Domain(dom); err == nil {
			destroyErr = e.HV.DestroyDomain(dom)
			if r != nil {
				r.Orphans++
			}
		}
	}
	if useStore && name != "" && !strings.HasPrefix(name, "shell:") {
		_ = e.Store.Rm("/vm/" + name)
	}
	return destroyErr
}

// rollbackDomain is the non-crash failure path's cleanup: reap
// everything the half-done operation built — device state, registry
// entries and the domain itself — exactly as the scrubber would, and
// join any teardown failure onto err instead of swallowing it, so a
// rollback that itself fails is never silent.
func (e *Env) rollbackDomain(err error, useStore bool, name string, dom hv.DomID) error {
	if derr := e.reapDomain(dom, useStore, name, nil); derr != nil {
		err = errors.Join(err, fmt.Errorf("toolstack: rollback of %q: %w", name, derr))
	}
	return err
}

// liveDomains is the set of domains the control plane still claims:
// Dom0, every tracked VM, and every pooled shell.
func (e *Env) liveDomains() map[hv.DomID]bool {
	live := map[hv.DomID]bool{0: true}
	for _, vm := range e.vms {
		if vm.Dom != nil {
			live[vm.Dom.ID] = true
		}
	}
	for _, id := range e.Pool.ShellDomIDs() {
		live[id] = true
	}
	return live
}

// sweepStore is the xl-style full-registry scan: every Directory read
// and Rm below is a charged store operation, so its cost scales with
// the registry's size — including litter left by OTHER crashed
// operations, which is exactly the degradation Fig. 5 describes.
func (e *Env) sweepStore(r *ScrubReport) {
	live := e.liveDomains()
	// Orphan domain subtrees: a /local/domain/<id> with no live claim.
	if ids, err := e.Store.Directory("/local/domain"); err == nil {
		sort.Strings(ids)
		for _, s := range ids {
			id, aerr := strconv.Atoi(s)
			if aerr != nil || id == 0 || live[hv.DomID(id)] {
				continue
			}
			had := r.Orphans
			e.reapDomain(hv.DomID(id), true, "", r)
			if r.Orphans == had {
				r.Residue++ // dir only; the hv domain was already gone
			}
		}
	}
	// Stale name registrations (/vm/names/<id> → name, /vm/<name>).
	if ids, err := e.Store.Directory("/vm/names"); err == nil {
		sort.Strings(ids)
		for _, s := range ids {
			id, aerr := strconv.Atoi(s)
			if aerr != nil || live[hv.DomID(id)] {
				continue
			}
			_ = e.Store.Rm("/vm/names/" + s)
			r.Residue++
		}
	}
	if names, err := e.Store.Directory("/vm"); err == nil {
		sort.Strings(names)
		for _, n := range names {
			if n == "names" {
				continue
			}
			if _, ok := e.vms[n]; ok {
				continue
			}
			_ = e.Store.Rm("/vm/" + n)
			r.Residue++
		}
	}
	// Empty per-domain backend parents for dead domains.
	for _, kind := range scrubKinds {
		root := "/local/domain/0/backend/" + xenbus.KindName(kind)
		doms, err := e.Store.Directory(root)
		if err != nil {
			continue
		}
		sort.Strings(doms)
		for _, s := range doms {
			id, aerr := strconv.Atoi(s)
			if aerr != nil || live[hv.DomID(id)] {
				continue
			}
			_ = e.Store.Rm(root + "/" + s)
			r.Residue++
		}
	}
	// Orphan frontend watches: tokens of the form fe-<dom>-... whose
	// domain is gone. Listing is free (daemon-internal table); each
	// removal is a charged store op.
	for _, tok := range e.Store.WatchTokens() {
		dom, ok := frontendWatchDom(tok)
		if !ok || live[dom] {
			continue
		}
		e.Store.UnwatchByToken(tok)
		r.Residue++
	}
}

// frontendWatchDom parses the domain out of a frontend watch token
// ("fe-<dom>-<kind>-<idx>"); ok is false for any other token.
func frontendWatchDom(tok string) (hv.DomID, bool) {
	rest, found := strings.CutPrefix(tok, "fe-")
	if !found {
		return 0, false
	}
	ds, _, found := strings.Cut(rest, "-")
	if !found {
		return 0, false
	}
	id, err := strconv.Atoi(ds)
	if err != nil {
		return 0, false
	}
	return hv.DomID(id), true
}
