package toolstack

import (
	"errors"
	"strconv"
	"time"

	"lightvm/internal/costs"
	"lightvm/internal/guest"
	"lightvm/internal/hv"
	"lightvm/internal/xenbus"
	"lightvm/internal/xenstore"
)

// Chaos is LightVM's lean toolstack (libchaos + chaos command, §5.1):
// minimal config format, xendevd instead of hotplug scripts, far fewer
// store interactions — or none at all with noxs — and optionally the
// split toolstack's pre-created shells.
type Chaos struct {
	env  *Env
	mode Mode
}

// NewChaos returns a chaos driver in one of the non-xl modes.
func NewChaos(env *Env, mode Mode) *Chaos {
	if mode == ModeXL {
		panic("toolstack: NewChaos with ModeXL")
	}
	if env.Faults != nil {
		// Under the fault plane, vif setup degrades to bash scripts
		// while the pool daemon is down (SetFaults installs the same
		// shim if the injector is attached after the driver).
		env.armVifFailover()
	} else {
		env.SetVifHotplug(env.Xendevd)
	}
	return &Chaos{env: env, mode: mode}
}

// Name implements Driver.
func (c *Chaos) Name() string { return c.mode.String() }

// Mode reports the configuration.
func (c *Chaos) Mode() Mode { return c.mode }

// Create implements Driver.
func (c *Chaos) Create(name string, img guest.Image) (*VM, error) {
	e := c.env
	vm := &VM{Name: name, Image: img, Mode: c.mode}
	if err := e.register(vm); err != nil {
		return nil, err
	}
	var bd Breakdown
	var retErr error
	start := e.Clock.Now()

	e.RunDom0(func() {
		mark := func(dst *time.Duration, fn func()) {
			t0 := e.Clock.Now()
			fn()
			*dst += e.Clock.Now().Sub(t0)
		}

		mark(&bd.Config, func() { e.Clock.Sleep(costs.ConfigParseChaos) })
		// The intent journal goes where this mode keeps its truth: a
		// store node on the XS paths, the noxs module's kernel-side
		// table otherwise. Written before any durable state, updated
		// once the domain ID is known.
		us := c.mode.UsesStore()
		mark(&bd.Toolstack, func() { e.journalSet(us, name, journalOpCreate, "hv", 0) })
		if retErr = e.crashPoint("chaos.create.begin"); retErr != nil {
			return
		}
		mark(&bd.Toolstack, func() { e.Clock.Sleep(costs.ToolstackInternalChaos) })

		flavor := FlavorFor(img, us)
		if c.mode.UsesSplit() {
			// Execute phase on a pre-created shell.
			var shell *Shell
			mark(&bd.Toolstack, func() {
				shell = e.Pool.Take(flavor)
			})
			if shell == nil {
				// Pool miss: prepare inline, paying full price. Prepare
				// has its own crash points journaled under shell:<id>.
				mark(&bd.Hypervisor, func() {
					var err error
					shell, err = e.Pool.Prepare(flavor)
					if err != nil {
						retErr = err
					}
				})
				if retErr != nil {
					return
				}
			}
			vm.Dom, vm.Core = shell.Dom, shell.Core
			mark(&bd.Toolstack, func() { e.journalSet(us, name, journalOpCreate, "finalize", vm.Dom.ID) })
			mark(&bd.Devices, func() { retErr = e.Pool.finalizeDevices(shell, img) })
			if retErr != nil {
				return
			}
		} else {
			vm.Core = e.Sched.Place()
			mark(&bd.Hypervisor, func() {
				dom, err := e.HV.CreateDomain(hv.Config{
					MaxMem: img.MemBytes, VCPUs: 1, Cores: []int{vm.Core},
				})
				if err != nil {
					retErr = err
					return
				}
				vm.Dom = dom
				retErr = e.PopulateGuest(dom.ID, img)
			})
			if retErr != nil {
				return
			}
			mark(&bd.Toolstack, func() { e.journalSet(us, name, journalOpCreate, "devices", vm.Dom.ID) })
			if retErr = e.crashPoint("chaos.create.hv"); retErr != nil {
				return
			}
			mark(&bd.Devices, func() { retErr = c.createDevices(vm) })
			if retErr != nil {
				return
			}
		}
		if retErr = e.crashPoint("chaos.create.devices"); retErr != nil {
			return
		}

		if us {
			// chaos keeps only the handful of entries guests need.
			mark(&bd.XenStore, func() { retErr = e.storeQuotaGate(vm.Dom.ID, "chaos.create.store") })
			if retErr != nil {
				return
			}
			mark(&bd.XenStore, func() {
				domPath := xenbus.DomainPath(vm.Dom.ID)
				e.Store.Write(domPath+"/name", name)
				e.Store.Write(domPath+"/memory/target", strconv.FormatUint(img.MemBytes/1024, 10))
				e.Store.Write(domPath+"/console/port", "2")
			})
			if retErr = e.crashPoint("chaos.create.store"); retErr != nil {
				return
			}
		}

		mark(&bd.Load, func() {
			retErr = e.HV.LoadImage(vm.Dom.ID, img.Name, img.TotalSize())
		})
		if retErr != nil {
			return
		}
		mark(&bd.Hypervisor, func() { retErr = e.HV.Unpause(vm.Dom.ID) })
		if retErr != nil {
			return
		}
		retErr = e.crashPoint("chaos.create.finalize")
	})
	if retErr != nil {
		e.forget(vm)
		if errors.Is(retErr, ErrToolstackCrash) {
			// Process died mid-creation: partial state stays for recovery.
			return nil, retErr
		}
		if vm.Dom != nil {
			retErr = e.rollbackDomain(retErr, c.mode.UsesStore(), name, vm.Dom.ID)
		}
		e.journalClear(c.mode.UsesStore(), name)
		return nil, retErr
	}
	e.journalClear(c.mode.UsesStore(), name)
	vm.LastBreakdown = bd
	vm.CreateTime = e.Clock.Now().Sub(start)

	bootStart := e.Clock.Now()
	if err := e.BootGuest(vm); err != nil {
		_ = c.Destroy(vm)
		return nil, err
	}
	vm.BootTime = e.Clock.Now().Sub(bootStart)
	e.Trace.Emit("toolstack", "create", name, "mode="+c.mode.String(), vm.CreateTime+vm.BootTime)
	return vm, nil
}

// createDevices builds devices inline (non-split path).
func (c *Chaos) createDevices(vm *VM) error {
	e := c.env
	if c.mode.UsesStore() {
		for i, dev := range vm.Image.Devices {
			req := xenbus.DeviceReq{Kind: dev.Kind, Dom: vm.Dom.ID, Idx: i, MAC: dev.MAC}
			if err := e.Store.Txn(8, func(tx *xenstore.Tx) error {
				xenbus.WriteDeviceEntries(tx, req)
				return nil
			}); err != nil {
				return err
			}
			if err := xenbus.WaitBackendReady(e.Store, e.Clock, vm.Dom.ID, dev.Kind, i); err != nil {
				return err
			}
		}
		return nil
	}
	for i, dev := range vm.Image.Devices {
		if _, err := e.Noxs.CreateDevice(vm.Dom.ID, dev.Kind, i, dev.MAC); err != nil {
			return err
		}
	}
	// The sysctl power device replaces XenStore-based control.
	_, err := e.Noxs.CreateDevice(vm.Dom.ID, hv.DevSysctl, 0, "")
	return err
}

// Destroy implements Driver. As in xl, crash points sit after the
// guest is unregistered, and the destroy intent rolls forward on
// recovery.
func (c *Chaos) Destroy(vm *VM) error {
	e := c.env
	// Ownership fence, as in xl: stale-epoch teardowns are rejected.
	if err := e.CheckLease(vm.Name); err != nil {
		return err
	}
	us := c.mode.UsesStore()
	var crashErr error
	e.RunDom0(func() {
		e.UnregisterRunning(vm)
		e.journalSet(us, vm.Name, journalOpDestroy, "devices", vm.Dom.ID)
		if crashErr = e.crashPoint("chaos.destroy.begin"); crashErr != nil {
			return
		}
		if us {
			for i, dev := range vm.Image.Devices {
				switch dev.Kind {
				case hv.DevVif:
					e.BackVif.Teardown(vm.Dom.ID, i)
				case hv.DevVbd:
					e.BackVbd.Teardown(vm.Dom.ID, i)
				case hv.DevConsole:
					e.BackConsole.Teardown(vm.Dom.ID, i)
				}
				xenbus.RemoveDeviceEntries(e.Store, vm.Dom.ID, dev.Kind, i)
			}
			if crashErr = e.crashPoint("chaos.destroy.devices"); crashErr != nil {
				return
			}
			_ = e.Store.Rm(xenbus.DomainPath(vm.Dom.ID))
		} else {
			e.Noxs.DestroyAll(vm.Dom.ID)
			if crashErr = e.crashPoint("chaos.destroy.devices"); crashErr != nil {
				return
			}
		}
		e.Clock.Sleep(costs.ToolstackInternalChaos)
	})
	e.forget(vm)
	if crashErr != nil {
		return crashErr
	}
	if crashErr = e.crashPoint("chaos.destroy.hv"); crashErr != nil {
		return crashErr
	}
	err := e.HV.DestroyDomain(vm.Dom.ID)
	e.journalClear(us, vm.Name)
	e.Trace.Emit("toolstack", "destroy", vm.Name, "mode="+c.mode.String(), 0)
	return err
}
