package toolstack

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"lightvm/internal/faults"
	"lightvm/internal/hv"
)

// Crash-consistent lifecycle support: labeled crash points, and the
// per-domain intent journal a restarted toolstack recovers from.
//
// A toolstack is a user-space process; it can die between any two
// steps of a multi-step lifecycle operation, stranding whatever state
// — store nodes, device-page entries, hypervisor domains, pool shells
// — it had built so far. faults.KindToolstackCrash models exactly
// that: when it fires at a labeled crash point the operation aborts on
// the spot, runs NO rollback (the process is gone), and leaves the
// partial state for recovery (scrub.go) to find.
//
// The intent journal records, before each step, what the toolstack is
// about to do. It lives where each design keeps its truth:
//
//   - xl / chaos[XS]: a store node /tool/journal/<key> — surviving the
//     toolstack because the store daemon is a separate process;
//   - chaos[noxs]: the noxs module's journal table — surviving because
//     it is Dom0 kernel memory (noxs.Module.JournalSet).
//
// Everything here is gated on the crash kind being planned
// (Env.crashEnabled): fault-free runs and the pre-existing rate sweeps
// write no journal, consult no decision stream, and charge zero extra
// virtual time, so their figures stay byte-identical.

// ErrToolstackCrash marks an operation aborted by an injected
// toolstack crash. Unlike every other failure the toolstack does NOT
// roll back — match with errors.Is and run recovery (RecoverJournal
// or Scrub) before reusing the environment.
var ErrToolstackCrash = errors.New("toolstack: toolstack crashed at injected crash point")

// Journal ops (what the record's step belongs to). Destroy intents
// roll forward on recovery — the user asked for the domain to go, and
// real xl finishes a half-done teardown; every other op rolls back —
// real xl destroys a domain whose creation failed halfway.
const (
	journalOpCreate  = "create"
	journalOpDestroy = "destroy"
	journalOpClone   = "clone"
	journalOpPrepare = "prepare"
	// journalOpLease is not a lifecycle intent but a durable ownership
	// claim (lease.go): it is neither rolled forward nor back — the
	// scrubber validates it against the cluster's epoch table instead.
	journalOpLease = "lease"
)

// journalRoot is the store directory xl-style journals live under.
const journalRoot = "/tool/journal"

// journalRecord is one parsed intent-journal entry.
type journalRecord struct {
	Key   string // VM name, "shell:<domid>" for pool prepares, "lease:<vm>" for leases
	Op    string // journalOp*
	Step  string // the step that was about to run when the record was current
	Dom   hv.DomID
	Epoch uint64 // lease records only: the placement epoch claimed
}

// encode renders the record's store/module value.
func (r journalRecord) encode() string {
	if r.Epoch != 0 {
		return fmt.Sprintf("op=%s step=%s dom=%d epoch=%d", r.Op, r.Step, r.Dom, r.Epoch)
	}
	return fmt.Sprintf("op=%s step=%s dom=%d", r.Op, r.Step, r.Dom)
}

// parseJournalRecord decodes a journal value; malformed fields are
// left zero (the scrubber treats an unparsable record as roll-back
// with no known domain, reclaiming by sweep instead).
func parseJournalRecord(key, value string) journalRecord {
	r := journalRecord{Key: key}
	for _, f := range strings.Fields(value) {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			continue
		}
		switch k {
		case "op":
			r.Op = v
		case "step":
			r.Step = v
		case "dom":
			if id, err := strconv.Atoi(v); err == nil {
				r.Dom = hv.DomID(id)
			}
		case "epoch":
			if ep, err := strconv.ParseUint(v, 10, 64); err == nil {
				r.Epoch = ep
			}
		}
	}
	return r
}

// crashEnabled reports whether toolstack crashes are planned at all —
// the single gate for every journal write and crash-point check.
func (e *Env) crashEnabled() bool {
	return e.Faults.Enabled(faults.KindToolstackCrash)
}

// crashPoint consults the fault plane at a labeled site. It returns
// nil (and consumes nothing) when crashes are not planned; on a fire
// it returns ErrToolstackCrash wrapped with the site label, and the
// caller must abort immediately without rolling back.
func (e *Env) crashPoint(site string) error {
	if !e.crashEnabled() {
		return nil
	}
	if !e.Faults.FireSite(faults.KindToolstackCrash, site) {
		return nil
	}
	e.Trace.Emit("toolstack", "crash", site, "", 0)
	return fmt.Errorf("%w: %s", ErrToolstackCrash, site)
}

// journalSet records the step about to run for key. useStore selects
// the xl/store journal versus the noxs module journal; the write is
// charged like any other store op / ioctl.
func (e *Env) journalSet(useStore bool, key, op, step string, dom hv.DomID) {
	if !e.crashEnabled() {
		return
	}
	rec := journalRecord{Key: key, Op: op, Step: step, Dom: dom}
	if useStore {
		e.Store.Write(journalRoot+"/"+key, rec.encode())
	} else {
		e.Noxs.JournalSet(key, rec.encode())
	}
}

// journalClear removes key's record once the operation has fully
// completed (or been rolled back in-line by a surviving toolstack).
func (e *Env) journalClear(useStore bool, key string) {
	if !e.crashEnabled() {
		return
	}
	if useStore {
		_ = e.Store.Rm(journalRoot + "/" + key)
	} else {
		e.Noxs.JournalClear(key)
	}
}

// journalEntries reads the current journal for one device path,
// charging the read like the recovering toolstack would (a directory
// walk on the store side, one ioctl on the noxs side).
func (e *Env) journalEntries(useStore bool) []journalRecord {
	var out []journalRecord
	if useStore {
		keys, err := e.Store.Directory(journalRoot)
		if err != nil {
			return nil
		}
		for _, k := range keys {
			v, err := e.Store.Read(journalRoot + "/" + k)
			if err != nil {
				continue
			}
			out = append(out, parseJournalRecord(k, v))
		}
		return out
	}
	for _, ent := range e.Noxs.JournalScan() {
		out = append(out, parseJournalRecord(ent.Key, ent.Record))
	}
	return out
}
