package toolstack

import (
	"time"

	"lightvm/internal/faults"
	"lightvm/internal/guest"
	"lightvm/internal/hv"
	"lightvm/internal/mm"
	"lightvm/internal/xenstore"
)

// Memory-pressure episodes (faults.KindMemPressure): the simulated
// dom0 balloon — standing in for a log burst, a cache filling, a noisy
// management daemon — inflates and withholds almost all of the host's
// free pages for a while. Guest creations during the episode fail with
// mm.ErrOutOfMemory (the serving plane maps that to a typed capacity
// rejection), and dedup'd populations lose their COW headroom, so they
// fall back to private memory exactly as a real share pool under
// pressure breaks COW. The balloon never allocates real extents —
// mm.SetPressurePages only shrinks headroom — so the buddy structure,
// the fsck invariants and every owner ledger stay untouched.

// Pressure-episode shape: the balloon leaves only a sliver of headroom
// (a deterministic multiple of the image being populated, so some
// creations may still squeeze through) and deflates after a base
// duration plus seeded jitter.
const (
	pressureHeadroomImages = 4
	pressureBaseDur        = 100 * time.Millisecond
	pressureJitterMax      = 400 * time.Millisecond
)

// memPressureGate is consulted once per guest-population opportunity.
// It expires a finished episode, and — when the fault plane says so —
// starts a new one sized against img. Episodes do not overlap: while
// the balloon is inflated no new decisions are drawn, so the stream
// advances one position per populate attempt outside an episode.
func (e *Env) memPressureGate(img guest.Image) {
	in := e.Faults
	if !in.Enabled(faults.KindMemPressure) {
		return
	}
	now := e.Clock.Now()
	if e.pressurePages > 0 {
		if now < e.pressureUntil {
			return
		}
		e.HV.Mem.SetPressurePages(0)
		e.pressurePages = 0
	}
	if !in.FireSite(faults.KindMemPressure, "mm.populate") {
		return
	}
	free := e.HV.Mem.FreePages()
	headroom := (in.Fraction(faults.KindMemPressure) * pressureHeadroomImages *
		float64(img.MemBytes)) / float64(mm.PageSize)
	withhold := uint64(0)
	if h := uint64(headroom); free > h {
		withhold = free - h
	}
	if withhold == 0 {
		return
	}
	e.pressurePages = withhold
	e.pressureUntil = now.Add(pressureBaseDur + in.Jitter(faults.KindMemPressure, pressureJitterMax))
	e.HV.Mem.SetPressurePages(withhold)
}

// UnderMemPressure reports whether a pressure episode is currently
// holding the balloon inflated.
func (e *Env) UnderMemPressure() bool { return e.pressurePages > 0 }

// storeQuotaGate is the create-path injection site for
// faults.KindStoreQuota: when it fires, the store daemon refuses the
// domain's registry writes as if the domain were at its node quota.
// One daemon round trip is charged (the cost of being told no) and
// the typed refusal propagates out of Create, where the normal error
// path rolls the half-built domain back — the caller sees a clean
// *xenstore.ErrQuotaExceeded, never torn state.
func (e *Env) storeQuotaGate(id hv.DomID, site string) error {
	if !e.Faults.Enabled(faults.KindStoreQuota) {
		return nil
	}
	if !e.Faults.FireSite(faults.KindStoreQuota, site) {
		return nil
	}
	e.Store.ChargeRefusal()
	return &xenstore.ErrQuotaExceeded{Domain: int(id), Resource: "nodes",
		Limit: xenstore.DefaultNodeQuota, Used: xenstore.DefaultNodeQuota}
}
