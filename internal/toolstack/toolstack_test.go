package toolstack

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"lightvm/internal/guest"
	"lightvm/internal/sched"
	"lightvm/internal/sim"
)

func newEnv() *Env {
	return NewEnv(sim.NewClock(), sched.Xeon4)
}

func TestModeStrings(t *testing.T) {
	want := map[Mode]string{
		ModeXL: "xl", ModeChaosXS: "chaos [XS]", ModeChaosSplit: "chaos [XS+split]",
		ModeChaosNoXS: "chaos [NoXS]", ModeLightVM: "LightVM",
	}
	for m, s := range want {
		if m.String() != s {
			t.Fatalf("%d.String() = %q, want %q", m, m.String(), s)
		}
	}
	if !ModeXL.UsesStore() || ModeLightVM.UsesStore() {
		t.Fatal("UsesStore wrong")
	}
	if !ModeLightVM.UsesSplit() || ModeChaosNoXS.UsesSplit() {
		t.Fatal("UsesSplit wrong")
	}
}

func TestCreateDestroyAllModes(t *testing.T) {
	for _, mode := range []Mode{ModeXL, ModeChaosXS, ModeChaosSplit, ModeChaosNoXS, ModeLightVM} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			e := newEnv()
			drv := e.ForMode(mode)
			if mode.UsesSplit() {
				e.Pool.flavors[FlavorFor(guest.Daytime(), mode.UsesStore()).key()] = FlavorFor(guest.Daytime(), mode.UsesStore())
				if err := e.Pool.Replenish(); err != nil {
					t.Fatal(err)
				}
			}
			vm, err := drv.Create("g1", guest.Daytime())
			if err != nil {
				t.Fatal(err)
			}
			if !vm.Booted {
				t.Fatal("VM not booted after Create")
			}
			if vm.CreateTime <= 0 || vm.BootTime <= 0 {
				t.Fatalf("times: create=%v boot=%v", vm.CreateTime, vm.BootTime)
			}
			if e.VMs() != 1 {
				t.Fatalf("env tracks %d VMs", e.VMs())
			}
			usedBefore := e.HV.UsedMemBytes()
			if err := drv.Destroy(vm); err != nil {
				t.Fatal(err)
			}
			if e.VMs() != 0 {
				t.Fatal("VM not forgotten after destroy")
			}
			if e.HV.UsedMemBytes() >= usedBefore {
				t.Fatal("destroy did not release memory")
			}
		})
	}
}

func TestDuplicateNameRejected(t *testing.T) {
	e := newEnv()
	drv := e.ForMode(ModeChaosNoXS)
	if _, err := drv.Create("dup", guest.Noop()); err != nil {
		t.Fatal(err)
	}
	if _, err := drv.Create("dup", guest.Noop()); !errors.Is(err, ErrDuplicateName) {
		t.Fatalf("duplicate create: %v", err)
	}
}

func TestVMLookup(t *testing.T) {
	e := newEnv()
	drv := e.ForMode(ModeChaosNoXS)
	vm, _ := drv.Create("findme", guest.Noop())
	got, err := e.VM("findme")
	if err != nil || got != vm {
		t.Fatalf("VM lookup: %v", err)
	}
	if _, err := e.VM("ghost"); !errors.Is(err, ErrUnknownVM) {
		t.Fatalf("ghost lookup: %v", err)
	}
}

func TestXLBreakdownShape(t *testing.T) {
	e := newEnv()
	drv := e.ForMode(ModeXL)
	vm, err := drv.Create("bd", guest.Daytime())
	if err != nil {
		t.Fatal(err)
	}
	bd := vm.LastBreakdown
	if bd.XenStore == 0 || bd.Devices == 0 || bd.Hypervisor == 0 || bd.Load == 0 || bd.Config == 0 {
		t.Fatalf("breakdown has empty categories: %+v", bd)
	}
	// At N=0, device creation (bash hotplug) dominates — Fig. 5:
	// "Device creation dominates the guest instantiation times when
	// the number of currently running guests is low".
	if bd.Devices <= bd.XenStore {
		t.Fatalf("at N=0 devices (%v) should dominate xenstore (%v)", bd.Devices, bd.XenStore)
	}
	// The breakdown should account for (almost all of) the total.
	sum := bd.Total()
	if sum > vm.CreateTime || vm.CreateTime-sum > vm.CreateTime/4 {
		t.Fatalf("breakdown sum %v vs create %v", sum, vm.CreateTime)
	}
}

func TestXenStoreCategoryGrows(t *testing.T) {
	// Fig. 5: "the time spent on XenStore interactions increases
	// superlinearly" while "device creation ... stays roughly constant".
	e := newEnv()
	drv := e.ForMode(ModeXL)
	first, err := drv.Create("g0", guest.Daytime())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 120; i++ {
		if _, err := drv.Create(fmt.Sprintf("g%d", i), guest.Daytime()); err != nil {
			t.Fatal(err)
		}
	}
	last, err := drv.Create("gN", guest.Daytime())
	if err != nil {
		t.Fatal(err)
	}
	if last.LastBreakdown.XenStore < 2*first.LastBreakdown.XenStore {
		t.Fatalf("xenstore category flat: %v → %v",
			first.LastBreakdown.XenStore, last.LastBreakdown.XenStore)
	}
	ratio := float64(last.LastBreakdown.Devices) / float64(first.LastBreakdown.Devices)
	if ratio > 1.5 {
		t.Fatalf("devices category grew %.2f×, should stay ~constant", ratio)
	}
}

func TestCreationTimeOrderingAcrossModes(t *testing.T) {
	// Fig. 9 at N≈100: xl > chaos[XS] > chaos[XS+split] > chaos[NoXS]
	// ≥ LightVM.
	times := map[Mode]time.Duration{}
	for _, mode := range []Mode{ModeXL, ModeChaosXS, ModeChaosSplit, ModeChaosNoXS, ModeLightVM} {
		e := newEnv()
		drv := e.ForMode(mode)
		for i := 0; i < 100; i++ {
			if mode.UsesSplit() {
				if err := e.Pool.Replenish(); err != nil {
					t.Fatal(err)
				}
				e.Pool.flavors[FlavorFor(guest.Daytime(), mode.UsesStore()).key()] = FlavorFor(guest.Daytime(), mode.UsesStore())
			}
			if _, err := drv.Create(fmt.Sprintf("g%d", i), guest.Daytime()); err != nil {
				t.Fatal(err)
			}
		}
		vm, err := drv.Create("probe", guest.Daytime())
		if err != nil {
			t.Fatal(err)
		}
		times[mode] = vm.CreateTime + vm.BootTime
	}
	order := []Mode{ModeXL, ModeChaosXS, ModeChaosSplit, ModeChaosNoXS}
	for i := 0; i < len(order)-1; i++ {
		if times[order[i]] <= times[order[i+1]] {
			t.Fatalf("ordering violated: %v(%v) ≤ %v(%v); all=%v",
				order[i], times[order[i]], order[i+1], times[order[i+1]], times)
		}
	}
	if times[ModeLightVM] > times[ModeChaosNoXS] {
		t.Fatalf("LightVM (%v) slower than chaos[NoXS] (%v)", times[ModeLightVM], times[ModeChaosNoXS])
	}
}

func TestLightVMNoopFloor(t *testing.T) {
	// §6.1: "a noop unikernel with no devices and all optimizations
	// results in a minimum boot time of 2.3ms". Ours must land in the
	// same ballpark (1–4 ms).
	e := newEnv()
	drv := e.ForMode(ModeLightVM)
	if err := e.Pool.Replenish(); err != nil {
		t.Fatal(err)
	}
	// Seed the flavor, replenish, then measure.
	f := FlavorFor(guest.Noop(), false)
	e.Pool.flavors[f.key()] = f
	if err := e.Pool.Replenish(); err != nil {
		t.Fatal(err)
	}
	vm, err := drv.Create("noop", guest.Noop())
	if err != nil {
		t.Fatal(err)
	}
	total := vm.CreateTime + vm.BootTime
	if total < time.Millisecond || total > 4*time.Millisecond {
		t.Fatalf("LightVM noop create+boot = %v, want ≈2.3ms", total)
	}
	if e.Pool.Stats.Misses != 0 {
		t.Fatalf("pool missed %d times", e.Pool.Stats.Misses)
	}
}

func TestLightVMFlatScaling(t *testing.T) {
	// Fig. 9: "boot times as low as 4ms going up to just 4.1ms for the
	// 1,000th VM" — creation must be essentially flat. We check 300
	// guests: growth below 30%.
	e := newEnv()
	drv := e.ForMode(ModeLightVM)
	f := FlavorFor(guest.Daytime(), false)
	e.Pool.flavors[f.key()] = f
	var firstTime, lastTime time.Duration
	for i := 0; i < 300; i++ {
		if err := e.Pool.Replenish(); err != nil {
			t.Fatal(err)
		}
		vm, err := drv.Create(fmt.Sprintf("g%d", i), guest.Daytime())
		if err != nil {
			t.Fatal(err)
		}
		total := vm.CreateTime + vm.BootTime
		if i == 0 {
			firstTime = total
		}
		if i == 299 {
			lastTime = total
		}
	}
	if float64(lastTime) > 1.3*float64(firstTime) {
		t.Fatalf("LightVM not flat: first=%v last=%v", firstTime, lastTime)
	}
}

func TestPoolMissFallsBackInline(t *testing.T) {
	e := newEnv()
	drv := e.ForMode(ModeLightVM)
	// Empty pool: creation must still succeed (inline prepare) and
	// record a miss.
	vm, err := drv.Create("miss", guest.Daytime())
	if err != nil {
		t.Fatal(err)
	}
	if e.Pool.Stats.Misses != 1 {
		t.Fatalf("misses = %d", e.Pool.Stats.Misses)
	}
	if !vm.Booted {
		t.Fatal("VM not booted after inline fallback")
	}
}

func TestPoolHitFasterThanMiss(t *testing.T) {
	e := newEnv()
	drv := e.ForMode(ModeLightVM)
	vmMiss, err := drv.Create("m", guest.Daytime())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Pool.Replenish(); err != nil {
		t.Fatal(err)
	}
	vmHit, err := drv.Create("h", guest.Daytime())
	if err != nil {
		t.Fatal(err)
	}
	if vmHit.CreateTime >= vmMiss.CreateTime {
		t.Fatalf("pool hit (%v) not faster than miss (%v)", vmHit.CreateTime, vmMiss.CreateTime)
	}
}

func TestPoolReplenishKeepsDepth(t *testing.T) {
	e := newEnv()
	e.Pool.SetTarget(5)
	f := FlavorFor(guest.Noop(), false)
	e.Pool.flavors[f.key()] = f
	if err := e.Pool.Replenish(); err != nil {
		t.Fatal(err)
	}
	if got := e.Pool.Available(f); got != 5 {
		t.Fatalf("pool depth %d, want 5", got)
	}
	s := e.Pool.Take(f)
	if s == nil {
		t.Fatal("Take returned nil with stocked pool")
	}
	if got := e.Pool.Available(f); got != 4 {
		t.Fatalf("depth after take %d", got)
	}
	if err := e.Pool.Replenish(); err != nil {
		t.Fatal(err)
	}
	if got := e.Pool.Available(f); got != 5 {
		t.Fatalf("depth after replenish %d", got)
	}
}

func TestNoXSCreateTouchesNoStore(t *testing.T) {
	e := newEnv()
	drv := e.ForMode(ModeChaosNoXS)
	opsBefore := e.Store.Count.Ops
	if _, err := drv.Create("nostore", guest.Daytime()); err != nil {
		t.Fatal(err)
	}
	if e.Store.Count.Ops != opsBefore {
		t.Fatalf("noxs creation performed %d store ops", e.Store.Count.Ops-opsBefore)
	}
}

func TestStoreNodesPerGuest(t *testing.T) {
	// The stock toolstack leaves tens of nodes per guest; chaos leaves
	// far fewer; noxs none.
	count := func(mode Mode) int {
		e := newEnv()
		drv := e.ForMode(mode)
		for i := 0; i < 10; i++ {
			if _, err := drv.Create(fmt.Sprintf("g%d", i), guest.Daytime()); err != nil {
				t.Fatal(err)
			}
		}
		return e.Store.NumNodes() / 10
	}
	xl, chaos, noxs := count(ModeXL), count(ModeChaosXS), count(ModeChaosNoXS)
	if xl < 20 {
		t.Fatalf("xl leaves %d nodes/guest, want ≥20", xl)
	}
	if chaos >= xl {
		t.Fatalf("chaos (%d) not leaner than xl (%d)", chaos, xl)
	}
	if noxs != 0 {
		t.Fatalf("noxs left %d store nodes/guest", noxs)
	}
}

func TestDebianSlowerThanTinyxSlowerThanUnikernel(t *testing.T) {
	e := newEnv()
	drv := e.ForMode(ModeXL)
	uni, err := drv.Create("u", guest.Daytime())
	if err != nil {
		t.Fatal(err)
	}
	tx, err := drv.Create("t", guest.TinyxNoop())
	if err != nil {
		t.Fatal(err)
	}
	deb, err := drv.Create("d", guest.DebianMinimal())
	if err != nil {
		t.Fatal(err)
	}
	tu := uni.CreateTime + uni.BootTime
	tt := tx.CreateTime + tx.BootTime
	td := deb.CreateTime + deb.BootTime
	if !(tu < tt && tt < td) {
		t.Fatalf("ordering: uni=%v tinyx=%v debian=%v", tu, tt, td)
	}
	// Fig. 4 @ N=0: Debian ≈ 2s, Tinyx ≈ 540ms, daytime ≈ 83ms.
	if td < time.Second || td > 5*time.Second {
		t.Fatalf("debian create+boot = %v, want ≈2s", td)
	}
	if tt < 150*time.Millisecond || tt > 1200*time.Millisecond {
		t.Fatalf("tinyx create+boot = %v, want ≈540ms", tt)
	}
	if tu < 30*time.Millisecond || tu > 300*time.Millisecond {
		t.Fatalf("daytime create+boot = %v, want ≈100ms", tu)
	}
}

func TestMemDedupReducesFootprint(t *testing.T) {
	footprint := func(dedup bool) uint64 {
		e := newEnv()
		e.MemDedup = dedup
		drv := e.ForMode(ModeChaosNoXS)
		base := e.HV.UsedMemBytes()
		for i := 0; i < 20; i++ {
			if _, err := drv.Create(fmt.Sprintf("g%d", i), guest.Minipython()); err != nil {
				t.Fatal(err)
			}
		}
		return e.HV.UsedMemBytes() - base
	}
	plain := footprint(false)
	shared := footprint(true)
	if shared >= plain {
		t.Fatalf("dedup footprint %d not below plain %d", shared, plain)
	}
	// Saving should be substantial but not total: the private heap
	// half remains per guest.
	ratio := float64(shared) / float64(plain)
	if ratio < 0.2 || ratio > 0.9 {
		t.Fatalf("dedup ratio = %.2f", ratio)
	}
}

func TestMemDedupDestroyReleasesShares(t *testing.T) {
	e := newEnv()
	e.MemDedup = true
	drv := e.ForMode(ModeChaosNoXS)
	base := e.HV.UsedMemBytes()
	var vms []*VM
	for i := 0; i < 5; i++ {
		vm, err := drv.Create(fmt.Sprintf("g%d", i), guest.Minipython())
		if err != nil {
			t.Fatal(err)
		}
		vms = append(vms, vm)
	}
	for _, vm := range vms {
		if err := drv.Destroy(vm); err != nil {
			t.Fatal(err)
		}
	}
	if e.HV.UsedMemBytes() != base {
		t.Fatalf("dedup teardown leaked: %d vs %d", e.HV.UsedMemBytes(), base)
	}
	if e.HV.Share.Regions() != 0 {
		t.Fatal("shared regions survived")
	}
}

func TestUkvmDriver(t *testing.T) {
	e := newEnv()
	drv := NewUkvm(e)
	if drv.Name() != "ukvm" {
		t.Fatal("name")
	}
	opsBefore := e.Store.Count.Ops // backends register watches at env setup
	vm, err := drv.Create("mirage", guest.Daytime())
	if err != nil {
		t.Fatal(err)
	}
	total := vm.CreateTime + vm.BootTime
	// The §9 citation: ~10ms boots.
	if total < 5*time.Millisecond || total > 15*time.Millisecond {
		t.Fatalf("ukvm create+boot = %v, want ≈10ms", total)
	}
	// ukvm never touches the store.
	if e.Store.Count.Ops != opsBefore {
		t.Fatalf("ukvm performed %d store ops", e.Store.Count.Ops-opsBefore)
	}
	if err := drv.Destroy(vm); err != nil {
		t.Fatal(err)
	}
	if e.VMs() != 0 || e.HV.NumDomains() != 0 {
		t.Fatal("ukvm teardown incomplete")
	}
	// Only unikernels are accepted.
	if _, err := drv.Create("fat", guest.TinyxNoop()); err == nil {
		t.Fatal("ukvm accepted a Linux guest")
	}
}

func TestConsoleBanner(t *testing.T) {
	e := newEnv()
	drv := e.ForMode(ModeChaosNoXS)
	vm, err := drv.Create("bannered", guest.Daytime())
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Console.Read(vm.Dom.ID)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"bannered", "daytime", "noxs", "ready in"} {
		if !strings.Contains(out, want) {
			t.Fatalf("console %q missing %q", out, want)
		}
	}
	if err := drv.Destroy(vm); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Console.Read(vm.Dom.ID); err == nil {
		t.Fatal("console survived destroy")
	}
}

func TestCloneVM(t *testing.T) {
	e := newEnv()
	drv := e.ForMode(ModeChaosNoXS)
	parent, err := drv.Create("parent", guest.Minipython())
	if err != nil {
		t.Fatal(err)
	}
	memAfterParent := e.HV.UsedMemBytes()

	c1, err := e.CloneVM(parent, "clone-1")
	if err != nil {
		t.Fatal(err)
	}
	if !c1.Booted || c1.BootTime != 0 {
		t.Fatalf("clone state: booted=%v boot=%v", c1.Booted, c1.BootTime)
	}
	firstCloneMem := e.HV.UsedMemBytes() - memAfterParent
	c2, err := e.CloneVM(parent, "clone-2")
	if err != nil {
		t.Fatal(err)
	}
	secondCloneMem := e.HV.UsedMemBytes() - memAfterParent - firstCloneMem
	// The second clone shares the snapshot: far cheaper in memory.
	if secondCloneMem*2 >= firstCloneMem {
		t.Fatalf("clone memory: first=%d second=%d (no sharing?)", firstCloneMem, secondCloneMem)
	}
	// Later clones are faster too (no snapshot pass).
	if c2.CreateTime >= c1.CreateTime {
		t.Fatalf("second clone (%v) not faster than first (%v)", c2.CreateTime, c1.CreateTime)
	}
	// Clones have their own devices.
	entries, err := e.HV.DevicePageMap(c2.Dom.ID)
	if err != nil || len(entries) != 2 { // vif + sysctl
		t.Fatalf("clone devices = %v, %v", entries, err)
	}
	// Teardown order doesn't matter: parent first, then clones.
	if err := drv.Destroy(parent); err != nil {
		t.Fatal(err)
	}
	if err := drv.Destroy(c1); err != nil {
		t.Fatal(err)
	}
	if err := drv.Destroy(c2); err != nil {
		t.Fatal(err)
	}
	if e.HV.Share.Regions() != 0 {
		t.Fatal("clone snapshot leaked")
	}
	if e.VMs() != 0 || e.HV.NumDomains() != 0 {
		t.Fatal("teardown incomplete")
	}
}

func TestCloneRequiresRunningParent(t *testing.T) {
	e := newEnv()
	drv := e.ForMode(ModeChaosNoXS)
	parent, err := drv.Create("p", guest.Daytime())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.PauseVM(parent); err != nil {
		t.Fatal(err)
	}
	// Paused parents are still Booted (frozen, not torn down); clone
	// is allowed. But a destroyed parent is not.
	if _, err := e.CloneVM(parent, "c"); err != nil {
		t.Fatalf("clone of paused parent: %v", err)
	}
	if err := e.UnpauseVM(parent); err != nil {
		t.Fatal(err)
	}
	if err := drv.Destroy(parent); err != nil {
		t.Fatal(err)
	}
	if _, err := e.CloneVM(parent, "c2"); err == nil {
		t.Fatal("clone of destroyed parent accepted")
	}
	// Duplicate clone names rejected.
	p2, _ := drv.Create("p2", guest.Daytime())
	if _, err := e.CloneVM(p2, "c"); err == nil {
		t.Fatal("duplicate clone name accepted")
	}
}

func TestCloneFasterThanBootForHeavyGuests(t *testing.T) {
	e := newEnv()
	drv := e.ForMode(ModeChaosNoXS)
	parent, err := drv.Create("deb", guest.DebianMinimal())
	if err != nil {
		t.Fatal(err)
	}
	bootTotal := parent.CreateTime + parent.BootTime
	// Warm the snapshot.
	warm, err := e.CloneVM(parent, "warm")
	if err != nil {
		t.Fatal(err)
	}
	_ = warm
	clone, err := e.CloneVM(parent, "fast")
	if err != nil {
		t.Fatal(err)
	}
	// A Debian boot is ~2s; a warm clone must be orders of magnitude
	// faster (Potemkin's whole point).
	if clone.CreateTime*20 >= bootTotal {
		t.Fatalf("clone %v vs boot %v — not a big enough win", clone.CreateTime, bootTotal)
	}
}
