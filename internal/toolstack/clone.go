package toolstack

import (
	"errors"
	"fmt"
	"time"

	"lightvm/internal/costs"
	"lightvm/internal/hv"
	"lightvm/internal/xenbus"
	"lightvm/internal/xenstore"
)

// CloneVM forks a running guest Potemkin/SnowFlock-style (related work
// §8: "JIT instantiation of honeypots through the use of image
// cloning"): the child resumes from the parent's state, sharing the
// bulk of its memory copy-on-write, with fresh devices of its own. The
// first clone of a parent pays a one-time snapshot pass; subsequent
// clones only map the shared region.
//
// Cloning composes the repository's extensions: the snapshot rides the
// §9 share pool, and device re-creation uses the parent's control
// plane (noxs or XenStore).
func (e *Env) CloneVM(parent *VM, name string) (*VM, error) {
	if !parent.Booted {
		return nil, fmt.Errorf("toolstack: clone of non-running VM %q", parent.Name)
	}
	img := parent.Image
	vm := &VM{Name: name, Image: img, Mode: parent.Mode, Core: e.Sched.Place()}
	if err := e.register(vm); err != nil {
		return nil, err
	}
	us := vm.Mode.UsesStore()
	var retErr error
	start := e.Clock.Now()
	e.RunDom0(func() {
		e.journalSet(us, name, journalOpClone, "hv", 0)
		if retErr = e.crashPoint("clone.begin"); retErr != nil {
			return
		}
		key := "clone:" + parent.Name
		memMB := float64(img.MemBytes) / (1 << 20)
		if e.HV.Share.Refs(key) == 0 {
			// First clone: snapshot the parent (COW-protect its pages).
			e.Clock.Sleep(time.Duration(memMB * float64(costs.CloneSnapshotPerMB)))
		}
		dom, err := e.HV.CreateDomain(hv.Config{
			MaxMem: img.MemBytes, VCPUs: 1, Cores: []int{vm.Core},
		})
		if err != nil {
			retErr = err
			return
		}
		vm.Dom = dom
		e.journalSet(us, name, journalOpClone, "devices", dom.ID)
		if retErr = e.crashPoint("clone.hv"); retErr != nil {
			return
		}
		private := uint64(float64(img.MemBytes) * costs.CloneWorkingSetFraction)
		shared := img.MemBytes - private
		if err := e.HV.PopulateShared(dom.ID, key, shared); err != nil {
			retErr = err
			return
		}
		if private > 0 {
			if err := e.HV.PopulatePhysmap(dom.ID, private); err != nil {
				retErr = err
				return
			}
		}
		// Fresh devices: a clone must not share its parent's rings.
		if vm.Mode.UsesStore() {
			// The child inherits the parent's registry in one graft: an
			// O(1) snapshot capture plus a single store op, instead of
			// re-writing every entry. Device handshake state is then
			// re-negotiated below with fresh rings, overwriting the
			// captured entries in place.
			e.Clock.Sleep(costs.CostStoreSnapshot)
			sub, err := e.Store.Snapshot().Subtree(xenbus.DomainPath(parent.Dom.ID))
			if err != nil {
				retErr = err
				return
			}
			if err := e.Store.GraftSnapshot(sub, "/", xenbus.DomainPath(dom.ID)); err != nil {
				retErr = err
				return
			}
			e.Store.Write(fmt.Sprintf("/local/domain/%d/name", dom.ID), name)
			for i, dev := range img.Devices {
				req := xenbus.DeviceReq{Kind: dev.Kind, Dom: dom.ID, Idx: i, MAC: dev.MAC}
				if err := e.Store.Txn(8, func(tx *xenstore.Tx) error {
					xenbus.WriteDeviceEntries(tx, req)
					return nil
				}); err != nil {
					retErr = err
					return
				}
				if err := xenbus.WaitBackendReady(e.Store, e.Clock, dom.ID, dev.Kind, i); err != nil {
					retErr = err
					return
				}
			}
		} else {
			for i, dev := range img.Devices {
				if _, err := e.Noxs.CreateDevice(dom.ID, dev.Kind, i, dev.MAC); err != nil {
					retErr = err
					return
				}
			}
			if _, err := e.Noxs.CreateDevice(dom.ID, hv.DevSysctl, 0, ""); err != nil {
				retErr = err
				return
			}
		}
		if retErr = e.crashPoint("clone.devices"); retErr != nil {
			return
		}
		dom.State = hv.StateSuspended // clone resumes, it does not boot
		if retErr = e.HV.Unpause(dom.ID); retErr != nil {
			return
		}
		retErr = e.crashPoint("clone.finalize")
	})
	if retErr != nil {
		e.forget(vm)
		if errors.Is(retErr, ErrToolstackCrash) {
			// Process died mid-clone: partial state stays for recovery.
			return nil, retErr
		}
		if vm.Dom != nil {
			retErr = e.rollbackDomain(retErr, us, name, vm.Dom.ID)
		}
		e.journalClear(us, name)
		return nil, retErr
	}
	e.journalClear(us, name)
	if err := e.BootResumed(vm); err != nil {
		return nil, err
	}
	vm.CreateTime = e.Clock.Now().Sub(start)
	vm.BootTime = 0 // resumed, not booted
	e.Trace.Emit("toolstack", "clone", name, "parent="+parent.Name, vm.CreateTime)
	return vm, nil
}
