package toolstack

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"lightvm/internal/costs"
	"lightvm/internal/faults"
	"lightvm/internal/guest"
	"lightvm/internal/hv"
	"lightvm/internal/sim"
	"lightvm/internal/xenbus"
	"lightvm/internal/xenstore"
)

// Flavor identifies a class of pre-creatable domain shells: the image
// (for memory size and — with dedup — the shared region), device set,
// and device path. VMs of the same flavor can share a shell, "similar
// to OpenStack's flavors" (§5.2).
type Flavor struct {
	Img     guest.Image
	Store   bool // devices via XenStore (true) or noxs (false)
	Devices []guest.DeviceSpec
}

// key folds a flavor to a map key (device kinds matter, MACs don't).
func (f Flavor) key() string {
	k := fmt.Sprintf("%s/%d/%v", f.Img.Name, f.Img.MemBytes, f.Store)
	for _, d := range f.Devices {
		k += "/" + d.Kind.String()
	}
	return k
}

// FlavorFor derives the shell flavor for an image under a device path.
func FlavorFor(img guest.Image, store bool) Flavor {
	devs := make([]guest.DeviceSpec, len(img.Devices))
	copy(devs, img.Devices)
	if !store {
		// noxs guests always carry the sysctl power device (§5.1).
		devs = append(devs, guest.DeviceSpec{Kind: hv.DevSysctl})
	}
	return Flavor{Img: img, Store: store, Devices: devs}
}

// Shell is a pre-created domain: hypervisor reservation done, memory
// populated, devices pre-created — everything from Fig. 8's prepare
// phase. The execute phase only parses config, finalizes devices,
// builds the image and boots.
type Shell struct {
	Dom    *hv.Domain
	Core   int
	Flavor Flavor
}

// PoolStats reports pool behaviour for tests and benchmarks.
type PoolStats struct {
	Prepared int // shells built by the daemon
	Taken    int // shells handed to the execute phase
	Misses   int // Take calls that found the pool empty
	Crashes  int // injected daemon crashes (pool drained each time)
}

// Pool is the chaos daemon's shell pool: "the daemon ensures that
// there is always a certain (configurable) number of shells available
// in the system" (§5.2). Replenish is the daemon's background beat;
// the experiment harness invokes it between measured creations, which
// is exactly when the real daemon gets the CPU.
type Pool struct {
	env    *Env
	target int

	// mu serializes the daemon's work: Take/Prepare/Replenish (and the
	// shell/flavor/Stats state they touch) run one at a time, exactly
	// like the single-threaded chaos daemon. The environment's clock is
	// only ever advanced under mu on these paths, which is what makes
	// concurrent callers -race-clean.
	mu      sync.Mutex
	shells  map[string][]*Shell
	flavors map[string]Flavor
	Stats   PoolStats

	// downUntil is when the restarted daemon comes back after an
	// injected crash; until then Take misses and Replenish is a no-op,
	// so creations fall back to the inline (cold) prepare path. It is
	// an atomic (not mu-guarded) because DaemonDown is consulted from
	// inside reap/prepare work that already holds mu — the hotplug
	// failover shim reads it mid-teardown — and must stay lock-free.
	downUntil atomic.Int64
}

// NewPool creates an empty pool with a default target depth of 8.
func NewPool(env *Env) *Pool {
	return &Pool{env: env, target: 8, shells: make(map[string][]*Shell), flavors: make(map[string]Flavor)}
}

// SetTarget configures the per-flavor shell depth. Negative depths
// clamp to zero. Takes mu: the autoscaler retargets the pool while
// Take/Replenish run from serving workers, and an unguarded write here
// would race the daemon's `len(shells) < target` refill loop.
func (p *Pool) SetTarget(n int) {
	if n < 0 {
		n = 0
	}
	p.mu.Lock()
	p.target = n
	p.mu.Unlock()
}

// Target reports the configured per-flavor shell depth.
func (p *Pool) Target() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.target
}

// Available reports ready shells for a flavor.
func (p *Pool) Available(f Flavor) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.shells[f.key()])
}

// ShellDomIDs lists the domains backing every pooled shell, sorted.
// The scrubber and the invariant checker cross-reference it: pooled
// shells are live control-plane state, not orphans.
func (p *Pool) ShellDomIDs() []hv.DomID {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []hv.DomID
	for _, q := range p.shells {
		for _, s := range q {
			out = append(out, s.Dom.ID)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Register records a flavor for Replenish to keep stocked, without
// consuming a shell. Callers that only want the pool primed (EnsureFlavor,
// placement probes) use this instead of a throwaway Take — taking a
// shell with nowhere to put it back would orphan its domain.
func (p *Pool) Register(f Flavor) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.flavors[f.key()] = f
}

// DaemonDown reports whether the pool daemon is currently dead (an
// injected crash whose restart window has not elapsed yet). Lock-free
// on purpose: the hotplug failover shim consults it from teardown
// paths that run while mu is already held.
func (p *Pool) DaemonDown() bool { return p.env.Clock.Now() < sim.Time(p.downUntil.Load()) }

// crash models the chaos daemon dying: its in-memory shell bookkeeping
// is lost, so the restarted daemon reaps every orphaned shell, and the
// pool stays empty until the restart completes. Flavors are reaped in
// sorted key order to keep the reap schedule deterministic. Caller
// holds mu.
func (p *Pool) crash() {
	e := p.env
	keys := make([]string, 0, len(p.shells))
	for k := range p.shells {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, s := range p.shells[k] {
			p.reap(s)
		}
		delete(p.shells, k)
	}
	p.Stats.Crashes++
	p.downUntil.Store(int64(e.Clock.Now().Add(costs.PoolDaemonRestart)))
	e.Trace.Emit("pool", "crash", "", "", 0)
}

// reap tears down one orphaned shell: device state (store or noxs) and
// the pre-created domain.
func (p *Pool) reap(s *Shell) {
	e := p.env
	if s.Flavor.Store {
		for i, dev := range s.Flavor.Devices {
			switch dev.Kind {
			case hv.DevVif:
				e.BackVif.Teardown(s.Dom.ID, i)
			case hv.DevVbd:
				e.BackVbd.Teardown(s.Dom.ID, i)
			case hv.DevConsole:
				e.BackConsole.Teardown(s.Dom.ID, i)
			}
			xenbus.RemoveDeviceEntries(e.Store, s.Dom.ID, dev.Kind, i)
		}
	} else {
		e.Noxs.DestroyAll(s.Dom.ID)
	}
	_ = e.HV.DestroyDomain(s.Dom.ID)
}

// Take removes one shell for flavor, or returns nil on a pool miss
// (the caller then prepares inline, paying the full cost). The flavor
// is remembered so Replenish keeps it stocked.
func (p *Pool) Take(f Flavor) *Shell {
	p.mu.Lock()
	defer p.mu.Unlock()
	k := f.key()
	p.flavors[k] = f
	if p.env.Faults.Fire(faults.KindDaemonCrash) {
		p.crash()
	}
	if p.DaemonDown() {
		p.Stats.Misses++
		p.env.Trace.Emit("pool", "miss", k, "daemon-down", 0)
		return nil
	}
	q := p.shells[k]
	if len(q) == 0 {
		p.Stats.Misses++
		p.env.Trace.Emit("pool", "miss", k, "", 0)
		return nil
	}
	s := q[0]
	p.shells[k] = q[1:]
	p.Stats.Taken++
	p.env.Clock.Sleep(costs.ShellPoolHit)
	return s
}

// Replenish tops every known flavor up to the target depth (in sorted
// key order, so the prepare schedule is deterministic however flavors
// were registered), charging the prepare work to the current
// (background) time. While the daemon is down after a crash there is
// nobody to do the work.
func (p *Pool) Replenish() error { return p.ReplenishUntil(0) }

// ReplenishUntil is Replenish bounded by a clock deadline: the daemon
// stops starting new prepares once the clock reaches it (the prepare
// in flight still completes — shell builds don't abort halfway). A
// serving loop passes the next request's arrival time, modeling the
// background daemon yielding the control plane to foreground work
// instead of batching an unbounded top-up into one beat and queueing
// every arrival behind it. deadline 0 means no bound.
func (p *Pool) ReplenishUntil(deadline sim.Time) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.DaemonDown() {
		return nil
	}
	keys := make([]string, 0, len(p.flavors))
	for k := range p.flavors {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		f := p.flavors[k]
		for len(p.shells[k]) < p.target {
			if deadline > 0 && p.env.Clock.Now() >= deadline {
				return nil
			}
			s, err := p.prepare(f)
			if err != nil {
				return err
			}
			p.shells[k] = append(p.shells[k], s)
		}
	}
	return nil
}

// Prepare runs the prepare phase for one shell: hypervisor
// reservation, compute allocation, memory reservation + preparation,
// and device pre-creation (Fig. 8 steps 1–5).
func (p *Pool) Prepare(f Flavor) (*Shell, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.prepare(f)
}

// prepare is Prepare with mu held. A shell being prepared is journaled
// under "shell:<domid>" — if the daemon crashes at a crash point the
// half-built shell leaks (no rollback) and recovery reaps it from the
// journal; it never enters the pool, so it cannot also be reaped by a
// later daemon-crash drain.
func (p *Pool) prepare(f Flavor) (*Shell, error) {
	e := p.env
	core := e.Sched.Place()
	dom, err := e.HV.CreateDomain(hv.Config{MaxMem: f.Img.MemBytes, VCPUs: 1, Cores: []int{core}})
	if err != nil {
		return nil, err
	}
	key := fmt.Sprintf("shell:%d", dom.ID)
	e.journalSet(f.Store, key, journalOpPrepare, "devices", dom.ID)
	if cerr := e.crashPoint("pool.prepare.hv"); cerr != nil {
		return nil, cerr
	}
	rollback := func(err error) error {
		err = e.rollbackDomain(err, f.Store, key, dom.ID)
		e.journalClear(f.Store, key)
		return err
	}
	if err := e.PopulateGuest(dom.ID, f.Img); err != nil {
		return nil, rollback(err)
	}
	if f.Store {
		for i, dev := range f.Devices {
			req := xenbus.DeviceReq{Kind: dev.Kind, Dom: dom.ID, Idx: i, MAC: ""}
			if err := e.Store.Txn(8, func(tx *xenstore.Tx) error {
				xenbus.WriteDeviceEntries(tx, req)
				return nil
			}); err != nil {
				return nil, rollback(err)
			}
			if err := xenbus.WaitBackendReady(e.Store, e.Clock, dom.ID, dev.Kind, i); err != nil {
				return nil, rollback(err)
			}
		}
	} else {
		for i, dev := range f.Devices {
			if _, err := e.Noxs.CreateDevice(dom.ID, dev.Kind, i, ""); err != nil {
				return nil, rollback(err)
			}
		}
	}
	if cerr := e.crashPoint("pool.prepare.devices"); cerr != nil {
		return nil, cerr
	}
	e.Clock.Sleep(costs.ShellPrepare)
	p.Stats.Prepared++
	e.journalClear(f.Store, key)
	e.Trace.Emit("pool", "prepare", f.key(), "", 0)
	return &Shell{Dom: dom, Core: core, Flavor: f}, nil
}

// finalizeDevices is the execute phase's "device initialization": set
// the real MACs on the pre-created devices. The crash point models the
// toolstack dying between taking the shell and finishing it: the shell
// is already out of the pool, so only the taker's journal record knows
// about the domain.
func (p *Pool) finalizeDevices(s *Shell, img guest.Image) error {
	e := p.env
	if err := e.crashPoint("pool.finalize"); err != nil {
		return err
	}
	if s.Flavor.Store {
		domPath := xenbus.DomainPath(s.Dom.ID)
		return e.Store.Txn(8, func(tx *xenstore.Tx) error {
			for i, dev := range img.Devices {
				if dev.Kind == hv.DevVif {
					tx.Write(xenbus.FrontendPath(s.Dom.ID, dev.Kind, i)+"/mac", dev.MAC)
				}
			}
			tx.Write(domPath+"/domid", strconv.Itoa(int(s.Dom.ID)))
			return nil
		})
	}
	for i, dev := range img.Devices {
		if dev.Kind == hv.DevVif {
			if err := e.Noxs.SetMAC(s.Dom.ID, dev.Kind, i, dev.MAC); err != nil {
				return err
			}
		}
	}
	return nil
}
