package toolstack

import (
	"fmt"
	"strconv"

	"lightvm/internal/costs"
	"lightvm/internal/guest"
	"lightvm/internal/hv"
	"lightvm/internal/xenbus"
	"lightvm/internal/xenstore"
)

// Flavor identifies a class of pre-creatable domain shells: the image
// (for memory size and — with dedup — the shared region), device set,
// and device path. VMs of the same flavor can share a shell, "similar
// to OpenStack's flavors" (§5.2).
type Flavor struct {
	Img     guest.Image
	Store   bool // devices via XenStore (true) or noxs (false)
	Devices []guest.DeviceSpec
}

// key folds a flavor to a map key (device kinds matter, MACs don't).
func (f Flavor) key() string {
	k := fmt.Sprintf("%s/%d/%v", f.Img.Name, f.Img.MemBytes, f.Store)
	for _, d := range f.Devices {
		k += "/" + d.Kind.String()
	}
	return k
}

// FlavorFor derives the shell flavor for an image under a device path.
func FlavorFor(img guest.Image, store bool) Flavor {
	devs := make([]guest.DeviceSpec, len(img.Devices))
	copy(devs, img.Devices)
	if !store {
		// noxs guests always carry the sysctl power device (§5.1).
		devs = append(devs, guest.DeviceSpec{Kind: hv.DevSysctl})
	}
	return Flavor{Img: img, Store: store, Devices: devs}
}

// Shell is a pre-created domain: hypervisor reservation done, memory
// populated, devices pre-created — everything from Fig. 8's prepare
// phase. The execute phase only parses config, finalizes devices,
// builds the image and boots.
type Shell struct {
	Dom    *hv.Domain
	Core   int
	Flavor Flavor
}

// PoolStats reports pool behaviour for tests and benchmarks.
type PoolStats struct {
	Prepared int // shells built by the daemon
	Taken    int // shells handed to the execute phase
	Misses   int // Take calls that found the pool empty
}

// Pool is the chaos daemon's shell pool: "the daemon ensures that
// there is always a certain (configurable) number of shells available
// in the system" (§5.2). Replenish is the daemon's background beat;
// the experiment harness invokes it between measured creations, which
// is exactly when the real daemon gets the CPU.
type Pool struct {
	env     *Env
	target  int
	shells  map[string][]*Shell
	flavors map[string]Flavor
	Stats   PoolStats
}

// NewPool creates an empty pool with a default target depth of 8.
func NewPool(env *Env) *Pool {
	return &Pool{env: env, target: 8, shells: make(map[string][]*Shell), flavors: make(map[string]Flavor)}
}

// SetTarget configures the per-flavor shell depth.
func (p *Pool) SetTarget(n int) { p.target = n }

// Available reports ready shells for a flavor.
func (p *Pool) Available(f Flavor) int { return len(p.shells[f.key()]) }

// Take removes one shell for flavor, or returns nil on a pool miss
// (the caller then prepares inline, paying the full cost). The flavor
// is remembered so Replenish keeps it stocked.
func (p *Pool) Take(f Flavor) *Shell {
	k := f.key()
	p.flavors[k] = f
	q := p.shells[k]
	if len(q) == 0 {
		p.Stats.Misses++
		p.env.Trace.Emit("pool", "miss", k, "", 0)
		return nil
	}
	s := q[0]
	p.shells[k] = q[1:]
	p.Stats.Taken++
	p.env.Clock.Sleep(costs.ShellPoolHit)
	return s
}

// Replenish tops every known flavor up to the target depth, charging
// the prepare work to the current (background) time.
func (p *Pool) Replenish() error {
	for k, f := range p.flavors {
		for len(p.shells[k]) < p.target {
			s, err := p.Prepare(f)
			if err != nil {
				return err
			}
			p.shells[k] = append(p.shells[k], s)
		}
	}
	return nil
}

// Prepare runs the prepare phase for one shell: hypervisor
// reservation, compute allocation, memory reservation + preparation,
// and device pre-creation (Fig. 8 steps 1–5).
func (p *Pool) Prepare(f Flavor) (*Shell, error) {
	e := p.env
	core := e.Sched.Place()
	dom, err := e.HV.CreateDomain(hv.Config{MaxMem: f.Img.MemBytes, VCPUs: 1, Cores: []int{core}})
	if err != nil {
		return nil, err
	}
	if err := e.PopulateGuest(dom.ID, f.Img); err != nil {
		_ = e.HV.DestroyDomain(dom.ID)
		return nil, err
	}
	if f.Store {
		for i, dev := range f.Devices {
			req := xenbus.DeviceReq{Kind: dev.Kind, Dom: dom.ID, Idx: i, MAC: ""}
			if err := e.Store.Txn(8, func(tx *xenstore.Tx) error {
				xenbus.WriteDeviceEntries(tx, req)
				return nil
			}); err != nil {
				return nil, err
			}
			if err := xenbus.WaitBackendReady(e.Store, e.Clock, dom.ID, dev.Kind, i); err != nil {
				return nil, err
			}
		}
	} else {
		for i, dev := range f.Devices {
			if _, err := e.Noxs.CreateDevice(dom.ID, dev.Kind, i, ""); err != nil {
				return nil, err
			}
		}
	}
	e.Clock.Sleep(costs.ShellPrepare)
	p.Stats.Prepared++
	e.Trace.Emit("pool", "prepare", f.key(), "", 0)
	return &Shell{Dom: dom, Core: core, Flavor: f}, nil
}

// finalizeDevices is the execute phase's "device initialization": set
// the real MACs on the pre-created devices.
func (p *Pool) finalizeDevices(s *Shell, img guest.Image) error {
	e := p.env
	if s.Flavor.Store {
		domPath := fmt.Sprintf("/local/domain/%d", s.Dom.ID)
		return e.Store.Txn(8, func(tx *xenstore.Tx) error {
			for i, dev := range img.Devices {
				if dev.Kind == hv.DevVif {
					tx.Write(xenbus.FrontendPath(s.Dom.ID, dev.Kind, i)+"/mac", dev.MAC)
				}
			}
			tx.Write(domPath+"/domid", strconv.Itoa(int(s.Dom.ID)))
			return nil
		})
	}
	for i, dev := range img.Devices {
		if dev.Kind == hv.DevVif {
			if err := e.Noxs.SetMAC(s.Dom.ID, dev.Kind, i, dev.MAC); err != nil {
				return err
			}
		}
	}
	return nil
}
