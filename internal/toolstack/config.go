package toolstack

import (
	"fmt"
	"strconv"
	"strings"

	"lightvm/internal/guest"
)

// VMConfig is a parsed guest configuration file — the input the
// toolstack's "configuration parsing" step (Fig. 5's config category)
// consumes. Two on-disk formats are supported: the stock xl format
// (quoted values, bracketed lists) and chaos's minimal line format,
// whose cheapness is part of why ConfigParseChaos ≪ ConfigParse.
type VMConfig struct {
	Name     string
	Kernel   string // catalog image name
	MemoryMB int    // 0 = image default
	VCPUs    int
	VIFMACs  []string
	OnCrash  string
}

// ParseXL parses the classic xl/xm config format:
//
//	# comment
//	name    = "web1"
//	kernel  = "daytime"
//	memory  = 128
//	vcpus   = 1
//	vif     = [ 'mac=00:16:3e:00:00:01,bridge=xenbr0' ]
//	on_crash = "destroy"
func ParseXL(text string) (VMConfig, error) {
	cfg := VMConfig{VCPUs: 1}
	for ln, raw := range strings.Split(text, "\n") {
		line := stripCfgComment(raw)
		if strings.TrimSpace(line) == "" {
			continue
		}
		key, val, ok := strings.Cut(line, "=")
		if !ok {
			return cfg, fmt.Errorf("toolstack: config line %d: missing '='", ln+1)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		switch key {
		case "name":
			s, err := unquote(val)
			if err != nil {
				return cfg, fmt.Errorf("toolstack: config line %d: %v", ln+1, err)
			}
			cfg.Name = s
		case "kernel":
			s, err := unquote(val)
			if err != nil {
				return cfg, fmt.Errorf("toolstack: config line %d: %v", ln+1, err)
			}
			// xl configs reference a path; we use the basename as the
			// catalog image name.
			if i := strings.LastIndexByte(s, '/'); i >= 0 {
				s = s[i+1:]
			}
			cfg.Kernel = s
		case "memory":
			n, err := strconv.Atoi(val)
			if err != nil || n <= 0 {
				return cfg, fmt.Errorf("toolstack: config line %d: bad memory %q", ln+1, val)
			}
			cfg.MemoryMB = n
		case "vcpus":
			n, err := strconv.Atoi(val)
			if err != nil || n <= 0 {
				return cfg, fmt.Errorf("toolstack: config line %d: bad vcpus %q", ln+1, val)
			}
			cfg.VCPUs = n
		case "vif":
			macs, err := parseVifList(val)
			if err != nil {
				return cfg, fmt.Errorf("toolstack: config line %d: %v", ln+1, err)
			}
			cfg.VIFMACs = macs
		case "on_crash", "on_poweroff", "on_reboot":
			s, err := unquote(val)
			if err != nil {
				return cfg, fmt.Errorf("toolstack: config line %d: %v", ln+1, err)
			}
			if key == "on_crash" {
				cfg.OnCrash = s
			}
		default:
			return cfg, fmt.Errorf("toolstack: config line %d: unknown key %q", ln+1, key)
		}
	}
	if cfg.Name == "" {
		return cfg, fmt.Errorf("toolstack: config has no name")
	}
	if cfg.Kernel == "" {
		return cfg, fmt.Errorf("toolstack: config has no kernel")
	}
	return cfg, nil
}

// ParseChaos parses chaos's minimal format — one "key value" pair per
// line, no quoting, no lists:
//
//	name web1
//	kernel daytime
//	memory 128
//	vif 00:16:3e:00:00:01
func ParseChaos(text string) (VMConfig, error) {
	cfg := VMConfig{VCPUs: 1}
	for ln, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(stripCfgComment(raw))
		if line == "" {
			continue
		}
		key, val, ok := strings.Cut(line, " ")
		if !ok {
			return cfg, fmt.Errorf("toolstack: chaos config line %d: missing value", ln+1)
		}
		val = strings.TrimSpace(val)
		switch key {
		case "name":
			cfg.Name = val
		case "kernel":
			cfg.Kernel = val
		case "memory":
			n, err := strconv.Atoi(val)
			if err != nil || n <= 0 {
				return cfg, fmt.Errorf("toolstack: chaos config line %d: bad memory %q", ln+1, val)
			}
			cfg.MemoryMB = n
		case "vcpus":
			n, err := strconv.Atoi(val)
			if err != nil || n <= 0 {
				return cfg, fmt.Errorf("toolstack: chaos config line %d: bad vcpus %q", ln+1, val)
			}
			cfg.VCPUs = n
		case "vif":
			cfg.VIFMACs = append(cfg.VIFMACs, val)
		default:
			return cfg, fmt.Errorf("toolstack: chaos config line %d: unknown key %q", ln+1, key)
		}
	}
	if cfg.Name == "" || cfg.Kernel == "" {
		return cfg, fmt.Errorf("toolstack: chaos config needs name and kernel")
	}
	return cfg, nil
}

// ParseConfig auto-detects the format: '=' assignments mean xl.
func ParseConfig(text string) (VMConfig, error) {
	for _, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(stripCfgComment(raw))
		if line == "" {
			continue
		}
		if strings.ContainsRune(line, '=') {
			return ParseXL(text)
		}
		return ParseChaos(text)
	}
	return VMConfig{}, fmt.Errorf("toolstack: empty config")
}

// ResolveImage maps a parsed config onto a catalog image, applying the
// memory override.
func (cfg VMConfig) ResolveImage() (guest.Image, error) {
	img, err := guest.ByName(cfg.Kernel)
	if err != nil {
		return guest.Image{}, err
	}
	if cfg.MemoryMB > 0 {
		img.MemBytes = uint64(cfg.MemoryMB) << 20
	}
	for i, mac := range cfg.VIFMACs {
		if i < len(img.Devices) {
			img.Devices[i].MAC = mac
		}
	}
	return img, nil
}

// stripCfgComment removes a trailing # comment outside quotes.
func stripCfgComment(s string) string {
	inQuote := byte(0)
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case inQuote != 0:
			if c == inQuote {
				inQuote = 0
			}
		case c == '\'' || c == '"':
			inQuote = c
		case c == '#':
			return s[:i]
		}
	}
	return s
}

// unquote strips matching single or double quotes.
func unquote(s string) (string, error) {
	if len(s) >= 2 && (s[0] == '\'' || s[0] == '"') {
		if s[len(s)-1] != s[0] {
			return "", fmt.Errorf("unterminated quote in %q", s)
		}
		return s[1 : len(s)-1], nil
	}
	if s == "" {
		return "", fmt.Errorf("empty value")
	}
	return s, nil
}

// parseVifList parses xl's vif = [ 'mac=..,bridge=..', ... ] form,
// returning the MACs.
func parseVifList(s string) ([]string, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return nil, fmt.Errorf("vif value must be a [ ... ] list")
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	if inner == "" {
		return nil, nil
	}
	var macs []string
	for _, item := range strings.Split(inner, ",") {
		item = strings.TrimSpace(item)
		// Items may themselves contain k=v pairs separated by commas
		// inside the quotes; handle the common 'mac=..' prefix form.
		item = strings.Trim(item, "'\"")
		if item == "" {
			continue
		}
		if strings.HasPrefix(item, "mac=") {
			macs = append(macs, strings.TrimPrefix(item, "mac="))
		}
	}
	return macs, nil
}
