package toolstack

import (
	"math"
	"sync"
	"time"

	"lightvm/internal/sim"
)

// AutoscalePolicy selects how the shell-pool autoscaler picks the
// per-flavor depth the daemon keeps warm.
type AutoscalePolicy int

const (
	// ScaleReactive keeps a fixed depth of Min shells — the paper's
	// "certain (configurable) number of shells" (§5.2) verbatim. The
	// daemon refills after each take, so a burst that drains the pool
	// pays the cold path until the background beat catches up.
	ScaleReactive AutoscalePolicy = iota

	// ScalePredictive estimates the arrival rate with an EWMA over the
	// tick stream and pre-warms enough shells to cover the next Horizon
	// of arrivals plus Headroom, clamped to [Min, Max]. Under a steady
	// rate the estimate — and with it the target — converges; under a
	// burst the target grows within a few ticks instead of after the
	// queue has already formed.
	ScalePredictive
)

func (p AutoscalePolicy) String() string {
	if p == ScalePredictive {
		return "predictive"
	}
	return "reactive"
}

// AutoscalerConfig parameterizes an Autoscaler. The zero value is
// usable: it becomes a reactive policy at the defaults below.
type AutoscalerConfig struct {
	Policy   AutoscalePolicy
	Min      int           // floor on the target depth (negative clamps to 0)
	Max      int           // ceiling on the target depth (default 64)
	Horizon  time.Duration // predictive: arrivals to cover per beat (default 20ms)
	Headroom float64       // predictive: safety fraction above the estimate (default 0.25)
	Alpha    float64       // EWMA weight of the newest rate sample (default 0.3)
}

func (c AutoscalerConfig) withDefaults() AutoscalerConfig {
	if c.Min < 0 {
		c.Min = 0
	}
	if c.Max <= 0 {
		c.Max = 64
	}
	if c.Max < c.Min {
		c.Max = c.Min
	}
	if c.Horizon <= 0 {
		c.Horizon = 20 * time.Millisecond
	}
	if c.Headroom <= 0 {
		c.Headroom = 0.25
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.3
	}
	return c
}

// Autoscaler drives a Pool's target depth from the arrival stream the
// serving loop observes. The serving loop calls Tick whenever the
// control plane has slack (the same moments the chaos daemon would get
// the CPU); Tick retargets the pool and runs one replenish beat. It
// never takes shells itself — Take stays with the execute phase — so
// it can never hand the same shell out twice no matter how it races
// the takers.
type Autoscaler struct {
	pool *Pool
	cfg  AutoscalerConfig

	mu      sync.Mutex
	rate    float64 // EWMA arrivals/sec
	seeded  bool
	last    sim.Time
	pending int // arrivals reported on zero-width ticks, folded into the next window
}

// NewAutoscaler wires a policy to a pool and applies the initial
// target (Min for both policies — predictive has no estimate yet).
func NewAutoscaler(pool *Pool, cfg AutoscalerConfig) *Autoscaler {
	cfg = cfg.withDefaults()
	a := &Autoscaler{pool: pool, cfg: cfg}
	pool.SetTarget(cfg.Min)
	return a
}

// Rate reports the current arrivals/sec estimate (0 until the first
// non-empty predictive window).
func (a *Autoscaler) Rate() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.rate
}

// Tick feeds the autoscaler the arrivals observed since the previous
// tick, retargets the pool, and runs one replenish beat. now is the
// serving loop's virtual clock; ticks must be monotone per autoscaler.
func (a *Autoscaler) Tick(now sim.Time, arrivals int) error {
	return a.TickUntil(now, arrivals, 0)
}

// TickUntil is Tick with the replenish beat bounded by a clock
// deadline (normally the next arrival): the daemon yields the control
// plane to foreground work instead of finishing the whole top-up.
func (a *Autoscaler) TickUntil(now sim.Time, arrivals int, deadline sim.Time) error {
	a.pool.SetTarget(a.retarget(now, arrivals))
	return a.pool.ReplenishUntil(deadline)
}

// retarget computes the new depth. Guaranteed non-negative: the result
// is clamped to [Min, Max] with Min ≥ 0 (and SetTarget clamps again).
func (a *Autoscaler) retarget(now sim.Time, arrivals int) int {
	if a.cfg.Policy != ScalePredictive {
		return a.cfg.Min
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.seeded {
		// First tick anchors the window; its arrivals have no width to
		// divide by yet.
		a.seeded = true
		a.last = now
		a.pending = arrivals
		return a.cfg.Min
	}
	elapsed := time.Duration(now - a.last)
	if elapsed <= 0 {
		a.pending += arrivals
	} else {
		inst := float64(arrivals+a.pending) / elapsed.Seconds()
		a.pending = 0
		a.last = now
		a.rate = a.cfg.Alpha*inst + (1-a.cfg.Alpha)*a.rate
	}
	need := int(math.Ceil(a.rate * a.cfg.Horizon.Seconds() * (1 + a.cfg.Headroom)))
	if need < a.cfg.Min {
		need = a.cfg.Min
	}
	if need > a.cfg.Max {
		need = a.cfg.Max
	}
	return need
}
