package toolstack

import (
	"sync"
	"testing"
	"time"

	"lightvm/internal/guest"
	"lightvm/internal/sched"
	"lightvm/internal/sim"
)

func newAutoscaleEnv(t *testing.T) (*Env, Flavor) {
	t.Helper()
	e := NewEnv(sim.NewClock(), sched.Machine{Name: "scale", Cores: 8, Dom0Cores: 1, MemoryGB: 32})
	f := FlavorFor(guest.Daytime(), true)
	e.Pool.Register(f)
	return e, f
}

// TestSetTargetClampsNegative: the depth floor is part of the "target
// never negative" invariant — a panicking replenish loop is the
// failure mode otherwise.
func TestSetTargetClampsNegative(t *testing.T) {
	e, _ := newAutoscaleEnv(t)
	e.Pool.SetTarget(-5)
	if got := e.Pool.Target(); got != 0 {
		t.Fatalf("Target after SetTarget(-5) = %d, want 0", got)
	}
	if err := e.Pool.Replenish(); err != nil {
		t.Fatal(err)
	}
}

// TestAutoscalerTargetNeverNegative drives both policies through
// adversarial configs and tick streams and asserts the applied target
// stays non-negative throughout.
func TestAutoscalerTargetNeverNegative(t *testing.T) {
	for _, policy := range []AutoscalePolicy{ScaleReactive, ScalePredictive} {
		e, _ := newAutoscaleEnv(t)
		a := NewAutoscaler(e.Pool, AutoscalerConfig{
			Policy: policy, Min: -3, Max: -1, Headroom: -2, Alpha: -0.5,
		})
		now := sim.Time(0)
		for i, arrivals := range []int{0, 5, 0, 1000, 0, 0, 7, 0} {
			// Every other tick is zero-width to hit the pending path.
			if i%2 == 0 {
				now = now.Add(3 * time.Millisecond)
			}
			if err := a.Tick(now, arrivals); err != nil {
				t.Fatal(err)
			}
			if got := e.Pool.Target(); got < 0 {
				t.Fatalf("%v: target %d went negative at tick %d", policy, got, i)
			}
		}
	}
}

// TestAutoscalerPredictiveConverges: under a constant arrival rate the
// EWMA estimate settles and the warm-shell count converges to the
// steady-state target ceil(rate·horizon·(1+headroom)) — and decays
// back to Min when the traffic stops.
func TestAutoscalerPredictiveConverges(t *testing.T) {
	e, f := newAutoscaleEnv(t)
	a := NewAutoscaler(e.Pool, AutoscalerConfig{
		Policy: ScalePredictive, Min: 2, Max: 64,
		Horizon: 20 * time.Millisecond, Headroom: 0.25, Alpha: 0.3,
	})
	// 1000 req/s: 10 arrivals per 10ms tick → steady-state target
	// ceil(1000 · 0.020 · 1.25) = 25.
	const want = 25
	now := sim.Time(0)
	var last int
	for i := 0; i < 60; i++ {
		now = now.Add(10 * time.Millisecond)
		if err := a.Tick(now, 10); err != nil {
			t.Fatal(err)
		}
		last = e.Pool.Target()
		if i > 30 && last != want {
			t.Fatalf("tick %d: target %d has not converged to %d (rate %.1f)",
				i, last, want, a.Rate())
		}
	}
	if got := e.Pool.Available(f); got != want {
		t.Fatalf("shells warm = %d, want steady-state %d", got, want)
	}
	// Traffic stops: the estimate decays and the target returns to Min.
	for i := 0; i < 80; i++ {
		now = now.Add(10 * time.Millisecond)
		if err := a.Tick(now, 0); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.Pool.Target(); got != 2 {
		t.Fatalf("target after traffic stopped = %d, want Min=2", got)
	}
}

// TestAutoscalerReactiveHoldsDepth: the reactive policy is the fixed
// configurable depth from §5.2 — the target never moves off Min no
// matter what the arrival stream does.
func TestAutoscalerReactiveHoldsDepth(t *testing.T) {
	e, f := newAutoscaleEnv(t)
	a := NewAutoscaler(e.Pool, AutoscalerConfig{Policy: ScaleReactive, Min: 4})
	now := sim.Time(0)
	for i, arrivals := range []int{0, 1000, 0, 50000} {
		now = now.Add(time.Millisecond)
		if err := a.Tick(now, arrivals); err != nil {
			t.Fatal(err)
		}
		if got := e.Pool.Target(); got != 4 {
			t.Fatalf("tick %d: reactive target %d, want 4", i, got)
		}
	}
	if got := e.Pool.Available(f); got != 4 {
		t.Fatalf("shells warm = %d, want 4", got)
	}
}

// TestAutoscalerNeverDoubleTakes: with the predictive autoscaler
// retargeting and replenishing concurrently with a crowd of takers,
// every successful Take returns a distinct shell backed by a distinct
// domain — the pool never hands the same shell out twice. Run under
// -race this is also the regression net for the SetTarget lock fix.
func TestAutoscalerNeverDoubleTakes(t *testing.T) {
	e, _ := newAutoscaleEnv(t)
	// The noxs flavor: reap (how this test disposes of taken shells)
	// matches the daemon's own orphan cleanup on that path.
	f := FlavorFor(guest.Daytime(), false)
	e.Pool.Register(f)
	a := NewAutoscaler(e.Pool, AutoscalerConfig{
		Policy: ScalePredictive, Min: 1, Max: 16, Horizon: 10 * time.Millisecond,
	})
	var wg sync.WaitGroup
	var mu sync.Mutex
	taken := make([]*Shell, 0, 256)
	errs := make(chan error, 8)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if s := e.Pool.Take(f); s != nil {
					mu.Lock()
					taken = append(taken, s)
					mu.Unlock()
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i <= 50; i++ {
			if err := a.Tick(sim.Time(i)*sim.Time(5*time.Millisecond), 25); err != nil {
				errs <- err
				return
			}
			// Concurrent manual retargets stress the SetTarget path the
			// autoscaler uses.
			e.Pool.SetTarget(i % 8)
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	seen := make(map[*Shell]bool)
	doms := make(map[int]bool)
	for _, s := range taken {
		if seen[s] {
			t.Fatalf("shell %p taken twice", s)
		}
		seen[s] = true
		if doms[int(s.Dom.ID)] {
			t.Fatalf("domain %d backs two taken shells", s.Dom.ID)
		}
		doms[int(s.Dom.ID)] = true
		if _, err := e.HV.Domain(s.Dom.ID); err != nil {
			t.Fatalf("taken shell dom %d: %v", s.Dom.ID, err)
		}
	}
	if st := e.Pool.Stats; st.Taken != len(taken) || st.Taken > st.Prepared {
		t.Fatalf("stats %+v inconsistent with %d shells actually taken", st, len(taken))
	}
	// Return everything so the host ends balanced: pool + nothing else.
	for _, s := range taken {
		e.Pool.mu.Lock()
		e.Pool.reap(s)
		e.Pool.mu.Unlock()
	}
	if v := Fsck(e); len(v) > 0 {
		t.Fatalf("fsck violations after autoscaled churn: %v", v)
	}
}
