package toolstack

import (
	"strings"
	"testing"
)

const xlSample = `
# web frontend
name    = "web1"
kernel  = "/images/daytime"
memory  = 16
vcpus   = 2
vif     = [ 'mac=00:16:3e:00:00:07,bridge=xenbr0' ]
on_crash = "destroy"
`

func TestParseXL(t *testing.T) {
	cfg, err := ParseXL(xlSample)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Name != "web1" || cfg.Kernel != "daytime" {
		t.Fatalf("cfg = %+v", cfg)
	}
	if cfg.MemoryMB != 16 || cfg.VCPUs != 2 {
		t.Fatalf("mem/vcpus = %d/%d", cfg.MemoryMB, cfg.VCPUs)
	}
	if len(cfg.VIFMACs) != 1 || cfg.VIFMACs[0] != "00:16:3e:00:00:07" {
		t.Fatalf("vifs = %v", cfg.VIFMACs)
	}
	if cfg.OnCrash != "destroy" {
		t.Fatalf("on_crash = %q", cfg.OnCrash)
	}
}

func TestParseXLErrors(t *testing.T) {
	cases := map[string]string{
		"no name":     "kernel = \"daytime\"\n",
		"no kernel":   "name = \"x\"\n",
		"bad memory":  "name=\"x\"\nkernel=\"daytime\"\nmemory = lots\n",
		"bad vcpus":   "name=\"x\"\nkernel=\"daytime\"\nvcpus = 0\n",
		"unknown key": "name=\"x\"\nkernel=\"daytime\"\ncolour = \"red\"\n",
		"missing =":   "name \"x\"\n",
		"bad quote":   "name = \"x\nkernel=\"daytime\"\n",
		"bad viflist": "name=\"x\"\nkernel=\"daytime\"\nvif = mac=aa\n",
	}
	for label, text := range cases {
		if _, err := ParseXL(text); err == nil {
			t.Errorf("%s: accepted", label)
		}
	}
}

func TestParseChaos(t *testing.T) {
	cfg, err := ParseChaos("name fw1\nkernel clickos-fw\nmemory 8\nvif 00:16:3e:00:00:09\n")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Name != "fw1" || cfg.Kernel != "clickos-fw" || cfg.MemoryMB != 8 {
		t.Fatalf("cfg = %+v", cfg)
	}
	if len(cfg.VIFMACs) != 1 {
		t.Fatalf("vifs = %v", cfg.VIFMACs)
	}
}

func TestParseChaosErrors(t *testing.T) {
	for label, text := range map[string]string{
		"no value":    "name\n",
		"unknown key": "name x\nkernel daytime\nflavour big\n",
		"no kernel":   "name x\n",
	} {
		if _, err := ParseChaos(text); err == nil {
			t.Errorf("%s: accepted", label)
		}
	}
}

func TestParseConfigAutodetect(t *testing.T) {
	xl, err := ParseConfig(xlSample)
	if err != nil || xl.Name != "web1" {
		t.Fatalf("xl autodetect: %+v %v", xl, err)
	}
	ch, err := ParseConfig("name y\nkernel daytime\n")
	if err != nil || ch.Name != "y" {
		t.Fatalf("chaos autodetect: %+v %v", ch, err)
	}
	if _, err := ParseConfig("   \n# only comments\n"); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestResolveImage(t *testing.T) {
	cfg, err := ParseXL(xlSample)
	if err != nil {
		t.Fatal(err)
	}
	img, err := cfg.ResolveImage()
	if err != nil {
		t.Fatal(err)
	}
	if img.Name != "daytime" {
		t.Fatalf("image = %q", img.Name)
	}
	if img.MemBytes != 16<<20 {
		t.Fatalf("memory override lost: %d", img.MemBytes)
	}
	if img.Devices[0].MAC != "00:16:3e:00:00:07" {
		t.Fatalf("mac override lost: %q", img.Devices[0].MAC)
	}
	// Unknown kernel surfaces an error.
	cfg.Kernel = "nonesuch"
	if _, err := cfg.ResolveImage(); err == nil {
		t.Fatal("unknown kernel accepted")
	}
}

func TestConfigEndToEnd(t *testing.T) {
	e := newEnv()
	cfg, err := ParseConfig(xlSample)
	if err != nil {
		t.Fatal(err)
	}
	img, err := cfg.ResolveImage()
	if err != nil {
		t.Fatal(err)
	}
	vm, err := e.ForMode(ModeChaosNoXS).Create(cfg.Name, img)
	if err != nil {
		t.Fatal(err)
	}
	if vm.Image.MemBytes != 16<<20 {
		t.Fatal("configured memory not applied")
	}
	if !strings.HasPrefix(vm.Name, "web") {
		t.Fatalf("name = %q", vm.Name)
	}
}
