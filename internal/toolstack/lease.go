package toolstack

import (
	"errors"
	"fmt"
	"strings"

	"lightvm/internal/hv"
)

// Lease-fenced domain ownership: the split-brain half of the cluster's
// gray-failure story (internal/cluster/health.go is the detection
// half).
//
// Every cluster placement carries a monotonically increasing epoch.
// The owning Dom0 records its claim durably in the same intent journal
// the crash-consistent lifecycle uses (crash.go) — a store node under
// /tool/journal on the xl path, a kernel-memory journal entry on the
// noxs path — under the key "lease:<vm>". When the cluster fails a
// domain over (because its host was declared dead on missed
// heartbeats), it bumps the epoch; the old host's recorded claim is
// now stale. Fencing happens at the toolstack boundary: destroy and
// migrate consult CheckLease before touching the domain, and the
// scrubber validates every lease record it finds against the cluster's
// epoch table, reaping the stale copy — so a partitioned host that
// comes back cannot double-run a domain it no longer owns.
//
// The fence lives at the journal layer, not in the cluster's in-memory
// tables, for the same reason the intent journal does: the claim must
// survive the toolstack process. A restarted or returning Dom0 has no
// cluster state — the journal is the only thing it can trust, and
// replaying it (Scrub) is exactly the self-fencing walk.
//
// Everything here is inert until a LeaseChecker is attached (the
// cluster arms one per member when its health monitor is enabled):
// unarmed environments hold no leases, write no records, and charge
// zero extra virtual time, so all pre-existing figures stay
// byte-identical.

// ErrStaleLease marks an operation rejected by the ownership fence:
// the caller's lease epoch for the domain is no longer current —
// the domain was failed over while this host was unreachable.
var ErrStaleLease = errors.New("toolstack: stale placement lease (domain fenced)")

// LeaseChecker validates an ownership claim against the cluster's
// authoritative epoch table: it reports whether epoch is still the
// current epoch for name. It must not charge virtual time and must be
// callable from scrub/fsck contexts without further locking.
type LeaseChecker func(name string, epoch uint64) bool

// leasePrefix namespaces lease records in the shared intent journal.
const leasePrefix = "lease:"

// GrantLease records this Dom0's ownership of vm at epoch, durably in
// the intent journal (charged like any journal write). The cluster
// calls it after each successful placement.
func (e *Env) GrantLease(name string, epoch uint64, useStore bool) {
	if e.leases == nil {
		e.leases = make(map[string]uint64)
	}
	e.leases[name] = epoch
	var dom hv.DomID
	if vm, ok := e.vms[name]; ok && vm.Dom != nil {
		dom = vm.Dom.ID
	}
	rec := journalRecord{Key: leasePrefix + name, Op: journalOpLease, Step: "own", Dom: dom, Epoch: epoch}
	if useStore {
		e.Store.Write(journalRoot+"/"+rec.Key, rec.encode())
	} else {
		e.Noxs.JournalSet(rec.Key, rec.encode())
	}
}

// RevokeLease drops a lease and its journal record — a clean ownership
// handoff (destroy, or a completed outbound migration).
func (e *Env) RevokeLease(name string, useStore bool) {
	if _, ok := e.leases[name]; !ok {
		return
	}
	delete(e.leases, name)
	if useStore {
		_ = e.Store.Rm(journalRoot + "/" + leasePrefix + name)
	} else {
		e.Noxs.JournalClear(leasePrefix + name)
	}
}

// LeaseEpoch reports the epoch this Dom0 holds for name, if any.
func (e *Env) LeaseEpoch(name string) (uint64, bool) {
	ep, ok := e.leases[name]
	return ep, ok
}

// CheckLease is the fence: lifecycle operations on leased domains call
// it before touching anything. Unarmed environments (no LeaseChecker)
// and unleased domains pass for free; a stale claim is rejected with
// ErrStaleLease and counted.
func (e *Env) CheckLease(name string) error {
	if e.LeaseCheck == nil {
		return nil
	}
	epoch, ok := e.leases[name]
	if !ok {
		return nil
	}
	if e.LeaseCheck(name, epoch) {
		return nil
	}
	e.staleRejected++
	e.Trace.Emit("toolstack", "fence", name, fmt.Sprintf("epoch=%d", epoch), 0)
	return fmt.Errorf("%w: %q epoch %d", ErrStaleLease, name, epoch)
}

// StaleRejections reports how many operations the fence has rejected
// (including scrub-time reaps of stale copies). A positive count next
// to a zero double-start count is the evidence the fence did real
// work.
func (e *Env) StaleRejections() uint64 { return e.staleRejected }

// scrubLease is the scrubber's handling of one lease record — the
// self-fencing walk a returning host runs before accepting new work. A
// record the cluster still recognizes is live ownership, not litter:
// it stays, and so does the domain. A stale record means the domain
// was failed over while this host was out: its local copy is reaped
// (domain, devices, registry state) and the claim dropped.
func (e *Env) scrubLease(rec journalRecord, useStore bool, r *ScrubReport) {
	name := strings.TrimPrefix(rec.Key, leasePrefix)
	if e.LeaseCheck == nil || e.LeaseCheck(name, rec.Epoch) {
		return
	}
	e.staleRejected++
	if vm, ok := e.vms[name]; ok {
		e.UnregisterRunning(vm)
		var dom hv.DomID
		if vm.Dom != nil {
			dom = vm.Dom.ID
		}
		_ = e.reapDomain(dom, useStore, name, r)
		e.forget(vm)
	} else {
		_ = e.reapDomain(rec.Dom, useStore, name, r)
	}
	delete(e.leases, name)
	if useStore {
		_ = e.Store.Rm(journalRoot + "/" + rec.Key)
	} else {
		e.Noxs.JournalClear(rec.Key)
	}
	r.Journals++
	e.Trace.Emit("toolstack", "fence-scrub", name, fmt.Sprintf("epoch=%d", rec.Epoch), 0)
}
