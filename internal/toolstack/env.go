// Package toolstack implements the virtualization control planes the
// paper compares (Fig. 9): stock xl/libxl, the lean chaos/libchaos
// replacement, the split toolstack with its pre-created domain-shell
// pool (§5.2), and their combinations with either the XenStore device
// path or noxs.
package toolstack

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"lightvm/internal/console"
	"lightvm/internal/costs"
	"lightvm/internal/devd"
	"lightvm/internal/faults"
	"lightvm/internal/guest"
	"lightvm/internal/hv"
	"lightvm/internal/noxs"
	"lightvm/internal/sched"
	"lightvm/internal/sim"
	"lightvm/internal/trace"
	"lightvm/internal/xenbus"
	"lightvm/internal/xenstore"
)

// Mode selects one of the paper's toolstack configurations.
type Mode int

// The five configurations of Fig. 9.
const (
	// ModeXL is out-of-the-box Xen: xl/libxl, XenStore, bash hotplug.
	ModeXL Mode = iota
	// ModeChaosXS is chaos + XenStore + xendevd.
	ModeChaosXS
	// ModeChaosSplit is chaos + XenStore + split toolstack.
	ModeChaosSplit
	// ModeChaosNoXS is chaos + noxs (no XenStore).
	ModeChaosNoXS
	// ModeLightVM is the full system: chaos + noxs + split toolstack.
	ModeLightVM
)

var modeNames = [...]string{"xl", "chaos [XS]", "chaos [XS+split]", "chaos [NoXS]", "LightVM"}

func (m Mode) String() string {
	if int(m) < len(modeNames) {
		return modeNames[m]
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// UsesStore reports whether the mode's device path is the XenStore.
func (m Mode) UsesStore() bool { return m == ModeXL || m == ModeChaosXS || m == ModeChaosSplit }

// UsesSplit reports whether the mode takes shells from the pool.
func (m Mode) UsesSplit() bool { return m == ModeChaosSplit || m == ModeLightVM }

// Errors.
var (
	ErrDuplicateName = errors.New("toolstack: duplicate VM name")
	ErrUnknownVM     = errors.New("toolstack: unknown VM")
	ErrAlreadyPaused = errors.New("toolstack: VM already paused")
	ErrNotPaused     = errors.New("toolstack: VM not paused")
)

// Breakdown attributes creation time to the Fig. 5 categories.
type Breakdown struct {
	Config     time.Duration // parsing the configuration file
	Hypervisor time.Duration // domain/memory hypercalls
	XenStore   time.Duration // store interactions
	Devices    time.Duration // device creation (backends, hotplug)
	Load       time.Duration // kernel image parse + load
	Toolstack  time.Duration // internal state keeping
}

// Total sums all categories.
func (b Breakdown) Total() time.Duration {
	return b.Config + b.Hypervisor + b.XenStore + b.Devices + b.Load + b.Toolstack
}

// VM is a toolstack-managed guest.
type VM struct {
	Name  string
	Dom   *hv.Domain
	Image guest.Image
	Core  int
	Mode  Mode

	// Booted marks a guest whose OS finished booting.
	Booted bool
	// Paused marks a frozen guest (its idle load is already off the
	// scheduler).
	Paused bool

	// CreateTime / BootTime are the last measured durations.
	CreateTime time.Duration
	BootTime   time.Duration
	// LastBreakdown is the per-category split of CreateTime.
	LastBreakdown Breakdown
}

// Env bundles the Dom0 control-plane state shared by all drivers.
type Env struct {
	Clock *sim.Clock
	HV    *hv.Hypervisor
	Store *xenstore.Store
	Noxs  *noxs.Module
	Sched *sched.Sched

	Bridge  devd.PortAttacher
	Bash    *devd.BashScripts
	Xendevd *devd.Xendevd

	BackVif     *xenbus.Backend
	BackVbd     *xenbus.Backend
	BackConsole *xenbus.Backend

	Pool *Pool

	// MemDedup enables the §9 memory-sharing extension: unikernel
	// guests booted from the same image map its resident pages (and
	// half of their never-touched heap) from the hypervisor's share
	// pool instead of private memory.
	MemDedup bool

	// Faults, when non-nil, is the deterministic fault plane driving
	// this Dom0's injection sites (store conflicts/stalls, handshake
	// drops, pool-daemon crashes). Attach it with SetFaults; a nil
	// injector is inert and costs nothing.
	Faults *faults.Injector

	// Trace, when non-nil, records control-plane operations (the
	// chaos CLI's -trace flag; a nil log costs nothing).
	Trace *trace.Log

	// Console is the xenconsoled daemon draining guest console rings.
	Console *console.Daemon

	// LeaseCheck, when non-nil, arms the ownership fence (lease.go):
	// the cluster attaches a validator against its epoch table, and
	// destroy/migrate/scrub reject or reap domains whose recorded lease
	// epoch is stale. Nil (the default) disables fencing entirely.
	LeaseCheck LeaseChecker

	vms    map[string]*VM
	nextVM int

	// leases holds this Dom0's placement-epoch claims (lease.go);
	// staleRejected counts operations the fence turned away.
	leases        map[string]uint64
	staleRejected uint64

	// dom0Wake tracks aggregate guest wake rate for Dom0 dilation.
	dom0WakeRate float64

	// dead marks a host killed by a simulated whole-machine failure:
	// its frozen state is excluded from FsckTracked audits.
	dead bool

	// Memory-pressure episode state (pressure.go): how many pages the
	// simulated dom0 balloon is withholding and until when.
	pressurePages uint64
	pressureUntil sim.Time
}

// NewEnv wires a complete Dom0 on machine with hostMem bytes of RAM.
func NewEnv(clock *sim.Clock, machine sched.Machine) *Env {
	e := &Env{
		Clock: clock,
		HV:    hv.New(clock, uint64(machine.MemoryGB)<<30),
		Store: xenstore.New(clock),
		Sched: sched.New(machine),
		vms:   make(map[string]*VM),
	}
	e.Bridge = &devd.NullBridge{}
	e.Bash = &devd.BashScripts{Clock: clock, Bridge: e.Bridge}
	e.Xendevd = &devd.Xendevd{Clock: clock, Bridge: e.Bridge}
	e.Noxs = noxs.NewModule(e.HV, e.Xendevd)
	// Stock backends use the bash hotplug path; chaos swaps in
	// xendevd (§5.3). The vif backend's hotplug is chosen per driver
	// via SetVifHotplug.
	e.BackVif = xenbus.NewBackend(hv.DevVif, e.HV, e.Store, e.Bash)
	e.BackVbd = xenbus.NewBackend(hv.DevVbd, e.HV, e.Store, nil)
	e.BackConsole = xenbus.NewBackend(hv.DevConsole, e.HV, e.Store, nil)
	e.Pool = NewPool(e)
	e.Console = console.NewDaemon()
	// Dom0 daemons hold a couple of store connections.
	e.Store.Connections = 3
	trackEnv(e) // no-op unless the -fsck gate enabled tracking
	return e
}

// SetVifHotplug selects the hotplug mechanism for vif setup.
func (e *Env) SetVifHotplug(hp devd.Hotplug) { e.BackVif.Hotplug = hp }

// armVifFailover wraps xendevd in a failover shim on BOTH vif setup
// paths — the store backend and the noxs module — so that while the
// pool daemon is down after a crash, vif hotplug degrades to the
// stock bash scripts until the daemon restarts. Routing through the
// shim is cost-free while the daemon is up (it delegates straight to
// xendevd), so arming it never perturbs fault-free timelines.
func (e *Env) armVifFailover() {
	fo := &devd.Failover{Primary: e.Xendevd, Backup: e.Bash, Down: e.Pool.DaemonDown}
	e.SetVifHotplug(fo)
	e.Noxs.Hotplug = fo
}

// SetFaults attaches a fault injector to the environment and its
// store. If the vif hotplug path is currently xendevd, it gains the
// failover shim (see armVifFailover).
func (e *Env) SetFaults(in *faults.Injector) {
	e.Faults = in
	e.Store.Faults = in
	if hp, ok := e.BackVif.Hotplug.(*devd.Xendevd); in != nil && ok && hp == e.Xendevd {
		e.armVifFailover()
	}
}

// VM looks up a guest by name.
func (e *Env) VM(name string) (*VM, error) {
	vm, ok := e.vms[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownVM, name)
	}
	return vm, nil
}

// VMs returns the number of tracked guests.
func (e *Env) VMs() int { return len(e.vms) }

// AllVMs returns every tracked guest sorted by name (xentop-style
// listings).
func (e *Env) AllVMs() []*VM {
	out := make([]*VM, 0, len(e.vms))
	for _, vm := range e.vms {
		out = append(out, vm)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// register adds a VM to the environment's tables.
func (e *Env) register(vm *VM) error {
	if _, dup := e.vms[vm.Name]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicateName, vm.Name)
	}
	e.vms[vm.Name] = vm
	return nil
}

// dom0Dilation is the slowdown toolstack work suffers from backend
// processing for all running guests' wakeups in Dom0.
func (e *Env) dom0Dilation() float64 {
	return 1 + e.dom0WakeRate*float64(costs.Dom0BackendWorkPerWake)/float64(time.Second)
}

// runDom0 executes fn, then charges the extra Dom0 time implied by
// backend interference, returning the total wall time.
func (e *Env) RunDom0(fn func()) time.Duration {
	start := e.Clock.Now()
	fn()
	raw := e.Clock.Now().Sub(start)
	extra := time.Duration(float64(raw) * (e.dom0Dilation() - 1))
	e.Clock.Sleep(extra)
	return raw + extra
}

// bootGuest performs the guest side of bringing a VM up: frontend
// negotiation (store or noxs), then the OS boot work on the VM's core
// (dilated by its neighbours), then idle-load registration.
func (e *Env) BootGuest(vm *VM) error {
	im := vm.Image
	if vm.Mode.UsesStore() {
		for i, dev := range im.Devices {
			if err := xenbus.ConnectFrontend(e.Store, e.HV, vm.Dom.ID, dev.Kind, i); err != nil {
				return fmt.Errorf("toolstack: boot %q: %w", vm.Name, err)
			}
		}
		// Linux guests chatter with the store while booting.
		for i := 0; i < im.StoreOpsBoot; i++ {
			_, _ = e.Store.Read(fmt.Sprintf("/local/domain/%d/name", vm.Dom.ID))
		}
		e.Store.Connections++
	} else {
		if err := e.Noxs.ConnectGuest(vm.Dom.ID); err != nil {
			return fmt.Errorf("toolstack: boot %q: %w", vm.Name, err)
		}
	}
	e.Sched.RunWork(e.Clock, vm.Core, im.BootWork)
	e.Sched.AddGuest(vm.Core, im.WakeRatePerSec, im.WakeWork, im.UtilDuty)
	e.dom0WakeRate += im.WakeRatePerSec
	vm.Booted = true
	e.Console.Attach(vm.Dom.ID)
	_ = e.Console.Writef(vm.Dom.ID,
		"%s: booting %s (%s) on vcpu->core %d\n%s: %d device(s) connected via %s\n%s: ready in %v\n",
		vm.Name, im.Name, im.Kind, vm.Core,
		vm.Name, len(im.Devices), map[bool]string{true: "xenbus", false: "noxs"}[vm.Mode.UsesStore()],
		vm.Name, e.Clock.Now())
	return nil
}

// unregisterRunning removes a booted guest's load and connections.
func (e *Env) UnregisterRunning(vm *VM) {
	if !vm.Booted {
		return
	}
	im := vm.Image
	if !vm.Paused { // a paused guest's load is already off the books
		e.Sched.RemoveGuest(vm.Core, im.WakeRatePerSec, im.WakeWork, im.UtilDuty)
		e.dom0WakeRate -= im.WakeRatePerSec
	}
	vm.Paused = false
	if vm.Mode.UsesStore() && e.Store.Connections > 0 {
		e.Store.Connections--
	}
	e.Console.Detach(vm.Dom.ID)
	vm.Booted = false
}

// forget drops the VM from the name table.
func (e *Env) forget(vm *VM) { delete(e.vms, vm.Name) }

// PauseVM deschedules a running guest (the §2 pause/unpause
// requirement — Amazon Lambda "freezes" idle instances): all state
// stays resident but the guest stops consuming CPU, so its background
// load disappears from the host.
func (e *Env) PauseVM(vm *VM) error {
	if vm.Paused {
		return fmt.Errorf("%w: %q", ErrAlreadyPaused, vm.Name)
	}
	if err := e.HV.Pause(vm.Dom.ID); err != nil {
		return err
	}
	im := vm.Image
	e.Sched.RemoveGuest(vm.Core, im.WakeRatePerSec, im.WakeWork, im.UtilDuty)
	e.dom0WakeRate -= im.WakeRatePerSec
	vm.Paused = true
	e.Clock.Sleep(costs.VMBootKick)
	e.Trace.Emit("toolstack", "pause", vm.Name, "", 0)
	return nil
}

// UnpauseVM thaws a paused guest: one hypercall and the scheduler
// takes it back — no boot, no device renegotiation.
func (e *Env) UnpauseVM(vm *VM) error {
	if !vm.Paused {
		return fmt.Errorf("%w: %q", ErrNotPaused, vm.Name)
	}
	if err := e.HV.Unpause(vm.Dom.ID); err != nil {
		return err
	}
	im := vm.Image
	e.Sched.AddGuest(vm.Core, im.WakeRatePerSec, im.WakeWork, im.UtilDuty)
	e.dom0WakeRate += im.WakeRatePerSec
	vm.Paused = false
	e.Trace.Emit("toolstack", "unpause", vm.Name, "", 0)
	return nil
}

// PopulateGuest populates a fresh domain's memory for an image. With
// MemDedup enabled, unikernel guests share the image-resident pages
// plus half of their (initially zero) heap; everything else is
// populated privately as on stock Xen. Under a memory-pressure
// episode (pressure.go) the share pool has no COW headroom left, so
// dedup'd populations fall back to private memory — and may then fail
// outright against the shrunken headroom.
func (e *Env) PopulateGuest(id hv.DomID, img guest.Image) error {
	e.memPressureGate(img)
	if e.MemDedup && !e.UnderMemPressure() &&
		img.Kind == guest.Unikernel && img.TotalSize() < img.MemBytes {
		shared := img.TotalSize() + (img.MemBytes-img.TotalSize())/2
		private := img.MemBytes - shared
		if private > 0 {
			if err := e.HV.PopulatePhysmap(id, private); err != nil {
				return err
			}
		}
		return e.HV.PopulateShared(id, "img:"+img.Name, shared)
	}
	return e.HV.PopulatePhysmap(id, img.MemBytes)
}

// BootResumed reattaches a restored/migrated guest: frontends
// reconnect and idle load is re-registered, but no OS boot happens —
// the guest resumes from its saved state.
func (e *Env) BootResumed(vm *VM) error {
	im := vm.Image
	if vm.Mode.UsesStore() {
		for i, dev := range im.Devices {
			if err := xenbus.ConnectFrontend(e.Store, e.HV, vm.Dom.ID, dev.Kind, i); err != nil {
				return fmt.Errorf("toolstack: resume %q: %w", vm.Name, err)
			}
		}
		e.Store.Connections++
	} else {
		if err := e.Noxs.ConnectGuest(vm.Dom.ID); err != nil {
			return fmt.Errorf("toolstack: resume %q: %w", vm.Name, err)
		}
	}
	e.Sched.AddGuest(vm.Core, im.WakeRatePerSec, im.WakeWork, im.UtilDuty)
	e.dom0WakeRate += im.WakeRatePerSec
	vm.Booted = true
	e.Console.Attach(vm.Dom.ID)
	_ = e.Console.Writef(vm.Dom.ID, "%s: resumed from saved state at %v\n", vm.Name, e.Clock.Now())
	return nil
}

// StoreDeviceCreate performs the XenStore device handshake for one
// device (used by restore and migration pre-creation).
func (e *Env) StoreDeviceCreate(vm *VM, idx int, kind hv.DevKind, mac string) error {
	req := xenbus.DeviceReq{Kind: kind, Dom: vm.Dom.ID, Idx: idx, MAC: mac}
	if err := e.Store.Txn(8, func(tx *xenstore.Tx) error {
		xenbus.WriteDeviceEntries(tx, req)
		return nil
	}); err != nil {
		return err
	}
	return xenbus.WaitBackendReady(e.Store, e.Clock, vm.Dom.ID, kind, idx)
}

// Register adds an externally constructed VM (restore/migration) to
// the environment's tables.
func (e *Env) Register(vm *VM) error { return e.register(vm) }

// Forget removes a VM from the name table (checkpoint/migration).
func (e *Env) Forget(vm *VM) { e.forget(vm) }

// Driver is a toolstack implementation.
type Driver interface {
	// Name identifies the configuration (Fig. 9 legend).
	Name() string
	// Create builds and boots a VM from image.
	Create(name string, img guest.Image) (*VM, error)
	// Destroy tears a VM down completely.
	Destroy(vm *VM) error
}

// ForMode returns the driver implementing a Fig. 9 configuration.
func (e *Env) ForMode(m Mode) Driver {
	switch m {
	case ModeXL:
		return NewXL(e)
	default:
		return NewChaos(e, m)
	}
}
