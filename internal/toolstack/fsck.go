package toolstack

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"

	"lightvm/internal/hv"
	"lightvm/internal/xenbus"
)

// Fsck is the cross-layer invariant checker: it cross-references the
// store, the hypervisor, the memory allocator, the noxs module and the
// shell pool against the toolstack's own tables and reports everything
// that no live domain can account for. It is entirely clock-free —
// snapshots and introspection only, no charged operations — so
// experiments can assert on it without perturbing their timelines.
//
// Violations are real leaks. Benign litter that existing flows leave
// on purpose (a migrated-away VM's stale /vm/<name> tree, an empty
// backend parent dir) is NOT a violation — the scrubber counts it as
// residue instead — so a fault-free run of every experiment fscks
// clean.

// nonDomainOwnerBase is the first mm.Owner value reserved for
// non-domain tenants of the host allocator (container engine, process
// runner, dedup pools). Domain IDs stay far below it.
const nonDomainOwnerBase = 1 << 20

// Violation is one broken cross-layer invariant.
type Violation struct {
	Layer   string // xenstore, hv, mm, noxs, pool, toolstack
	Kind    string // machine tag, e.g. orphan-domain
	Subject string // the offending object: path, domain, token
	Detail  string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s/%s %s: %s", v.Layer, v.Kind, v.Subject, v.Detail)
}

// Fsck audits one quiescent environment. The caller must ensure no
// lifecycle operation is in flight (violations found mid-operation
// would be torn reads, not leaks).
func Fsck(e *Env) []Violation {
	var out []Violation
	add := func(layer, kind, subject, format string, args ...any) {
		out = append(out, Violation{Layer: layer, Kind: kind, Subject: subject, Detail: fmt.Sprintf(format, args...)})
	}
	live := e.liveDomains()

	// Store-internal consistency (quota ledger vs node counts).
	for _, p := range e.Store.CheckConsistency() {
		add("xenstore", "store-internal", "", "%s", p)
	}

	snap := e.Store.Snapshot()

	// Orphan registry subtrees and dirty journals.
	if ids, err := snap.Directory("/local/domain"); err == nil {
		sort.Strings(ids)
		for _, s := range ids {
			if id, aerr := strconv.Atoi(s); aerr == nil && id != 0 && !live[hv.DomID(id)] {
				add("xenstore", "orphan-domain-dir", "/local/domain/"+s, "registry subtree for dead domain %d", id)
			}
		}
	}
	// Lease records share the journal but are ownership claims, not
	// intents: a claim is validated (live domain, current epoch), not
	// flagged as dirt.
	checkLease := func(layer string, rec journalRecord) {
		name := strings.TrimPrefix(rec.Key, leasePrefix)
		vm, tracked := e.vms[name]
		if !tracked || vm.Dom == nil {
			add(layer, "lease-without-vm", rec.Key, "ownership claim with no tracked domain (epoch %d)", rec.Epoch)
			return
		}
		if held, ok := e.leases[name]; !ok || held != rec.Epoch {
			add(layer, "lease-epoch-skew", rec.Key, "journal claims epoch %d, in-memory table holds %d", rec.Epoch, e.leases[name])
		}
		if e.LeaseCheck != nil && !e.LeaseCheck(name, rec.Epoch) {
			add(layer, "stale-lease", rec.Key, "epoch %d no longer current — the fence should have scrubbed this copy", rec.Epoch)
		}
	}
	if keys, err := snap.Directory(journalRoot); err == nil {
		sort.Strings(keys)
		for _, k := range keys {
			v, _ := snap.Read(journalRoot + "/" + k)
			if strings.HasPrefix(k, leasePrefix) {
				checkLease("xenstore", parseJournalRecord(k, v))
				continue
			}
			add("xenstore", "journal-dirty", journalRoot+"/"+k, "unrecovered intent: %s", v)
		}
	}
	for _, ent := range e.Noxs.JournalEntries() {
		if strings.HasPrefix(ent.Key, leasePrefix) {
			checkLease("noxs", parseJournalRecord(ent.Key, ent.Record))
			continue
		}
		add("noxs", "journal-dirty", ent.Key, "unrecovered intent: %s", ent.Record)
	}

	// Backend↔frontend pairing: every backend dir must face a frontend
	// dir of a live domain.
	for _, kind := range scrubKinds {
		root := "/local/domain/0/backend/" + xenbus.KindName(kind)
		doms, err := snap.Directory(root)
		if err != nil {
			continue
		}
		sort.Strings(doms)
		for _, ds := range doms {
			id, aerr := strconv.Atoi(ds)
			if aerr != nil {
				continue
			}
			idxs, ierr := snap.Directory(root + "/" + ds)
			if ierr != nil {
				continue
			}
			sort.Strings(idxs)
			for _, is := range idxs {
				idx, xerr := strconv.Atoi(is)
				if xerr != nil {
					continue
				}
				be := root + "/" + ds + "/" + is
				if !live[hv.DomID(id)] {
					add("xenstore", "orphan-backend", be, "backend for dead domain %d", id)
					continue
				}
				if !snap.Exists(xenbus.FrontendPath(hv.DomID(id), kind, idx)) {
					add("xenstore", "backend-without-frontend", be, "no frontend dir for dom %d %s[%d]", id, xenbus.KindName(kind), idx)
				}
			}
		}
	}

	// Orphan frontend watches.
	for _, tok := range e.Store.WatchTokens() {
		if dom, ok := frontendWatchDom(tok); ok && !live[dom] {
			add("xenstore", "orphan-watch", tok, "frontend watch of dead domain %d", dom)
		}
	}

	// Hypervisor: domains, event channels and grants must belong to
	// live domains on both endpoints.
	for _, id := range e.HV.DomainIDs() {
		if !live[id] {
			add("hv", "orphan-domain", strconv.Itoa(int(id)), "hypervisor domain with no toolstack claim")
		}
	}
	for _, ep := range e.HV.PortEndpoints() {
		if (ep.Owner != 0 && !live[ep.Owner]) || (ep.Peer != 0 && !live[ep.Peer]) {
			add("hv", "orphan-port", fmt.Sprintf("%d->%d", ep.Owner, ep.Peer), "event channel endpoint is dead")
		}
	}
	for _, ep := range e.HV.GrantEndpoints() {
		if (ep.Owner != 0 && !live[ep.Owner]) || (ep.Peer != 0 && !live[ep.Peer]) {
			add("hv", "orphan-grant", fmt.Sprintf("%d->%d", ep.Owner, ep.Peer), "grant endpoint is dead")
		}
	}

	// Memory: every charged owner in the domain-ID range must be a live
	// domain. Owners at nonDomainOwnerBase and above belong to other
	// tenants of the allocator (the container engine allocates from
	// 1<<20, the process runner from 1<<24, dedup share pools from
	// 1<<28) and are outside the toolstack's jurisdiction.
	for _, o := range e.HV.Mem.Owners() {
		if o != 0 && o < nonDomainOwnerBase && !live[hv.DomID(o)] {
			add("mm", "orphan-memory", strconv.Itoa(int(o)), "%d bytes owned by dead domain", e.HV.Mem.OwnerBytes(o))
		}
	}

	// Pool: every shell must be backed by a real domain, and no shell
	// may be shared with a tracked VM (a taken shell leaves the pool).
	vmDoms := map[hv.DomID]string{}
	for _, vm := range e.vms {
		if vm.Dom != nil {
			vmDoms[vm.Dom.ID] = vm.Name
		}
	}
	seen := map[hv.DomID]bool{}
	for _, id := range e.Pool.ShellDomIDs() {
		if _, err := e.HV.Domain(id); err != nil {
			add("pool", "missing-shell-domain", strconv.Itoa(int(id)), "pooled shell's domain does not exist")
		}
		if seen[id] {
			add("pool", "duplicate-shell", strconv.Itoa(int(id)), "domain pooled twice")
		}
		seen[id] = true
		if name, ok := vmDoms[id]; ok {
			add("pool", "shell-vm-overlap", strconv.Itoa(int(id)), "pooled shell is also VM %q", name)
		}
	}

	// Toolstack ledger: Dom0's dilation wake-rate must equal the sum
	// over booted, unpaused guests.
	want := 0.0
	for _, vm := range e.vms {
		if vm.Booted && !vm.Paused {
			want += vm.Image.WakeRatePerSec
		}
	}
	if math.Abs(e.dom0WakeRate-want) > 1e-6 {
		add("toolstack", "wake-ledger", "dom0", "dilation ledger %.3f wakes/s, live guests sum to %.3f", e.dom0WakeRate, want)
	}

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Layer != b.Layer {
			return a.Layer < b.Layer
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Subject < b.Subject
	})
	return out
}

// Environment tracking: experiments build Envs deep inside generator
// code; the -fsck gate needs to find them afterwards without threading
// a registry through every constructor. NewEnv registers into a
// package-level list while tracking is on; FsckTracked audits every
// env that is still alive once the run has quiesced.
var envTrack struct {
	mu   sync.Mutex
	on   bool
	envs []*Env
}

// SetEnvTracking switches Env registration on or off, clearing any
// previously tracked list. Leave it off (the default) outside fsck
// runs: tracking pins every environment — stores included — in memory.
func SetEnvTracking(on bool) {
	envTrack.mu.Lock()
	defer envTrack.mu.Unlock()
	envTrack.on = on
	envTrack.envs = nil
}

// trackEnv registers a new environment while tracking is on.
func trackEnv(e *Env) {
	envTrack.mu.Lock()
	defer envTrack.mu.Unlock()
	if envTrack.on {
		envTrack.envs = append(envTrack.envs, e)
	}
}

// MarkDead excludes an environment from FsckTracked — a simulated
// whole-host failure (cluster.FailHost) leaves the corpse's state
// frozen mid-flight by design.
func (e *Env) MarkDead() { e.dead = true }

// TrackedEnvs returns the live tracked environments.
func TrackedEnvs() []*Env {
	envTrack.mu.Lock()
	defer envTrack.mu.Unlock()
	out := make([]*Env, 0, len(envTrack.envs))
	for _, e := range envTrack.envs {
		if !e.dead {
			out = append(out, e)
		}
	}
	return out
}

// FsckTracked audits every live tracked environment. envs reports how
// many were checked. Call only after the run has quiesced (RunMany
// returned): Fsck on an environment mid-operation reads torn state.
func FsckTracked() (envs int, violations []Violation) {
	for _, e := range TrackedEnvs() {
		envs++
		violations = append(violations, Fsck(e)...)
	}
	return envs, violations
}
