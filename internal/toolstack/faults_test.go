package toolstack

import (
	"errors"
	"testing"

	"lightvm/internal/costs"
	"lightvm/internal/devd"
	"lightvm/internal/faults"
	"lightvm/internal/guest"
	"lightvm/internal/sched"
	"lightvm/internal/sim"
)

// crashEnv returns an environment whose every pool Take crashes the
// daemon.
func crashEnv() (*Env, *sim.Clock) {
	clock := sim.NewClock()
	e := NewEnv(clock, sched.Machine{Name: "crash", Cores: 4, Dom0Cores: 1, MemoryGB: 32})
	e.SetFaults(faults.New(clock, 5, faults.Plan{Rate: 1, Kinds: []faults.Kind{faults.KindDaemonCrash}}))
	return e, clock
}

func TestPoolCrashFallsBackToColdPath(t *testing.T) {
	e, clock := crashEnv()
	drv := e.ForMode(ModeLightVM)

	// The first Take crashes the daemon; creation must still succeed
	// via the inline (cold) prepare path.
	vm, err := drv.Create("survivor", guest.Daytime())
	if err != nil {
		t.Fatalf("create during daemon crash: %v", err)
	}
	if !vm.Booted {
		t.Fatal("cold-path VM did not boot")
	}
	if e.Pool.Stats.Crashes != 1 {
		t.Fatalf("got %d crashes, want 1", e.Pool.Stats.Crashes)
	}
	if e.Pool.Stats.Misses != 1 {
		t.Fatalf("got %d misses, want 1 (daemon down)", e.Pool.Stats.Misses)
	}
	if !e.Pool.DaemonDown() {
		t.Fatal("daemon not down right after a crash")
	}

	// Replenish while down is a no-op: nobody is home to do the work.
	flavor := FlavorFor(guest.Daytime(), false)
	if err := e.Pool.Replenish(); err != nil {
		t.Fatal(err)
	}
	if got := e.Pool.Available(flavor); got != 0 {
		t.Fatalf("dead daemon stocked %d shells", got)
	}

	// After the restart window the daemon is back and restocks.
	clock.Sleep(costs.PoolDaemonRestart)
	if e.Pool.DaemonDown() {
		t.Fatal("daemon still down after the restart window")
	}
	if err := e.Pool.Replenish(); err != nil {
		t.Fatal(err)
	}
	if e.Pool.Available(flavor) == 0 {
		t.Fatal("restarted daemon did not restock the pool")
	}
}

func TestPoolCrashReapsShellsAndTheirDomains(t *testing.T) {
	clock := sim.NewClock()
	e := NewEnv(clock, sched.Machine{Name: "reap", Cores: 4, Dom0Cores: 1, MemoryGB: 32})
	// Stock the pool before attaching the fault plane.
	flavor := FlavorFor(guest.Daytime(), false)
	if s := e.Pool.Take(flavor); s != nil {
		t.Fatal("empty pool returned a shell")
	}
	if err := e.Pool.Replenish(); err != nil {
		t.Fatal(err)
	}
	stocked := e.Pool.Available(flavor)
	if stocked == 0 {
		t.Fatal("pool did not stock")
	}
	if e.HV.NumDomains() != stocked {
		t.Fatalf("%d domains for %d shells", e.HV.NumDomains(), stocked)
	}

	e.SetFaults(faults.New(clock, 9, faults.Plan{Rate: 1, Kinds: []faults.Kind{faults.KindDaemonCrash}}))
	if s := e.Pool.Take(flavor); s != nil {
		t.Fatal("crashing Take returned a shell")
	}
	if e.Pool.Available(flavor) != 0 {
		t.Fatal("crash left shells in the pool")
	}
	if e.HV.NumDomains() != 0 {
		t.Fatalf("crash leaked %d shell domains", e.HV.NumDomains())
	}
}

func TestHotplugFailsOverToBashWhileDaemonDown(t *testing.T) {
	e, _ := crashEnv()
	// ModeChaosSplit: store-based device path through the vif backend,
	// whose hotplug shim must route to bash while the daemon is down.
	drv := e.ForMode(ModeChaosSplit)
	fo, ok := e.BackVif.Hotplug.(*devd.Failover)
	if !ok {
		t.Fatalf("vif hotplug is %T, want *devd.Failover under the fault plane", e.BackVif.Hotplug)
	}
	if _, err := drv.Create("split", guest.Daytime()); err != nil {
		t.Fatalf("create during daemon crash: %v", err)
	}
	if fo.Fallbacks == 0 {
		t.Fatal("no hotplug operation fell back to bash while the daemon was down")
	}
	if e.Bash.Invocations == 0 {
		t.Fatal("bash scripts never ran despite the fallback")
	}
}

func TestPauseSentinels(t *testing.T) {
	clock := sim.NewClock()
	e := NewEnv(clock, sched.Machine{Name: "p", Cores: 4, Dom0Cores: 1, MemoryGB: 32})
	vm, err := e.ForMode(ModeChaosNoXS).Create("p0", guest.Daytime())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.UnpauseVM(vm); !errors.Is(err, ErrNotPaused) {
		t.Fatalf("unpause of running VM: %v, want ErrNotPaused", err)
	}
	if err := e.PauseVM(vm); err != nil {
		t.Fatal(err)
	}
	if err := e.PauseVM(vm); !errors.Is(err, ErrAlreadyPaused) {
		t.Fatalf("double pause: %v, want ErrAlreadyPaused", err)
	}
}
