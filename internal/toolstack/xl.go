package toolstack

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"lightvm/internal/costs"
	"lightvm/internal/guest"
	"lightvm/internal/hv"
	"lightvm/internal/xenbus"
	"lightvm/internal/xenstore"
)

// XL is the stock Xen toolstack (xl + libxl + libxc): XenStore for
// everything, bash hotplug scripts, and a lot of internal round trips.
// Its per-creation XenStore op count (~250) is what the paper's Fig. 5
// shows ballooning as guests accumulate.
type XL struct {
	env *Env
	// dirBuf backs the per-creation "/local/domain" listing; reusing
	// it keeps the listing's simulator-side cost flat as guests
	// accumulate (the *modelled* cost still grows with the domain
	// count).
	dirBuf []string
}

// NewXL returns the stock driver.
func NewXL(env *Env) *XL {
	env.SetVifHotplug(env.Bash)
	return &XL{env: env}
}

// Name implements Driver.
func (x *XL) Name() string { return ModeXL.String() }

// xlStateReads approximates libxl's habit of re-reading domain and
// device state from the store across its many sub-operations (JSON
// config lock, device counters, console negotiation, ...). Each is a
// full protocol round trip.
const xlStateReads = 200

// Create implements the 9-step creation flow of Fig. 8's "standard
// toolstack" column, attributing time to Fig. 5's categories.
func (x *XL) Create(name string, img guest.Image) (*VM, error) {
	e := x.env
	vm := &VM{Name: name, Image: img, Mode: ModeXL, Core: e.Sched.Place()}
	if err := e.register(vm); err != nil {
		return nil, err
	}
	var bd Breakdown
	var retErr error
	start := e.Clock.Now()

	e.RunDom0(func() {
		mark := func(dst *time.Duration, fn func()) {
			t0 := e.Clock.Now()
			fn()
			*dst += e.Clock.Now().Sub(t0)
		}

		// 1. Configuration parsing.
		mark(&bd.Config, func() { e.Clock.Sleep(costs.ConfigParse) })

		// 2. Toolstack-internal bookkeeping. The intent journal is
		// written before any durable state exists, and updated once the
		// domain ID is known, so a restarted xl can always find what
		// this creation left behind.
		mark(&bd.Toolstack, func() { e.journalSet(true, name, journalOpCreate, "hv", 0) })
		if retErr = e.crashPoint("xl.create.begin"); retErr != nil {
			return
		}
		mark(&bd.Toolstack, func() { e.Clock.Sleep(costs.ToolstackInternalXL) })

		// 3. Hypervisor reservation + memory.
		var dom *hv.Domain
		mark(&bd.Hypervisor, func() {
			var err error
			dom, err = e.HV.CreateDomain(hv.Config{
				MaxMem: img.MemBytes, VCPUs: 1, Cores: []int{vm.Core},
			})
			if err != nil {
				retErr = err
				return
			}
			vm.Dom = dom // recorded immediately so error paths tear it down
			if err := e.HV.PopulatePhysmap(dom.ID, img.MemBytes); err != nil {
				retErr = err
			}
		})
		if retErr != nil {
			return
		}
		mark(&bd.Toolstack, func() { e.journalSet(true, name, journalOpCreate, "store", dom.ID) })
		if retErr = e.crashPoint("xl.create.hv"); retErr != nil {
			return
		}

		// 4. XenStore preamble: the domain's registry entries, the
		// unique-name check, and libxl's many state re-reads.
		mark(&bd.XenStore, func() { retErr = e.storeQuotaGate(dom.ID, "xl.create.store") })
		if retErr != nil {
			return
		}
		mark(&bd.XenStore, func() {
			domPath := xenbus.DomainPath(dom.ID)
			retErr = e.Store.Txn(8, func(tx *xenstore.Tx) error {
				tx.Write(domPath+"/name", name)
				tx.Write(domPath+"/vm", "/vm/"+name)
				tx.Write(domPath+"/domid", strconv.Itoa(int(dom.ID)))
				tx.Write(domPath+"/memory/target", strconv.FormatUint(img.MemBytes/1024, 10))
				tx.Write(domPath+"/memory/static-max", strconv.FormatUint(img.MemBytes/1024, 10))
				tx.Write(domPath+"/cpu/0/availability", "online")
				tx.Write(domPath+"/console/limit", "1048576")
				tx.Write(domPath+"/console/type", "xenconsoled")
				tx.Write(domPath+"/control/platform-feature-multiprocessor-suspend", "1")
				tx.Write(domPath+"/control/shutdown", "")
				tx.Write("/vm/"+name+"/uuid", fmt.Sprintf("0000-%08d", dom.ID))
				tx.Write("/vm/"+name+"/image/ostype", img.Kind.String())
				tx.Write("/vm/"+name+"/start_time", e.Clock.Now().String())
				return nil
			})
			if retErr != nil {
				return
			}
			if err := e.Store.WriteUniqueName("/vm/names", strconv.Itoa(int(dom.ID)), name); err != nil {
				retErr = err
				return
			}
			x.dirBuf, _ = e.Store.DirectoryAppend("/local/domain", x.dirBuf)
			namePath := domPath + "/name"
			for i := 0; i < xlStateReads; i++ {
				_, _ = e.Store.Read(namePath)
			}
		})
		if retErr != nil {
			return
		}
		if retErr = e.crashPoint("xl.create.store"); retErr != nil {
			return
		}

		// 5–7. Device pre-creation + initialization (split-driver
		// handshake, bash hotplug).
		mark(&bd.Devices, func() { retErr = x.createDevices(vm) })
		if retErr != nil {
			return
		}
		if retErr = e.crashPoint("xl.create.devices"); retErr != nil {
			return
		}

		// 8. Image build: parse the kernel and lay it out in memory.
		mark(&bd.Load, func() {
			retErr = e.HV.LoadImage(dom.ID, img.Name, img.TotalSize())
		})
		if retErr != nil {
			return
		}

		// Finalize: console ring info etc.
		mark(&bd.XenStore, func() {
			domPath := xenbus.DomainPath(dom.ID)
			e.Store.Write(domPath+"/console/ring-ref", "1")
			e.Store.Write(domPath+"/console/port", "2")
			e.Store.Write(domPath+"/image/entry", strconv.FormatUint(dom.KernelEntry, 16))
			e.Store.Write(domPath+"/unpaused", "1")
		})

		// 9. Boot kick.
		mark(&bd.Hypervisor, func() { retErr = e.HV.Unpause(dom.ID) })
		if retErr != nil {
			return
		}
		retErr = e.crashPoint("xl.create.finalize")
	})
	if retErr != nil {
		e.forget(vm)
		if errors.Is(retErr, ErrToolstackCrash) {
			// The toolstack process died mid-creation: no rollback runs,
			// and whatever was built so far stays for scrub/recovery.
			return nil, retErr
		}
		if vm.Dom != nil {
			retErr = e.rollbackDomain(retErr, true, name, vm.Dom.ID)
		}
		e.journalClear(true, name)
		return nil, retErr
	}
	e.journalClear(true, name)
	vm.LastBreakdown = bd
	vm.CreateTime = e.Clock.Now().Sub(start)

	bootStart := e.Clock.Now()
	if err := e.BootGuest(vm); err != nil {
		_ = x.Destroy(vm)
		return nil, err
	}
	vm.BootTime = e.Clock.Now().Sub(bootStart)
	e.Trace.Emit("toolstack", "create", name, "mode="+ModeXL.String(), vm.CreateTime+vm.BootTime)
	return vm, nil
}

// createDevices runs the Fig. 7a handshake for every device the image
// wants, waiting for the backend (and its hotplug script) per device.
func (x *XL) createDevices(vm *VM) error {
	e := x.env
	for i, dev := range vm.Image.Devices {
		req := xenbus.DeviceReq{Kind: dev.Kind, Dom: vm.Dom.ID, Idx: i, MAC: dev.MAC}
		if err := e.Store.Txn(8, func(tx *xenstore.Tx) error {
			xenbus.WriteDeviceEntries(tx, req)
			return nil
		}); err != nil {
			return err
		}
		if err := xenbus.WaitBackendReady(e.Store, e.Clock, vm.Dom.ID, dev.Kind, i); err != nil {
			return err
		}
		// libxl re-reads the device's backend nodes to verify.
		be := xenbus.BackendPath(vm.Dom.ID, dev.Kind, i)
		for _, k := range []string{"/state", "/event-channel", "/grant-ref"} {
			_, _ = e.Store.Read(be + k)
		}
	}
	return nil
}

// Destroy tears down devices, store state and the domain. Crash
// points sit after the guest is already unregistered: a destroy
// intent rolls FORWARD on recovery (the user asked for the domain to
// go), so the journal is written before the first teardown step.
func (x *XL) Destroy(vm *VM) error {
	e := x.env
	// Ownership fence: a stale lease means the domain was failed over
	// while this host was unreachable — hands off (the scrubber, not
	// the normal lifecycle, reaps the local copy).
	if err := e.CheckLease(vm.Name); err != nil {
		return err
	}
	var crashErr error
	e.RunDom0(func() {
		e.UnregisterRunning(vm)
		e.journalSet(true, vm.Name, journalOpDestroy, "devices", vm.Dom.ID)
		if crashErr = e.crashPoint("xl.destroy.begin"); crashErr != nil {
			return
		}
		for i, dev := range vm.Image.Devices {
			switch dev.Kind {
			case hv.DevVif:
				e.BackVif.Teardown(vm.Dom.ID, i)
			case hv.DevVbd:
				e.BackVbd.Teardown(vm.Dom.ID, i)
			case hv.DevConsole:
				e.BackConsole.Teardown(vm.Dom.ID, i)
			}
			xenbus.RemoveDeviceEntries(e.Store, vm.Dom.ID, dev.Kind, i)
		}
		if crashErr = e.crashPoint("xl.destroy.devices"); crashErr != nil {
			return
		}
		_ = e.Store.Rm(xenbus.DomainPath(vm.Dom.ID))
		_ = e.Store.Rm("/vm/" + vm.Name)
		_ = e.Store.Rm("/vm/names/" + strconv.Itoa(int(vm.Dom.ID)))
		e.Clock.Sleep(costs.ToolstackInternalXL / 2)
	})
	e.forget(vm)
	if crashErr != nil {
		return crashErr
	}
	if crashErr = e.crashPoint("xl.destroy.hv"); crashErr != nil {
		return crashErr
	}
	err := e.HV.DestroyDomain(vm.Dom.ID)
	e.journalClear(true, vm.Name)
	e.Trace.Emit("toolstack", "destroy", vm.Name, "mode="+ModeXL.String(), 0)
	return err
}
