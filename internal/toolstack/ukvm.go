package toolstack

import (
	"errors"
	"fmt"
	"time"

	"lightvm/internal/costs"
	"lightvm/internal/guest"
	"lightvm/internal/hv"
)

// Ukvm is the §9 "Generality" comparison point: a specialized
// unikernel monitor in the style of ukvm/Solo5 on KVM ("ukvm
// implements a specialized unikernel monitor on top of KVM and uses
// MirageOS unikernels to achieve 10 ms boot times"). There is no
// XenStore, no split-driver handshake and no shell pool — one monitor
// process per guest sets up memory, loads the image and enters the
// guest, with paravirtual I/O negotiated directly over hypercalls.
//
// It exists to show LightVM's techniques against the other minimal
// design point: ukvm avoids all of Xen's control-plane baggage but
// pays a fork/exec plus per-boot setup on every creation, so it cannot
// amortize work the way the split toolstack does.
type Ukvm struct {
	env *Env
}

// NewUkvm returns the monitor-based driver.
func NewUkvm(env *Env) *Ukvm { return &Ukvm{env: env} }

// Name implements Driver.
func (u *Ukvm) Name() string { return "ukvm" }

// ukvm per-boot constants (documented against the 10 ms figure the
// paper cites for MirageOS guests).
const (
	// ukvmMonitorSpawn is the fork/exec of the monitor process.
	ukvmMonitorSpawn = costs.ForkExec
	// ukvmSetup is KVM vCPU/memory-region setup inside the monitor.
	ukvmSetup = 1200 * time.Microsecond
	// ukvmDeviceSetup wires the paravirtual net/block endpoints.
	ukvmDeviceSetup = 400 * time.Microsecond
)

// Create implements Driver: spawn a monitor, build the guest, enter it.
func (u *Ukvm) Create(name string, img guest.Image) (*VM, error) {
	e := u.env
	if img.Kind != guest.Unikernel {
		return nil, fmt.Errorf("toolstack: ukvm only runs unikernels, not %v", img.Kind)
	}
	vm := &VM{Name: name, Image: img, Mode: ModeChaosNoXS, Core: e.Sched.Place()}
	if err := e.register(vm); err != nil {
		return nil, err
	}
	var retErr error
	start := e.Clock.Now()
	e.RunDom0(func() {
		// One monitor process per guest.
		e.Clock.Sleep(ukvmMonitorSpawn + ukvmSetup)
		dom, err := e.HV.CreateDomain(hv.Config{
			MaxMem: img.MemBytes, VCPUs: 1, Cores: []int{vm.Core},
		})
		if err != nil {
			retErr = err
			return
		}
		vm.Dom = dom
		if err := e.PopulateGuest(dom.ID, img); err != nil {
			retErr = err
			return
		}
		e.Clock.Sleep(time.Duration(len(img.Devices)) * ukvmDeviceSetup)
		if err := e.HV.LoadImage(dom.ID, img.Name, img.TotalSize()); err != nil {
			retErr = err
			return
		}
		retErr = e.HV.Unpause(dom.ID)
	})
	if retErr != nil {
		e.forget(vm)
		if vm.Dom != nil {
			if derr := e.HV.DestroyDomain(vm.Dom.ID); derr != nil {
				retErr = errors.Join(retErr, fmt.Errorf("toolstack: rollback of %q: %w", name, derr))
			}
		}
		return nil, retErr
	}
	vm.CreateTime = e.Clock.Now().Sub(start)
	bootStart := e.Clock.Now()
	// Guest boot: no frontend negotiation beyond the monitor's direct
	// paravirtual endpoints. The wake rate joins the Dom0 ledger here
	// and leaves it in UnregisterRunning — a Destroy used to subtract a
	// rate Create never added, driving the dilation ledger negative.
	e.Sched.RunWork(e.Clock, vm.Core, img.BootWork)
	e.Sched.AddGuest(vm.Core, img.WakeRatePerSec, img.WakeWork, img.UtilDuty)
	e.dom0WakeRate += img.WakeRatePerSec
	vm.Booted = true
	vm.BootTime = e.Clock.Now().Sub(bootStart)
	e.Trace.Emit("toolstack", "create", name, "mode=ukvm", vm.CreateTime+vm.BootTime)
	return vm, nil
}

// Destroy implements Driver: kill the monitor process; the kernel
// reaps everything.
func (u *Ukvm) Destroy(vm *VM) error {
	e := u.env
	e.RunDom0(func() {
		e.UnregisterRunning(vm)
		e.Clock.Sleep(costs.ForkExec / 4) // SIGKILL + wait
	})
	e.forget(vm)
	err := e.HV.DestroyDomain(vm.Dom.ID)
	e.Trace.Emit("toolstack", "destroy", vm.Name, "mode=ukvm", 0)
	return err
}
