package toolstack

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"lightvm/internal/devd"
	"lightvm/internal/faults"
	"lightvm/internal/guest"
	"lightvm/internal/sched"
	"lightvm/internal/sim"
	"lightvm/internal/xenbus"
)

// crashEnv builds an environment whose injector fires
// KindToolstackCrash at exactly one labeled site (Plan.Sites filter;
// rate 1 so the first encounter fires).
func crashSiteEnv(t *testing.T, site string) (*Env, *faults.Injector) {
	t.Helper()
	clock := sim.NewClock()
	e := NewEnv(clock, sched.Xeon4)
	inj := faults.New(clock, 42, faults.Plan{
		Rate:  1,
		Kinds: []faults.Kind{faults.KindToolstackCrash},
		Sites: []string{site},
	})
	e.SetFaults(inj)
	return e, inj
}

// TestCrashPointsRecoverable kills the toolstack at every labeled
// crash point, one per subtest, and demands the same contract each
// time: the operation returns ErrToolstackCrash, the wreckage is
// visible to Fsck (at minimum a dirty intent journal), and one Scrub
// restores a state with zero violations, no leaked domains, and the
// crashed name reusable.
func TestCrashPointsRecoverable(t *testing.T) {
	cases := []struct {
		mode    Mode
		site    string
		destroy bool // crash the destroy instead of the create
	}{
		{ModeXL, "xl.create.begin", false},
		{ModeXL, "xl.create.hv", false},
		{ModeXL, "xl.create.store", false},
		{ModeXL, "xl.create.devices", false},
		{ModeXL, "xl.create.finalize", false},
		{ModeXL, "xl.destroy.begin", true},
		{ModeXL, "xl.destroy.devices", true},
		{ModeXL, "xl.destroy.hv", true},
		{ModeChaosXS, "chaos.create.begin", false},
		{ModeChaosXS, "chaos.create.hv", false},
		{ModeChaosXS, "chaos.create.devices", false},
		{ModeChaosXS, "chaos.create.store", false},
		{ModeChaosXS, "chaos.create.finalize", false},
		{ModeChaosXS, "chaos.destroy.devices", true},
		{ModeChaosNoXS, "chaos.create.hv", false},
		{ModeChaosNoXS, "chaos.create.finalize", false},
		{ModeChaosNoXS, "chaos.destroy.begin", true},
		{ModeChaosNoXS, "chaos.destroy.hv", true},
		{ModeLightVM, "pool.prepare.hv", false},
		{ModeLightVM, "pool.prepare.devices", false},
		{ModeLightVM, "pool.finalize", false},
		{ModeLightVM, "chaos.create.finalize", false},
		{ModeLightVM, "chaos.destroy.devices", true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.mode.String()+"/"+tc.site, func(t *testing.T) {
			e, _ := crashSiteEnv(t, tc.site)
			drv := e.ForMode(tc.mode)
			img := guest.Daytime()

			var crashErr error
			if tc.destroy {
				vm, err := drv.Create("victim", img)
				if err != nil {
					t.Fatalf("create before destroy-crash: %v", err)
				}
				crashErr = drv.Destroy(vm)
			} else {
				_, crashErr = drv.Create("victim", img)
			}
			if !errors.Is(crashErr, ErrToolstackCrash) {
				t.Fatalf("site %s: got %v, want ErrToolstackCrash", tc.site, crashErr)
			}
			// The crash left partial state behind; at minimum the intent
			// journal is dirty, so the checker must complain.
			if len(Fsck(e)) == 0 {
				t.Fatalf("site %s: crash left no visible wreckage", tc.site)
			}

			// Recovery: the restarted toolstack scrubs, then audits clean.
			e.SetFaults(nil)
			rep := e.Scrub(tc.mode)
			if rep.Journals == 0 {
				t.Fatalf("site %s: scrub replayed no intent", tc.site)
			}
			if v := Fsck(e); len(v) > 0 {
				t.Fatalf("site %s: %d violations after scrub, first: %s", tc.site, len(v), v[0])
			}
			if e.VMs() != 0 {
				t.Fatalf("site %s: %d VMs survived recovery", tc.site, e.VMs())
			}
			if got, want := e.HV.NumDomains(), len(e.Pool.ShellDomIDs()); got != want {
				t.Fatalf("site %s: %d domains for %d pooled shells", tc.site, got, want)
			}
			// A second scrub is a no-op (idempotence).
			rep2 := e.Scrub(tc.mode)
			if rep2.Journals != 0 || rep2.Orphans != 0 || rep2.Residue != 0 {
				t.Fatalf("site %s: second scrub found work: %+v", tc.site, rep2)
			}
			// The crashed name must be reusable.
			vm, err := drv.Create("victim", img)
			if err != nil {
				t.Fatalf("site %s: name unusable after recovery: %v", tc.site, err)
			}
			if err := drv.Destroy(vm); err != nil {
				t.Fatalf("site %s: destroy after recovery: %v", tc.site, err)
			}
		})
	}
}

// TestDestroyCrashRollsForward pins the recovery direction: a crash
// after the destroy intent was journaled leaves the domain running,
// and the scrubber finishes the teardown (roll-forward) rather than
// resurrecting the guest.
func TestDestroyCrashRollsForward(t *testing.T) {
	e, _ := crashSiteEnv(t, "chaos.destroy.hv")
	drv := e.ForMode(ModeChaosNoXS)
	vm, err := drv.Create("fwd", guest.Daytime())
	if err != nil {
		t.Fatal(err)
	}
	if err := drv.Destroy(vm); !errors.Is(err, ErrToolstackCrash) {
		t.Fatalf("destroy: %v", err)
	}
	// The crash hit after device teardown but before the domain died.
	if n := e.HV.NumDomains(); n != 1 {
		t.Fatalf("domains before scrub = %d, want the half-destroyed 1", n)
	}
	e.SetFaults(nil)
	rep := e.Scrub(ModeChaosNoXS)
	if rep.Journals != 1 || rep.Orphans != 1 {
		t.Fatalf("scrub report %+v, want 1 journal + 1 orphan", rep)
	}
	if n := e.HV.NumDomains(); n != 0 {
		t.Fatalf("domains after scrub = %d", n)
	}
	if v := Fsck(e); len(v) > 0 {
		t.Fatalf("violations after roll-forward: %v", v)
	}
}

// TestCloneCrashRecoverable covers the clone path's crash points.
func TestCloneCrashRecoverable(t *testing.T) {
	for _, site := range []string{"clone.begin", "clone.hv", "clone.devices", "clone.finalize"} {
		site := site
		t.Run(site, func(t *testing.T) {
			e, _ := crashSiteEnv(t, site)
			drv := e.ForMode(ModeChaosNoXS)
			parent, err := drv.Create("parent", guest.Daytime())
			if err != nil {
				t.Fatal(err)
			}
			if _, err := e.CloneVM(parent, "child"); !errors.Is(err, ErrToolstackCrash) {
				t.Fatalf("clone at %s: %v", site, err)
			}
			e.SetFaults(nil)
			e.Scrub(ModeChaosNoXS)
			if v := Fsck(e); len(v) > 0 {
				t.Fatalf("violations after scrub: %v", v)
			}
			// Parent unharmed, child name reusable.
			if e.VMs() != 1 {
				t.Fatalf("VMs = %d, want the parent alone", e.VMs())
			}
			child, err := e.CloneVM(parent, "child")
			if err != nil {
				t.Fatalf("re-clone: %v", err)
			}
			if err := drv.Destroy(child); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCrashChurnAlwaysScrubsClean is the property sweep: random crash
// points at a high rate over a create/destroy churn, across seeds and
// modes — every failure is the typed crash error, and scrubbing always
// converges to zero violations.
func TestCrashChurnAlwaysScrubsClean(t *testing.T) {
	for _, mode := range []Mode{ModeXL, ModeChaosXS, ModeChaosNoXS, ModeLightVM} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			for seed := uint64(1); seed <= 3; seed++ {
				clock := sim.NewClock()
				e := NewEnv(clock, sched.Xeon4)
				inj := faults.New(clock, seed, faults.Plan{
					Rate: 0.3, Kinds: []faults.Kind{faults.KindToolstackCrash},
				})
				e.SetFaults(inj)
				drv := e.ForMode(mode)
				for i := 0; i < 60; i++ {
					vm, err := drv.Create(fmt.Sprintf("c%d", i), guest.Daytime())
					if err == nil {
						err = drv.Destroy(vm)
					}
					if err != nil && !errors.Is(err, ErrToolstackCrash) {
						t.Fatalf("seed %d cycle %d: non-crash failure %v", seed, i, err)
					}
					if i%10 == 9 {
						e.Scrub(mode)
					}
				}
				e.Scrub(mode)
				if v := Fsck(e); len(v) > 0 {
					t.Fatalf("seed %d: %d violations after final scrub, first: %s", seed, len(v), v[0])
				}
			}
		})
	}
}

// TestPoolFinalizeCrashWithDaemonFailover is the nastiest interleaving
// the split toolstack has: a shell is taken from the pool and the
// toolstack dies inside device finalization; then the pool daemon
// itself crashes (draining and reaping its remaining shells) and vif
// hotplug degrades to the bash fallback. The taken shell must be
// reaped exactly once — by journal replay, not by the daemon's drain —
// and the fallback path must keep working.
func TestPoolFinalizeCrashWithDaemonFailover(t *testing.T) {
	clock := sim.NewClock()
	e := NewEnv(clock, sched.Xeon4)
	crashInj := faults.New(clock, 7, faults.Plan{
		Rate:  1,
		Kinds: []faults.Kind{faults.KindToolstackCrash},
		Sites: []string{"pool.finalize"},
	})
	e.SetFaults(crashInj)
	drv := e.ForMode(ModeLightVM)
	img := guest.Daytime()

	// Stock the pool (prepare sites are filtered, so this succeeds).
	e.Pool.Register(FlavorFor(img, false))
	if err := e.Pool.Replenish(); err != nil {
		t.Fatal(err)
	}
	stocked := len(e.Pool.ShellDomIDs())
	if stocked == 0 {
		t.Fatal("pool empty after replenish")
	}

	// 1. Toolstack dies finalizing a taken shell.
	if _, err := drv.Create("half", img); !errors.Is(err, ErrToolstackCrash) {
		t.Fatalf("create: %v", err)
	}
	taken := stocked - len(e.Pool.ShellDomIDs())
	if taken != 1 {
		t.Fatalf("shells taken = %d, want 1", taken)
	}

	// 2. The daemon crashes on the next Take: pool drained, shells
	// reaped, hotplug falls back to bash while the daemon restarts.
	daemonInj := faults.New(clock, 8, faults.Plan{
		Rate: 1, Kinds: []faults.Kind{faults.KindDaemonCrash},
	})
	e.SetFaults(daemonInj)
	domsBefore := e.HV.NumDomains()
	fo, ok := e.BackVif.Hotplug.(*devd.Failover)
	if !ok {
		t.Fatalf("failover shim not installed (hotplug is %T)", e.BackVif.Hotplug)
	}
	vm, err := drv.Create("fallback", img)
	if err != nil {
		t.Fatalf("fallback create: %v", err)
	}
	if !e.Pool.DaemonDown() {
		t.Fatal("daemon should be in its restart window")
	}
	if fo.Fallbacks == 0 {
		t.Fatal("vif setup did not fall back to the bash scripts while the daemon was down")
	}
	// Drain reaped the pooled shells but NOT the taken one: only the
	// half-finalized domain (journaled) plus the two live VMs' worth of
	// domains may remain.
	if got := e.HV.NumDomains(); got != domsBefore-(stocked-1)+1 {
		t.Fatalf("domains after drain = %d (before=%d stocked=%d)", got, domsBefore, stocked)
	}

	// 3. Recovery: journal replay reaps the taken shell exactly once.
	e.SetFaults(nil)
	rep := e.Scrub(ModeLightVM)
	if rep.Journals != 1 || rep.Orphans != 1 {
		t.Fatalf("scrub report %+v, want exactly 1 journal + 1 orphan (no double reap)", rep)
	}
	if v := Fsck(e); len(v) > 0 {
		t.Fatalf("violations after scrub: %v", v)
	}
	if e.VMs() != 1 {
		t.Fatalf("VMs = %d, want the fallback guest alone", e.VMs())
	}
	if err := drv.Destroy(vm); err != nil {
		t.Fatal(err)
	}
}

// TestPoolConcurrentTakeReplenish exercises the pool daemon's
// mutex under concurrent Take/Prepare/Replenish with injected daemon
// crashes. Run under -race (the verify-race CI lane) this is the
// regression net for the lock-free DaemonDown / locked-clock split.
func TestPoolConcurrentTakeReplenish(t *testing.T) {
	clock := sim.NewClock()
	e := NewEnv(clock, sched.Machine{Name: "race", Cores: 8, Dom0Cores: 1, MemoryGB: 32})
	inj := faults.New(clock, 9, faults.Plan{
		Rate: 0.1, Kinds: []faults.Kind{faults.KindDaemonCrash},
	})
	e.SetFaults(inj)
	f := FlavorFor(guest.Daytime(), false)
	e.Pool.Register(f)
	if err := e.Pool.Replenish(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	var takenMu sync.Mutex
	var taken []*Shell
	errs := make(chan error, 8)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				if s := e.Pool.Take(f); s != nil {
					takenMu.Lock()
					taken = append(taken, s)
					takenMu.Unlock()
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if err := e.Pool.Replenish(); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Every taken shell left the pool backed by a real domain; dispose
	// of them the way a failed execute phase would.
	for _, s := range taken {
		if _, err := e.HV.Domain(s.Dom.ID); err != nil {
			t.Fatalf("taken shell dom %d: %v", s.Dom.ID, err)
		}
		e.Pool.mu.Lock()
		e.Pool.reap(s)
		e.Pool.mu.Unlock()
	}
	// Every surviving pooled shell is backed by a live domain and the
	// host's domain count equals the pool's (no VM was created here).
	shells := e.Pool.ShellDomIDs()
	for _, id := range shells {
		if _, err := e.HV.Domain(id); err != nil {
			t.Fatalf("pooled shell %d has no domain: %v", id, err)
		}
	}
	if got := e.HV.NumDomains(); got != len(shells) {
		t.Fatalf("domains = %d, pooled shells = %d", got, len(shells))
	}
	if st := e.Pool.Stats; st.Prepared < st.Taken {
		t.Fatalf("stats inconsistent: %+v", st)
	}
	if v := Fsck(e); len(v) > 0 {
		t.Fatalf("violations after concurrent churn: %v", v)
	}
}

// TestDeviceFailureRollbackKeepsErrorIdentity drives the rewritten
// rollback paths (errors.Join instead of swallowed errors): a device
// handshake that times out must roll the domain back, leave zero
// violations, and surface the original typed error through the joined
// chain.
func TestDeviceFailureRollbackKeepsErrorIdentity(t *testing.T) {
	for _, mode := range []Mode{ModeXL, ModeChaosXS} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			clock := sim.NewClock()
			e := NewEnv(clock, sched.Xeon4)
			inj := faults.New(clock, 5, faults.Plan{
				Rate: 1, Kinds: []faults.Kind{faults.KindHandshakeStall},
			})
			e.SetFaults(inj)
			drv := e.ForMode(mode)
			_, err := drv.Create("stalled", guest.Daytime())
			if err == nil {
				t.Fatal("create survived a 100% handshake-drop plan")
			}
			if !errors.Is(err, xenbus.ErrDeviceTimeout) {
				t.Fatalf("joined rollback lost the typed error: %v", err)
			}
			if e.VMs() != 0 || e.HV.NumDomains() != 0 {
				t.Fatalf("rollback leaked: vms=%d doms=%d", e.VMs(), e.HV.NumDomains())
			}
			e.SetFaults(nil)
			if v := Fsck(e); len(v) > 0 {
				t.Fatalf("violations after rollback: %v", v)
			}
		})
	}
}
