// Package tlsterm implements the high-density TLS termination proxy of
// §7.3: an axtls-flavoured TLS 1.2 RSA handshake state machine (the
// paper uses 1024-bit RSA keys, "low ... instead of more efficient
// variants such as ECDHE") with per-operation CPU costs, run over
// either the Linux or the lwip network stack.
//
// The handshake is a real state machine — out-of-order messages are
// rejected — while the cryptography itself is a cost model (the
// experiments measure throughput, not confidentiality).
package tlsterm

import (
	"errors"
	"fmt"
	"time"

	"lightvm/internal/costs"
	"lightvm/internal/netstack"
	"lightvm/internal/sim"
)

// MsgType is a TLS handshake message.
type MsgType int

// Handshake messages (client-sent ones drive the server machine).
const (
	MsgClientHello MsgType = iota
	MsgClientKeyExchange
	MsgChangeCipherSpec
	MsgFinished
	MsgAppData
)

var msgNames = [...]string{"ClientHello", "ClientKeyExchange", "ChangeCipherSpec", "Finished", "AppData"}

func (m MsgType) String() string {
	if int(m) < len(msgNames) {
		return msgNames[m]
	}
	return fmt.Sprintf("msg(%d)", int(m))
}

// State is the server-side session state.
type State int

// Session states.
const (
	StateExpectHello State = iota
	StateExpectKeyExchange
	StateExpectCCS
	StateExpectFinished
	StateEstablished
	StateClosed
)

// ErrProtocol is returned on out-of-order handshake messages.
var ErrProtocol = errors.New("tlsterm: unexpected handshake message")

// Session is one TLS connection being terminated.
type Session struct {
	ID    uint64
	State State
}

// Terminator is one termination endpoint (a unikernel, a Tinyx VM, or
// a bare-metal process), distinguished by its network stack.
type Terminator struct {
	Clock *sim.Clock
	Stack netstack.Stack

	nextID   uint64
	sessions map[uint64]*Session

	// Stats.
	Handshakes uint64
	Requests   uint64
	Rejected   uint64
}

// New creates a terminator on clock using stack.
func New(clock *sim.Clock, stack netstack.Stack) *Terminator {
	return &Terminator{Clock: clock, Stack: stack, sessions: make(map[uint64]*Session)}
}

// Accept starts a new session (TCP handshake done by the stack).
func (t *Terminator) Accept() *Session {
	t.Clock.Sleep(t.Stack.ConnSetup())
	t.nextID++
	s := &Session{ID: t.nextID, State: StateExpectHello}
	t.sessions[s.ID] = s
	return s
}

// Sessions reports live sessions.
func (t *Terminator) Sessions() int { return len(t.sessions) }

// Step advances the session state machine with a client message,
// charging the CPU cost of the server's response. The RSA private-key
// decryption of the pre-master secret is the dominant term.
func (t *Terminator) Step(s *Session, msg MsgType) error {
	switch {
	case s.State == StateExpectHello && msg == MsgClientHello:
		// ServerHello + Certificate + ServerHelloDone.
		t.Clock.Sleep(t.Stack.RequestCost(120 * time.Microsecond))
		s.State = StateExpectKeyExchange
	case s.State == StateExpectKeyExchange && msg == MsgClientKeyExchange:
		// RSA-1024 private-key op on the pre-master secret — the ~10ms
		// that caps the box at ≈1400 handshakes/s on 14 cores.
		t.Clock.Sleep(t.Stack.RequestCost(costs.TLSHandshakeRSA1024))
		s.State = StateExpectCCS
	case s.State == StateExpectCCS && msg == MsgChangeCipherSpec:
		t.Clock.Sleep(t.Stack.RequestCost(15 * time.Microsecond))
		s.State = StateExpectFinished
	case s.State == StateExpectFinished && msg == MsgFinished:
		t.Clock.Sleep(t.Stack.RequestCost(60 * time.Microsecond))
		s.State = StateEstablished
		t.Handshakes++
	case s.State == StateEstablished && msg == MsgAppData:
		// Proxy the (empty-file) HTTPS request to the origin cache.
		t.Clock.Sleep(t.Stack.RequestCost(80 * time.Microsecond))
		t.Requests++
	default:
		t.Rejected++
		return fmt.Errorf("%w: %v in state %d", ErrProtocol, msg, s.State)
	}
	return nil
}

// Close ends a session.
func (t *Terminator) Close(s *Session) {
	s.State = StateClosed
	delete(t.sessions, s.ID)
}

// ServeRequest is one full apachebench iteration: connect, handshake,
// fetch the empty file, close. It returns the CPU time consumed.
func (t *Terminator) ServeRequest() (time.Duration, error) {
	start := t.Clock.Now()
	s := t.Accept()
	for _, m := range []MsgType{MsgClientHello, MsgClientKeyExchange, MsgChangeCipherSpec, MsgFinished, MsgAppData} {
		if err := t.Step(s, m); err != nil {
			t.Close(s)
			return 0, err
		}
	}
	t.Close(s)
	return time.Duration(t.Clock.Now().Sub(start)), nil
}

// HandshakeCPUCost returns the full per-request CPU cost on this stack
// without advancing any clock (for analytic capacity math).
func HandshakeCPUCost(stack netstack.Stack) time.Duration {
	base := stack.ConnSetup() +
		stack.RequestCost(120*time.Microsecond) +
		stack.RequestCost(costs.TLSHandshakeRSA1024) +
		stack.RequestCost(15*time.Microsecond) +
		stack.RequestCost(60*time.Microsecond) +
		stack.RequestCost(80*time.Microsecond)
	return base
}
