package tlsterm

import (
	"errors"
	"testing"
	"time"

	"lightvm/internal/netstack"
	"lightvm/internal/sim"
)

func TestFullHandshakeAndRequest(t *testing.T) {
	clock := sim.NewClock()
	term := New(clock, netstack.LinuxTCP)
	d, err := term.ServeRequest()
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatal("request consumed no time")
	}
	if term.Handshakes != 1 || term.Requests != 1 {
		t.Fatalf("handshakes=%d requests=%d", term.Handshakes, term.Requests)
	}
	if term.Sessions() != 0 {
		t.Fatal("session leaked after close")
	}
	// RSA dominates: the request must cost ≈10ms on the Linux stack.
	if d < 9*time.Millisecond || d > 15*time.Millisecond {
		t.Fatalf("request CPU = %v, want ≈10ms", d)
	}
}

func TestOutOfOrderRejected(t *testing.T) {
	clock := sim.NewClock()
	term := New(clock, netstack.LinuxTCP)
	s := term.Accept()
	if err := term.Step(s, MsgFinished); !errors.Is(err, ErrProtocol) {
		t.Fatalf("Finished before Hello: %v", err)
	}
	if err := term.Step(s, MsgAppData); !errors.Is(err, ErrProtocol) {
		t.Fatalf("AppData before handshake: %v", err)
	}
	if term.Rejected != 2 {
		t.Fatalf("rejected = %d", term.Rejected)
	}
	// The session can still proceed correctly afterwards.
	for _, m := range []MsgType{MsgClientHello, MsgClientKeyExchange, MsgChangeCipherSpec, MsgFinished} {
		if err := term.Step(s, m); err != nil {
			t.Fatal(err)
		}
	}
	if s.State != StateEstablished {
		t.Fatalf("state = %d", s.State)
	}
}

func TestDoubleHelloRejected(t *testing.T) {
	clock := sim.NewClock()
	term := New(clock, netstack.LinuxTCP)
	s := term.Accept()
	if err := term.Step(s, MsgClientHello); err != nil {
		t.Fatal(err)
	}
	if err := term.Step(s, MsgClientHello); !errors.Is(err, ErrProtocol) {
		t.Fatalf("renegotiation accepted: %v", err)
	}
}

func TestLwipFiveTimesSlower(t *testing.T) {
	// §7.3: "the unikernel only achieves a fifth of the throughput".
	c1, c2 := sim.NewClock(), sim.NewClock()
	linux := New(c1, netstack.LinuxTCP)
	lwip := New(c2, netstack.Lwip)
	dLinux, err := linux.ServeRequest()
	if err != nil {
		t.Fatal(err)
	}
	dLwip, err := lwip.ServeRequest()
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(dLwip) / float64(dLinux)
	if ratio < 4.5 || ratio > 5.5 {
		t.Fatalf("lwip/linux cost ratio = %.2f, want ≈5", ratio)
	}
}

func TestHandshakeCPUCostMatchesServeRequest(t *testing.T) {
	clock := sim.NewClock()
	term := New(clock, netstack.Lwip)
	measured, err := term.ServeRequest()
	if err != nil {
		t.Fatal(err)
	}
	analytic := HandshakeCPUCost(netstack.Lwip)
	diff := measured - analytic
	if diff < 0 {
		diff = -diff
	}
	if diff > time.Millisecond {
		t.Fatalf("analytic %v vs measured %v", analytic, measured)
	}
}

func TestThroughputMath(t *testing.T) {
	// 14 cores at ~10.3ms/request ≈ 1350-1400 req/s — the §7.3 plateau.
	perReq := HandshakeCPUCost(netstack.LinuxTCP).Seconds()
	rps := 14 / perReq
	if rps < 1200 || rps > 1500 {
		t.Fatalf("linux-stack capacity = %.0f req/s, want ≈1400", rps)
	}
	rpsLwip := 14 / HandshakeCPUCost(netstack.Lwip).Seconds()
	if rpsLwip > rps/4 {
		t.Fatalf("lwip capacity %.0f not ≈5× below linux %.0f", rpsLwip, rps)
	}
}

func TestStackStrings(t *testing.T) {
	if netstack.Lwip.String() != "lwip" || netstack.LinuxTCP.String() != "linux-tcp" {
		t.Fatal("stack names")
	}
	if MsgClientHello.String() != "ClientHello" {
		t.Fatal("msg names")
	}
}

func TestStackEfficiency(t *testing.T) {
	if netstack.LinuxTCP.Efficiency() != 1 {
		t.Fatal("linux efficiency")
	}
	if e := netstack.Lwip.Efficiency(); e <= 0.15 || e >= 0.25 {
		t.Fatalf("lwip efficiency = %v", e)
	}
	if netstack.Lwip.ConnSetup() <= netstack.LinuxTCP.ConnSetup() {
		t.Fatal("lwip conn setup should cost more")
	}
}
