// Package faults is the simulator's deterministic fault plane. The
// paper's control planes — XenStore transactions, split-driver
// handshakes, the chaos daemon pool, migration TCP streams — are real
// distributed machinery, and §7.1's mobile-edge scenario depends on
// hosts surviving churn; this package lets experiments inject the
// failures those mechanisms must recover from, reproducibly.
//
// Every decision is a pure function of (seed, fault kind, per-kind
// opportunity index): each injection site draws from its own stream,
// so traffic at one site never perturbs another's sequence, and two
// runs with the same seed inject byte-identical fault schedules. A nil
// *Injector never fires and costs one pointer comparison, so the fault
// plane is zero-cost when disabled.
package faults

import (
	"fmt"
	"sort"

	"lightvm/internal/sim"
)

// Kind enumerates the injectable fault classes and, implicitly, the
// injection sites that consult them.
//
// The enum is APPEND-ONLY. Each kind's decision stream is keyed by its
// numeric value, so inserting or reordering kinds would shift every
// existing per-kind schedule and silently change checked-in golden
// figures. New kinds go after the last one, get a name appended to
// kindNames, and — if firing them can abandon work or change workload
// outcomes — join optInKinds so fault-oblivious drivers with an empty
// Plan.Kinds never see them (faults_test.go pins both the numbering
// and the mask).
type Kind int

const (
	// KindTxnConflict aborts a XenStore transaction commit with
	// ErrAgain (site: xenstore.Tx.Commit). Recovery: bounded retry
	// with exponential backoff + jitter in Store.Txn.
	KindTxnConflict Kind = iota
	// KindStoreStall freezes the store daemon for one operation
	// (site: xenstore chargeOp). Recovery: none needed — the stall is
	// pure latency, absorbed by the caller.
	KindStoreStall
	// KindHandshakeStall makes a xenbus backend drop a split-driver
	// handshake event (site: xenbus.Backend watch). Recovery: the
	// toolstack's watch timeout re-attaches the device; exhaustion
	// surfaces xenbus.ErrDeviceTimeout.
	KindHandshakeStall
	// KindMigrationDrop severs the migration TCP stream mid-transfer
	// (site: migrate.Migrate step 3). Recovery: resumable transfer on
	// the noxs path; clean rollback (source resumes, destination shell
	// reaped) on both paths.
	KindMigrationDrop
	// KindDaemonCrash kills the chaos pool daemon, losing its
	// pre-created shells (site: toolstack.Pool). Recovery: drain
	// detection, cold-path inline prepare, bash-hotplug failover while
	// the daemon restarts.
	KindDaemonCrash
	// KindHostFailure fails a whole host (site: experiment driver over
	// internal/cluster). Recovery: cluster failover re-instantiates
	// the lost VMs on surviving hosts with §7.1's placement.
	KindHostFailure
	// KindToolstackCrash kills the toolstack at a labeled crash point
	// inside a lifecycle operation (sites: XL/Chaos Create/Destroy,
	// Pool.Prepare/finalize, clone). The operation aborts on the spot,
	// leaving whatever partial state — store nodes, device-page
	// entries, hv domains, pool shells — it had built. Recovery: the
	// intent journal + scrubber (internal/toolstack/scrub.go) roll the
	// half-done domain forward or back. Unlike every other kind this
	// one is opt-in: a Plan with empty Kinds does NOT include it,
	// because only crash-aware drivers (ext-churn, the fsck tests) can
	// survive an operation that deliberately leaks.
	KindToolstackCrash
	// KindHostSlow degrades a host instead of killing it: control-plane
	// work on the victim is dilated by a deterministic factor and its
	// heartbeats arrive late (site: cluster health monitor). Recovery:
	// none needed on the host — the monitor's job is to suspect it and
	// route placements elsewhere without a false dead declaration.
	KindHostSlow
	// KindPartition cuts one edge of the cluster's pairwise
	// reachability matrix for a while — host↔controller (heartbeats
	// lost, the host looks dead while its guests keep running) or
	// host↔host (migrations between them fail). Recovery: the lease
	// fence — a partitioned host declared dead must not double-run
	// domains that were failed over, and self-scrubs when the edge
	// heals.
	KindPartition
	// KindHostFlap silences a host completely, then lets it return as
	// if nothing happened (site: cluster health monitor). The nastiest
	// gray failure: detection must be fast enough to restore the
	// guests, yet the returner must be fenced and the circuit breaker
	// must quarantine repeat offenders instead of flapping placements
	// back and forth.
	KindHostFlap
	// KindMemPressure shrinks the host's memory headroom: dom0 (or a
	// noisy neighbor) balloons away a deterministic fraction of the
	// free pages for a while, so guest creations hit mm.ErrOutOfMemory
	// and dedup'd populations lose their COW headroom (sites:
	// toolstack Env.PopulateGuest via the pressure gate). Recovery:
	// the pressure window expires on its own; the serving plane maps
	// the allocation failure to a typed capacity rejection instead of
	// aborting. Opt-in like KindToolstackCrash: it changes workload
	// outcomes, so only pressure-aware drivers name it.
	KindMemPressure
	// KindStoreQuota exhausts a domain's XenStore node/watch quota at
	// the daemon: the next quota-charged operation is refused with the
	// typed *xenstore.ErrQuotaExceeded (sites: xl/chaos create store
	// sections, xenstore WriteAsGuest/WatchAsGuest). Recovery: the
	// create path rolls the half-built domain back; the serving plane
	// sheds the request with RejectQuota. Opt-in.
	KindStoreQuota
	// KindRetryStorm makes a seeded fraction of rejected or timed-out
	// requests re-arrive after a client backoff (site: traffic.Serve's
	// completion handling), amplifying offered load exactly when the
	// control plane is already behind — the metastable-failure
	// feedback loop. Recovery: the admission-control defenses (retry
	// budgets, adaptive limits). Opt-in.
	KindRetryStorm

	numKinds
)

var kindNames = [...]string{
	"txn-conflict", "store-stall", "handshake-stall",
	"migration-drop", "daemon-crash", "host-failure",
	"toolstack-crash", "host-slow", "partition", "host-flap",
	"mem-pressure", "store-quota", "retry-storm",
}

func (k Kind) String() string {
	if k >= 0 && int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// AllKinds lists every fault class (a Plan with no Kinds means all).
func AllKinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// Window bounds when a plan is active in virtual time. The zero value
// is always active; To == 0 means open-ended.
type Window struct {
	From sim.Time
	To   sim.Time
}

// Contains reports whether t falls inside the window.
func (w Window) Contains(t sim.Time) bool {
	if t < w.From {
		return false
	}
	return w.To == 0 || t <= w.To
}

// Plan describes an injection campaign: the per-opportunity fault
// probability, which fault classes participate (empty = all), and the
// virtual-time window in which injection is live. Sites, when
// non-empty, restricts FireSite to the named labels (Fire is
// unaffected) — tests use it to crash at one exact lifecycle step.
type Plan struct {
	Rate   float64
	Kinds  []Kind
	Window Window
	Sites  []string
}

// siteAllowed reports whether a labeled site participates.
func (p Plan) siteAllowed(site string) bool {
	if len(p.Sites) == 0 {
		return true
	}
	for _, s := range p.Sites {
		if s == site {
			return true
		}
	}
	return false
}

// optInKinds only participate when named explicitly in Plan.Kinds:
// KindToolstackCrash deliberately abandons an operation half-done, and
// the overload kinds (mem pressure, store quota, retry storms) change
// workload outcomes rather than just injecting latency. Keeping them
// out of the empty-Kinds mask means existing rate sweeps (ext-faults,
// ext-gray) keep their exact schedules and fault-oblivious drivers
// never see torn state or shed work.
const optInKinds = 1<<KindToolstackCrash |
	1<<KindMemPressure | 1<<KindStoreQuota | 1<<KindRetryStorm

// mask folds Kinds to a bitmask. Empty means "everything that is
// safe to survive in-line" — see optInKinds for the exclusions.
func (p Plan) mask() uint64 {
	if len(p.Kinds) == 0 {
		return (1<<numKinds - 1) &^ optInKinds
	}
	var m uint64
	for _, k := range p.Kinds {
		if k >= 0 && k < numKinds {
			m |= 1 << k
		}
	}
	return m
}

// Injector makes deterministic fault decisions against a Plan. The
// zero value and the nil pointer are both inert; construct live ones
// with New.
type Injector struct {
	clock *sim.Clock
	seed  uint64
	plan  Plan
	mask  uint64

	// opportunities / injected count per kind; Fire consumes one
	// opportunity per call whether or not it fires, keeping each
	// site's decision sequence independent of every other site.
	opportunities [numKinds]uint64
	injected      [numKinds]uint64
	aux           [numKinds]uint64 // side streams (jitter, fractions)

	// sites tracks per-label opportunity/injection counters for
	// FireSite callers. Lazily allocated; labeled sites share the
	// kind's single decision stream, so adding a label never perturbs
	// the schedule.
	sites map[string]*SiteStat
}

// New returns an injector for plan, keyed to clock and seed. Rates are
// clamped to [0,1].
func New(clock *sim.Clock, seed uint64, plan Plan) *Injector {
	if plan.Rate < 0 {
		plan.Rate = 0
	}
	if plan.Rate > 1 {
		plan.Rate = 1
	}
	return &Injector{clock: clock, seed: seed, plan: plan, mask: plan.mask()}
}

// mix is a splitmix64-style finalizer: uncorrelated 64-bit outputs for
// sequential inputs, which is all the decision streams need.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// unit maps a stream position to a uniform float64 in [0,1).
func (in *Injector) unit(k Kind, stream, n uint64) float64 {
	h := mix(in.seed ^ mix(uint64(k)+stream<<32) ^ mix(n))
	return float64(h>>11) / float64(1<<53)
}

// Fire reports whether the next opportunity at a site of kind k should
// fault, consuming one position of k's decision stream. Nil injectors
// never fire.
func (in *Injector) Fire(k Kind) bool {
	if in == nil || in.plan.Rate <= 0 || k < 0 || k >= numKinds {
		return false
	}
	if in.mask&(1<<k) == 0 {
		return false
	}
	n := in.opportunities[k]
	in.opportunities[k]++
	if !in.plan.Window.Contains(in.clock.Now()) {
		return false
	}
	if in.unit(k, 0, n) < in.plan.Rate {
		in.injected[k]++
		return true
	}
	return false
}

// Enabled reports whether kind k can ever fire under this injector's
// plan — the cheap gate callers use to skip bookkeeping (journal
// writes, crash-point checks) that only matters when the kind is
// live. It consumes no stream positions.
func (in *Injector) Enabled(k Kind) bool {
	if in == nil || in.plan.Rate <= 0 || k < 0 || k >= numKinds {
		return false
	}
	return in.mask&(1<<k) != 0
}

// SiteStat is one labeled injection site's counters.
type SiteStat struct {
	Site          string `json:"site"`
	Kind          string `json:"kind"`
	Opportunities uint64 `json:"opportunities"`
	Injected      uint64 `json:"injected"`
}

// FireSite is Fire with a site label: identical decision (same kind
// stream, same schedule), plus per-site opportunity/injection
// counters for reports. Sites that consult a disabled kind count
// nothing, so fault-free runs allocate nothing. A site excluded by
// Plan.Sites counts its opportunity but never fires (and consumes no
// stream position, so narrowing Sites is its own schedule).
func (in *Injector) FireSite(k Kind, site string) bool {
	if !in.Enabled(k) {
		return false
	}
	if in.sites == nil {
		in.sites = make(map[string]*SiteStat)
	}
	st := in.sites[site]
	if st == nil {
		st = &SiteStat{Site: site, Kind: k.String()}
		in.sites[site] = st
	}
	st.Opportunities++
	if !in.plan.siteAllowed(site) {
		return false
	}
	fired := in.Fire(k)
	if fired {
		st.Injected++
	}
	return fired
}

// SiteStats returns every labeled site's counters, sorted by site
// name for deterministic reports. Nil injectors return nil.
func (in *Injector) SiteStats() []SiteStat {
	if in == nil || len(in.sites) == 0 {
		return nil
	}
	out := make([]SiteStat, 0, len(in.sites))
	for _, st := range in.sites {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out
}

// Jitter returns a deterministic duration in [0, max) from k's side
// stream — backoff randomization that stays reproducible per seed.
// Nil injectors return 0, so undisturbed runs stay byte-identical.
func (in *Injector) Jitter(k Kind, max sim.Duration) sim.Duration {
	if in == nil || max <= 0 {
		return 0
	}
	n := in.aux[k]
	in.aux[k]++
	return sim.Duration(in.unit(k, 1, n) * float64(max))
}

// Fraction returns a deterministic value in [0,1) from k's side stream
// (e.g. how far into a transfer a stream drop lands). Nil injectors
// return 0.
func (in *Injector) Fraction(k Kind) float64 {
	if in == nil {
		return 0
	}
	n := in.aux[k]
	in.aux[k]++
	return in.unit(k, 1, n)
}

// Injected reports how many faults of kind k have fired.
func (in *Injector) Injected(k Kind) uint64 {
	if in == nil || k < 0 || k >= numKinds {
		return 0
	}
	return in.injected[k]
}

// TotalInjected sums fired faults across all kinds.
func (in *Injector) TotalInjected() uint64 {
	if in == nil {
		return 0
	}
	var t uint64
	for _, v := range in.injected {
		t += v
	}
	return t
}

// Opportunities reports how many decisions kind k has consumed
// (diagnostics: injected/opportunities ≈ Rate over long runs).
func (in *Injector) Opportunities(k Kind) uint64 {
	if in == nil || k < 0 || k >= numKinds {
		return 0
	}
	return in.opportunities[k]
}
