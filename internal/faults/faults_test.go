package faults

import (
	"testing"
	"time"

	"lightvm/internal/sim"
)

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	for _, k := range AllKinds() {
		if in.Fire(k) {
			t.Fatalf("nil injector fired %v", k)
		}
	}
	if in.Jitter(KindTxnConflict, time.Second) != 0 {
		t.Fatal("nil injector produced jitter")
	}
	if in.Fraction(KindMigrationDrop) != 0 {
		t.Fatal("nil injector produced a fraction")
	}
	if in.TotalInjected() != 0 || in.Injected(KindStoreStall) != 0 {
		t.Fatal("nil injector counted injections")
	}
}

func TestZeroRateNeverFires(t *testing.T) {
	in := New(sim.NewClock(), 7, Plan{Rate: 0})
	for i := 0; i < 10000; i++ {
		if in.Fire(KindTxnConflict) {
			t.Fatal("rate-0 plan fired")
		}
	}
}

func TestSameSeedSameSchedule(t *testing.T) {
	schedule := func(seed uint64) []bool {
		in := New(sim.NewClock(), seed, Plan{Rate: 0.25})
		out := make([]bool, 0, 4000)
		for i := 0; i < 1000; i++ {
			for _, k := range AllKinds() {
				out = append(out, in.Fire(k))
			}
		}
		return out
	}
	a, b := schedule(42), schedule(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at decision %d", i)
		}
	}
	c := schedule(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestStreamsAreIndependentAcrossSites(t *testing.T) {
	// Interleaving traffic at one site must not change another site's
	// decision sequence — that is what keeps multi-site experiments
	// reproducible when per-site op counts shift.
	draws := func(noise int) []bool {
		in := New(sim.NewClock(), 9, Plan{Rate: 0.5})
		out := make([]bool, 0, 200)
		for i := 0; i < 200; i++ {
			for j := 0; j < noise; j++ {
				in.Fire(KindStoreStall) // unrelated site traffic
			}
			out = append(out, in.Fire(KindMigrationDrop))
		}
		return out
	}
	a, b := draws(0), draws(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("cross-site traffic perturbed decision %d", i)
		}
	}
}

func TestRateConverges(t *testing.T) {
	in := New(sim.NewClock(), 11, Plan{Rate: 0.3})
	const n = 20000
	fired := 0
	for i := 0; i < n; i++ {
		if in.Fire(KindHandshakeStall) {
			fired++
		}
	}
	got := float64(fired) / n
	if got < 0.27 || got > 0.33 {
		t.Fatalf("empirical rate %.3f far from plan rate 0.3", got)
	}
	if in.Injected(KindHandshakeStall) != uint64(fired) {
		t.Fatal("injected counter disagrees with observed fires")
	}
	if in.Opportunities(KindHandshakeStall) != n {
		t.Fatal("opportunity counter wrong")
	}
}

func TestWindowGatesInjection(t *testing.T) {
	clock := sim.NewClock()
	in := New(clock, 3, Plan{
		Rate:   1.0,
		Window: Window{From: sim.Time(0).Add(time.Second), To: sim.Time(0).Add(2 * time.Second)},
	})
	if in.Fire(KindDaemonCrash) {
		t.Fatal("fired before window opened")
	}
	clock.Sleep(time.Second)
	if !in.Fire(KindDaemonCrash) {
		t.Fatal("rate-1 plan silent inside window")
	}
	clock.Sleep(5 * time.Second)
	if in.Fire(KindDaemonCrash) {
		t.Fatal("fired after window closed")
	}
}

func TestKindMaskRestrictsFiring(t *testing.T) {
	in := New(sim.NewClock(), 5, Plan{Rate: 1.0, Kinds: []Kind{KindMigrationDrop}})
	if in.Fire(KindTxnConflict) || in.Fire(KindHostFailure) {
		t.Fatal("masked-out kind fired")
	}
	if !in.Fire(KindMigrationDrop) {
		t.Fatal("selected kind silent at rate 1")
	}
}

func TestJitterBoundedAndDeterministic(t *testing.T) {
	a := New(sim.NewClock(), 17, Plan{Rate: 1})
	b := New(sim.NewClock(), 17, Plan{Rate: 1})
	for i := 0; i < 1000; i++ {
		ja := a.Jitter(KindTxnConflict, time.Millisecond)
		jb := b.Jitter(KindTxnConflict, time.Millisecond)
		if ja != jb {
			t.Fatalf("jitter diverged at draw %d", i)
		}
		if ja < 0 || ja >= time.Millisecond {
			t.Fatalf("jitter %v out of [0, 1ms)", ja)
		}
	}
}

func TestToolstackCrashOptInOnly(t *testing.T) {
	// Empty Kinds must NOT include the crash kind: existing rate
	// sweeps rely on Plan{Rate: r} leaving lifecycle ops intact.
	in := New(sim.NewClock(), 3, Plan{Rate: 1})
	for i := 0; i < 100; i++ {
		if in.Fire(KindToolstackCrash) {
			t.Fatal("toolstack-crash fired under an empty-Kinds plan")
		}
	}
	if in.Opportunities(KindToolstackCrash) != 0 {
		t.Fatal("masked crash kind consumed stream positions")
	}
	if in.Enabled(KindToolstackCrash) {
		t.Fatal("Enabled reported a masked kind as live")
	}
	// Named explicitly, it fires like any other kind.
	in = New(sim.NewClock(), 3, Plan{Rate: 1, Kinds: []Kind{KindToolstackCrash}})
	if !in.Enabled(KindToolstackCrash) {
		t.Fatal("Enabled false for an explicitly planned kind")
	}
	if !in.Fire(KindToolstackCrash) {
		t.Fatal("rate-1 explicit plan did not fire")
	}
}

func TestFireSiteCountersAndSchedule(t *testing.T) {
	plan := Plan{Rate: 0.5, Kinds: []Kind{KindToolstackCrash}}
	// FireSite must consume the same stream as Fire: interleaving
	// labels cannot change the schedule.
	ref := New(sim.NewClock(), 11, plan)
	var want []bool
	for i := 0; i < 400; i++ {
		want = append(want, ref.Fire(KindToolstackCrash))
	}
	in := New(sim.NewClock(), 11, plan)
	sites := []string{"xl.create.hv", "xl.destroy.devices", "pool.finalize"}
	var got []bool
	for i := 0; i < 400; i++ {
		got = append(got, in.FireSite(KindToolstackCrash, sites[i%len(sites)]))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("decision %d: FireSite=%v Fire=%v", i, got[i], want[i])
		}
	}
	stats := in.SiteStats()
	if len(stats) != len(sites) {
		t.Fatalf("SiteStats len = %d, want %d", len(stats), len(sites))
	}
	var opp, inj uint64
	for i, st := range stats {
		if i > 0 && stats[i-1].Site >= st.Site {
			t.Fatalf("SiteStats not sorted: %q before %q", stats[i-1].Site, st.Site)
		}
		if st.Kind != "toolstack-crash" {
			t.Fatalf("site %q kind = %q", st.Site, st.Kind)
		}
		opp += st.Opportunities
		inj += st.Injected
	}
	if opp != 400 {
		t.Fatalf("total site opportunities = %d, want 400", opp)
	}
	if inj != in.Injected(KindToolstackCrash) {
		t.Fatalf("site injections %d != kind injections %d", inj, in.Injected(KindToolstackCrash))
	}
	if inj == 0 || inj == 400 {
		t.Fatalf("degenerate injection count %d at rate 0.5", inj)
	}
}

func TestFireSiteDisabledAllocatesNothing(t *testing.T) {
	in := New(sim.NewClock(), 5, Plan{Rate: 1}) // crash kind masked
	for i := 0; i < 10; i++ {
		if in.FireSite(KindToolstackCrash, "xl.create.hv") {
			t.Fatal("masked FireSite fired")
		}
	}
	if in.SiteStats() != nil {
		t.Fatal("disabled sites recorded stats")
	}
	var nilIn *Injector
	if nilIn.FireSite(KindToolstackCrash, "x") || nilIn.SiteStats() != nil || nilIn.Enabled(KindToolstackCrash) {
		t.Fatal("nil injector not inert for site API")
	}
}

func TestWindowEdgeCases(t *testing.T) {
	var zero Window
	for _, at := range []sim.Time{0, 1, sim.Time(time.Hour)} {
		if !zero.Contains(at) {
			t.Fatalf("zero window should always be active (t=%v)", at)
		}
	}
	// Zero-width window: active at exactly one instant.
	at := sim.Time(500 * time.Millisecond)
	w := Window{From: at, To: at}
	if !w.Contains(at) {
		t.Fatal("zero-width window rejects its own instant")
	}
	if w.Contains(at-1) || w.Contains(at+1) {
		t.Fatal("zero-width window leaks outside its instant")
	}
	// To == 0 is open-ended, not empty.
	open := Window{From: at}
	if open.Contains(at-1) || !open.Contains(at) || !open.Contains(sim.Time(time.Hour)) {
		t.Fatal("open-ended window miscomputed")
	}
}

func TestWindowEntirelyPastNeverFires(t *testing.T) {
	clk := sim.NewClock()
	w := Window{From: sim.Time(time.Millisecond), To: sim.Time(2 * time.Millisecond)}
	in := New(clk, 9, Plan{Rate: 1, Window: w})
	clk.Sleep(time.Second) // now well past the window
	for i := 0; i < 1000; i++ {
		for _, k := range AllKinds() {
			if in.Fire(k) {
				t.Fatalf("rate-1 plan fired outside its window (%v)", k)
			}
		}
	}
	if in.TotalInjected() != 0 {
		t.Fatalf("injected count %d outside window", in.TotalInjected())
	}
	// Opportunities are still consumed: the stream position does not
	// depend on the window, so schedules stay comparable across windows.
	if in.Opportunities(KindHostFlap) != 1000 {
		t.Fatalf("opportunities = %d, want 1000", in.Opportunities(KindHostFlap))
	}
}

func TestZeroWidthWindowFiresOnlyAtInstant(t *testing.T) {
	clk := sim.NewClock()
	at := sim.Time(time.Second)
	in := New(clk, 11, Plan{Rate: 1, Window: Window{From: at, To: at}})
	if in.Fire(KindHostSlow) {
		t.Fatal("fired before the window instant")
	}
	clk.Sleep(time.Second)
	if !in.Fire(KindHostSlow) {
		t.Fatal("rate-1 plan must fire at the window instant")
	}
	clk.Sleep(1)
	if in.Fire(KindHostSlow) {
		t.Fatal("fired after the window instant")
	}
}

func TestGrayKindNamesAndDefaultMask(t *testing.T) {
	want := map[Kind]string{
		KindHostSlow:  "host-slow",
		KindPartition: "partition",
		KindHostFlap:  "host-flap",
	}
	for k, name := range want {
		if k.String() != name {
			t.Fatalf("%d.String() = %q, want %q", int(k), k.String(), name)
		}
	}
	// Gray kinds ride the default mask (safe: only the health monitor
	// consults them), while toolstack crashes still require naming.
	in := New(sim.NewClock(), 3, Plan{Rate: 0.5})
	for k := range want {
		if !in.Enabled(k) {
			t.Fatalf("%v not enabled by the empty-Kinds mask", k)
		}
	}
	if in.Enabled(KindToolstackCrash) {
		t.Fatal("toolstack crash enabled without being named")
	}
}

func TestSiteAllowedRestrictsGrayKinds(t *testing.T) {
	gray := []Kind{KindHostSlow, KindPartition, KindHostFlap}
	in := New(sim.NewClock(), 5, Plan{Rate: 1, Kinds: gray, Sites: []string{"cell-0"}})
	for _, k := range gray {
		if !in.FireSite(k, "cell-0") {
			t.Fatalf("rate-1 allowed site did not fire (%v)", k)
		}
		if in.FireSite(k, "cell-1") {
			t.Fatalf("site outside Plan.Sites fired (%v)", k)
		}
	}
	// Excluded sites count opportunities but consume no stream
	// position: the allowed site's schedule is unperturbed.
	ref := New(sim.NewClock(), 5, Plan{Rate: 1, Kinds: gray})
	ref.Fire(KindHostFlap) // consume position 0, matching the allowed fire above
	a, b := in.Fire(KindHostFlap), ref.Fire(KindHostFlap)
	if a != b {
		t.Fatal("excluded site perturbed the decision stream")
	}
	for _, st := range in.SiteStats() {
		switch st.Site {
		case "cell-0":
			if st.Injected == 0 {
				t.Fatal("allowed site recorded no injections")
			}
		case "cell-1":
			if st.Opportunities == 0 || st.Injected != 0 {
				t.Fatalf("excluded site stats: %+v", st)
			}
		}
	}
}

// TestKindEnumPinned pins every kind's numeric position and name: the
// enum is append-only because decision streams are keyed by value, so
// a reorder would silently shift every checked-in golden schedule.
func TestKindEnumPinned(t *testing.T) {
	want := []struct {
		k    Kind
		name string
	}{
		{KindTxnConflict, "txn-conflict"},
		{KindStoreStall, "store-stall"},
		{KindHandshakeStall, "handshake-stall"},
		{KindMigrationDrop, "migration-drop"},
		{KindDaemonCrash, "daemon-crash"},
		{KindHostFailure, "host-failure"},
		{KindToolstackCrash, "toolstack-crash"},
		{KindHostSlow, "host-slow"},
		{KindPartition, "partition"},
		{KindHostFlap, "host-flap"},
		{KindMemPressure, "mem-pressure"},
		{KindStoreQuota, "store-quota"},
		{KindRetryStorm, "retry-storm"},
	}
	if int(numKinds) != len(want) {
		t.Fatalf("numKinds = %d, want %d — append new kinds to this table", int(numKinds), len(want))
	}
	for i, w := range want {
		if int(w.k) != i {
			t.Fatalf("%s has value %d, want %d — the enum is append-only", w.name, int(w.k), i)
		}
		if w.k.String() != w.name {
			t.Fatalf("%d.String() = %q, want %q", i, w.k.String(), w.name)
		}
	}
}

// TestOverloadKindsOptInOnly: the resource-exhaustion kinds change
// workload outcomes (failed creations, shed requests, amplified load),
// so like KindToolstackCrash they must not ride the empty-Kinds mask —
// that is what keeps every pre-existing figure's schedule and golden
// byte-identical.
func TestOverloadKindsOptInOnly(t *testing.T) {
	newKinds := []Kind{KindMemPressure, KindStoreQuota, KindRetryStorm}
	in := New(sim.NewClock(), 3, Plan{Rate: 1})
	for _, k := range newKinds {
		if in.Enabled(k) {
			t.Fatalf("%v enabled by an empty-Kinds plan", k)
		}
		for i := 0; i < 50; i++ {
			if in.Fire(k) {
				t.Fatalf("%v fired under an empty-Kinds plan", k)
			}
		}
		if in.Opportunities(k) != 0 {
			t.Fatalf("masked %v consumed stream positions", k)
		}
	}
	// Named explicitly, each fires like any other kind, and its stream
	// is independent of the legacy kinds'.
	in = New(sim.NewClock(), 3, Plan{Rate: 1, Kinds: newKinds})
	for _, k := range newKinds {
		if !in.Enabled(k) || !in.Fire(k) {
			t.Fatalf("rate-1 explicit plan did not fire %v", k)
		}
	}
}

// TestAppendedKindsDoNotShiftLegacyStreams: drawing from the new
// kinds' streams must leave every legacy kind's decision sequence
// byte-identical — each kind owns its own splitmix stream, so the
// append is invisible to existing consumers.
func TestAppendedKindsDoNotShiftLegacyStreams(t *testing.T) {
	legacy := []Kind{KindTxnConflict, KindStoreStall, KindDaemonCrash, KindHostFlap}
	ref := New(sim.NewClock(), 17, Plan{Rate: 0.5})
	var want [][]bool
	for _, k := range legacy {
		var seq []bool
		for i := 0; i < 200; i++ {
			seq = append(seq, ref.Fire(k))
		}
		want = append(want, seq)
	}
	// Interleave heavy traffic on the new kinds with the legacy draws.
	all := append(append([]Kind{}, legacy...), KindMemPressure, KindStoreQuota, KindRetryStorm)
	in := New(sim.NewClock(), 17, Plan{Rate: 0.5, Kinds: all})
	for i := 0; i < 200; i++ {
		in.Fire(KindRetryStorm)
		in.Jitter(KindRetryStorm, sim.Duration(1e9))
		for j, k := range legacy {
			if got := in.Fire(k); got != want[j][i] {
				t.Fatalf("%v decision %d shifted after appending new kinds", k, i)
			}
		}
		in.Fire(KindMemPressure)
		in.Fraction(KindStoreQuota)
	}
}
