package sim

import (
	"testing"
	"time"
)

// Benchmarks and allocation budgets for the sharded engine's two hot
// paths: local event execution inside a window (ShardStep) and the
// cross-shard mailbox handoff (CrossShardSend). ext-cluster pushes
// tens of millions of local events and hundreds of thousands of
// messages through these paths per run, so per-op garbage multiplies
// straight into GC pauses exactly like the xenstore op paths do for
// guest creation. The Makefile's bench-compare gate watches the
// figure-level Allocs these feed into; the gates below pin the per-op
// budgets at their source.

// stepEngine builds an engine with nShards chains of chained local
// events, each chain total/nShards events long.
func stepEngine(nShards, workers, total int) *Engine {
	e := NewEngine(nShards, workers, time.Millisecond)
	per := total / nShards
	for i := 0; i < nShards; i++ {
		s := e.Shard(i)
		n := 0
		var tick func()
		tick = func() {
			n++
			if n < per {
				s.Clock().After(50*time.Microsecond, tick)
			}
		}
		s.Clock().After(time.Duration(i+1)*time.Microsecond, tick)
	}
	return e
}

// BenchmarkShardStep measures the local-event hot path: one queued
// event popped, fired and recycled inside RunBefore, across shards
// progressing in conservative windows.
func BenchmarkShardStep(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(map[int]string{1: "workers=1", 4: "workers=4"}[workers], func(b *testing.B) {
			e := stepEngine(8, workers, b.N+8)
			b.ReportAllocs()
			b.ResetTimer()
			e.Run()
		})
	}
}

// pingPongEngine builds a 2-shard engine exchanging total messages.
func pingPongEngine(workers, total int) *Engine {
	e := NewEngine(2, workers, time.Millisecond)
	a, c := e.Shard(0), e.Shard(1)
	n := 0
	var ping, pong func()
	ping = func() {
		n++
		if n < total {
			a.Send(1, 0, pong)
		}
	}
	pong = func() {
		n++
		if n < total {
			c.Send(0, 0, ping)
		}
	}
	a.Clock().After(time.Microsecond, ping)
	return e
}

// BenchmarkCrossShardSend measures the mailbox handoff: outbox append,
// canonical sort, delivery into the destination clock — one message
// (and its execution) per op.
func BenchmarkCrossShardSend(b *testing.B) {
	e := pingPongEngine(1, b.N+1)
	b.ReportAllocs()
	b.ResetTimer()
	e.Run()
}

// TestShardStepAllocBudget pins the local hot path at 0–1 allocs per
// event (in practice ~0: pooled clock events, reused window scratch).
// Only the chain closures themselves allocate, a constant per run.
func TestShardStepAllocBudget(t *testing.T) {
	const total = 4096
	// Warm run: grows the event pools and the engine scratch slices.
	stepEngine(4, 1, total).Run()
	allocs := testing.AllocsPerRun(1, func() {
		e := stepEngine(4, 1, total)
		st := e.Run()
		if st.Events != total {
			t.Fatalf("ran %d events, want %d", st.Events, total)
		}
	})
	// Engine + shard + chain setup allocates a bounded constant; the
	// per-event budget is what must not scale.
	perEvent := allocs / total
	if perEvent > 1 {
		t.Fatalf("local event hot path allocates %.2f objects/op (%.0f total), budget 0-1",
			perEvent, allocs)
	}
	if allocs > 200 {
		t.Fatalf("engine run allocated %.0f objects for %d events — the hot path is not amortized",
			allocs, total)
	}
}

// TestCrossShardSendAllocBudget pins the mailbox handoff: a message's
// outbox entry, flush-sort slot and destination clock event are all
// reused, so steady-state sends must stay within 1 alloc/op.
func TestCrossShardSendAllocBudget(t *testing.T) {
	const total = 4096
	pingPongEngine(1, total).Run()
	allocs := testing.AllocsPerRun(1, func() {
		e := pingPongEngine(1, total)
		st := e.Run()
		if st.Messages != total-1 {
			t.Fatalf("delivered %d messages, want %d", st.Messages, total-1)
		}
	})
	perMsg := allocs / total
	if perMsg > 1 {
		t.Fatalf("cross-shard send allocates %.2f objects/op (%.0f total), budget 0-1",
			perMsg, allocs)
	}
	if allocs > 200 {
		t.Fatalf("ping-pong run allocated %.0f objects for %d messages — the handoff is not amortized",
			allocs, total)
	}
}
