// Parallel discrete-event core: logical processes and conservative
// synchronization.
//
// An Engine partitions a simulation into Shards (logical processes in
// PDES terms). Each shard owns a private Clock — its event queue and
// local virtual time — and shards interact only through timestamped
// messages (Shard.Send) that arrive at least one lookahead interval in
// the receiver's future. That minimum delay is what makes conservative
// parallel execution possible: if every in-flight message is at least
// `lookahead` ahead of its sender's clock, every shard can safely
// execute every local event below
//
//	LBTS = min over all shards ( next deadline ) + lookahead
//
// because any message produced inside the window is stamped at or
// beyond that bound, as is every transitive consequence of delivering
// it (the lower-bound-timestamp reasoning of Chandy/Misra/Bryant,
// computed centrally per window rather than with null messages).
//
// The engine runs in synchronized windows: compute every shard's
// horizon, execute all shards with due events in parallel on a worker
// pool, barrier, then deliver the accumulated cross-shard messages in
// a canonical order (timestamp, sender, send-sequence). Workers only
// parallelize *within* a window and shards share no state, so the
// event schedule — and therefore every simulation result — is
// byte-identical for any worker count, including 1. Determinism is the
// contract the experiment harness builds on: the same seed must
// produce the same tables at every shard count.
//
// Handlers are ordinary synchronous simulation code and may advance
// their local clock arbitrarily far (a migration restore sleeps tens
// of virtual milliseconds). A message that arrives below the
// receiver's clock — the receiver slept ahead inside a window — is
// delivered at the receiver's current time, exactly as Clock.Schedule
// has always treated past deadlines. This models a node that was busy
// in a blocking operation when the request came in: the work queues
// and runs when the node yields. Handlers that only schedule (never
// sleep across a lookahead) get strict global timestamp order, which
// the model-checking harness in engine_model_test.go verifies against
// a single-queue reference executor.
package sim

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// maxTime is the +infinity sentinel for horizon computation.
const maxTime = Time(math.MaxInt64)

// xevent is one cross-shard message: a callback bound for dst's
// timeline. src and seq break timestamp ties canonically, so delivery
// order never depends on worker interleaving.
type xevent struct {
	at       Time
	src, dst int32
	seq      uint64
	fn       func()
}

// Shard is one logical process: a private clock plus an outbox of
// cross-shard messages. All access to a shard's clock and state must
// happen from its own event handlers (or before Run starts); the
// engine guarantees a shard is executed by at most one worker at a
// time, with a barrier between windows.
type Shard struct {
	id    int
	clock *Clock
	eng   *Engine

	outbox  []xevent
	sendSeq uint64

	// windowEnd is this window's conservative horizon, set by the
	// coordinator before workers start and read-only during execution.
	windowEnd Time
	// fired accumulates events executed across windows; prevFired is
	// its value when the current window started (workers write both,
	// the coordinator reads them after the barrier for stats).
	fired     uint64
	prevFired uint64
}

// ID returns the shard's index in the engine.
func (s *Shard) ID() int { return s.id }

// Clock returns the shard's private timeline.
func (s *Shard) Clock() *Clock { return s.clock }

// Send schedules fn on shard dst at now+delay. Delays below the
// engine's lookahead are raised to it — the minimum message latency is
// the engine's causality floor, not a tunable per call. Sending to the
// shard itself is allowed and equivalent to a local After with the
// same floor. The message is buffered and delivered at the end of the
// current window.
func (s *Shard) Send(dst int, delay Duration, fn func()) {
	if delay < s.eng.lookahead {
		delay = s.eng.lookahead
	}
	s.sendSeq++
	s.outbox = append(s.outbox, xevent{
		at:  s.clock.Now().Add(delay),
		src: int32(s.id), dst: int32(dst),
		seq: s.sendSeq,
		fn:  fn,
	})
}

// EngineStats summarizes one Run: all three counters are functions of
// the event schedule alone, so they are deterministic and safe to
// print in golden tables.
type EngineStats struct {
	// Windows is the number of synchronization rounds executed.
	Windows uint64
	// Events is the total number of local events fired across shards.
	Events uint64
	// Messages is the number of cross-shard messages delivered.
	Messages uint64
}

// Engine coordinates a set of shards through conservative windows.
type Engine struct {
	shards    []*Shard
	lookahead Duration
	workers   int
	stats     EngineStats

	// Per-window scratch, reused so the steady-state loop does not
	// allocate. flushTmp is sortFlush's merge buffer.
	ready    []*Shard
	flush    []xevent
	flushTmp []xevent

	// Worker-pool plumbing (workers > 1 only): wake releases one token
	// per worker per window, done collects them. cursor indexes into
	// ready.
	wake   chan struct{}
	done   chan struct{}
	cursor atomic.Int64
	wg     sync.WaitGroup
}

// NewEngine builds an engine with n shards (all clocks at t=0) and the
// given lookahead — the minimum cross-shard message latency, which
// must be positive. workers bounds the goroutines that execute shards
// within a window: 1 means fully inline single-threaded execution;
// results are identical either way.
func NewEngine(n, workers int, lookahead Duration) *Engine {
	if n <= 0 {
		panic("sim: engine needs at least one shard")
	}
	if lookahead <= 0 {
		panic("sim: engine lookahead must be positive")
	}
	if workers < 1 {
		workers = 1
	}
	e := &Engine{lookahead: lookahead, workers: workers}
	e.shards = make([]*Shard, n)
	for i := range e.shards {
		e.shards[i] = &Shard{id: i, clock: NewClock(), eng: e}
	}
	return e
}

// Shards reports the shard count.
func (e *Engine) Shards() int { return len(e.shards) }

// Workers reports the worker-pool size.
func (e *Engine) Workers() int { return e.workers }

// Lookahead reports the engine's minimum cross-shard latency.
func (e *Engine) Lookahead() Duration { return e.lookahead }

// Shard returns shard i.
func (e *Engine) Shard(i int) *Shard { return e.shards[i] }

// MaxTime returns the most advanced shard clock — the simulation's
// makespan once Run has returned.
func (e *Engine) MaxTime() Time {
	var max Time
	for _, s := range e.shards {
		if t := s.clock.Now(); t > max {
			max = t
		}
	}
	return max
}

// Run executes windows until every shard's queue is empty and no
// message is in flight, then returns the run's statistics. It may be
// called again after scheduling more events (stats accumulate).
func (e *Engine) Run() EngineStats {
	if e.workers > 1 && e.wake == nil {
		e.startWorkers()
		defer e.stopWorkers()
	}
	for {
		if !e.window() {
			break
		}
	}
	return e.stats
}

// window runs one synchronization round; false means quiescent.
//
// The horizon is the same for every shard: the globally earliest
// pending event plus one lookahead. That bound is closed under chained
// interaction — any message generated inside the window is stamped at
// least lookahead after its sender's current event, hence at or beyond
// the horizon, hence delivered (at the window barrier) into the NEXT
// window, as are all its transitive consequences. A per-shard bound
// built from other shards' current deadlines (min-over-others) is NOT
// sound here: it ignores that a shard's next deadline can drop when
// this window's messages are delivered, and the follow-on replies can
// then land inside the wider horizon the optimization granted.
func (e *Engine) window() bool {
	min1 := maxTime
	for _, s := range e.shards {
		if d, ok := s.clock.NextDeadline(); ok && d < min1 {
			min1 = d
		}
	}
	if min1 == maxTime {
		// No shard has events. Outboxes are normally empty here (Send
		// runs inside handlers, which imply a due event), but setup
		// code calling Send outside a window gets its messages flushed
		// rather than lost.
		for _, s := range e.shards {
			if len(s.outbox) > 0 {
				e.ready = append(e.ready[:0], e.shards...)
				e.deliver()
				return true
			}
		}
		return false
	}
	horizon := min1 + Time(e.lookahead)
	e.ready = e.ready[:0]
	for _, s := range e.shards {
		d, ok := s.clock.NextDeadline()
		if ok && d < horizon {
			s.windowEnd = horizon
			e.ready = append(e.ready, s)
		} else if len(s.outbox) > 0 {
			// Nothing safe (or nothing at all) to execute, but a
			// setup-time Send is parked in the outbox: join the window
			// with a zero horizon so deliver flushes it on time.
			s.windowEnd = 0
			e.ready = append(e.ready, s)
		}
	}
	e.execute()
	e.deliver()
	e.stats.Windows++
	return true
}

// execute runs every ready shard up to its horizon. Shards are
// disjoint state, so any assignment of shards to workers yields the
// same simulation; the atomic cursor only affects wall-clock.
func (e *Engine) execute() {
	if e.workers <= 1 || len(e.ready) < 2 {
		for _, s := range e.ready {
			n := s.clock.RunBefore(s.windowEnd)
			s.fired += uint64(n)
			e.stats.Events += uint64(n)
		}
		return
	}
	e.cursor.Store(0)
	for i := 0; i < e.workers; i++ {
		e.wake <- struct{}{}
	}
	for i := 0; i < e.workers; i++ {
		<-e.done
	}
	for _, s := range e.ready {
		e.stats.Events += s.fired - s.prevFired
	}
}

// deliver flushes every ready shard's outbox into the destination
// clocks in canonical (timestamp, sender, sequence) order. Ready
// shards are visited in id order and each outbox is already in send
// order, so the sort input — and with a stable tie-break, the output —
// is independent of how workers interleaved.
func (e *Engine) deliver() {
	e.flush = e.flush[:0]
	for _, s := range e.ready {
		e.flush = append(e.flush, s.outbox...)
		for i := range s.outbox {
			s.outbox[i].fn = nil // don't retain closures past delivery
		}
		s.outbox = s.outbox[:0]
	}
	if len(e.flush) == 0 {
		return
	}
	e.sortFlush()
	for i := range e.flush {
		m := &e.flush[i]
		e.shards[m.dst].clock.Schedule(m.at, m.fn)
		m.fn = nil
	}
	e.stats.Messages += uint64(len(e.flush))
}

// xeventLess is the canonical delivery order: timestamp, then sender,
// then send sequence — a total order, since (src, seq) is unique.
func xeventLess(a, b *xevent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.seq < b.seq
}

// sortFlush orders e.flush canonically with a bottom-up merge sort
// over a persistent scratch buffer. sort.Slice would do the same job
// with an allocation per call (the closure and reflect-based swapper
// escape), and deliver runs once per window — at ext-cluster rates
// that garbage is the difference between a quiet and a churning GC.
func (e *Engine) sortFlush() {
	n := len(e.flush)
	if n < 2 {
		return
	}
	if cap(e.flushTmp) < n {
		e.flushTmp = make([]xevent, n)
	}
	a, b := e.flush, e.flushTmp[:n]
	for width := 1; width < n; width *= 2 {
		for lo := 0; lo < n; lo += 2 * width {
			mid, hi := lo+width, lo+2*width
			if mid > n {
				mid = n
			}
			if hi > n {
				hi = n
			}
			i, j := lo, mid
			for k := lo; k < hi; k++ {
				if j >= hi || (i < mid && !xeventLess(&a[j], &a[i])) {
					b[k] = a[i]
					i++
				} else {
					b[k] = a[j]
					j++
				}
			}
		}
		a, b = b, a
	}
	if &a[0] != &e.flush[0] {
		copy(e.flush, a)
		// The merge's last pass landed in the scratch buffer; after the
		// copy, drop the closures it still references.
		for i := range a {
			a[i].fn = nil
		}
	}
}

// startWorkers brings up the window worker pool.
func (e *Engine) startWorkers() {
	e.wake = make(chan struct{}, e.workers)
	e.done = make(chan struct{}, e.workers)
	e.wg.Add(e.workers)
	for i := 0; i < e.workers; i++ {
		go e.worker()
	}
}

// stopWorkers tears the pool down (close wakes every worker out of
// its receive).
func (e *Engine) stopWorkers() {
	close(e.wake)
	e.wg.Wait()
	e.wake, e.done = nil, nil
}

// worker claims ready shards off the shared cursor until the window is
// drained, then reports at the barrier. Claiming is chunked to keep
// cursor contention off the fast path when thousands of shards are
// ready.
func (e *Engine) worker() {
	defer e.wg.Done()
	for range e.wake {
		n := int64(len(e.ready))
		chunk := int64(1)
		if per := n / int64(e.workers*8); per > chunk {
			chunk = per
		}
		for {
			hi := e.cursor.Add(chunk)
			lo := hi - chunk
			if lo >= n {
				break
			}
			if hi > n {
				hi = n
			}
			for _, s := range e.ready[lo:hi] {
				s.prevFired = s.fired
				s.fired += uint64(s.clock.RunBefore(s.windowEnd))
			}
		}
		e.done <- struct{}{}
	}
}

// String renders the stats for log lines and test failures.
func (s EngineStats) String() string {
	return fmt.Sprintf("%d windows, %d events, %d messages", s.Windows, s.Events, s.Messages)
}
