// Package sim provides the virtual-time substrate for the LightVM
// simulation: a deterministic clock, a discrete-event queue, and a
// seeded random source.
//
// All components of the reproduction run against a *sim.Clock instead
// of wall time. Control-plane code executes for real (it manipulates
// real data structures) and charges its simulated cost by advancing
// the clock; concurrent activity (daemons, watch handlers, packet
// arrivals) is modelled as scheduled events on the same queue, so runs
// are bit-for-bit reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of
// the simulation. It intentionally mirrors time.Duration's resolution
// so cost constants can be written with time.Millisecond etc.
type Time int64

// Duration re-exports time.Duration; cost constants use it directly.
type Duration = time.Duration

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

// Milliseconds returns t expressed in milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(time.Millisecond) }

// String formats the time as a duration since simulation start.
func (t Time) String() string { return Duration(t).String() }

// event is a queued callback. Fired events are returned to the clock's
// free list and reused, so steady-state scheduling does not grow the
// heap (fig10/fig16 push hundreds of thousands of events through one
// clock).
type event struct {
	at   Time
	seq  uint64 // tie-breaker for same-time events: FIFO order
	fn   func()
	next *event // free-list link (valid only while pooled)
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Clock is the simulation's notion of time plus its event queue.
// The zero value is not usable; call NewClock.
type Clock struct {
	now   Time
	queue eventHeap
	seq   uint64
	free  *event // recycled events (see event)
}

// newEvent takes an event from the free list, or allocates one.
func (c *Clock) newEvent(at Time, fn func()) *event {
	e := c.free
	if e == nil {
		e = &event{}
	} else {
		c.free = e.next
	}
	c.seq++
	e.at, e.seq, e.fn, e.next = at, c.seq, fn, nil
	return e
}

// release returns a fired event to the free list. The callback is
// cleared so pooled events do not retain closures.
func (c *Clock) release(e *event) {
	e.fn = nil
	e.next = c.free
	c.free = e
}

// NewClock returns a clock positioned at t=0 with an empty queue.
func NewClock() *Clock {
	return &Clock{}
}

// Now returns the current virtual time.
func (c *Clock) Now() Time { return c.now }

// Sleep advances virtual time by d, firing any events that become due.
// It is the primary way synchronous code charges simulated cost.
// Negative durations are ignored.
func (c *Clock) Sleep(d Duration) {
	if d <= 0 {
		return
	}
	c.AdvanceTo(c.now.Add(d))
}

// AdvanceTo moves the clock forward to t (no-op if t is in the past),
// running every scheduled event whose deadline is ≤ t in timestamp
// order. Events may schedule further events; those are honoured if
// they also fall before t.
func (c *Clock) AdvanceTo(t Time) {
	if t < c.now {
		return
	}
	for len(c.queue) > 0 && c.queue[0].at <= t {
		e := heap.Pop(&c.queue).(*event)
		if e.at > c.now {
			c.now = e.at
		}
		e.fn()
		c.release(e)
	}
	if t > c.now {
		c.now = t
	}
}

// Schedule queues fn to run at absolute time at. Scheduling in the
// past runs the event at the current time on the next advance.
func (c *Clock) Schedule(at Time, fn func()) {
	if at < c.now {
		at = c.now
	}
	heap.Push(&c.queue, c.newEvent(at, fn))
}

// After queues fn to run d from now.
func (c *Clock) After(d Duration, fn func()) {
	c.Schedule(c.now.Add(d), fn)
}

// Drain runs queued events until the queue is empty or limit events
// have fired, advancing time as it goes. It returns the number of
// events run. A limit of 0 means no limit.
func (c *Clock) Drain(limit int) int {
	n := 0
	for len(c.queue) > 0 {
		if limit > 0 && n >= limit {
			break
		}
		e := heap.Pop(&c.queue).(*event)
		if e.at > c.now {
			c.now = e.at
		}
		e.fn()
		c.release(e)
		n++
	}
	return n
}

// RunBefore fires every queued event with deadline strictly before w,
// in timestamp order, advancing the clock to each event's time. The
// clock is NOT advanced to w afterwards: it rests at the last fired
// event (or wherever a handler's Sleep left it), so the next window
// can start from the true local frontier. Events a handler schedules
// inside the window are honoured if they also fall before w. It
// returns the number of events fired.
//
// This is the sharded engine's per-window executor (see engine.go): w
// is the shard's conservative horizon, below which no cross-shard
// message can still arrive.
func (c *Clock) RunBefore(w Time) int {
	n := 0
	for len(c.queue) > 0 && c.queue[0].at < w {
		e := heap.Pop(&c.queue).(*event)
		if e.at > c.now {
			c.now = e.at
		}
		e.fn()
		c.release(e)
		n++
	}
	return n
}

// Pending reports the number of queued events.
func (c *Clock) Pending() int { return len(c.queue) }

// NextDeadline returns the time of the earliest queued event and
// whether one exists.
func (c *Clock) NextDeadline() (Time, bool) {
	if len(c.queue) == 0 {
		return 0, false
	}
	return c.queue[0].at, true
}

// RNG is a small deterministic PRNG (xorshift64*), used wherever the
// simulation needs jitter (e.g. fork/exec tail latency). We avoid
// math/rand so that the dependency surface stays obvious and seeding
// is explicit at every construction site.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed (0 is remapped).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next raw 64-bit value.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Float64 returns a uniform value in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Intn returns a uniform value in [0,n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("sim: Intn with non-positive n=%d", n))
	}
	return int(r.Uint64() % uint64(n))
}

// Exp returns an exponentially distributed duration with the given
// mean. Used for open-loop arrival processes.
func (r *RNG) Exp(mean Duration) Duration {
	u := r.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return Duration(-math.Log(u) * float64(mean))
}

// Pareto returns a bounded Pareto-ish heavy-tail sample: min scaled by
// (1/u)^(1/alpha), capped at max. Used for latency tails.
func (r *RNG) Pareto(min, max Duration, alpha float64) Duration {
	u := r.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	v := Duration(float64(min) * math.Pow(1/u, 1/alpha))
	if v > max {
		v = max
	}
	return v
}
