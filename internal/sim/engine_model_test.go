package sim

import (
	"reflect"
	"sort"
	"testing"
	"time"
)

// Model check of the conservative engine against a single-queue
// reference, in the style of the xenstore model harness: generate a
// few thousand random event topologies, execute each on (a) a plain
// global event queue that always runs the globally earliest event, and
// (b) the parallel engine at two different worker counts, then demand
// that all three executions produce the same schedule.
//
// Handlers here only schedule — they never Sleep — so the engine owes
// them strict global timestamp order (see the package comment): the
// comparison is exact, not modulo clamping. Event behaviour is derived
// purely from a label hash, so the engine and the reference execute
// the same logical program without sharing any state.

// mtrace is one executed event: when, where, and which logical event.
type mtrace struct {
	at    Time
	shard int
	label uint64
}

// mixSplit derives a 64-bit stream from a label (splitmix64): the
// event's "program" — how many children it spawns, where they go and
// with what delay — is a pure function of this.
func mixSplit(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// topology is one generated scenario.
type topology struct {
	shards    int
	lookahead Duration
	roots     []mtrace // initial events (at = schedule time)
}

func genTopology(seed uint64) topology {
	rng := NewRNG(seed | 1)
	tp := topology{
		shards:    2 + rng.Intn(7),
		lookahead: time.Duration(1+rng.Intn(3)) * time.Millisecond,
	}
	nRoots := 1 + rng.Intn(12)
	for i := 0; i < nRoots; i++ {
		tp.roots = append(tp.roots, mtrace{
			at:    Time(0).Add(time.Duration(rng.Intn(5000)) * time.Microsecond),
			shard: rng.Intn(tp.shards),
			label: seed<<16 | uint64(i),
		})
	}
	return tp
}

// eventProgram decodes what the event `label` at depth d does: a list
// of (child label, dst shard or -1 for local, delay).
type childSpec struct {
	label uint64
	dst   int // -1 = local
	delay Duration
}

func program(label uint64, depth, shards int) []childSpec {
	if depth >= 6 {
		return nil
	}
	h := mixSplit(label)
	n := int(h % 3) // 0-2 children; branching decays via depth cap
	var out []childSpec
	for k := 0; k < n; k++ {
		hk := mixSplit(label ^ uint64(k+1)*0x517cc1b727220a95)
		cs := childSpec{
			label: hk,
			dst:   -1,
			delay: time.Duration(hk%4000) * time.Microsecond,
		}
		if hk&0x10000 != 0 {
			cs.dst = int(hk>>20) % shards
		}
		out = append(out, cs)
	}
	return out
}

// runEngine executes the topology on the parallel engine and returns
// the trace sorted canonically plus each shard's own execution order.
func runEngine(tp topology, workers int) (all []mtrace, perShard [][]mtrace) {
	e := NewEngine(tp.shards, workers, tp.lookahead)
	perShard = make([][]mtrace, tp.shards)
	var exec func(shard int, label uint64, depth int) func()
	exec = func(shard int, label uint64, depth int) func() {
		return func() {
			s := e.Shard(shard)
			now := s.Clock().Now()
			perShard[shard] = append(perShard[shard], mtrace{now, shard, label})
			for _, cs := range program(label, depth, tp.shards) {
				if cs.dst < 0 || cs.dst == shard {
					s.Clock().After(cs.delay, exec(shard, cs.label, depth+1))
				} else {
					s.Send(cs.dst, cs.delay, exec(cs.dst, cs.label, depth+1))
				}
			}
		}
	}
	for _, r := range tp.roots {
		e.Shard(r.shard).Clock().Schedule(r.at, exec(r.shard, r.label, 0))
	}
	e.Run()
	for _, tr := range perShard {
		all = append(all, tr...)
	}
	sortCanon(all)
	return all, perShard
}

// runReference executes the topology on one global queue: always run
// the earliest pending event anywhere, applying the same lookahead
// floor to cross-shard sends. This is the sequential semantics the
// engine must reproduce.
func runReference(tp topology) []mtrace {
	type item struct {
		at    Time
		seq   int
		shard int
		label uint64
		depth int
	}
	var q []item
	seq := 0
	push := func(at Time, shard int, label uint64, depth int) {
		q = append(q, item{at, seq, shard, label, depth})
		seq++
	}
	for _, r := range tp.roots {
		push(r.at, r.shard, r.label, 0)
	}
	var out []mtrace
	for len(q) > 0 {
		best := 0
		for i := 1; i < len(q); i++ {
			if q[i].at < q[best].at || (q[i].at == q[best].at && q[i].seq < q[best].seq) {
				best = i
			}
		}
		it := q[best]
		q[best] = q[len(q)-1]
		q = q[:len(q)-1]
		out = append(out, mtrace{it.at, it.shard, it.label})
		for _, cs := range program(it.label, it.depth, tp.shards) {
			d := cs.delay
			dst := it.shard
			if cs.dst >= 0 && cs.dst != it.shard {
				dst = cs.dst
				if d < Duration(tp.lookahead) {
					d = Duration(tp.lookahead) // the Send floor
				}
			}
			push(it.at.Add(d), dst, cs.label, it.depth+1)
		}
	}
	sortCanon(out)
	return out
}

// sortCanon orders a trace by (time, shard, label): same-time events
// on different shards have no defined relative order, so comparisons
// happen in this canonical form.
func sortCanon(tr []mtrace) {
	sort.Slice(tr, func(i, j int) bool {
		if tr[i].at != tr[j].at {
			return tr[i].at < tr[j].at
		}
		if tr[i].shard != tr[j].shard {
			return tr[i].shard < tr[j].shard
		}
		return tr[i].label < tr[j].label
	})
}

// TestEngineMatchesSingleQueueReference is the model check: 1500
// seeded topologies, each executed on the reference queue and on the
// engine at one and at several workers.
//
// Invariants demanded per topology:
//  1. the engine's schedule (what ran, where, at what virtual time)
//     equals the single-queue reference's — so no event ran before a
//     cross-shard event with a lower timestamp, or the timestamps
//     would differ;
//  2. each shard executed its events in nondecreasing timestamp order;
//  3. worker counts do not change even the per-shard execution order.
func TestEngineMatchesSingleQueueReference(t *testing.T) {
	topologies := 1500
	if testing.Short() {
		topologies = 200
	}
	for seed := 0; seed < topologies; seed++ {
		tp := genTopology(uint64(seed))
		ref := runReference(tp)
		got1, per1 := runEngine(tp, 1)
		gotN, perN := runEngine(tp, 2+seed%7)

		if !reflect.DeepEqual(got1, ref) {
			t.Fatalf("seed %d: engine(w=1) schedule diverged from reference\n eng: %v\n ref: %v",
				seed, got1, ref)
		}
		if !reflect.DeepEqual(perN, per1) {
			t.Fatalf("seed %d: workers=%d changed per-shard execution order", seed, 2+seed%7)
		}
		_ = gotN
		for sh, tr := range per1 {
			for i := 1; i < len(tr); i++ {
				if tr[i].at < tr[i-1].at {
					t.Fatalf("seed %d: shard %d executed %v after %v (time went backwards)",
						seed, sh, tr[i], tr[i-1])
				}
			}
		}
	}
}
