package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatalf("new clock at %v, want 0", c.Now())
	}
}

func TestSleepAdvances(t *testing.T) {
	c := NewClock()
	c.Sleep(5 * time.Millisecond)
	if got := c.Now(); got != Time(5*time.Millisecond) {
		t.Fatalf("Now() = %v, want 5ms", got)
	}
	c.Sleep(0)
	c.Sleep(-time.Second)
	if got := c.Now(); got != Time(5*time.Millisecond) {
		t.Fatalf("non-positive sleep moved clock to %v", got)
	}
}

func TestScheduleFiresInOrder(t *testing.T) {
	c := NewClock()
	var got []int
	c.After(3*time.Millisecond, func() { got = append(got, 3) })
	c.After(1*time.Millisecond, func() { got = append(got, 1) })
	c.After(2*time.Millisecond, func() { got = append(got, 2) })
	c.Sleep(10 * time.Millisecond)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events fired as %v, want [1 2 3]", got)
	}
}

func TestSameDeadlineFIFO(t *testing.T) {
	c := NewClock()
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		c.Schedule(Time(time.Millisecond), func() { got = append(got, i) })
	}
	c.Sleep(2 * time.Millisecond)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events out of FIFO order: %v", got)
		}
	}
}

func TestEventsSeeCurrentTime(t *testing.T) {
	c := NewClock()
	var at Time
	c.After(7*time.Millisecond, func() { at = c.Now() })
	c.Sleep(20 * time.Millisecond)
	if at != Time(7*time.Millisecond) {
		t.Fatalf("event observed Now()=%v, want 7ms", at)
	}
	if c.Now() != Time(20*time.Millisecond) {
		t.Fatalf("clock ended at %v, want 20ms", c.Now())
	}
}

func TestEventChaining(t *testing.T) {
	c := NewClock()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 4 {
			c.After(time.Millisecond, tick)
		}
	}
	c.After(time.Millisecond, tick)
	c.Sleep(10 * time.Millisecond)
	if count != 4 {
		t.Fatalf("chained events ran %d times, want 4", count)
	}
}

func TestChainedEventBeyondHorizonDeferred(t *testing.T) {
	c := NewClock()
	fired := false
	c.After(time.Millisecond, func() {
		c.After(10*time.Millisecond, func() { fired = true })
	})
	c.Sleep(2 * time.Millisecond)
	if fired {
		t.Fatal("event beyond the advance horizon fired early")
	}
	if c.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", c.Pending())
	}
	c.Sleep(20 * time.Millisecond)
	if !fired {
		t.Fatal("deferred event never fired")
	}
}

func TestSchedulePastClamps(t *testing.T) {
	c := NewClock()
	c.Sleep(time.Second)
	fired := false
	c.Schedule(0, func() { fired = true })
	c.Sleep(time.Nanosecond)
	if !fired {
		t.Fatal("past-scheduled event did not fire on next advance")
	}
}

func TestDrain(t *testing.T) {
	c := NewClock()
	n := 0
	for i := 0; i < 10; i++ {
		c.After(time.Duration(i+1)*time.Millisecond, func() { n++ })
	}
	if ran := c.Drain(4); ran != 4 || n != 4 {
		t.Fatalf("Drain(4) ran %d events (n=%d), want 4", ran, n)
	}
	if ran := c.Drain(0); ran != 6 || n != 10 {
		t.Fatalf("Drain(0) ran %d events (n=%d), want 6 (n=10)", ran, n)
	}
	if c.Now() != Time(10*time.Millisecond) {
		t.Fatalf("clock at %v after drain, want 10ms", c.Now())
	}
}

func TestNextDeadline(t *testing.T) {
	c := NewClock()
	if _, ok := c.NextDeadline(); ok {
		t.Fatal("empty queue reported a deadline")
	}
	c.After(4*time.Millisecond, func() {})
	c.After(2*time.Millisecond, func() {})
	dl, ok := c.NextDeadline()
	if !ok || dl != Time(2*time.Millisecond) {
		t.Fatalf("NextDeadline = %v,%v, want 2ms,true", dl, ok)
	}
}

func TestTimeArithmetic(t *testing.T) {
	a := Time(time.Second)
	b := a.Add(500 * time.Millisecond)
	if b.Sub(a) != 500*time.Millisecond {
		t.Fatalf("Sub = %v", b.Sub(a))
	}
	if b.Seconds() != 1.5 {
		t.Fatalf("Seconds = %v", b.Seconds())
	}
	if b.Milliseconds() != 1500 {
		t.Fatalf("Milliseconds = %v", b.Milliseconds())
	}
	if a.String() != "1s" {
		t.Fatalf("String = %q", a.String())
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seeded RNGs diverged")
		}
	}
	if NewRNG(0).Uint64() == 0 {
		t.Fatal("zero seed produced degenerate stream")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGIntn(t *testing.T) {
	r := NewRNG(9)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) only produced %d distinct values", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(11)
	var sum time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		sum += r.Exp(10 * time.Millisecond)
	}
	mean := sum / n
	if mean < 9*time.Millisecond || mean > 11*time.Millisecond {
		t.Fatalf("Exp mean = %v, want ≈10ms", mean)
	}
}

func TestRNGParetoBounds(t *testing.T) {
	r := NewRNG(13)
	for i := 0; i < 10000; i++ {
		v := r.Pareto(time.Millisecond, 10*time.Millisecond, 2)
		if v < time.Millisecond || v > 10*time.Millisecond {
			t.Fatalf("Pareto out of bounds: %v", v)
		}
	}
}

// Property: advancing in k small steps reaches the same time as one
// large step, and fires the same number of events.
func TestAdvanceSplitEquivalence(t *testing.T) {
	f := func(steps []uint8) bool {
		c1, c2 := NewClock(), NewClock()
		fired1, fired2 := 0, 0
		var total time.Duration
		for _, s := range steps {
			total += time.Duration(s) * time.Millisecond
		}
		for i := time.Duration(1); i <= 50; i++ {
			c1.After(i*10*time.Millisecond, func() { fired1++ })
			c2.After(i*10*time.Millisecond, func() { fired2++ })
		}
		for _, s := range steps {
			c1.Sleep(time.Duration(s) * time.Millisecond)
		}
		c2.Sleep(total)
		return c1.Now() == c2.Now() && fired1 == fired2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Time.Add/Sub round-trips.
func TestTimeAddSubRoundTrip(t *testing.T) {
	f := func(base int64, d int32) bool {
		tm := Time(base)
		return tm.Add(time.Duration(d)).Sub(tm) == time.Duration(d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestEventPoolRecycles: after warmup, a schedule/drain cycle reuses
// pooled event structs instead of allocating fresh ones — the clock is
// on every simulated operation's path, so this must stay allocation
// free.
func TestEventPoolRecycles(t *testing.T) {
	c := NewClock()
	fn := func() {}
	// Warm the free list.
	for i := 0; i < 8; i++ {
		c.Schedule(c.Now().Add(time.Duration(i)), fn)
	}
	c.Drain(0)
	avg := testing.AllocsPerRun(100, func() {
		for i := 0; i < 8; i++ {
			c.Schedule(c.Now().Add(time.Duration(i)), fn)
		}
		c.Drain(0)
	})
	if avg > 0 {
		t.Fatalf("schedule/drain cycle allocates %.1f/run, want 0", avg)
	}
}

// TestEventPoolPreservesSemantics: recycled events must not leak stale
// callbacks or deadlines.
func TestEventPoolPreservesSemantics(t *testing.T) {
	c := NewClock()
	var order []int
	c.Schedule(c.Now().Add(2*time.Millisecond), func() { order = append(order, 2) })
	c.Schedule(c.Now().Add(1*time.Millisecond), func() { order = append(order, 1) })
	c.Drain(0)
	// Reuse the two pooled events with new deadlines and callbacks.
	c.Schedule(c.Now().Add(1*time.Millisecond), func() { order = append(order, 3) })
	c.Schedule(c.Now().Add(2*time.Millisecond), func() { order = append(order, 4) })
	c.Drain(0)
	want := []int{1, 2, 3, 4}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}
