package sim

import (
	"fmt"
	"reflect"
	"testing"
	"time"
)

const la = time.Millisecond // test lookahead

// TestEngineSingleShard: one shard degenerates to the plain clock.
func TestEngineSingleShard(t *testing.T) {
	e := NewEngine(1, 1, la)
	var order []int
	c := e.Shard(0).Clock()
	c.After(3*time.Millisecond, func() { order = append(order, 3) })
	c.After(1*time.Millisecond, func() { order = append(order, 1) })
	c.After(2*time.Millisecond, func() { order = append(order, 2) })
	st := e.Run()
	if want := []int{1, 2, 3}; !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	if st.Events != 3 || st.Messages != 0 {
		t.Fatalf("stats = %v", st)
	}
}

// TestEngineSendTimestamp: a message executes on the destination's
// timeline at sender-time + delay.
func TestEngineSendTimestamp(t *testing.T) {
	e := NewEngine(2, 1, la)
	a, b := e.Shard(0), e.Shard(1)
	var got Time
	a.Clock().After(5*time.Millisecond, func() {
		a.Send(1, 3*time.Millisecond, func() { got = b.Clock().Now() })
	})
	e.Run()
	if want := Time(0).Add(8 * time.Millisecond); got != want {
		t.Fatalf("message ran at %v, want %v", got, want)
	}
}

// TestEngineLookaheadFloor: delays below the lookahead are raised to
// it — the minimum latency is the causality floor.
func TestEngineLookaheadFloor(t *testing.T) {
	e := NewEngine(2, 1, la)
	a, b := e.Shard(0), e.Shard(1)
	var got Time
	a.Clock().After(time.Millisecond, func() {
		a.Send(1, 0, func() { got = b.Clock().Now() })
	})
	e.Run()
	if want := Time(0).Add(2 * time.Millisecond); got != want {
		t.Fatalf("zero-delay message ran at %v, want %v (floored to lookahead)", got, want)
	}
}

// TestEngineSleepAheadClamp: a handler that sleeps beyond its window's
// horizon can leave its shard's clock above an incoming message's
// timestamp; the message then runs at the receiver's current time (the
// node was busy in a blocking op), never in its past.
func TestEngineSleepAheadClamp(t *testing.T) {
	e := NewEngine(2, 1, la)
	a, b := e.Shard(0), e.Shard(1)
	var ranAt, nowAt Time
	// Shard 1 sleeps to t=50ms inside an event at t=1ms.
	b.Clock().After(time.Millisecond, func() { b.Clock().Sleep(49 * time.Millisecond) })
	// Shard 0 sends a message stamped ~t=2ms.
	a.Clock().After(time.Millisecond, func() {
		a.Send(1, la, func() { ranAt = b.Clock().Now() })
	})
	e.Run()
	nowAt = b.Clock().Now()
	if ranAt != Time(0).Add(50*time.Millisecond) || nowAt != ranAt {
		t.Fatalf("clamped message ran at %v (final clock %v), want 50ms", ranAt, nowAt)
	}
}

// TestEngineSetupSend: a Send issued before Run — outside any handler,
// possibly on a shard with no scheduled events — must still be
// delivered, not stranded in the outbox.
func TestEngineSetupSend(t *testing.T) {
	e := NewEngine(3, 1, la)
	ran := 0
	// Shard 2 has no events of its own, only the setup-time send.
	e.Shard(2).Send(0, 4*time.Millisecond, func() { ran++ })
	// Another shard does have local work, so the engine is not
	// trivially quiescent.
	e.Shard(1).Clock().After(time.Millisecond, func() {})
	e.Run()
	if ran != 1 {
		t.Fatalf("setup-time send ran %d times, want 1", ran)
	}
	// And the degenerate case: the send is the only activity at all.
	e2 := NewEngine(2, 1, la)
	ran = 0
	e2.Shard(1).Send(0, time.Millisecond, func() { ran++ })
	e2.Run()
	if ran != 1 {
		t.Fatalf("send-only engine ran the message %d times, want 1", ran)
	}
}

// TestEngineRunAgain: Run may be called repeatedly; stats accumulate
// and new work picks up where the clocks stopped.
func TestEngineRunAgain(t *testing.T) {
	e := NewEngine(2, 1, la)
	e.Shard(0).Clock().After(time.Millisecond, func() {})
	st1 := e.Run()
	e.Shard(0).Clock().After(time.Millisecond, func() {
		e.Shard(0).Send(1, la, func() {})
	})
	st2 := e.Run()
	if st2.Events != st1.Events+2 || st2.Messages != 1 {
		t.Fatalf("second run stats = %v (first %v)", st2, st1)
	}
	if got := e.Shard(0).Clock().Now(); got != Time(0).Add(2*time.Millisecond) {
		t.Fatalf("clock resumed at %v", got)
	}
}

// TestEngineNestedAdvanceDelivery: an event scheduled from inside a
// nested clock advance (a handler that sleeps) still fires within the
// same window when due — and cross-shard sends issued from such nested
// events are delivered exactly once.
func TestEngineNestedAdvanceDelivery(t *testing.T) {
	e := NewEngine(2, 1, la)
	a := e.Shard(0)
	var fired []string
	a.Clock().After(time.Millisecond, func() {
		// Schedule a tick 1ms out, then sleep 5ms: the tick fires from
		// inside the nested advance.
		a.Clock().After(time.Millisecond, func() {
			fired = append(fired, fmt.Sprintf("tick@%v", a.Clock().Now()))
			a.Send(1, la, func() { fired = append(fired, "cross") })
		})
		a.Clock().Sleep(5 * time.Millisecond)
	})
	e.Run()
	want := []string{"tick@2ms", "cross"}
	if !reflect.DeepEqual(fired, want) {
		t.Fatalf("fired = %v, want %v", fired, want)
	}
}

// TestEngineWorkerCountInvariance: the exact per-shard execution
// traces of a messy scenario (fan-out, ping-pong, sleeps) must be
// byte-identical at every worker count.
func TestEngineWorkerCountInvariance(t *testing.T) {
	run := func(workers int) [][]Time {
		e := NewEngine(5, workers, la)
		traces := make([][]Time, 5)
		var ping func(from, to, hops int)
		ping = func(from, to, hops int) {
			s := e.Shard(from)
			s.Send(to, la+time.Duration(hops)*100*time.Microsecond, func() {
				traces[to] = append(traces[to], e.Shard(to).Clock().Now())
				if hops > 0 {
					ping(to, (to+2)%5, hops-1)
				}
			})
		}
		for i := 0; i < 5; i++ {
			i := i
			e.Shard(i).Clock().After(time.Duration(i+1)*time.Millisecond, func() {
				traces[i] = append(traces[i], e.Shard(i).Clock().Now())
				if i%2 == 0 {
					e.Shard(i).Clock().Sleep(3 * time.Millisecond)
				}
				ping(i, (i+1)%5, 6)
			})
		}
		e.Run()
		return traces
	}
	base := run(1)
	for _, w := range []int{2, 4, 8} {
		if got := run(w); !reflect.DeepEqual(got, base) {
			t.Fatalf("workers=%d trace diverged:\n  w1: %v\n  w%d: %v", w, base, w, got)
		}
	}
}

// TestEnginePanics: constructor contract.
func TestEnginePanics(t *testing.T) {
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"no shards", func() { NewEngine(0, 1, la) }},
		{"zero lookahead", func() { NewEngine(1, 1, 0) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", tc.name)
				}
			}()
			tc.fn()
		}()
	}
}
