package apps

import (
	"strings"
	"testing"
	"time"

	"lightvm/internal/sim"
)

func TestParseIPv4(t *testing.T) {
	a, err := ParseIPv4("10.1.2.3")
	if err != nil || a != 0x0a010203 {
		t.Fatalf("ParseIPv4 = %x, %v", a, err)
	}
	for _, bad := range []string{"1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", ""} {
		if _, err := ParseIPv4(bad); err == nil {
			t.Fatalf("ParseIPv4(%q) accepted", bad)
		}
	}
}

func TestParsePrefix(t *testing.T) {
	p, err := ParsePrefix("192.168.0.0/16")
	if err != nil || p.Bits != 16 || p.Addr != 0xc0a80000 {
		t.Fatalf("prefix = %+v, %v", p, err)
	}
	if p.String() != "192.168.0.0/16" {
		t.Fatalf("String = %q", p.String())
	}
	// Host bits are masked off.
	p2, err := ParsePrefix("192.168.3.7/16")
	if err != nil || p2.Addr != 0xc0a80000 {
		t.Fatalf("unmasked prefix: %+v", p2)
	}
	// Bare address = /32.
	p3, err := ParsePrefix("1.2.3.4")
	if err != nil || p3.Bits != 32 {
		t.Fatalf("bare prefix: %+v", p3)
	}
	for _, bad := range []string{"1.2.3.4/33", "1.2.3.4/-1", "1.2.3.4/x", "bad/8"} {
		if _, err := ParsePrefix(bad); err == nil {
			t.Fatalf("ParsePrefix(%q) accepted", bad)
		}
	}
}

func TestPrefixContains(t *testing.T) {
	p, _ := ParsePrefix("10.0.0.0/8")
	in, _ := ParseIPv4("10.200.1.1")
	out, _ := ParseIPv4("11.0.0.1")
	if !p.Contains(in) || p.Contains(out) {
		t.Fatal("Contains wrong")
	}
	any := Prefix{Bits: 0}
	if !any.Contains(in) || !any.Contains(out) {
		t.Fatal("/0 must match everything")
	}
}

func TestPersonalFirewall(t *testing.T) {
	fw, err := NewPersonalFirewall("10.1.0.0/16", []string{"203.0.113.0/24"})
	if err != nil {
		t.Fatal(err)
	}
	// Subscriber's own traffic allowed (even toward blocked net —
	// the allow rule comes first).
	if a, err := fw.FilterStrings("10.1.5.5", "203.0.113.9", 80); err != nil || a != Allow {
		t.Fatalf("subscriber egress: %v %v", a, err)
	}
	// Blocked source denied.
	if a, _ := fw.FilterStrings("203.0.113.9", "10.1.5.5", 80); a != Deny {
		t.Fatalf("blocked ingress allowed")
	}
	// Unrelated traffic hits default allow.
	if a, _ := fw.FilterStrings("8.8.8.8", "10.1.5.5", 443); a != Allow {
		t.Fatal("default verdict wrong")
	}
	if fw.Allowed < 2 || fw.Denied != 1 {
		t.Fatalf("stats allowed=%d denied=%d", fw.Allowed, fw.Denied)
	}
}

func TestFirewallPortRule(t *testing.T) {
	p0, _ := ParsePrefix("0.0.0.0/0")
	fw := &Firewall{
		Rules:   []Rule{{Action: Deny, Src: p0, Dst: p0, DstPort: 23}},
		Default: Allow,
	}
	src, _ := ParseIPv4("1.1.1.1")
	dst, _ := ParseIPv4("2.2.2.2")
	if fw.Filter(src, dst, 23) != Deny {
		t.Fatal("telnet not denied")
	}
	if fw.Filter(src, dst, 80) != Allow {
		t.Fatal("http denied by port rule")
	}
}

func TestFirewallFirstMatchWins(t *testing.T) {
	p0, _ := ParsePrefix("0.0.0.0/0")
	host, _ := ParsePrefix("9.9.9.9/32")
	fw := &Firewall{
		Rules: []Rule{
			{Action: Allow, Src: host, Dst: p0},
			{Action: Deny, Src: p0, Dst: p0},
		},
		Default: Allow,
	}
	src, _ := ParseIPv4("9.9.9.9")
	other, _ := ParseIPv4("9.9.9.8")
	dst, _ := ParseIPv4("1.2.3.4")
	if fw.Filter(src, dst, 0) != Allow {
		t.Fatal("first-match allow lost")
	}
	if fw.Filter(other, dst, 0) != Deny {
		t.Fatal("catch-all deny lost")
	}
}

func TestDaytime(t *testing.T) {
	clock := sim.NewClock()
	d := &Daytime{Clock: clock}
	clock.Sleep(25*time.Hour + 3*time.Minute + 4*time.Second)
	got := d.Serve()
	if got != "day 1, 01:03:04 UTC" {
		t.Fatalf("daytime = %q", got)
	}
	if d.Served != 1 {
		t.Fatalf("served = %d", d.Served)
	}
}

func TestPyFuncRunsProgram(t *testing.T) {
	p := &PyFunc{}
	out, err := p.Run("print(6 * 7)")
	if err != nil || strings.TrimSpace(out) != "42" {
		t.Fatalf("pyfunc: %q, %v", out, err)
	}
	if _, err := p.Run("while True:\n    pass"); err == nil {
		t.Fatal("runaway program not stopped")
	}
	if p.Executed != 1 {
		t.Fatalf("executed = %d", p.Executed)
	}
}

func TestActionString(t *testing.T) {
	if Allow.String() != "allow" || Deny.String() != "deny" {
		t.Fatal("action names")
	}
}

func TestKnownApps(t *testing.T) {
	if len(Known()) < 5 {
		t.Fatal("app registry too small")
	}
}
