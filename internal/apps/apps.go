package apps

import (
	"fmt"
	"time"

	"lightvm/internal/minipy"
	"lightvm/internal/sim"
)

// Daytime is the §3.1 unikernel's application: "a TCP server over
// Mini-OS that returns the current time whenever it receives a
// connection" — 50 LoC in the paper, about that here too.
type Daytime struct {
	Clock *sim.Clock
	// Served counts connections handled.
	Served uint64
}

// Serve handles one connection, returning the daytime string.
func (d *Daytime) Serve() string {
	d.Served++
	t := time.Duration(d.Clock.Now())
	// RFC-867-flavoured: day time since simulation epoch.
	days := int(t / (24 * time.Hour))
	t -= time.Duration(days) * 24 * time.Hour
	h := int(t / time.Hour)
	t -= time.Duration(h) * time.Hour
	m := int(t / time.Minute)
	t -= time.Duration(m) * time.Minute
	s := int(t / time.Second)
	return fmt.Sprintf("day %d, %02d:%02d:%02d UTC", days, h, m, s)
}

// PyFunc is the Minipython compute service payload runner (§7.4):
// "receives compute service requests (in the form of python programs)
// and spawns a VM to run the program".
type PyFunc struct {
	// Fuel bounds interpreter steps per request.
	Fuel int
	// Executed counts completed programs.
	Executed uint64
}

// Run executes a program and returns its output.
func (p *PyFunc) Run(program string) (string, error) {
	res, err := minipy.Run(program, p.Fuel)
	if err != nil {
		return "", fmt.Errorf("apps: pyfunc: %w", err)
	}
	p.Executed++
	return res.Output, nil
}

// Noop is the empty application of the noop unikernel and Tinyx-noop.
type Noop struct{}

// Main does nothing, successfully.
func (Noop) Main() {}

// Known lists the application identifiers used in guest images.
func Known() []string {
	return []string{"noop", "daytime", "minipython", "firewall", "tlsproxy"}
}
