// Package apps implements the guest applications the paper's VMs run:
// the daytime service (§3.1), the ClickOS-style personal firewall
// (§7.1), and the Minipython compute function (§7.4). The TLS
// termination proxy lives in internal/tlsterm.
package apps

import (
	"fmt"
	"strconv"
	"strings"
)

// Action is a firewall verdict.
type Action int

// Verdicts.
const (
	Deny Action = iota
	Allow
)

func (a Action) String() string {
	if a == Allow {
		return "allow"
	}
	return "deny"
}

// Rule matches packets by source/destination prefix and optional
// destination port (0 = any).
type Rule struct {
	Action  Action
	Src     Prefix
	Dst     Prefix
	DstPort int
}

// Prefix is an IPv4 CIDR prefix.
type Prefix struct {
	Addr uint32
	Bits int
}

// ParseIPv4 parses a dotted-quad address.
func ParseIPv4(s string) (uint32, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("apps: bad IPv4 %q", s)
	}
	var addr uint32
	for _, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n < 0 || n > 255 {
			return 0, fmt.Errorf("apps: bad IPv4 octet %q in %q", p, s)
		}
		addr = addr<<8 | uint32(n)
	}
	return addr, nil
}

// ParsePrefix parses "a.b.c.d/len" (or a bare address as /32).
func ParsePrefix(s string) (Prefix, error) {
	addrStr, bitsStr, found := strings.Cut(s, "/")
	bits := 32
	if found {
		b, err := strconv.Atoi(bitsStr)
		if err != nil || b < 0 || b > 32 {
			return Prefix{}, fmt.Errorf("apps: bad prefix length in %q", s)
		}
		bits = b
	}
	addr, err := ParseIPv4(addrStr)
	if err != nil {
		return Prefix{}, err
	}
	return Prefix{Addr: addr & mask(bits), Bits: bits}, nil
}

func mask(bits int) uint32 {
	if bits <= 0 {
		return 0
	}
	return ^uint32(0) << (32 - uint(bits))
}

// Contains reports whether addr falls inside the prefix.
func (p Prefix) Contains(addr uint32) bool {
	return addr&mask(p.Bits) == p.Addr
}

// String renders the prefix in CIDR form.
func (p Prefix) String() string {
	a := p.Addr
	return fmt.Sprintf("%d.%d.%d.%d/%d", a>>24, (a>>16)&0xff, (a>>8)&0xff, a&0xff, p.Bits)
}

// Firewall is the per-user packet filter run by the ClickOS VM: an
// ordered rule list with a default verdict, matched first-hit.
type Firewall struct {
	Rules   []Rule
	Default Action

	// Stats.
	Allowed uint64
	Denied  uint64
}

// NewPersonalFirewall builds the §7.1 per-subscriber configuration:
// allow established client traffic, deny a blocklist, default-allow.
func NewPersonalFirewall(clientPrefix string, blocked []string) (*Firewall, error) {
	cp, err := ParsePrefix(clientPrefix)
	if err != nil {
		return nil, err
	}
	fw := &Firewall{Default: Allow}
	for _, b := range blocked {
		bp, err := ParsePrefix(b)
		if err != nil {
			return nil, err
		}
		fw.Rules = append(fw.Rules, Rule{Action: Deny, Src: bp, Dst: Prefix{Bits: 0}})
		fw.Rules = append(fw.Rules, Rule{Action: Deny, Src: Prefix{Bits: 0}, Dst: bp})
	}
	// Always allow the subscriber's own traffic both ways.
	fw.Rules = append([]Rule{
		{Action: Allow, Src: cp, Dst: Prefix{Bits: 0}},
	}, fw.Rules...)
	return fw, nil
}

// Filter returns the verdict for a packet.
func (f *Firewall) Filter(src, dst uint32, dstPort int) Action {
	for _, r := range f.Rules {
		if !r.Src.Contains(src) || !r.Dst.Contains(dst) {
			continue
		}
		if r.DstPort != 0 && r.DstPort != dstPort {
			continue
		}
		if r.Action == Allow {
			f.Allowed++
		} else {
			f.Denied++
		}
		return r.Action
	}
	if f.Default == Allow {
		f.Allowed++
	} else {
		f.Denied++
	}
	return f.Default
}

// FilterStrings is Filter with dotted-quad addresses (convenience for
// examples).
func (f *Firewall) FilterStrings(src, dst string, dstPort int) (Action, error) {
	s, err := ParseIPv4(src)
	if err != nil {
		return Deny, err
	}
	d, err := ParseIPv4(dst)
	if err != nil {
		return Deny, err
	}
	return f.Filter(s, d, dstPort), nil
}
