package container

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"lightvm/internal/costs"
	"lightvm/internal/mm"
	"lightvm/internal/sim"
)

func newEngine(t *testing.T, gb uint64) (*Engine, *sim.Clock, *mm.Allocator) {
	t.Helper()
	clock := sim.NewClock()
	mem := mm.New(gb << 30)
	e, err := NewEngine(clock, mem)
	if err != nil {
		t.Fatal(err)
	}
	e.Pull(MicropythonImage())
	e.Pull(NoopImage())
	return e, clock, mem
}

func TestRunStop(t *testing.T) {
	e, _, mem := newEngine(t, 8)
	used := mem.UsedBytes()
	c, err := e.Run("micropython")
	if err != nil {
		t.Fatal(err)
	}
	if c.StartTime < costs.DockerBase {
		t.Fatalf("start time %v below docker base", c.StartTime)
	}
	if e.Containers() != 1 {
		t.Fatalf("containers = %d", e.Containers())
	}
	if mem.UsedBytes() <= used {
		t.Fatal("container consumed no memory")
	}
	if err := e.Stop(c.ID); err != nil {
		t.Fatal(err)
	}
	if mem.UsedBytes() != used {
		t.Fatalf("memory leak after stop: %d vs %d", mem.UsedBytes(), used)
	}
	if err := e.Stop(c.ID); !errors.Is(err, ErrNoSuchContainer) {
		t.Fatalf("double stop: %v", err)
	}
}

func TestUnknownImage(t *testing.T) {
	e, _, _ := newEngine(t, 2)
	if _, err := e.Run("nonesuch"); !errors.Is(err, ErrNoSuchImage) {
		t.Fatalf("unknown image: %v", err)
	}
}

func TestLayersSharedBetweenContainers(t *testing.T) {
	e, _, mem := newEngine(t, 8)
	c1, err := e.Run("micropython")
	if err != nil {
		t.Fatal(err)
	}
	afterFirst := mem.UsedBytes()
	c2, err := e.Run("micropython")
	if err != nil {
		t.Fatal(err)
	}
	secondCost := mem.UsedBytes() - afterFirst
	img := MicropythonImage()
	var layerBytes uint64
	for _, l := range img.Layers {
		layerBytes += l.Bytes
	}
	if secondCost >= layerBytes {
		t.Fatalf("second container paid %d bytes, layers (%d) not shared", secondCost, layerBytes)
	}
	// Layer memory released only after the last user stops.
	_ = e.Stop(c1.ID)
	if e.layerRefs["base-alpine"] != 1 {
		t.Fatalf("layer refcount = %d", e.layerRefs["base-alpine"])
	}
	_ = e.Stop(c2.ID)
	if len(e.layerMem) != 0 {
		t.Fatal("layer memory survived last stop")
	}
}

func TestStartTimeGrowsWithPopulation(t *testing.T) {
	e, _, _ := newEngine(t, 64)
	first, err := e.Run("noop")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		if _, err := e.Run("noop"); err != nil {
			t.Fatal(err)
		}
	}
	last, err := e.Run("noop")
	if err != nil {
		t.Fatal(err)
	}
	if last.StartTime <= first.StartTime {
		t.Fatalf("docker start flat: %v → %v", first.StartTime, last.StartTime)
	}
	// Fig. 10 slope: should remain well under 1s at ~400 containers.
	if last.StartTime > time.Second {
		t.Fatalf("start time %v too steep at 400 containers", last.StartTime)
	}
}

func TestDaemonMemorySpike(t *testing.T) {
	e, _, mem := newEngine(t, 100)
	var prevStart time.Duration
	spikeSeen := false
	memBefore := mem.UsedBytes()
	for i := 0; i < costs.DockerMemSpikeEvery+4; i++ {
		c, err := e.Run("noop")
		if err != nil {
			t.Fatal(err)
		}
		if prevStart > 0 && c.StartTime > prevStart+costs.DockerMemSpikeCost/2 {
			spikeSeen = true
		}
		prevStart = c.StartTime
	}
	if !spikeSeen {
		t.Fatal("no start-time spike at daemon table growth")
	}
	if mem.UsedBytes()-memBefore < 256<<20 {
		t.Fatal("daemon table growth did not consume memory")
	}
}

func TestMemoryWall(t *testing.T) {
	// With a small host, container creation must eventually fail with
	// an allocation error — the Fig. 10 "system becomes unresponsive"
	// point, which we surface as a clean error instead.
	e, _, _ := newEngine(t, 1)
	var err error
	n := 0
	for n < 1000 {
		_, err = e.Run("noop")
		if err != nil {
			break
		}
		n++
	}
	if err == nil {
		t.Fatal("never hit the memory wall on a 1 GB host")
	}
	if n == 0 {
		t.Fatal("no containers fit at all")
	}
}

func TestProcessSpawnConstantAndTailed(t *testing.T) {
	clock := sim.NewClock()
	mem := mm.New(8 << 30)
	pr := NewProcessRunner(clock, mem, sim.NewRNG(1))
	var lats []time.Duration
	for i := 0; i < 500; i++ {
		lat, err := pr.Spawn(1 << 20)
		if err != nil {
			t.Fatal(err)
		}
		lats = append(lats, lat)
	}
	if pr.Running() != 500 {
		t.Fatalf("running = %d", pr.Running())
	}
	// Median at the 3.5ms base; some tail beyond p90 = 9ms.
	base, tail := 0, 0
	for _, l := range lats {
		if l == costs.ForkExec {
			base++
		}
		if l >= costs.ForkExecP90 {
			tail++
		}
	}
	if base < 300 {
		t.Fatalf("only %d/500 spawns at base latency", base)
	}
	if tail == 0 {
		t.Fatal("no tail latencies ≥ p90")
	}
	if tail > 100 {
		t.Fatalf("%d/500 spawns ≥ p90 — tail too fat", tail)
	}
	// Population independence: the 500th costs the same distributionally;
	// verify no monotonic growth by comparing halves.
	var sum1, sum2 time.Duration
	for i, l := range lats {
		if i < 250 {
			sum1 += l
		} else {
			sum2 += l
		}
	}
	ratio := float64(sum2) / float64(sum1)
	if ratio > 1.5 || ratio < 0.67 {
		t.Fatalf("process spawn latency drifted with population: ratio=%.2f", ratio)
	}
}

func TestFig14DockerMemoryFootprint(t *testing.T) {
	// Fig. 14: 1000 Docker/Micropython containers ≈ 5 GB.
	e, _, mem := newEngine(t, 64)
	before := mem.UsedBytes()
	for i := 0; i < 1000; i++ {
		if _, err := e.Run("micropython"); err != nil {
			t.Fatalf("container %d: %v", i, err)
		}
	}
	gb := float64(mem.UsedBytes()-before) / float64(1<<30)
	if gb < 3 || gb > 8 {
		t.Fatalf("1000 containers used %.1f GB, want ≈5 GB", gb)
	}
	_ = fmt.Sprint(gb)
}

func TestRunStopAccountingQuick(t *testing.T) {
	f := func(ops []uint8) bool {
		clock := sim.NewClock()
		mem := mm.New(32 << 30)
		e, err := NewEngine(clock, mem)
		if err != nil {
			return false
		}
		e.Pull(MicropythonImage())
		e.Pull(NoopImage())
		base := mem.UsedBytes()
		var live []*Container
		for _, op := range ops {
			if op%3 != 0 || len(live) == 0 {
				img := "noop"
				if op%2 == 0 {
					img = "micropython"
				}
				c, err := e.Run(img)
				if err != nil {
					return false
				}
				live = append(live, c)
			} else {
				i := int(op/3) % len(live)
				if err := e.Stop(live[i].ID); err != nil {
					return false
				}
				live = append(live[:i], live[i+1:]...)
			}
			if e.Containers() != len(live) {
				return false
			}
		}
		for _, c := range live {
			if err := e.Stop(c.ID); err != nil {
				return false
			}
		}
		// All container and layer memory returned; only the daemon's
		// base (and any table growth) remains.
		return mem.UsedBytes() >= base && e.Containers() == 0 && len(e.layerMem) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
