// Package container implements the baselines the paper compares VMs
// against: a Docker-like container engine (layered images, a daemon
// whose bookkeeping grows with the number of containers, shared-kernel
// memory accounting) and plain Linux processes started with fork/exec.
//
// Docker's curves in Figs. 4, 10, 11 and 14 — ~150–200 ms starts, the
// slow per-container ramp, the memory-allocation spikes, and the
// ~3,000-container memory wall — come from this engine running against
// the same host memory allocator the hypervisor uses.
package container

import (
	"errors"
	"fmt"
	"time"

	"lightvm/internal/costs"
	"lightvm/internal/mm"
	"lightvm/internal/sim"
)

// Errors.
var (
	ErrNoSuchContainer = errors.New("container: no such container")
	ErrNoSuchImage     = errors.New("container: no such image")
)

// Layer is one read-only image layer, shared between containers.
type Layer struct {
	ID    string
	Bytes uint64
}

// Image is a layered container image.
type Image struct {
	Name   string
	Layers []Layer
	// AppMemBytes is the private memory the containerized app needs.
	AppMemBytes uint64
}

// mbBytes converts a fractional MiB figure to bytes.
func mbBytes(mib float64) uint64 { return uint64(mib * (1 << 20)) }

// MicropythonImage mirrors the Docker/Micropython container used in
// Fig. 14: a small base plus the interpreter layer; per-container
// private memory ≈4.6 MB.
func MicropythonImage() Image {
	return Image{
		Name: "micropython",
		Layers: []Layer{
			{ID: "base-alpine", Bytes: 5 << 20},
			{ID: "micropython", Bytes: 2 << 20},
		},
		AppMemBytes: mbBytes(costs.DockerPerContainerMB),
	}
}

// NoopImage is a minimal container for boot-time experiments.
func NoopImage() Image {
	return Image{
		Name:        "noop",
		Layers:      []Layer{{ID: "base-alpine", Bytes: 5 << 20}},
		AppMemBytes: mbBytes(costs.DockerPerContainerMB),
	}
}

// ProcessMicropyBytes is the private memory one Micropython process
// needs (the Fig. 14 process baseline).
func ProcessMicropyBytes() uint64 { return mbBytes(costs.ProcessMicropyMB) }

// Container is a running container.
type Container struct {
	ID        string
	Image     string
	StartTime time.Duration // measured docker-run latency
	memOwner  mm.Owner
}

// Engine is the Docker-like daemon.
type Engine struct {
	Clock *sim.Clock
	Mem   *mm.Allocator

	images     map[string]Image
	layerRefs  map[string]int // layer → refcount (shared pages)
	layerMem   map[string][]mm.Extent
	containers map[string]*Container
	nextID     int
	nextOwner  mm.Owner

	// Started counts total run operations (drives the per-container
	// daemon overhead and the periodic memory-spike behaviour).
	Started int
	// spikes counts daemon-table doublings so far; each spike
	// allocation is twice the previous one, which is what eventually
	// consumes all host memory (the Fig. 10 wall at ~3000 containers:
	// "the next large memory allocation consumes all available memory
	// and the system becomes unresponsive").
	spikes int
}

// NewEngine creates a daemon using mem for all allocations. The
// daemon's own base footprint is reserved immediately.
func NewEngine(clock *sim.Clock, mem *mm.Allocator) (*Engine, error) {
	e := &Engine{
		Clock: clock, Mem: mem,
		images:     make(map[string]Image),
		layerRefs:  make(map[string]int),
		layerMem:   make(map[string][]mm.Extent),
		containers: make(map[string]*Container),
		nextOwner:  1 << 20, // keep clear of domain IDs
	}
	base := mbBytes(costs.DockerEngineBaseMB)
	if _, err := mem.AllocBytes(base, e.nextOwner); err != nil {
		return nil, fmt.Errorf("container: engine base memory: %w", err)
	}
	e.nextOwner++
	return e, nil
}

// Pull registers an image with the engine (layers are materialized
// lazily on first use).
func (e *Engine) Pull(img Image) { e.images[img.Name] = img }

// Containers reports the number of running containers.
func (e *Engine) Containers() int { return len(e.containers) }

// Run starts a container from image, returning it with the measured
// start latency. Layers are shared: only the first user of a layer
// pays its memory.
func (e *Engine) Run(imageName string) (*Container, error) {
	img, ok := e.images[imageName]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchImage, imageName)
	}
	start := e.Clock.Now()

	// Daemon work: image resolution, namespace + cgroup setup, graph
	// driver bookkeeping that scans per-container state (the O(N)
	// term), plus the periodic large reallocation of daemon tables
	// that shows up as spikes and memory jumps in Fig. 10.
	e.Started++
	overhead := costs.DockerBase +
		time.Duration(len(e.containers))*costs.DockerPerContainer
	if e.Started%costs.DockerMemSpikeEvery == 0 {
		overhead += costs.DockerMemSpikeCost
		// The daemon's bookkeeping tables double each time.
		table := uint64(1<<30) << uint(e.spikes)
		if _, err := e.Mem.AllocBytes(table, e.nextOwner); err != nil {
			return nil, fmt.Errorf("container: daemon table growth to %d MB: %w", table>>20, err)
		}
		e.spikes++
		e.nextOwner++
	}
	e.Clock.Sleep(overhead)

	// Materialize (share) layers.
	for _, l := range img.Layers {
		if e.layerRefs[l.ID] == 0 {
			exts, err := e.Mem.AllocBytes(l.Bytes, e.nextOwner)
			if err != nil {
				return nil, fmt.Errorf("container: layer %s: %w", l.ID, err)
			}
			e.layerMem[l.ID] = exts
			e.nextOwner++
		}
		e.layerRefs[l.ID]++
	}

	// Private app memory.
	owner := e.nextOwner
	e.nextOwner++
	if _, err := e.Mem.AllocBytes(img.AppMemBytes, owner); err != nil {
		// Roll back layer refs.
		for _, l := range img.Layers {
			e.layerRefs[l.ID]--
		}
		return nil, fmt.Errorf("container: app memory: %w", err)
	}

	// The contained process itself is a fork/exec.
	e.Clock.Sleep(costs.ForkExec)

	e.nextID++
	c := &Container{
		ID:        fmt.Sprintf("c%06d", e.nextID),
		Image:     imageName,
		StartTime: e.Clock.Now().Sub(start),
		memOwner:  owner,
	}
	e.containers[c.ID] = c
	return c, nil
}

// Stop removes a container and releases its private memory; layer
// memory is freed when the last reference drops.
func (e *Engine) Stop(id string) error {
	c, ok := e.containers[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchContainer, id)
	}
	img := e.images[c.Image]
	e.Mem.FreeOwner(c.memOwner)
	for _, l := range img.Layers {
		e.layerRefs[l.ID]--
		if e.layerRefs[l.ID] == 0 {
			for _, ext := range e.layerMem[l.ID] {
				if err := e.Mem.Free(ext); err != nil {
					return err
				}
			}
			delete(e.layerMem, l.ID)
		}
	}
	delete(e.containers, id)
	e.Clock.Sleep(costs.ForkExec / 2) // SIGKILL + teardown
	return nil
}

// ProcessRunner is the fork/exec baseline ("a process is created and
// launched in 3.5ms on average, 9ms at the 90% percentile").
type ProcessRunner struct {
	Clock *sim.Clock
	Mem   *mm.Allocator
	RNG   *sim.RNG

	nextOwner mm.Owner
	running   int
}

// NewProcessRunner creates the baseline runner.
func NewProcessRunner(clock *sim.Clock, mem *mm.Allocator, rng *sim.RNG) *ProcessRunner {
	return &ProcessRunner{Clock: clock, Mem: mem, RNG: rng, nextOwner: 1 << 24}
}

// Spawn forks and execs one process, returning the latency. Creation
// time "does not depend on the number of existing processes", but has
// a deterministic-seeded heavy tail reaching the paper's p90.
func (p *ProcessRunner) Spawn(memBytes uint64) (time.Duration, error) {
	start := p.Clock.Now()
	lat := costs.ForkExec
	// ~10% of spawns land in the tail up to the p90 figure and beyond
	// (page-cache misses, COW storms).
	if p.RNG != nil && p.RNG.Float64() > 0.85 {
		lat = costs.ForkExec + p.RNG.Pareto(costs.ForkExecP90-costs.ForkExec,
			3*costs.ForkExecP90, 2.5)
	}
	p.Clock.Sleep(lat)
	if memBytes > 0 {
		if _, err := p.Mem.AllocBytes(memBytes, p.nextOwner); err != nil {
			return 0, err
		}
		p.nextOwner++
	}
	p.running++
	return p.Clock.Now().Sub(start), nil
}

// Running reports live processes.
func (p *ProcessRunner) Running() int { return p.running }
