// Package cluster manages a fleet of LightVM hosts sharing one virtual
// timeline — the mobile-edge deployment of §7.1, where "one or a few
// machines" per cell run thousands of per-subscriber VMs and "users
// enter and leave the cell continuously, so it is critical to be able
// to instantiate, terminate and migrate personal firewalls quickly and
// cheaply, following the user through the mobile network".
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"lightvm/internal/core"
	"lightvm/internal/costs"
	"lightvm/internal/guest"
	"lightvm/internal/sched"
	"lightvm/internal/sim"
	"lightvm/internal/toolstack"
)

// Errors.
var (
	ErrNoHosts       = errors.New("cluster: no hosts")
	ErrUnknownHost   = errors.New("cluster: unknown host")
	ErrUnknownVM     = errors.New("cluster: unknown VM")
	ErrDuplicateHost = errors.New("cluster: duplicate host")
	ErrHostFailed    = errors.New("cluster: host has failed")
)

// Cluster is a set of hosts on one clock with a VM placement table.
type Cluster struct {
	Clock *sim.Clock

	hosts     map[string]*core.Host
	hostNames []string          // insertion order, for deterministic placement
	placement map[string]string // VM name → host name
	failed    map[string]bool   // hosts marked dead by FailHost
}

// New creates an empty cluster on clock.
func New(clock *sim.Clock) *Cluster {
	return &Cluster{
		Clock:     clock,
		hosts:     make(map[string]*core.Host),
		placement: make(map[string]string),
		failed:    make(map[string]bool),
	}
}

// AddHost brings a machine into the cluster.
func (c *Cluster) AddHost(name string, machine sched.Machine, seed uint64) (*core.Host, error) {
	if _, dup := c.hosts[name]; dup {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateHost, name)
	}
	h, err := core.NewHostOn(c.Clock, machine, seed)
	if err != nil {
		return nil, err
	}
	c.hosts[name] = h
	c.hostNames = append(c.hostNames, name)
	return h, nil
}

// Host returns a member by name.
func (c *Cluster) Host(name string) (*core.Host, error) {
	h, ok := c.hosts[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownHost, name)
	}
	if c.failed[name] {
		return nil, fmt.Errorf("%w: %q", ErrHostFailed, name)
	}
	return h, nil
}

// Hosts lists member names in join order.
func (c *Cluster) Hosts() []string { return append([]string(nil), c.hostNames...) }

// HostOf reports where a VM runs.
func (c *Cluster) HostOf(vmName string) (string, error) {
	host, ok := c.placement[vmName]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrUnknownVM, vmName)
	}
	return host, nil
}

// VMs reports the cluster-wide guest count.
func (c *Cluster) VMs() int { return len(c.placement) }

// pick returns candidate hosts ordered by load: fewest VMs first,
// most free memory as the tie-breaker, join order as the final tie.
func (c *Cluster) pick() []string {
	names := make([]string, 0, len(c.hostNames))
	for _, n := range c.hostNames {
		if !c.failed[n] {
			names = append(names, n)
		}
	}
	sort.SliceStable(names, func(i, j int) bool {
		hi, hj := c.hosts[names[i]], c.hosts[names[j]]
		if hi.VMs() != hj.VMs() {
			return hi.VMs() < hj.VMs()
		}
		return hi.MemoryUsedBytes() < hj.MemoryUsedBytes()
	})
	return names
}

// Place creates a VM on the least-loaded host, falling back to the
// next candidate if a host is out of resources. It returns the VM and
// the host it landed on.
func (c *Cluster) Place(mode toolstack.Mode, vmName string, img guest.Image) (*toolstack.VM, string, error) {
	cands := c.pick()
	if len(cands) == 0 {
		return nil, "", ErrNoHosts
	}
	if _, dup := c.placement[vmName]; dup {
		return nil, "", fmt.Errorf("cluster: VM %q already placed", vmName)
	}
	var lastErr error
	for _, name := range cands {
		h := c.hosts[name]
		if err := h.EnsureFlavor(img, mode); err != nil {
			lastErr = err
			continue
		}
		vm, err := h.CreateVM(mode, vmName, img)
		if err != nil {
			lastErr = err
			continue
		}
		c.placement[vmName] = name
		return vm, name, nil
	}
	return nil, "", fmt.Errorf("cluster: no host could place %q: %w", vmName, lastErr)
}

// Move live-migrates a VM to another host (the subscriber handover).
func (c *Cluster) Move(vmName, dstName string) (time.Duration, error) {
	srcName, err := c.HostOf(vmName)
	if err != nil {
		return 0, err
	}
	dst, err := c.Host(dstName)
	if err != nil {
		return 0, err
	}
	if srcName == dstName {
		return 0, fmt.Errorf("cluster: VM %q already on %q", vmName, dstName)
	}
	src := c.hosts[srcName]
	vm, err := src.Env.VM(vmName)
	if err != nil {
		return 0, err
	}
	_, d, err := src.MigrateTo(dst, vm)
	if err != nil {
		return 0, err
	}
	c.placement[vmName] = dstName
	return d, nil
}

// Destroy removes a VM wherever it runs.
func (c *Cluster) Destroy(vmName string) error {
	hostName, err := c.HostOf(vmName)
	if err != nil {
		return err
	}
	h := c.hosts[hostName]
	vm, err := h.Env.VM(vmName)
	if err != nil {
		return err
	}
	if err := h.DestroyVM(vm); err != nil {
		return err
	}
	delete(c.placement, vmName)
	return nil
}

// LostVM describes a guest that was running on a failed host, with
// enough of its configuration to re-instantiate it elsewhere.
type LostVM struct {
	Name  string
	Mode  toolstack.Mode
	Image guest.Image
}

// FailHost marks a member as dead — a whole-machine failure. Its
// guests are gone, it takes no further placements, and Host/Move
// reject it with ErrHostFailed. The lost VMs' descriptors are returned
// sorted by name, ready for Failover.
func (c *Cluster) FailHost(name string) ([]LostVM, error) {
	h, ok := c.hosts[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownHost, name)
	}
	if c.failed[name] {
		return nil, fmt.Errorf("%w: %q", ErrHostFailed, name)
	}
	c.failed[name] = true
	h.Env.MarkDead() // frozen corpse state is not audited by FsckTracked
	var lost []LostVM
	for _, vm := range h.Env.AllVMs() { // sorted by name
		if c.placement[vm.Name] != name {
			continue
		}
		delete(c.placement, vm.Name)
		lost = append(lost, LostVM{Name: vm.Name, Mode: vm.Mode, Image: vm.Image})
	}
	return lost, nil
}

// Failed reports whether a member has been marked dead.
func (c *Cluster) Failed(name string) bool { return c.failed[name] }

// Failover re-instantiates the lost VMs on the surviving members via
// the usual least-loaded placement, after charging the failure
// detection delay. It returns the total recovery time (detection plus
// re-creation) and how many VMs came back; a placement error aborts
// the sweep with the partial count.
func (c *Cluster) Failover(lost []LostVM) (time.Duration, int, error) {
	start := c.Clock.Now()
	c.Clock.Sleep(costs.HostFailureDetect)
	recovered := 0
	for _, l := range lost {
		if _, _, err := c.Place(l.Mode, l.Name, l.Image); err != nil {
			return time.Duration(c.Clock.Now().Sub(start)), recovered,
				fmt.Errorf("cluster: failover of %q: %w", l.Name, err)
		}
		recovered++
	}
	return time.Duration(c.Clock.Now().Sub(start)), recovered, nil
}

// HostStat is one member's load summary.
type HostStat struct {
	Name     string
	VMs      int
	MemoryMB float64
	CPU      float64
}

// Stats summarizes every live member in join order.
func (c *Cluster) Stats() []HostStat {
	out := make([]HostStat, 0, len(c.hostNames))
	for _, name := range c.hostNames {
		if c.failed[name] {
			continue
		}
		h := c.hosts[name]
		out = append(out, HostStat{
			Name:     name,
			VMs:      h.VMs(),
			MemoryMB: float64(h.MemoryUsedBytes()) / (1 << 20),
			CPU:      h.CPUUtilization(),
		})
	}
	return out
}

// Rebalance migrates VMs from the most- to the least-loaded host until
// their VM counts differ by at most one, returning the number of moves
// (a maintenance operation LightVM's 60 ms migrations make routine).
func (c *Cluster) Rebalance(maxMoves int) (int, error) {
	moves := 0
	for moves < maxMoves {
		order := c.pick()
		if len(order) < 2 {
			return moves, nil
		}
		least, most := order[0], order[len(order)-1]
		if c.hosts[most].VMs()-c.hosts[least].VMs() <= 1 {
			return moves, nil
		}
		// Move an arbitrary (first by name) VM off the hottest host.
		vms := c.hosts[most].Env.AllVMs()
		if len(vms) == 0 {
			return moves, nil
		}
		if _, err := c.Move(vms[0].Name, least); err != nil {
			return moves, err
		}
		moves++
	}
	return moves, nil
}
