// Package cluster manages a fleet of LightVM hosts sharing one virtual
// timeline — the mobile-edge deployment of §7.1, where "one or a few
// machines" per cell run thousands of per-subscriber VMs and "users
// enter and leave the cell continuously, so it is critical to be able
// to instantiate, terminate and migrate personal firewalls quickly and
// cheaply, following the user through the mobile network".
//
// Beyond the paper's clean-failure model (FailHost/Failover), the
// cluster carries a gray-failure plane: a heartbeat health monitor
// (health.go) that detects slow, partitioned and flapping members on
// the virtual clock, and an epoch/lease fence (toolstack/lease.go)
// that keeps detection mistakes from ever double-running a domain.
//
// Locking: every public method takes c.mu; internal *Locked helpers
// assume it is held. The virtual clock must only be advanced while
// holding c.mu once the health monitor is enabled (use Idle for pure
// waiting) — timer callbacks then always run under the lock of the
// goroutine advancing the clock, so they use the *Locked helpers
// directly. Lease epochs live under the separate leaseMu so the
// toolstack's fence callbacks (invoked from scrub/destroy paths that
// already run under c.mu) never re-enter it.
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"lightvm/internal/core"
	"lightvm/internal/costs"
	"lightvm/internal/guest"
	"lightvm/internal/sched"
	"lightvm/internal/sim"
	"lightvm/internal/toolstack"
)

// Errors.
var (
	ErrNoHosts       = errors.New("cluster: no hosts")
	ErrUnknownHost   = errors.New("cluster: unknown host")
	ErrUnknownVM     = errors.New("cluster: unknown VM")
	ErrDuplicateHost = errors.New("cluster: duplicate host")
	ErrHostFailed    = errors.New("cluster: host has failed")
	// ErrClusterSaturated is backpressure: members exist but none is
	// healthy enough to take the work — every candidate is suspect,
	// dead or quarantined. Callers should retry later rather than pile
	// onto degraded capacity.
	ErrClusterSaturated = errors.New("cluster: no healthy host (saturated)")
	// ErrPartitioned rejects an operation that needs a cut edge of the
	// reachability matrix (e.g. migrating between partitioned hosts).
	ErrPartitioned = errors.New("cluster: hosts partitioned")
)

// Cluster is a set of hosts on one clock with a VM placement table.
type Cluster struct {
	Clock *sim.Clock

	mu        sync.Mutex
	hosts     map[string]*core.Host
	hostNames []string          // insertion order, for deterministic placement
	placement map[string]string // VM name → host name
	failed    map[string]bool   // hosts marked dead by FailHost
	hostMode  map[string]toolstack.Mode

	health *healthMonitor // nil until EnableHealth
	// opDepth counts cluster operations currently in the toolstack /
	// core layers (create, migrate, destroy, scrub). Health ticks that
	// fire from a clock advance nested inside one of those operations
	// must not run a pass — the pass could re-enter a component lock
	// the operation already holds — so healthTick skips while > 0.
	opDepth int

	// leaseMu guards epochs alone: the authoritative per-VM placement
	// epoch the toolstack fence validates claims against.
	leaseMu sync.Mutex
	epochs  map[string]uint64
}

// New creates an empty cluster on clock.
func New(clock *sim.Clock) *Cluster {
	return &Cluster{
		Clock:     clock,
		hosts:     make(map[string]*core.Host),
		placement: make(map[string]string),
		failed:    make(map[string]bool),
		hostMode:  make(map[string]toolstack.Mode),
		epochs:    make(map[string]uint64),
	}
}

// AddHost brings a machine into the cluster.
func (c *Cluster) AddHost(name string, machine sched.Machine, seed uint64) (*core.Host, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.hosts[name]; dup {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateHost, name)
	}
	h, err := core.NewHostOn(c.Clock, machine, seed)
	if err != nil {
		return nil, err
	}
	c.hosts[name] = h
	c.hostNames = append(c.hostNames, name)
	if c.health != nil {
		c.health.addHost(name, c.Clock.Now())
		c.armLeaseLocked(name)
	}
	return h, nil
}

// Host returns a member by name.
func (c *Cluster) Host(name string) (*core.Host, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hostLocked(name)
}

func (c *Cluster) hostLocked(name string) (*core.Host, error) {
	h, ok := c.hosts[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownHost, name)
	}
	if c.failed[name] {
		return nil, fmt.Errorf("%w: %q", ErrHostFailed, name)
	}
	return h, nil
}

// Hosts lists member names in join order.
func (c *Cluster) Hosts() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.hostNames...)
}

// HostOf reports where a VM runs.
func (c *Cluster) HostOf(vmName string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	host, ok := c.placement[vmName]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrUnknownVM, vmName)
	}
	return host, nil
}

// VMs reports the cluster-wide guest count.
func (c *Cluster) VMs() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.placement)
}

// Idle advances the cluster's clock by d while holding its lock, so
// health-monitor ticks observe a consistent placement table. Drivers
// of a health-enabled cluster pass virtual time through Idle (or any
// other Cluster method), never Clock.Sleep directly.
func (c *Cluster) Idle(d sim.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.Clock.Sleep(d)
}

// pickLocked returns candidate hosts ordered by load: fewest VMs
// first, most free memory as the tie-breaker, join order as the final
// tie. Failed members are out; so is anything the health monitor holds
// in a non-alive state (suspect, dead, quarantined).
func (c *Cluster) pickLocked() []string {
	names := make([]string, 0, len(c.hostNames))
	for _, n := range c.hostNames {
		if c.failed[n] || c.healthStateLocked(n) != HealthAlive {
			continue
		}
		names = append(names, n)
	}
	sort.SliceStable(names, func(i, j int) bool {
		hi, hj := c.hosts[names[i]], c.hosts[names[j]]
		if hi.VMs() != hj.VMs() {
			return hi.VMs() < hj.VMs()
		}
		return hi.MemoryUsedBytes() < hj.MemoryUsedBytes()
	})
	return names
}

// degradedLocked reports whether any live member was excluded from
// placement for health reasons — the condition that turns "no hosts"
// into "saturated, try later".
func (c *Cluster) degradedLocked() bool {
	for _, n := range c.hostNames {
		if !c.failed[n] && c.healthStateLocked(n) != HealthAlive {
			return true
		}
	}
	return false
}

// Place creates a VM on the least-loaded healthy host, falling back to
// the next candidate if a host is out of resources. It returns the VM
// and the host it landed on; ErrClusterSaturated when only degraded
// capacity remains.
func (c *Cluster) Place(mode toolstack.Mode, vmName string, img guest.Image) (*toolstack.VM, string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.placeLocked(mode, vmName, img)
}

func (c *Cluster) placeLocked(mode toolstack.Mode, vmName string, img guest.Image) (*toolstack.VM, string, error) {
	if _, dup := c.placement[vmName]; dup {
		return nil, "", fmt.Errorf("cluster: VM %q already placed", vmName)
	}
	cands := c.pickLocked()
	if len(cands) == 0 {
		if c.degradedLocked() {
			return nil, "", fmt.Errorf("%w: placing %q", ErrClusterSaturated, vmName)
		}
		return nil, "", ErrNoHosts
	}
	c.opDepth++
	defer func() { c.opDepth-- }()
	var lastErr error
	for _, name := range cands {
		h := c.hosts[name]
		start := c.Clock.Now()
		if err := h.EnsureFlavor(img, mode); err != nil {
			lastErr = err
			continue
		}
		vm, err := h.CreateVM(mode, vmName, img)
		if err != nil {
			lastErr = err
			continue
		}
		c.chargeSlowLocked(start, name)
		c.placement[vmName] = name
		c.grantLeaseLocked(name, vmName, mode)
		return vm, name, nil
	}
	return nil, "", fmt.Errorf("cluster: no host could place %q: %w", vmName, lastErr)
}

// Move live-migrates a VM to another host (the subscriber handover).
// Both endpoints must be healthy: a failed or dead-declared source is
// rejected with ErrHostFailed (there is nothing trustworthy to migrate
// from), a degraded destination with ErrClusterSaturated, and a cut
// source↔destination edge with ErrPartitioned.
func (c *Cluster) Move(vmName, dstName string) (time.Duration, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.moveLocked(vmName, dstName)
}

func (c *Cluster) moveLocked(vmName, dstName string) (time.Duration, error) {
	srcName, ok := c.placement[vmName]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownVM, vmName)
	}
	if c.failed[srcName] || c.healthStateLocked(srcName) == HealthDead {
		return 0, fmt.Errorf("%w: source %q", ErrHostFailed, srcName)
	}
	dst, err := c.hostLocked(dstName)
	if err != nil {
		return 0, err
	}
	if st := c.healthStateLocked(dstName); st != HealthAlive {
		return 0, fmt.Errorf("%w: destination %q is %s", ErrClusterSaturated, dstName, st)
	}
	if !c.reachableLocked(srcName, dstName) {
		return 0, fmt.Errorf("%w: %q and %q", ErrPartitioned, srcName, dstName)
	}
	if srcName == dstName {
		return 0, fmt.Errorf("cluster: VM %q already on %q", vmName, dstName)
	}
	src := c.hosts[srcName]
	vm, err := src.Env.VM(vmName)
	if err != nil {
		return 0, err
	}
	c.opDepth++
	defer func() { c.opDepth-- }()
	start := c.Clock.Now()
	_, d, err := src.MigrateTo(dst, vm)
	if err != nil {
		return 0, err
	}
	c.chargeSlowLocked(start, srcName, dstName)
	src.Env.RevokeLease(vmName, vm.Mode.UsesStore())
	c.placement[vmName] = dstName
	c.grantLeaseLocked(dstName, vmName, vm.Mode)
	return d, nil
}

// Destroy removes a VM wherever it runs.
func (c *Cluster) Destroy(vmName string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	hostName, ok := c.placement[vmName]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownVM, vmName)
	}
	h := c.hosts[hostName]
	vm, err := h.Env.VM(vmName)
	if err != nil {
		return err
	}
	mode := vm.Mode
	c.opDepth++
	err = h.DestroyVM(vm)
	c.opDepth--
	if err != nil {
		return err
	}
	h.Env.RevokeLease(vmName, mode.UsesStore())
	c.leaseMu.Lock()
	delete(c.epochs, vmName)
	c.leaseMu.Unlock()
	delete(c.placement, vmName)
	return nil
}

// LostVM describes a guest that was running on a failed host, with
// enough of its configuration to re-instantiate it elsewhere.
type LostVM struct {
	Name  string
	Mode  toolstack.Mode
	Image guest.Image
}

// FailHost marks a member as dead — a whole-machine failure. Its
// guests are gone, it takes no further placements, and Host/Move
// reject it with ErrHostFailed. The lost VMs' descriptors are returned
// sorted by name, ready for Failover.
func (c *Cluster) FailHost(name string) ([]LostVM, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	h, ok := c.hosts[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownHost, name)
	}
	if c.failed[name] {
		return nil, fmt.Errorf("%w: %q", ErrHostFailed, name)
	}
	c.failed[name] = true
	h.Env.MarkDead() // frozen corpse state is not audited by FsckTracked
	var lost []LostVM
	for _, vm := range h.Env.AllVMs() { // sorted by name
		if c.placement[vm.Name] != name {
			continue
		}
		delete(c.placement, vm.Name)
		lost = append(lost, LostVM{Name: vm.Name, Mode: vm.Mode, Image: vm.Image})
	}
	return lost, nil
}

// Failed reports whether a member has been marked dead.
func (c *Cluster) Failed(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failed[name]
}

// Failover re-instantiates the lost VMs on the surviving members via
// the usual least-loaded placement, after charging the failure
// detection delay. It returns the total recovery time (detection plus
// re-creation) and how many VMs came back; a placement error aborts
// the sweep with the partial count. Failover is idempotent: VMs that
// are already placed again (a concurrent Place, a monitor-driven
// recovery, or a repeated call) are skipped, not errors.
func (c *Cluster) Failover(lost []LostVM) (time.Duration, int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	start := c.Clock.Now()
	c.Clock.Sleep(costs.HostFailureDetect)
	recovered := 0
	for _, l := range lost {
		if _, placed := c.placement[l.Name]; placed {
			continue
		}
		if _, _, err := c.placeLocked(l.Mode, l.Name, l.Image); err != nil {
			return time.Duration(c.Clock.Now().Sub(start)), recovered,
				fmt.Errorf("cluster: failover of %q: %w", l.Name, err)
		}
		recovered++
	}
	return time.Duration(c.Clock.Now().Sub(start)), recovered, nil
}

// HostStat is one member's load summary.
type HostStat struct {
	Name     string
	VMs      int
	MemoryMB float64
	CPU      float64
}

// Stats summarizes every live member in join order.
func (c *Cluster) Stats() []HostStat {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]HostStat, 0, len(c.hostNames))
	for _, name := range c.hostNames {
		if c.failed[name] {
			continue
		}
		h := c.hosts[name]
		out = append(out, HostStat{
			Name:     name,
			VMs:      h.VMs(),
			MemoryMB: float64(h.MemoryUsedBytes()) / (1 << 20),
			CPU:      h.CPUUtilization(),
		})
	}
	return out
}

// Rebalance migrates VMs from the most- to the least-loaded host until
// their VM counts differ by at most one, returning the number of moves
// (a maintenance operation LightVM's 60 ms migrations make routine).
// Only healthy hosts participate on either end.
func (c *Cluster) Rebalance(maxMoves int) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	moves := 0
	for moves < maxMoves {
		order := c.pickLocked()
		if len(order) < 2 {
			return moves, nil
		}
		least, most := order[0], order[len(order)-1]
		if c.hosts[most].VMs()-c.hosts[least].VMs() <= 1 {
			return moves, nil
		}
		// Move an arbitrary (first by name) VM off the hottest host.
		vms := c.hosts[most].Env.AllVMs()
		if len(vms) == 0 {
			return moves, nil
		}
		if _, err := c.moveLocked(vms[0].Name, least); err != nil {
			return moves, err
		}
		moves++
	}
	return moves, nil
}

// grantLeaseLocked bumps the VM's placement epoch and records the new
// owner's claim durably in its intent journal. A no-op until the
// health monitor (and with it the lease fence) is enabled, so
// fault-free timelines are untouched.
func (c *Cluster) grantLeaseLocked(hostName, vmName string, mode toolstack.Mode) {
	if c.health == nil {
		return
	}
	c.hostMode[hostName] = mode
	c.leaseMu.Lock()
	e := c.epochs[vmName] + 1
	c.epochs[vmName] = e
	c.leaseMu.Unlock()
	c.hosts[hostName].Env.GrantLease(vmName, e, mode.UsesStore())
}

// armLeaseLocked attaches the epoch validator to one member's Dom0:
// the fence the toolstack consults on destroy/migrate/scrub. It takes
// only leaseMu, so it is safe from any toolstack path running under
// c.mu.
func (c *Cluster) armLeaseLocked(name string) {
	c.hosts[name].Env.LeaseCheck = func(vmName string, epoch uint64) bool {
		c.leaseMu.Lock()
		defer c.leaseMu.Unlock()
		cur, ok := c.epochs[vmName]
		return ok && epoch == cur
	}
}
