package cluster

import (
	"errors"
	"fmt"
	"sort"
	"testing"

	"lightvm/internal/costs"
	"lightvm/internal/guest"
	"lightvm/internal/sched"
	"lightvm/internal/sim"
	"lightvm/internal/toolstack"
)

func failoverCluster(t *testing.T) *Cluster {
	t.Helper()
	c := New(sim.NewClock())
	machine := sched.Machine{Name: "edge", Cores: 4, Dom0Cores: 1, MemoryGB: 32}
	for i := 0; i < 2; i++ {
		if _, err := c.AddHost(fmt.Sprintf("h%d", i), machine, uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestFailHostReportsLostVMsSorted(t *testing.T) {
	c := failoverCluster(t)
	for i := 0; i < 4; i++ {
		if _, _, err := c.Place(toolstack.ModeChaosNoXS, fmt.Sprintf("vm%d", i), guest.Daytime()); err != nil {
			t.Fatal(err)
		}
	}
	lost, err := c.FailHost("h0")
	if err != nil {
		t.Fatal(err)
	}
	// Least-loaded placement alternates hosts, so each held two.
	if len(lost) != 2 {
		t.Fatalf("lost %d VMs, want 2", len(lost))
	}
	if !sort.SliceIsSorted(lost, func(i, j int) bool { return lost[i].Name < lost[j].Name }) {
		t.Fatal("lost VMs not sorted by name")
	}
	for _, l := range lost {
		if _, err := c.HostOf(l.Name); !errors.Is(err, ErrUnknownVM) {
			t.Fatalf("lost VM %q still placed", l.Name)
		}
	}
	if c.VMs() != 2 {
		t.Fatalf("placement still tracks %d VMs, want 2", c.VMs())
	}
}

func TestFailedHostIsRejectedEverywhere(t *testing.T) {
	c := failoverCluster(t)
	// vm0 lands on h0 (join order), vm1 on h1.
	for i := 0; i < 2; i++ {
		if _, _, err := c.Place(toolstack.ModeChaosNoXS, fmt.Sprintf("vm%d", i), guest.Daytime()); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.FailHost("h0"); err != nil {
		t.Fatal(err)
	}
	if !c.Failed("h0") {
		t.Fatal("h0 not marked failed")
	}
	if _, err := c.Host("h0"); !errors.Is(err, ErrHostFailed) {
		t.Fatalf("Host on failed member: %v, want ErrHostFailed", err)
	}
	if _, err := c.FailHost("h0"); !errors.Is(err, ErrHostFailed) {
		t.Fatalf("double FailHost: %v, want ErrHostFailed", err)
	}
	if _, err := c.Move("vm1", "h0"); !errors.Is(err, ErrHostFailed) {
		t.Fatalf("Move to failed member: %v, want ErrHostFailed", err)
	}
	if stats := c.Stats(); len(stats) != 1 || stats[0].Name != "h1" {
		t.Fatalf("Stats reports %v, want just h1", stats)
	}
	// New placements all land on the survivor.
	if _, host, err := c.Place(toolstack.ModeChaosNoXS, "vm2", guest.Daytime()); err != nil || host != "h1" {
		t.Fatalf("placement after failure: host %q, err %v", host, err)
	}
	// Failing the last live host leaves nowhere to place.
	if _, err := c.FailHost("h1"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Place(toolstack.ModeChaosNoXS, "vm3", guest.Daytime()); !errors.Is(err, ErrNoHosts) {
		t.Fatalf("placement with all hosts dead: %v, want ErrNoHosts", err)
	}
}

func TestFailoverReinstatesLostVMs(t *testing.T) {
	c := failoverCluster(t)
	for i := 0; i < 6; i++ {
		if _, _, err := c.Place(toolstack.ModeChaosNoXS, fmt.Sprintf("vm%d", i), guest.Daytime()); err != nil {
			t.Fatal(err)
		}
	}
	lost, err := c.FailHost("h0")
	if err != nil {
		t.Fatal(err)
	}
	d, recovered, err := c.Failover(lost)
	if err != nil {
		t.Fatal(err)
	}
	if recovered != len(lost) {
		t.Fatalf("recovered %d of %d lost VMs", recovered, len(lost))
	}
	if d < costs.HostFailureDetect {
		t.Fatalf("recovery time %v shorter than the detection delay %v", d, costs.HostFailureDetect)
	}
	if c.VMs() != 6 {
		t.Fatalf("cluster tracks %d VMs after failover, want 6", c.VMs())
	}
	for _, l := range lost {
		host, err := c.HostOf(l.Name)
		if err != nil {
			t.Fatalf("VM %q not re-placed: %v", l.Name, err)
		}
		if host != "h1" {
			t.Fatalf("VM %q recovered onto %q, want survivor h1", l.Name, host)
		}
		h, err := c.Host(host)
		if err != nil {
			t.Fatal(err)
		}
		vm, err := h.Env.VM(l.Name)
		if err != nil {
			t.Fatal(err)
		}
		if !vm.Booted {
			t.Fatalf("recovered VM %q is not running", l.Name)
		}
	}
}
