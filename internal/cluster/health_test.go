package cluster

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"lightvm/internal/guest"
	"lightvm/internal/migrate"
	"lightvm/internal/toolstack"
)

// testHealthCfg is a tight heartbeat config so tests converge in a few
// hundred virtual milliseconds. FlapLimit < 0 disables the circuit
// breaker except where a test exercises it.
func testHealthCfg() HealthConfig {
	return HealthConfig{
		Period:       100 * time.Millisecond,
		SuspectAfter: 250 * time.Millisecond,
		DeadAfter:    600 * time.Millisecond,
		FlapLimit:    -1,
	}
}

// flap silences a host for d starting now, exactly as KindHostFlap
// would (white-box: tests drive the gray plane deterministically
// without an injector).
func flap(c *Cluster, host string, d time.Duration) {
	c.health.hosts[host].flapUntil = c.Clock.Now().Add(d)
}

// TestMoveRejectsFailedSource is the regression test for the failed-
// source hole: Move validated the destination via Host but read the
// source straight out of c.hosts, so a placement that still pointed at
// a dead machine (the gap between failure and failover) could start a
// migration from a corpse.
func TestMoveRejectsFailedSource(t *testing.T) {
	c := newCluster(t, 2)
	if _, _, err := c.Place(toolstack.ModeChaosNoXS, "vm0", guest.ClickOSFirewall()); err != nil {
		t.Fatal(err)
	}
	// Simulate the detection gap directly: the host has died but its
	// placements have not been swept yet.
	c.failed["cell-0"] = true
	if _, err := c.Move("vm0", "cell-1"); !errors.Is(err, ErrHostFailed) {
		t.Fatalf("move off a failed host: got %v, want ErrHostFailed", err)
	}
}

func TestHealthDetectsSilentHostAndFailsOver(t *testing.T) {
	for _, mode := range []toolstack.Mode{toolstack.ModeXL, toolstack.ModeLightVM} {
		t.Run(mode.String(), func(t *testing.T) {
			c := newCluster(t, 2)
			c.EnableHealth(testHealthCfg(), nil)
			img := guest.Daytime()
			if _, host, err := c.Place(mode, "vm0", img); err != nil || host != "cell-0" {
				t.Fatalf("place vm0: host=%q err=%v", host, err)
			}
			if _, _, err := c.Place(mode, "vm1", img); err != nil {
				t.Fatal(err)
			}
			h0, err := c.Host("cell-0")
			if err != nil {
				t.Fatal(err)
			}

			flap(c, "cell-0", 2*time.Second)
			c.Idle(time.Second)
			if got := c.Health("cell-0"); got != HealthDead {
				t.Fatalf("after 1s of silence: health = %v", got)
			}
			if host, _ := c.HostOf("vm0"); host != "cell-1" {
				t.Fatalf("vm0 not failed over: on %q", host)
			}
			rep := c.HealthReport()
			if rep.Failovers == 0 || rep.Recovered != 1 || len(rep.UnavailMS) != 1 {
				t.Fatalf("report after failover: %+v", rep)
			}
			if w := rep.UnavailMS[0]; w < 600 || w > 1200 {
				t.Fatalf("unavailability window %.1f ms, want ~[600,1200]", w)
			}
			// The stale copy is still on the silent host — that is the
			// split-brain hazard the fence exists for.
			if _, err := h0.Env.VM("vm0"); err != nil {
				t.Fatal("stale copy should survive until the host returns")
			}

			// The host returns; the monitor fences it before it rejoins.
			c.Idle(1500 * time.Millisecond)
			if got := c.Health("cell-0"); got != HealthAlive {
				t.Fatalf("after return: health = %v", got)
			}
			if _, err := h0.Env.VM("vm0"); err == nil {
				t.Fatal("stale copy survived the fence scrub")
			}
			rep = c.HealthReport()
			if rep.DoubleStarts != 0 {
				t.Fatalf("double-starts: %d", rep.DoubleStarts)
			}
			if rep.StaleRejected == 0 {
				t.Fatal("fence did no work (StaleRejected = 0)")
			}
			if v := c.FsckLeases(); len(v) > 0 {
				t.Fatalf("lease fsck: %v", v)
			}
			if v := toolstack.Fsck(h0.Env); len(v) > 0 {
				t.Fatalf("fsck of returned host: %v", v)
			}
			// The returned host takes work again.
			if _, host, err := c.Place(mode, "vm2", img); err != nil || host != "cell-0" {
				t.Fatalf("place after return: host=%q err=%v", host, err)
			}
		})
	}
}

func TestSaturationBackpressureAndDeferredFailover(t *testing.T) {
	c := newCluster(t, 1)
	c.EnableHealth(testHealthCfg(), nil)
	mode, img := toolstack.ModeLightVM, guest.Daytime()
	if _, _, err := c.Place(mode, "vm0", img); err != nil {
		t.Fatal(err)
	}

	flap(c, "cell-0", 1500*time.Millisecond)
	c.Idle(time.Second)
	if got := c.Health("cell-0"); got != HealthDead {
		t.Fatalf("health = %v", got)
	}
	// No healthy capacity: placement gets backpressure, not a pile-on.
	if _, _, err := c.Place(mode, "vm1", img); !errors.Is(err, ErrClusterSaturated) {
		t.Fatalf("place into saturated cluster: %v", err)
	}
	// Migrating off a dead-declared host is refused like a failed one.
	if _, err := c.Move("vm0", "cell-0"); !errors.Is(err, ErrHostFailed) {
		t.Fatalf("move off dead-declared host: %v", err)
	}
	rep := c.HealthReport()
	if rep.Deferred == 0 {
		t.Fatalf("failover should have been deferred on saturation: %+v", rep)
	}

	// The host returns still owning vm0 (nobody else could take it):
	// its lease is still current, so service resumes with no re-place
	// and no double-run.
	c.Idle(time.Second)
	if got := c.Health("cell-0"); got != HealthAlive {
		t.Fatalf("after return: health = %v", got)
	}
	if host, _ := c.HostOf("vm0"); host != "cell-0" {
		t.Fatalf("vm0 moved while saturated: on %q", host)
	}
	h0, _ := c.Host("cell-0")
	vm, err := h0.Env.VM("vm0")
	if err != nil || !vm.Booted {
		t.Fatalf("vm0 should still be serving on its owner: %v", err)
	}
	rep = c.HealthReport()
	if rep.DoubleStarts != 0 || rep.Recovered != 0 {
		t.Fatalf("report: %+v", rep)
	}
	if v := c.FsckLeases(); len(v) > 0 {
		t.Fatalf("lease fsck: %v", v)
	}
	if _, _, err := c.Place(mode, "vm1", img); err != nil {
		t.Fatalf("place after recovery: %v", err)
	}
}

func TestPlaceAndRebalanceAvoidSuspects(t *testing.T) {
	c := newCluster(t, 2)
	c.EnableHealth(testHealthCfg(), nil)
	mode, img := toolstack.ModeChaosNoXS, guest.ClickOSFirewall()
	c.health.hosts["cell-0"].state = HealthSuspect
	if _, host, err := c.Place(mode, "fw0", img); err != nil || host != "cell-1" {
		t.Fatalf("place with cell-0 suspect: host=%q err=%v", host, err)
	}
	if _, host, err := c.Place(mode, "fw1", img); err != nil || host != "cell-1" {
		t.Fatalf("second place: host=%q err=%v", host, err)
	}
	// With one candidate left, Rebalance has nothing safe to do.
	if moves, err := c.Rebalance(8); err != nil || moves != 0 {
		t.Fatalf("rebalance onto a suspect: moves=%d err=%v", moves, err)
	}
	c.health.hosts["cell-1"].state = HealthSuspect
	if _, _, err := c.Place(mode, "fw2", img); !errors.Is(err, ErrClusterSaturated) {
		t.Fatalf("place with every host suspect: %v", err)
	}
	// Backpressure is typed, not ErrNoHosts: capacity exists, it is
	// just degraded.
	if _, _, err := c.Place(mode, "fw2", img); errors.Is(err, ErrNoHosts) {
		t.Fatal("saturation misreported as an empty cluster")
	}
}

func TestFlapCircuitBreakerQuarantines(t *testing.T) {
	cfg := testHealthCfg()
	cfg.DeadAfter = time.Second // flaps stay below the dead threshold
	cfg.FlapLimit = 2
	c := newCluster(t, 2)
	c.EnableHealth(cfg, nil)

	flap(c, "cell-0", 350*time.Millisecond)
	c.Idle(500 * time.Millisecond)
	if got := c.Health("cell-0"); got != HealthAlive {
		t.Fatalf("after first flap: health = %v", got)
	}
	flap(c, "cell-0", 350*time.Millisecond)
	c.Idle(500 * time.Millisecond)
	if got := c.Health("cell-0"); got != HealthQuarantined {
		t.Fatalf("after second flap: health = %v", got)
	}
	if rep := c.HealthReport(); rep.Quarantined != 1 {
		t.Fatalf("report: %+v", rep)
	}
	// Quarantined hosts answer heartbeats but take no placements.
	c.Idle(time.Second)
	if got := c.Health("cell-0"); got != HealthQuarantined {
		t.Fatalf("quarantine did not stick: %v", got)
	}
	if _, host, err := c.Place(toolstack.ModeChaosNoXS, "fw0", guest.ClickOSFirewall()); err != nil || host != "cell-1" {
		t.Fatalf("place with cell-0 quarantined: host=%q err=%v", host, err)
	}
}

// TestFailoverIdempotentWithConcurrentPlace interleaves a failover
// sweep with concurrent placements (run under -race in CI): the two
// must serialize without deadlock, every lost VM must come back
// exactly once, and a second Failover of the same lost set must be a
// no-op.
func TestFailoverIdempotentWithConcurrentPlace(t *testing.T) {
	c := newCluster(t, 3)
	mode, img := toolstack.ModeChaosNoXS, guest.ClickOSFirewall()
	for i := 0; i < 6; i++ {
		if _, _, err := c.Place(mode, fmt.Sprintf("fw%d", i), img); err != nil {
			t.Fatal(err)
		}
	}
	lost, err := c.FailHost("cell-0")
	if err != nil {
		t.Fatal(err)
	}
	if len(lost) != 2 {
		t.Fatalf("lost %d VMs, want 2", len(lost))
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if _, _, err := c.Failover(lost); err != nil {
			t.Errorf("failover: %v", err)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			if _, _, err := c.Place(mode, fmt.Sprintf("new%d", i), img); err != nil {
				t.Errorf("concurrent place: %v", err)
			}
		}
	}()
	wg.Wait()
	for _, l := range lost {
		host, err := c.HostOf(l.Name)
		if err != nil {
			t.Fatalf("lost VM %q not recovered: %v", l.Name, err)
		}
		if host == "cell-0" {
			t.Fatalf("lost VM %q re-placed on the failed host", l.Name)
		}
	}
	// Idempotent: everything already placed, nothing to redo.
	if _, rec, err := c.Failover(lost); err != nil || rec != 0 {
		t.Fatalf("second failover: recovered=%d err=%v", rec, err)
	}
}

func TestStaleLeaseFencedAtToolstackBoundary(t *testing.T) {
	c := newCluster(t, 2)
	c.EnableHealth(testHealthCfg(), nil)
	if _, host, err := c.Place(toolstack.ModeXL, "vm0", guest.Daytime()); err != nil || host != "cell-0" {
		t.Fatalf("place: host=%q err=%v", host, err)
	}
	h0, _ := c.Host("cell-0")
	h1, _ := c.Host("cell-1")

	flap(c, "cell-0", 2*time.Second)
	c.Idle(time.Second) // dead declaration + failover to cell-1

	// The partitioned host, unaware, keeps acting on its copy: every
	// lifecycle path is fenced by the stale epoch.
	stale, err := h0.Env.VM("vm0")
	if err != nil {
		t.Fatal(err)
	}
	drv := h0.Env.ForMode(toolstack.ModeXL)
	if err := drv.Destroy(stale); !errors.Is(err, toolstack.ErrStaleLease) {
		t.Fatalf("stale destroy: %v", err)
	}
	if _, _, err := migrate.Migrate(h0.Env, h1.Env, stale); !errors.Is(err, toolstack.ErrStaleLease) {
		t.Fatalf("stale migrate: %v", err)
	}
	rep := c.HealthReport()
	if rep.StaleRejected < 2 {
		t.Fatalf("fence rejections: %+v", rep)
	}
	// On return the copy is scrubbed; both audits come back clean.
	c.Idle(1500 * time.Millisecond)
	if _, err := h0.Env.VM("vm0"); err == nil {
		t.Fatal("stale copy survived the return scrub")
	}
	if rep := c.HealthReport(); rep.DoubleStarts != 0 {
		t.Fatalf("double-starts: %d", rep.DoubleStarts)
	}
	if v := c.FsckLeases(); len(v) > 0 {
		t.Fatalf("lease fsck: %v", v)
	}
	if v := toolstack.Fsck(h0.Env); len(v) > 0 {
		t.Fatalf("fsck: %v", v)
	}
}
