package cluster

import (
	"reflect"
	"testing"
	"time"

	"lightvm/internal/guest"
	"lightvm/internal/sched"
	"lightvm/internal/toolstack"
)

// testMachine is a member of the sharded fleet in these tests.
var testMachine = sched.Machine{Name: "member", Cores: 4, Dom0Cores: 1, MemoryGB: 32}

func testPools() []HostPool {
	return []HostPool{
		{Name: "chaos", Mode: toolstack.ModeLightVM, Hosts: 4, VMs: 120, Image: guest.Daytime()},
		{Name: "xl", Mode: toolstack.ModeXL, Hosts: 2, VMs: 24, Image: guest.Daytime()},
	}
}

func testSpec() ChurnSpec {
	return ChurnSpec{
		Waves:          3,
		WavePeriod:     2 * time.Second,
		MigratePerWave: 2,
		DepartPerWave:  1,
		FailAt:         []time.Duration{3 * time.Second},
		Drain:          30 * time.Second,
	}
}

func runChurn(t *testing.T, workers int, spec ChurnSpec) *ChurnReport {
	t.Helper()
	sc, err := NewSharded(ShardedConfig{Machine: testMachine, Workers: workers, Seed: 42}, testPools())
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	rep, err := sc.RunChurn(spec)
	if err != nil {
		t.Fatalf("RunChurn: %v", err)
	}
	return rep
}

// TestShardedChurnDeterministicAcrossWorkers is the core contract of
// the sharded cluster: the worker count is a wall-clock knob only. The
// full report — per-VM latency series, failover timings, engine window
// and message counts, makespan — must be identical at 1, 2 and 8
// workers.
func TestShardedChurnDeterministicAcrossWorkers(t *testing.T) {
	spec := testSpec()
	base := runChurn(t, 1, spec)
	for _, workers := range []int{2, 8} {
		rep := runChurn(t, workers, spec)
		if !reflect.DeepEqual(base, rep) {
			t.Errorf("workers=%d diverged from workers=1:\n  w1: %+v\n  w%d: %+v",
				workers, base, workers, rep)
		}
	}
}

// TestShardedChurnOutcome checks the workload actually exercised the
// protocol: placements landed, migrations and departures happened, the
// injected host death was detected by heartbeat silence and every lost
// VM came back on a survivor, and the surviving fleet passes the
// cross-layer fsck.
func TestShardedChurnOutcome(t *testing.T) {
	rep := runChurn(t, 2, testSpec())

	if rep.HostsFailed != 1 {
		t.Errorf("HostsFailed = %d, want 1", rep.HostsFailed)
	}
	if rep.Failovers == 0 {
		t.Error("no VMs failed over after the host death")
	}
	if rep.FailoverMS.Len() != rep.Failovers {
		t.Errorf("failover latencies recorded for %d of %d failovers",
			rep.FailoverMS.Len(), rep.Failovers)
	}
	if rep.Unplaced != 0 {
		t.Errorf("%d VMs still in flight at the end of the run", rep.Unplaced)
	}
	if rep.FsckViolated != 0 {
		t.Errorf("fsck found %d violations on surviving hosts", rep.FsckViolated)
	}
	totalVMs, placed, created, migrations := 0, 0, 0, 0
	for _, p := range rep.Pools {
		totalVMs += 0
		placed += p.Placed
		created += p.Created
		migrations += p.Migrations
		if p.CreateMS.Len() != p.Created {
			t.Errorf("pool %s: %d creations but %d latencies", p.Name, p.Created, p.CreateMS.Len())
		}
	}
	_ = totalVMs
	if migrations == 0 {
		t.Error("no live migration completed")
	}
	// Every VM is placed, departed, or was re-created by failover:
	// placed + departures == VMs, created == placed + departures + failovers' extra creations.
	wantVMs := 0
	for _, p := range testPools() {
		wantVMs += p.VMs
	}
	departed := wantVMs - placed
	if departed < 0 {
		t.Errorf("placed %d exceeds fleet size %d", placed, wantVMs)
	}
	maxDeparted := testSpec().Waves * testSpec().DepartPerWave
	if departed > maxDeparted {
		t.Errorf("%d VMs unaccounted for (max %d departures possible)", departed, maxDeparted)
	}
	if created < placed {
		t.Errorf("created %d < placed %d", created, placed)
	}
}

// TestShardedDeferredHeartbeat is the cross-shard reincarnation of the
// nested-advance regression: a heartbeat tick that fires inside a
// toolstack operation (the host's clock advanced from within a create)
// must defer, not report mid-operation state — and the deferral must
// not starve the heartbeat loop into a false death declaration.
func TestShardedDeferredHeartbeat(t *testing.T) {
	pools := []HostPool{
		// xl creates take >100 virtual ms; with a 1 ms heartbeat the
		// tick is guaranteed to land mid-create.
		{Name: "xl", Mode: toolstack.ModeXL, Hosts: 1, VMs: 8, Image: guest.Daytime()},
	}
	sc, err := NewSharded(ShardedConfig{
		Machine:   testMachine,
		Workers:   2,
		Seed:      7,
		Heartbeat: time.Millisecond,
		DeadAfter: time.Minute,
	}, pools)
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	rep, err := sc.RunChurn(ChurnSpec{Waves: 1, WavePeriod: time.Second, Drain: 2 * time.Minute})
	if err != nil {
		t.Fatalf("RunChurn: %v", err)
	}
	if rep.DeferredBeats == 0 {
		t.Error("no heartbeat deferred during nested toolstack operations")
	}
	if rep.HostsFailed != 0 || rep.Failovers != 0 {
		t.Errorf("deferred beats caused a false death: failed=%d failovers=%d",
			rep.HostsFailed, rep.Failovers)
	}
	if rep.Unplaced != 0 || rep.Pools[0].Placed != 8 {
		t.Errorf("placement incomplete: unplaced=%d placed=%d", rep.Unplaced, rep.Pools[0].Placed)
	}
}

// TestShardedChurnRace hammers the cross-shard paths — concurrent
// creates, migration streams, heartbeats and a failover — with a full
// worker pool. Its value is under `go test -race`: any unsynchronized
// access in the mailbox/lookahead handoff or a shard touching another
// shard's state trips the detector.
func TestShardedChurnRace(t *testing.T) {
	pools := []HostPool{
		{Name: "chaos", Mode: toolstack.ModeLightVM, Hosts: 8, VMs: 240, Image: guest.Daytime()},
		{Name: "xl", Mode: toolstack.ModeXL, Hosts: 4, VMs: 40, Image: guest.Daytime()},
	}
	sc, err := NewSharded(ShardedConfig{Machine: testMachine, Workers: 8, Seed: 3}, pools)
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	rep, err := sc.RunChurn(ChurnSpec{
		Waves:          4,
		WavePeriod:     time.Second,
		MigratePerWave: 6,
		DepartPerWave:  2,
		FailAt:         []time.Duration{1500 * time.Millisecond, 2500 * time.Millisecond},
		Drain:          time.Minute,
	})
	if err != nil {
		t.Fatalf("RunChurn: %v", err)
	}
	if rep.Unplaced != 0 {
		t.Errorf("%d VMs still in flight at the end of the run", rep.Unplaced)
	}
	if rep.FsckViolated != 0 {
		t.Errorf("fsck found %d violations", rep.FsckViolated)
	}
	if rep.Engine.Messages == 0 {
		t.Error("no cross-shard messages — the race test exercised nothing")
	}
}
