package cluster

import (
	"fmt"
	"sort"
	"time"

	"lightvm/internal/costs"
	"lightvm/internal/faults"
	"lightvm/internal/sim"
	"lightvm/internal/toolstack"
)

// The health monitor replaces FailHost's omniscience with detection:
// every member heartbeats the controller on the virtual clock, and the
// controller moves it alive→suspect→dead on silence. The gray fault
// kinds (host-slow, partition, host-flap) attack exactly this protocol
// — a slow host's beats arrive late, a partitioned or flapping host's
// not at all — so the monitor can be wrong in both directions: failing
// over a host that was merely slow (a false positive, costed in
// ext-gray) or trusting one that is about to vanish. What keeps wrong
// cheap instead of catastrophic is the lease fence: every dead
// declaration bumps the epochs of the re-placed domains, so a
// declared-dead host that comes back finds its claims stale,
// self-scrubs, and never double-runs a domain.
//
// Determinism: the monitor runs one tick event per period; within a
// tick, hosts are visited in join order and every fault decision comes
// from the injector's per-kind streams, so a (seed, config) pair
// replays byte-identically. Ticks fire while the driving goroutine
// advances the clock under c.mu (see the package comment), so all
// monitor work happens on *Locked state with no extra synchronization.

// HealthState is the monitor's view of one member.
type HealthState int

const (
	// HealthAlive members take placements.
	HealthAlive HealthState = iota
	// HealthSuspect members have been silent past SuspectAfter: they
	// keep their VMs but take no new work (degradation policy).
	HealthSuspect
	// HealthDead members have been silent past DeadAfter: their VMs
	// are failed over under fresh lease epochs.
	HealthDead
	// HealthQuarantined members tripped the flap circuit breaker: they
	// answer heartbeats but are never placed on again.
	HealthQuarantined
)

var healthStateNames = [...]string{"alive", "suspect", "dead", "quarantined"}

func (s HealthState) String() string {
	if s >= 0 && int(s) < len(healthStateNames) {
		return healthStateNames[s]
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// HealthConfig tunes the heartbeat protocol. Zero fields take the
// calibrated defaults from internal/costs.
type HealthConfig struct {
	Period       sim.Duration // heartbeat interval
	SuspectAfter sim.Duration // silence before a member is suspected
	DeadAfter    sim.Duration // silence before a suspect is declared dead
	FlapLimit    int          // suspect/dead recoveries before quarantine; 0 = default, <0 = never
}

func (cfg HealthConfig) withDefaults() HealthConfig {
	if cfg.Period <= 0 {
		cfg.Period = costs.HeartbeatPeriod
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = costs.HeartbeatSuspect
	}
	if cfg.DeadAfter <= 0 {
		cfg.DeadAfter = costs.HeartbeatDead
	}
	if cfg.FlapLimit == 0 {
		cfg.FlapLimit = 3
	}
	return cfg
}

// ctlNode is the controller's slot in the reachability matrix. The NUL
// prefix keeps it out of the host namespace.
const ctlNode = "\x00ctl"

// hostHealth is the monitor's per-member state.
type hostHealth struct {
	state      HealthState
	lastBeat   sim.Time // arrival time of the freshest heartbeat
	downSince  sim.Time // lastBeat at the moment of the dead declaration
	flaps      int      // recoveries from suspect/dead (circuit-breaker input)
	wasDead    bool     // dead-declared and not yet fenced on return
	flapUntil  sim.Time // host-flap: silent until then
	slowUntil  sim.Time // host-slow: dilated until then
	slowFactor float64
}

type healthMonitor struct {
	cfg   HealthConfig
	inj   *faults.Injector
	hosts map[string]*hostHealth
	cut   map[string]sim.Time // reachability matrix: edge key → cut until

	falsePositives int // dead declarations of hosts that were merely slow
	failovers      int // dead declarations (each starts a re-placement sweep)
	recovered      int // VMs re-placed by the monitor
	deferred       int // re-placement attempts deferred on saturation
	doubleStarts   int // fenced copies found still serving after a return scrub
	quarantined    int // circuit-breaker trips
	unavailMS      []float64
}

func (m *healthMonitor) addHost(name string, now sim.Time) {
	m.hosts[name] = &hostHealth{state: HealthAlive, lastBeat: now}
}

// edgeKey canonicalizes an undirected edge of the reachability matrix.
func edgeKey(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + "|" + b
}

// edgeUp reports whether the a↔b edge is currently reachable, healing
// expired cuts as it goes.
func (m *healthMonitor) edgeUp(a, b string, now sim.Time) bool {
	k := edgeKey(a, b)
	until, cutNow := m.cut[k]
	if !cutNow {
		return true
	}
	if now >= until {
		delete(m.cut, k)
		return true
	}
	return false
}

// pickPeer chooses the far end of a new partition edge — the
// controller or another member — deterministically from the kind's
// side stream.
func (m *healthMonitor) pickPeer(names []string, self string) string {
	peers := make([]string, 1, len(names))
	peers[0] = ctlNode
	for _, n := range names {
		if n != self {
			peers = append(peers, n)
		}
	}
	i := int(m.inj.Fraction(faults.KindPartition) * float64(len(peers)))
	if i >= len(peers) {
		i = len(peers) - 1
	}
	return peers[i]
}

// EnableHealth arms the heartbeat monitor and, with it, the lease
// fence on every member (present and future). inj supplies the gray
// fault decisions (KindHostSlow/KindPartition/KindHostFlap); nil is a
// valid, fault-free monitor. From this point on the virtual clock must
// only be advanced through Cluster methods (Idle for pure waiting) so
// tick callbacks run under the cluster lock.
func (c *Cluster) EnableHealth(cfg HealthConfig, inj *faults.Injector) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.health != nil {
		return
	}
	m := &healthMonitor{
		cfg:   cfg.withDefaults(),
		inj:   inj,
		hosts: make(map[string]*hostHealth),
		cut:   make(map[string]sim.Time),
	}
	c.health = m
	now := c.Clock.Now()
	for _, n := range c.hostNames {
		m.addHost(n, now)
		c.armLeaseLocked(n)
	}
	// Grant leases for anything placed before the monitor came up.
	vms := make([]string, 0, len(c.placement))
	for vm := range c.placement {
		vms = append(vms, vm)
	}
	sort.Strings(vms)
	for _, vmName := range vms {
		hostName := c.placement[vmName]
		if vm, err := c.hosts[hostName].Env.VM(vmName); err == nil {
			c.grantLeaseLocked(hostName, vmName, vm.Mode)
		}
	}
	c.Clock.Schedule(now.Add(m.cfg.Period), c.healthTick)
}

// HealthEnabled reports whether the monitor is armed.
func (c *Cluster) HealthEnabled() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.health != nil
}

// Health reports the monitor's view of one member (HealthAlive when
// the monitor is off or the member unknown).
func (c *Cluster) Health(name string) HealthState {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.healthStateLocked(name)
}

func (c *Cluster) healthStateLocked(name string) HealthState {
	if c.health == nil {
		return HealthAlive
	}
	hh, ok := c.health.hosts[name]
	if !ok {
		return HealthAlive
	}
	return hh.state
}

func (c *Cluster) reachableLocked(a, b string) bool {
	if c.health == nil {
		return true
	}
	return c.health.edgeUp(a, b, c.Clock.Now())
}

// chargeSlowLocked applies host-slow degradation to control-plane work
// that just ran on the named hosts: the elapsed interval is re-charged
// at (factor-1), dilating the operation exactly as a sick disk or a
// throttled CPU would. Inert when the monitor is off or nobody is
// slow.
func (c *Cluster) chargeSlowLocked(start sim.Time, names ...string) {
	m := c.health
	if m == nil {
		return
	}
	now := c.Clock.Now()
	factor := 1.0
	for _, n := range names {
		hh := m.hosts[n]
		if hh != nil && now < hh.slowUntil && hh.slowFactor > factor {
			factor = hh.slowFactor
		}
	}
	if factor > 1 {
		c.Clock.Sleep(sim.Duration(float64(now.Sub(start)) * (factor - 1)))
	}
}

// healthTick is the monitor's periodic timer callback. It runs under
// the lock of whichever goroutine is advancing the clock (see the
// package comment), so it works on *Locked state directly. It
// reschedules itself only after the pass completes — failover work
// inside a pass can advance the clock, and rescheduling last keeps
// exactly one tick outstanding.
func (c *Cluster) healthTick() {
	m := c.health
	if m == nil {
		return
	}
	// A tick can fire from a clock advance nested inside a cluster
	// operation (a create sleeping with the shell pool's lock held, a
	// migration mid-copy). Running a pass there could re-enter the very
	// component the operation holds — the failover sweep creates VMs —
	// so the pass defers to the next tick; beats missed while deferred
	// are re-delivered at the head of the next pass, before silence is
	// judged.
	if c.opDepth == 0 {
		c.healthPassLocked()
	}
	c.Clock.Schedule(c.Clock.Now().Add(m.cfg.Period), c.healthTick)
}

// healthPassLocked is one heartbeat round: deliver (or lose) every
// member's beat, then run state transitions — including monitor-driven
// failover, which charges virtual time on the shared timeline like the
// real controller's recovery work would.
func (c *Cluster) healthPassLocked() {
	m := c.health
	now := c.Clock.Now()

	// Phase 1: gray events and heartbeat delivery, in join order.
	for _, n := range c.hostNames {
		if c.failed[n] {
			continue // a real corpse is silent forever
		}
		hh := m.hosts[n]
		// New gray episodes: one decision per kind per beat, drawn from
		// the kind's own stream, so schedules are independent.
		if now >= hh.flapUntil && m.inj.Fire(faults.KindHostFlap) {
			hh.flapUntil = now.Add(costs.GrayFlapMin + m.inj.Jitter(faults.KindHostFlap, costs.GrayFlapExtra))
		}
		if now >= hh.slowUntil && m.inj.Fire(faults.KindHostSlow) {
			hh.slowFactor = costs.GraySlowFactorMin +
				(costs.GraySlowFactorMax-costs.GraySlowFactorMin)*m.inj.Fraction(faults.KindHostSlow)
			hh.slowUntil = now.Add(costs.GraySlowMin + m.inj.Jitter(faults.KindHostSlow, costs.GraySlowExtra))
		}
		if m.inj.Fire(faults.KindPartition) {
			peer := m.pickPeer(c.hostNames, n)
			m.cut[edgeKey(n, peer)] = now.Add(costs.GrayPartitionMin + m.inj.Jitter(faults.KindPartition, costs.GrayPartitionExtra))
		}
		// Heartbeat delivery: flapped hosts are silent, partitioned
		// ones unreachable, slow ones late by (factor-1) periods.
		if now < hh.flapUntil || !m.edgeUp(n, ctlNode, now) {
			continue
		}
		beat := now
		if now < hh.slowUntil {
			beat = now.Add(-sim.Duration(float64(m.cfg.Period) * (hh.slowFactor - 1)))
		}
		if beat > hh.lastBeat {
			hh.lastBeat = beat
		}
	}

	// Phase 2: transitions. Failover below advances the clock; silence
	// is judged against the pass's start for determinism.
	for _, n := range c.hostNames {
		hh := m.hosts[n]
		silence := now.Sub(hh.lastBeat)
		switch {
		case silence >= m.cfg.DeadAfter:
			if hh.state != HealthDead {
				c.declareDeadLocked(n, hh, now)
			} else if c.ownsAnyLocked(n) {
				// Saturation deferred some re-placements; keep trying.
				c.failoverDeadLocked(n)
			}
		case silence >= m.cfg.SuspectAfter:
			if hh.state == HealthAlive {
				hh.state = HealthSuspect
			}
		default:
			if hh.state == HealthSuspect || hh.state == HealthDead {
				c.recoverHostLocked(n, hh)
			}
		}
	}
}

// ownsAnyLocked reports whether any placement still maps to name.
func (c *Cluster) ownsAnyLocked(name string) bool {
	for _, owner := range c.placement {
		if owner == name {
			return true
		}
	}
	return false
}

// declareDeadLocked is the detection event: the member has been silent
// past DeadAfter. Its VMs are failed over under fresh epochs; if the
// member was in fact reachable and beating — merely slow — the
// declaration is counted as a false positive (flapped and partitioned
// members are indistinguishable from dead ones, so they are not).
func (c *Cluster) declareDeadLocked(name string, hh *hostHealth, now sim.Time) {
	m := c.health
	hh.state = HealthDead
	hh.wasDead = true
	hh.downSince = hh.lastBeat
	if !c.failed[name] && now >= hh.flapUntil && m.edgeUp(name, ctlNode, now) {
		m.falsePositives++
	}
	m.failovers++
	c.failoverDeadLocked(name)
}

// failoverDeadLocked re-places every VM the dead-declared member owns,
// in name order. Each successful re-placement bumps the VM's epoch
// (via grantLeaseLocked inside placeLocked), fencing the old copy. On
// saturation the VM stays with the old owner under its old epoch: if
// the host returns, its claim is still current and service resumes —
// better a gray owner than no owner.
func (c *Cluster) failoverDeadLocked(name string) {
	m := c.health
	h := c.hosts[name]
	var vms []string
	for vm, owner := range c.placement {
		if owner == name {
			vms = append(vms, vm)
		}
	}
	sort.Strings(vms)
	down := m.hosts[name].downSince
	for _, vmName := range vms {
		vm, err := h.Env.VM(vmName)
		if err != nil {
			delete(c.placement, vmName)
			continue
		}
		delete(c.placement, vmName)
		if _, _, perr := c.placeLocked(vm.Mode, vmName, vm.Image); perr != nil {
			c.placement[vmName] = name
			m.deferred++
			continue
		}
		m.recovered++
		m.unavailMS = append(m.unavailMS,
			float64(c.Clock.Now().Sub(down))/float64(time.Millisecond))
	}
}

// recoverHostLocked handles a member heartbeating again after being
// suspected or declared dead: the flap circuit breaker decides whether
// it rejoins the placement rotation or is quarantined, and a returning
// dead-declared member is fenced before anything else.
func (c *Cluster) recoverHostLocked(name string, hh *hostHealth) {
	m := c.health
	wasDead := hh.wasDead
	hh.wasDead = false
	hh.flaps++
	if m.cfg.FlapLimit > 0 && hh.flaps >= m.cfg.FlapLimit {
		if hh.state != HealthQuarantined {
			m.quarantined++
		}
		hh.state = HealthQuarantined
	} else {
		hh.state = HealthAlive
	}
	if wasDead {
		c.fenceReturnLocked(name)
	}
}

// fenceReturnLocked is the split-brain endgame: a member the cluster
// declared dead (and failed over) is back. Before it takes any work it
// self-scrubs — journal replay validates each of its lease claims
// against the epoch table and reaps the stale copies (lease.go). The
// audit afterwards counts, rather than assumes away, any fenced copy
// still serving: that count is ext-gray's double-start metric and must
// be zero.
func (c *Cluster) fenceReturnLocked(name string) {
	if c.failed[name] {
		return // a real corpse does not return
	}
	m := c.health
	h := c.hosts[name]
	c.opDepth++
	h.Env.Scrub(c.hostMode[name])
	c.opDepth--
	for _, vm := range h.Env.AllVMs() {
		owner, placed := c.placement[vm.Name]
		if placed && owner != name && vm.Booted {
			m.doubleStarts++
		}
	}
}

// EndGrayWindow closes the gray-fault injection window: episodes
// already under way run to their scheduled end, but the monitor draws
// no new ones. Experiments close the window before their drain phase so
// every cell converges to a steady state the safety audit can judge —
// with injection live, some host is always mid-episode and "post-scrub"
// never arrives.
func (c *Cluster) EndGrayWindow() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.health != nil {
		c.health.inj = nil
	}
}

// HealthReport aggregates the monitor's counters.
type HealthReport struct {
	FalsePositives int       // dead declarations of merely-slow hosts
	Failovers      int       // dead declarations (re-placement sweeps started)
	Recovered      int       // VMs re-placed by the monitor
	Deferred       int       // re-placement attempts deferred on saturation
	DoubleStarts   int       // fenced copies found serving after a return scrub (must be 0)
	Quarantined    int       // flap circuit-breaker trips
	StaleRejected  uint64    // operations the lease fence turned away, cluster-wide
	UnavailMS      []float64 // per-recovered-VM unavailability windows
}

// HealthReport snapshots the monitor's counters (zero value when the
// monitor is off).
func (c *Cluster) HealthReport() HealthReport {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.health
	if m == nil {
		return HealthReport{}
	}
	r := HealthReport{
		FalsePositives: m.falsePositives,
		Failovers:      m.failovers,
		Recovered:      m.recovered,
		Deferred:       m.deferred,
		DoubleStarts:   m.doubleStarts,
		Quarantined:    m.quarantined,
		UnavailMS:      append([]float64(nil), m.unavailMS...),
	}
	for _, n := range c.hostNames {
		r.StaleRejected += c.hosts[n].Env.StaleRejections()
	}
	return r
}

// FsckLeases checks the lease invariants cluster-wide, complementing
// the per-environment toolstack.Fsck: every placement must be backed
// by a current-epoch lease on its owner, and no live member may run a
// domain placed elsewhere (a double-run) or hold a claim for one.
func (c *Cluster) FsckLeases() []toolstack.Violation {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []toolstack.Violation
	add := func(kind, subject, format string, args ...any) {
		out = append(out, toolstack.Violation{
			Layer: "cluster", Kind: kind, Subject: subject,
			Detail: fmt.Sprintf(format, args...),
		})
	}
	if c.health == nil {
		return nil
	}
	vms := make([]string, 0, len(c.placement))
	for vm := range c.placement {
		vms = append(vms, vm)
	}
	sort.Strings(vms)
	c.leaseMu.Lock()
	epochs := make(map[string]uint64, len(c.epochs))
	for k, v := range c.epochs {
		epochs[k] = v
	}
	c.leaseMu.Unlock()
	for _, vmName := range vms {
		owner := c.placement[vmName]
		if c.failed[owner] || c.healthStateLocked(owner) == HealthDead {
			continue // failover pending; audited once it completes
		}
		held, ok := c.hosts[owner].Env.LeaseEpoch(vmName)
		switch {
		case !ok:
			add("placement-without-lease", vmName, "placed on %q with no lease claim", owner)
		case held != epochs[vmName]:
			add("placement-epoch-skew", vmName, "owner %q holds epoch %d, cluster says %d", owner, held, epochs[vmName])
		}
	}
	for _, hostName := range c.hostNames {
		if c.failed[hostName] {
			continue
		}
		e := c.hosts[hostName].Env
		for _, vm := range e.AllVMs() {
			owner, placed := c.placement[vm.Name]
			if placed && owner != hostName && vm.Booted {
				add("double-run", vm.Name, "live on %q but placed on %q", hostName, owner)
			}
			if ep, leased := e.LeaseEpoch(vm.Name); leased && (!placed || owner != hostName) {
				add("stale-claim", vm.Name, "%q claims epoch %d for a domain it does not own", hostName, ep)
			}
		}
	}
	return out
}
