// Sharded cluster: the §7.1 scheduler at datacenter scale on the
// parallel discrete-event core.
//
// Cluster (cluster.go) keeps every host on one shared clock under one
// lock — faithful for a handful of edge machines, but a single global
// event queue serializes the simulation and caps experiments at one
// host's worth of concurrency. Sharded instead gives every simulated
// host its own logical process (sim.Shard): a private clock, a private
// toolstack.Env with the full control plane, and a mailbox. A
// controller process (shard 0) runs the cluster scheduler — placement,
// failover, migration orchestration, health monitoring — and ALL
// cross-host interaction travels as timestamped messages with at least
// costs.ClusterLookahead of latency, which is what lets sim.Engine
// execute host timelines concurrently between synchronization points.
//
// The protocol (every arrow is a sim.Shard.Send):
//
//	controller → host:  create batch, destroy, migrate-out, fence/kill, stop
//	host → controller:  heartbeat, create ack, destroy ack, migrate ack/nack
//	host → host:        checkpoint stream (Save on the source's clock,
//	                    migrate.StreamCost of wire delay, Restore on the
//	                    destination's clock)
//
// The controller schedules against its *view* of the fleet — VM counts
// it maintains from acks, liveness it infers from heartbeat silence —
// never by peeking at host state. Failure recovery is fenced the same
// way Cluster's lease plane fences it: a host declared dead is sent a
// kill (idempotent if it really is dead), re-placement waits two
// lookaheads so the fence provably lands first, and every command
// carries the VM's placement epoch so a stale ack (the "dead" host
// answering after failover) is detected and the orphan reaped instead
// of double-counted.
//
// Determinism is the contract: the controller's decisions depend only
// on its own seeded RNG and the canonical message delivery order, and
// host work depends only on each host's private state, so the same
// seed produces byte-identical results at every engine worker count.
// ext-cluster builds its headline figure on exactly that property.
package cluster

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"lightvm/internal/core"
	"lightvm/internal/costs"
	"lightvm/internal/guest"
	"lightvm/internal/metrics"
	"lightvm/internal/migrate"
	"lightvm/internal/sched"
	"lightvm/internal/sim"
	"lightvm/internal/toolstack"
)

// HostPool is one homogeneous slice of the fleet: n hosts running one
// toolstack mode, populated with VMs of one image.
type HostPool struct {
	Name  string
	Mode  toolstack.Mode
	Hosts int
	VMs   int
	Image guest.Image
}

// ShardedConfig sizes the sharded cluster.
type ShardedConfig struct {
	// Machine is the per-host hardware (every member is identical).
	Machine sched.Machine
	// Workers bounds the engine's worker goroutines (the shard-count
	// sweep dimension; results are identical for every value). 0 = 1.
	Workers int
	// Seed drives the controller's churn decisions and each host's
	// stochastic behaviour.
	Seed uint64
	// Lookahead overrides costs.ClusterLookahead (tests only).
	Lookahead time.Duration
	// Heartbeat overrides costs.HeartbeatPeriod (tests only).
	Heartbeat time.Duration
	// DeadAfter overrides costs.HeartbeatDead (tests only).
	DeadAfter time.Duration
}

// ChurnSpec is the deterministic workload program RunChurn executes.
type ChurnSpec struct {
	// Waves is the number of arrival rounds; each pool's VMs are
	// placed in equal batches across them, WavePeriod apart.
	Waves int
	// WavePeriod is the virtual time between arrival rounds.
	WavePeriod time.Duration
	// MigratePerWave live-migrates this many running VMs per wave
	// (handover churn), picked by the controller's RNG.
	MigratePerWave int
	// DepartPerWave destroys this many running VMs per wave.
	DepartPerWave int
	// FailAt lists virtual times at which one random live host dies a
	// whole-machine death; recovery goes through heartbeat detection.
	FailAt []time.Duration
	// Drain is the extra settle time after the last wave before the
	// run is forcibly stopped even if VMs are still in flight.
	Drain time.Duration
}

// vm placement states (controller view).
const (
	vmNone      uint8 = iota // id not yet assigned
	vmPlacing                // create command in flight
	vmPlaced                 // running, ack received
	vmMigrating              // checkpoint stream in flight
	vmDeparting              // destroy command in flight
	vmGone                   // destroyed
)

// PoolChurn is one pool's slice of a ChurnReport.
type PoolChurn struct {
	Name       string
	Hosts      int
	Placed     int // VMs running at the end of the run
	Created    int // successful creations (initial + failover)
	Migrations int
	CreateMS   metrics.Series // per-creation latency (create+boot), ms
	MigrateMS  metrics.Series // per-handover latency (save+wire+restore), ms
}

// ChurnReport is RunChurn's deterministic result.
type ChurnReport struct {
	Pools      []PoolChurn
	FailoverMS metrics.Series // per-VM unavailability across host failures, ms

	HostsFailed   int    // injected whole-machine failures
	Failovers     int    // VMs re-placed after a death declaration
	Fenced        int    // stale acks detected and orphans reaped
	Saturated     int    // placements parked because no host had room
	Unplaced      int    // VMs still not running at the forced stop
	DeferredBeats uint64 // heartbeats skipped inside nested host ops
	FsckViolated  int    // cross-layer invariant violations (want 0)

	Engine     sim.EngineStats
	MakespanMS float64
}

// Sharded is a cluster of host logical processes plus a controller.
type Sharded struct {
	cfg       ShardedConfig
	eng       *sim.Engine
	ctl       *shardCtl
	agents    []*hostAgent
	lookahead time.Duration
	heartbeat time.Duration
	deadAfter time.Duration
}

// poolState is the controller's per-pool bookkeeping.
type poolState struct {
	HostPool
	firstHost int // global host index of the pool's first member
	firstVM   uint32
	nextVM    uint32 // next id to assign in the initial waves
	heap      []uint64 // packed (count<<32 | gidx) min-heap, lazy entries
	report    PoolChurn
}

// shardCtl is the controller logical process (shard 0). Everything in
// it is touched only from shard-0 event handlers.
type shardCtl struct {
	sc    *Sharded
	shard *sim.Shard
	rng   *sim.RNG
	spec  ChurnSpec
	pools []*poolState

	// Per-host view, indexed by global host index.
	count    []int32
	alive    []bool
	full     []bool
	lastBeat []sim.Time
	poolOf   []uint8

	// Per-VM view, indexed by id. vmFrom is the migration source of a
	// vmMigrating VM (vmHost already points at the destination); it is
	// only meaningful while the state is vmMigrating.
	vmHost  []int32
	vmPool  []uint8
	vmState []uint8
	vmEpoch []uint32
	vmFrom  []int32

	// failedAt records injected failure times for the unavailability
	// metric; vmFailedAt tags in-flight failover re-placements.
	failedAt   map[int]sim.Time
	vmFailedAt map[uint32]sim.Time

	pending  int // VMs in a transient state (quiesce condition)
	satQueue []uint32
	stopped  bool
	wavesRun int
	wavesEnd sim.Time
	report   ChurnReport

	// scratch for batch grouping, reused across waves.
	batchHosts []int32
	batchIDs   map[int32][]uint32
}

// hostAgent is one host logical process: the full simulated machine
// plus the message handlers of the cluster protocol. Only its own
// shard's handlers touch it.
type hostAgent struct {
	sc    *Sharded
	shard *sim.Shard
	host  *core.Host
	gidx  int
	mode  toolstack.Mode
	img   guest.Image

	flavorReady bool
	// opDepth counts toolstack operations in progress on this host.
	// The heartbeat tick can fire from a clock advance nested inside
	// one (a create sleeping mid-boot, a restore loading pages);
	// reporting from there would read toolstack state the operation is
	// mid-way through mutating, so the beat defers to the next tick —
	// the cross-shard reincarnation of Cluster.healthTick's opDepth
	// guard.
	opDepth       int
	deferredBeats uint64
	dead          bool
	stopped       bool
	nameBuf       []byte

	// busy/workq serialize env-touching commands. Batch stepping (see
	// createBatch) deliberately returns to the event loop between
	// creates so fences and beats stay timely — which means a command
	// message can fire from a clock advance nested inside another
	// toolstack operation. Reentering the env there would corrupt it
	// (or self-deadlock on its locks), so every command funnels
	// through exec's one-at-a-time queue instead.
	busy  bool
	workq []func()
}

// exec runs op now if the host is idle, otherwise queues it behind the
// operation in progress. Queue order is arrival order, which is itself
// deterministic (nested firing follows the canonical delivery order).
func (a *hostAgent) exec(op func()) {
	a.workq = append(a.workq, op)
	if a.busy {
		return
	}
	a.busy = true
	for len(a.workq) > 0 {
		next := a.workq[0]
		copy(a.workq, a.workq[1:])
		a.workq[len(a.workq)-1] = nil
		a.workq = a.workq[:len(a.workq)-1]
		next()
	}
	a.busy = false
}

// NewSharded builds the engine, the controller and one agent per host.
func NewSharded(cfg ShardedConfig, pools []HostPool) (*Sharded, error) {
	if len(pools) == 0 {
		return nil, fmt.Errorf("cluster: sharded needs at least one pool")
	}
	totalHosts := 0
	totalVMs := uint32(0)
	for _, p := range pools {
		if p.Hosts <= 0 || p.VMs < 0 {
			return nil, fmt.Errorf("cluster: pool %q needs hosts > 0", p.Name)
		}
		totalHosts += p.Hosts
		totalVMs += uint32(p.VMs)
	}
	sc := &Sharded{
		cfg:       cfg,
		lookahead: cfg.Lookahead,
		heartbeat: cfg.Heartbeat,
		deadAfter: cfg.DeadAfter,
	}
	if sc.lookahead <= 0 {
		sc.lookahead = costs.ClusterLookahead
	}
	if sc.heartbeat <= 0 {
		sc.heartbeat = costs.HeartbeatPeriod
	}
	if sc.deadAfter <= 0 {
		sc.deadAfter = costs.HeartbeatDead
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	sc.eng = sim.NewEngine(totalHosts+1, workers, sc.lookahead)

	ctl := &shardCtl{
		sc:         sc,
		shard:      sc.eng.Shard(0),
		rng:        sim.NewRNG(cfg.Seed),
		count:      make([]int32, totalHosts),
		alive:      make([]bool, totalHosts),
		full:       make([]bool, totalHosts),
		lastBeat:   make([]sim.Time, totalHosts),
		poolOf:     make([]uint8, totalHosts),
		vmHost:     make([]int32, totalVMs),
		vmPool:     make([]uint8, totalVMs),
		vmState:    make([]uint8, totalVMs),
		vmEpoch:    make([]uint32, totalVMs),
		vmFrom:     make([]int32, totalVMs),
		failedAt:   make(map[int]sim.Time),
		vmFailedAt: make(map[uint32]sim.Time),
		batchIDs:   make(map[int32][]uint32),
	}
	for i := range ctl.vmHost {
		ctl.vmHost[i] = -1
	}
	sc.ctl = ctl

	sc.agents = make([]*hostAgent, totalHosts)
	g := 0
	vmBase := uint32(0)
	for pi, p := range pools {
		ps := &poolState{HostPool: p, firstHost: g, firstVM: vmBase, nextVM: vmBase}
		ps.report.Name = p.Name
		ps.report.Hosts = p.Hosts
		ps.report.CreateMS.Values = make([]float64, 0, p.VMs)
		ctl.pools = append(ctl.pools, ps)
		for h := 0; h < p.Hosts; h++ {
			shard := sc.eng.Shard(g + 1)
			host, err := core.NewHostOn(shard.Clock(), cfg.Machine, cfg.Seed+uint64(g)*0x9e37+1)
			if err != nil {
				return nil, fmt.Errorf("cluster: sharded host %d: %w", g, err)
			}
			sc.agents[g] = &hostAgent{
				sc: sc, shard: shard, host: host, gidx: g,
				mode: p.Mode, img: p.Image,
			}
			ctl.alive[g] = true
			ctl.poolOf[g] = uint8(pi)
			ps.pushHost(g, 0)
			g++
		}
		vmBase += uint32(p.VMs)
	}
	return sc, nil
}

// Engine exposes the underlying engine (stats, shard handles) for
// tests and the experiment harness.
func (sc *Sharded) Engine() *sim.Engine { return sc.eng }

// ---------------------------------------------------------------------------
// Controller: placement heap
// ---------------------------------------------------------------------------

// The per-pool heap holds (count, host) keys packed into a uint64 so
// least-loaded-first with host-index tie-break is a single integer
// compare. Entries are lazy: count changes and deaths do not search
// the heap, they just make old entries stale; pop discards any entry
// whose packed count disagrees with the live view.

func packLoad(count int32, gidx int) uint64 { return uint64(count)<<32 | uint64(uint32(gidx)) }

func (ps *poolState) pushHost(gidx int, count int32) {
	ps.heap = append(ps.heap, packLoad(count, gidx))
	i := len(ps.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if ps.heap[parent] <= ps.heap[i] {
			break
		}
		ps.heap[parent], ps.heap[i] = ps.heap[i], ps.heap[parent]
		i = parent
	}
}

func (ps *poolState) popHost() (uint64, bool) {
	if len(ps.heap) == 0 {
		return 0, false
	}
	top := ps.heap[0]
	last := len(ps.heap) - 1
	ps.heap[0] = ps.heap[last]
	ps.heap = ps.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && ps.heap[l] < ps.heap[small] {
			small = l
		}
		if r < last && ps.heap[r] < ps.heap[small] {
			small = r
		}
		if small == i {
			break
		}
		ps.heap[i], ps.heap[small] = ps.heap[small], ps.heap[i]
		i = small
	}
	return top, true
}

// pickHost returns the least-loaded live host of the pool (excluding
// skip; pass -1 for none), or -1 when the pool is saturated. The
// chosen host's view count is incremented and re-pushed.
func (c *shardCtl) pickHost(ps *poolState, skip int) int {
	var heldKey uint64
	held := false
	chosen := -1
	for {
		key, ok := ps.popHost()
		if !ok {
			break
		}
		gidx := int(uint32(key))
		cnt := int32(key >> 32)
		if !c.alive[gidx] || c.full[gidx] || cnt != c.count[gidx] {
			continue // stale or unusable entry: drop it
		}
		if gidx == skip {
			// At most one live entry can be skip; park it and re-insert
			// after the pick.
			heldKey, held = key, true
			continue
		}
		c.count[gidx]++
		ps.pushHost(gidx, c.count[gidx])
		chosen = gidx
		break
	}
	if held {
		ps.pushHost(int(uint32(heldKey)), int32(heldKey>>32))
	}
	return chosen
}

// unreserve gives a slot back to a host's view count (departure,
// failed create, cancelled migration). It must push a fresh heap entry
// — the decrement just made every existing entry for the host stale,
// and a host with only stale entries silently drops out of placement.
func (c *shardCtl) unreserve(g int) {
	c.count[g]--
	if c.alive[g] {
		c.pools[c.poolOf[g]].pushHost(g, c.count[g])
	}
}

// ---------------------------------------------------------------------------
// Controller: state transitions
// ---------------------------------------------------------------------------

// setState moves a VM between placement states, maintaining the
// transient-VM counter that gates shutdown.
func (c *shardCtl) setState(id uint32, to uint8) {
	from := c.vmState[id]
	if transient(from) {
		c.pending--
	}
	if transient(to) {
		c.pending++
	}
	c.vmState[id] = to
}

func transient(s uint8) bool { return s == vmPlacing || s == vmMigrating || s == vmDeparting }

// ---------------------------------------------------------------------------
// Controller: workload program
// ---------------------------------------------------------------------------

// RunChurn executes the spec and returns the deterministic report.
func (sc *Sharded) RunChurn(spec ChurnSpec) (*ChurnReport, error) {
	if spec.Waves <= 0 || spec.WavePeriod <= 0 {
		return nil, fmt.Errorf("cluster: churn needs waves and a wave period")
	}
	if spec.Drain <= 0 {
		spec.Drain = 10 * time.Second
	}
	c := sc.ctl
	c.spec = spec
	clk := c.shard.Clock()

	// Arrival waves, offset past t=0 so the first heartbeats land
	// before the first placement decisions.
	for w := 0; w < spec.Waves; w++ {
		at := sim.Time(0).Add(sc.heartbeat/2 + time.Duration(w)*spec.WavePeriod)
		clk.Schedule(at, c.wave)
	}
	c.wavesEnd = sim.Time(0).Add(sc.heartbeat/2 + time.Duration(spec.Waves)*spec.WavePeriod)

	// Host failures.
	for _, at := range spec.FailAt {
		clk.Schedule(sim.Time(0).Add(at), c.failRandomHost)
	}

	// Heartbeats: every host beats on a shared cadence (aligned beats
	// collapse into one engine window instead of a thousand), and the
	// controller scans for silence on the same period, offset so beats
	// land first.
	for _, a := range sc.agents {
		a.shard.Clock().Schedule(sim.Time(0).Add(sc.heartbeat), a.heartbeatTick)
	}
	clk.Schedule(sim.Time(0).Add(sc.heartbeat+sc.heartbeat/2), c.healthTick)

	// Shutdown: poll for quiescence once the waves are done; force a
	// stop at the drain deadline.
	clk.Schedule(c.wavesEnd, c.quiescePoll)

	c.report.Engine = sc.eng.Run()
	return sc.harvest()
}

// wave is one arrival round: place the next batch of every pool's VMs,
// then inject handover and departure churn.
func (c *shardCtl) wave() {
	if c.stopped {
		return
	}
	c.wavesRun++
	for pi, ps := range c.pools {
		remaining := ps.firstVM + uint32(ps.VMs) - ps.nextVM
		batch := uint32(ps.VMs / c.spec.Waves)
		if batch == 0 {
			batch = 1
		}
		if batch > remaining || c.wavesRun == c.spec.Waves {
			batch = remaining // the last wave sweeps up the remainder
		}
		for k := uint32(0); k < batch; k++ {
			id := ps.nextVM
			ps.nextVM++
			c.vmPool[id] = uint8(pi)
			c.placeVM(id)
		}
	}
	c.flushBatches()
	for i := 0; i < c.spec.MigratePerWave; i++ {
		c.migrateRandom()
	}
	for i := 0; i < c.spec.DepartPerWave; i++ {
		c.departRandom()
	}
}

// placeVM assigns a host from the VM's pool and stages the create in
// the per-host batch buffer (flushBatches sends them).
func (c *shardCtl) placeVM(id uint32) {
	ps := c.pools[c.vmPool[id]]
	gidx := c.pickHost(ps, -1)
	if gidx < 0 {
		c.report.Saturated++
		c.satQueue = append(c.satQueue, id)
		c.setState(id, vmPlacing) // transient: parked, retried on ticks
		c.vmHost[id] = -1
		return
	}
	c.vmHost[id] = int32(gidx)
	c.setState(id, vmPlacing)
	h := int32(gidx)
	if _, seen := c.batchIDs[h]; !seen {
		c.batchHosts = append(c.batchHosts, h)
	}
	c.batchIDs[h] = append(c.batchIDs[h], id)
}

// flushBatches ships the staged creates, one message per host, in
// ascending host order (send order is part of the deterministic
// delivery order).
func (c *shardCtl) flushBatches() {
	if len(c.batchHosts) == 0 {
		return
	}
	sort.Slice(c.batchHosts, func(i, j int) bool { return c.batchHosts[i] < c.batchHosts[j] })
	for _, h := range c.batchHosts {
		ids := c.batchIDs[h]
		delete(c.batchIDs, h)
		epochs := make([]uint32, len(ids))
		for i, id := range ids {
			epochs[i] = c.vmEpoch[id]
		}
		agent := c.sc.agents[h]
		c.shard.Send(agent.shard.ID(), c.sc.lookahead, func() {
			agent.createBatch(ids, epochs)
		})
	}
	c.batchHosts = c.batchHosts[:0]
}

// migrateRandom picks a running VM and live-migrates it to the
// least-loaded other host of its pool — the §7.1 subscriber handover.
func (c *shardCtl) migrateRandom() {
	id, ok := c.pickRunningVM()
	if !ok {
		return
	}
	ps := c.pools[c.vmPool[id]]
	src := int(c.vmHost[id])
	dst := c.pickHost(ps, src)
	if dst < 0 {
		c.report.Saturated++
		return
	}
	c.unreserve(src)
	c.setState(id, vmMigrating)
	c.vmHost[id] = int32(dst)
	c.vmFrom[id] = int32(src)
	epoch := c.vmEpoch[id]
	srcAgent, dstAgent := c.sc.agents[src], c.sc.agents[dst]
	c.shard.Send(srcAgent.shard.ID(), c.sc.lookahead, func() {
		srcAgent.migrateOut(id, epoch, dstAgent)
	})
}

// departRandom destroys a running VM (the subscriber leaving the
// cell), exercising teardown under churn.
func (c *shardCtl) departRandom() {
	id, ok := c.pickRunningVM()
	if !ok {
		return
	}
	gidx := int(c.vmHost[id])
	c.full[gidx] = false
	c.unreserve(gidx)
	c.setState(id, vmDeparting)
	epoch := c.vmEpoch[id]
	agent := c.sc.agents[gidx]
	c.shard.Send(agent.shard.ID(), c.sc.lookahead, func() {
		agent.destroyVM(id, epoch)
	})
}

// pickRunningVM draws uniformly from the assigned id space until it
// hits a placed VM (bounded attempts keep the draw cheap under heavy
// churn).
func (c *shardCtl) pickRunningVM() (uint32, bool) {
	total := uint32(0)
	for _, ps := range c.pools {
		total += ps.nextVM - ps.firstVM
	}
	if total == 0 {
		return 0, false
	}
	for attempt := 0; attempt < 16; attempt++ {
		k := uint32(c.rng.Intn(int(total)))
		var id uint32
		for _, ps := range c.pools {
			span := ps.nextVM - ps.firstVM
			if k < span {
				id = ps.firstVM + k
				break
			}
			k -= span
		}
		if c.vmState[id] == vmPlaced && c.alive[c.vmHost[id]] {
			return id, true
		}
	}
	return 0, false
}

// failRandomHost kills one random live member — the whole-machine
// failure of §7.1. The controller's scheduler side learns of it only
// through heartbeat silence.
func (c *shardCtl) failRandomHost() {
	if c.stopped {
		return
	}
	var live []int
	for g, ok := range c.alive {
		if ok {
			live = append(live, g)
		}
	}
	if len(live) <= 1 {
		return
	}
	victim := live[c.rng.Intn(len(live))]
	c.failedAt[victim] = c.shard.Clock().Now()
	c.report.HostsFailed++
	agent := c.sc.agents[victim]
	c.shard.Send(agent.shard.ID(), c.sc.lookahead, func() { agent.kill() })
}

// healthTick scans for heartbeat silence, declares dead members, and
// retries saturated placements. It reschedules itself until shutdown.
func (c *shardCtl) healthTick() {
	if c.stopped {
		return
	}
	now := c.shard.Clock().Now()
	for g := range c.alive {
		if !c.alive[g] {
			continue
		}
		if now.Sub(c.lastBeat[g]) > c.sc.deadAfter {
			c.declareDead(g, now)
		}
	}
	if len(c.satQueue) > 0 {
		retry := c.satQueue
		c.satQueue = nil
		for _, id := range retry {
			if c.vmState[id] == vmPlacing && c.vmHost[id] < 0 {
				c.setState(id, vmNone) // placeVM re-enters the transient state
				c.placeVM(id)
			}
		}
		c.flushBatches()
	}
	c.shard.Clock().After(c.sc.heartbeat, c.healthTick)
}

// declareDead fences a silent member and re-places everything the view
// maps to it. The fence (kill) is sent before any re-placement and the
// re-place waits two lookaheads, so by the time a replacement can boot
// the old copy is provably dead — the message-passing version of the
// lease fence's no-double-run guarantee. Stale acks from commands the
// host completed before dying are caught by the epoch bump.
func (c *shardCtl) declareDead(g int, now sim.Time) {
	c.alive[g] = false
	agent := c.sc.agents[g]
	c.shard.Send(agent.shard.ID(), c.sc.lookahead, func() { agent.kill() })
	failTime, injected := c.failedAt[g]
	if !injected {
		failTime = now
	}
	var lost []uint32
	for id := range c.vmState {
		st := c.vmState[id]
		if st == vmMigrating && c.vmHost[id] != int32(g) && c.vmFrom[id] == int32(g) {
			// The handover's source died: the checkpoint stream will
			// never ship (or arrives stale). Un-reserve the destination
			// and re-place fresh.
			c.unreserve(int(c.vmHost[id]))
			lost = append(lost, uint32(id))
			continue
		}
		if c.vmHost[id] != int32(g) {
			continue
		}
		switch st {
		case vmDeparting:
			// The departure completes with the host's death; don't
			// resurrect a subscriber who already left.
			c.setState(uint32(id), vmGone)
		case vmPlaced, vmPlacing, vmMigrating:
			lost = append(lost, uint32(id))
		}
	}
	for _, id := range lost {
		c.vmEpoch[id]++
		c.setState(id, vmPlacing)
		c.vmHost[id] = -1
		c.vmFailedAt[id] = failTime
	}
	c.report.Failovers += len(lost)
	// Re-place after the fence has provably landed.
	c.shard.Clock().After(2*c.sc.lookahead, func() {
		for _, id := range lost {
			if c.vmState[id] == vmPlacing && c.vmHost[id] < 0 {
				c.setState(id, vmNone)
				c.placeVM(id)
			}
		}
		c.flushBatches()
	})
}

// quiescePoll stops the run once every VM has settled (or at the drain
// deadline, whichever comes first).
func (c *shardCtl) quiescePoll() {
	if c.stopped {
		return
	}
	now := c.shard.Clock().Now()
	deadline := c.wavesEnd.Add(c.spec.Drain)
	if c.pending == 0 || now >= deadline {
		c.stopAll()
		return
	}
	c.shard.Clock().After(c.sc.heartbeat, c.quiescePoll)
}

// stopAll broadcasts the stop: hosts cancel their heartbeat loops, the
// controller cancels its ticks, and the engine drains to quiescence.
func (c *shardCtl) stopAll() {
	c.stopped = true
	for _, a := range c.sc.agents {
		agent := a
		c.shard.Send(agent.shard.ID(), c.sc.lookahead, func() { agent.stop() })
	}
}

// ---------------------------------------------------------------------------
// Controller: ack handlers (run on shard 0 via host Sends)
// ---------------------------------------------------------------------------

// onBeat records a member's heartbeat.
func (c *shardCtl) onBeat(g int, sentAt sim.Time) {
	if sentAt > c.lastBeat[g] {
		c.lastBeat[g] = sentAt
	}
}

// onCreateAck settles a create batch: ok ids become placed, failed ids
// mark the host full and re-place elsewhere, stale ids (epoch moved —
// the VM was failed over while the command was in flight) get their
// orphan reaped on the acking host.
func (c *shardCtl) onCreateAck(g int, ids []uint32, epochs []uint32, latMS []float64, failed []bool) {
	agent := c.sc.agents[g]
	ackTime := c.shard.Clock().Now()
	li := 0
	for i, id := range ids {
		if epochs[i] != c.vmEpoch[id] {
			// Stale: the controller re-owned this VM while the create
			// was in flight. Reap the orphan copy.
			if !failed[i] {
				li++
				c.report.Fenced++
				c.shard.Send(agent.shard.ID(), c.sc.lookahead, func() { agent.reap(id) })
			}
			continue
		}
		if failed[i] {
			c.full[g] = true
			c.unreserve(g)
			c.setState(id, vmNone)
			c.placeVM(id)
			continue
		}
		lat := latMS[li]
		li++
		if c.vmState[id] != vmPlacing {
			continue // departed/failed-over meanwhile with same epoch: impossible, but stay safe
		}
		c.setState(id, vmPlaced)
		ps := c.pools[c.vmPool[id]]
		ps.report.Created++
		ps.report.CreateMS.Add(lat)
		if t0, ok := c.vmFailedAt[id]; ok {
			c.report.FailoverMS.Add(float64(ackTime.Sub(t0)) / float64(time.Millisecond))
			delete(c.vmFailedAt, id)
		}
	}
	c.flushBatches()
}

// onDestroyAck settles a departure.
func (c *shardCtl) onDestroyAck(id uint32, epoch uint32) {
	if epoch != c.vmEpoch[id] || c.vmState[id] != vmDeparting {
		return
	}
	c.setState(id, vmGone)
}

// onMigrateAck settles a handover: the destination restored the
// checkpoint at doneAt; t0 is when the source began the save.
func (c *shardCtl) onMigrateAck(dstG int, id uint32, epoch uint32, t0, doneAt sim.Time) {
	agent := c.sc.agents[dstG]
	if epoch != c.vmEpoch[id] || c.vmState[id] != vmMigrating {
		c.report.Fenced++
		c.shard.Send(agent.shard.ID(), c.sc.lookahead, func() { agent.reap(id) })
		return
	}
	c.setState(id, vmPlaced)
	ps := c.pools[c.vmPool[id]]
	ps.report.Migrations++
	ps.report.MigrateMS.Add(float64(doneAt.Sub(t0)) / float64(time.Millisecond))
}

// onMigrateNack handles a handover that could not even start (source
// lost the VM): the VM is re-placed fresh.
func (c *shardCtl) onMigrateNack(id uint32, epoch uint32) {
	if epoch != c.vmEpoch[id] || c.vmState[id] != vmMigrating {
		return
	}
	c.vmEpoch[id]++
	c.unreserve(int(c.vmHost[id])) // give the destination its slot back
	c.setState(id, vmNone)
	c.placeVM(id)
	c.flushBatches()
}

// ---------------------------------------------------------------------------
// Host agent handlers (run on the host's shard)
// ---------------------------------------------------------------------------

// vmName renders the canonical VM name for an id (pool prefix + id).
func (a *hostAgent) vmName(id uint32) string {
	a.nameBuf = append(a.nameBuf[:0], 'v')
	a.nameBuf = strconv.AppendUint(a.nameBuf, uint64(id), 10)
	return string(a.nameBuf)
}

// heartbeatTick is the host's periodic report. The liveness ping
// always goes out — it is served below the toolstack (a raw socket on
// the member's management interface), so a busy control plane must not
// look like a dead machine: a host mid-way through a 24-VM failover
// batch would otherwise silently miss DeadAfter and get its whole pool
// declared dead. Only the toolstack *state snapshot* defers when the
// tick fires from a clock advance nested inside an operation (see
// opDepth) — reporting from there would read structures the operation
// is mid-way through mutating.
func (a *hostAgent) heartbeatTick() {
	if a.dead || a.stopped {
		return // no reschedule: the loop ends here
	}
	if a.opDepth > 0 {
		a.deferredBeats++ // snapshot deferred; the ping below still goes
	}
	now := a.shard.Clock().Now()
	g := a.gidx
	ctl := a.sc.ctl
	a.shard.Send(0, a.sc.lookahead, func() { ctl.onBeat(g, now) })
	a.shard.Clock().After(a.sc.heartbeat, a.heartbeatTick)
}

// createBatch boots a batch of VMs and acks the controller with
// per-VM creation latencies (virtual ms) and failures.
func (a *hostAgent) createBatch(ids []uint32, epochs []uint32) {
	a.exec(func() { a.startCreateBatch(ids, epochs) })
}

func (a *hostAgent) startCreateBatch(ids []uint32, epochs []uint32) {
	if a.dead || a.stopped {
		return // silence; the controller recovers via failover
	}
	clk := a.shard.Clock()
	lats := make([]float64, 0, len(ids))
	failed := make([]bool, len(ids))
	if !a.flavorReady {
		a.flavorReady = true
		if err := a.host.EnsureFlavor(a.img, a.mode); err != nil {
			for i := range failed {
				failed[i] = true
			}
			a.ackCreates(ids, epochs, lats, failed)
			return
		}
	}
	// One create per clock event, chained: a batch of hundreds of xl
	// creates spans minutes of virtual time, and running it inside a
	// single handler would make the host catatonic for that span —
	// heartbeats would bunch up at the next window barrier and a fence
	// kill could not land between creates, so the controller would see
	// a live-looking host long after it died. Stepping the batch keeps
	// the host responsive between creates while each individual create
	// still holds opDepth (its boot sleeps defer the state snapshot).
	i := 0
	var step func()
	step = func() {
		if a.dead || a.stopped {
			return // died mid-batch: no ack, failover re-owns the rest
		}
		if i == len(ids) {
			_ = a.host.Replenish() // the chaos daemon's background beat
			a.ackCreates(ids, epochs, lats, failed)
			return
		}
		a.opDepth++
		t0 := clk.Now()
		if _, err := a.host.CreateVM(a.mode, a.vmName(ids[i]), a.img); err != nil {
			failed[i] = true
		} else {
			lats = append(lats, float64(clk.Now().Sub(t0))/float64(time.Millisecond))
		}
		a.opDepth--
		i++
		clk.After(0, func() { a.exec(step) })
	}
	step()
}

func (a *hostAgent) ackCreates(ids []uint32, epochs []uint32, lats []float64, failed []bool) {
	g := a.gidx
	ctl := a.sc.ctl
	a.shard.Send(0, a.sc.lookahead, func() { ctl.onCreateAck(g, ids, epochs, lats, failed) })
}

// destroyVM tears one guest down and acks.
func (a *hostAgent) destroyVM(id uint32, epoch uint32) {
	a.exec(func() { a.doDestroyVM(id, epoch) })
}

func (a *hostAgent) doDestroyVM(id uint32, epoch uint32) {
	if a.dead || a.stopped {
		return
	}
	if vm, err := a.host.Env.VM(a.vmName(id)); err == nil {
		a.opDepth++
		_ = a.host.DestroyVM(vm)
		a.opDepth--
	}
	ctl := a.sc.ctl
	a.shard.Send(0, a.sc.lookahead, func() { ctl.onDestroyAck(id, epoch) })
}

// reap destroys an orphaned copy without acking (fence cleanup).
func (a *hostAgent) reap(id uint32) {
	a.exec(func() { a.doReap(id) })
}

func (a *hostAgent) doReap(id uint32) {
	if a.dead || a.stopped {
		return
	}
	if vm, err := a.host.Env.VM(a.vmName(id)); err == nil {
		a.opDepth++
		_ = a.host.DestroyVM(vm)
		a.opDepth--
	}
}

// migrateOut is the source half of a handover: suspend and checkpoint
// the guest on this host's timeline, then stream the checkpoint to the
// destination shard, charging the wire.
func (a *hostAgent) migrateOut(id uint32, epoch uint32, dst *hostAgent) {
	a.exec(func() { a.doMigrateOut(id, epoch, dst) })
}

func (a *hostAgent) doMigrateOut(id uint32, epoch uint32, dst *hostAgent) {
	ctl := a.sc.ctl
	if a.dead || a.stopped {
		return
	}
	vm, err := a.host.Env.VM(a.vmName(id))
	if err != nil {
		a.shard.Send(0, a.sc.lookahead, func() { ctl.onMigrateNack(id, epoch) })
		return
	}
	t0 := a.shard.Clock().Now()
	a.opDepth++
	cp, _, err := migrate.Save(a.host.Env, vm)
	a.opDepth--
	if err != nil {
		a.shard.Send(0, a.sc.lookahead, func() { ctl.onMigrateNack(id, epoch) })
		return
	}
	wire := a.sc.lookahead + migrate.StreamCost(cp)
	a.shard.Send(dst.shard.ID(), wire, func() { dst.receiveMigration(cp, id, epoch, t0) })
}

// receiveMigration is the destination half: restore the checkpoint on
// this host's timeline and ack the controller.
func (a *hostAgent) receiveMigration(cp *migrate.Checkpoint, id uint32, epoch uint32, t0 sim.Time) {
	a.exec(func() { a.doReceiveMigration(cp, id, epoch, t0) })
}

func (a *hostAgent) doReceiveMigration(cp *migrate.Checkpoint, id uint32, epoch uint32, t0 sim.Time) {
	ctl := a.sc.ctl
	if a.dead || a.stopped {
		return // controller recovers via failover of this host
	}
	a.opDepth++
	_, _, err := migrate.Restore(a.host.Env, cp)
	a.opDepth--
	g := a.gidx
	if err != nil {
		a.shard.Send(0, a.sc.lookahead, func() { ctl.onMigrateNack(id, epoch) })
		return
	}
	doneAt := a.shard.Clock().Now()
	a.shard.Send(0, a.sc.lookahead, func() { ctl.onMigrateAck(g, id, epoch, t0, doneAt) })
}

// kill is the fence: a whole-machine death (or a declared death made
// true). Idempotent.
func (a *hostAgent) kill() {
	if a.dead {
		return
	}
	// The flag flips immediately — even mid-operation — so in-flight
	// batch chains abort at their next step; the env teardown itself
	// waits its turn in the op queue.
	a.dead = true
	a.exec(func() { a.host.Env.MarkDead() })
}

// stop ends the host's background loops for shutdown.
func (a *hostAgent) stop() { a.stopped = true }

// ---------------------------------------------------------------------------
// Harvest
// ---------------------------------------------------------------------------

// harvest assembles the report after the engine has quiesced.
func (sc *Sharded) harvest() (*ChurnReport, error) {
	c := sc.ctl
	rep := &c.report
	for _, ps := range c.pools {
		placed := 0
		for id := ps.firstVM; id < ps.firstVM+uint32(ps.VMs); id++ {
			if c.vmState[id] == vmPlaced {
				placed++
			}
			if transient(c.vmState[id]) {
				rep.Unplaced++
			}
		}
		ps.report.Placed = placed
		rep.Pools = append(rep.Pools, ps.report)
	}
	for _, a := range sc.agents {
		rep.DeferredBeats += a.deferredBeats
		if !a.dead {
			rep.FsckViolated += len(toolstack.Fsck(a.host.Env))
		}
	}
	rep.MakespanMS = float64(sc.eng.MaxTime()) / float64(time.Millisecond)
	return rep, nil
}
