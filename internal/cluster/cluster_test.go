package cluster

import (
	"errors"
	"fmt"
	"testing"

	"lightvm/internal/guest"
	"lightvm/internal/sched"
	"lightvm/internal/sim"
	"lightvm/internal/toolstack"
)

func newCluster(t *testing.T, hosts int) *Cluster {
	t.Helper()
	c := New(sim.NewClock())
	for i := 0; i < hosts; i++ {
		if _, err := c.AddHost(fmt.Sprintf("cell-%d", i), sched.Xeon4Ckpt, uint64(i)+1); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestPlaceBalancesLoad(t *testing.T) {
	c := newCluster(t, 3)
	for i := 0; i < 9; i++ {
		_, host, err := c.Place(toolstack.ModeChaosNoXS, fmt.Sprintf("fw%d", i), guest.ClickOSFirewall())
		if err != nil {
			t.Fatal(err)
		}
		if host == "" {
			t.Fatal("no host reported")
		}
	}
	for _, st := range c.Stats() {
		if st.VMs != 3 {
			t.Fatalf("unbalanced placement: %+v", c.Stats())
		}
	}
	if c.VMs() != 9 {
		t.Fatalf("cluster VMs = %d", c.VMs())
	}
}

func TestPlaceErrors(t *testing.T) {
	empty := New(sim.NewClock())
	if _, _, err := empty.Place(toolstack.ModeChaosNoXS, "x", guest.Noop()); !errors.Is(err, ErrNoHosts) {
		t.Fatalf("place on empty cluster: %v", err)
	}
	c := newCluster(t, 1)
	if _, _, err := c.Place(toolstack.ModeChaosNoXS, "dup", guest.Noop()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Place(toolstack.ModeChaosNoXS, "dup", guest.Noop()); err == nil {
		t.Fatal("duplicate VM name accepted")
	}
}

func TestAddHostDuplicate(t *testing.T) {
	c := newCluster(t, 1)
	if _, err := c.AddHost("cell-0", sched.Xeon4, 9); !errors.Is(err, ErrDuplicateHost) {
		t.Fatalf("duplicate host: %v", err)
	}
	if _, err := c.Host("nonesuch"); !errors.Is(err, ErrUnknownHost) {
		t.Fatalf("unknown host: %v", err)
	}
}

func TestMoveFollowsSubscriber(t *testing.T) {
	c := newCluster(t, 2)
	_, src, err := c.Place(toolstack.ModeChaosNoXS, "fw-alice", guest.ClickOSFirewall())
	if err != nil {
		t.Fatal(err)
	}
	dst := "cell-1"
	if src == dst {
		dst = "cell-0"
	}
	d, err := c.Move("fw-alice", dst)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatal("zero migration time")
	}
	got, err := c.HostOf("fw-alice")
	if err != nil || got != dst {
		t.Fatalf("HostOf = %q, %v", got, err)
	}
	// Source no longer holds it.
	srcHost, _ := c.Host(src)
	if srcHost.VMs() != 0 {
		t.Fatal("source still holds the VM")
	}
	// Moving to the same host is rejected.
	if _, err := c.Move("fw-alice", dst); err == nil {
		t.Fatal("same-host move accepted")
	}
	if _, err := c.Move("ghost", dst); !errors.Is(err, ErrUnknownVM) {
		t.Fatalf("unknown VM move: %v", err)
	}
}

func TestDestroyUpdatesPlacement(t *testing.T) {
	c := newCluster(t, 2)
	if _, _, err := c.Place(toolstack.ModeChaosNoXS, "gone", guest.Daytime()); err != nil {
		t.Fatal(err)
	}
	if err := c.Destroy("gone"); err != nil {
		t.Fatal(err)
	}
	if c.VMs() != 0 {
		t.Fatal("placement table not updated")
	}
	if err := c.Destroy("gone"); !errors.Is(err, ErrUnknownVM) {
		t.Fatalf("double destroy: %v", err)
	}
}

func TestPlaceFallsBackWhenHostFull(t *testing.T) {
	c := New(sim.NewClock())
	// One tiny host that fills quickly plus one big host.
	if _, err := c.AddHost("tiny", sched.Machine{Name: "tiny", Cores: 4, Dom0Cores: 1, MemoryGB: 1}, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddHost("big", sched.Machine{Name: "big", Cores: 4, Dom0Cores: 1, MemoryGB: 64}, 2); err != nil {
		t.Fatal(err)
	}
	// Debian guests exhaust the tiny host after a few placements; the
	// cluster must keep placing on the big one.
	placedOnBig := 0
	for i := 0; i < 12; i++ {
		_, host, err := c.Place(toolstack.ModeChaosNoXS, fmt.Sprintf("d%d", i), guest.DebianMinimal())
		if err != nil {
			t.Fatalf("placement %d failed: %v", i, err)
		}
		if host == "big" {
			placedOnBig++
		}
	}
	if placedOnBig == 0 {
		t.Fatal("fallback host never used")
	}
	if c.VMs() != 12 {
		t.Fatalf("cluster VMs = %d", c.VMs())
	}
}

func TestRebalance(t *testing.T) {
	c := newCluster(t, 2)
	// Load everything onto cell-0 by placing while cell-1 is absent…
	// instead: place 6, then move all to cell-0 to create imbalance.
	for i := 0; i < 6; i++ {
		if _, _, err := c.Place(toolstack.ModeChaosNoXS, fmt.Sprintf("v%d", i), guest.Daytime()); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("v%d", i)
		if h, _ := c.HostOf(name); h != "cell-0" {
			if _, err := c.Move(name, "cell-0"); err != nil {
				t.Fatal(err)
			}
		}
	}
	moves, err := c.Rebalance(10)
	if err != nil {
		t.Fatal(err)
	}
	if moves == 0 {
		t.Fatal("rebalance made no moves")
	}
	stats := c.Stats()
	diff := stats[0].VMs - stats[1].VMs
	if diff < -1 || diff > 1 {
		t.Fatalf("still unbalanced: %+v", stats)
	}
	// A balanced cluster needs no further moves.
	again, err := c.Rebalance(10)
	if err != nil || again != 0 {
		t.Fatalf("rebalance on balanced cluster: %d moves, %v", again, err)
	}
}
