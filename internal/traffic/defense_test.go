package traffic

import (
	"reflect"
	"testing"
	"time"

	"lightvm/internal/faults"
	"lightvm/internal/guest"
	"lightvm/internal/sim"
	"lightvm/internal/toolstack"
)

func TestAIMDLimiter(t *testing.T) {
	target := 100 * time.Millisecond
	lim := newAIMDLimiter(target, 2*time.Second)
	if lim.limit != target {
		t.Fatalf("initial limit %v, want %v", lim.limit, target)
	}
	// Multiplicative decrease on late responses.
	lim.observe(target * 2)
	if lim.limit >= target {
		t.Fatalf("late response did not shrink the limit: %v", lim.limit)
	}
	after := lim.limit
	// Additive increase on in-target responses.
	lim.observe(target / 2)
	if lim.limit != after+target/16 {
		t.Fatalf("in-target response grew limit to %v, want %v", lim.limit, after+target/16)
	}
	// Floor: sustained lateness cannot drive the limit to zero.
	for i := 0; i < 1000; i++ {
		lim.observe(time.Hour)
	}
	if lim.limit < lim.min || lim.limit <= 0 {
		t.Fatalf("limit fell through the floor: %v", lim.limit)
	}
	// Ceiling: sustained headroom cannot exceed the static deadline.
	for i := 0; i < 10000; i++ {
		lim.observe(0)
	}
	if lim.limit > 2*time.Second {
		t.Fatalf("limit exceeded MaxBacklog: %v", lim.limit)
	}
}

func TestRetryBudgetBucket(t *testing.T) {
	b := newRetryBudget(0.5)
	// The initial burst allowance drains...
	spent := 0
	for b.spend() {
		spent++
		if spent > 1000 {
			t.Fatal("budget never exhausts")
		}
	}
	// ...and is re-earned at ratio per fresh arrival: 10 fresh = 5 retries.
	for i := 0; i < 10; i++ {
		b.earn()
	}
	re := 0
	for b.spend() {
		re++
	}
	if re != 5 {
		t.Fatalf("10 fresh arrivals at ratio 0.5 bought %d retries, want 5", re)
	}
}

func TestStateGaugeLadder(t *testing.T) {
	target := 100 * time.Millisecond
	limit := 500 * time.Millisecond
	g := newStateGauge(target, 0)
	at := func(ms int64) sim.Time { return sim.Time(ms * int64(time.Millisecond)) }
	if s := g.observe(at(10), 0, limit); s != StateNormal {
		t.Fatalf("idle plane not Normal: %v", s)
	}
	if s := g.observe(at(20), 60*time.Millisecond, limit); s != StateBrownout {
		t.Fatalf("backlog past target/2 not Brownout: %v", s)
	}
	if s := g.observe(at(30), 600*time.Millisecond, limit); s != StateShedding {
		t.Fatalf("backlog past limit not Shedding: %v", s)
	}
	// Hysteresis: backlog in (target/4, target/2] holds Brownout after
	// Shedding rather than snapping back to Normal.
	if s := g.observe(at(40), 40*time.Millisecond, limit); s != StateBrownout {
		t.Fatalf("hysteresis band after shedding: %v, want brownout", s)
	}
	if s := g.observe(at(50), 10*time.Millisecond, limit); s != StateNormal {
		t.Fatalf("quiet plane did not recover: %v", s)
	}
	g.flush(at(100))
	if g.inState[StateBrownout] != 20*time.Millisecond {
		t.Fatalf("brownout time %v, want 20ms", g.inState[StateBrownout])
	}
	if g.inState[StateShedding] != 10*time.Millisecond {
		t.Fatalf("shedding time %v, want 10ms", g.inState[StateShedding])
	}
	if g.inState[StateNormal] != 70*time.Millisecond {
		t.Fatalf("normal time %v, want 70ms", g.inState[StateNormal])
	}
	if g.changes != 4 {
		t.Fatalf("state changes %d, want 4", g.changes)
	}
	if StateNormal.String() != "normal" || StateBrownout.String() != "brownout" ||
		StateShedding.String() != "shedding" {
		t.Fatal("state names wrong")
	}
}

func TestRetryHeapOrdering(t *testing.T) {
	var h retryHeap
	h.push(retryReq{at: 30, seq: 2})
	h.push(retryReq{at: 10, seq: 1})
	h.push(retryReq{at: 10, seq: 0})
	h.push(retryReq{at: 20, seq: 3})
	var got []int
	for len(h) > 0 {
		got = append(got, h.pop().seq)
	}
	if !reflect.DeepEqual(got, []int{0, 1, 3, 2}) {
		t.Fatalf("heap order %v, want [0 1 3 2] (time, then seq)", got)
	}
}

func TestPhasedArrivals(t *testing.T) {
	// Same seed, same gaps.
	phases := []PhaseRate{{Rate: 100, Until: time.Second}, {Rate: 400, Until: 2 * time.Second}, {Rate: 100}}
	a, b := NewPhased(7, phases), NewPhased(7, phases)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("gap %d differs across same-seed instances", i)
		}
	}
	// Rates switch at the boundaries: count arrivals per window.
	p := NewPhased(11, phases)
	var cursor time.Duration
	counts := [3]int{}
	for cursor < 3*time.Second {
		cursor += p.Next()
		switch {
		case cursor < time.Second:
			counts[0]++
		case cursor < 2*time.Second:
			counts[1]++
		default:
			counts[2]++
		}
	}
	if counts[1] < 2*counts[0] {
		t.Fatalf("burst phase not faster: %v", counts)
	}
	if counts[2] > counts[1]/2 {
		t.Fatalf("post phase did not slow down: %v", counts)
	}
}

// stormPlan arms only the retry-storm kind at rate p.
func stormPlan(p float64) faults.Plan {
	return faults.Plan{Rate: p, Kinds: []faults.Kind{faults.KindRetryStorm}}
}

// overloadConfig drives the chaos per-request mode at mult× its
// calibrated capacity with a storm plan at rate storm.
func overloadConfig(t *testing.T, seed uint64, mult, storm float64, d Defense) Config {
	t.Helper()
	cap, err := EstimateCapacity(VMPerRequest, guest.Daytime())
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Mode:       VMPerRequest,
		Seed:       seed,
		Arrivals:   NewPoisson(seed+100, cap*mult),
		Requests:   300,
		Timeout:    300 * time.Millisecond,
		MaxBacklog: 900 * time.Millisecond,
		FaultPlan:  stormPlan(storm),
		Defense:    d,
	}
}

func TestRetryStormAmplifiesAndStaysDeterministic(t *testing.T) {
	run := func() *Stats {
		st, _, err := Serve(overloadConfig(t, 5, 2.0, 0.9, Defense{}))
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("storm run not deterministic:\n%+v\nvs\n%+v", a, b)
	}
	if a.RetryScheduled == 0 || a.Retries == 0 {
		t.Fatalf("storm scheduled nothing: %+v", a)
	}
	// Amplification: total arrivals exceed fresh requests.
	if a.Arrived <= 300 {
		t.Fatalf("no amplification: arrived %d of 300 fresh", a.Arrived)
	}
	// Invariant: every arrival is served or rejected, storm included.
	if a.Served+a.Rejected != a.Arrived {
		t.Fatalf("accounting broke under the storm: served %d + rejected %d != arrived %d",
			a.Served, a.Rejected, a.Arrived)
	}
	// Without a storm plan the same config schedules nothing.
	st, _, err := Serve(overloadConfig(t, 5, 2.0, 0, Defense{}))
	if err != nil {
		t.Fatal(err)
	}
	if st.RetryScheduled != 0 || st.Retries != 0 {
		t.Fatalf("retries without a storm plan: %+v", st)
	}
}

func TestRetryBudgetCapsAmplification(t *testing.T) {
	open, _, err := Serve(overloadConfig(t, 5, 2.0, 0.9, Defense{}))
	if err != nil {
		t.Fatal(err)
	}
	capped, _, err := Serve(overloadConfig(t, 5, 2.0, 0.9, Defense{RetryBudget: 0.1}))
	if err != nil {
		t.Fatal(err)
	}
	if capped.RejectedBudget == 0 {
		t.Fatalf("budget never refused a retry: %+v", capped)
	}
	// Admitted retries are bounded by ratio × fresh + the burst cap.
	admitted := capped.Retries - capped.RejectedBudget
	if limit := int(0.1*300) + 10; admitted > limit {
		t.Fatalf("budget admitted %d retries, cap ~%d", admitted, limit)
	}
	// Budget-refused retries are never re-retried, so the storm total
	// shrinks versus the open loop.
	if open.Retries > 0 && capped.RetryScheduled >= open.RetryScheduled {
		t.Fatalf("budget did not shrink the storm: scheduled %d vs %d",
			capped.RetryScheduled, open.RetryScheduled)
	}
}

func TestAdaptiveLimitBoundsTail(t *testing.T) {
	off, _, err := Serve(overloadConfig(t, 9, 2.0, 0, Defense{}))
	if err != nil {
		t.Fatal(err)
	}
	on, _, err := Serve(overloadConfig(t, 9, 2.0, 0, Defense{
		AdaptiveAdmit: true, LatencyTarget: 100 * time.Millisecond,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if on.RejectedOverload == 0 {
		t.Fatalf("limiter never engaged: %+v", on)
	}
	if on.Latency.P99() >= off.Latency.P99() {
		t.Fatalf("adaptive limit did not improve p99: %v vs %v", on.Latency.P99(), off.Latency.P99())
	}
	if p99 := on.Latency.P99(); p99 > 300*time.Millisecond {
		t.Fatalf("defended p99 %v past the client deadline", p99)
	}
}

func TestPrioritySheddingProtectsPaid(t *testing.T) {
	st, _, err := Serve(overloadConfig(t, 13, 2.0, 0, Defense{
		PriorityShed: true, BatchFraction: 0.3,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if st.ShedBatch == 0 {
		t.Fatalf("no batch work shed under 2x overload: %+v", st)
	}
	if st.ShedBatch <= st.ShedPaid {
		t.Fatalf("batch not shed first: batch %d, paid %d", st.ShedBatch, st.ShedPaid)
	}
}

func TestBrownoutDegradesUnderLoad(t *testing.T) {
	st, _, err := Serve(overloadConfig(t, 17, 2.0, 0, Defense{Brownout: true}))
	if err != nil {
		t.Fatal(err)
	}
	if st.DegradedServed == 0 {
		t.Fatalf("brownout never served degraded: %+v", st)
	}
	if st.BrownoutTime <= 0 {
		t.Fatalf("no brownout time recorded: %+v", st)
	}
	if st.StateChanges == 0 {
		t.Fatal("state ladder never moved")
	}
	// The brownout image is a strict degradation of the original.
	orig := guest.Daytime()
	img := brownoutImage(orig)
	if img.MemBytes >= orig.MemBytes || img.SizeBytes >= orig.SizeBytes {
		t.Fatalf("brownout image not smaller: %+v", img)
	}
	if img.StoreOpsBoot != 0 {
		t.Fatal("brownout image still does boot store chatter")
	}
	if img.Name == orig.Name {
		t.Fatal("brownout image shares the original's name (pool flavor collision)")
	}
}

func TestServeMemPressureTypedRejects(t *testing.T) {
	cap, err := EstimateCapacity(VMPerRequest, guest.Daytime())
	if err != nil {
		t.Fatal(err)
	}
	st, h, err := Serve(Config{
		Mode:     VMPerRequest,
		Seed:     3,
		Arrivals: NewPoisson(31, cap*0.5),
		Requests: 400,
		FaultPlan: faults.Plan{
			Rate: 0.05, Kinds: []faults.Kind{faults.KindMemPressure},
		},
	})
	if err != nil {
		t.Fatalf("pressure aborted the run instead of rejecting: %v", err)
	}
	if st.RejectedCapacity == 0 {
		t.Fatalf("no capacity rejects under mem pressure: %+v", st)
	}
	if st.Served == 0 {
		t.Fatal("pressure episodes starved the whole run")
	}
	if v := toolstack.Fsck(h.Env); len(v) > 0 {
		t.Fatalf("host not fsck-clean after pressure rollbacks: %v", v)
	}
}

func TestServeStoreQuotaTypedRejects(t *testing.T) {
	for _, mode := range []Mode{VMPerRequest, VMPerRequestXL} {
		cap, err := EstimateCapacity(mode, guest.Daytime())
		if err != nil {
			t.Fatal(err)
		}
		st, h, err := Serve(Config{
			Mode:     mode,
			Seed:     3,
			Arrivals: NewPoisson(37, cap*0.5),
			Requests: 200,
			FaultPlan: faults.Plan{
				Rate: 0.1, Kinds: []faults.Kind{faults.KindStoreQuota},
			},
		})
		if err != nil {
			t.Fatalf("%v: quota exhaustion aborted the run: %v", mode, err)
		}
		if st.RejectedQuota == 0 {
			t.Fatalf("%v: no quota rejects: %+v", mode, st)
		}
		if st.Served == 0 {
			t.Fatalf("%v: quota faults starved the run", mode)
		}
		if v := toolstack.Fsck(h.Env); len(v) > 0 {
			t.Fatalf("%v: host not fsck-clean after quota rollbacks: %v", mode, v)
		}
	}
}

// TestStatsMergeFleetProperty (satellite): folding per-host stats into
// a fleet aggregate is a sum on every new counter, index-wise on phase
// buckets, and lossless on the histogram including its timeout-range
// samples.
func TestStatsMergeFleetProperty(t *testing.T) {
	mk := func(seed uint64) *Stats {
		st, _, err := Serve(Config{
			Mode:        VMPerRequest,
			Seed:        seed,
			Arrivals:    NewPoisson(seed, 150),
			Requests:    120,
			Timeout:     10 * time.Millisecond, // force timeout-bucket traffic
			FaultPlan:   stormPlan(0.5),
			PhaseBounds: []time.Duration{300 * time.Millisecond, 600 * time.Millisecond},
			Defense: Defense{
				AdaptiveAdmit: true, RetryBudget: 0.3,
				PriorityShed: true, Brownout: true,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	hosts := []*Stats{mk(1), mk(2), mk(3)}
	var fleet Stats
	for _, h := range hosts {
		fleet.Merge(h)
	}
	sum := func(f func(*Stats) int) int {
		n := 0
		for _, h := range hosts {
			n += f(h)
		}
		return n
	}
	checks := map[string]func(*Stats) int{
		"arrived":   func(s *Stats) int { return s.Arrived },
		"served":    func(s *Stats) int { return s.Served },
		"timedout":  func(s *Stats) int { return s.TimedOut },
		"rejected":  func(s *Stats) int { return s.Rejected },
		"overload":  func(s *Stats) int { return s.RejectedOverload },
		"budget":    func(s *Stats) int { return s.RejectedBudget },
		"retries":   func(s *Stats) int { return s.Retries },
		"scheduled": func(s *Stats) int { return s.RetryScheduled },
		"shedpaid":  func(s *Stats) int { return s.ShedPaid },
		"shedbatch": func(s *Stats) int { return s.ShedBatch },
		"degraded":  func(s *Stats) int { return s.DegradedServed },
		"changes":   func(s *Stats) int { return s.StateChanges },
		"brownout":  func(s *Stats) int { return int(s.BrownoutTime) },
		"shedding":  func(s *Stats) int { return int(s.SheddingTime) },
	}
	for name, f := range checks {
		if got, want := f(&fleet), sum(f); got != want {
			t.Fatalf("fleet %s = %d, want %d", name, got, want)
		}
	}
	// The timeout-bucket leg is only meaningful if timeouts happened.
	if sum(func(s *Stats) int { return s.TimedOut }) == 0 {
		t.Fatal("no timeouts generated; tighten the test's Timeout")
	}
	if fleet.Latency.Count() != hosts[0].Latency.Count()+hosts[1].Latency.Count()+hosts[2].Latency.Count() {
		t.Fatal("histogram merge lost samples")
	}
	// Quantiles of the merged histogram bracket the per-host extremes.
	lo, hi := hosts[0].Latency.P99(), hosts[0].Latency.P99()
	for _, h := range hosts[1:] {
		if p := h.Latency.P99(); p < lo {
			lo = p
		}
		if p := h.Latency.P99(); p > hi {
			hi = p
		}
	}
	if p := fleet.Latency.P99(); p < lo || p > hi {
		t.Fatalf("merged p99 %v outside host range [%v, %v]", p, lo, hi)
	}
	// Phase buckets merge index-wise.
	if len(fleet.Phases) != 3 {
		t.Fatalf("fleet has %d phases, want 3", len(fleet.Phases))
	}
	for i := range fleet.Phases {
		want := 0
		for _, h := range hosts {
			want += h.Phases[i].Arrived
		}
		if fleet.Phases[i].Arrived != want {
			t.Fatalf("phase %d arrived %d, want %d", i, fleet.Phases[i].Arrived, want)
		}
	}
}

func TestVMXLModeSlower(t *testing.T) {
	capChaos, err := EstimateCapacity(VMPerRequest, guest.Daytime())
	if err != nil {
		t.Fatal(err)
	}
	capXL, err := EstimateCapacity(VMPerRequestXL, guest.Daytime())
	if err != nil {
		t.Fatal(err)
	}
	if capXL*2 >= capChaos {
		t.Fatalf("xl capacity %.1f not well under chaos %.1f", capXL, capChaos)
	}
	st, h, err := Serve(Config{
		Mode: VMPerRequestXL, Seed: 2,
		Arrivals: NewPoisson(5, capXL*0.5), Requests: 40,
		Timeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Served == 0 {
		t.Fatal("vm-xl served nothing")
	}
	if st.Mode.String() != "vm-xl" {
		t.Fatalf("mode name %q", st.Mode)
	}
	if v := toolstack.Fsck(h.Env); len(v) > 0 {
		t.Fatalf("vm-xl host not fsck-clean: %v", v)
	}
}
