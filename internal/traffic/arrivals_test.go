package traffic

import (
	"testing"
	"time"

	"lightvm/internal/sim"
)

// drain pulls n gaps from an arrival process.
func drain(a Arrivals, n int) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = a.Next()
	}
	return out
}

func TestPoissonDeterministic(t *testing.T) {
	a := drain(NewPoisson(42, 1000), 2000)
	b := drain(NewPoisson(42, 1000), 2000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("gap %d: same seed diverged: %v vs %v", i, a[i], b[i])
		}
	}
	c := drain(NewPoisson(43, 1000), 2000)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same > len(a)/10 {
		t.Fatalf("different seeds produced %d/%d identical gaps", same, len(a))
	}
}

func TestPoissonMeanRate(t *testing.T) {
	const rate = 500.0
	gaps := drain(NewPoisson(7, rate), 20000)
	var sum time.Duration
	for _, g := range gaps {
		if g < 0 {
			t.Fatalf("negative gap %v", g)
		}
		sum += g
	}
	mean := sum / time.Duration(len(gaps))
	want := meanGap(rate)
	if mean < want*9/10 || mean > want*11/10 {
		t.Fatalf("mean gap %v, want within 10%% of %v", mean, want)
	}
}

// modChainRef independently replays the MMPP dwell chain for a
// modulation seed: flip times are cumulative exponential dwells with
// the state (and therefore the dwell mean) alternating calm/burst.
func modChainRef(modSeed uint64, horizon sim.Time) []sim.Time {
	rng := sim.NewRNG(modSeed)
	var flips []sim.Time
	at := sim.Time(rng.Exp(400 * time.Millisecond))
	burst := false
	for at < horizon {
		flips = append(flips, at)
		burst = !burst
		dwell := 400 * time.Millisecond
		if burst {
			dwell = 100 * time.Millisecond
		}
		at = at.Add(rng.Exp(dwell))
	}
	return flips
}

// TestMMPPSharedModulation: every MMPP sharing a modSeed sees the
// burst windows at the same virtual times, regardless of its gap seed
// — the property the fleet-synchronized burst cells depend on. Each
// instance's state at any arrival must equal the parity of reference
// flips at or before that arrival.
func TestMMPPSharedModulation(t *testing.T) {
	const modSeed = 99
	for _, gapSeed := range []uint64{1, 2, 77} {
		m := NewMMPP(modSeed, gapSeed, 1000)
		for i := 0; i < 5000; i++ {
			m.Next()
			flips := 0
			ref := sim.NewRNG(modSeed)
			at := sim.Time(ref.Exp(400 * time.Millisecond))
			burst := false
			for at <= m.cursor {
				flips++
				burst = !burst
				dwell := 400 * time.Millisecond
				if burst {
					dwell = 100 * time.Millisecond
				}
				at = at.Add(ref.Exp(dwell))
			}
			if m.burst != (flips%2 == 1) {
				t.Fatalf("gapSeed %d arrival %d at %v: state %v, reference chain says %v (%d flips)",
					gapSeed, i, m.cursor, m.burst, flips%2 == 1, flips)
			}
		}
	}
}

// TestMMPPBurstRate: arrivals inside burst windows come measurably
// faster than calm ones (6x mean-gap ratio by construction).
func TestMMPPBurstRate(t *testing.T) {
	m := NewMMPP(5, 6, 1000)
	var calmSum, burstSum time.Duration
	var calmN, burstN int
	for i := 0; i < 50000; i++ {
		wasBurst := m.burst
		g := m.Next()
		if wasBurst {
			burstSum += g
			burstN++
		} else {
			calmSum += g
			calmN++
		}
	}
	if calmN == 0 || burstN == 0 {
		t.Fatalf("never visited both states: calm %d burst %d", calmN, burstN)
	}
	calmMean := float64(calmSum) / float64(calmN)
	burstMean := float64(burstSum) / float64(burstN)
	if ratio := calmMean / burstMean; ratio < 4 || ratio > 8 {
		t.Fatalf("calm/burst mean-gap ratio %.2f, want ~6", ratio)
	}
}

func TestTraceReplayCycles(t *testing.T) {
	gaps := []time.Duration{time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond}
	tr := NewTrace(gaps)
	for i := 0; i < 10; i++ {
		if got, want := tr.Next(), gaps[i%3]; got != want {
			t.Fatalf("replay %d: got %v want %v", i, got, want)
		}
	}
	if got := NewTrace(nil).Next(); got != time.Second {
		t.Fatalf("empty trace gap %v, want 1s", got)
	}
}

func TestFlashTraceShape(t *testing.T) {
	const n = 5000
	a := FlashTrace(11, 1000, n)
	b := FlashTrace(11, 1000, n)
	var edgeSum, crowdSum time.Duration
	var edgeN, crowdN int
	for i := 0; i < n; i++ {
		ga, gb := a.Next(), b.Next()
		if ga != gb {
			t.Fatalf("gap %d: same seed diverged: %v vs %v", i, ga, gb)
		}
		if i >= 2*n/5 && i < 3*n/5 {
			crowdSum += ga
			crowdN++
		} else {
			edgeSum += ga
			edgeN++
		}
	}
	edgeMean := float64(edgeSum) / float64(edgeN)
	crowdMean := float64(crowdSum) / float64(crowdN)
	// Baseline 0.7x vs crowd 4x nominal: mean-gap ratio ~5.7.
	if ratio := edgeMean / crowdMean; ratio < 4 || ratio > 8 {
		t.Fatalf("edge/crowd mean-gap ratio %.2f, want ~5.7", ratio)
	}
}

// The generators run once per simulated request; none may allocate.
func TestArrivalNextAllocs(t *testing.T) {
	procs := map[string]Arrivals{
		"poisson": NewPoisson(1, 10000),
		"mmpp":    NewMMPP(1, 2, 10000),
		"trace":   FlashTrace(1, 10000, 256),
	}
	for name, p := range procs {
		if allocs := testing.AllocsPerRun(1000, func() { p.Next() }); allocs != 0 {
			t.Errorf("%s: %v allocs/op in Next, want 0", name, allocs)
		}
	}
}

func BenchmarkArrivalNext(b *testing.B) {
	b.Run("poisson", func(b *testing.B) {
		p := NewPoisson(1, 10000)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p.Next()
		}
	})
	b.Run("mmpp", func(b *testing.B) {
		m := NewMMPP(1, 2, 10000)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.Next()
		}
	})
	b.Run("trace", func(b *testing.B) {
		tr := FlashTrace(1, 10000, 4096)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr.Next()
		}
	})
}
