package traffic

import (
	"fmt"
	"time"

	"lightvm/internal/container"
	"lightvm/internal/core"
	"lightvm/internal/guest"
	"lightvm/internal/sched"
)

// EstimateCapacity measures a mode's sustainable request rate: the
// control-plane cost of one full request cycle (create, answer,
// destroy) on an otherwise idle scratch host, inverted to requests per
// second. The overload study sets its offered-load multipliers against
// this number, so "2× capacity" means the same thing for an 8ms chaos
// create and an 80ms xl create. Deterministic: the scratch host runs
// on its own clock with a fixed seed, so the estimate is a pure
// function of (mode, img).
func EstimateCapacity(mode Mode, img guest.Image) (float64, error) {
	const cycles = 4
	machine := sched.Machine{Name: "calibrate", Cores: 8, Dom0Cores: 1, MemoryGB: 32}
	h, err := core.NewHost(machine, 1)
	if err != nil {
		return 0, err
	}
	h.Env.Store.LoggingEnabled = false
	h.Env.Pool.SetTarget(0)
	if img.Name == "" {
		img = guest.Daytime()
	}
	img.BootWork = time.Microsecond // boot rides the guest cores, as in Serve
	tsMode := modeToolstack(mode)
	begin := h.Clock.Now()
	for i := 0; i < cycles; i++ {
		switch mode {
		case Container:
			c, err := h.Docker.Run(container.MicropythonImage().Name)
			if err != nil {
				return 0, err
			}
			if err := h.Docker.Stop(c.ID); err != nil {
				return 0, err
			}
		case Process:
			if _, err := h.Procs.Spawn(0); err != nil {
				return 0, err
			}
		default:
			// Create + destroy only: the serving loop's app call rides
			// the guest, not the control plane, so pinging here would
			// overstate the per-request cost and understate capacity.
			name := fmt.Sprintf("cal%d", i)
			vm, err := h.CreateVM(tsMode, name, img)
			if err != nil {
				return 0, fmt.Errorf("traffic: calibrate create: %w", err)
			}
			if err := h.DestroyVM(vm); err != nil {
				return 0, fmt.Errorf("traffic: calibrate destroy: %w", err)
			}
		}
	}
	perReq := h.Clock.Now().Sub(begin) / cycles
	if perReq <= 0 {
		return 0, fmt.Errorf("traffic: calibration measured no cost for mode %v", mode)
	}
	return float64(time.Second) / float64(perReq), nil
}
