package traffic

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"lightvm/internal/toolstack"
)

func TestServeConfigValidation(t *testing.T) {
	if _, _, err := Serve(Config{Requests: 10}); err == nil {
		t.Fatal("Serve without Arrivals succeeded")
	}
	if _, _, err := Serve(Config{Arrivals: NewPoisson(1, 10)}); err == nil {
		t.Fatal("Serve without Requests succeeded")
	}
}

// TestServeDeterministic: the whole serving timeline is a pure
// function of the config — same seed, same stats, bit for bit.
func TestServeDeterministic(t *testing.T) {
	for _, mode := range []Mode{VMPerRequest, PoolReactive, PoolPredictive, Container, Process} {
		run := func() *Stats {
			st, _, err := Serve(Config{
				Mode:     mode,
				Seed:     3,
				Arrivals: NewPoisson(17, 50),
				Requests: 120,
			})
			if err != nil {
				t.Fatalf("%v: %v", mode, err)
			}
			return st
		}
		a, b := run(), run()
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%v: same seed produced different stats:\n%+v\nvs\n%+v", mode, a, b)
		}
		if a.Served == 0 {
			t.Fatalf("%v: served nothing", mode)
		}
		if int(a.Latency.Count()) != a.Served {
			t.Fatalf("%v: histogram holds %d samples, served %d", mode, a.Latency.Count(), a.Served)
		}
	}
}

// TestServeAccounting: arrivals all end up either served or rejected,
// and the reject reasons partition the rejects.
func TestServeAccounting(t *testing.T) {
	for _, mode := range []Mode{VMPerRequest, Container} {
		// Well past each backend's saturation throughput.
		st, _, err := Serve(Config{
			Mode:     mode,
			Seed:     1,
			Arrivals: NewPoisson(2, 5000),
			Requests: 400,
		})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if st.Served+st.Rejected != st.Arrived {
			t.Fatalf("%v: served %d + rejected %d != arrived %d", mode, st.Served, st.Rejected, st.Arrived)
		}
		if st.Rejected == 0 {
			t.Fatalf("%v: open-loop overload shed nothing", mode)
		}
		if st.RejectedBacklog+st.RejectedCapacity != st.Rejected {
			t.Fatalf("%v: reject reasons %d+%d don't partition %d rejects",
				mode, st.RejectedBacklog, st.RejectedCapacity, st.Rejected)
		}
		if got := st.RejectRate(); got <= 0 || got > 1 {
			t.Fatalf("%v: reject rate %v out of range", mode, got)
		}
	}
}

// TestServeTimeouts: with an impossible client deadline every served
// response counts as timed out — the server still does the work.
func TestServeTimeouts(t *testing.T) {
	st, _, err := Serve(Config{
		Mode:     VMPerRequest,
		Seed:     1,
		Arrivals: NewPoisson(2, 20),
		Requests: 60,
		Timeout:  time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.TimedOut != st.Served {
		t.Fatalf("timed out %d of %d served under a 1µs deadline", st.TimedOut, st.Served)
	}
	if got := st.TimeoutRate(); got != 1 {
		t.Fatalf("timeout rate %v, want 1 (nothing rejected at this rate)", got)
	}
}

// TestServeSessions: with N requests per session only the first pays
// the boot; the rest ride the running guest and the accounting scales.
func TestServeSessions(t *testing.T) {
	const sessions, per = 40, 4
	st, _, err := Serve(Config{
		Mode:               VMPerRequest,
		Seed:               1,
		Arrivals:           NewPoisson(2, 20),
		Requests:           sessions,
		RequestsPerSession: per,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Arrived != sessions*per || st.Served != sessions*per {
		t.Fatalf("arrived %d served %d, want %d both", st.Arrived, st.Served, sessions*per)
	}
	if st.AppCalls != sessions*per {
		t.Fatalf("app answered %d calls, want %d", st.AppCalls, sessions*per)
	}
	// Follow-ups skip the boot: the p50 is the cheap in-session path,
	// far below the session-opening boot latency.
	if st.Latency.P50() >= st.Latency.Quantile(90) {
		t.Fatalf("p50 %v not below p90 %v: session follow-ups should dominate the cheap side",
			st.Latency.P50(), st.Latency.Quantile(90))
	}
}

// TestServeRejectTyped: the Reject error is typed, unwraps its cause,
// and prints both reasons.
func TestServeRejectTyped(t *testing.T) {
	cause := errors.New("engine full")
	r := &Reject{Reason: RejectCapacity, Backlog: 30 * time.Millisecond, Cause: cause}
	if !errors.Is(r, cause) {
		t.Fatal("Reject does not unwrap its cause")
	}
	if r.Reason.String() != "capacity" || (&Reject{}).Reason.String() != "backlog" {
		t.Fatalf("reason strings: %q / %q", r.Reason, (&Reject{}).Reason)
	}
	var rj *Reject
	if !errors.As(error(r), &rj) {
		t.Fatal("errors.As failed on *Reject")
	}
}

// TestServeWarmSamples: pool modes sample the warm-shell depth over
// time; non-pool modes record zeros (the column is still present so
// fleet merges stay aligned).
func TestServeWarmSamples(t *testing.T) {
	pool, _, err := Serve(Config{
		Mode:     PoolReactive,
		Seed:     1,
		Arrivals: NewPoisson(2, 50),
		Requests: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pool.Warm) == 0 {
		t.Fatal("pool mode recorded no warm samples")
	}
	warmSeen := false
	for _, w := range pool.Warm {
		if w > 0 {
			warmSeen = true
		}
	}
	if !warmSeen {
		t.Fatalf("pool never had a warm shell: %v", pool.Warm)
	}
	vm, _, err := Serve(Config{
		Mode:     VMPerRequest,
		Seed:     1,
		Arrivals: NewPoisson(2, 50),
		Requests: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range vm.Warm {
		if w != 0 {
			t.Fatalf("vm-per-request mode reported warm shells: %v", vm.Warm)
		}
	}
}

// TestServeFsckClean: every mode leaves the host consistent — no
// leaked domains, devices, or store subtrees after the run.
func TestServeFsckClean(t *testing.T) {
	for _, mode := range []Mode{VMPerRequest, PoolReactive, PoolPredictive, Container, Process} {
		_, h, err := Serve(Config{
			Mode:     mode,
			Seed:     9,
			Arrivals: NewPoisson(4, 100),
			Requests: 80,
		})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if v := toolstack.Fsck(h.Env); len(v) > 0 {
			t.Fatalf("%v: fsck: %v", mode, v)
		}
	}
}

// TestServePoolBeatsCold: at a boot-dominated rate the warm pool's
// median is the take path, below the cold boot median — the figure's
// headline ordering at unit-test scale.
func TestServePoolBeatsCold(t *testing.T) {
	run := func(mode Mode) *Stats {
		st, _, err := Serve(Config{
			Mode:     mode,
			Seed:     1,
			Arrivals: NewPoisson(2, 20),
			Requests: 300,
		})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		return st
	}
	cold, warm := run(VMPerRequest), run(PoolReactive)
	if warm.Latency.P50() >= cold.Latency.P50() {
		t.Fatalf("pool p50 %v not below cold-boot p50 %v", warm.Latency.P50(), cold.Latency.P50())
	}
}

// TestStatsMerge: fleet aggregation sums counters, merges histograms
// losslessly, and sums warm trajectories index-wise.
func TestStatsMerge(t *testing.T) {
	run := func(seed uint64) *Stats {
		st, _, err := Serve(Config{
			Mode:     PoolReactive,
			Seed:     seed,
			Arrivals: NewPoisson(seed, 50),
			Requests: 64,
		})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(1), run(2)
	var m Stats
	m.Merge(a)
	m.Merge(b)
	if m.Arrived != a.Arrived+b.Arrived || m.Served != a.Served+b.Served {
		t.Fatalf("merge counters wrong: %+v", m)
	}
	if m.Latency.Count() != a.Latency.Count()+b.Latency.Count() {
		t.Fatalf("merged histogram count %d != %d + %d",
			m.Latency.Count(), a.Latency.Count(), b.Latency.Count())
	}
	if len(m.Warm) != len(a.Warm) {
		t.Fatalf("merged warm length %d, want %d", len(m.Warm), len(a.Warm))
	}
	for i := range m.Warm {
		if m.Warm[i] != a.Warm[i]+b.Warm[i] {
			t.Fatalf("warm[%d] = %d, want %d+%d", i, m.Warm[i], a.Warm[i], b.Warm[i])
		}
	}
	if m.Elapsed != maxDur(a.Elapsed, b.Elapsed) {
		t.Fatalf("merged elapsed %v, want max(%v, %v)", m.Elapsed, a.Elapsed, b.Elapsed)
	}
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
