package traffic

import (
	"errors"
	"fmt"
	"time"

	"lightvm/internal/apps"
	"lightvm/internal/container"
	"lightvm/internal/core"
	"lightvm/internal/costs"
	"lightvm/internal/faults"
	"lightvm/internal/guest"
	"lightvm/internal/metrics"
	"lightvm/internal/mm"
	"lightvm/internal/sched"
	"lightvm/internal/sim"
	"lightvm/internal/toolstack"
	"lightvm/internal/xenstore"
)

// Mode selects the serving backend a request lands on.
type Mode int

const (
	// VMPerRequest cold-boots a fresh unikernel for every request
	// (chaos + XenStore, empty pool) and tears it down after the
	// response — the paper's just-in-time instantiation taken
	// literally.
	VMPerRequest Mode = iota
	// PoolReactive serves from split-toolstack shells kept at a fixed
	// depth (§5.2's configurable pool) refilled reactively.
	PoolReactive
	// PoolPredictive is the same warm pool driven by the
	// rate-estimating autoscaler: depth follows the arrival rate.
	PoolPredictive
	// Container starts a Docker-style container per request.
	Container
	// Process fork/execs a plain process per request.
	Process
	// VMPerRequestXL is VMPerRequest on the stock toolstack (xl +
	// full XenStore registry) — the overload study's "what the paper
	// started from" arm. Appended after the original modes so their
	// numbering (and every existing figure) is untouched.
	VMPerRequestXL
)

var modeNames = [...]string{"vm", "pool-reactive", "pool-predictive", "container", "process", "vm-xl"}

func (m Mode) String() string {
	if m < 0 || int(m) >= len(modeNames) {
		return "unknown"
	}
	return modeNames[m]
}

// UsesPool reports whether the mode serves from warm shells.
func (m Mode) UsesPool() bool { return m == PoolReactive || m == PoolPredictive }

// RejectReason classifies admission backpressure.
type RejectReason int

const (
	// RejectBacklog: the control plane is further behind the arrival
	// than MaxBacklog allows — serving this request would blow the
	// deadline anyway, so it is shed at admission.
	RejectBacklog RejectReason = iota
	// RejectCapacity: the backend refused the work outright (the
	// container engine hitting its memory wall, or a guest creation
	// failing against a memory-pressure episode).
	RejectCapacity
	// RejectOverload: the adaptive admission limiter (or the priority
	// shedder) turned the request away — defenses doing their job, as
	// opposed to the static deadline blowing.
	RejectOverload
	// RejectQuota: the store daemon refused the domain's registry
	// writes with a typed quota exhaustion.
	RejectQuota
	// RejectBudget: a retry arrived with the retry budget dry.
	RejectBudget
)

var rejectNames = [...]string{"backlog", "capacity", "overload", "quota", "retry-budget"}

func (r RejectReason) String() string {
	if r >= 0 && int(r) < len(rejectNames) {
		return rejectNames[r]
	}
	return "unknown"
}

// Reject is the typed admission-backpressure error: the request was
// shed, not failed. The serving loop counts it and moves on; anything
// that is not a *Reject aborts the run.
type Reject struct {
	Reason  RejectReason
	Backlog time.Duration // control-plane lag at the admission decision
	Cause   error         // backend error for RejectCapacity
}

func (r *Reject) Error() string {
	if r.Cause != nil {
		return fmt.Sprintf("traffic: rejected (%s, backlog %v): %v", r.Reason, r.Backlog, r.Cause)
	}
	return fmt.Sprintf("traffic: rejected (%s, backlog %v)", r.Reason, r.Backlog)
}

func (r *Reject) Unwrap() error { return r.Cause }

// Config parameterizes one open-loop serving run on one host.
type Config struct {
	Machine  sched.Machine // zero value: 8-core/32GB serving host
	Mode     Mode
	Image    guest.Image // guest app image for the VM modes (default Daytime)
	Seed     uint64
	Arrivals Arrivals // required
	Requests int      // number of arrivals to generate (required)

	// RequestsPerSession batches requests onto one instance: the
	// first request of a session pays the boot, the rest ride the
	// already-running guest. Default 1 (pure per-request).
	RequestsPerSession int

	// MaxBacklog is the admission limit on control-plane lag; arrivals
	// finding a deeper queue are shed with RejectBacklog. Default 500ms.
	MaxBacklog time.Duration
	// Timeout is the client's end-to-end deadline; responses beyond it
	// count as timed out (the server still did the work). Default 1s.
	Timeout time.Duration

	// Scaler tunes the pool autoscaler (pool modes only; Policy is
	// overridden to match Mode).
	Scaler toolstack.AutoscalerConfig
	// WarmEvery samples the warm-shell count every N arrivals into
	// Stats.Warm. Default Requests/16.
	WarmEvery int

	// Program is the minipython source executed per request when the
	// image app is "minipython". Default computes a small sum.
	Program string

	// KeepStoreLogs leaves XenStore access logging on. By default the
	// serving host disables it: §4.2 calls out oxenstored logging 20
	// files per access (with a 90ms rotation pause) as a toolstack
	// pathology, and no production serving path would run with it.
	KeepStoreLogs bool

	// FaultPlan, when its Rate is non-zero, arms the host's fault
	// plane for this run. The overload kinds are opt-in: name
	// KindRetryStorm to make a seeded fraction of rejected/timed-out
	// requests re-arrive after a client backoff, KindMemPressure /
	// KindStoreQuota for the resource-exhaustion faults.
	FaultPlan faults.Plan

	// Defense toggles the overload defenses (defense.go). The zero
	// value reproduces the undefended plane bit for bit.
	Defense Defense

	// MaxAttempts bounds a request's total attempts (first try +
	// storm retries). Default 4.
	MaxAttempts int
	// RetryBackoff is the client's base backoff before a storm retry;
	// doubled per attempt, plus seeded jitter. Default Timeout/4.
	RetryBackoff time.Duration

	// PhaseBounds carves the run into accounting phases at these
	// offsets from the first arrival (e.g. pre-burst/burst/post-burst
	// boundaries); Stats.Phases gets len(PhaseBounds)+1 buckets keyed
	// by each request's arrival time. Empty leaves Phases nil.
	PhaseBounds []time.Duration

	// hook observes each served request's latency (tests only).
	hook func(k int, lat time.Duration)
}

// PhaseStats is one accounting phase's slice of the run (see
// Config.PhaseBounds). Goodput is Good over the phase's wall time.
type PhaseStats struct {
	Arrived  int // all arrivals landing in the phase (fresh + retries)
	Fresh    int
	Retried  int // retry re-arrivals
	Served   int
	Good     int // served within the client deadline
	TimedOut int
	Rejected int
}

// Stats is one run's outcome. Latency only holds served requests;
// rejected arrivals never produce a response to measure.
type Stats struct {
	Mode             Mode
	Arrived          int
	Served           int // responses produced (includes timed-out ones)
	TimedOut         int // served past the deadline
	Rejected         int // shed at admission
	RejectedBacklog  int
	RejectedCapacity int
	RejectedOverload int // adaptive limiter / priority shedder
	RejectedQuota    int
	RejectedBudget   int // retries refused by the retry budget

	// Retry-storm accounting: re-arrivals admitted into the loop and
	// re-arrivals the storm scheduled (admitted + still queued +
	// budget-dropped).
	Retries        int
	RetryScheduled int

	// Two-priority shedding: rejections by request class.
	ShedPaid  int
	ShedBatch int

	// Brownout accounting: responses served from the degraded image,
	// time spent in each degraded state, and state-ladder transitions.
	DegradedServed int
	BrownoutTime   time.Duration
	SheddingTime   time.Duration
	StateChanges   int

	// Phases buckets the run by Config.PhaseBounds (nil when unset).
	Phases []PhaseStats

	Latency  metrics.Histogram
	Warm     []int // shells-warm samples over time (every WarmEvery arrivals)
	AppCalls uint64
	Elapsed  time.Duration // virtual time consumed
}

// TimeoutRate is timed-out responses over arrivals.
func (s *Stats) TimeoutRate() float64 {
	if s.Arrived == 0 {
		return 0
	}
	return float64(s.TimedOut) / float64(s.Arrived)
}

// RejectRate is shed arrivals over arrivals.
func (s *Stats) RejectRate() float64 {
	if s.Arrived == 0 {
		return 0
	}
	return float64(s.Rejected) / float64(s.Arrived)
}

// Merge folds another run's stats into s (per-host runs into a fleet
// aggregate). Warm samples and phase buckets are summed index-wise;
// the state-time durations sum (aggregate host-time in each state);
// Elapsed is the max (hosts run concurrently).
func (s *Stats) Merge(o *Stats) {
	s.Arrived += o.Arrived
	s.Served += o.Served
	s.TimedOut += o.TimedOut
	s.Rejected += o.Rejected
	s.RejectedBacklog += o.RejectedBacklog
	s.RejectedCapacity += o.RejectedCapacity
	s.RejectedOverload += o.RejectedOverload
	s.RejectedQuota += o.RejectedQuota
	s.RejectedBudget += o.RejectedBudget
	s.Retries += o.Retries
	s.RetryScheduled += o.RetryScheduled
	s.ShedPaid += o.ShedPaid
	s.ShedBatch += o.ShedBatch
	s.DegradedServed += o.DegradedServed
	s.BrownoutTime += o.BrownoutTime
	s.SheddingTime += o.SheddingTime
	s.StateChanges += o.StateChanges
	s.AppCalls += o.AppCalls
	s.Latency.Merge(&o.Latency)
	if o.Elapsed > s.Elapsed {
		s.Elapsed = o.Elapsed
	}
	for i, w := range o.Warm {
		if i < len(s.Warm) {
			s.Warm[i] += w
		} else {
			s.Warm = append(s.Warm, w)
		}
	}
	for i, p := range o.Phases {
		if i < len(s.Phases) {
			s.Phases[i].Arrived += p.Arrived
			s.Phases[i].Fresh += p.Fresh
			s.Phases[i].Retried += p.Retried
			s.Phases[i].Served += p.Served
			s.Phases[i].Good += p.Good
			s.Phases[i].TimedOut += p.TimedOut
			s.Phases[i].Rejected += p.Rejected
		} else {
			s.Phases = append(s.Phases, p)
		}
	}
}

const defaultProgram = "total = 0\nfor i in range(10):\n    total = total + i\nprint(total)\n"

// Serve runs one open-loop serving timeline on a fresh host and
// returns its stats plus the host (for fsck and inspection).
//
// The model follows fig16b: the Dom0 control plane serializes on the
// host clock, so a request whose arrival predates the clock queues
// implicitly; in the idle gap before an arrival the autoscaler gets
// the CPU (retarget + replenish) exactly where the real chaos daemon
// would. Guest boot work runs on the guest cores in parallel with the
// control plane, so it is stripped from the image and added to the
// response latency instead of the Dom0 timeline.
func Serve(cfg Config) (*Stats, *core.Host, error) {
	if cfg.Arrivals == nil {
		return nil, nil, errors.New("traffic: Config.Arrivals is required")
	}
	if cfg.Requests <= 0 {
		return nil, nil, errors.New("traffic: Config.Requests must be positive")
	}
	machine := cfg.Machine
	if machine.Cores == 0 {
		machine = sched.Machine{Name: "serve", Cores: 8, Dom0Cores: 1, MemoryGB: 32}
	}
	img := cfg.Image
	if img.Name == "" {
		img = guest.Daytime()
	}
	perSession := cfg.RequestsPerSession
	if perSession < 1 {
		perSession = 1
	}
	maxBacklog := cfg.MaxBacklog
	if maxBacklog <= 0 {
		maxBacklog = 500 * time.Millisecond
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = time.Second
	}
	warmEvery := cfg.WarmEvery
	if warmEvery <= 0 {
		warmEvery = cfg.Requests / 16
		if warmEvery == 0 {
			warmEvery = 1
		}
	}
	program := cfg.Program
	if program == "" {
		program = defaultProgram
	}
	maxAttempts := cfg.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 4
	}
	retryBackoff := cfg.RetryBackoff
	if retryBackoff <= 0 {
		retryBackoff = timeout / 4
	}
	d := cfg.Defense
	if d.LatencyTarget <= 0 {
		d.LatencyTarget = timeout / 2
	}
	batchFrac := d.BatchFraction
	if d.PriorityShed && batchFrac <= 0 {
		batchFrac = 0.25
	}

	h, err := core.NewHost(machine, cfg.Seed)
	if err != nil {
		return nil, nil, err
	}
	if !cfg.KeepStoreLogs {
		h.Env.Store.LoggingEnabled = false
	}
	if cfg.FaultPlan.Rate > 0 {
		h.Env.SetFaults(faults.New(h.Clock, cfg.Seed, cfg.FaultPlan))
	}
	in := h.Env.Faults // nil without a plan; nil injectors never fire

	tsMode := modeToolstack(cfg.Mode)
	bootWork := img.BootWork
	img.BootWork = time.Microsecond
	degImg := brownoutImage(img)

	var scaler *toolstack.Autoscaler
	var flavor toolstack.Flavor
	if cfg.Mode.UsesPool() {
		flavor = toolstack.FlavorFor(img, tsMode.UsesStore())
		h.Env.Pool.Register(flavor)
		pol := cfg.Scaler
		if pol.Min <= 0 {
			pol.Min = 8 // the pool's own default depth
		}
		if cfg.Mode == PoolPredictive {
			pol.Policy = toolstack.ScalePredictive
		} else {
			pol.Policy = toolstack.ScaleReactive
		}
		scaler = toolstack.NewAutoscaler(h.Env.Pool, pol)
		// Prime the pool before traffic starts, as the daemon does on
		// configuration.
		if err := scaler.Tick(h.Clock.Now(), 0); err != nil {
			return nil, nil, err
		}
	} else {
		h.Env.Pool.SetTarget(0)
	}

	// Per-response floor: switch forwarding both ways plus the guest
	// answering the connection.
	const appWork = 2*costs.BridgeForward + costs.PingProcess

	st := &Stats{Mode: cfg.Mode}
	if len(cfg.PhaseBounds) > 0 {
		st.Phases = make([]PhaseStats, len(cfg.PhaseBounds)+1)
	}

	var lim *aimdLimiter
	if d.AdaptiveAdmit {
		lim = newAIMDLimiter(d.LatencyTarget, maxBacklog)
	}
	var budget *retryBudget
	if d.RetryBudget > 0 {
		budget = newRetryBudget(d.RetryBudget)
	}
	var classRNG *sim.RNG
	if batchFrac > 0 {
		classRNG = sim.NewRNG(cfg.Seed ^ 0x9e3779b97f4a7c15)
	}

	// Traffic opens once the host is ready: the pool prime ran on the
	// clock, and no real deployment points the load balancer at a host
	// mid-warmup.
	start := h.Clock.Now()
	var gauge *stateGauge
	if d.Brownout || d.PriorityShed {
		gauge = newStateGauge(d.LatencyTarget, start)
	}
	phaseOf := func(at sim.Time) *PhaseStats {
		if st.Phases == nil {
			return nil
		}
		rel := at.Sub(start)
		i := 0
		for i < len(cfg.PhaseBounds) && rel >= cfg.PhaseBounds[i] {
			i++
		}
		return &st.Phases[i]
	}

	reqIdx := 0
	observe := func(ph *PhaseStats, lat time.Duration) {
		st.Latency.Observe(lat)
		st.Served++
		if lat > timeout {
			st.TimedOut++
		}
		if ph != nil {
			ph.Served++
			if lat > timeout {
				ph.TimedOut++
			} else {
				ph.Good++
			}
		}
		if lim != nil {
			lim.observe(lat)
		}
		if cfg.hook != nil {
			cfg.hook(reqIdx, lat)
		}
	}
	reject := func(ph *PhaseStats, class Class, r *Reject) {
		st.Rejected++
		switch r.Reason {
		case RejectCapacity:
			st.RejectedCapacity++
		case RejectOverload:
			st.RejectedOverload++
		case RejectQuota:
			st.RejectedQuota++
		case RejectBudget:
			st.RejectedBudget++
		default:
			st.RejectedBacklog++
		}
		if batchFrac > 0 {
			if class == ClassBatch {
				st.ShedBatch++
			} else {
				st.ShedPaid++
			}
		}
		if ph != nil {
			ph.Rejected++
		}
	}

	// The retry storm's client backoff queue: re-arrivals merge with
	// fresh traffic in virtual-time order. Heap order is (time, seq),
	// both deterministic, so per-shard replay is byte-identical.
	var retries retryHeap
	retrySeq := 0
	scheduleRetry := func(from sim.Time, orig, attempt int, class Class) {
		if attempt >= maxAttempts || !in.Fire(faults.KindRetryStorm) {
			return
		}
		backoff := retryBackoff << uint(attempt-1)
		backoff += in.Jitter(faults.KindRetryStorm, retryBackoff)
		retries.push(retryReq{at: from.Add(backoff), seq: retrySeq, orig: orig, attempt: attempt + 1, class: class})
		retrySeq++
		st.RetryScheduled++
	}

	sinceTick := 0
	freshLeft := cfg.Requests
	k := -1 // index of the current fresh arrival
	freshAt := start.Add(cfg.Arrivals.Next())
	for freshLeft > 0 || len(retries) > 0 {
		var arrive sim.Time
		var class Class
		attempt, orig, isRetry := 1, 0, false
		if len(retries) > 0 && (freshLeft == 0 || retries[0].at <= freshAt) {
			rr := retries.pop()
			arrive, orig, attempt, class, isRetry = rr.at, rr.orig, rr.attempt, rr.class, true
		} else {
			k++
			freshLeft--
			arrive, orig = freshAt, k
			if freshLeft > 0 {
				freshAt = freshAt.Add(cfg.Arrivals.Next())
			}
			if classRNG != nil && classRNG.Float64() < batchFrac {
				class = ClassBatch
			}
			if budget != nil {
				budget.earn()
			}
		}
		reqIdx = k
		st.Arrived++
		sinceTick++
		ph := phaseOf(arrive)
		if ph != nil {
			ph.Arrived++
			if isRetry {
				ph.Retried++
			} else {
				ph.Fresh++
			}
		}
		if isRetry {
			st.Retries++
		}
		if h.Clock.Now() < arrive {
			// Idle gap: the daemon gets the CPU until the next arrival
			// (the replenish beat yields to foreground work at the
			// deadline rather than batching an unbounded top-up).
			if scaler != nil {
				if err := scaler.TickUntil(h.Clock.Now(), sinceTick, arrive); err != nil {
					return nil, nil, err
				}
				sinceTick = 0
			}
			h.Clock.AdvanceTo(arrive)
		}
		if !isRetry && k%warmEvery == 0 {
			w := 0
			if cfg.Mode.UsesPool() {
				w = h.Env.Pool.Available(flavor)
			}
			st.Warm = append(st.Warm, w)
		}
		backlog := h.Clock.Now().Sub(arrive)
		limit := maxBacklog
		if lim != nil {
			limit = lim.limit
		}
		state := StateNormal
		if gauge != nil {
			state = gauge.observe(h.Clock.Now(), backlog, limit)
		}
		if isRetry && budget != nil && !budget.spend() {
			// Budget dry: the retry is refused at the front door and —
			// unlike every other rejection — not retried again, which
			// is exactly how the budget breaks the feedback loop.
			reject(ph, class, &Reject{Reason: RejectBudget, Backlog: backlog})
			continue
		}
		if d.PriorityShed && class == ClassBatch && state != StateNormal {
			reject(ph, class, &Reject{Reason: RejectOverload, Backlog: backlog})
			scheduleRetry(h.Clock.Now(), orig, attempt, class)
			continue
		}
		if backlog > limit {
			reason := RejectBacklog
			if lim != nil {
				reason = RejectOverload
			}
			reject(ph, class, &Reject{Reason: reason, Backlog: backlog})
			scheduleRetry(h.Clock.Now(), orig, attempt, class)
			continue
		}

		switch cfg.Mode {
		case Container:
			c, err := h.Docker.Run(container.MicropythonImage().Name)
			if err != nil {
				// The engine saying no (memory wall, daemon-table
				// growth) is backpressure, not a simulation bug.
				reject(ph, class, &Reject{Reason: RejectCapacity, Backlog: backlog, Cause: err})
				scheduleRetry(h.Clock.Now(), orig, attempt, class)
				continue
			}
			lat := h.Clock.Now().Sub(arrive) + appWork
			observe(ph, lat)
			if lat > timeout {
				scheduleRetry(arrive.Add(timeout), orig, attempt, class)
			}
			for r := 1; r < perSession; r++ {
				observe(ph, appWork)
				st.Arrived++
			}
			if err := h.Docker.Stop(c.ID); err != nil {
				return nil, nil, err
			}
		case Process:
			if _, err := h.Procs.Spawn(0); err != nil {
				reject(ph, class, &Reject{Reason: RejectCapacity, Backlog: backlog, Cause: err})
				scheduleRetry(h.Clock.Now(), orig, attempt, class)
				continue
			}
			lat := h.Clock.Now().Sub(arrive) + appWork
			observe(ph, lat)
			if lat > timeout {
				scheduleRetry(arrive.Add(timeout), orig, attempt, class)
			}
			for r := 1; r < perSession; r++ {
				observe(ph, appWork)
				st.Arrived++
			}
		default: // the unikernel modes
			useImg, degraded := img, false
			if d.Brownout && state != StateNormal {
				useImg, degraded = degImg, true
			}
			name := fmt.Sprintf("req%d", orig)
			if isRetry {
				name = fmt.Sprintf("req%d.%d", orig, attempt)
			}
			vm, err := h.CreateVM(tsMode, name, useImg)
			if err != nil {
				var qe *xenstore.ErrQuotaExceeded
				switch {
				case errors.Is(err, mm.ErrOutOfMemory):
					// A pressure episode ate the headroom: typed
					// capacity backpressure, the driver already rolled
					// the half-built domain back.
					reject(ph, class, &Reject{Reason: RejectCapacity, Backlog: backlog, Cause: err})
					scheduleRetry(h.Clock.Now(), orig, attempt, class)
					continue
				case errors.As(err, &qe):
					reject(ph, class, &Reject{Reason: RejectQuota, Backlog: backlog, Cause: err})
					scheduleRetry(h.Clock.Now(), orig, attempt, class)
					continue
				default:
					return nil, nil, fmt.Errorf("traffic: create %s: %w", name, err)
				}
			}
			// The guest finishes booting bootWork later, on its own core.
			ready := h.Clock.Now().Add(bootWork)
			call := func() error {
				switch app := h.AppOf(name).(type) {
				case *apps.Daytime:
					if app.Serve() == "" {
						return fmt.Errorf("traffic: %s served empty daytime", name)
					}
				case *apps.PyFunc:
					if _, err := app.Run(program); err != nil {
						return fmt.Errorf("traffic: %s: %w", name, err)
					}
				default:
					if !h.Ping(vm) {
						return fmt.Errorf("traffic: %s did not answer", name)
					}
				}
				st.AppCalls++
				return nil
			}
			if err := call(); err != nil {
				return nil, nil, err
			}
			if degraded {
				st.DegradedServed++
			}
			lat := ready.Sub(arrive) + appWork
			observe(ph, lat)
			if lat > timeout {
				scheduleRetry(arrive.Add(timeout), orig, attempt, class)
			}
			for r := 1; r < perSession; r++ {
				if err := call(); err != nil {
					return nil, nil, err
				}
				observe(ph, appWork)
				st.Arrived++
			}
			// Teardown rides the control plane after the response — it
			// is off this request's latency but delays the next one.
			if err := h.DestroyVM(vm); err != nil {
				return nil, nil, fmt.Errorf("traffic: destroy %s: %w", name, err)
			}
		}
	}
	if gauge != nil {
		gauge.flush(h.Clock.Now())
		st.BrownoutTime = gauge.inState[StateBrownout]
		st.SheddingTime = gauge.inState[StateShedding]
		st.StateChanges = gauge.changes
	}
	st.Elapsed = h.Clock.Now().Sub(sim.Time(0))
	return st, h, nil
}

// modeToolstack maps a serving mode to the toolstack driving it.
func modeToolstack(m Mode) toolstack.Mode {
	switch {
	case m.UsesPool():
		return toolstack.ModeChaosSplit
	case m == VMPerRequestXL:
		return toolstack.ModeXL
	default:
		return toolstack.ModeChaosXS
	}
}
