package traffic

import (
	"errors"
	"fmt"
	"time"

	"lightvm/internal/apps"
	"lightvm/internal/container"
	"lightvm/internal/core"
	"lightvm/internal/costs"
	"lightvm/internal/guest"
	"lightvm/internal/metrics"
	"lightvm/internal/sched"
	"lightvm/internal/sim"
	"lightvm/internal/toolstack"
)

// Mode selects the serving backend a request lands on.
type Mode int

const (
	// VMPerRequest cold-boots a fresh unikernel for every request
	// (chaos + XenStore, empty pool) and tears it down after the
	// response — the paper's just-in-time instantiation taken
	// literally.
	VMPerRequest Mode = iota
	// PoolReactive serves from split-toolstack shells kept at a fixed
	// depth (§5.2's configurable pool) refilled reactively.
	PoolReactive
	// PoolPredictive is the same warm pool driven by the
	// rate-estimating autoscaler: depth follows the arrival rate.
	PoolPredictive
	// Container starts a Docker-style container per request.
	Container
	// Process fork/execs a plain process per request.
	Process
)

var modeNames = [...]string{"vm", "pool-reactive", "pool-predictive", "container", "process"}

func (m Mode) String() string {
	if m < 0 || int(m) >= len(modeNames) {
		return "unknown"
	}
	return modeNames[m]
}

// UsesPool reports whether the mode serves from warm shells.
func (m Mode) UsesPool() bool { return m == PoolReactive || m == PoolPredictive }

// RejectReason classifies admission backpressure.
type RejectReason int

const (
	// RejectBacklog: the control plane is further behind the arrival
	// than MaxBacklog allows — serving this request would blow the
	// deadline anyway, so it is shed at admission.
	RejectBacklog RejectReason = iota
	// RejectCapacity: the backend refused the work outright (the
	// container engine hitting its memory wall is the canonical case).
	RejectCapacity
)

func (r RejectReason) String() string {
	if r == RejectCapacity {
		return "capacity"
	}
	return "backlog"
}

// Reject is the typed admission-backpressure error: the request was
// shed, not failed. The serving loop counts it and moves on; anything
// that is not a *Reject aborts the run.
type Reject struct {
	Reason  RejectReason
	Backlog time.Duration // control-plane lag at the admission decision
	Cause   error         // backend error for RejectCapacity
}

func (r *Reject) Error() string {
	if r.Cause != nil {
		return fmt.Sprintf("traffic: rejected (%s, backlog %v): %v", r.Reason, r.Backlog, r.Cause)
	}
	return fmt.Sprintf("traffic: rejected (%s, backlog %v)", r.Reason, r.Backlog)
}

func (r *Reject) Unwrap() error { return r.Cause }

// Config parameterizes one open-loop serving run on one host.
type Config struct {
	Machine  sched.Machine // zero value: 8-core/32GB serving host
	Mode     Mode
	Image    guest.Image // guest app image for the VM modes (default Daytime)
	Seed     uint64
	Arrivals Arrivals // required
	Requests int      // number of arrivals to generate (required)

	// RequestsPerSession batches requests onto one instance: the
	// first request of a session pays the boot, the rest ride the
	// already-running guest. Default 1 (pure per-request).
	RequestsPerSession int

	// MaxBacklog is the admission limit on control-plane lag; arrivals
	// finding a deeper queue are shed with RejectBacklog. Default 500ms.
	MaxBacklog time.Duration
	// Timeout is the client's end-to-end deadline; responses beyond it
	// count as timed out (the server still did the work). Default 1s.
	Timeout time.Duration

	// Scaler tunes the pool autoscaler (pool modes only; Policy is
	// overridden to match Mode).
	Scaler toolstack.AutoscalerConfig
	// WarmEvery samples the warm-shell count every N arrivals into
	// Stats.Warm. Default Requests/16.
	WarmEvery int

	// Program is the minipython source executed per request when the
	// image app is "minipython". Default computes a small sum.
	Program string

	// KeepStoreLogs leaves XenStore access logging on. By default the
	// serving host disables it: §4.2 calls out oxenstored logging 20
	// files per access (with a 90ms rotation pause) as a toolstack
	// pathology, and no production serving path would run with it.
	KeepStoreLogs bool

	// hook observes each served request's latency (tests only).
	hook func(k int, lat time.Duration)
}

// Stats is one run's outcome. Latency only holds served requests;
// rejected arrivals never produce a response to measure.
type Stats struct {
	Mode             Mode
	Arrived          int
	Served           int // responses produced (includes timed-out ones)
	TimedOut         int // served past the deadline
	Rejected         int // shed at admission
	RejectedBacklog  int
	RejectedCapacity int

	Latency  metrics.Histogram
	Warm     []int // shells-warm samples over time (every WarmEvery arrivals)
	AppCalls uint64
	Elapsed  time.Duration // virtual time consumed
}

// TimeoutRate is timed-out responses over arrivals.
func (s *Stats) TimeoutRate() float64 {
	if s.Arrived == 0 {
		return 0
	}
	return float64(s.TimedOut) / float64(s.Arrived)
}

// RejectRate is shed arrivals over arrivals.
func (s *Stats) RejectRate() float64 {
	if s.Arrived == 0 {
		return 0
	}
	return float64(s.Rejected) / float64(s.Arrived)
}

// Merge folds another run's stats into s (per-host runs into a fleet
// aggregate). Warm samples are summed index-wise: the fleet's warm
// trajectory is the sum of the hosts'.
func (s *Stats) Merge(o *Stats) {
	s.Arrived += o.Arrived
	s.Served += o.Served
	s.TimedOut += o.TimedOut
	s.Rejected += o.Rejected
	s.RejectedBacklog += o.RejectedBacklog
	s.RejectedCapacity += o.RejectedCapacity
	s.AppCalls += o.AppCalls
	s.Latency.Merge(&o.Latency)
	if o.Elapsed > s.Elapsed {
		s.Elapsed = o.Elapsed
	}
	for i, w := range o.Warm {
		if i < len(s.Warm) {
			s.Warm[i] += w
		} else {
			s.Warm = append(s.Warm, w)
		}
	}
}

const defaultProgram = "total = 0\nfor i in range(10):\n    total = total + i\nprint(total)\n"

// Serve runs one open-loop serving timeline on a fresh host and
// returns its stats plus the host (for fsck and inspection).
//
// The model follows fig16b: the Dom0 control plane serializes on the
// host clock, so a request whose arrival predates the clock queues
// implicitly; in the idle gap before an arrival the autoscaler gets
// the CPU (retarget + replenish) exactly where the real chaos daemon
// would. Guest boot work runs on the guest cores in parallel with the
// control plane, so it is stripped from the image and added to the
// response latency instead of the Dom0 timeline.
func Serve(cfg Config) (*Stats, *core.Host, error) {
	if cfg.Arrivals == nil {
		return nil, nil, errors.New("traffic: Config.Arrivals is required")
	}
	if cfg.Requests <= 0 {
		return nil, nil, errors.New("traffic: Config.Requests must be positive")
	}
	machine := cfg.Machine
	if machine.Cores == 0 {
		machine = sched.Machine{Name: "serve", Cores: 8, Dom0Cores: 1, MemoryGB: 32}
	}
	img := cfg.Image
	if img.Name == "" {
		img = guest.Daytime()
	}
	perSession := cfg.RequestsPerSession
	if perSession < 1 {
		perSession = 1
	}
	maxBacklog := cfg.MaxBacklog
	if maxBacklog <= 0 {
		maxBacklog = 500 * time.Millisecond
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = time.Second
	}
	warmEvery := cfg.WarmEvery
	if warmEvery <= 0 {
		warmEvery = cfg.Requests / 16
		if warmEvery == 0 {
			warmEvery = 1
		}
	}
	program := cfg.Program
	if program == "" {
		program = defaultProgram
	}

	h, err := core.NewHost(machine, cfg.Seed)
	if err != nil {
		return nil, nil, err
	}
	if !cfg.KeepStoreLogs {
		h.Env.Store.LoggingEnabled = false
	}

	tsMode := toolstack.ModeChaosXS
	if cfg.Mode.UsesPool() {
		tsMode = toolstack.ModeChaosSplit
	}
	bootWork := img.BootWork
	img.BootWork = time.Microsecond

	var scaler *toolstack.Autoscaler
	var flavor toolstack.Flavor
	if cfg.Mode.UsesPool() {
		flavor = toolstack.FlavorFor(img, tsMode.UsesStore())
		h.Env.Pool.Register(flavor)
		pol := cfg.Scaler
		if pol.Min <= 0 {
			pol.Min = 8 // the pool's own default depth
		}
		if cfg.Mode == PoolPredictive {
			pol.Policy = toolstack.ScalePredictive
		} else {
			pol.Policy = toolstack.ScaleReactive
		}
		scaler = toolstack.NewAutoscaler(h.Env.Pool, pol)
		// Prime the pool before traffic starts, as the daemon does on
		// configuration.
		if err := scaler.Tick(h.Clock.Now(), 0); err != nil {
			return nil, nil, err
		}
	} else {
		h.Env.Pool.SetTarget(0)
	}

	// Per-response floor: switch forwarding both ways plus the guest
	// answering the connection.
	const appWork = 2*costs.BridgeForward + costs.PingProcess

	st := &Stats{Mode: cfg.Mode}
	reqIdx := 0
	observe := func(lat time.Duration) {
		st.Latency.Observe(lat)
		st.Served++
		if lat > timeout {
			st.TimedOut++
		}
		if cfg.hook != nil {
			cfg.hook(reqIdx, lat)
		}
	}
	reject := func(r *Reject) {
		st.Rejected++
		if r.Reason == RejectCapacity {
			st.RejectedCapacity++
		} else {
			st.RejectedBacklog++
		}
	}

	// Traffic opens once the host is ready: the pool prime ran on the
	// clock, and no real deployment points the load balancer at a host
	// mid-warmup.
	arrive := h.Clock.Now()
	sinceTick := 0
	for k := 0; k < cfg.Requests; k++ {
		reqIdx = k
		arrive = arrive.Add(cfg.Arrivals.Next())
		st.Arrived++
		sinceTick++
		if h.Clock.Now() < arrive {
			// Idle gap: the daemon gets the CPU until the next arrival
			// (the replenish beat yields to foreground work at the
			// deadline rather than batching an unbounded top-up).
			if scaler != nil {
				if err := scaler.TickUntil(h.Clock.Now(), sinceTick, arrive); err != nil {
					return nil, nil, err
				}
				sinceTick = 0
			}
			h.Clock.AdvanceTo(arrive)
		}
		if k%warmEvery == 0 {
			w := 0
			if cfg.Mode.UsesPool() {
				w = h.Env.Pool.Available(flavor)
			}
			st.Warm = append(st.Warm, w)
		}
		backlog := h.Clock.Now().Sub(arrive)
		if backlog > maxBacklog {
			reject(&Reject{Reason: RejectBacklog, Backlog: backlog})
			continue
		}

		switch cfg.Mode {
		case Container:
			c, err := h.Docker.Run(container.MicropythonImage().Name)
			if err != nil {
				// The engine saying no (memory wall, daemon-table
				// growth) is backpressure, not a simulation bug.
				reject(&Reject{Reason: RejectCapacity, Backlog: backlog, Cause: err})
				continue
			}
			lat := h.Clock.Now().Sub(arrive) + appWork
			observe(lat)
			for r := 1; r < perSession; r++ {
				observe(appWork)
				st.Arrived++
			}
			if err := h.Docker.Stop(c.ID); err != nil {
				return nil, nil, err
			}
		case Process:
			if _, err := h.Procs.Spawn(0); err != nil {
				reject(&Reject{Reason: RejectCapacity, Backlog: backlog, Cause: err})
				continue
			}
			lat := h.Clock.Now().Sub(arrive) + appWork
			observe(lat)
			for r := 1; r < perSession; r++ {
				observe(appWork)
				st.Arrived++
			}
		default: // the unikernel modes
			name := fmt.Sprintf("req%d", k)
			vm, err := h.CreateVM(tsMode, name, img)
			if err != nil {
				return nil, nil, fmt.Errorf("traffic: create %s: %w", name, err)
			}
			// The guest finishes booting bootWork later, on its own core.
			ready := h.Clock.Now().Add(bootWork)
			call := func() error {
				switch app := h.AppOf(name).(type) {
				case *apps.Daytime:
					if app.Serve() == "" {
						return fmt.Errorf("traffic: %s served empty daytime", name)
					}
				case *apps.PyFunc:
					if _, err := app.Run(program); err != nil {
						return fmt.Errorf("traffic: %s: %w", name, err)
					}
				default:
					if !h.Ping(vm) {
						return fmt.Errorf("traffic: %s did not answer", name)
					}
				}
				st.AppCalls++
				return nil
			}
			if err := call(); err != nil {
				return nil, nil, err
			}
			observe(ready.Sub(arrive) + appWork)
			for r := 1; r < perSession; r++ {
				if err := call(); err != nil {
					return nil, nil, err
				}
				observe(appWork)
				st.Arrived++
			}
			// Teardown rides the control plane after the response — it
			// is off this request's latency but delays the next one.
			if err := h.DestroyVM(vm); err != nil {
				return nil, nil, fmt.Errorf("traffic: destroy %s: %w", name, err)
			}
		}
	}
	st.Elapsed = h.Clock.Now().Sub(sim.Time(0))
	return st, h, nil
}
