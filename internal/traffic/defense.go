package traffic

import (
	"time"

	"lightvm/internal/guest"
	"lightvm/internal/hv"
	"lightvm/internal/sim"
)

// Overload defenses. Each is independently toggleable on Config via
// the Defense struct; all of them together are what turns the
// metastable collapse of ext-overload's defenses-off cells into
// bounded, recovering behaviour. Everything here is deterministic —
// pure functions of the request sequence — so defended runs stay
// byte-identical per seed.

// OverloadState is the serving plane's degradation level, driven by
// the observed control-plane backlog with hysteresis (see stateGauge).
type OverloadState int

const (
	// StateNormal: backlog comfortably under the latency target;
	// everything is served at full fidelity.
	StateNormal OverloadState = iota
	// StateBrownout: backlog past half the latency target. Brownout
	// serving (when enabled) switches to the degraded shell image and
	// skips non-essential store writes; priority shedding (when
	// enabled) starts turning away batch-class work.
	StateBrownout
	// StateShedding: backlog past the admission limit — requests are
	// being rejected outright.
	StateShedding
)

var stateNames = [...]string{"normal", "brownout", "shedding"}

func (s OverloadState) String() string {
	if s >= 0 && int(s) < len(stateNames) {
		return stateNames[s]
	}
	return "unknown"
}

// Class is a request's scheduling class for two-priority shedding.
type Class int

const (
	// ClassPaid is latency-sensitive foreground work: shed last.
	ClassPaid Class = iota
	// ClassBatch is delay-tolerant background work: shed first.
	ClassBatch
)

func (c Class) String() string {
	if c == ClassBatch {
		return "batch"
	}
	return "paid"
}

// Defense bundles the overload defenses. The zero value disables all
// of them, which reproduces the pre-defense serving plane exactly.
type Defense struct {
	// AdaptiveAdmit replaces the fixed MaxBacklog admission deadline
	// with an AIMD limit on control-plane lag: multiplicative decrease
	// when a response's latency exceeds LatencyTarget, additive
	// increase when it doesn't. The limit can never exceed MaxBacklog
	// — the static deadline remains the outer bound.
	AdaptiveAdmit bool
	// LatencyTarget is the response-latency goal the limiter steers
	// toward. Default Timeout/2.
	LatencyTarget time.Duration
	// RetryBudget > 0 caps re-arrival amplification: retries are
	// admitted only against a token bucket that earns RetryBudget
	// tokens per fresh arrival (Finagle-style budget, enforced at the
	// server's front door). 0 disables the budget.
	RetryBudget float64
	// PriorityShed sheds ClassBatch requests as soon as the plane
	// leaves StateNormal, reserving the remaining capacity for
	// ClassPaid.
	PriorityShed bool
	// BatchFraction is the seeded fraction of fresh arrivals tagged
	// ClassBatch. Default 0.25 when PriorityShed is on, else 0.
	BatchFraction float64
	// Brownout serves from a degraded shell image (half the memory,
	// half the image bytes, no console, no boot-time store chatter)
	// whenever the plane is past StateNormal, trading fidelity for
	// control-plane headroom.
	Brownout bool
}

// Any reports whether any defense is enabled.
func (d Defense) Any() bool {
	return d.AdaptiveAdmit || d.RetryBudget > 0 || d.PriorityShed || d.Brownout
}

// aimdLimiter adapts the admission limit on control-plane lag.
// Classic AIMD keeps the operating point near the cliff without
// camping on it: every response later than target multiplies the
// limit by aimdBeta, every response within target adds target/16.
type aimdLimiter struct {
	limit  time.Duration
	target time.Duration
	min    time.Duration
	max    time.Duration
}

const aimdBeta = 0.75

func newAIMDLimiter(target, maxBacklog time.Duration) *aimdLimiter {
	min := target / 8
	if min <= 0 {
		min = time.Millisecond
	}
	return &aimdLimiter{limit: target, target: target, min: min, max: maxBacklog}
}

// observe feeds one produced response's latency into the controller.
func (l *aimdLimiter) observe(lat time.Duration) {
	if lat > l.target {
		l.limit = time.Duration(float64(l.limit) * aimdBeta)
	} else {
		l.limit += l.target / 16
	}
	if l.limit < l.min {
		l.limit = l.min
	}
	if l.limit > l.max {
		l.limit = l.max
	}
}

// retryBudget is the server-side token bucket bounding how many
// retries the plane will accept per fresh arrival.
type retryBudget struct {
	ratio  float64
	tokens float64
	cap    float64
}

func newRetryBudget(ratio float64) *retryBudget {
	cap := ratio * 64
	if cap < 4 {
		cap = 4
	}
	return &retryBudget{ratio: ratio, cap: cap, tokens: cap}
}

// earn accrues budget on a fresh arrival.
func (b *retryBudget) earn() {
	b.tokens += b.ratio
	if b.tokens > b.cap {
		b.tokens = b.cap
	}
}

// spend admits one retry if the budget allows.
func (b *retryBudget) spend() bool {
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}

// stateGauge tracks the Normal → Brownout → Shedding ladder with
// hysteresis and accounts time spent in each degraded state. Enter
// thresholds: backlog > target/2 for Brownout, backlog > the admission
// limit for Shedding. Exit back to Normal only below target/4, so the
// state does not flap across a single boundary.
type stateGauge struct {
	state     OverloadState
	target    time.Duration
	changedAt sim.Time
	changes   int
	inState   [3]time.Duration
}

func newStateGauge(target time.Duration, now sim.Time) *stateGauge {
	return &stateGauge{target: target, changedAt: now}
}

// observe folds one admission decision's backlog into the gauge and
// returns the state in force for this request.
func (g *stateGauge) observe(now sim.Time, backlog, limit time.Duration) OverloadState {
	next := g.state
	switch {
	case backlog > limit:
		next = StateShedding
	case backlog > g.target/2:
		next = StateBrownout
	case backlog <= g.target/4:
		next = StateNormal
	default:
		// Hysteresis band: hold the current state, but a shedding
		// plane whose backlog dropped under the limit has at least
		// recovered to brownout.
		if g.state == StateShedding {
			next = StateBrownout
		}
	}
	if next != g.state {
		g.inState[g.state] += now.Sub(g.changedAt)
		g.state = next
		g.changedAt = now
		g.changes++
	}
	return g.state
}

// flush closes the open interval at the end of the run.
func (g *stateGauge) flush(now sim.Time) {
	g.inState[g.state] += now.Sub(g.changedAt)
	g.changedAt = now
}

// retryReq is a storm re-arrival waiting in the client backoff queue.
type retryReq struct {
	at      sim.Time
	seq     int // tiebreak and FIFO order among equal times
	orig    int // fresh index of the original request
	attempt int // 1-based attempt number of THIS arrival (first try = 1)
	class   Class
}

// retryHeap is a hand-rolled min-heap on (at, seq): deterministic
// ordering, no interface boxing on the serving hot path.
type retryHeap []retryReq

func (h retryHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *retryHeap) push(r retryReq) {
	*h = append(*h, r)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !(*h).less(i, p) {
			break
		}
		(*h)[i], (*h)[p] = (*h)[p], (*h)[i]
		i = p
	}
}

func (h *retryHeap) pop() retryReq {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && (*h).less(l, s) {
			s = l
		}
		if r < n && (*h).less(r, s) {
			s = r
		}
		if s == i {
			break
		}
		(*h)[i], (*h)[s] = (*h)[s], (*h)[i]
		i = s
	}
	return top
}

// brownoutImage degrades img to its brownout shell: half the RAM,
// half the image bytes (a feature-stripped build), no console device
// and no boot-time store chatter — §4.2's "do less in the control
// plane" applied at runtime. The app and its network path survive, so
// degraded responses are still correct answers.
func brownoutImage(img guest.Image) guest.Image {
	img.Name += "+brownout"
	if img.MemBytes >= 2<<20 {
		img.MemBytes /= 2
	}
	if img.SizeBytes >= 2<<10 {
		img.SizeBytes /= 2
	}
	img.StoreOpsBoot = 0
	var devs []guest.DeviceSpec
	for _, d := range img.Devices {
		if d.Kind != hv.DevConsole {
			devs = append(devs, d)
		}
	}
	img.Devices = devs
	return img
}
