// Package overlayfs is an in-memory layered filesystem with OverlayFS
// semantics — upper layer writes, lower layer stacking, whiteouts —
// used by the Tinyx build system exactly the way the paper uses the
// real OverlayFS (§3.2): "Tinyx first mounts an empty OverlayFS
// directory over a Debian minimal debootstrap system ... unmounting
// this overlay gives us all the files ... we overlay this directory on
// top of a BusyBox image as an underlay and take the contents of the
// merged directory".
package overlayfs

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// ErrNotExist is returned for missing paths.
var ErrNotExist = errors.New("overlayfs: file does not exist")

// Entry is a file in a layer.
type Entry struct {
	Data []byte
	Mode uint32
}

// Layer is one filesystem layer: files plus whiteouts masking
// lower-layer paths.
type Layer struct {
	Name      string
	files     map[string]*Entry
	whiteouts map[string]struct{}
}

// NewLayer creates an empty layer.
func NewLayer(name string) *Layer {
	return &Layer{Name: name, files: make(map[string]*Entry), whiteouts: make(map[string]struct{})}
}

// clean normalizes a path to /a/b/c form.
func clean(path string) string {
	path = "/" + strings.Trim(path, "/")
	for strings.Contains(path, "//") {
		path = strings.ReplaceAll(path, "//", "/")
	}
	return path
}

// Put writes a file into the layer directly (used to build base
// layers such as the debootstrap system or the BusyBox underlay).
func (l *Layer) Put(path string, data []byte, mode uint32) {
	p := clean(path)
	l.files[p] = &Entry{Data: data, Mode: mode}
	delete(l.whiteouts, p)
}

// NumFiles reports the number of files in this layer alone.
func (l *Layer) NumFiles() int { return len(l.files) }

// SizeBytes reports total file bytes in this layer alone.
func (l *Layer) SizeBytes() uint64 {
	var n uint64
	for _, e := range l.files {
		n += uint64(len(e.Data))
	}
	return n
}

// Overlay is a mounted view: one writable upper layer over read-only
// lowers (lowers[0] is the bottom).
type Overlay struct {
	upper  *Layer
	lowers []*Layer // bottom → top order
}

// Mount stacks lowers (bottom first) under the writable upper.
func Mount(upper *Layer, lowers ...*Layer) *Overlay {
	return &Overlay{upper: upper, lowers: lowers}
}

// layersTopDown yields upper, then lowers from top to bottom.
func (o *Overlay) layersTopDown() []*Layer {
	out := []*Layer{o.upper}
	for i := len(o.lowers) - 1; i >= 0; i-- {
		out = append(out, o.lowers[i])
	}
	return out
}

// Read returns a file's contents, honouring whiteouts.
func (o *Overlay) Read(path string) ([]byte, error) {
	p := clean(path)
	for _, l := range o.layersTopDown() {
		if _, wh := l.whiteouts[p]; wh {
			return nil, fmt.Errorf("%w: %s (whiteout)", ErrNotExist, p)
		}
		if e, ok := l.files[p]; ok {
			return e.Data, nil
		}
	}
	return nil, fmt.Errorf("%w: %s", ErrNotExist, p)
}

// Exists reports whether the path is visible in the merged view.
func (o *Overlay) Exists(path string) bool {
	_, err := o.Read(path)
	return err == nil
}

// Write stores a file in the upper layer (copy-up semantics are
// implicit: the upper version shadows any lower one).
func (o *Overlay) Write(path string, data []byte, mode uint32) {
	o.upper.Put(path, data, mode)
}

// Remove deletes a path from the merged view. Files present in lower
// layers get a whiteout in the upper layer; upper-only files are
// simply removed.
func (o *Overlay) Remove(path string) error {
	p := clean(path)
	if !o.Exists(p) {
		return fmt.Errorf("%w: %s", ErrNotExist, p)
	}
	delete(o.upper.files, p)
	for _, l := range o.lowers {
		if _, ok := l.files[p]; ok {
			o.upper.whiteouts[p] = struct{}{}
			break
		}
	}
	return nil
}

// RemoveTree removes every visible path under prefix and returns how
// many entries were removed.
func (o *Overlay) RemoveTree(prefix string) int {
	p := clean(prefix)
	n := 0
	for _, path := range o.Paths() {
		if path == p || strings.HasPrefix(path, p+"/") {
			if o.Remove(path) == nil {
				n++
			}
		}
	}
	return n
}

// Paths returns every visible path in sorted order.
func (o *Overlay) Paths() []string {
	seen := make(map[string]bool)
	hidden := make(map[string]bool)
	var out []string
	for _, l := range o.layersTopDown() {
		for p := range l.whiteouts {
			if !seen[p] {
				hidden[p] = true
			}
		}
		for p := range l.files {
			if !seen[p] && !hidden[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	sort.Strings(out)
	return out
}

// SizeBytes reports the total visible file bytes of the merged view.
func (o *Overlay) SizeBytes() uint64 {
	var n uint64
	for _, p := range o.Paths() {
		data, err := o.Read(p)
		if err == nil {
			n += uint64(len(data))
		}
	}
	return n
}

// Flatten materializes the merged view into a single standalone layer
// — the "unmount and take the contents" step of the Tinyx pipeline.
func (o *Overlay) Flatten(name string) *Layer {
	out := NewLayer(name)
	for _, p := range o.Paths() {
		data, err := o.Read(p)
		if err != nil {
			continue
		}
		cp := make([]byte, len(data))
		copy(cp, data)
		out.Put(p, cp, 0o644)
	}
	return out
}
