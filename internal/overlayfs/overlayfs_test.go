package overlayfs

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

func TestLayerPutAndSize(t *testing.T) {
	l := NewLayer("base")
	l.Put("/bin/sh", []byte("shell"), 0o755)
	l.Put("bin/sh", []byte("shell2"), 0o755) // same path, normalized
	if l.NumFiles() != 1 {
		t.Fatalf("NumFiles = %d", l.NumFiles())
	}
	if l.SizeBytes() != 6 {
		t.Fatalf("SizeBytes = %d", l.SizeBytes())
	}
}

func TestUpperShadowsLower(t *testing.T) {
	base := NewLayer("base")
	base.Put("/etc/issue", []byte("Debian"), 0o644)
	ov := Mount(NewLayer("up"), base)
	got, err := ov.Read("/etc/issue")
	if err != nil || string(got) != "Debian" {
		t.Fatalf("read through: %q %v", got, err)
	}
	ov.Write("/etc/issue", []byte("Tinyx"), 0o644)
	got, _ = ov.Read("/etc/issue")
	if string(got) != "Tinyx" {
		t.Fatalf("upper not shadowing: %q", got)
	}
}

func TestWhiteoutHidesLowerFile(t *testing.T) {
	base := NewLayer("base")
	base.Put("/var/cache/apt.bin", []byte("cache"), 0o644)
	ov := Mount(NewLayer("up"), base)
	if err := ov.Remove("/var/cache/apt.bin"); err != nil {
		t.Fatal(err)
	}
	if ov.Exists("/var/cache/apt.bin") {
		t.Fatal("whiteout ineffective")
	}
	if _, err := ov.Read("/var/cache/apt.bin"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("read of whiteout: %v", err)
	}
	// The base layer itself is untouched.
	if base.NumFiles() != 1 {
		t.Fatal("lower layer mutated")
	}
	// Removing again fails.
	if err := ov.Remove("/var/cache/apt.bin"); err == nil {
		t.Fatal("double remove accepted")
	}
}

func TestRemoveUpperOnlyFile(t *testing.T) {
	ov := Mount(NewLayer("up"))
	ov.Write("/tmp/x", []byte("1"), 0o644)
	if err := ov.Remove("/tmp/x"); err != nil {
		t.Fatal(err)
	}
	if ov.Exists("/tmp/x") {
		t.Fatal("upper file survived remove")
	}
	if len(ov.upper.whiteouts) != 0 {
		t.Fatal("needless whiteout created")
	}
}

func TestWriteAfterWhiteoutRevives(t *testing.T) {
	base := NewLayer("base")
	base.Put("/f", []byte("old"), 0o644)
	ov := Mount(NewLayer("up"), base)
	_ = ov.Remove("/f")
	ov.Write("/f", []byte("new"), 0o644)
	got, err := ov.Read("/f")
	if err != nil || string(got) != "new" {
		t.Fatalf("revive: %q %v", got, err)
	}
}

func TestMultipleLowersTopWins(t *testing.T) {
	bottom := NewLayer("busybox")
	bottom.Put("/bin/ls", []byte("busybox-ls"), 0o755)
	bottom.Put("/bin/only-busybox", []byte("bb"), 0o755)
	middle := NewLayer("debian")
	middle.Put("/bin/ls", []byte("coreutils-ls"), 0o755)
	ov := Mount(NewLayer("up"), bottom, middle)
	got, _ := ov.Read("/bin/ls")
	if string(got) != "coreutils-ls" {
		t.Fatalf("layer precedence: %q", got)
	}
	if !ov.Exists("/bin/only-busybox") {
		t.Fatal("bottom layer invisible")
	}
}

func TestPathsSortedAndDeduped(t *testing.T) {
	base := NewLayer("base")
	base.Put("/b", []byte("1"), 0o644)
	base.Put("/a", []byte("2"), 0o644)
	ov := Mount(NewLayer("up"), base)
	ov.Write("/b", []byte("xx"), 0o644)
	ov.Write("/c", []byte("3"), 0o644)
	paths := ov.Paths()
	want := []string{"/a", "/b", "/c"}
	if len(paths) != 3 {
		t.Fatalf("paths = %v", paths)
	}
	for i := range want {
		if paths[i] != want[i] {
			t.Fatalf("paths = %v", paths)
		}
	}
}

func TestRemoveTree(t *testing.T) {
	base := NewLayer("base")
	base.Put("/var/cache/a", []byte("1"), 0o644)
	base.Put("/var/cache/sub/b", []byte("2"), 0o644)
	base.Put("/var/lib/keep", []byte("3"), 0o644)
	ov := Mount(NewLayer("up"), base)
	if n := ov.RemoveTree("/var/cache"); n != 2 {
		t.Fatalf("RemoveTree removed %d", n)
	}
	if ov.Exists("/var/cache/a") || ov.Exists("/var/cache/sub/b") {
		t.Fatal("tree not removed")
	}
	if !ov.Exists("/var/lib/keep") {
		t.Fatal("sibling removed")
	}
}

func TestFlatten(t *testing.T) {
	base := NewLayer("base")
	base.Put("/keep", []byte("k"), 0o644)
	base.Put("/gone", []byte("g"), 0o644)
	ov := Mount(NewLayer("up"), base)
	ov.Write("/new", []byte("n"), 0o644)
	_ = ov.Remove("/gone")
	flat := ov.Flatten("merged")
	if flat.NumFiles() != 2 {
		t.Fatalf("flatten has %d files", flat.NumFiles())
	}
	// Flattened layer is independent: mutating it leaves the overlay
	// alone.
	flat.Put("/keep", []byte("mutated"), 0o644)
	got, _ := ov.Read("/keep")
	if string(got) != "k" {
		t.Fatal("flatten aliased the overlay")
	}
}

func TestSizeBytesMerged(t *testing.T) {
	base := NewLayer("base")
	base.Put("/a", make([]byte, 100), 0o644)
	ov := Mount(NewLayer("up"), base)
	ov.Write("/a", make([]byte, 10), 0o644) // shadows the 100
	ov.Write("/b", make([]byte, 5), 0o644)
	if got := ov.SizeBytes(); got != 15 {
		t.Fatalf("SizeBytes = %d, want 15", got)
	}
}

// Property: flatten(overlay) has exactly the visible paths, with
// identical contents.
func TestFlattenEquivalenceQuick(t *testing.T) {
	f := func(ops []uint16) bool {
		base := NewLayer("base")
		for i := 0; i < 10; i++ {
			base.Put(fmt.Sprintf("/f%d", i), []byte{byte(i)}, 0o644)
		}
		ov := Mount(NewLayer("up"), base)
		for _, op := range ops {
			path := fmt.Sprintf("/f%d", op%16)
			switch (op / 16) % 3 {
			case 0:
				ov.Write(path, []byte{byte(op)}, 0o644)
			case 1:
				_ = ov.Remove(path)
			case 2:
				_, _ = ov.Read(path)
			}
		}
		flat := ov.Flatten("m")
		paths := ov.Paths()
		if flat.NumFiles() != len(paths) {
			return false
		}
		for _, p := range paths {
			want, err := ov.Read(p)
			if err != nil {
				return false
			}
			got, ok := flat.files[p]
			if !ok || string(got.Data) != string(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
