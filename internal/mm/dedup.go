package mm

import (
	"errors"
	"fmt"
)

// SharePool implements content-keyed page sharing between guests — the
// memory-deduplication extension the paper sketches in §9 ("One avenue
// of optimization is to use memory de-duplication (as proposed by
// SnowFlock) to reduce the overall memory footprint"). Guests booted
// from the same image share its resident pages (and their untouched
// zero pages) read-only; a write breaks the share with a private copy.
type SharePool struct {
	alloc *Allocator
	pages map[string]*sharedRegion
	// owner space for shared regions, clear of domain/container IDs.
	nextOwner Owner
}

type sharedRegion struct {
	key     string
	extents []Extent
	bytes   uint64
	refs    int
	owner   Owner
}

// ErrNoShare is returned when releasing or breaking an unknown key.
var ErrNoShare = errors.New("mm: no such shared region")

// NewSharePool creates a pool over alloc.
func NewSharePool(alloc *Allocator) *SharePool {
	return &SharePool{alloc: alloc, pages: make(map[string]*sharedRegion), nextOwner: 1 << 28}
}

// Acquire maps the shared region key of the given size into a guest:
// the first acquirer pays the allocation, later ones only bump the
// reference count (that is the entire saving). It returns the number
// of bytes newly allocated (0 on a share hit).
func (p *SharePool) Acquire(key string, bytes uint64) (uint64, error) {
	if bytes == 0 {
		return 0, errors.New("mm: zero-byte share")
	}
	r, ok := p.pages[key]
	if ok {
		if r.bytes != bytes {
			return 0, fmt.Errorf("mm: shared region %q is %d bytes, requested %d", key, r.bytes, bytes)
		}
		r.refs++
		return 0, nil
	}
	exts, err := p.alloc.AllocBytes(bytes, p.nextOwner)
	if err != nil {
		return 0, err
	}
	p.pages[key] = &sharedRegion{key: key, extents: exts, bytes: bytes, refs: 1, owner: p.nextOwner}
	p.nextOwner++
	return bytes, nil
}

// Release drops one reference; the region is freed when the last
// sharer goes away.
func (p *SharePool) Release(key string) error {
	r, ok := p.pages[key]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoShare, key)
	}
	r.refs--
	if r.refs > 0 {
		return nil
	}
	for _, e := range r.extents {
		if err := p.alloc.Free(e); err != nil {
			return err
		}
	}
	delete(p.pages, key)
	return nil
}

// BreakCOW gives one sharer a private copy of breakBytes of the
// region (a guest wrote to shared pages): the private pages are
// allocated for owner and the share reference is retained for the
// remainder. It returns the extents of the private copy.
func (p *SharePool) BreakCOW(key string, breakBytes uint64, owner Owner) ([]Extent, error) {
	r, ok := p.pages[key]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoShare, key)
	}
	if breakBytes > r.bytes {
		return nil, fmt.Errorf("mm: COW break of %d bytes exceeds region %q (%d bytes)", breakBytes, key, r.bytes)
	}
	return p.alloc.AllocBytes(breakBytes, owner)
}

// Refs reports the sharer count of a region (0 if absent).
func (p *SharePool) Refs(key string) int {
	if r, ok := p.pages[key]; ok {
		return r.refs
	}
	return 0
}

// SharedBytes reports total memory held by shared regions (counted
// once, however many sharers there are).
func (p *SharePool) SharedBytes() uint64 {
	var n uint64
	for _, r := range p.pages {
		n += r.bytes
	}
	return n
}

// Regions reports the number of distinct shared regions.
func (p *SharePool) Regions() int { return len(p.pages) }
