package mm

import (
	"errors"
	"testing"
)

func TestShareAcquireRelease(t *testing.T) {
	a := newTest(64)
	p := NewSharePool(a)
	paid, err := p.Acquire("kernel:daytime", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if paid != 1<<20 {
		t.Fatalf("first acquire paid %d", paid)
	}
	used := a.UsedBytes()
	// 99 more sharers pay nothing.
	for i := 0; i < 99; i++ {
		paid, err := p.Acquire("kernel:daytime", 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		if paid != 0 {
			t.Fatalf("share hit paid %d bytes", paid)
		}
	}
	if a.UsedBytes() != used {
		t.Fatal("share hits allocated memory")
	}
	if p.Refs("kernel:daytime") != 100 {
		t.Fatalf("refs = %d", p.Refs("kernel:daytime"))
	}
	// Releases free only at zero refs.
	for i := 0; i < 99; i++ {
		if err := p.Release("kernel:daytime"); err != nil {
			t.Fatal(err)
		}
	}
	if a.UsedBytes() != used {
		t.Fatal("early release freed shared pages")
	}
	if err := p.Release("kernel:daytime"); err != nil {
		t.Fatal(err)
	}
	if a.UsedBytes() != 0 {
		t.Fatal("last release leaked")
	}
	if p.Regions() != 0 {
		t.Fatal("region survived")
	}
}

func TestShareSizeMismatch(t *testing.T) {
	p := NewSharePool(newTest(8))
	if _, err := p.Acquire("k", 4096); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Acquire("k", 8192); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if _, err := p.Acquire("z", 0); err == nil {
		t.Fatal("zero-byte share accepted")
	}
}

func TestReleaseUnknown(t *testing.T) {
	p := NewSharePool(newTest(8))
	if err := p.Release("ghost"); !errors.Is(err, ErrNoShare) {
		t.Fatalf("release of unknown: %v", err)
	}
}

func TestBreakCOW(t *testing.T) {
	a := newTest(64)
	p := NewSharePool(a)
	if _, err := p.Acquire("k", 1<<20); err != nil {
		t.Fatal(err)
	}
	before := a.UsedBytes()
	exts, err := p.BreakCOW("k", 256<<10, Owner(42))
	if err != nil {
		t.Fatal(err)
	}
	if a.UsedBytes()-before != 256<<10 {
		t.Fatalf("COW break allocated %d", a.UsedBytes()-before)
	}
	if a.OwnerBytes(42) != 256<<10 {
		t.Fatal("COW pages not charged to the writer")
	}
	if len(exts) == 0 {
		t.Fatal("no extents returned")
	}
	// Break beyond the region is rejected.
	if _, err := p.BreakCOW("k", 2<<20, Owner(42)); err == nil {
		t.Fatal("oversized COW break accepted")
	}
	if _, err := p.BreakCOW("ghost", 1, Owner(42)); !errors.Is(err, ErrNoShare) {
		t.Fatalf("COW on unknown region: %v", err)
	}
}

func TestSharedBytesCountsOnce(t *testing.T) {
	p := NewSharePool(newTest(64))
	_, _ = p.Acquire("a", 1<<20)
	_, _ = p.Acquire("a", 1<<20)
	_, _ = p.Acquire("b", 2<<20)
	if p.SharedBytes() != 3<<20 {
		t.Fatalf("SharedBytes = %d", p.SharedBytes())
	}
	if p.Regions() != 2 {
		t.Fatalf("Regions = %d", p.Regions())
	}
}
