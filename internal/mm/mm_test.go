package mm

import (
	"testing"
	"testing/quick"
)

func newTest(mb uint64) *Allocator { return New(mb * 1024 * 1024) }

func TestNewSeedsAllMemory(t *testing.T) {
	a := newTest(128)
	if a.TotalPages() != 128*1024*1024/PageSize {
		t.Fatalf("TotalPages = %d", a.TotalPages())
	}
	if a.FreePages() != a.TotalPages() {
		t.Fatalf("fresh allocator not fully free: %d/%d", a.FreePages(), a.TotalPages())
	}
	if err := a.checkInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocFreeRoundTrip(t *testing.T) {
	a := newTest(64)
	e, err := a.AllocPages(100, 1) // rounds to 128
	if err != nil {
		t.Fatal(err)
	}
	if e.Pages() != 128 {
		t.Fatalf("alloc of 100 pages gave %d", e.Pages())
	}
	if a.OwnerBytes(1) != 128*PageSize {
		t.Fatalf("OwnerBytes = %d", a.OwnerBytes(1))
	}
	if err := a.Free(e); err != nil {
		t.Fatal(err)
	}
	if a.FreePages() != a.TotalPages() {
		t.Fatal("free did not return all pages")
	}
	if a.OwnerBytes(1) != 0 {
		t.Fatal("owner accounting not cleared")
	}
	if err := a.checkInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleFreeRejected(t *testing.T) {
	a := newTest(16)
	e, err := a.AllocPages(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Free(e); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(e); err == nil {
		t.Fatal("double free accepted")
	}
}

func TestFreeWrongOrderRejected(t *testing.T) {
	a := newTest(16)
	e, err := a.AllocPages(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	bad := Extent{Base: e.Base, Order: e.Order + 1}
	if err := a.Free(bad); err == nil {
		t.Fatal("free with wrong order accepted")
	}
}

func TestOutOfMemory(t *testing.T) {
	a := newTest(1) // 256 pages
	if _, err := a.AllocPages(512, 1); err != ErrOutOfMemory {
		t.Fatalf("want ErrOutOfMemory, got %v", err)
	}
	// Exhaust, then fail.
	var exts []Extent
	for {
		e, err := a.AllocPages(64, 2)
		if err != nil {
			break
		}
		exts = append(exts, e)
	}
	if len(exts) != 4 {
		t.Fatalf("expected 4×64-page allocs from 256 pages, got %d", len(exts))
	}
	if _, err := a.AllocPages(1, 3); err != ErrOutOfMemory {
		t.Fatalf("want ErrOutOfMemory after exhaustion, got %v", err)
	}
}

func TestZeroPagesRejected(t *testing.T) {
	a := newTest(4)
	if _, err := a.AllocPages(0, 1); err == nil {
		t.Fatal("zero-page alloc accepted")
	}
}

func TestCoalescingRestoresLargeBlocks(t *testing.T) {
	a := newTest(4) // 1024 pages
	var exts []Extent
	for i := 0; i < 1024; i++ {
		e, err := a.AllocPages(1, Owner(i))
		if err != nil {
			t.Fatal(err)
		}
		exts = append(exts, e)
	}
	for _, e := range exts {
		if err := a.Free(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.checkInvariant(); err != nil {
		t.Fatal(err)
	}
	// After full coalescing a single 1024-page alloc must succeed.
	if _, err := a.AllocPages(1024, 1); err != nil {
		t.Fatalf("coalescing failed: %v", err)
	}
}

func TestAllocBytes(t *testing.T) {
	a := newTest(64)
	exts, err := a.AllocBytes(10*1024*1024, 7) // 10 MiB = 2560 pages
	if err != nil {
		t.Fatal(err)
	}
	var pages uint64
	for _, e := range exts {
		pages += e.Pages()
	}
	if pages != 2560 {
		t.Fatalf("AllocBytes covered %d pages, want exactly 2560", pages)
	}
	if a.OwnerBytes(7) != pages*PageSize {
		t.Fatalf("owner accounting %d != %d", a.OwnerBytes(7), pages*PageSize)
	}
}

func TestAllocBytesRollbackOnFailure(t *testing.T) {
	a := newTest(1) // 256 pages = 1 MiB
	if _, err := a.AllocBytes(2*1024*1024, 1); err == nil {
		t.Fatal("oversized AllocBytes succeeded")
	}
	if a.FreePages() != a.TotalPages() {
		t.Fatal("failed AllocBytes leaked pages")
	}
	if a.OwnerBytes(1) != 0 {
		t.Fatal("failed AllocBytes left owner accounting")
	}
}

func TestFreeOwner(t *testing.T) {
	a := newTest(32)
	for i := 0; i < 10; i++ {
		if _, err := a.AllocBytes(1024*1024, 5); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.AllocBytes(1024*1024, 6); err != nil {
		t.Fatal(err)
	}
	freed := a.FreeOwner(5)
	if freed != 10*1024*1024 {
		t.Fatalf("FreeOwner freed %d bytes, want 10 MiB", freed)
	}
	if a.OwnerBytes(5) != 0 {
		t.Fatal("owner 5 still holds memory")
	}
	if a.OwnerBytes(6) == 0 {
		t.Fatal("FreeOwner(5) touched owner 6")
	}
	if err := a.checkInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestOwnersList(t *testing.T) {
	a := newTest(8)
	for _, o := range []Owner{9, 3, 5} {
		if _, err := a.AllocPages(1, o); err != nil {
			t.Fatal(err)
		}
	}
	got := a.Owners()
	want := []Owner{3, 5, 9}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("Owners = %v, want %v", got, want)
	}
}

func TestExtentGeometry(t *testing.T) {
	e := Extent{Base: 128, Order: 3}
	if e.Pages() != 8 || e.Bytes() != 8*PageSize {
		t.Fatalf("geometry: pages=%d bytes=%d", e.Pages(), e.Bytes())
	}
}

func TestUsedBytes(t *testing.T) {
	a := newTest(8)
	if a.UsedBytes() != 0 {
		t.Fatal("fresh allocator reports usage")
	}
	e, _ := a.AllocPages(16, 1)
	if a.UsedBytes() != 16*PageSize {
		t.Fatalf("UsedBytes = %d", a.UsedBytes())
	}
	_ = a.Free(e)
	if a.UsedBytes() != 0 {
		t.Fatal("UsedBytes nonzero after free")
	}
}

// Property: any interleaving of allocs and frees keeps the invariant
// and never loses pages.
func TestAllocFreePropertyQuick(t *testing.T) {
	f := func(ops []uint16) bool {
		a := newTest(16) // 4096 pages
		var live []Extent
		for _, op := range ops {
			if op%3 != 0 || len(live) == 0 { // alloc-biased
				pages := uint64(op%64) + 1
				e, err := a.AllocPages(pages, Owner(op%8)+1)
				if err == nil {
					live = append(live, e)
				}
			} else {
				i := int(op/3) % len(live)
				if err := a.Free(live[i]); err != nil {
					return false
				}
				live = append(live[:i], live[i+1:]...)
			}
			if err := a.checkInvariant(); err != nil {
				return false
			}
		}
		for _, e := range live {
			if err := a.Free(e); err != nil {
				return false
			}
		}
		return a.FreePages() == a.TotalPages() && a.checkInvariant() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAllocFree8MB(b *testing.B) {
	a := New(4 << 30)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e, err := a.AllocPages(2048, 1) // 8 MiB, a unikernel's RAM
		if err != nil {
			b.Fatal(err)
		}
		if err := a.Free(e); err != nil {
			b.Fatal(err)
		}
	}
}

// TestPressureWithholdsHeadroom: SetPressurePages must make requests
// that would dip into the withheld reserve fail with ErrOutOfMemory,
// leave the buddy structure untouched, and be fully reversible.
func TestPressureWithholdsHeadroom(t *testing.T) {
	a := newTest(4) // 1024 pages
	total := a.TotalPages()
	a.SetPressurePages(total - 64)
	if a.PressurePages() != total-64 {
		t.Fatalf("PressurePages = %d", a.PressurePages())
	}
	if _, err := a.AllocPages(128, 1); err != ErrOutOfMemory {
		t.Fatalf("alloc into the reserve: err = %v, want ErrOutOfMemory", err)
	}
	e, err := a.AllocPages(64, 1)
	if err != nil {
		t.Fatalf("alloc within headroom failed: %v", err)
	}
	if _, err := a.AllocPages(1, 1); err != ErrOutOfMemory {
		t.Fatalf("headroom exhausted but alloc succeeded: err = %v", err)
	}
	a.SetPressurePages(0)
	e2, err := a.AllocPages(128, 1)
	if err != nil {
		t.Fatalf("alloc after release failed: %v", err)
	}
	if err := a.Free(e); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(e2); err != nil {
		t.Fatal(err)
	}
	if a.FreePages() != total {
		t.Fatalf("pressure leaked pages: free %d/%d", a.FreePages(), total)
	}
	if err := a.checkInvariant(); err != nil {
		t.Fatal(err)
	}
	// Clamped to the machine: withholding more than total is total.
	a.SetPressurePages(total * 2)
	if a.PressurePages() != total {
		t.Fatalf("pressure not clamped: %d", a.PressurePages())
	}
	if _, err := a.AllocPages(1, 1); err != ErrOutOfMemory {
		t.Fatalf("full pressure but alloc succeeded: err = %v", err)
	}
	a.SetPressurePages(0)
}
