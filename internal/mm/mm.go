// Package mm implements the host physical-memory manager used by the
// simulated hypervisor: a classic binary buddy allocator over 4 KiB
// pages with per-owner accounting.
//
// Memory consumption numbers in the reproduction (Fig. 14, the Fig. 10
// "memory wall" at ~3000 Docker containers) come from real allocations
// against this allocator rather than from closed-form arithmetic.
package mm

import (
	"errors"
	"fmt"
	"sort"
)

// PageSize is the size of one machine page in bytes.
const PageSize = 4096

// MaxOrder bounds the largest buddy block at 2^MaxOrder pages (4 GiB).
const MaxOrder = 20

// ErrOutOfMemory is returned when a reservation cannot be satisfied.
var ErrOutOfMemory = errors.New("mm: out of memory")

// PFN is a page frame number (page index into host memory).
type PFN uint64

// Owner identifies who holds an allocation (a domain ID, a container
// ID, the Dom0 kernel...). Owner 0 is reserved for the host itself.
type Owner int64

// Extent is a contiguous run of pages handed out by the allocator.
type Extent struct {
	Base  PFN
	Order uint // length is 2^Order pages
}

// Pages returns the number of pages in the extent.
func (e Extent) Pages() uint64 { return 1 << e.Order }

// Bytes returns the extent size in bytes.
func (e Extent) Bytes() uint64 { return e.Pages() * PageSize }

// Allocator is a binary buddy allocator. It is not safe for concurrent
// use; the simulation is single-threaded by design.
type Allocator struct {
	totalPages uint64
	freePages  uint64
	free       [MaxOrder + 1]map[PFN]struct{}
	allocated  map[PFN]uint // base → order, for Free validation
	owners     map[PFN]Owner
	usage      map[Owner]uint64 // pages held per owner
	// byOwner indexes each owner's extent bases so FreeOwner (domain
	// teardown) releases them without scanning every live allocation
	// on the host. Extent counts per owner are small, so the linear
	// removal in Free stays cheap.
	byOwner map[Owner][]PFN
	// pressure withholds pages from the allocator's headroom without
	// touching the free lists: an allocation that would leave fewer
	// than this many pages free fails with ErrOutOfMemory. It models
	// dom0/host memory pressure (a balloon inflating, a noisy
	// neighbor) deterministically — no extents change hands, so the
	// buddy structure and every invariant stay exactly as they were.
	pressure uint64
}

// New creates an allocator managing totalBytes of host memory, rounded
// down to a whole number of pages.
func New(totalBytes uint64) *Allocator {
	a := &Allocator{
		totalPages: totalBytes / PageSize,
		allocated:  make(map[PFN]uint),
		owners:     make(map[PFN]Owner),
		usage:      make(map[Owner]uint64),
		byOwner:    make(map[Owner][]PFN),
	}
	for i := range a.free {
		a.free[i] = make(map[PFN]struct{})
	}
	// Seed the free lists with maximal aligned blocks.
	var pfn PFN
	remaining := a.totalPages
	for remaining > 0 {
		order := uint(MaxOrder)
		for order > 0 && (uint64(1)<<order > remaining || uint64(pfn)%(1<<order) != 0) {
			order--
		}
		a.free[order][pfn] = struct{}{}
		pfn += PFN(uint64(1) << order)
		remaining -= 1 << order
	}
	a.freePages = a.totalPages
	return a
}

// TotalPages reports the number of managed pages.
func (a *Allocator) TotalPages() uint64 { return a.totalPages }

// FreePages reports the number of currently free pages.
func (a *Allocator) FreePages() uint64 { return a.freePages }

// UsedBytes reports total allocated bytes.
func (a *Allocator) UsedBytes() uint64 {
	return (a.totalPages - a.freePages) * PageSize
}

// OwnerBytes reports bytes currently held by owner.
func (a *Allocator) OwnerBytes(o Owner) uint64 { return a.usage[o] * PageSize }

// SetPressurePages withholds n pages from the allocation headroom:
// while set, any allocation that would leave fewer than n pages free
// fails with ErrOutOfMemory. Pass 0 to release the pressure. The
// withheld pages are never handed out and never enter the free lists'
// accounting, so this is reversible and invariant-neutral.
func (a *Allocator) SetPressurePages(n uint64) {
	if n > a.totalPages {
		n = a.totalPages
	}
	a.pressure = n
}

// PressurePages reports the currently withheld headroom.
func (a *Allocator) PressurePages() uint64 { return a.pressure }

// Owners returns all owners with live allocations, sorted.
func (a *Allocator) Owners() []Owner {
	out := make([]Owner, 0, len(a.usage))
	for o, pages := range a.usage {
		if pages > 0 {
			out = append(out, o)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// orderFor returns the smallest order whose block covers pages.
func orderFor(pages uint64) (uint, error) {
	if pages == 0 {
		return 0, errors.New("mm: zero-page allocation")
	}
	order := uint(0)
	for uint64(1)<<order < pages {
		order++
		if order > MaxOrder {
			return 0, fmt.Errorf("mm: allocation of %d pages exceeds max block", pages)
		}
	}
	return order, nil
}

// AllocPages allocates at least pages contiguous pages (rounded up to
// a power of two) for owner. Multi-extent callers who do not need
// contiguity should use AllocBytes.
func (a *Allocator) AllocPages(pages uint64, o Owner) (Extent, error) {
	order, err := orderFor(pages)
	if err != nil {
		return Extent{}, err
	}
	if a.pressure > 0 && uint64(1)<<order > a.freePages-minU64(a.pressure, a.freePages) {
		return Extent{}, ErrOutOfMemory
	}
	// Find the smallest order with a free block.
	from := order
	for from <= MaxOrder && len(a.free[from]) == 0 {
		from++
	}
	if from > MaxOrder {
		return Extent{}, ErrOutOfMemory
	}
	var base PFN
	for b := range a.free[from] { // take any block at this order
		base = b
		break
	}
	delete(a.free[from], base)
	// Split down to the requested order, returning the upper halves.
	for from > order {
		from--
		buddy := base + PFN(uint64(1)<<from)
		a.free[from][buddy] = struct{}{}
	}
	ext := Extent{Base: base, Order: order}
	a.allocated[base] = order
	a.owners[base] = o
	a.byOwner[o] = append(a.byOwner[o], base)
	a.usage[o] += ext.Pages()
	a.freePages -= ext.Pages()
	return ext, nil
}

// AllocBytes allocates enough extents to cover size bytes for owner,
// preferring large blocks; returns the extents.
func (a *Allocator) AllocBytes(size uint64, o Owner) ([]Extent, error) {
	pages := (size + PageSize - 1) / PageSize
	if pages == 0 {
		pages = 1
	}
	// Decompose the request into power-of-two extents (largest first),
	// covering it exactly at page granularity — no rounding waste, so
	// footprint accounting stays faithful.
	var out []Extent
	for pages > 0 {
		order := uint(0)
		for order < MaxOrder && uint64(1)<<(order+1) <= pages {
			order++
		}
		ext, err := a.AllocPages(uint64(1)<<order, o)
		if err != nil {
			// Roll back partial allocation.
			for _, e := range out {
				_ = a.Free(e)
			}
			return nil, err
		}
		out = append(out, ext)
		pages -= ext.Pages()
	}
	return out, nil
}

// Free returns an extent to the allocator, coalescing buddies.
func (a *Allocator) Free(e Extent) error {
	order, ok := a.allocated[e.Base]
	if !ok || order != e.Order {
		return fmt.Errorf("mm: free of unallocated extent base=%d order=%d", e.Base, e.Order)
	}
	o := a.owners[e.Base]
	delete(a.allocated, e.Base)
	delete(a.owners, e.Base)
	if bases, ok := a.byOwner[o]; ok {
		for i, b := range bases {
			if b == e.Base {
				bases[i] = bases[len(bases)-1]
				a.byOwner[o] = bases[:len(bases)-1]
				break
			}
		}
		if len(a.byOwner[o]) == 0 {
			delete(a.byOwner, o)
		}
	}
	if a.usage[o] < e.Pages() {
		return fmt.Errorf("mm: owner %d accounting underflow", o)
	}
	a.usage[o] -= e.Pages()
	if a.usage[o] == 0 {
		delete(a.usage, o)
	}
	a.freePages += e.Pages()

	base, ord := e.Base, e.Order
	for ord < MaxOrder {
		buddy := base ^ PFN(uint64(1)<<ord)
		if _, free := a.free[ord][buddy]; !free {
			break
		}
		delete(a.free[ord], buddy)
		if buddy < base {
			base = buddy
		}
		ord++
	}
	a.free[ord][base] = struct{}{}
	return nil
}

// FreeOwner releases every extent held by owner and reports how many
// bytes were returned.
func (a *Allocator) FreeOwner(o Owner) uint64 {
	// Detach the owner's index first: Free's per-extent removal then
	// finds nothing to maintain, keeping this loop linear.
	bases := a.byOwner[o]
	delete(a.byOwner, o)
	var freed uint64
	for _, base := range bases {
		e := Extent{Base: base, Order: a.allocated[base]}
		freed += e.Bytes()
		if err := a.Free(e); err != nil {
			panic(err) // internal inconsistency
		}
	}
	return freed
}

// checkInvariant verifies free-list/accounting consistency (test hook).
func (a *Allocator) checkInvariant() error {
	var free uint64
	for order, blocks := range a.free {
		for base := range blocks {
			if uint64(base)%(1<<uint(order)) != 0 {
				return fmt.Errorf("mm: misaligned free block base=%d order=%d", base, order)
			}
			free += 1 << uint(order)
		}
	}
	if free != a.freePages {
		return fmt.Errorf("mm: free accounting %d != free lists %d", a.freePages, free)
	}
	var used uint64
	for _, pages := range a.usage {
		used += pages
	}
	if used != a.totalPages-a.freePages {
		return fmt.Errorf("mm: owner accounting %d != used %d", used, a.totalPages-a.freePages)
	}
	return nil
}
