// Package trace records control-plane operations with their virtual
// timestamps — the observability layer the chaos CLI exposes with
// -trace and tests use to assert operation ordering. A disabled (nil
// or zero) log costs nothing on the hot path.
package trace

import (
	"fmt"
	"strings"
	"time"

	"lightvm/internal/sim"
)

// Event is one recorded control-plane operation.
type Event struct {
	At       sim.Time
	Category string // "toolstack", "migrate", "pool", ...
	Op       string // "create", "destroy", "save", ...
	Subject  string // VM name, flavor key, ...
	Detail   string
	Elapsed  time.Duration
}

// String renders one event line.
func (e Event) String() string {
	s := fmt.Sprintf("[%12v] %-10s %-8s %s", e.At, e.Category, e.Op, e.Subject)
	if e.Detail != "" {
		s += " " + e.Detail
	}
	if e.Elapsed > 0 {
		s += fmt.Sprintf(" (%v)", e.Elapsed)
	}
	return s
}

// Log is a bounded in-memory event log.
type Log struct {
	clock  *sim.Clock
	events []Event
	max    int
	// Dropped counts events discarded after the cap was reached.
	Dropped int
}

// New creates a log bound to clock keeping at most max events
// (0 means the default of 4096).
func New(clock *sim.Clock, max int) *Log {
	if max <= 0 {
		max = 4096
	}
	return &Log{clock: clock, max: max}
}

// Emit records an event. A nil log is a no-op, so callers never need
// to guard.
func (l *Log) Emit(category, op, subject, detail string, elapsed time.Duration) {
	if l == nil {
		return
	}
	if len(l.events) >= l.max {
		l.Dropped++
		return
	}
	l.events = append(l.events, Event{
		At: l.clock.Now(), Category: category, Op: op,
		Subject: subject, Detail: detail, Elapsed: elapsed,
	})
}

// Events returns a copy of the recorded events in order.
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	return append([]Event(nil), l.events...)
}

// Filter returns events matching category (and op, if non-empty).
func (l *Log) Filter(category, op string) []Event {
	if l == nil {
		return nil
	}
	var out []Event
	for _, e := range l.events {
		if e.Category == category && (op == "" || e.Op == op) {
			out = append(out, e)
		}
	}
	return out
}

// Len reports recorded events.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	return len(l.events)
}

// String renders the whole log.
func (l *Log) String() string {
	if l == nil {
		return ""
	}
	var b strings.Builder
	for _, e := range l.events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	if l.Dropped > 0 {
		fmt.Fprintf(&b, "(%d events dropped past the %d-event cap)\n", l.Dropped, l.max)
	}
	return b.String()
}
