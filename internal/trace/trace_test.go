package trace

import (
	"strings"
	"testing"
	"time"

	"lightvm/internal/sim"
)

func TestEmitAndRead(t *testing.T) {
	clock := sim.NewClock()
	l := New(clock, 0)
	clock.Sleep(5 * time.Millisecond)
	l.Emit("toolstack", "create", "vm1", "mode=LightVM", 4*time.Millisecond)
	clock.Sleep(time.Millisecond)
	l.Emit("toolstack", "destroy", "vm1", "", 0)
	evs := l.Events()
	if len(evs) != 2 || l.Len() != 2 {
		t.Fatalf("events = %d", len(evs))
	}
	if evs[0].At != sim.Time(5*time.Millisecond) || evs[0].Op != "create" {
		t.Fatalf("first event %+v", evs[0])
	}
	if evs[1].At <= evs[0].At {
		t.Fatal("timestamps not ordered")
	}
	// Events() is a copy.
	evs[0].Op = "mutated"
	if l.Events()[0].Op != "create" {
		t.Fatal("Events aliased internal storage")
	}
}

func TestFilter(t *testing.T) {
	l := New(sim.NewClock(), 0)
	l.Emit("toolstack", "create", "a", "", 0)
	l.Emit("migrate", "save", "a", "", 0)
	l.Emit("toolstack", "destroy", "a", "", 0)
	if got := len(l.Filter("toolstack", "")); got != 2 {
		t.Fatalf("toolstack events = %d", got)
	}
	if got := len(l.Filter("toolstack", "create")); got != 1 {
		t.Fatalf("create events = %d", got)
	}
	if got := len(l.Filter("nothing", "")); got != 0 {
		t.Fatalf("phantom events = %d", got)
	}
}

func TestCapDropsAndReports(t *testing.T) {
	l := New(sim.NewClock(), 3)
	for i := 0; i < 10; i++ {
		l.Emit("c", "op", "s", "", 0)
	}
	if l.Len() != 3 || l.Dropped != 7 {
		t.Fatalf("len=%d dropped=%d", l.Len(), l.Dropped)
	}
	if !strings.Contains(l.String(), "7 events dropped") {
		t.Fatal("drop count not rendered")
	}
}

func TestNilLogSafe(t *testing.T) {
	var l *Log
	l.Emit("c", "op", "s", "", 0) // must not panic
	if l.Events() != nil || l.Len() != 0 || l.Filter("c", "") != nil || l.String() != "" {
		t.Fatal("nil log misbehaved")
	}
}

// Table-driven edge cases: cap normalization, empty logs and boundary
// filters.
func TestLogEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		max     int
		emits   int
		wantLen int
		wantDrp int
	}{
		{"zero max uses default", 0, 5, 5, 0},
		{"negative max uses default", -3, 5, 5, 0},
		{"cap of one", 1, 4, 1, 3},
		{"exactly at cap", 2, 2, 2, 0},
		{"no events", 8, 0, 0, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			l := New(sim.NewClock(), c.max)
			for i := 0; i < c.emits; i++ {
				l.Emit("cat", "op", "s", "", 0)
			}
			if l.Len() != c.wantLen || l.Dropped != c.wantDrp {
				t.Fatalf("len=%d dropped=%d, want %d/%d", l.Len(), l.Dropped, c.wantLen, c.wantDrp)
			}
			if c.emits == 0 {
				if l.String() != "" {
					t.Fatalf("empty log renders %q", l.String())
				}
				if l.Events() != nil && len(l.Events()) != 0 {
					t.Fatal("empty log returned events")
				}
			}
		})
	}
}

func TestFilterEmptyLogAndOpOnly(t *testing.T) {
	l := New(sim.NewClock(), 0)
	if got := l.Filter("anything", "op"); got != nil {
		t.Fatalf("empty log filter = %v", got)
	}
	l.Emit("cat", "create", "a", "", 0)
	// Matching category with a non-matching op must return nothing.
	if got := l.Filter("cat", "destroy"); len(got) != 0 {
		t.Fatalf("op mismatch returned %v", got)
	}
}

// Event rendering edge cases: missing detail and zero elapsed must not
// leave stray separators.
func TestEventStringEdgeCases(t *testing.T) {
	cases := []struct {
		name   string
		ev     Event
		want   []string
		forbid []string
	}{
		{
			"no detail no elapsed",
			Event{Category: "pool", Op: "fill", Subject: "shell0"},
			[]string{"pool", "fill", "shell0"},
			[]string{"(", ")"},
		},
		{
			"zero time",
			Event{At: 0, Category: "c", Op: "o", Subject: "s"},
			[]string{"0s"},
			nil,
		},
		{
			"detail without elapsed",
			Event{Category: "c", Op: "o", Subject: "s", Detail: "k=v"},
			[]string{"k=v"},
			[]string{"()"},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := c.ev.String()
			for _, w := range c.want {
				if !strings.Contains(s, w) {
					t.Fatalf("%q missing %q", s, w)
				}
			}
			for _, f := range c.forbid {
				if strings.Contains(s, f) {
					t.Fatalf("%q contains forbidden %q", s, f)
				}
			}
		})
	}
}

func TestEventString(t *testing.T) {
	e := Event{At: sim.Time(time.Second), Category: "toolstack", Op: "create",
		Subject: "vm1", Detail: "mode=xl", Elapsed: 2 * time.Millisecond}
	s := e.String()
	for _, want := range []string{"1s", "toolstack", "create", "vm1", "mode=xl", "2ms"} {
		if !strings.Contains(s, want) {
			t.Fatalf("event string %q missing %q", s, want)
		}
	}
}
