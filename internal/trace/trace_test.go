package trace

import (
	"strings"
	"testing"
	"time"

	"lightvm/internal/sim"
)

func TestEmitAndRead(t *testing.T) {
	clock := sim.NewClock()
	l := New(clock, 0)
	clock.Sleep(5 * time.Millisecond)
	l.Emit("toolstack", "create", "vm1", "mode=LightVM", 4*time.Millisecond)
	clock.Sleep(time.Millisecond)
	l.Emit("toolstack", "destroy", "vm1", "", 0)
	evs := l.Events()
	if len(evs) != 2 || l.Len() != 2 {
		t.Fatalf("events = %d", len(evs))
	}
	if evs[0].At != sim.Time(5*time.Millisecond) || evs[0].Op != "create" {
		t.Fatalf("first event %+v", evs[0])
	}
	if evs[1].At <= evs[0].At {
		t.Fatal("timestamps not ordered")
	}
	// Events() is a copy.
	evs[0].Op = "mutated"
	if l.Events()[0].Op != "create" {
		t.Fatal("Events aliased internal storage")
	}
}

func TestFilter(t *testing.T) {
	l := New(sim.NewClock(), 0)
	l.Emit("toolstack", "create", "a", "", 0)
	l.Emit("migrate", "save", "a", "", 0)
	l.Emit("toolstack", "destroy", "a", "", 0)
	if got := len(l.Filter("toolstack", "")); got != 2 {
		t.Fatalf("toolstack events = %d", got)
	}
	if got := len(l.Filter("toolstack", "create")); got != 1 {
		t.Fatalf("create events = %d", got)
	}
	if got := len(l.Filter("nothing", "")); got != 0 {
		t.Fatalf("phantom events = %d", got)
	}
}

func TestCapDropsAndReports(t *testing.T) {
	l := New(sim.NewClock(), 3)
	for i := 0; i < 10; i++ {
		l.Emit("c", "op", "s", "", 0)
	}
	if l.Len() != 3 || l.Dropped != 7 {
		t.Fatalf("len=%d dropped=%d", l.Len(), l.Dropped)
	}
	if !strings.Contains(l.String(), "7 events dropped") {
		t.Fatal("drop count not rendered")
	}
}

func TestNilLogSafe(t *testing.T) {
	var l *Log
	l.Emit("c", "op", "s", "", 0) // must not panic
	if l.Events() != nil || l.Len() != 0 || l.Filter("c", "") != nil || l.String() != "" {
		t.Fatal("nil log misbehaved")
	}
}

func TestEventString(t *testing.T) {
	e := Event{At: sim.Time(time.Second), Category: "toolstack", Op: "create",
		Subject: "vm1", Detail: "mode=xl", Elapsed: 2 * time.Millisecond}
	s := e.String()
	for _, want := range []string{"1s", "toolstack", "create", "vm1", "mode=xl", "2ms"} {
		if !strings.Contains(s, want) {
			t.Fatalf("event string %q missing %q", s, want)
		}
	}
}
