package guest

import (
	"testing"

	"lightvm/internal/hv"
)

func TestPaperQuotedFootprints(t *testing.T) {
	// The paper quotes these numbers verbatim; the catalog must match.
	d := Daytime()
	if d.SizeBytes != 480*1024 {
		t.Fatalf("daytime image = %d bytes, want 480KB", d.SizeBytes)
	}
	mib := float64(1024 * 1024)
	if d.MemBytes != uint64(3.6*mib) {
		t.Fatalf("daytime RAM = %d bytes, want 3.6MB", d.MemBytes)
	}
	mp := Minipython()
	if mp.MemBytes != 8*1024*1024 {
		t.Fatalf("minipython RAM = %d, want 8MB", mp.MemBytes)
	}
	fw := ClickOSFirewall()
	if fw.SizeBytes != 1740*1024 {
		t.Fatalf("clickos image = %d, want 1.7MB", fw.SizeBytes)
	}
	deb := DebianMinimal()
	if deb.MemBytes != 111*1024*1024 {
		t.Fatalf("debian RAM = %d, want 111MB", deb.MemBytes)
	}
	if deb.SizeBytes < 1100*1024*1024 {
		t.Fatalf("debian image = %d, want ≈1.1GB", deb.SizeBytes)
	}
}

func TestOrderingInvariants(t *testing.T) {
	// Unikernel < Tinyx < Debian in every footprint dimension.
	u, tx, deb := Daytime(), TinyxNoop(), DebianMinimal()
	if !(u.SizeBytes < tx.SizeBytes && tx.SizeBytes < deb.SizeBytes) {
		t.Fatal("image size ordering violated")
	}
	if !(u.MemBytes < tx.MemBytes && tx.MemBytes < deb.MemBytes) {
		t.Fatal("memory ordering violated")
	}
	if !(u.BootWork < tx.BootWork && tx.BootWork < deb.BootWork) {
		t.Fatal("boot work ordering violated")
	}
}

func TestNoopHasNoDevices(t *testing.T) {
	if len(Noop().Devices) != 0 {
		t.Fatal("noop unikernel must have no devices (2.3ms floor)")
	}
	if len(Daytime().Devices) != 1 || Daytime().Devices[0].Kind != hv.DevVif {
		t.Fatal("daytime must have exactly one vif")
	}
}

func TestIdleBehaviour(t *testing.T) {
	if Daytime().WakeRatePerSec != 0 {
		t.Fatal("idle unikernels must not wake (flat Fig. 11 curve)")
	}
	if TinyxNoop().WakeRatePerSec <= 0 || DebianMinimal().WakeRatePerSec <= TinyxNoop().WakeRatePerSec {
		t.Fatal("idle wake ordering: debian > tinyx > unikernel")
	}
	if DebianMinimal().UtilDuty <= TinyxNoop().UtilDuty {
		t.Fatal("util duty ordering violated")
	}
}

func TestWithPadding(t *testing.T) {
	im := Daytime().WithPadding(100 * 1024 * 1024)
	if im.TotalSize() != 100*1024*1024 {
		t.Fatalf("padded size = %d", im.TotalSize())
	}
	// Padding below current size is a no-op.
	im2 := Daytime().WithPadding(1)
	if im2.TotalSize() != Daytime().SizeBytes {
		t.Fatal("under-padding changed size")
	}
}

func TestCatalogAndByName(t *testing.T) {
	cat := Catalog()
	if len(cat) < 10 {
		t.Fatalf("catalog has %d images", len(cat))
	}
	seen := map[string]bool{}
	for _, im := range cat {
		if seen[im.Name] {
			t.Fatalf("duplicate catalog name %q", im.Name)
		}
		seen[im.Name] = true
		got, err := ByName(im.Name)
		if err != nil || got.Name != im.Name {
			t.Fatalf("ByName(%q): %v", im.Name, err)
		}
		if im.MemBytes == 0 || im.SizeBytes == 0 {
			t.Fatalf("image %q has zero footprint", im.Name)
		}
	}
	if _, err := ByName("nonesuch"); err == nil {
		t.Fatal("ByName accepted unknown image")
	}
}

func TestKindString(t *testing.T) {
	if Unikernel.String() != "unikernel" || Debian.String() != "debian" || Kind(99).String() == "" {
		t.Fatal("Kind.String broken")
	}
}
