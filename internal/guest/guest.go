// Package guest describes the virtual machine images the paper builds
// and measures (§3, §6): Mini-OS unikernels (noop, daytime,
// Minipython, ClickOS firewall, TLS proxy), Tinyx Linux VMs, and a
// minimal Debian — with their on-disk sizes, runtime memory needs,
// guest-side boot work and idle behaviour.
package guest

import (
	"fmt"
	"time"

	"lightvm/internal/costs"
	"lightvm/internal/hv"
)

// Kind classifies a guest image.
type Kind int

// Guest kinds.
const (
	Unikernel Kind = iota
	Tinyx
	Debian
)

var kindNames = [...]string{"unikernel", "tinyx", "debian"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// DeviceSpec is a device the guest needs.
type DeviceSpec struct {
	Kind hv.DevKind
	MAC  string
}

// Image is a bootable guest image.
type Image struct {
	Name string
	Kind Kind
	App  string // application identifier (see internal/apps)

	// SizeBytes is the on-disk image size; PadBytes is extra binary
	// content injected for the Fig. 2 experiment ("we increase the
	// size by injecting binary objects into the uncompressed image").
	SizeBytes uint64
	PadBytes  uint64

	// MemBytes is the RAM the guest needs to run.
	MemBytes uint64

	// BootWork is guest-side CPU work from unpause to ready.
	BootWork time.Duration

	// Devices the guest expects (vif etc.). The noop unikernel has
	// none — its 2.3 ms floor depends on that.
	Devices []DeviceSpec

	// Idle behaviour: background wakeups dilate other guests' boots
	// (Fig. 11); UtilDuty is the reported idle utilization fraction of
	// one core (Fig. 15).
	WakeRatePerSec float64
	WakeWork       time.Duration
	UtilDuty       float64

	// StoreOpsBoot approximates extra XenStore traffic the guest's own
	// frontends generate while booting (beyond the xenbus handshake
	// itself); Linux guests chatter far more than Mini-OS.
	StoreOpsBoot int
}

// TotalSize includes Fig. 2 padding.
func (im Image) TotalSize() uint64 { return im.SizeBytes + im.PadBytes }

// WithPadding returns a copy padded to reach total on-disk size n.
func (im Image) WithPadding(total uint64) Image {
	if total > im.SizeBytes {
		im.PadBytes = total - im.SizeBytes
	}
	return im
}

const (
	kb = 1024
	mb = 1024 * 1024
)

// mbBytes converts a (possibly fractional) MiB figure to bytes.
func mbBytes(mib float64) uint64 { return uint64(mib * mb) }

func vif(n int) DeviceSpec {
	return DeviceSpec{Kind: hv.DevVif, MAC: fmt.Sprintf("00:16:3e:00:%02x:%02x", n/256, n%256)}
}

// Noop is the minimal Mini-OS unikernel with no devices — the 2.3 ms
// lower bound in §6.1.
func Noop() Image {
	return Image{
		Name: "noop", Kind: Unikernel, App: "noop",
		SizeBytes: costs.ImgNoopKB * kb,
		MemBytes:  mbBytes(costs.MemNoopMB),
		BootWork:  costs.BootUnikernelNoop,
		UtilDuty:  costs.UnikernelUtilDuty,
	}
}

// Daytime is the TCP time-of-day unikernel (§3.1): 480 KB on disk,
// 3.6 MB of RAM, lwip linked in.
func Daytime() Image {
	return Image{
		Name: "daytime", Kind: Unikernel, App: "daytime",
		SizeBytes: costs.ImgDaytimeKB * kb,
		MemBytes:  mbBytes(costs.MemDaytimeMB),
		BootWork:  costs.BootUnikernelDaytime,
		Devices:   []DeviceSpec{vif(1)},
		UtilDuty:  costs.UnikernelUtilDuty,
	}
}

// Minipython is the MicroPython unikernel for Lambda-like services
// (§3.1, §7.4): ~1 MB image, 8 MB RAM.
func Minipython() Image {
	return Image{
		Name: "minipython", Kind: Unikernel, App: "minipython",
		SizeBytes: costs.ImgMinipythonKB * kb,
		MemBytes:  mbBytes(costs.MemMinipythonMB),
		BootWork:  costs.BootUnikernelDaytime, // lwip + interpreter init
		Devices:   []DeviceSpec{vif(2)},
		UtilDuty:  costs.UnikernelUtilDuty,
	}
}

// ClickOSFirewall is the personal-firewall VM of §7.1: 1.7 MB image,
// 8 MB RAM, ~10 ms to boot.
func ClickOSFirewall() Image {
	return Image{
		Name: "clickos-fw", Kind: Unikernel, App: "firewall",
		SizeBytes: costs.ImgClickOSKB * kb,
		MemBytes:  mbBytes(costs.MemClickOSMB),
		BootWork:  costs.BootClickOS,
		Devices:   []DeviceSpec{vif(3)},
		UtilDuty:  costs.UnikernelUtilDuty,
	}
}

// TLSUnikernel is the axtls termination proxy of §7.3: boots in 6 ms,
// 16 MB RAM.
func TLSUnikernel() Image {
	return Image{
		Name: "tls-unikernel", Kind: Unikernel, App: "tlsproxy",
		SizeBytes: costs.ImgTLSUniKB * kb,
		MemBytes:  mbBytes(costs.MemTLSUniMB),
		BootWork:  6 * time.Millisecond,
		Devices:   []DeviceSpec{vif(4)},
		UtilDuty:  costs.UnikernelUtilDuty,
	}
}

// TinyxNoop is a Tinyx image with no application installed (§6):
// 9.5 MB image, ~30 MB RAM, ~180 ms boot, with the initramfs bundled
// into the kernel image.
func TinyxNoop() Image {
	return Image{
		Name: "tinyx", Kind: Tinyx, App: "noop",
		SizeBytes:      mbBytes(costs.ImgTinyxMB),
		MemBytes:       mbBytes(costs.MemTinyxMB),
		BootWork:       costs.BootTinyx,
		Devices:        []DeviceSpec{vif(5), {Kind: hv.DevConsole}},
		WakeRatePerSec: costs.TinyxWakeRatePerSec,
		WakeWork:       costs.TinyxWakeWork,
		UtilDuty:       costs.TinyxUtilDuty,
		StoreOpsBoot:   20,
	}
}

// TinyxMicropython adds the Micropython package (§6.3).
func TinyxMicropython() Image {
	im := TinyxNoop()
	im.Name = "tinyx-micropython"
	im.App = "minipython"
	im.SizeBytes = mbBytes(costs.ImgTinyxMicroMB)
	return im
}

// TinyxTLS is the Tinyx TLS terminator of §7.3: 40 MB RAM, ~190 ms
// boot.
func TinyxTLS() Image {
	im := TinyxNoop()
	im.Name = "tinyx-tls"
	im.App = "tlsproxy"
	im.SizeBytes = mbBytes(costs.ImgTinyxTLSMB)
	im.MemBytes = mbBytes(costs.MemTinyxTLSMB)
	im.BootWork = 190 * time.Millisecond
	return im
}

// DebianMinimal is the "typical VM used in practice" (§4.2): 1.1 GB
// image, 1.5 s boot, and — per §6.3 — 111 MB minimum RAM with several
// services running out of the box.
func DebianMinimal() Image {
	return Image{
		Name: "debian", Kind: Debian, App: "noop",
		SizeBytes:      mbBytes(costs.ImgDebianMB),
		MemBytes:       mbBytes(costs.MemDebianMB),
		BootWork:       costs.BootDebian,
		Devices:        []DeviceSpec{vif(6), {Kind: hv.DevVbd}, {Kind: hv.DevConsole}},
		WakeRatePerSec: costs.DebianWakeRatePerSec,
		WakeWork:       costs.DebianWakeWork,
		UtilDuty:       costs.DebianUtilDuty,
		StoreOpsBoot:   60,
	}
}

// ClearContainer models Intel Clear Containers, the related-work
// comparison of §8: a container wrapped in a slim VM "with the
// explicit aim of keeping compatibility with existing frameworks
// (Docker, rkt); this compatibility results in overheads. ... an ICC
// guest is 70MB and boots in 500ms as opposed to a Tinyx one which is
// about 10MB and boots in about 300ms."
func ClearContainer() Image {
	return Image{
		Name: "clear-container", Kind: Tinyx, App: "noop",
		SizeBytes:      70 * mb,
		MemBytes:       128 * mb,
		BootWork:       430 * time.Millisecond, // + creation ≈ 500ms
		Devices:        []DeviceSpec{vif(7), {Kind: hv.DevConsole}},
		WakeRatePerSec: costs.TinyxWakeRatePerSec,
		WakeWork:       costs.TinyxWakeWork,
		UtilDuty:       costs.TinyxUtilDuty,
		StoreOpsBoot:   25,
	}
}

// DebianMicropython is the Debian guest with Micropython (Fig. 14).
func DebianMicropython() Image {
	im := DebianMinimal()
	im.Name = "debian-micropython"
	im.App = "minipython"
	return im
}

// Catalog returns every predefined image, for CLIs and docs.
func Catalog() []Image {
	return []Image{
		Noop(), Daytime(), Minipython(), ClickOSFirewall(), TLSUnikernel(),
		TinyxNoop(), TinyxMicropython(), TinyxTLS(), ClearContainer(),
		DebianMinimal(), DebianMicropython(),
	}
}

// ByName finds a catalog image.
func ByName(name string) (Image, error) {
	for _, im := range Catalog() {
		if im.Name == name {
			return im, nil
		}
	}
	return Image{}, fmt.Errorf("guest: unknown image %q", name)
}
