package noxs

import (
	"errors"
	"testing"

	"lightvm/internal/devd"
	"lightvm/internal/hv"
	"lightvm/internal/sim"
)

const mib = 1024 * 1024

func newModule() (*Module, *hv.Hypervisor, *sim.Clock) {
	clock := sim.NewClock()
	h := hv.New(clock, 8*1024*mib)
	hp := &devd.Xendevd{Clock: clock, Bridge: &devd.NullBridge{}}
	return NewModule(h, hp), h, clock
}

func newDom(t *testing.T, h *hv.Hypervisor) *hv.Domain {
	t.Helper()
	d, err := h.CreateDomain(hv.Config{MaxMem: 8 * mib})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.PopulatePhysmap(d.ID, 8*mib); err != nil {
		t.Fatal(err)
	}
	if err := h.LoadImage(d.ID, "noop", 300*1024); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestCreateDevicePublishesOnDevicePage(t *testing.T) {
	m, h, _ := newModule()
	d := newDom(t, h)
	e, err := m.CreateDevice(d.ID, hv.DevVif, 0, "00:16:3e:00:00:01")
	if err != nil {
		t.Fatal(err)
	}
	entries, err := h.DevicePageMap(d.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Evtchn != e.Evtchn || entries[0].MAC != e.MAC {
		t.Fatalf("device page = %+v", entries)
	}
	if m.Count.DevicesCreated != 1 || m.Count.Ioctls != 1 {
		t.Fatalf("counters: %+v", m.Count)
	}
}

func TestConnectGuestBindsEverything(t *testing.T) {
	m, h, _ := newModule()
	d := newDom(t, h)
	if _, err := m.CreateDevice(d.ID, hv.DevVif, 0, "00:16:3e:00:00:01"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.CreateDevice(d.ID, hv.DevSysctl, 0, ""); err != nil {
		t.Fatal(err)
	}
	if err := m.ConnectGuest(d.ID); err != nil {
		t.Fatal(err)
	}
	if h.Count.GrantMaps != 2 {
		t.Fatalf("grant maps = %d, want 2", h.Count.GrantMaps)
	}
}

func TestNoStoreInvolved(t *testing.T) {
	// The whole point: device setup must be a handful of hypercalls,
	// not tens of store messages. We assert the hypercall count stays
	// small and no xenstore exists to consult.
	m, h, _ := newModule()
	d := newDom(t, h)
	before := h.Count.Hypercalls
	if _, err := m.CreateDevice(d.ID, hv.DevVif, 0, "m"); err != nil {
		t.Fatal(err)
	}
	if err := m.ConnectGuest(d.ID); err != nil {
		t.Fatal(err)
	}
	calls := h.Count.Hypercalls - before
	if calls > 10 {
		t.Fatalf("noxs device setup used %d hypercalls, want ≤10", calls)
	}
}

func TestSuspendProtocol(t *testing.T) {
	m, h, _ := newModule()
	d := newDom(t, h)
	if err := h.Unpause(d.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := m.CreateDevice(d.ID, hv.DevSysctl, 0, ""); err != nil {
		t.Fatal(err)
	}
	if err := m.ConnectGuest(d.ID); err != nil {
		t.Fatal(err)
	}
	quiesced := ""
	if err := m.OnGuestShutdown(d.ID, func(reason string) { quiesced = reason }); err != nil {
		t.Fatal(err)
	}
	if err := m.RequestShutdown(d.ID, "suspend"); err != nil {
		t.Fatal(err)
	}
	if d.State != hv.StateSuspended {
		t.Fatalf("state after suspend: %v", d.State)
	}
	if quiesced != "suspend" {
		t.Fatalf("guest quiesce callback got %q", quiesced)
	}
	if m.Count.Suspends != 1 {
		t.Fatalf("suspend counter = %d", m.Count.Suspends)
	}
}

func TestPoweroff(t *testing.T) {
	m, h, _ := newModule()
	d := newDom(t, h)
	_ = h.Unpause(d.ID)
	if _, err := m.CreateDevice(d.ID, hv.DevSysctl, 0, ""); err != nil {
		t.Fatal(err)
	}
	if err := m.ConnectGuest(d.ID); err != nil {
		t.Fatal(err)
	}
	if err := m.RequestShutdown(d.ID, "poweroff"); err != nil {
		t.Fatal(err)
	}
	if d.State != hv.StateShutdown || d.ShutdownReason != "poweroff" {
		t.Fatalf("state=%v reason=%q", d.State, d.ShutdownReason)
	}
}

func TestRequestShutdownWithoutSysctl(t *testing.T) {
	m, h, _ := newModule()
	d := newDom(t, h)
	if err := m.RequestShutdown(d.ID, "suspend"); !errors.Is(err, ErrNoSysctl) {
		t.Fatalf("shutdown without sysctl device: %v", err)
	}
}

func TestDestroyDevice(t *testing.T) {
	m, h, _ := newModule()
	d := newDom(t, h)
	if _, err := m.CreateDevice(d.ID, hv.DevVif, 0, "m"); err != nil {
		t.Fatal(err)
	}
	if err := m.DestroyDevice(d.ID, hv.DevVif, 0); err != nil {
		t.Fatal(err)
	}
	entries, _ := h.DevicePageMap(d.ID)
	if len(entries) != 0 {
		t.Fatalf("device page not empty after destroy: %+v", entries)
	}
	if h.NumPorts() != 0 || h.NumGrants() != 0 {
		t.Fatalf("leak: ports=%d grants=%d", h.NumPorts(), h.NumGrants())
	}
	if err := m.DestroyDevice(d.ID, hv.DevVif, 0); err == nil {
		t.Fatal("double destroy accepted")
	}
}

func TestDestroyAll(t *testing.T) {
	m, h, _ := newModule()
	d := newDom(t, h)
	_, _ = m.CreateDevice(d.ID, hv.DevVif, 0, "m")
	_, _ = m.CreateDevice(d.ID, hv.DevVbd, 0, "")
	_, _ = m.CreateDevice(d.ID, hv.DevSysctl, 0, "")
	m.DestroyAll(d.ID)
	entries, _ := h.DevicePageMap(d.ID)
	if len(entries) != 0 {
		t.Fatalf("DestroyAll left %d entries", len(entries))
	}
	if m.Count.DevicesGone != 3 {
		t.Fatalf("DevicesGone = %d", m.Count.DevicesGone)
	}
}

func TestIoctlScanGrowsWithDomains(t *testing.T) {
	m, h, clock := newModule()
	d1 := newDom(t, h)
	before := clock.Now()
	if _, err := m.CreateDevice(d1.ID, hv.DevVif, 0, "a"); err != nil {
		t.Fatal(err)
	}
	first := clock.Now().Sub(before)
	for i := 0; i < 500; i++ {
		newDom(t, h)
	}
	dN := newDom(t, h)
	before = clock.Now()
	if _, err := m.CreateDevice(dN.ID, hv.DevVif, 0, "b"); err != nil {
		t.Fatal(err)
	}
	nth := clock.Now().Sub(before)
	if nth <= first {
		t.Fatalf("noxs per-domain scan did not grow: first=%v nth=%v", first, nth)
	}
	// But growth must stay gentle: well under 10 ms at 500 domains
	// (the chaos[NoXS] curve only moves 8→15 ms over 1000 guests).
	if nth-first > 10*1e6 {
		t.Fatalf("noxs growth too steep: %v", nth-first)
	}
}
