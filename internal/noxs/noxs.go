// Package noxs implements LightVM's XenStore replacement (paper §5.1):
// a Dom0 kernel module through which the toolstack creates devices
// with a single ioctl, a hypervisor-maintained per-domain device page
// carrying the backend-id / event-channel / grant-reference triple,
// and a sysctl split pseudo-device for power operations (suspend,
// migrate) — so that VM create/save/resume/migrate/destroy never touch
// a message-passing registry.
//
// Protocol (Fig. 7b):
//
//  1. toolstack --ioctl--> noxs module: create device; backend
//     allocates the communication channel.
//  2. toolstack --hypercall--> hypervisor: write channel details into
//     the domain's device page.
//  3. guest --hypercall--> hypervisor: map device page (read-only).
//  4. guest binds the event channel and maps the control-page grant,
//     then talks to the backend directly over shared memory.
package noxs

import (
	"errors"
	"fmt"
	"sort"

	"lightvm/internal/costs"
	"lightvm/internal/devd"
	"lightvm/internal/hv"
	"lightvm/internal/sim"
)

// Errors.
var (
	ErrNoSysctl = errors.New("noxs: domain has no sysctl device")
)

// Counters tracks module activity.
type Counters struct {
	Ioctls         uint64
	DevicesCreated uint64
	DevicesGone    uint64
	Suspends       uint64
	Poweroffs      uint64
}

// sysctlState is the shared control page of the sysctl device.
type sysctlState struct {
	port           hv.Port
	shutdownReason string
	// onShutdown is the frontend's handler, registered when the guest
	// connects; it models the guest saving internal state and
	// unbinding its noxs resources before suspending.
	onShutdown func(reason string)
}

// Module is the noxs Linux kernel module living in Dom0.
type Module struct {
	HV      *hv.Hypervisor
	Clock   *sim.Clock
	Hotplug devd.Hotplug

	sysctl map[hv.DomID]*sysctlState
	// journal is the toolstack's intent journal, kept in module (Dom0
	// kernel) memory: the chaos toolstack process can die mid-operation
	// but the module survives, so a restarted toolstack reads the
	// journal back and rolls half-done lifecycle steps forward or back.
	// This mirrors where the noxs design keeps device truth — in kernel
	// pages, not a store daemon.
	journal map[string]string
	Count   Counters
}

// NewModule loads the module against h, plumbing vifs through hp
// (LightVM pairs noxs with xendevd, but any Hotplug works).
func NewModule(h *hv.Hypervisor, hp devd.Hotplug) *Module {
	return &Module{HV: h, Clock: h.Clock, Hotplug: hp, sysctl: make(map[hv.DomID]*sysctlState)}
}

// ioctl charges the user→kernel round trip plus the module's
// per-domain table scan (the only residual O(#domains) term on the
// noxs path; it keeps Fig. 9's chaos[NoXS] curve at 8→15 ms).
func (m *Module) ioctl() {
	m.Count.Ioctls++
	scan := sim.Duration(m.HV.NumDomains()) * costs.NoxsPerDomainKernelScan
	m.Clock.Sleep(costs.IoctlRoundTrip + scan)
}

// JournalEntry is one intent-journal record.
type JournalEntry struct {
	Key    string
	Record string
}

// JournalSet records the lifecycle step the toolstack is about to run
// for key (one ioctl: the table lives module-side).
func (m *Module) JournalSet(key, record string) {
	m.ioctl()
	if m.journal == nil {
		m.journal = make(map[string]string)
	}
	m.journal[key] = record
}

// JournalClear removes key's record once the operation completes.
func (m *Module) JournalClear(key string) {
	m.ioctl()
	delete(m.journal, key)
}

// JournalScan reads the whole journal back (recovery path after a
// toolstack restart) — one ioctl regardless of size; the table is a
// handful of in-flight operations, never O(#domains).
func (m *Module) JournalScan() []JournalEntry {
	m.ioctl()
	return m.JournalEntries()
}

// JournalEntries lists the journal without charging time (invariant
// checker's view). Sorted by key for determinism.
func (m *Module) JournalEntries() []JournalEntry {
	if len(m.journal) == 0 {
		return nil
	}
	out := make([]JournalEntry, 0, len(m.journal))
	for k, v := range m.journal {
		out = append(out, JournalEntry{Key: k, Record: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// CreateDevice is steps 1–2 of Fig. 7b: the backend allocates the
// channel, and the toolstack publishes it on the device page.
func (m *Module) CreateDevice(dom hv.DomID, kind hv.DevKind, idx int, mac string) (hv.DevEntry, error) {
	m.ioctl()
	m.Clock.Sleep(costs.NoxsBackendCreate)
	port, err := m.HV.AllocUnboundPort(0, dom)
	if err != nil {
		return hv.DevEntry{}, fmt.Errorf("noxs: create %v[%d] for dom %d: %w", kind, idx, dom, err)
	}
	ref, err := m.HV.GrantAccess(0, dom, 0xdead0000+uint64(port), false)
	if err != nil {
		return hv.DevEntry{}, err
	}
	entry := hv.DevEntry{Kind: kind, Index: idx, BackendID: 0, Evtchn: port, CtrlGrant: ref, MAC: mac, State: 1}
	if err := m.HV.DevicePageWrite(0, dom, entry); err != nil {
		return hv.DevEntry{}, err
	}
	if kind == hv.DevVif && m.Hotplug != nil {
		if err := m.Hotplug.Setup(fmt.Sprintf("vif%d.%d", dom, idx)); err != nil {
			return hv.DevEntry{}, err
		}
	}
	if kind == hv.DevSysctl {
		m.sysctl[dom] = &sysctlState{port: port}
	}
	m.Count.DevicesCreated++
	return entry, nil
}

// SetMAC finalizes a pre-created device's MAC address (split-toolstack
// execute phase, Fig. 8 step "device initialization"): one device-page
// update hypercall.
func (m *Module) SetMAC(dom hv.DomID, kind hv.DevKind, idx int, mac string) error {
	d, err := m.HV.Domain(dom)
	if err != nil {
		return err
	}
	if d.DevPage == nil {
		return fmt.Errorf("noxs: dom %d has no device page", dom)
	}
	for i := range d.DevPage.Entries {
		e := &d.DevPage.Entries[i]
		if e.Kind == kind && e.Index == idx {
			e.MAC = mac
			m.Clock.Sleep(costs.NoxsDevicePageWrite + costs.Hypercall)
			return nil
		}
	}
	return fmt.Errorf("noxs: dom %d has no %v[%d]", dom, kind, idx)
}

// DestroyDevice tears down one device. The paper notes noxs device
// destruction is not yet optimized (§6.2) — the cost constant reflects
// that.
func (m *Module) DestroyDevice(dom hv.DomID, kind hv.DevKind, idx int) error {
	m.ioctl()
	m.Clock.Sleep(costs.NoxsDeviceDestroy)
	d, err := m.HV.Domain(dom)
	if err != nil {
		return err
	}
	var entry *hv.DevEntry
	if d.DevPage != nil {
		for i := range d.DevPage.Entries {
			e := &d.DevPage.Entries[i]
			if e.Kind == kind && e.Index == idx {
				entry = e
				break
			}
		}
	}
	if entry == nil {
		return fmt.Errorf("noxs: dom %d has no %v[%d]", dom, kind, idx)
	}
	_ = m.HV.ClosePort(entry.Evtchn)
	_ = m.HV.EndGrant(entry.CtrlGrant)
	if kind == hv.DevVif && m.Hotplug != nil {
		_ = m.Hotplug.Teardown(fmt.Sprintf("vif%d.%d", dom, idx))
	}
	if kind == hv.DevSysctl {
		delete(m.sysctl, dom)
	}
	m.Count.DevicesGone++
	return m.HV.DevicePageRemove(0, dom, kind, idx)
}

// DestroyAll tears down every device of a domain (destroy path).
func (m *Module) DestroyAll(dom hv.DomID) {
	d, err := m.HV.Domain(dom)
	if err != nil || d.DevPage == nil {
		return
	}
	entries := make([]hv.DevEntry, len(d.DevPage.Entries))
	copy(entries, d.DevPage.Entries)
	for _, e := range entries {
		_ = m.DestroyDevice(dom, e.Kind, e.Index)
	}
}

// ConnectGuest is the guest half (steps 3–4): map the device page,
// bind every event channel, map every control grant. No store, no
// watches — a handful of hypercalls.
func (m *Module) ConnectGuest(dom hv.DomID) error {
	entries, err := m.HV.DevicePageMap(dom)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if err := m.HV.BindPort(e.Evtchn, dom, m.guestUpcall(dom, e)); err != nil {
			return err
		}
		if _, err := m.HV.MapGrant(e.CtrlGrant, dom); err != nil {
			return err
		}
	}
	return nil
}

// guestUpcall returns the guest-side event handler for a device; for
// sysctl it implements the suspend protocol.
func (m *Module) guestUpcall(dom hv.DomID, e hv.DevEntry) func() {
	if e.Kind != hv.DevSysctl {
		return func() {}
	}
	return func() {
		st, ok := m.sysctl[dom]
		if !ok {
			return
		}
		reason := st.shutdownReason
		if st.onShutdown != nil {
			st.onShutdown(reason)
		}
		// Guest saves internal state and unbinds noxs event channels
		// and device pages (§5.1), then the hypervisor marks it
		// suspended or shut down.
		m.Clock.Sleep(costs.SuspendHandshakeSysctl)
		switch reason {
		case "suspend":
			_ = m.HV.Suspend(dom, reason)
		case "poweroff":
			if d, err := m.HV.Domain(dom); err == nil {
				d.State = hv.StateShutdown
				d.ShutdownReason = reason
			}
		}
	}
}

// OnGuestShutdown registers a guest callback run before the domain
// suspends/powers off (used by guests that must quiesce devices).
func (m *Module) OnGuestShutdown(dom hv.DomID, fn func(reason string)) error {
	st, ok := m.sysctl[dom]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoSysctl, dom)
	}
	st.onShutdown = fn
	return nil
}

// RequestShutdown is the toolstack's power operation: an ioctl to the
// sysctl back-end sets the reason field in the shared page and kicks
// the event channel (§5.1). reason is "suspend" or "poweroff".
func (m *Module) RequestShutdown(dom hv.DomID, reason string) error {
	st, ok := m.sysctl[dom]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoSysctl, dom)
	}
	m.ioctl()
	st.shutdownReason = reason
	if reason == "suspend" {
		m.Count.Suspends++
	} else {
		m.Count.Poweroffs++
	}
	return m.HV.Send(st.port)
}
