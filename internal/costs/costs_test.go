package costs

import (
	"testing"
	"time"
)

// The paper's argument rests on a handful of cost orderings. These
// tests pin them so a recalibration cannot silently invert a claim.

func TestHotplugOrdering(t *testing.T) {
	// §5.3: bash hotplug is "tens of milliseconds"; xendevd avoids
	// forking entirely.
	if HotplugBashScript < 10*time.Millisecond {
		t.Fatalf("bash hotplug %v below tens of ms", HotplugBashScript)
	}
	if HotplugXendevd*20 > HotplugBashScript {
		t.Fatalf("xendevd (%v) not ≫ cheaper than bash (%v)", HotplugXendevd, HotplugBashScript)
	}
}

func TestStoreVsNoxsDevicePath(t *testing.T) {
	// One store op costs at least the protocol floor; a noxs device
	// page write is a single hypercall-class operation.
	storeOp := XSRequestInterrupts*SoftIRQ + XSRequestCrossings*DomainCrossing + XSProcess
	if NoxsDevicePageWrite >= storeOp {
		t.Fatalf("noxs write (%v) not cheaper than one store op (%v)", NoxsDevicePageWrite, storeOp)
	}
	// The fork comparison from §5: a store interaction involves many
	// more privilege crossings than fork's single one.
	if XSRequestInterrupts+XSRequestCrossings < 4 {
		t.Fatal("store op should involve several crossings")
	}
}

func TestSuspendPathOrdering(t *testing.T) {
	// The sysctl split device exists to replace the store-mediated
	// shutdown handshake.
	if SuspendHandshakeSysctl*5 > SuspendHandshakeXS {
		t.Fatalf("sysctl suspend (%v) not ≪ store suspend (%v)",
			SuspendHandshakeSysctl, SuspendHandshakeXS)
	}
}

func TestGuestFootprintOrderings(t *testing.T) {
	if !(MemDaytimeMB < MemTinyxMB && MemTinyxMB < MemDebianMB) {
		t.Fatal("runtime memory ordering violated")
	}
	if !(ImgDaytimeKB*1024 < uint64(ImgTinyxMB*1024*1024)) {
		t.Fatal("image size ordering violated")
	}
	if !(BootUnikernelNoop < BootUnikernelDaytime &&
		BootUnikernelDaytime < BootTinyx && BootTinyx < BootDebian) {
		t.Fatal("boot work ordering violated")
	}
}

func TestIdleLoadOrderings(t *testing.T) {
	if !(DebianWakeRatePerSec > TinyxWakeRatePerSec) {
		t.Fatal("wake rate ordering violated")
	}
	if !(DebianUtilDuty > TinyxUtilDuty && TinyxUtilDuty > UnikernelUtilDuty &&
		UnikernelUtilDuty > DockerUtilDuty) {
		t.Fatal("utilization duty ordering violated (Fig. 15)")
	}
	// Fig. 15 calibration: 1000 Debian guests ≈ 1 core ≈ 25% of 4.
	if total := 1000 * DebianUtilDuty / 4; total < 0.2 || total > 0.3 {
		t.Fatalf("1000 debian guests = %.3f of a 4-core box, want ≈0.25", total)
	}
}

func TestLoadSlopeMatchesFig2(t *testing.T) {
	// Fig. 2: ~1 s at 1000 MB.
	perGB := 1000 * (ImageLoadPerMB + MemReservePerMB)
	if perGB < 700*time.Millisecond || perGB > 1300*time.Millisecond {
		t.Fatalf("1 GB image handling = %v, want ≈1s", perGB)
	}
}

func TestProcessBaseline(t *testing.T) {
	if ForkExec != 3500*time.Microsecond {
		t.Fatalf("fork/exec = %v, paper says 3.5ms", ForkExec)
	}
	if ForkExecP90 != 9*time.Millisecond {
		t.Fatalf("fork/exec p90 = %v, paper says 9ms", ForkExecP90)
	}
}

func TestTLSCapacityCalibration(t *testing.T) {
	// §7.3: ~1400 req/s on 14 cores ⇒ ~10ms per request.
	rps := 14 / TLSHandshakeRSA1024.Seconds()
	if rps < 1200 || rps > 1600 {
		t.Fatalf("TLS capacity = %.0f req/s, want ≈1400", rps)
	}
	if LwipIneffFactor != 5.0 {
		t.Fatalf("lwip factor = %v, paper says 5×", LwipIneffFactor)
	}
}

func TestLogRotationThreshold(t *testing.T) {
	if XSLogRotateLines != 13215 {
		t.Fatalf("rotation threshold = %d, paper says 13,215 lines", XSLogRotateLines)
	}
	if XSLogFiles != 20 {
		t.Fatalf("log files = %d, paper says 20", XSLogFiles)
	}
}

func TestMigrationWireRate(t *testing.T) {
	// §7.1: 1 Gbps link; a ClickOS VM (8MB) should cross in well
	// under the quoted 150ms total.
	mb := 8.0
	wire := time.Duration(mb / MigrationWireMBps * float64(time.Second))
	if wire > 120*time.Millisecond {
		t.Fatalf("8MB transfer = %v, too slow for the 150ms budget", wire)
	}
}

func TestComputeServiceCalibration(t *testing.T) {
	// §7.4: jobs ≈0.8s; 3 worker cores at 250ms arrivals ⇒ demand 4/s
	// vs capacity 3.75/s — the system must be slightly overloaded.
	capacity := 3 / MinipyEApprox.Seconds()
	if capacity >= 4 {
		t.Fatalf("compute capacity %.2f/s not overloaded by 4/s arrivals", capacity)
	}
	if capacity < 3 {
		t.Fatalf("compute capacity %.2f/s too low to be 'slightly' overloaded", capacity)
	}
}
