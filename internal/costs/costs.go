// Package costs centralizes every calibrated timing constant in the
// LightVM reproduction. Each constant documents which paper
// observation it is calibrated against (figure / section numbers refer
// to Manco et al., SOSP'17). The control-plane code charges these
// costs against the virtual clock while performing the corresponding
// work for real, so scaling behaviour emerges from mechanism and only
// the per-primitive magnitudes are pinned here.
//
// Nothing outside this package hard-codes a latency; if a curve is off,
// this file is the only place to re-calibrate.
package costs

import "time"

// ---------------------------------------------------------------------------
// Privilege crossings (§4.2, §5: "tens of interrupts and privilege
// domain crossings" per XenStore access vs "a single software
// interrupt" for fork).
// ---------------------------------------------------------------------------

const (
	// Hypercall is one guest→hypervisor→guest round trip.
	Hypercall = 1 * time.Microsecond

	// SoftIRQ is one software interrupt delivery (event channel upcall).
	SoftIRQ = 2 * time.Microsecond

	// DomainCrossing is a context change between guest, hypervisor and
	// Dom0 kernel/userspace on the XenStore message path.
	DomainCrossing = 3 * time.Microsecond

	// IoctlRoundTrip is a Dom0 user→kernel ioctl, used by the noxs
	// device-creation path (Fig. 7b step 1).
	IoctlRoundTrip = 4 * time.Microsecond
)

// ---------------------------------------------------------------------------
// XenStore protocol (§4.2: "a single read or write ... triggers at
// least two, and most often four, software interrupts and multiple
// domain changes").
// ---------------------------------------------------------------------------

const (
	// XSRequestInterrupts is the common-case number of software
	// interrupts per store operation.
	XSRequestInterrupts = 4

	// XSRequestCrossings is the number of domain changes per store
	// operation (guest ↔ hypervisor ↔ Dom0 kernel ↔ oxenstored).
	XSRequestCrossings = 6

	// XSProcess is oxenstored's CPU time to parse and apply one
	// operation, excluding per-node work accounted separately.
	XSProcess = 25 * time.Microsecond

	// XSPerNodeTouch is charged per store node visited while resolving
	// a path, listing a directory, or validating a transaction commit.
	// This is the term that makes store interaction cost grow with the
	// number of guests (each guest adds ~40 nodes under /local/domain
	// and the backend trees).
	XSPerNodeTouch = 600 * time.Nanosecond

	// XSNameUniquenessPerGuest: "writing certain types of information,
	// such as unique guest names, incurs overhead linear with the
	// number of machines" (§4.2). Charged per existing guest on every
	// name write.
	XSNameUniquenessPerGuest = 4 * time.Microsecond

	// XSPerConnection is charged per open store connection on every
	// operation: the store daemon's event loop scans all guest rings /
	// socket connections per iteration (cxenstored literally select()s
	// over them), so each running guest makes every store op a little
	// slower. With per-creation op counts as the lever (xl ≈ 120 ops,
	// chaos ≈ 25, chaos+split ≈ 6, noxs = 0), this term produces the
	// per-toolstack slopes of Fig. 9.
	XSPerConnection = 2500 * time.Nanosecond

	// XSTxnRetry is the penalty for one failed-and-retried transaction
	// commit, on top of re-executing the writes (§4.2: overlapping
	// transactions "resulting in failed transactions that need to be
	// retried"). It is also the base of the exponential retry backoff.
	XSTxnRetry = 120 * time.Microsecond

	// XSTxnBackoffMax caps the exponential transaction-retry backoff so
	// a conflict storm cannot park a toolstack for seconds.
	XSTxnBackoffMax = 2 * time.Millisecond

	// XSStoreStall is the injected store-daemon freeze (fault plane):
	// the latency a client sees when oxenstored hits a GC pause or
	// fsync while its request is queued.
	XSStoreStall = 5 * time.Millisecond

	// XSWatchFire is the cost to deliver one watch event to a
	// registered watcher (an event-channel kick plus queue handling).
	XSWatchFire = 30 * time.Microsecond

	// XSLogLine is the cost of appending one line to ONE access-log
	// file. oxenstored logs every access to 20 files (§4.2), so every
	// logged operation pays 20×XSLogLine.
	XSLogLine = 900 * time.Nanosecond

	// XSLogFiles is the number of log files oxenstored appends to.
	XSLogFiles = 20

	// XSLogRotateLines is the rotation threshold: "rotates them when a
	// certain maximum number of lines is reached (13,215 lines by
	// default); the spikes happen when this rotation takes place".
	XSLogRotateLines = 13215

	// XSLogRotateCost is the pause while all 20 files are rotated —
	// this produces the spikes visible in Fig. 5 and Fig. 9.
	XSLogRotateCost = 90 * time.Millisecond
)

// ---------------------------------------------------------------------------
// noxs (§5.1): device info lives in a hypervisor-maintained device
// page; the toolstack uses an ioctl to the backend plus one hypercall;
// the guest maps the page with hypercalls.
// ---------------------------------------------------------------------------

const (
	// NoxsDevicePageWrite is the hypercall writing one device entry
	// into the domain's device page.
	NoxsDevicePageWrite = 3 * time.Microsecond

	// NoxsDevicePageMap is the guest-side hypercall pair asking for
	// the device page address and mapping it.
	NoxsDevicePageMap = 5 * time.Microsecond

	// NoxsBackendCreate is the backend's in-kernel work to allocate
	// the communication channel for one device (Fig. 7b step 1→2).
	NoxsBackendCreate = 250 * time.Microsecond

	// NoxsPerDomainKernelScan is a small per-existing-domain cost in
	// the Dom0 kernel module's domain lookup tables; it keeps the
	// chaos[NoXS] curve inside its gentle 8–15 ms band across 1000
	// guests (Fig. 9) without a XenStore.
	NoxsPerDomainKernelScan = 1 * time.Microsecond

	// NoxsDeviceDestroy is device teardown through noxs. The paper
	// notes destruction "which we have not yet optimized" (§6.2) makes
	// LightVM migration slightly slower than chaos+XenStore at low VM
	// counts; this constant carries that effect.
	NoxsDeviceDestroy = 18 * time.Millisecond
)

// ---------------------------------------------------------------------------
// Toolstack work (Fig. 5 categories).
// ---------------------------------------------------------------------------

const (
	// ConfigParse is parsing the VM configuration file (xl). chaos
	// uses a leaner format costing ConfigParseChaos.
	ConfigParse      = 2 * time.Millisecond
	ConfigParseChaos = 180 * time.Microsecond

	// HypervisorReserve covers the hypercalls reserving the domain ID,
	// its vCPUs and management structures.
	HypervisorReserve = 1800 * time.Microsecond

	// MemReservePerMB prepares and populates guest pseudo-physical
	// memory (reservation, PoD bookkeeping, p2m setup).
	MemReservePerMB = 28 * time.Microsecond

	// ImageLoadPerMB is reading, parsing and laying out the kernel
	// image in memory. Together with MemReservePerMB it produces the
	// ~1 ms/MB slope of Fig. 2 (boot time grows linearly with image
	// size, ~1000 MB ≈ 1 s).
	ImageLoadPerMB = 950 * time.Microsecond

	// ImageLoadBase is the constant part of image handling (open,
	// headers, ELF notes).
	ImageLoadBase = 350 * time.Microsecond

	// ToolstackInternalXL is libxl's bookkeeping per creation
	// ("internal information and state keeping", Fig. 5).
	ToolstackInternalXL = 6 * time.Millisecond

	// ToolstackInternalChaos is libchaos's equivalent.
	ToolstackInternalChaos = 500 * time.Microsecond

	// VMBootKick is unpausing the domain (hypercall + scheduler entry).
	VMBootKick = 120 * time.Microsecond

	// ShellPoolHit is the execute-phase cost of taking a pre-created
	// shell from the chaos daemon's pool (§5.2): an RPC to the daemon
	// and list manipulation.
	ShellPoolHit = 150 * time.Microsecond

	// ShellPrepare is the daemon's own bookkeeping per prepared shell
	// (pool records, flavor matching); the hypervisor reservation and
	// memory preparation are charged by the hypercalls themselves.
	ShellPrepare = 300 * time.Microsecond
)

// ---------------------------------------------------------------------------
// Hotplug (§5.3): "launching and executing bash scripts is a slow
// process taking tens of milliseconds".
// ---------------------------------------------------------------------------

const (
	// HotplugBashScript is the per-device cost of the fork+exec'd
	// bash hotplug script used by stock xl/udevd.
	HotplugBashScript = 28 * time.Millisecond

	// HotplugXendevd is xendevd's pre-defined in-process setup.
	HotplugXendevd = 450 * time.Microsecond

	// VifBridgeAttach is the software-switch port plumbing itself
	// (common to both paths).
	VifBridgeAttach = 200 * time.Microsecond
)

// ---------------------------------------------------------------------------
// Xenbus split-driver handshake (Fig. 7a): backend and frontend move
// through Initialising→InitWait→Initialised→Connected, each step
// involving XenStore writes and watch fires (accounted by the store);
// these constants cover the drivers' own work.
// ---------------------------------------------------------------------------

const (
	BackendDeviceInit  = 800 * time.Microsecond
	FrontendDeviceInit = 500 * time.Microsecond
	EventChannelAlloc  = 8 * time.Microsecond
	GrantRefSetup      = 12 * time.Microsecond
)

// ---------------------------------------------------------------------------
// Guest boot work (Fig. 4 at N=0, §6.1).
// ---------------------------------------------------------------------------

const (
	// BootUnikernelNoop: "a noop unikernel with no devices and all
	// optimizations results in a minimum boot time of 2.3 ms" — the
	// 2.3 ms total is creation (~1.9ms) + this guest-side boot work.
	BootUnikernelNoop = 400 * time.Microsecond

	// BootUnikernelDaytime includes lwip bring-up (Fig. 4: ~3 ms boot).
	BootUnikernelDaytime = 3 * time.Millisecond

	// BootTinyx is the Tinyx kernel + BusyBox init (Fig. 4: ~180 ms).
	BootTinyx = 180 * time.Millisecond

	// BootDebian is a minimal Debian jessie with systemd (Fig. 4: 1.5 s).
	BootDebian = 1500 * time.Millisecond

	// BootClickOS for the firewall use case (§7.1: "booting one
	// instance takes about 10ms" — ~8 ms boot after ~2 ms creation).
	BootClickOS = 8 * time.Millisecond
)

// ---------------------------------------------------------------------------
// Containers and processes (§4.2, Fig. 4/10/11).
// ---------------------------------------------------------------------------

const (
	// ForkExec is the Linux process baseline: "a process is created
	// and launched (using fork/exec) in 3.5 ms on average (9 ms at the
	// 90% percentile)".
	ForkExec    = 3500 * time.Microsecond
	ForkExecP90 = 9 * time.Millisecond

	// DockerBase is Docker's fixed start cost ("Docker containers
	// start in around 200ms"; Fig. 10 shows ~150 ms on the AMD box).
	DockerBase = 150 * time.Millisecond

	// DockerPerContainer is the daemon's per-existing-container
	// overhead (graph driver + network bookkeeping), which ramps the
	// 3000th container to ~1 s in Fig. 10.
	DockerPerContainer = 280 * time.Microsecond

	// DockerMemSpikeEvery is the container count between the daemon's
	// large bookkeeping reallocations, visible as boot-time spikes in
	// Fig. 10 that "coincide with large jumps in memory consumption".
	DockerMemSpikeEvery = 512
	DockerMemSpikeCost  = 2500 * time.Millisecond
)

// ---------------------------------------------------------------------------
// Checkpointing & migration (§6.2).
// ---------------------------------------------------------------------------

const (
	// SuspendHandshakeXS is the XenStore-mediated shutdown round
	// (control/shutdown write, watch fire, guest acknowledgment).
	SuspendHandshakeXS = 18 * time.Millisecond

	// SuspendHandshakeSysctl is the noxs sysctl split-device path
	// (shared page field + event channel).
	SuspendHandshakeSysctl = 900 * time.Microsecond

	// MemDumpPerMB serializes guest pages to the (ram)disk.
	MemDumpPerMB = 7 * time.Millisecond

	// MemLoadPerMB restores guest pages from the image.
	MemLoadPerMB = 4200 * time.Microsecond

	// XLSaveFixed / XLRestoreFixed cover libxc/libxl state handling
	// that chaos avoids (device model teardown, QEMU-ish remnants).
	// Calibrated so xl saves ≈128 ms and restores ≈550 ms for the
	// daytime unikernel at low N (Fig. 12).
	XLSaveFixed    = 95 * time.Millisecond
	XLRestoreFixed = 420 * time.Millisecond

	// CloneSnapshotPerMB is the one-time cost of snapshotting a
	// parent's memory for SnowFlock/Potemkin-style cloning (related
	// work §8): mark pages copy-on-write and seed the shared region.
	CloneSnapshotPerMB = 450 * time.Microsecond

	// CostStoreSnapshot is the flat price of asking the store daemon
	// for a consistent snapshot of its tree. The immutable store
	// captures its current root in O(1) — one protocol round trip plus
	// daemon bookkeeping — so checkpoint and clone pay this constant
	// instead of a per-node walk, regardless of how many guests are
	// registered.
	CostStoreSnapshot = 150 * time.Microsecond

	// CloneWorkingSetFraction is the private memory a fresh clone
	// needs before first divergence (the rest stays shared COW).
	CloneWorkingSetFraction = 0.1

	// MigrationTCPSetup is the control connection to the remote
	// migration daemon (§5.1: chaos opens a TCP connection and sends
	// the guest's configuration for pre-creation).
	MigrationTCPSetup = 2 * time.Millisecond

	// MigrationWireMBps is the effective transfer rate between hosts
	// (1 Gbps link ≈ 119 MiB/s; §7.1 measures 150 ms for a ClickOS VM
	// over a 1 Gbps, 10 ms link).
	MigrationWireMBps = 119.0

	// MigrationRTT is the control-plane round-trip between source and
	// destination (LAN).
	MigrationRTT = 500 * time.Microsecond
)

// ---------------------------------------------------------------------------
// Control-plane recovery (fault plane). The paper only exercises the
// happy path; these constants price the recovery machinery §7.1's
// churn scenario implies ("users enter and leave the cell
// continuously").
// ---------------------------------------------------------------------------

const (
	// DeviceHandshakeTimeout is how long a toolstack waits on the
	// split-driver handshake before re-attaching the device (the watch
	// timeout on the backend state node). Normal handshakes finish in
	// ~1-2 ms, so one timeout means a genuinely lost event.
	DeviceHandshakeTimeout = 50 * time.Millisecond

	// DeviceReattach is the toolstack's work to re-announce a stalled
	// device (reset the state nodes, re-kick the backend watch), on
	// top of the store writes themselves.
	DeviceReattach = 300 * time.Microsecond

	// MigrationResumeSetup re-establishes a dropped migration TCP
	// stream on the resumable (noxs) path: reconnect plus agreeing on
	// the resume offset with the remote daemon.
	MigrationResumeSetup = 3 * time.Millisecond

	// MigrationRollback is the source-side cost of abandoning a
	// migration: resume handshake with the suspended guest, on top of
	// the destination teardown charged by its own operations.
	MigrationRollback = 2 * time.Millisecond

	// PoolDaemonRestart is the supervisor respawning a crashed chaos
	// pool daemon (exec + config reload + registering flavors). Until
	// it elapses, Take falls back to the cold inline-prepare path.
	PoolDaemonRestart = 250 * time.Millisecond

	// HostFailureDetect is the cluster's heartbeat timeout: how long
	// until surviving hosts declare a silent member dead and start
	// failover (§7.1's placement re-instantiates its VMs).
	HostFailureDetect = 1500 * time.Millisecond

	// ClusterLookahead is the one-way control-network latency between
	// datacenter cluster members — scheduler→host commands, host→
	// scheduler reports, host→host checkpoint streams all pay at least
	// this much. It doubles as the sharded sim core's conservative
	// lookahead (sim.Engine): no cross-host interaction can complete
	// in less, which is exactly what lets per-host timelines run in
	// parallel between synchronization points.
	ClusterLookahead = 1 * time.Millisecond
)

// ---------------------------------------------------------------------------
// Gray-failure plane (cluster health monitor). Defaults for the
// heartbeat protocol and the deterministic shapes of the three gray
// fault kinds; ext-gray sweeps the detection timeout around these.
// ---------------------------------------------------------------------------

const (
	// HeartbeatPeriod is the interval at which every member reports to
	// the cluster's health monitor (a 100 ms gossip/ping cadence, the
	// order real fleet agents use).
	HeartbeatPeriod = 100 * time.Millisecond

	// HeartbeatSuspect is the default silence after which a member is
	// suspected and excluded from new placements (but keeps its VMs).
	HeartbeatSuspect = 300 * time.Millisecond

	// HeartbeatDead is the default silence after which a suspect is
	// declared dead and its VMs failed over. ext-gray sweeps this — it
	// is the availability-vs-false-positive knob.
	HeartbeatDead = 1200 * time.Millisecond

	// GrayFlapMin/GrayFlapExtra bound a host-flap outage: the victim is
	// silent for GrayFlapMin plus a seeded jitter in [0, GrayFlapExtra),
	// then returns as if nothing happened.
	GrayFlapMin   = 500 * time.Millisecond
	GrayFlapExtra = 2500 * time.Millisecond

	// GrayPartitionMin/GrayPartitionExtra bound how long one edge of
	// the reachability matrix stays cut.
	GrayPartitionMin   = 800 * time.Millisecond
	GrayPartitionExtra = 3 * time.Second

	// GraySlowMin/GraySlowExtra bound a slow-host episode; while it
	// lasts, the victim's control-plane work and heartbeat delivery are
	// dilated by a factor in [GraySlowFactorMin, GraySlowFactorMax).
	GraySlowMin   = 400 * time.Millisecond
	GraySlowExtra = 2 * time.Second
)

// GraySlowFactorMin/GraySlowFactorMax bound the slow-host dilation
// factor (2× is a failing disk's metadata path; 8× approaches — but
// deliberately does not reach, under the default timeouts — looking
// dead).
const (
	GraySlowFactorMin = 2.0
	GraySlowFactorMax = 8.0
)

// ---------------------------------------------------------------------------
// Scheduling & idle load (Fig. 11, Fig. 15).
// ---------------------------------------------------------------------------

const (
	// CtxSwitch is one vCPU context switch in the hypervisor.
	CtxSwitch = 25 * time.Microsecond

	// TimesliceRR is the round-robin service quantum the Xen credit
	// scheduler gives each runnable vCPU in the use-case experiments
	// (§7.1: "the Xen scheduler will effectively round-robin through
	// the VMs"; 1000 active VMs add ~60 ms RTT → ~60 µs each).
	TimesliceRR = 60 * time.Microsecond
)

// Idle guest behaviour. Two distinct quantities, per the paper's own
// two measurements:
//
//   - WakeRate/WakeWork drive boot-time dilation (Fig. 11): idle Tinyx
//     guests "run occasional background tasks", and each wakeup also
//     costs the hypervisor a context switch. Docker/unikernel idle
//     instances do not wake.
//   - UtilDuty is the *reported* CPU utilization fraction per idle
//     guest (Fig. 15, measured via iostat+xentop), which excludes
//     most hypervisor switching overhead.
const (
	// Dom0BackendWorkPerWake is Dom0-side work (netback, timer
	// virtualization) per guest wakeup; with many chatty Linux guests
	// this dilates toolstack operations running in Dom0.
	Dom0BackendWorkPerWake = 8 * time.Microsecond

	// TinyxWakeRatePerSec: timer ticks + busybox cron-ish activity.
	TinyxWakeRatePerSec = 100.0
	// TinyxWakeWork is guest work per wakeup.
	TinyxWakeWork = 55 * time.Microsecond

	// DebianWakeRatePerSec: systemd timers, getty, background daemons.
	DebianWakeRatePerSec = 180.0
	DebianWakeWork       = 160 * time.Microsecond

	// Reported utilization duty cycles (fraction of one core consumed
	// by one idle instance), calibrated to Fig. 15 at 1000 guests on
	// 4 cores: Debian ≈25%, Tinyx ≈1%, unikernel a fraction above
	// Docker, Docker lowest.
	DebianUtilDuty    = 0.00100 // 1000 × 0.1% core = 1 core = 25% of 4
	TinyxUtilDuty     = 0.00004
	UnikernelUtilDuty = 0.0000060
	DockerUtilDuty    = 0.0000040
	Dom0UtilBase      = 0.0045 // Dom0 background (switch, logging)
)

// ---------------------------------------------------------------------------
// Networking (use cases, §7).
// ---------------------------------------------------------------------------

const (
	// FirewallPerPacket is the ClickOS firewall's CPU cost per packet
	// (poll, classify against the rule set, forward).
	FirewallPerPacket = 9 * time.Microsecond

	// BridgeForward is the Dom0 software switch's per-packet cost.
	BridgeForward = 2 * time.Microsecond

	// BridgeQueueLimit is the switch's per-port backlog limit; when
	// exceeded, packets (notably ARPs in §7.2) are dropped, producing
	// the long tail of Fig. 16b.
	BridgeQueueLimit = 256

	// PingProcess is the guest-side cost to answer one echo request.
	PingProcess = 30 * time.Microsecond

	// TLSHandshakeRSA1024 is one axtls RSA-1024 private-key operation
	// plus protocol work. "around 1400 requests per second" on 14
	// cores (§7.3) ⇒ ~10 ms CPU each.
	TLSHandshakeRSA1024 = 10 * time.Millisecond

	// LwipIneffFactor: "the unikernel only achieves a fifth of the
	// throughput of Tinyx; this is mostly due to the inefficient lwip
	// stack" (§7.3).
	LwipIneffFactor = 5.0

	// MinipyEApprox is the compute-service job: "an approximation of e
	// that takes approximately 0.8 seconds" (§7.4).
	MinipyEApprox = 800 * time.Millisecond
)

// ---------------------------------------------------------------------------
// Memory footprints (§3, §6.3). Sizes in MiB unless stated.
// ---------------------------------------------------------------------------

const (
	PageSize = 4096

	// Image sizes on disk (uncompressed).
	ImgDaytimeKB    = 480    // "only 480KB (uncompressed)"
	ImgNoopKB       = 300    // smaller than daytime (no lwip)
	ImgMinipythonKB = 1024   // "images of around 1MB"
	ImgClickOSKB    = 1740   // §7.1: "1.7MB in size"
	ImgTLSUniKB     = 1100   // axtls + lwip unikernel
	ImgTinyxMB      = 9.5    // "Tinyx VM (9.5MB image)"
	ImgTinyxMicroMB = 11.0   // Tinyx + Micropython
	ImgTinyxTLSMB   = 10.5   // Tinyx + axtls proxy
	ImgDebianMB     = 1126.4 // "The Debian VM is 1.1GB in size"

	// Runtime memory (MiB).
	MemDaytimeMB    = 3.6 // "can run in as little as 3.6MB of RAM"
	MemNoopMB       = 3.6
	MemMinipythonMB = 8.0   // "can run with just 8MB of memory"
	MemClickOSMB    = 8.0   // §7.1: "needs just 8MB of memory to run"
	MemTLSUniMB     = 16.0  // §7.3: "uses 16MB of RAM at runtime"
	MemTinyxMB      = 30.0  // "need around 30MBs of RAM to boot"
	MemTinyxTLSMB   = 40.0  // §7.3: "The Tinyx machine uses 40MB"
	MemDebianMB     = 111.0 // §6.3: "111MB per VM, the minimum needed"

	// Per-instance footprints for the non-VM baselines (Fig. 14):
	// Docker ≈5 GB at 1000 containers; a Micropython process ~1.4 MB.
	DockerPerContainerMB = 4.6
	DockerEngineBaseMB   = 400.0
	ProcessMicropyMB     = 1.4

	// Dom0 / host baseline memory.
	Dom0BaseMB = 512.0
)
