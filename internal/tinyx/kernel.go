package tinyx

import (
	"fmt"
	"sort"
)

// KOption is one kernel config option with the (approximate) size it
// contributes and the options it depends on.
type KOption struct {
	Name   string
	SizeKB int
	Deps   []string
	// Feature names this option provides to the boot test.
	Features []string
}

// kernelOptions is the synthetic Kconfig universe: the tinyconfig
// baseline, the platform options, and the optional subsystems the
// shrink loop can try to drop.
var kernelOptions = []KOption{
	// tinyconfig baseline — always on.
	{Name: "CORE", SizeKB: 650, Features: []string{"boot"}},
	{Name: "PRINTK", SizeKB: 80, Deps: []string{"CORE"}},
	{Name: "BINFMT_ELF", SizeKB: 60, Deps: []string{"CORE"}, Features: []string{"exec"}},
	{Name: "PROC_FS", SizeKB: 90, Deps: []string{"CORE"}, Features: []string{"proc"}},
	{Name: "TTY", SizeKB: 110, Deps: []string{"CORE"}, Features: []string{"console"}},

	// Platform support.
	{Name: "XEN", SizeKB: 260, Deps: []string{"CORE"}, Features: []string{"platform-xen"}},
	{Name: "XEN_NETFRONT", SizeKB: 90, Deps: []string{"XEN", "NET"}, Features: []string{"net-frontend"}},
	{Name: "XEN_BLKFRONT", SizeKB: 70, Deps: []string{"XEN"}, Features: []string{"blk-frontend"}},
	{Name: "KVM_GUEST", SizeKB: 200, Deps: []string{"CORE"}, Features: []string{"platform-kvm"}},
	{Name: "VIRTIO_NET", SizeKB: 80, Deps: []string{"KVM_GUEST", "NET"}, Features: []string{"net-frontend"}},
	{Name: "VIRTIO_BLK", SizeKB: 60, Deps: []string{"KVM_GUEST"}, Features: []string{"blk-frontend"}},

	// Optional subsystems (shrink-loop candidates).
	{Name: "NET", SizeKB: 520, Deps: []string{"CORE"}, Features: []string{"net"}},
	{Name: "INET", SizeKB: 430, Deps: []string{"NET"}, Features: []string{"tcp"}},
	{Name: "IPV6", SizeKB: 380, Deps: []string{"INET"}, Features: []string{"ipv6"}},
	{Name: "NETFILTER", SizeKB: 290, Deps: []string{"INET"}, Features: []string{"netfilter"}},
	{Name: "EXT4_FS", SizeKB: 480, Deps: []string{"CORE"}, Features: []string{"ext4"}},
	{Name: "TMPFS", SizeKB: 60, Deps: []string{"CORE"}, Features: []string{"tmpfs"}},
	{Name: "SWAP", SizeKB: 90, Deps: []string{"CORE"}, Features: []string{"swap"}},
	{Name: "SOUND", SizeKB: 700, Deps: []string{"CORE"}, Features: []string{"sound"}},
	{Name: "USB", SizeKB: 520, Deps: []string{"CORE"}, Features: []string{"usb"}},
	{Name: "PCI", SizeKB: 240, Deps: []string{"CORE"}, Features: []string{"pci"}},
	{Name: "WIRELESS", SizeKB: 610, Deps: []string{"NET"}, Features: []string{"wifi"}},
	{Name: "CRYPTO", SizeKB: 330, Deps: []string{"CORE"}, Features: []string{"crypto"}},
	{Name: "MODULES", SizeKB: 140, Deps: []string{"CORE"}, Features: []string{"modules"}},
	{Name: "DEBUG_INFO", SizeKB: 900, Deps: []string{"CORE"}, Features: []string{"debug"}},
}

var kernelIndex = func() map[string]KOption {
	m := make(map[string]KOption, len(kernelOptions))
	for _, o := range kernelOptions {
		m[o.Name] = o
	}
	return m
}()

// KernelBuild is a finished kernel configuration.
type KernelBuild struct {
	Platform  string
	Enabled   map[string]bool
	SizeBytes uint64
	// Dropped lists the candidate options the shrink loop removed.
	Dropped []string
	// Rebuilds counts olddefconfig rebuild+boot-test iterations.
	Rebuilds int
}

// tinyconfigBaseline is the always-on set.
func tinyconfigBaseline() map[string]bool {
	return map[string]bool{
		"CORE": true, "PRINTK": true, "BINFMT_ELF": true, "PROC_FS": true, "TTY": true,
	}
}

// resolveDeps enables all dependencies of enabled options (what
// `make olddefconfig` does), returning an error on unknown options.
func resolveDeps(enabled map[string]bool) error {
	for changed := true; changed; {
		changed = false
		for name := range enabled {
			o, ok := kernelIndex[name]
			if !ok {
				return fmt.Errorf("tinyx: unknown kernel option %q", name)
			}
			for _, d := range o.Deps {
				if !enabled[d] {
					enabled[d] = true
					changed = true
				}
			}
		}
	}
	return nil
}

// configSize computes the kernel image size of a config.
func configSize(enabled map[string]bool) uint64 {
	var kb int
	for name := range enabled {
		kb += kernelIndex[name].SizeKB
	}
	return uint64(kb) * 1024
}

// features returns the feature set a config provides.
func features(enabled map[string]bool) map[string]bool {
	out := make(map[string]bool)
	for name := range enabled {
		for _, f := range kernelIndex[name].Features {
			out[f] = true
		}
	}
	return out
}

// DefaultBootTest requires what a networked Tinyx guest needs to pass
// the paper's example test ("attempting to wget a file from the
// server"): boot, exec, console, TCP networking and a frontend NIC.
func DefaultBootTest(enabled map[string]bool) bool {
	f := features(enabled)
	for _, need := range []string{"boot", "exec", "console", "proc", "tcp", "net-frontend"} {
		if !f[need] {
			return false
		}
	}
	return true
}

// BuildKernel constructs a kernel for platform ("xen" or "kvm"),
// starting from tinyconfig, adding platform built-ins, disabling
// module support, then running the §3.2 shrink loop over candidates:
// disable each in turn, rebuild with olddefconfig, boot-test, and
// re-enable on failure.
func BuildKernel(platform string, candidates []string, bootTest func(map[string]bool) bool) (KernelBuild, error) {
	if bootTest == nil {
		bootTest = DefaultBootTest
	}
	enabled := tinyconfigBaseline()
	// olddefconfig pulls in distribution defaults that a virtual
	// guest rarely needs — exactly what the shrink loop then prunes.
	for _, o := range []string{"IPV6", "NETFILTER", "EXT4_FS", "SWAP", "CRYPTO", "PCI", "DEBUG_INFO"} {
		enabled[o] = true
	}
	// Platform built-ins plus a working virtual NIC + TCP.
	switch platform {
	case "", "xen":
		platform = "xen"
		for _, o := range []string{"XEN", "XEN_NETFRONT", "XEN_BLKFRONT", "NET", "INET", "TMPFS"} {
			enabled[o] = true
		}
	case "kvm":
		for _, o := range []string{"KVM_GUEST", "VIRTIO_NET", "VIRTIO_BLK", "NET", "INET", "TMPFS"} {
			enabled[o] = true
		}
	default:
		return KernelBuild{}, fmt.Errorf("tinyx: unknown platform %q", platform)
	}
	// "By default, Tinyx disables module support as well as kernel
	// options that are not necessary for virtualized systems."
	delete(enabled, "MODULES")
	if err := resolveDeps(enabled); err != nil {
		return KernelBuild{}, err
	}
	if !bootTest(enabled) {
		return KernelBuild{}, fmt.Errorf("tinyx: base %s config fails its own boot test", platform)
	}

	kb := KernelBuild{Platform: platform, Enabled: enabled}
	if len(candidates) == 0 {
		candidates = defaultShrinkCandidates()
	}
	for _, cand := range candidates {
		if _, ok := kernelIndex[cand]; !ok {
			return KernelBuild{}, fmt.Errorf("tinyx: unknown shrink candidate %q", cand)
		}
		if !enabled[cand] {
			continue
		}
		// Disable, rebuild (re-resolving deps from scratch), and test.
		trial := make(map[string]bool, len(enabled))
		for k, v := range enabled {
			if v && k != cand {
				trial[k] = true
			}
		}
		// Disabling an option also disables everything that needs it.
		pruneOrphans(trial)
		if err := resolveDeps(trial); err != nil {
			return KernelBuild{}, err
		}
		kb.Rebuilds++
		if bootTest(trial) {
			enabled = trial
			kb.Dropped = append(kb.Dropped, cand)
		}
		// else: "if the test fails, the option is re-enabled" — keep
		// the previous config.
	}
	kb.Enabled = enabled
	kb.SizeBytes = configSize(enabled)
	sort.Strings(kb.Dropped)
	return kb, nil
}

// defaultShrinkCandidates is the user-provided option list from the
// paper's workflow: things a virtual guest rarely needs.
func defaultShrinkCandidates() []string {
	return []string{"SOUND", "USB", "WIRELESS", "PCI", "IPV6", "NETFILTER", "SWAP", "EXT4_FS", "CRYPTO", "DEBUG_INFO"}
}

// pruneOrphans removes options whose dependencies are no longer met.
func pruneOrphans(enabled map[string]bool) {
	for changed := true; changed; {
		changed = false
		for name := range enabled {
			for _, d := range kernelIndex[name].Deps {
				if !enabled[d] {
					delete(enabled, name)
					changed = true
					break
				}
			}
		}
	}
}

// DebianKernelBytes is the reference full-distribution kernel size,
// for the "half the size of typical Debian kernels" comparison.
func DebianKernelBytes() uint64 {
	enabled := make(map[string]bool)
	for _, o := range kernelOptions {
		enabled[o.Name] = true
	}
	return configSize(enabled)
}
