// Package tinyx implements the paper's automated build system for
// minimalistic Linux VMs (§3.2): dependency discovery via objdump-like
// scanning plus the package manager, installation into an OverlayFS
// mount over a debootstrap base, cache stripping, merging onto a
// BusyBox underlay, and a kernel-config shrinker that starts from
// tinyconfig and prunes options behind a boot test.
package tinyx

import (
	"fmt"
	"sort"
	"strings"
)

// Package is one entry of the (synthetic) Debian package universe.
type Package struct {
	Name string
	// Depends lists package names required at runtime.
	Depends []string
	// Essential marks packages dpkg considers required; the paper's
	// blacklist drops the ones "mostly for installation" (dpkg, apt).
	Essential bool
	// Files are installed paths with synthetic sizes; binaries embed
	// the pseudo-ELF NEEDED list so the objdump scan has something
	// real to parse.
	Files []FileSpec
	// HasInstallScript marks packages whose maintainer scripts would
	// break in a minimal system — why Tinyx installs under an overlay
	// on a full debootstrap instead of straight into the image.
	HasInstallScript bool
	// Libs are the sonames this package's binaries need (encoded into
	// the pseudo-ELF header).
	Libs []string
	// Provides lists sonames this package ships.
	Provides []string
}

// FileSpec describes one installed file.
type FileSpec struct {
	Path string
	Size int
	// Binary files get a pseudo-ELF header with the NEEDED list.
	Binary bool
}

// SynthesizeELF produces the synthetic binary content: a recognizable
// magic, the NEEDED list, then deterministic padding to Size.
func SynthesizeELF(name string, needed []string, size int) []byte {
	header := fmt.Sprintf("\x7fELF|%s|NEEDED:%s|", name, strings.Join(needed, ","))
	if size < len(header) {
		size = len(header)
	}
	out := make([]byte, size)
	copy(out, header)
	for i := len(header); i < size; i++ {
		out[i] = byte(i % 251)
	}
	return out
}

// ScanNeeded is the objdump step (§3.2: "Tinyx uses (1) objdump to
// generate a list of libraries"): it parses the pseudo-ELF header and
// returns the NEEDED sonames. Non-binaries return nil.
func ScanNeeded(data []byte) []string {
	s := string(data)
	if !strings.HasPrefix(s, "\x7fELF|") {
		return nil
	}
	idx := strings.Index(s, "NEEDED:")
	if idx < 0 {
		return nil
	}
	rest := s[idx+len("NEEDED:"):]
	end := strings.IndexByte(rest, '|')
	if end >= 0 {
		rest = rest[:end]
	}
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return nil
	}
	return strings.Split(rest, ",")
}

// DB is a package universe.
type DB struct {
	pkgs map[string]*Package
	// soname → package providing it.
	providers map[string]string
}

// NewDB indexes the given packages.
func NewDB(pkgs []*Package) *DB {
	db := &DB{pkgs: make(map[string]*Package), providers: make(map[string]string)}
	for _, p := range pkgs {
		db.pkgs[p.Name] = p
		for _, so := range p.Provides {
			db.providers[so] = p.Name
		}
	}
	return db
}

// Get returns a package by name.
func (db *DB) Get(name string) (*Package, error) {
	p, ok := db.pkgs[name]
	if !ok {
		return nil, fmt.Errorf("tinyx: unknown package %q", name)
	}
	return p, nil
}

// ProviderOf resolves a soname to its package.
func (db *DB) ProviderOf(soname string) (string, error) {
	p, ok := db.providers[soname]
	if !ok {
		return "", fmt.Errorf("tinyx: no package provides %q", soname)
	}
	return p, nil
}

// Names lists all package names sorted.
func (db *DB) Names() []string {
	out := make([]string, 0, len(db.pkgs))
	for n := range db.pkgs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Closure computes the transitive runtime closure of the roots: both
// declared package dependencies and objdump-discovered library needs,
// minus the blacklist, plus the whitelist (§3.2).
func (db *DB) Closure(roots, blacklist, whitelist []string) ([]string, error) {
	black := make(map[string]bool, len(blacklist))
	for _, b := range blacklist {
		black[b] = true
	}
	seen := make(map[string]bool)
	var queue []string
	enqueue := func(name string) {
		if !seen[name] && !black[name] {
			seen[name] = true
			queue = append(queue, name)
		}
	}
	for _, r := range roots {
		enqueue(r)
	}
	for _, w := range whitelist {
		enqueue(w)
	}
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		p, err := db.Get(name)
		if err != nil {
			return nil, err
		}
		for _, d := range p.Depends {
			enqueue(d)
		}
		// objdump pass over the package's binaries.
		for _, f := range p.Files {
			if !f.Binary {
				continue
			}
			data := SynthesizeELF(f.Path, p.Libs, f.Size)
			for _, so := range ScanNeeded(data) {
				prov, err := db.ProviderOf(so)
				if err != nil {
					return nil, fmt.Errorf("tinyx: %s needs %s: %w", name, so, err)
				}
				enqueue(prov)
			}
		}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out, nil
}

// DefaultBlacklist is the paper's list of packages "marked as required
// (mostly for installation, e.g., dpkg) but not strictly needed for
// running the application".
func DefaultBlacklist() []string {
	return []string{"dpkg", "apt", "perl-base", "debconf", "gcc-base", "init-system-helpers"}
}

// DebianUniverse builds the synthetic package universe used by tests,
// examples and the guest-image table. Sizes are loosely modeled on
// real jessie packages.
func DebianUniverse() *DB {
	kb := 1024
	return NewDB([]*Package{
		{Name: "libc6", Provides: []string{"libc.so.6"}, Files: []FileSpec{
			{Path: "/lib/x86_64-linux-gnu/libc.so.6", Size: 1700 * kb, Binary: true}}},
		{Name: "zlib1g", Provides: []string{"libz.so.1"}, Libs: []string{"libc.so.6"}, Files: []FileSpec{
			{Path: "/lib/libz.so.1", Size: 100 * kb, Binary: true}}},
		{Name: "libssl", Provides: []string{"libssl.so.1", "libcrypto.so.1"}, Libs: []string{"libc.so.6", "libz.so.1"}, Files: []FileSpec{
			{Path: "/lib/libssl.so.1", Size: 430 * kb, Binary: true},
			{Path: "/lib/libcrypto.so.1", Size: 2100 * kb, Binary: true}}},
		{Name: "libpcre3", Provides: []string{"libpcre.so.3"}, Libs: []string{"libc.so.6"}, Files: []FileSpec{
			{Path: "/lib/libpcre.so.3", Size: 330 * kb, Binary: true}}},
		{Name: "busybox", Libs: []string{"libc.so.6"}, Files: []FileSpec{
			{Path: "/bin/busybox", Size: 1900 * kb, Binary: true}}},
		{Name: "nginx", Depends: []string{"nginx-common"}, Libs: []string{"libc.so.6", "libpcre.so.3", "libssl.so.1", "libz.so.1"}, HasInstallScript: true, Files: []FileSpec{
			{Path: "/usr/sbin/nginx", Size: 1100 * kb, Binary: true},
			{Path: "/etc/nginx/nginx.conf", Size: 3 * kb}}},
		{Name: "nginx-common", Files: []FileSpec{
			{Path: "/usr/share/nginx/html/index.html", Size: 1 * kb},
			{Path: "/etc/nginx/mime.types", Size: 4 * kb}}},
		{Name: "micropython", Libs: []string{"libc.so.6"}, HasInstallScript: true, Files: []FileSpec{
			{Path: "/usr/bin/micropython", Size: 420 * kb, Binary: true}}},
		{Name: "redis-server", Depends: []string{"redis-tools"}, Libs: []string{"libc.so.6"}, HasInstallScript: true, Files: []FileSpec{
			{Path: "/usr/bin/redis-server", Size: 1600 * kb, Binary: true},
			{Path: "/etc/redis/redis.conf", Size: 46 * kb}}},
		{Name: "redis-tools", Libs: []string{"libc.so.6"}, Files: []FileSpec{
			{Path: "/usr/bin/redis-cli", Size: 400 * kb, Binary: true}}},
		{Name: "openssh-server", Libs: []string{"libc.so.6", "libssl.so.1", "libz.so.1"}, HasInstallScript: true, Files: []FileSpec{
			{Path: "/usr/sbin/sshd", Size: 780 * kb, Binary: true},
			{Path: "/etc/ssh/sshd_config", Size: 3 * kb}}},
		{Name: "axtls", Provides: []string{"libaxtls.so.1"}, Libs: []string{"libc.so.6"}, Files: []FileSpec{
			{Path: "/lib/libaxtls.so.1", Size: 90 * kb, Binary: true}}},
		{Name: "tls-proxy", Depends: []string{"axtls"}, Libs: []string{"libc.so.6", "libaxtls.so.1"}, Files: []FileSpec{
			{Path: "/usr/sbin/tls-proxy", Size: 120 * kb, Binary: true}}},
		// Installation machinery (blacklisted by default).
		{Name: "dpkg", Essential: true, Libs: []string{"libc.so.6"}, Files: []FileSpec{
			{Path: "/usr/bin/dpkg", Size: 600 * kb, Binary: true},
			{Path: "/var/lib/dpkg/status", Size: 900 * kb}}},
		{Name: "apt", Essential: true, Depends: []string{"dpkg"}, Libs: []string{"libc.so.6", "libz.so.1"}, Files: []FileSpec{
			{Path: "/usr/bin/apt-get", Size: 1300 * kb, Binary: true},
			{Path: "/var/cache/apt/pkgcache.bin", Size: 3200 * kb}}},
		{Name: "perl-base", Essential: true, Libs: []string{"libc.so.6"}, Files: []FileSpec{
			{Path: "/usr/bin/perl", Size: 1600 * kb, Binary: true}}},
		{Name: "debconf", Essential: true, Depends: []string{"perl-base"}, Files: []FileSpec{
			{Path: "/usr/share/debconf/confmodule", Size: 10 * kb}}},
		{Name: "gcc-base", Essential: true, Files: []FileSpec{
			{Path: "/usr/lib/gcc/crt1.o", Size: 30 * kb}}},
		{Name: "init-system-helpers", Essential: true, Depends: []string{"perl-base"}, Files: []FileSpec{
			{Path: "/usr/sbin/update-rc.d", Size: 20 * kb}}},
	})
}
