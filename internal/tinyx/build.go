package tinyx

import (
	"fmt"

	"lightvm/internal/overlayfs"
)

// BuildConfig parameterizes a Tinyx image build.
type BuildConfig struct {
	// App is the target application package ("the Tinyx build system
	// takes two inputs: an application to build the image for (e.g.,
	// nginx) and the platform").
	App string
	// Platform selects kernel support ("xen" or "kvm").
	Platform string
	// Whitelist adds packages regardless of dependency analysis.
	Whitelist []string
	// Blacklist overrides the default installation-only blacklist.
	Blacklist []string
	// KernelCandidates are user-provided kernel options the shrink
	// loop tries to disable one by one.
	KernelCandidates []string
	// BootTest validates a candidate kernel config (nil = default
	// test requiring the app's feature set).
	BootTest func(enabled map[string]bool) bool
}

// BuildResult is a finished Tinyx image.
type BuildResult struct {
	App          string
	Distribution *overlayfs.Layer // merged filesystem
	Packages     []string
	Kernel       KernelBuild
	// DistroBytes / KernelBytes / ImageBytes summarize sizes; the
	// image bundles the distribution into the kernel as an initramfs,
	// as the paper's measurements do.
	DistroBytes uint64
	KernelBytes uint64
	ImageBytes  uint64
}

// Build runs the full §3.2 pipeline.
func Build(db *DB, cfg BuildConfig) (*BuildResult, error) {
	if cfg.App == "" {
		return nil, fmt.Errorf("tinyx: no application given")
	}
	if _, err := db.Get(cfg.App); err != nil {
		return nil, err
	}
	blacklist := cfg.Blacklist
	if blacklist == nil {
		blacklist = DefaultBlacklist()
	}

	// 1. Dependency discovery: package manager closure + objdump scan.
	pkgs, err := db.Closure([]string{cfg.App, "busybox"}, blacklist, cfg.Whitelist)
	if err != nil {
		return nil, err
	}

	// 2. Mount an empty overlay over a minimal debootstrap system and
	// install the packages "as would be normally done in Debian":
	// install scripts run against the full base without polluting it.
	base := debootstrapBase(db)
	upper := overlayfs.NewLayer("tinyx-upper")
	ov := overlayfs.Mount(upper, base)
	for _, name := range pkgs {
		p, err := db.Get(name)
		if err != nil {
			return nil, err
		}
		for _, f := range p.Files {
			var data []byte
			if f.Binary {
				data = SynthesizeELF(f.Path, p.Libs, f.Size)
			} else {
				data = synthText(f.Path, f.Size)
			}
			ov.Write(f.Path, data, 0o755)
		}
		if p.HasInstallScript {
			// The script runs against the debootstrap base (e.g. it
			// needs update-rc.d); its side effects land in the upper
			// layer as service glue.
			ov.Write("/etc/rc.d/"+name, []byte("#!/bin/sh\n# installed by "+name+"\n"), 0o755)
		}
	}

	// 3. "Before unmounting, we remove all cache files, any dpkg/apt
	// related files, and other unnecessary directories."
	for _, junk := range []string{"/var/cache", "/var/lib/dpkg", "/var/lib/apt", "/usr/share/doc", "/usr/share/man"} {
		ov.RemoveTree(junk)
	}

	// Unmount: take only the upper layer (the base was scaffolding).
	installed := overlayfs.Mount(upper).Flatten("tinyx-installed")

	// 4. "We overlay this directory on top of a BusyBox image as an
	// underlay and take the contents of the merged directory."
	bb := busyboxUnderlay(db)
	merged := overlayfs.Mount(overlayfs.NewLayer("glue"), bb, installed)

	// 5. "The system adds a small glue to run the application from
	// BusyBox's init."
	merged.Write("/etc/init.d/rcS",
		[]byte(fmt.Sprintf("#!/bin/sh\nmount -t proc proc /proc\nexec /usr/bin/%s\n", cfg.App)), 0o755)

	dist := merged.Flatten("tinyx-" + cfg.App)

	// 6. Kernel: tinyconfig + platform options + shrink loop.
	kb, err := BuildKernel(cfg.Platform, cfg.KernelCandidates, cfg.BootTest)
	if err != nil {
		return nil, err
	}

	res := &BuildResult{
		App:          cfg.App,
		Distribution: dist,
		Packages:     pkgs,
		Kernel:       kb,
		DistroBytes:  dist.SizeBytes(),
		KernelBytes:  kb.SizeBytes,
	}
	// The distribution is bundled into the kernel image as an
	// initramfs (§4.2), with ~55% gzip compression.
	res.ImageBytes = kb.SizeBytes + res.DistroBytes*45/100
	return res, nil
}

// debootstrapBase is the minimal Debian base system the overlay mounts
// over — present so install scripts "expect utilities" they find, but
// never part of the output image.
func debootstrapBase(db *DB) *overlayfs.Layer {
	base := overlayfs.NewLayer("debootstrap")
	for _, name := range db.Names() {
		p, _ := db.Get(name)
		if !p.Essential && name != "libc6" && name != "busybox" {
			continue
		}
		for _, f := range p.Files {
			base.Put(f.Path, synthText(f.Path, f.Size), 0o755)
		}
	}
	base.Put("/var/cache/debootstrap.log", synthText("log", 64*1024), 0o644)
	base.Put("/usr/share/doc/base/README", synthText("doc", 8*1024), 0o644)
	return base
}

// busyboxUnderlay is the BusyBox base image providing "basic
// functionality".
func busyboxUnderlay(db *DB) *overlayfs.Layer {
	bb := overlayfs.NewLayer("busybox")
	p, err := db.Get("busybox")
	if err == nil {
		for _, f := range p.Files {
			bb.Put(f.Path, SynthesizeELF(f.Path, p.Libs, f.Size), 0o755)
		}
	}
	for _, applet := range []string{"sh", "init", "mount", "ifconfig", "wget", "cat", "ls"} {
		bb.Put("/bin/"+applet, []byte("#!busybox-applet "+applet+"\n"), 0o755)
	}
	return bb
}

// synthText produces deterministic non-binary file content of size n.
func synthText(seed string, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte('a' + (i+len(seed))%26)
	}
	return out
}
