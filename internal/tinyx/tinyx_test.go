package tinyx

import (
	"strings"
	"testing"
	"testing/quick"

	"lightvm/internal/overlayfs"
)

func TestSynthesizeAndScanELF(t *testing.T) {
	data := SynthesizeELF("/usr/sbin/nginx", []string{"libc.so.6", "libpcre.so.3"}, 4096)
	if len(data) != 4096 {
		t.Fatalf("len = %d", len(data))
	}
	needed := ScanNeeded(data)
	if len(needed) != 2 || needed[0] != "libc.so.6" || needed[1] != "libpcre.so.3" {
		t.Fatalf("ScanNeeded = %v", needed)
	}
	if ScanNeeded([]byte("plain text file")) != nil {
		t.Fatal("non-ELF scanned as binary")
	}
	if got := ScanNeeded(SynthesizeELF("x", nil, 100)); got != nil {
		t.Fatalf("empty NEEDED = %v", got)
	}
}

func TestClosureFollowsDepsAndLibs(t *testing.T) {
	db := DebianUniverse()
	pkgs, err := db.Closure([]string{"nginx"}, DefaultBlacklist(), nil)
	if err != nil {
		t.Fatal(err)
	}
	set := map[string]bool{}
	for _, p := range pkgs {
		set[p] = true
	}
	// Declared dep.
	if !set["nginx-common"] {
		t.Fatalf("nginx-common missing from closure: %v", pkgs)
	}
	// objdump-discovered lib deps.
	for _, want := range []string{"libc6", "libpcre3", "libssl", "zlib1g"} {
		if !set[want] {
			t.Fatalf("%s missing from closure: %v", want, pkgs)
		}
	}
	// Blacklisted installation machinery excluded.
	for _, banned := range []string{"dpkg", "apt", "perl-base"} {
		if set[banned] {
			t.Fatalf("blacklisted %s included", banned)
		}
	}
}

func TestClosureWhitelist(t *testing.T) {
	db := DebianUniverse()
	pkgs, err := db.Closure([]string{"micropython"}, DefaultBlacklist(), []string{"openssh-server"})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range pkgs {
		if p == "openssh-server" {
			found = true
		}
	}
	if !found {
		t.Fatal("whitelisted package not installed")
	}
}

func TestClosureUnknownPackage(t *testing.T) {
	db := DebianUniverse()
	if _, err := db.Closure([]string{"nonesuch"}, nil, nil); err == nil {
		t.Fatal("unknown root accepted")
	}
}

// mountResult exposes a build's distribution for inspection.
func mountResult(res *BuildResult) *overlayfs.Overlay {
	return overlayfs.Mount(res.Distribution)
}

func TestBuildNginx(t *testing.T) {
	db := DebianUniverse()
	res, err := Build(db, BuildConfig{App: "nginx", Platform: "xen"})
	if err != nil {
		t.Fatal(err)
	}
	ov := mountResult(res)
	if !ov.Exists("/usr/sbin/nginx") {
		t.Fatal("app binary missing")
	}
	if !ov.Exists("/bin/busybox") {
		t.Fatal("busybox underlay missing")
	}
	// Init glue runs the app.
	glue, err := ov.Read("/etc/init.d/rcS")
	if err != nil || !strings.Contains(string(glue), "nginx") {
		t.Fatalf("init glue: %q %v", glue, err)
	}
	// Caches and docs were stripped.
	for _, junk := range []string{"/var/cache/apt/pkgcache.bin", "/var/lib/dpkg/status", "/usr/share/doc/base/README"} {
		if ov.Exists(junk) {
			t.Fatalf("junk survived: %s", junk)
		}
	}
	// Sizes: image should land in the paper's "few tens of MBs" /
	// ~10MB band.
	mb := float64(res.ImageBytes) / (1 << 20)
	if mb < 2 || mb > 30 {
		t.Fatalf("tinyx nginx image = %.1f MB, want single-digit-ish MB", mb)
	}
	if res.KernelBytes == 0 || res.DistroBytes == 0 {
		t.Fatal("zero size components")
	}
}

func TestKernelShrinkLoop(t *testing.T) {
	kb, err := BuildKernel("xen", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Droppable subsystems are gone.
	for _, gone := range []string{"SOUND", "USB", "WIRELESS", "IPV6"} {
		if kb.Enabled[gone] {
			t.Fatalf("%s survived the shrink loop", gone)
		}
	}
	// Boot-critical options survive.
	for _, keep := range []string{"CORE", "TTY", "NET", "INET", "XEN_NETFRONT"} {
		if !kb.Enabled[keep] {
			t.Fatalf("%s was wrongly dropped", keep)
		}
	}
	if kb.Rebuilds == 0 || len(kb.Dropped) == 0 {
		t.Fatalf("shrink loop did not run: %+v", kb)
	}
	// "half the size of typical Debian kernels" — at most.
	if kb.SizeBytes*2 > DebianKernelBytes() {
		t.Fatalf("tinyx kernel %d not ≤ half of debian %d", kb.SizeBytes, DebianKernelBytes())
	}
}

func TestKernelBootTestBlocksNeededOption(t *testing.T) {
	// A boot test that requires netfilter must keep NETFILTER even
	// though it is a shrink candidate.
	needNF := func(enabled map[string]bool) bool {
		if !DefaultBootTest(enabled) {
			return false
		}
		return features(enabled)["netfilter"]
	}
	kb, err := BuildKernel("xen", nil, needNF)
	if err != nil {
		t.Fatal(err)
	}
	if !kb.Enabled["NETFILTER"] {
		t.Fatal("required option dropped despite failing boot test")
	}
	if kb.Enabled["SOUND"] {
		t.Fatal("unneeded option kept")
	}
}

func TestKernelKVMPlatform(t *testing.T) {
	kb, err := BuildKernel("kvm", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !kb.Enabled["VIRTIO_NET"] || kb.Enabled["XEN"] {
		t.Fatalf("kvm platform config wrong: %v", kb.Enabled)
	}
}

func TestKernelUnknownPlatform(t *testing.T) {
	if _, err := BuildKernel("vmware", nil, nil); err == nil {
		t.Fatal("unknown platform accepted")
	}
}

func TestKernelUnknownCandidate(t *testing.T) {
	if _, err := BuildKernel("xen", []string{"NO_SUCH_OPTION"}, nil); err == nil {
		t.Fatal("unknown candidate accepted")
	}
}

func TestDisablingDepPrunesDependents(t *testing.T) {
	// Dropping NET must also drop INET and XEN_NETFRONT... but then
	// the boot test fails, so everything is restored.
	kb, err := BuildKernel("xen", []string{"NET"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !kb.Enabled["NET"] || !kb.Enabled["INET"] || !kb.Enabled["XEN_NETFRONT"] {
		t.Fatal("boot-critical network stack lost")
	}
	if len(kb.Dropped) != 0 {
		t.Fatalf("dropped = %v, want none", kb.Dropped)
	}
}

func TestBuildMicropythonSmallerThanNginx(t *testing.T) {
	db := DebianUniverse()
	mp, err := Build(db, BuildConfig{App: "micropython", Platform: "xen"})
	if err != nil {
		t.Fatal(err)
	}
	ng, err := Build(db, BuildConfig{App: "nginx", Platform: "xen"})
	if err != nil {
		t.Fatal(err)
	}
	if mp.ImageBytes >= ng.ImageBytes {
		t.Fatalf("micropython image (%d) not smaller than nginx (%d)", mp.ImageBytes, ng.ImageBytes)
	}
}

func TestBuildRequiresApp(t *testing.T) {
	db := DebianUniverse()
	if _, err := Build(db, BuildConfig{}); err == nil {
		t.Fatal("empty app accepted")
	}
	if _, err := Build(db, BuildConfig{App: "nonesuch"}); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestBuildDeterministic(t *testing.T) {
	db := DebianUniverse()
	a, err := Build(db, BuildConfig{App: "redis-server", Platform: "xen"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(db, BuildConfig{App: "redis-server", Platform: "xen"})
	if err != nil {
		t.Fatal(err)
	}
	if a.ImageBytes != b.ImageBytes || len(a.Packages) != len(b.Packages) {
		t.Fatal("build not deterministic")
	}
}

func TestClosurePropertiesQuick(t *testing.T) {
	db := DebianUniverse()
	apps := []string{"nginx", "micropython", "redis-server", "tls-proxy", "openssh-server"}
	f := func(appSel uint8, extraSel uint8) bool {
		app := apps[int(appSel)%len(apps)]
		base, err := db.Closure([]string{app}, DefaultBlacklist(), nil)
		if err != nil {
			return false
		}
		// Monotonicity: whitelisting a package never shrinks the set.
		extra := apps[int(extraSel)%len(apps)]
		wider, err := db.Closure([]string{app}, DefaultBlacklist(), []string{extra})
		if err != nil {
			return false
		}
		if len(wider) < len(base) {
			return false
		}
		inWider := map[string]bool{}
		for _, p := range wider {
			inWider[p] = true
		}
		for _, p := range base {
			if !inWider[p] {
				return false
			}
		}
		// Blacklisted packages never appear.
		for _, b := range DefaultBlacklist() {
			if inWider[b] {
				return false
			}
		}
		// Soundness: every NEEDED soname of every included binary is
		// provided by an included package.
		providers := map[string]bool{}
		for _, p := range wider {
			pkg, _ := db.Get(p)
			for _, so := range pkg.Provides {
				providers[so] = true
			}
		}
		for _, p := range wider {
			pkg, _ := db.Get(p)
			for _, f := range pkg.Files {
				if !f.Binary {
					continue
				}
				for _, so := range ScanNeeded(SynthesizeELF(f.Path, pkg.Libs, f.Size)) {
					if !providers[so] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
