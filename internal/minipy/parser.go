package minipy

import "strconv"

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []Token
	pos  int
}

// Parse turns source into a list of top-level statements.
func Parse(src string) ([]Node, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var stmts []Node
	for !p.at(TokEOF, "") {
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	return stmts, nil
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

// at reports whether the current token matches kind (and literal, if
// non-empty).
func (p *parser) at(kind TokKind, lit string) bool {
	t := p.cur()
	return t.Kind == kind && (lit == "" || t.Lit == lit)
}

// accept consumes the current token if it matches.
func (p *parser) accept(kind TokKind, lit string) bool {
	if p.at(kind, lit) {
		p.pos++
		return true
	}
	return false
}

// expect consumes a required token.
func (p *parser) expect(kind TokKind, lit string) (Token, error) {
	if p.at(kind, lit) {
		return p.next(), nil
	}
	t := p.cur()
	want := lit
	if want == "" {
		want = kind.String()
	}
	return t, errf(t.Line, "expected %s, got %v", want, t)
}

// block parses NEWLINE INDENT stmt+ DEDENT.
func (p *parser) block() ([]Node, error) {
	if _, err := p.expect(TokOp, ":"); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokNewline, ""); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokIndent, ""); err != nil {
		return nil, err
	}
	var stmts []Node
	for !p.accept(TokDedent, "") {
		if p.at(TokEOF, "") {
			return nil, errf(p.cur().Line, "unexpected EOF in block")
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	return stmts, nil
}

func (p *parser) statement() (Node, error) {
	t := p.cur()
	if t.Kind == TokKeyword {
		switch t.Lit {
		case "def":
			return p.funcDef()
		case "if":
			return p.ifStmt()
		case "while":
			return p.whileStmt()
		case "for":
			return p.forStmt()
		case "return":
			p.next()
			var val Node
			if !p.at(TokNewline, "") {
				v, err := p.expr()
				if err != nil {
					return nil, err
				}
				val = v
			}
			if _, err := p.expect(TokNewline, ""); err != nil {
				return nil, err
			}
			return &Return{Value: val}, nil
		case "break", "continue", "pass":
			p.next()
			if _, err := p.expect(TokNewline, ""); err != nil {
				return nil, err
			}
			switch t.Lit {
			case "break":
				return &Break{}, nil
			case "continue":
				return &Continue{}, nil
			}
			return &Pass{}, nil
		}
	}
	return p.simpleStmt()
}

// simpleStmt is an assignment or expression statement.
func (p *parser) simpleStmt() (Node, error) {
	x, err := p.expr()
	if err != nil {
		return nil, err
	}
	for _, aug := range []string{"+=", "-=", "*=", "/="} {
		if p.accept(TokOp, aug) {
			v, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := checkAssignable(x, p.cur().Line); err != nil {
				return nil, err
			}
			if _, err := p.expect(TokNewline, ""); err != nil {
				return nil, err
			}
			return &Assign{Target: x, AugOp: aug[:1], Value: v}, nil
		}
	}
	if p.accept(TokOp, "=") {
		v, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := checkAssignable(x, p.cur().Line); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokNewline, ""); err != nil {
			return nil, err
		}
		return &Assign{Target: x, Value: v}, nil
	}
	if _, err := p.expect(TokNewline, ""); err != nil {
		return nil, err
	}
	return &ExprStmt{X: x}, nil
}

func checkAssignable(x Node, line int) error {
	switch x.(type) {
	case *NameRef, *Index:
		return nil
	}
	return errf(line, "cannot assign to this expression")
}

func (p *parser) funcDef() (Node, error) {
	p.next() // def
	name, err := p.expect(TokName, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokOp, "("); err != nil {
		return nil, err
	}
	var params []string
	for !p.at(TokOp, ")") {
		pn, err := p.expect(TokName, "")
		if err != nil {
			return nil, err
		}
		params = append(params, pn.Lit)
		if !p.accept(TokOp, ",") {
			break
		}
	}
	if _, err := p.expect(TokOp, ")"); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &FuncDef{Name: name.Lit, Params: params, Body: body}, nil
}

func (p *parser) ifStmt() (Node, error) {
	p.next() // if
	out := &If{}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	out.Conds = append(out.Conds, cond)
	out.Blocks = append(out.Blocks, body)
	for p.at(TokKeyword, "elif") {
		p.next()
		c, err := p.expr()
		if err != nil {
			return nil, err
		}
		b, err := p.block()
		if err != nil {
			return nil, err
		}
		out.Conds = append(out.Conds, c)
		out.Blocks = append(out.Blocks, b)
	}
	if p.at(TokKeyword, "else") {
		p.next()
		b, err := p.block()
		if err != nil {
			return nil, err
		}
		out.Else = b
	}
	return out, nil
}

func (p *parser) whileStmt() (Node, error) {
	p.next() // while
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &While{Cond: cond, Body: body}, nil
}

func (p *parser) forStmt() (Node, error) {
	p.next() // for
	v, err := p.expect(TokName, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "in"); err != nil {
		return nil, err
	}
	iter, err := p.expr()
	if err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &For{Var: v.Lit, Iter: iter, Body: body}, nil
}

// ---- Expression precedence climbing ----

// expr = orExpr
func (p *parser) expr() (Node, error) { return p.orExpr() }

func (p *parser) orExpr() (Node, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.at(TokKeyword, "or") {
		p.next()
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &BinOp{Op: "or", L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Node, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.at(TokKeyword, "and") {
		p.next()
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = &BinOp{Op: "and", L: l, R: r}
	}
	return l, nil
}

func (p *parser) notExpr() (Node, error) {
	if p.at(TokKeyword, "not") {
		p.next()
		x, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &UnaryOp{Op: "not", X: x}, nil
	}
	return p.comparison()
}

func (p *parser) comparison() (Node, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"==", "!=", "<=", ">=", "<", ">"} {
		if p.at(TokOp, op) {
			p.next()
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			return &BinOp{Op: op, L: l, R: r}, nil
		}
	}
	// Membership: `x in c` and `x not in c`.
	if p.at(TokKeyword, "in") {
		p.next()
		r, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return &BinOp{Op: "in", L: l, R: r}, nil
	}
	if p.at(TokKeyword, "not") && p.pos+1 < len(p.toks) &&
		p.toks[p.pos+1].Kind == TokKeyword && p.toks[p.pos+1].Lit == "in" {
		p.next()
		p.next()
		r, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return &UnaryOp{Op: "not", X: &BinOp{Op: "in", L: l, R: r}}, nil
	}
	return l, nil
}

func (p *parser) addExpr() (Node, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.at(TokOp, "+") || p.at(TokOp, "-") {
		op := p.next().Lit
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = &BinOp{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) mulExpr() (Node, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.at(TokOp, "*") || p.at(TokOp, "/") || p.at(TokOp, "//") || p.at(TokOp, "%") {
		op := p.next().Lit
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		l = &BinOp{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) unary() (Node, error) {
	if p.at(TokOp, "-") {
		p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnaryOp{Op: "-", X: x}, nil
	}
	return p.power()
}

func (p *parser) power() (Node, error) {
	base, err := p.postfix()
	if err != nil {
		return nil, err
	}
	if p.at(TokOp, "**") {
		p.next()
		exp, err := p.unary() // right-associative
		if err != nil {
			return nil, err
		}
		return &BinOp{Op: "**", L: base, R: exp}, nil
	}
	return base, nil
}

// postfix handles indexing: atom ([expr])*
func (p *parser) postfix() (Node, error) {
	x, err := p.atom()
	if err != nil {
		return nil, err
	}
	for p.at(TokOp, "[") {
		p.next()
		idx, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokOp, "]"); err != nil {
			return nil, err
		}
		x = &Index{Container: x, Idx: idx}
	}
	return x, nil
}

func (p *parser) atom() (Node, error) {
	t := p.cur()
	switch {
	case t.Kind == TokInt:
		p.next()
		v, err := strconv.ParseInt(t.Lit, 10, 64)
		if err != nil {
			return nil, errf(t.Line, "bad integer %q", t.Lit)
		}
		return &NumLit{Int: v}, nil
	case t.Kind == TokFloat:
		p.next()
		v, err := strconv.ParseFloat(t.Lit, 64)
		if err != nil {
			return nil, errf(t.Line, "bad float %q", t.Lit)
		}
		return &NumLit{IsFloat: true, Float: v}, nil
	case t.Kind == TokString:
		p.next()
		return &StrLit{Val: t.Lit}, nil
	case t.Kind == TokKeyword && (t.Lit == "True" || t.Lit == "False"):
		p.next()
		return &BoolLit{Val: t.Lit == "True"}, nil
	case t.Kind == TokKeyword && t.Lit == "None":
		p.next()
		return &NoneLit{}, nil
	case t.Kind == TokName:
		p.next()
		if p.accept(TokOp, "(") {
			var args []Node
			for !p.at(TokOp, ")") {
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if !p.accept(TokOp, ",") {
					break
				}
			}
			if _, err := p.expect(TokOp, ")"); err != nil {
				return nil, err
			}
			return &Call{Fn: t.Lit, Args: args}, nil
		}
		return &NameRef{Name: t.Lit}, nil
	case t.Kind == TokOp && t.Lit == "(":
		p.next()
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokOp, ")"); err != nil {
			return nil, err
		}
		return x, nil
	case t.Kind == TokOp && t.Lit == "[":
		p.next()
		var elems []Node
		for !p.at(TokOp, "]") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			elems = append(elems, e)
			if !p.accept(TokOp, ",") {
				break
			}
		}
		if _, err := p.expect(TokOp, "]"); err != nil {
			return nil, err
		}
		return &ListLit{Elems: elems}, nil
	case t.Kind == TokOp && t.Lit == "{":
		p.next()
		d := &DictLit{}
		for !p.at(TokOp, "}") {
			k, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokOp, ":"); err != nil {
				return nil, err
			}
			v, err := p.expr()
			if err != nil {
				return nil, err
			}
			d.Keys = append(d.Keys, k)
			d.Vals = append(d.Vals, v)
			if !p.accept(TokOp, ",") {
				break
			}
		}
		if _, err := p.expect(TokOp, "}"); err != nil {
			return nil, err
		}
		return d, nil
	}
	return nil, errf(t.Line, "unexpected token %v", t)
}
