package minipy

// Node is any AST node.
type Node interface{ node() }

// ---- Expressions ----

// NumLit is an integer or float literal.
type NumLit struct {
	IsFloat bool
	Int     int64
	Float   float64
}

// StrLit is a string literal.
type StrLit struct{ Val string }

// BoolLit is True/False.
type BoolLit struct{ Val bool }

// NoneLit is None.
type NoneLit struct{}

// NameRef references a variable.
type NameRef struct{ Name string }

// ListLit is [a, b, c].
type ListLit struct{ Elems []Node }

// DictLit is {k: v, ...}.
type DictLit struct {
	Keys []Node
	Vals []Node
}

// Index is container[expr].
type Index struct {
	Container Node
	Idx       Node
}

// Call invokes a function.
type Call struct {
	Fn   string
	Args []Node
}

// BinOp is a binary operation.
type BinOp struct {
	Op   string
	L, R Node
}

// UnaryOp is -x or `not x`.
type UnaryOp struct {
	Op string
	X  Node
}

func (*NumLit) node()  {}
func (*StrLit) node()  {}
func (*BoolLit) node() {}
func (*NoneLit) node() {}
func (*NameRef) node() {}
func (*ListLit) node() {}
func (*DictLit) node() {}
func (*Index) node()   {}
func (*Call) node()    {}
func (*BinOp) node()   {}
func (*UnaryOp) node() {}

// ---- Statements ----

// Assign is name = expr, name op= expr, or container[i] = expr.
type Assign struct {
	Target Node   // *NameRef or *Index
	AugOp  string // "", "+", "-", "*", "/"
	Value  Node
}

// ExprStmt evaluates an expression for its side effects.
type ExprStmt struct{ X Node }

// If is a chain of conditions with an optional else.
type If struct {
	Conds  []Node
	Blocks [][]Node
	Else   []Node
}

// While loops while the condition holds.
type While struct {
	Cond Node
	Body []Node
}

// For iterates over a range() or list value.
type For struct {
	Var  string
	Iter Node
	Body []Node
}

// FuncDef defines a function.
type FuncDef struct {
	Name   string
	Params []string
	Body   []Node
}

// Return exits a function with an optional value.
type Return struct{ Value Node }

// Break / Continue / Pass are loop and no-op statements.
type Break struct{}
type Continue struct{}
type Pass struct{}

func (*Assign) node()   {}
func (*ExprStmt) node() {}
func (*If) node()       {}
func (*While) node()    {}
func (*For) node()      {}
func (*FuncDef) node()  {}
func (*Return) node()   {}
func (*Break) node()    {}
func (*Continue) node() {}
func (*Pass) node()     {}
