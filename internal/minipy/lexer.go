// Package minipy implements a small Python-subset interpreter in the
// spirit of MicroPython, used as the payload of the paper's
// lightweight compute service (§7.4): indentation-structured source,
// integers and floats, lists, functions with recursion, while/for
// loops, and a fuel limit so untrusted programs terminate.
package minipy

import (
	"fmt"
	"strings"
)

// TokKind classifies tokens.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokNewline
	TokIndent
	TokDedent
	TokInt
	TokFloat
	TokString
	TokName
	TokKeyword
	TokOp
)

var tokNames = [...]string{"EOF", "NEWLINE", "INDENT", "DEDENT", "INT", "FLOAT", "STRING", "NAME", "KEYWORD", "OP"}

func (k TokKind) String() string {
	if int(k) < len(tokNames) {
		return tokNames[k]
	}
	return fmt.Sprintf("tok(%d)", int(k))
}

// Token is one lexical unit.
type Token struct {
	Kind TokKind
	Lit  string
	Line int
}

func (t Token) String() string { return fmt.Sprintf("%v(%q)@%d", t.Kind, t.Lit, t.Line) }

var keywords = map[string]bool{
	"def": true, "return": true, "if": true, "elif": true, "else": true,
	"while": true, "for": true, "in": true, "pass": true, "break": true,
	"continue": true, "and": true, "or": true, "not": true,
	"True": true, "False": true, "None": true,
}

// operators, longest first so multi-char ops win.
var operators = []string{
	"**", "//", "==", "!=", "<=", ">=", "+=", "-=", "*=", "/=",
	"+", "-", "*", "/", "%", "<", ">", "=", "(", ")", "[", "]", "{", "}", ",", ":",
}

// SyntaxError reports a lexing or parsing problem with its line.
type SyntaxError struct {
	Line int
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("minipy: line %d: %s", e.Line, e.Msg)
}

func errf(line int, format string, args ...interface{}) error {
	return &SyntaxError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// Lex tokenizes src, emitting INDENT/DEDENT tokens from indentation.
func Lex(src string) ([]Token, error) {
	var toks []Token
	indents := []int{0}
	lines := strings.Split(src, "\n")
	for ln, raw := range lines {
		line := ln + 1
		// Strip comments (outside strings).
		code := stripComment(raw)
		trimmed := strings.TrimRight(code, " \t")
		if strings.TrimSpace(trimmed) == "" {
			continue // blank lines carry no indentation meaning
		}
		indent := 0
		for _, r := range trimmed {
			if r == ' ' {
				indent++
			} else if r == '\t' {
				indent += 8 - indent%8
			} else {
				break
			}
		}
		if indent > indents[len(indents)-1] {
			indents = append(indents, indent)
			toks = append(toks, Token{Kind: TokIndent, Line: line})
		}
		for indent < indents[len(indents)-1] {
			indents = indents[:len(indents)-1]
			toks = append(toks, Token{Kind: TokDedent, Line: line})
		}
		if indent != indents[len(indents)-1] {
			return nil, errf(line, "inconsistent indentation")
		}
		lineToks, err := lexLine(strings.TrimSpace(trimmed), line)
		if err != nil {
			return nil, err
		}
		toks = append(toks, lineToks...)
		toks = append(toks, Token{Kind: TokNewline, Line: line})
	}
	for len(indents) > 1 {
		indents = indents[:len(indents)-1]
		toks = append(toks, Token{Kind: TokDedent, Line: len(lines)})
	}
	toks = append(toks, Token{Kind: TokEOF, Line: len(lines)})
	return toks, nil
}

// stripComment removes a trailing # comment, respecting string quotes.
func stripComment(s string) string {
	inStr := byte(0)
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case inStr != 0:
			if c == inStr {
				inStr = 0
			}
		case c == '\'' || c == '"':
			inStr = c
		case c == '#':
			return s[:i]
		}
	}
	return s
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isNameStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
func isNameCont(c byte) bool { return isNameStart(c) || isDigit(c) }

// lexLine tokenizes the code portion of one line.
func lexLine(s string, line int) ([]Token, error) {
	var toks []Token
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case isDigit(c) || (c == '.' && i+1 < len(s) && isDigit(s[i+1])):
			j := i
			isFloat := false
			for j < len(s) && (isDigit(s[j]) || s[j] == '.') {
				if s[j] == '.' {
					if isFloat {
						return nil, errf(line, "malformed number %q", s[i:j+1])
					}
					isFloat = true
				}
				j++
			}
			kind := TokInt
			if isFloat {
				kind = TokFloat
			}
			toks = append(toks, Token{Kind: kind, Lit: s[i:j], Line: line})
			i = j
		case c == '\'' || c == '"':
			j := i + 1
			for j < len(s) && s[j] != c {
				j++
			}
			if j >= len(s) {
				return nil, errf(line, "unterminated string")
			}
			toks = append(toks, Token{Kind: TokString, Lit: s[i+1 : j], Line: line})
			i = j + 1
		case isNameStart(c):
			j := i
			for j < len(s) && isNameCont(s[j]) {
				j++
			}
			word := s[i:j]
			kind := TokName
			if keywords[word] {
				kind = TokKeyword
			}
			toks = append(toks, Token{Kind: kind, Lit: word, Line: line})
			i = j
		default:
			matched := false
			for _, op := range operators {
				if strings.HasPrefix(s[i:], op) {
					toks = append(toks, Token{Kind: TokOp, Lit: op, Line: line})
					i += len(op)
					matched = true
					break
				}
			}
			if !matched {
				return nil, errf(line, "unexpected character %q", c)
			}
		}
	}
	return toks, nil
}
