package minipy

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func run(t *testing.T, src string) *Result {
	t.Helper()
	res, err := Run(src, 0)
	if err != nil {
		t.Fatalf("Run failed: %v", err)
	}
	return res
}

func mustFail(t *testing.T, src string) error {
	t.Helper()
	_, err := Run(src, 0)
	if err == nil {
		t.Fatalf("program unexpectedly succeeded:\n%s", src)
	}
	return err
}

func TestArithmetic(t *testing.T) {
	cases := map[string]string{
		"print(1 + 2 * 3)":      "7",
		"print((1 + 2) * 3)":    "9",
		"print(7 // 2)":         "3",
		"print(-7 // 2)":        "-4", // Python floor division
		"print(7 % 3)":          "1",
		"print(-7 % 3)":         "2", // Python modulo sign
		"print(2 ** 10)":        "1024",
		"print(7 / 2)":          "3.5",
		"print(1.5 + 2.5)":      "4.0",
		"print(-3)":             "-3",
		"print(2 ** -1)":        "0.5",
		"print(10 - 3 - 2)":     "5",   // left associativity
		"print(2 ** 3 ** 2)":    "512", // right associativity
		"print(abs(-4.5))":      "4.5",
		"print(min(3, 1, 2))":   "1",
		"print(max([5, 9, 2]))": "9",
		"print(sum([1, 2, 3]))": "6",
		"print(int(3.9))":       "3",
		"print(float(2))":       "2.0",
		"print(int('42'))":      "42",
	}
	for src, want := range cases {
		res := run(t, src)
		if got := strings.TrimSpace(res.Output); got != want {
			t.Errorf("%s → %q, want %q", src, got, want)
		}
	}
}

func TestComparisonAndLogic(t *testing.T) {
	cases := map[string]string{
		"print(1 < 2)":            "True",
		"print(2 <= 1)":           "False",
		"print(1 == 1.0)":         "True",
		"print('a' < 'b')":        "True",
		"print(not True)":         "False",
		"print(True and False)":   "False",
		"print(False or True)":    "True",
		"print(1 != 2)":           "True",
		"print([1, 2] == [1, 2])": "True",
		"print([1] == [2])":       "False",
	}
	for src, want := range cases {
		res := run(t, src)
		if got := strings.TrimSpace(res.Output); got != want {
			t.Errorf("%s → %q, want %q", src, got, want)
		}
	}
}

func TestShortCircuit(t *testing.T) {
	// The RHS would raise; short-circuiting must avoid it.
	res := run(t, "print(False and 1 / 0)")
	if strings.TrimSpace(res.Output) != "False" {
		t.Fatalf("and short-circuit: %q", res.Output)
	}
	res = run(t, "print(True or 1 / 0)")
	if strings.TrimSpace(res.Output) != "True" {
		t.Fatalf("or short-circuit: %q", res.Output)
	}
}

func TestVariablesAndAugAssign(t *testing.T) {
	src := `
x = 10
x += 5
x *= 2
x -= 6
x /= 4
print(x)
`
	res := run(t, src)
	if strings.TrimSpace(res.Output) != "6.0" {
		t.Fatalf("aug assign chain: %q", res.Output)
	}
}

func TestWhileLoop(t *testing.T) {
	src := `
total = 0
i = 1
while i <= 100:
    total += i
    i += 1
print(total)
`
	res := run(t, src)
	if strings.TrimSpace(res.Output) != "5050" {
		t.Fatalf("while sum: %q", res.Output)
	}
}

func TestForRangeAndBreakContinue(t *testing.T) {
	src := `
evens = 0
for i in range(10):
    if i % 2 == 1:
        continue
    if i == 8:
        break
    evens += 1
print(evens)
`
	res := run(t, src)
	if strings.TrimSpace(res.Output) != "4" {
		t.Fatalf("for/break/continue: %q", res.Output)
	}
}

func TestRangeVariants(t *testing.T) {
	cases := map[string]string{
		"print(range(3))":         "[0, 1, 2]",
		"print(range(1, 4))":      "[1, 2, 3]",
		"print(range(0, 10, 3))":  "[0, 3, 6, 9]",
		"print(range(5, 0, -2))":  "[5, 3, 1]",
		"print(len(range(1000)))": "1000",
	}
	for src, want := range cases {
		res := run(t, src)
		if got := strings.TrimSpace(res.Output); got != want {
			t.Errorf("%s → %q, want %q", src, got, want)
		}
	}
}

func TestLists(t *testing.T) {
	src := `
xs = [1, 2, 3]
xs[0] = 10
append(xs, 4)
print(xs)
print(xs[-1])
print(len(xs))
print([1] + [2, 3])
`
	res := run(t, src)
	want := "[10, 2, 3, 4]\n4\n4\n[1, 2, 3]\n"
	if res.Output != want {
		t.Fatalf("lists:\n%q\nwant\n%q", res.Output, want)
	}
}

func TestStrings(t *testing.T) {
	src := `
s = 'abc' + "def"
print(s)
print(s[0])
print(s[-1])
print('ab' * 3)
print(len(s))
`
	res := run(t, src)
	want := "abcdef\na\nf\nababab\n6\n"
	if res.Output != want {
		t.Fatalf("strings:\n%q", res.Output)
	}
}

func TestFunctionsAndRecursion(t *testing.T) {
	src := `
def fib(n):
    if n < 2:
        return n
    return fib(n - 1) + fib(n - 2)
print(fib(15))
`
	res := run(t, src)
	if strings.TrimSpace(res.Output) != "610" {
		t.Fatalf("fib: %q", res.Output)
	}
}

func TestFunctionLocalScope(t *testing.T) {
	src := `
x = 1
def f():
    x = 99
    return x
y = f()
print(x, y)
`
	res := run(t, src)
	if strings.TrimSpace(res.Output) != "1 99" {
		t.Fatalf("scoping: %q", res.Output)
	}
}

func TestGlobalsReadableInFunctions(t *testing.T) {
	src := `
base = 100
def f(n):
    return base + n
print(f(1))
`
	res := run(t, src)
	if strings.TrimSpace(res.Output) != "101" {
		t.Fatalf("global read: %q", res.Output)
	}
}

func TestApproxEProgram(t *testing.T) {
	res := run(t, ApproxEProgram)
	v, ok := res.Globals["result"].(float64)
	if !ok {
		t.Fatalf("result global missing: %v", res.Globals["result"])
	}
	if math.Abs(v-math.E) > 1e-9 {
		t.Fatalf("approx_e(20) = %v, want ≈%v", v, math.E)
	}
	if !strings.HasPrefix(strings.TrimSpace(res.Output), "2.718281828") {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestIfElifElse(t *testing.T) {
	src := `
def sign(x):
    if x > 0:
        return 1
    elif x < 0:
        return -1
    else:
        return 0
print(sign(5), sign(-5), sign(0))
`
	res := run(t, src)
	if strings.TrimSpace(res.Output) != "1 -1 0" {
		t.Fatalf("if/elif/else: %q", res.Output)
	}
}

func TestNestedLoops(t *testing.T) {
	src := `
count = 0
for i in range(5):
    for j in range(5):
        if j > i:
            break
        count += 1
print(count)
`
	res := run(t, src)
	if strings.TrimSpace(res.Output) != "15" {
		t.Fatalf("nested loops: %q", res.Output)
	}
}

func TestFuelLimit(t *testing.T) {
	_, err := Run("while True:\n    pass\n", 10000)
	if !errors.Is(err, ErrFuel) {
		t.Fatalf("infinite loop: %v", err)
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []string{
		"print(1 / 0)",
		"print(1 % 0)",
		"print(undefined_name)",
		"print([1][5])",
		"print('a' + 1)",
		"print(len(3))",
		"xs = 3\nxs[0] = 1",
		"print(nosuchfn(1))",
		"def f(a, b):\n    return a\nprint(f(1))",
	}
	for _, src := range cases {
		err := mustFail(t, src)
		var rt *RuntimeError
		if !errors.As(err, &rt) {
			t.Errorf("%q: error %v is not a RuntimeError", src, err)
		}
	}
}

func TestSyntaxErrors(t *testing.T) {
	cases := []string{
		"def f(:\n    pass",
		"if True\n    pass",
		"x = ",
		"print('unterminated)",
		"x = 1.2.3",
		"while True:\npass", // missing indent
		"  x = 1",           // unexpected indent... leading space on first line
		"1 = x",
	}
	for _, src := range cases {
		err := mustFail(t, src)
		var se *SyntaxError
		if !errors.As(err, &se) {
			t.Errorf("%q: error %v is not a SyntaxError", src, err)
		}
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	src := `
# leading comment
x = 1  # trailing comment

y = '# not a comment'

print(x, y)
`
	res := run(t, src)
	if strings.TrimSpace(res.Output) != "1 # not a comment" {
		t.Fatalf("comments: %q", res.Output)
	}
}

func TestReprFormats(t *testing.T) {
	cases := map[string]string{
		"print(None)":        "None",
		"print(True, False)": "True False",
		"print(2.0)":         "2.0",
		"print(0.1 + 0.2)":   "0.30000000000000004",
		"print(['a', 1])":    "['a', 1]",
	}
	for src, want := range cases {
		res := run(t, src)
		if got := strings.TrimSpace(res.Output); got != want {
			t.Errorf("%s → %q, want %q", src, got, want)
		}
	}
}

func TestTruthiness(t *testing.T) {
	src := `
vals = 0
if 0:
    vals += 1
if 1:
    vals += 10
if '':
    vals += 100
if 'x':
    vals += 1000
if []:
    vals += 10000
if [0]:
    vals += 100000
if None:
    vals += 1000000
print(vals)
`
	res := run(t, src)
	if strings.TrimSpace(res.Output) != "101010" {
		t.Fatalf("truthiness: %q", res.Output)
	}
}

func TestStepsCounted(t *testing.T) {
	res := run(t, "x = 1\n")
	if res.Steps == 0 {
		t.Fatal("no steps counted")
	}
	res2 := run(t, "for i in range(1000):\n    x = i\n")
	if res2.Steps <= res.Steps {
		t.Fatal("bigger program did not cost more steps")
	}
}

func TestDeterministic(t *testing.T) {
	a := run(t, ApproxEProgram)
	b := run(t, ApproxEProgram)
	if a.Output != b.Output || a.Steps != b.Steps {
		t.Fatal("runs are not deterministic")
	}
}

func TestDicts(t *testing.T) {
	src := `
d = {'a': 1, 'b': 2}
d['c'] = 3
d['a'] = 10
print(d['a'], d['b'], d['c'])
print(len(d))
print('a' in d, 'z' in d)
print('z' not in d)
print(keys(d))
print(values(d))
`
	res := run(t, src)
	want := "10 2 3\n3\nTrue False\nTrue\n['a', 'b', 'c']\n[10, 2, 3]\n"
	if res.Output != want {
		t.Fatalf("dicts:\n%q\nwant\n%q", res.Output, want)
	}
}

func TestDictIteration(t *testing.T) {
	src := `
counts = {}
for w in ['vm', 'ct', 'vm', 'uk', 'vm']:
    if w in counts:
        counts[w] += 1
    else:
        counts[w] = 1
total = 0
for k in counts:
    total += counts[k]
print(counts)
print(total)
`
	res := run(t, src)
	want := "{'vm': 3, 'ct': 1, 'uk': 1}\n5\n"
	if res.Output != want {
		t.Fatalf("dict iteration:\n%q", res.Output)
	}
}

func TestDictNumericKeyEquality(t *testing.T) {
	// Python semantics: 1, 1.0 and True are the same key.
	src := `
d = {1: 'int'}
d[1.0] = 'float'
d[True] = 'bool'
print(len(d), d[1])
`
	res := run(t, src)
	if strings.TrimSpace(res.Output) != "1 bool" {
		t.Fatalf("numeric key folding: %q", res.Output)
	}
}

func TestDictErrors(t *testing.T) {
	for _, src := range []string{
		"d = {}\nprint(d['missing'])",
		"d = {[1]: 2}",
		"d = {}\nd[[1]] = 2",
		"print(keys(3))",
		"print(1 in 42)",
		"print(1 in 'abc')",
	} {
		mustFail(t, src)
	}
}

func TestMembershipOperators(t *testing.T) {
	cases := map[string]string{
		"print(2 in [1, 2, 3])":     "True",
		"print(9 in [1, 2, 3])":     "False",
		"print(9 not in [1, 2, 3])": "True",
		"print('ell' in 'hello')":   "True",
		"print('z' in 'hello')":     "False",
		"print(1.0 in [1, 2])":      "True", // numeric equality
	}
	for src, want := range cases {
		res := run(t, src)
		if got := strings.TrimSpace(res.Output); got != want {
			t.Errorf("%s → %q, want %q", src, got, want)
		}
	}
}

func TestDictTruthiness(t *testing.T) {
	res := run(t, "x = 0\nif {}:\n    x += 1\nif {'a': 1}:\n    x += 10\nprint(x)")
	if strings.TrimSpace(res.Output) != "10" {
		t.Fatalf("dict truthiness: %q", res.Output)
	}
}

func TestStringBuiltins(t *testing.T) {
	cases := map[string]string{
		"print(split('a b  c'))":         "['a', 'b', 'c']",
		"print(split('a,b,c', ','))":     "['a', 'b', 'c']",
		"print(join('-', ['x', 'y']))":   "x-y",
		"print(upper('abc'))":            "ABC",
		"print(lower('AbC'))":            "abc",
		"print(find('hello', 'll'))":     "2",
		"print(find('hello', 'z'))":      "-1",
		"print(strip('  pad  '))":        "pad",
		"print(sorted([3, 1, 2]))":       "[1, 2, 3]",
		"print(sorted(['b', 'a', 'c']))": "['a', 'b', 'c']",
	}
	for src, want := range cases {
		res := run(t, src)
		if got := strings.TrimSpace(res.Output); got != want {
			t.Errorf("%s → %q, want %q", src, got, want)
		}
	}
	// sorted() leaves the input untouched.
	res := run(t, "xs = [2, 1]\nys = sorted(xs)\nprint(xs, ys)")
	if strings.TrimSpace(res.Output) != "[2, 1] [1, 2]" {
		t.Fatalf("sorted mutated input: %q", res.Output)
	}
}

func TestStringBuiltinErrors(t *testing.T) {
	for _, src := range []string{
		"split(3)",
		"split('a', '')",
		"join(3, [])",
		"join('-', [1])",
		"upper(3)",
		"find('a', 3)",
		"sorted([1, 'a'])",
		"sorted(3)",
	} {
		mustFail(t, src)
	}
}

func TestWordFrequencyProgram(t *testing.T) {
	// A realistic compute-service payload combining the extensions.
	src := `
text = 'the vm is lighter and the vm is safer'
counts = {}
for w in split(text):
    if w in counts:
        counts[w] += 1
    else:
        counts[w] = 1
best = ''
bestn = 0
for w in counts:
    if counts[w] > bestn:
        best = w
        bestn = counts[w]
print(best, bestn)
print(join(',', sorted(keys(counts))))
`
	res := run(t, src)
	want := "the 2\nand,is,lighter,safer,the,vm\n"
	if res.Output != want {
		t.Fatalf("wordfreq:\n%q\nwant\n%q", res.Output, want)
	}
}
