package minipy

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Value is a runtime value: nil (None), int64, float64, bool, string,
// *List, or *Function.
type Value interface{}

// List is a mutable list value.
type List struct{ Items []Value }

// Dict is a mutable mapping with insertion-ordered keys. Keys may be
// strings, ints, floats or bools (hashable values).
type Dict struct {
	keys  []Value
	vals  []Value
	index map[string]int
}

// dictKey encodes a hashable value as a map key, preserving Python's
// cross-type numeric equality (1 == 1.0 == True).
func dictKey(v Value) (string, error) {
	switch x := v.(type) {
	case string:
		return "s:" + x, nil
	case int64:
		return "n:" + strconv.FormatFloat(float64(x), 'g', -1, 64), nil
	case float64:
		return "n:" + strconv.FormatFloat(x, 'g', -1, 64), nil
	case bool:
		if x {
			return "n:1", nil
		}
		return "n:0", nil
	case nil:
		return "none", nil
	}
	return "", rte("unhashable type: %s", typeName(v))
}

// Set inserts or updates a key.
func (d *Dict) Set(k, v Value) error {
	ek, err := dictKey(k)
	if err != nil {
		return err
	}
	if d.index == nil {
		d.index = make(map[string]int)
	}
	if i, ok := d.index[ek]; ok {
		d.vals[i] = v
		return nil
	}
	d.index[ek] = len(d.keys)
	d.keys = append(d.keys, k)
	d.vals = append(d.vals, v)
	return nil
}

// Get looks a key up.
func (d *Dict) Get(k Value) (Value, bool, error) {
	ek, err := dictKey(k)
	if err != nil {
		return nil, false, err
	}
	i, ok := d.index[ek]
	if !ok {
		return nil, false, nil
	}
	return d.vals[i], true, nil
}

// Len reports entry count.
func (d *Dict) Len() int { return len(d.keys) }

// Function is a user-defined function.
type Function struct {
	Name   string
	Params []string
	Body   []Node
}

// ErrFuel is returned when a program exceeds its step budget.
var ErrFuel = errors.New("minipy: step budget exhausted")

// RuntimeError is a Python-level error (TypeError, NameError, ...).
type RuntimeError struct{ Msg string }

func (e *RuntimeError) Error() string { return "minipy: " + e.Msg }

func rte(format string, args ...interface{}) error {
	return &RuntimeError{Msg: fmt.Sprintf(format, args...)}
}

// control-flow signals.
type returnSignal struct{ val Value }
type breakSignal struct{}
type continueSignal struct{}

func (returnSignal) Error() string   { return "return outside function" }
func (breakSignal) Error() string    { return "break outside loop" }
func (continueSignal) Error() string { return "continue outside loop" }

// Interp executes a parsed program.
type Interp struct {
	globals map[string]Value
	out     strings.Builder
	fuel    int
	steps   int
}

// Result summarizes a program run.
type Result struct {
	Output string
	Steps  int
	// Globals exposes final top-level bindings (for tests and the
	// compute service's result extraction).
	Globals map[string]Value
}

// Run parses and executes src with the given step budget (0 means the
// default of 10 million steps).
func Run(src string, fuel int) (*Result, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if fuel <= 0 {
		fuel = 10_000_000
	}
	in := &Interp{globals: make(map[string]Value), fuel: fuel}
	if err := in.execBlock(prog, in.globals); err != nil {
		switch err.(type) {
		case returnSignal, breakSignal, continueSignal:
			return nil, rte("%s", err.Error())
		}
		return nil, err
	}
	return &Result{Output: in.out.String(), Steps: in.steps, Globals: in.globals}, nil
}

func (in *Interp) tick() error {
	in.steps++
	if in.steps > in.fuel {
		return ErrFuel
	}
	return nil
}

func (in *Interp) execBlock(stmts []Node, env map[string]Value) error {
	for _, s := range stmts {
		if err := in.exec(s, env); err != nil {
			return err
		}
	}
	return nil
}

func (in *Interp) exec(s Node, env map[string]Value) error {
	if err := in.tick(); err != nil {
		return err
	}
	switch st := s.(type) {
	case *Pass:
		return nil
	case *Break:
		return breakSignal{}
	case *Continue:
		return continueSignal{}
	case *Return:
		var v Value
		if st.Value != nil {
			var err error
			v, err = in.eval(st.Value, env)
			if err != nil {
				return err
			}
		}
		return returnSignal{val: v}
	case *ExprStmt:
		_, err := in.eval(st.X, env)
		return err
	case *FuncDef:
		env[st.Name] = &Function{Name: st.Name, Params: st.Params, Body: st.Body}
		return nil
	case *Assign:
		v, err := in.eval(st.Value, env)
		if err != nil {
			return err
		}
		if st.AugOp != "" {
			old, err := in.eval(st.Target, env)
			if err != nil {
				return err
			}
			v, err = binop(st.AugOp, old, v)
			if err != nil {
				return err
			}
		}
		return in.assign(st.Target, v, env)
	case *If:
		for i, cond := range st.Conds {
			cv, err := in.eval(cond, env)
			if err != nil {
				return err
			}
			if truthy(cv) {
				return in.execBlock(st.Blocks[i], env)
			}
		}
		return in.execBlock(st.Else, env)
	case *While:
		for {
			cv, err := in.eval(st.Cond, env)
			if err != nil {
				return err
			}
			if !truthy(cv) {
				return nil
			}
			err = in.execBlock(st.Body, env)
			switch err.(type) {
			case nil, continueSignal:
			case breakSignal:
				return nil
			default:
				return err
			}
			if err := in.tick(); err != nil {
				return err
			}
		}
	case *For:
		iter, err := in.eval(st.Iter, env)
		if err != nil {
			return err
		}
		items, err := iterate(iter)
		if err != nil {
			return err
		}
		for _, item := range items {
			env[st.Var] = item
			err := in.execBlock(st.Body, env)
			switch err.(type) {
			case nil, continueSignal:
			case breakSignal:
				return nil
			default:
				return err
			}
			if err := in.tick(); err != nil {
				return err
			}
		}
		return nil
	}
	return rte("unknown statement %T", s)
}

func (in *Interp) assign(target Node, v Value, env map[string]Value) error {
	switch t := target.(type) {
	case *NameRef:
		env[t.Name] = v
		return nil
	case *Index:
		cont, err := in.eval(t.Container, env)
		if err != nil {
			return err
		}
		idx, err := in.eval(t.Idx, env)
		if err != nil {
			return err
		}
		if d, ok := cont.(*Dict); ok {
			return d.Set(idx, v)
		}
		lst, ok := cont.(*List)
		if !ok {
			return rte("cannot index-assign into %s", typeName(cont))
		}
		i, ok := idx.(int64)
		if !ok {
			return rte("list index must be int, not %s", typeName(idx))
		}
		if i < 0 {
			i += int64(len(lst.Items))
		}
		if i < 0 || i >= int64(len(lst.Items)) {
			return rte("list index %d out of range", i)
		}
		lst.Items[i] = v
		return nil
	}
	return rte("bad assignment target %T", target)
}

func (in *Interp) eval(x Node, env map[string]Value) (Value, error) {
	if err := in.tick(); err != nil {
		return nil, err
	}
	switch e := x.(type) {
	case *NumLit:
		if e.IsFloat {
			return e.Float, nil
		}
		return e.Int, nil
	case *StrLit:
		return e.Val, nil
	case *BoolLit:
		return e.Val, nil
	case *NoneLit:
		return nil, nil
	case *NameRef:
		if v, ok := env[e.Name]; ok {
			return v, nil
		}
		if v, ok := in.globals[e.Name]; ok {
			return v, nil
		}
		return nil, rte("name %q is not defined", e.Name)
	case *ListLit:
		l := &List{}
		for _, el := range e.Elems {
			v, err := in.eval(el, env)
			if err != nil {
				return nil, err
			}
			l.Items = append(l.Items, v)
		}
		return l, nil
	case *DictLit:
		d := &Dict{}
		for i := range e.Keys {
			k, err := in.eval(e.Keys[i], env)
			if err != nil {
				return nil, err
			}
			v, err := in.eval(e.Vals[i], env)
			if err != nil {
				return nil, err
			}
			if err := d.Set(k, v); err != nil {
				return nil, err
			}
		}
		return d, nil
	case *Index:
		cont, err := in.eval(e.Container, env)
		if err != nil {
			return nil, err
		}
		idx, err := in.eval(e.Idx, env)
		if err != nil {
			return nil, err
		}
		return index(cont, idx)
	case *UnaryOp:
		v, err := in.eval(e.X, env)
		if err != nil {
			return nil, err
		}
		switch e.Op {
		case "-":
			switch n := v.(type) {
			case int64:
				return -n, nil
			case float64:
				return -n, nil
			}
			return nil, rte("bad operand for unary -: %s", typeName(v))
		case "not":
			return !truthy(v), nil
		}
		return nil, rte("unknown unary op %q", e.Op)
	case *BinOp:
		// Short-circuit logic.
		if e.Op == "and" || e.Op == "or" {
			l, err := in.eval(e.L, env)
			if err != nil {
				return nil, err
			}
			if e.Op == "and" && !truthy(l) {
				return l, nil
			}
			if e.Op == "or" && truthy(l) {
				return l, nil
			}
			return in.eval(e.R, env)
		}
		l, err := in.eval(e.L, env)
		if err != nil {
			return nil, err
		}
		r, err := in.eval(e.R, env)
		if err != nil {
			return nil, err
		}
		return binop(e.Op, l, r)
	case *Call:
		args := make([]Value, len(e.Args))
		for i, a := range e.Args {
			v, err := in.eval(a, env)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		return in.call(e.Fn, args, env)
	}
	return nil, rte("unknown expression %T", x)
}

func (in *Interp) call(name string, args []Value, env map[string]Value) (Value, error) {
	// User function?
	var fnv Value
	if v, ok := env[name]; ok {
		fnv = v
	} else if v, ok := in.globals[name]; ok {
		fnv = v
	}
	if fn, ok := fnv.(*Function); ok {
		if len(args) != len(fn.Params) {
			return nil, rte("%s() takes %d arguments, got %d", fn.Name, len(fn.Params), len(args))
		}
		local := make(map[string]Value, len(fn.Params))
		for i, p := range fn.Params {
			local[p] = args[i]
		}
		err := in.execBlock(fn.Body, local)
		if rs, ok := err.(returnSignal); ok {
			return rs.val, nil
		}
		if err != nil {
			return nil, err
		}
		return nil, nil
	}
	return in.builtin(name, args)
}

func (in *Interp) builtin(name string, args []Value) (Value, error) {
	switch name {
	case "print":
		parts := make([]string, len(args))
		for i, a := range args {
			parts[i] = Repr(a)
		}
		in.out.WriteString(strings.Join(parts, " "))
		in.out.WriteByte('\n')
		return nil, nil
	case "range":
		var start, stop, step int64 = 0, 0, 1
		switch len(args) {
		case 1:
			s, ok := args[0].(int64)
			if !ok {
				return nil, rte("range() needs int")
			}
			stop = s
		case 2, 3:
			a, ok1 := args[0].(int64)
			b, ok2 := args[1].(int64)
			if !ok1 || !ok2 {
				return nil, rte("range() needs ints")
			}
			start, stop = a, b
			if len(args) == 3 {
				c, ok := args[2].(int64)
				if !ok || c == 0 {
					return nil, rte("range() step must be a nonzero int")
				}
				step = c
			}
		default:
			return nil, rte("range() takes 1-3 arguments")
		}
		l := &List{}
		if step > 0 {
			for i := start; i < stop; i += step {
				l.Items = append(l.Items, i)
			}
		} else {
			for i := start; i > stop; i += step {
				l.Items = append(l.Items, i)
			}
		}
		return l, nil
	case "len":
		if len(args) != 1 {
			return nil, rte("len() takes 1 argument")
		}
		switch v := args[0].(type) {
		case *List:
			return int64(len(v.Items)), nil
		case *Dict:
			return int64(v.Len()), nil
		case string:
			return int64(len(v)), nil
		}
		return nil, rte("len() of %s", typeName(args[0]))
	case "abs":
		if len(args) != 1 {
			return nil, rte("abs() takes 1 argument")
		}
		switch v := args[0].(type) {
		case int64:
			if v < 0 {
				return -v, nil
			}
			return v, nil
		case float64:
			return math.Abs(v), nil
		}
		return nil, rte("abs() of %s", typeName(args[0]))
	case "min", "max":
		if len(args) == 0 {
			return nil, rte("%s() needs arguments", name)
		}
		items := args
		if len(args) == 1 {
			l, ok := args[0].(*List)
			if !ok || len(l.Items) == 0 {
				return nil, rte("%s() of non-list or empty list", name)
			}
			items = l.Items
		}
		best := items[0]
		for _, it := range items[1:] {
			cmp, err := compare(it, best)
			if err != nil {
				return nil, err
			}
			if (name == "min" && cmp < 0) || (name == "max" && cmp > 0) {
				best = it
			}
		}
		return best, nil
	case "sum":
		if len(args) != 1 {
			return nil, rte("sum() takes 1 argument")
		}
		l, ok := args[0].(*List)
		if !ok {
			return nil, rte("sum() of %s", typeName(args[0]))
		}
		var acc Value = int64(0)
		for _, it := range l.Items {
			v, err := binop("+", acc, it)
			if err != nil {
				return nil, err
			}
			acc = v
		}
		return acc, nil
	case "int":
		if len(args) != 1 {
			return nil, rte("int() takes 1 argument")
		}
		switch v := args[0].(type) {
		case int64:
			return v, nil
		case float64:
			return int64(v), nil
		case bool:
			if v {
				return int64(1), nil
			}
			return int64(0), nil
		case string:
			n, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64)
			if err != nil {
				return nil, rte("invalid literal for int(): %q", v)
			}
			return n, nil
		}
		return nil, rte("int() of %s", typeName(args[0]))
	case "float":
		if len(args) != 1 {
			return nil, rte("float() takes 1 argument")
		}
		switch v := args[0].(type) {
		case int64:
			return float64(v), nil
		case float64:
			return v, nil
		case string:
			f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
			if err != nil {
				return nil, rte("invalid literal for float(): %q", v)
			}
			return f, nil
		}
		return nil, rte("float() of %s", typeName(args[0]))
	case "str":
		if len(args) != 1 {
			return nil, rte("str() takes 1 argument")
		}
		return Repr(args[0]), nil
	case "keys":
		if len(args) != 1 {
			return nil, rte("keys() takes 1 argument")
		}
		d, ok := args[0].(*Dict)
		if !ok {
			return nil, rte("keys() of %s", typeName(args[0]))
		}
		return &List{Items: append([]Value(nil), d.keys...)}, nil
	case "values":
		if len(args) != 1 {
			return nil, rte("values() takes 1 argument")
		}
		d, ok := args[0].(*Dict)
		if !ok {
			return nil, rte("values() of %s", typeName(args[0]))
		}
		return &List{Items: append([]Value(nil), d.vals...)}, nil
	case "split":
		// split(s[, sep]) — whitespace split when sep is omitted.
		if len(args) < 1 || len(args) > 2 {
			return nil, rte("split() takes 1-2 arguments")
		}
		s, ok := args[0].(string)
		if !ok {
			return nil, rte("split() of %s", typeName(args[0]))
		}
		var parts []string
		if len(args) == 2 {
			sep, ok := args[1].(string)
			if !ok || sep == "" {
				return nil, rte("split() separator must be a non-empty string")
			}
			parts = strings.Split(s, sep)
		} else {
			parts = strings.Fields(s)
		}
		l := &List{}
		for _, p := range parts {
			l.Items = append(l.Items, p)
		}
		return l, nil
	case "join":
		// join(sep, list) — MicroPython-flavoured free function.
		if len(args) != 2 {
			return nil, rte("join() takes 2 arguments")
		}
		sep, ok := args[0].(string)
		if !ok {
			return nil, rte("join() separator must be a string")
		}
		l, ok := args[1].(*List)
		if !ok {
			return nil, rte("join() of %s", typeName(args[1]))
		}
		parts := make([]string, len(l.Items))
		for i, it := range l.Items {
			s, ok := it.(string)
			if !ok {
				return nil, rte("join() item %d is %s, not str", i, typeName(it))
			}
			parts[i] = s
		}
		return strings.Join(parts, sep), nil
	case "upper", "lower":
		if len(args) != 1 {
			return nil, rte("%s() takes 1 argument", name)
		}
		s, ok := args[0].(string)
		if !ok {
			return nil, rte("%s() of %s", name, typeName(args[0]))
		}
		if name == "upper" {
			return strings.ToUpper(s), nil
		}
		return strings.ToLower(s), nil
	case "find":
		// find(haystack, needle) → index or -1.
		if len(args) != 2 {
			return nil, rte("find() takes 2 arguments")
		}
		h, ok1 := args[0].(string)
		n, ok2 := args[1].(string)
		if !ok1 || !ok2 {
			return nil, rte("find() needs strings")
		}
		return int64(strings.Index(h, n)), nil
	case "strip":
		if len(args) != 1 {
			return nil, rte("strip() takes 1 argument")
		}
		s, ok := args[0].(string)
		if !ok {
			return nil, rte("strip() of %s", typeName(args[0]))
		}
		return strings.TrimSpace(s), nil
	case "sorted":
		if len(args) != 1 {
			return nil, rte("sorted() takes 1 argument")
		}
		l, ok := args[0].(*List)
		if !ok {
			return nil, rte("sorted() of %s", typeName(args[0]))
		}
		out := &List{Items: append([]Value(nil), l.Items...)}
		var sortErr error
		// Insertion sort: stable, no extra imports, fine at guest scale.
		for i := 1; i < len(out.Items); i++ {
			for j := i; j > 0; j-- {
				c, err := compare(out.Items[j], out.Items[j-1])
				if err != nil {
					sortErr = err
					break
				}
				if c >= 0 {
					break
				}
				out.Items[j], out.Items[j-1] = out.Items[j-1], out.Items[j]
			}
			if sortErr != nil {
				return nil, sortErr
			}
		}
		return out, nil
	case "append":
		// MicroPython-flavoured convenience: append(list, x).
		if len(args) != 2 {
			return nil, rte("append() takes 2 arguments")
		}
		l, ok := args[0].(*List)
		if !ok {
			return nil, rte("append() to %s", typeName(args[0]))
		}
		l.Items = append(l.Items, args[1])
		return nil, nil
	}
	return nil, rte("name %q is not defined", name)
}

// ---- helpers ----

func truthy(v Value) bool {
	switch x := v.(type) {
	case nil:
		return false
	case bool:
		return x
	case int64:
		return x != 0
	case float64:
		return x != 0
	case string:
		return x != ""
	case *List:
		return len(x.Items) > 0
	case *Dict:
		return x.Len() > 0
	}
	return true
}

func typeName(v Value) string {
	switch v.(type) {
	case nil:
		return "NoneType"
	case bool:
		return "bool"
	case int64:
		return "int"
	case float64:
		return "float"
	case string:
		return "str"
	case *List:
		return "list"
	case *Dict:
		return "dict"
	case *Function:
		return "function"
	}
	return fmt.Sprintf("%T", v)
}

// Repr formats a value the way print() does.
func Repr(v Value) string {
	switch x := v.(type) {
	case nil:
		return "None"
	case bool:
		if x {
			return "True"
		}
		return "False"
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		s := strconv.FormatFloat(x, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s
	case string:
		return x
	case *List:
		parts := make([]string, len(x.Items))
		for i, it := range x.Items {
			if s, ok := it.(string); ok {
				parts[i] = "'" + s + "'"
			} else {
				parts[i] = Repr(it)
			}
		}
		return "[" + strings.Join(parts, ", ") + "]"
	case *Dict:
		parts := make([]string, len(x.keys))
		for i := range x.keys {
			k, v := x.keys[i], x.vals[i]
			ks := Repr(k)
			if s, ok := k.(string); ok {
				ks = "'" + s + "'"
			}
			vs := Repr(v)
			if s, ok := v.(string); ok {
				vs = "'" + s + "'"
			}
			parts[i] = ks + ": " + vs
		}
		return "{" + strings.Join(parts, ", ") + "}"
	case *Function:
		return "<function " + x.Name + ">"
	}
	return fmt.Sprint(v)
}

func iterate(v Value) ([]Value, error) {
	switch x := v.(type) {
	case *List:
		return x.Items, nil
	case *Dict:
		return append([]Value(nil), x.keys...), nil
	case string:
		out := make([]Value, 0, len(x))
		for _, r := range x {
			out = append(out, string(r))
		}
		return out, nil
	}
	return nil, rte("%s object is not iterable", typeName(v))
}

func index(cont, idx Value) (Value, error) {
	if d, ok := cont.(*Dict); ok {
		v, found, err := d.Get(idx)
		if err != nil {
			return nil, err
		}
		if !found {
			return nil, rte("KeyError: %s", Repr(idx))
		}
		return v, nil
	}
	i, ok := idx.(int64)
	if !ok {
		return nil, rte("indices must be int, not %s", typeName(idx))
	}
	switch c := cont.(type) {
	case *List:
		if i < 0 {
			i += int64(len(c.Items))
		}
		if i < 0 || i >= int64(len(c.Items)) {
			return nil, rte("list index %d out of range", i)
		}
		return c.Items[i], nil
	case string:
		if i < 0 {
			i += int64(len(c))
		}
		if i < 0 || i >= int64(len(c)) {
			return nil, rte("string index %d out of range", i)
		}
		return string(c[i]), nil
	}
	return nil, rte("%s object is not subscriptable", typeName(cont))
}

func compare(a, b Value) (int, error) {
	af, aok := toFloat(a)
	bf, bok := toFloat(b)
	if aok && bok {
		switch {
		case af < bf:
			return -1, nil
		case af > bf:
			return 1, nil
		}
		return 0, nil
	}
	as, aok2 := a.(string)
	bs, bok2 := b.(string)
	if aok2 && bok2 {
		return strings.Compare(as, bs), nil
	}
	return 0, rte("cannot compare %s and %s", typeName(a), typeName(b))
}

func toFloat(v Value) (float64, bool) {
	switch x := v.(type) {
	case int64:
		return float64(x), true
	case float64:
		return x, true
	case bool:
		if x {
			return 1, true
		}
		return 0, true
	}
	return 0, false
}

func binop(op string, l, r Value) (Value, error) {
	switch op {
	case "in":
		switch c := r.(type) {
		case *Dict:
			_, found, err := c.Get(l)
			return found, err
		case *List:
			for _, it := range c.Items {
				eq, err := equals(l, it)
				if err == nil && eq {
					return true, nil
				}
			}
			return false, nil
		case string:
			ls, ok := l.(string)
			if !ok {
				return nil, rte("'in <string>' requires string, not %s", typeName(l))
			}
			return strings.Contains(c, ls), nil
		}
		return nil, rte("%s is not a container", typeName(r))
	case "==", "!=":
		eq, err := equals(l, r)
		if err != nil {
			return nil, err
		}
		if op == "!=" {
			return !eq, nil
		}
		return eq, nil
	case "<", "<=", ">", ">=":
		c, err := compare(l, r)
		if err != nil {
			return nil, err
		}
		switch op {
		case "<":
			return c < 0, nil
		case "<=":
			return c <= 0, nil
		case ">":
			return c > 0, nil
		default:
			return c >= 0, nil
		}
	case "+":
		if ls, ok := l.(string); ok {
			if rs, ok := r.(string); ok {
				return ls + rs, nil
			}
			return nil, rte("cannot concatenate str and %s", typeName(r))
		}
		if ll, ok := l.(*List); ok {
			if rl, ok := r.(*List); ok {
				out := &List{Items: append(append([]Value{}, ll.Items...), rl.Items...)}
				return out, nil
			}
			return nil, rte("cannot concatenate list and %s", typeName(r))
		}
	case "*":
		if ls, ok := l.(string); ok {
			if ri, ok := r.(int64); ok {
				return strings.Repeat(ls, int(ri)), nil
			}
		}
	}
	// Numeric paths.
	li, lIsInt := l.(int64)
	ri, rIsInt := r.(int64)
	if lIsInt && rIsInt {
		switch op {
		case "+":
			return li + ri, nil
		case "-":
			return li - ri, nil
		case "*":
			return li * ri, nil
		case "/":
			if ri == 0 {
				return nil, rte("division by zero")
			}
			return float64(li) / float64(ri), nil // true division
		case "//":
			if ri == 0 {
				return nil, rte("division by zero")
			}
			return floorDivInt(li, ri), nil
		case "%":
			if ri == 0 {
				return nil, rte("modulo by zero")
			}
			m := li % ri
			if m != 0 && (m < 0) != (ri < 0) {
				m += ri
			}
			return m, nil
		case "**":
			if ri >= 0 {
				return intPow(li, ri), nil
			}
			return math.Pow(float64(li), float64(ri)), nil
		}
	}
	lf, lok := toFloat(l)
	rf, rok := toFloat(r)
	if lok && rok {
		switch op {
		case "+":
			return lf + rf, nil
		case "-":
			return lf - rf, nil
		case "*":
			return lf * rf, nil
		case "/":
			if rf == 0 {
				return nil, rte("division by zero")
			}
			return lf / rf, nil
		case "//":
			if rf == 0 {
				return nil, rte("division by zero")
			}
			return math.Floor(lf / rf), nil
		case "%":
			if rf == 0 {
				return nil, rte("modulo by zero")
			}
			m := math.Mod(lf, rf)
			if m != 0 && (m < 0) != (rf < 0) {
				m += rf
			}
			return m, nil
		case "**":
			return math.Pow(lf, rf), nil
		}
	}
	return nil, rte("unsupported operand types for %s: %s and %s", op, typeName(l), typeName(r))
}

func equals(l, r Value) (bool, error) {
	lf, lok := toFloat(l)
	rf, rok := toFloat(r)
	if lok && rok {
		return lf == rf, nil
	}
	if ls, ok := l.(string); ok {
		rs, ok2 := r.(string)
		return ok2 && ls == rs, nil
	}
	if l == nil || r == nil {
		return l == nil && r == nil, nil
	}
	if ll, ok := l.(*List); ok {
		rl, ok2 := r.(*List)
		if !ok2 || len(ll.Items) != len(rl.Items) {
			return false, nil
		}
		for i := range ll.Items {
			eq, err := equals(ll.Items[i], rl.Items[i])
			if err != nil || !eq {
				return eq, err
			}
		}
		return true, nil
	}
	return false, nil
}

func floorDivInt(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

func intPow(base, exp int64) int64 {
	var out int64 = 1
	for exp > 0 {
		if exp&1 == 1 {
			out *= base
		}
		base *= base
		exp >>= 1
	}
	return out
}

// ApproxEProgram is the §7.4 compute-service payload: "All compute
// services calculated an approximation of e".
const ApproxEProgram = `
def approx_e(n):
    e = 1.0
    term = 1.0
    for k in range(1, n + 1):
        term = term / k
        e = e + term
    return e

result = approx_e(20)
print(result)
`
