// Package migrate implements checkpointing (save/restore, Fig. 12) and
// live migration (Fig. 13) for both control planes:
//
//   - XenStore path: xl-style, suspending through a control/shutdown
//     store handshake and carrying libxc/libxl fixed costs;
//   - noxs path: LightVM's sysctl split device flips a field in the
//     shared page and kicks an event channel, "chaos opens a TCP
//     connection to a migration daemon running on the remote host and
//     sends the guest's configuration so that the daemon pre-creates
//     the domain and creates the devices" (§5.1).
//
// Checkpoints carry a real serialized descriptor (a hand-rolled
// varint format, like the store snapshot codec — the save/restore hot
// path of Fig. 12 cannot afford gob's per-stream type compilation);
// guest page contents are charged by size rather than copied.
package migrate

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"path"
	"strconv"
	"time"

	"lightvm/internal/costs"
	"lightvm/internal/faults"
	"lightvm/internal/guest"
	"lightvm/internal/hv"
	"lightvm/internal/toolstack"
	"lightvm/internal/xenbus"
	"lightvm/internal/xenstore"
)

// Errors.
var (
	// ErrBadCheckpoint marks a checkpoint whose blob fails to decode or
	// whose descriptor disagrees with its envelope (corruption or
	// truncation in storage/transit).
	ErrBadCheckpoint = errors.New("migrate: bad checkpoint")
	// ErrMigrationAborted marks a migration that was rolled back: the
	// source VM is running again and the destination shell was reaped.
	ErrMigrationAborted = errors.New("migrate: migration aborted")
)

// migrationRetries bounds stream-resume attempts on the noxs path
// before a migration gives up and rolls back.
const migrationRetries = 3

// Checkpoint is a saved guest.
type Checkpoint struct {
	Name     string
	Image    guest.Image
	Mode     toolstack.Mode
	MemBytes uint64

	// Blob is the serialized descriptor (what libxc would stream).
	Blob []byte

	// StoreState is the guest's control-plane registry — the serialized
	// O(1) snapshot of its /local/domain/<id> subtree — for store-backed
	// modes (nil on the noxs path, which has no store). Restore grafts
	// it back under the new domain id by structural sharing.
	StoreState []byte
}

// descriptor is the decoded wire format.
type descriptor struct {
	Name      string
	ImageName string
	Kind      guest.Kind
	MemBytes  uint64
	Devices   []hv.DevKind
	MACs      []string
}

// descMagic versions the descriptor wire format. The encoding is a
// flat sequence of uvarints and length-prefixed strings: name, image
// name, kind, memory size, then a device count followed by one
// (kind, MAC) pair per device. Every varint is minimal, so the format
// is canonical and a round trip is byte-stable.
const descMagic = "xdesc1\n"

// appendStr writes a length-prefixed string.
func appendStr(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// encode builds the wire blob for a VM. The error return is kept for
// call-site symmetry with decode; the encoder itself cannot fail.
func encode(vm *toolstack.VM) ([]byte, error) {
	img := vm.Image
	size := len(descMagic) + len(vm.Name) + len(img.Name) + 32
	for _, dev := range img.Devices {
		size += len(dev.MAC) + 4
	}
	buf := make([]byte, 0, size)
	buf = append(buf, descMagic...)
	buf = appendStr(buf, vm.Name)
	buf = appendStr(buf, img.Name)
	buf = binary.AppendUvarint(buf, uint64(img.Kind))
	buf = binary.AppendUvarint(buf, img.MemBytes)
	buf = binary.AppendUvarint(buf, uint64(len(img.Devices)))
	for _, dev := range img.Devices {
		buf = binary.AppendUvarint(buf, uint64(dev.Kind))
		buf = appendStr(buf, dev.MAC)
	}
	return buf, nil
}

// descReader is a bounds-checked cursor over a descriptor blob.
type descReader struct {
	data []byte
	off  int
}

// uvarint reads a minimally-encoded varint.
func (r *descReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: truncated varint at %d", ErrBadCheckpoint, r.off)
	}
	if n > 1 && r.data[r.off+n-1] == 0 {
		return 0, fmt.Errorf("%w: non-minimal varint at %d", ErrBadCheckpoint, r.off)
	}
	r.off += n
	return v, nil
}

// str reads a length-prefixed string.
func (r *descReader) str() (string, error) {
	l, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if l > uint64(len(r.data)-r.off) {
		return "", fmt.Errorf("%w: string length %d overruns input", ErrBadCheckpoint, l)
	}
	s := string(r.data[r.off : r.off+int(l)])
	r.off += int(l)
	return s, nil
}

// decode parses a wire blob.
func decode(blob []byte) (descriptor, error) {
	var d descriptor
	if len(blob) < len(descMagic) || string(blob[:len(descMagic)]) != descMagic {
		return d, fmt.Errorf("%w: decode: bad magic", ErrBadCheckpoint)
	}
	r := &descReader{data: blob, off: len(descMagic)}
	var err error
	if d.Name, err = r.str(); err != nil {
		return d, err
	}
	if d.ImageName, err = r.str(); err != nil {
		return d, err
	}
	kind, err := r.uvarint()
	if err != nil {
		return d, err
	}
	d.Kind = guest.Kind(kind)
	if d.MemBytes, err = r.uvarint(); err != nil {
		return d, err
	}
	ndev, err := r.uvarint()
	if err != nil {
		return d, err
	}
	// Each device costs at least two bytes on the wire, so the count
	// is bounded by the remaining input (rejects absurd allocations).
	if ndev > uint64(len(blob)-r.off) {
		return d, fmt.Errorf("%w: device count %d overruns input", ErrBadCheckpoint, ndev)
	}
	if ndev > 0 {
		d.Devices = make([]hv.DevKind, 0, ndev)
		d.MACs = make([]string, 0, ndev)
	}
	for i := uint64(0); i < ndev; i++ {
		k, err := r.uvarint()
		if err != nil {
			return d, err
		}
		mac, err := r.str()
		if err != nil {
			return d, err
		}
		d.Devices = append(d.Devices, hv.DevKind(k))
		d.MACs = append(d.MACs, mac)
	}
	if r.off != len(blob) {
		return d, fmt.Errorf("%w: %d trailing bytes", ErrBadCheckpoint, len(blob)-r.off)
	}
	return d, nil
}

// suspend quiesces a running guest through the mode's control channel.
func suspend(e *toolstack.Env, vm *toolstack.VM) error {
	if vm.Mode.UsesStore() {
		// xl: write control/shutdown=suspend, wait for the guest to
		// acknowledge via the store.
		domPath := xenbus.DomainPath(vm.Dom.ID)
		e.Store.Write(domPath+"/control/shutdown", "suspend")
		e.Clock.Sleep(costs.SuspendHandshakeXS)
		_, _ = e.Store.Read(domPath + "/control/shutdown")
		return e.HV.Suspend(vm.Dom.ID, "suspend")
	}
	return e.Noxs.RequestShutdown(vm.Dom.ID, "suspend")
}

// dumpCost charges serializing the guest's pages.
func dumpCost(e *toolstack.Env, memBytes uint64) {
	mb := float64(memBytes) / (1 << 20)
	e.Clock.Sleep(time.Duration(mb * float64(costs.MemDumpPerMB)))
}

// loadCost charges restoring the guest's pages.
func loadCost(e *toolstack.Env, memBytes uint64) {
	mb := float64(memBytes) / (1 << 20)
	e.Clock.Sleep(time.Duration(mb * float64(costs.MemLoadPerMB)))
}

// Save checkpoints vm to an in-memory image and destroys the running
// instance, returning the checkpoint and the measured save time.
func Save(e *toolstack.Env, vm *toolstack.VM) (*Checkpoint, time.Duration, error) {
	start := e.Clock.Now()
	var cp *Checkpoint
	var retErr error
	e.RunDom0(func() {
		if err := suspend(e, vm); err != nil {
			retErr = err
			return
		}
		if vm.Mode == toolstack.ModeXL {
			e.Clock.Sleep(costs.XLSaveFixed)
		}
		blob, err := encode(vm)
		if err != nil {
			retErr = err
			return
		}
		var storeState []byte
		if vm.Mode.UsesStore() {
			// Capture the guest's registry subtree from an O(1) store
			// snapshot: one flat charge regardless of how many guests
			// populate the store (the old alternative — reading the
			// subtree entry by entry — would cost a protocol round trip
			// per node). SerializeSubtree keeps no reference to the
			// tree, so the capture doesn't suppress node-pool recycling
			// the way a long-lived Snapshot would.
			e.Clock.Sleep(costs.CostStoreSnapshot)
			state, err := e.Store.SerializeSubtree(xenbus.DomainPath(vm.Dom.ID))
			if err != nil {
				retErr = fmt.Errorf("migrate: save %q: %w", vm.Name, err)
				return
			}
			storeState = state
		}
		dumpCost(e, vm.Image.MemBytes)
		cp = &Checkpoint{
			Name: vm.Name, Image: vm.Image, Mode: vm.Mode,
			MemBytes: vm.Image.MemBytes, Blob: blob, StoreState: storeState,
		}
	})
	if retErr != nil {
		return nil, 0, retErr
	}
	// The save completes when the checkpoint is durable; the remaining
	// teardown of the suspended instance happens after the measurement
	// window (it is asynchronous on real hosts, but still charged to
	// the clock).
	saveTime := time.Duration(e.Clock.Now().Sub(start))
	e.RunDom0(func() {
		e.UnregisterRunning(vm)
		if vm.Mode.UsesStore() {
			for i, dev := range vm.Image.Devices {
				xenbus.RemoveDeviceEntries(e.Store, vm.Dom.ID, dev.Kind, i)
			}
			_ = e.Store.Rm(xenbus.DomainPath(vm.Dom.ID))
		} else {
			e.Noxs.DestroyAll(vm.Dom.ID)
		}
		retErr = e.HV.DestroyDomain(vm.Dom.ID)
	})
	if retErr != nil {
		return nil, 0, retErr
	}
	e.Forget(vm)
	e.Trace.Emit("migrate", "save", vm.Name, "mode="+vm.Mode.String(), saveTime)
	return cp, saveTime, nil
}

// Restore brings a checkpoint back as a running VM on e, returning the
// new VM and the measured restore time.
func Restore(e *toolstack.Env, cp *Checkpoint) (*toolstack.VM, time.Duration, error) {
	start := e.Clock.Now()
	desc, err := decode(cp.Blob)
	if err != nil {
		return nil, 0, err
	}
	if desc.Name != cp.Name || desc.MemBytes != cp.MemBytes {
		return nil, 0, fmt.Errorf("%w: descriptor mismatch for %q", ErrBadCheckpoint, cp.Name)
	}
	// Store-backed checkpoints carry the guest's frozen registry; the
	// descriptor's devices must have their handshake entries in it, or
	// the checkpoint was truncated or tampered with.
	var storeSnap *xenstore.Snapshot
	if cp.Mode.UsesStore() {
		storeSnap, err = xenstore.DeserializeSnapshot(cp.StoreState)
		if err != nil {
			return nil, 0, fmt.Errorf("%w: %q store state: %v", ErrBadCheckpoint, cp.Name, err)
		}
		for i, k := range desc.Devices {
			if !storeSnap.Exists("/device/" + xenbus.KindName(k) + "/" + strconv.Itoa(i)) {
				return nil, 0, fmt.Errorf("%w: %q device %s/%d missing from captured registry",
					ErrBadCheckpoint, cp.Name, k, i)
			}
		}
	}
	vm := &toolstack.VM{Name: cp.Name, Image: cp.Image, Mode: cp.Mode, Core: e.Sched.Place()}
	if err := e.Register(vm); err != nil {
		return nil, 0, err
	}
	var retErr error
	e.RunDom0(func() {
		if cp.Mode == toolstack.ModeXL {
			e.Clock.Sleep(costs.XLRestoreFixed)
		} else {
			e.Clock.Sleep(costs.ToolstackInternalChaos)
		}
		dom, err := e.HV.CreateDomain(hv.Config{
			MaxMem: cp.MemBytes, VCPUs: 1, Cores: []int{vm.Core},
		})
		if err != nil {
			retErr = err
			return
		}
		vm.Dom = dom
		if err := e.PopulateGuest(dom.ID, cp.Image); err != nil {
			retErr = err
			return
		}
		loadCost(e, cp.MemBytes)
		if storeSnap != nil {
			// Graft the frozen registry under the new domain id: one
			// store op, structural sharing — the restored guest's
			// name/memory/control entries come back without a write per
			// node. Device entries are re-negotiated below (fresh event
			// channels and grants), overwriting the captured handshake
			// state in place.
			retErr = e.Store.GraftSnapshot(storeSnap, "/", xenbus.DomainPath(dom.ID))
			if retErr != nil {
				return
			}
		}
		retErr = recreateDevices(e, vm)
		if retErr != nil {
			return
		}
		dom.State = hv.StateSuspended // restored image resumes, not boots
		retErr = e.HV.Unpause(dom.ID)
	})
	if retErr != nil {
		e.Forget(vm)
		if vm.Dom != nil {
			_ = e.HV.DestroyDomain(vm.Dom.ID)
		}
		return nil, 0, retErr
	}
	// Guest side: reconnect frontends (no OS boot — state is resumed).
	if err := reconnect(e, vm); err != nil {
		return nil, 0, err
	}
	restoreTime := time.Duration(e.Clock.Now().Sub(start))
	e.Trace.Emit("migrate", "restore", vm.Name, "mode="+vm.Mode.String(), restoreTime)
	return vm, restoreTime, nil
}

// recreateDevices rebuilds the devices on the restore/migration target.
func recreateDevices(e *toolstack.Env, vm *toolstack.VM) error {
	if vm.Mode.UsesStore() {
		for i, dev := range vm.Image.Devices {
			req := struct {
				Kind hv.DevKind
				MAC  string
			}{dev.Kind, dev.MAC}
			if err := writeStoreDevice(e, vm, i, req.Kind, req.MAC); err != nil {
				return err
			}
		}
		return nil
	}
	for i, dev := range vm.Image.Devices {
		if _, err := e.Noxs.CreateDevice(vm.Dom.ID, dev.Kind, i, dev.MAC); err != nil {
			return err
		}
	}
	_, err := e.Noxs.CreateDevice(vm.Dom.ID, hv.DevSysctl, 0, "")
	return err
}

// reconnect performs the guest-side frontend reattach after resume and
// re-registers the guest's load.
func reconnect(e *toolstack.Env, vm *toolstack.VM) error {
	return e.BootResumed(vm)
}

// StreamCost is the control-network time to ship a checkpoint between
// hosts: the migration TCP setup, the guest's pages at the libxc wire
// rate, and a closing control round-trip. The sharded cluster uses it
// as the cross-shard message delay between Save on the source's
// timeline and Restore on the destination's — live migration
// decomposed into logical-process messages instead of a function call
// across a shared clock (which Migrate below still requires).
func StreamCost(cp *Checkpoint) time.Duration {
	mb := float64(cp.MemBytes) / (1 << 20)
	wire := time.Duration(mb / costs.MigrationWireMBps * float64(time.Second))
	return costs.MigrationTCPSetup + wire + costs.MigrationRTT
}

// Migrate moves vm from src to dst over the control network:
// pre-create on the target, suspend, transfer, resume, destroy the
// source. It returns the new VM on dst and the total migration time.
func Migrate(src, dst *toolstack.Env, vm *toolstack.VM) (*toolstack.VM, time.Duration, error) {
	start := src.Clock.Now()
	// dst runs on the same virtual clock in these experiments.
	if src.Clock != dst.Clock {
		return nil, 0, fmt.Errorf("migrate: source and target must share a clock")
	}
	// Ownership fence: a source whose lease epoch is stale no longer
	// owns the domain (it was failed over) and must not ship it.
	if err := src.CheckLease(vm.Name); err != nil {
		return nil, 0, err
	}
	// The target host runs the same toolstack configuration; this also
	// selects the right hotplug mechanism for pre-created devices.
	_ = dst.ForMode(vm.Mode)

	// 1. Control connection + config transfer; the remote daemon
	// pre-creates the domain and its devices.
	src.Clock.Sleep(costs.MigrationTCPSetup + costs.MigrationRTT)
	blob, err := encode(vm)
	if err != nil {
		return nil, 0, err
	}
	desc, err := decode(blob)
	if err != nil {
		return nil, 0, err
	}
	newVM := &toolstack.VM{Name: desc.Name, Image: vm.Image, Mode: vm.Mode, Core: dst.Sched.Place()}
	if err := dst.Register(newVM); err != nil {
		return nil, 0, err
	}
	var preErr error
	dst.RunDom0(func() {
		dom, err := dst.HV.CreateDomain(hv.Config{
			MaxMem: desc.MemBytes, VCPUs: 1, Cores: []int{newVM.Core},
		})
		if err != nil {
			preErr = err
			return
		}
		newVM.Dom = dom
		if err := dst.PopulateGuest(dom.ID, vm.Image); err != nil {
			preErr = err
			return
		}
		preErr = recreateDevices(dst, newVM)
	})
	if preErr != nil {
		dst.Forget(newVM)
		if newVM.Dom != nil {
			_ = dst.HV.DestroyDomain(newVM.Dom.ID)
		}
		return nil, 0, preErr
	}

	// 2. Suspend the source guest.
	var susErr error
	src.RunDom0(func() { susErr = suspend(src, vm) })
	if susErr != nil {
		return nil, 0, susErr
	}

	// 3. Stream the guest pages over the wire (libxc code path). An
	// injected stream drop charges the partial transfer already sent;
	// chaos's migration daemon (noxs path) resumes from the last
	// acknowledged chunk, while the xl stream has no resume protocol —
	// a drop there, or exhausting the resume budget, rolls the
	// migration back: destination shell reaped, source VM resumed.
	mb := float64(vm.Image.MemBytes) / (1 << 20)
	wire := time.Duration(mb / costs.MigrationWireMBps * float64(time.Second))
	remaining := wire
	for attempt := 0; ; attempt++ {
		if src.Faults.Fire(faults.KindMigrationDrop) {
			part := time.Duration(float64(remaining) * src.Faults.Fraction(faults.KindMigrationDrop))
			src.Clock.Sleep(part + costs.MigrationRTT)
			if vm.Mode.UsesStore() || attempt >= migrationRetries {
				rollback(src, dst, vm, newVM)
				return nil, 0, fmt.Errorf("%w: %q: stream dropped on attempt %d",
					ErrMigrationAborted, vm.Name, attempt+1)
			}
			remaining -= part
			src.Clock.Sleep(costs.MigrationResumeSetup + costs.MigrationRTT)
			continue
		}
		src.Clock.Sleep(remaining + costs.MigrationRTT)
		break
	}

	// 4. Resume on the target.
	newVM.Dom.State = hv.StateSuspended
	if err := dst.HV.Unpause(newVM.Dom.ID); err != nil {
		return nil, 0, err
	}
	if err := dst.BootResumed(newVM); err != nil {
		return nil, 0, err
	}

	// 5. Tear down the source instance (device destruction is where
	// noxs pays its unoptimized-teardown penalty, §6.2).
	var downErr error
	src.RunDom0(func() {
		src.UnregisterRunning(vm)
		if vm.Mode.UsesStore() {
			for i, dev := range vm.Image.Devices {
				xenbus.RemoveDeviceEntries(src.Store, vm.Dom.ID, dev.Kind, i)
			}
			_ = src.Store.Rm(xenbus.DomainPath(vm.Dom.ID))
		} else {
			src.Noxs.DestroyAll(vm.Dom.ID)
		}
		downErr = src.HV.DestroyDomain(vm.Dom.ID)
	})
	if downErr != nil {
		return nil, 0, downErr
	}
	src.Forget(vm)
	migTime := time.Duration(src.Clock.Now().Sub(start))
	src.Trace.Emit("migrate", "migrate", vm.Name, "mode="+vm.Mode.String(), migTime)
	return newVM, migTime, nil
}

// rollback aborts a migration after the destination was pre-created:
// the destination's shell (devices, store subtree, domain) is reaped
// and the suspended source guest is resumed in place — its scheduler
// load and frontends were never unregistered, so one unpause brings it
// back.
func rollback(src, dst *toolstack.Env, vm, newVM *toolstack.VM) {
	dst.RunDom0(func() {
		if newVM.Mode.UsesStore() {
			for i, dev := range newVM.Image.Devices {
				switch dev.Kind {
				case hv.DevVif:
					dst.BackVif.Teardown(newVM.Dom.ID, i)
				case hv.DevVbd:
					dst.BackVbd.Teardown(newVM.Dom.ID, i)
				case hv.DevConsole:
					dst.BackConsole.Teardown(newVM.Dom.ID, i)
				}
				xenbus.RemoveDeviceEntries(dst.Store, newVM.Dom.ID, dev.Kind, i)
			}
			// Also reap the per-domain backend parents, so the store is
			// exactly as it was before the aborted pre-creation.
			for i, dev := range newVM.Image.Devices {
				_ = dst.Store.Rm(path.Dir(xenbus.BackendPath(newVM.Dom.ID, dev.Kind, i)))
			}
			_ = dst.Store.Rm(xenbus.DomainPath(newVM.Dom.ID))
		} else {
			dst.Noxs.DestroyAll(newVM.Dom.ID)
		}
		_ = dst.HV.DestroyDomain(newVM.Dom.ID)
	})
	dst.Forget(newVM)
	src.RunDom0(func() {
		src.Clock.Sleep(costs.MigrationRollback)
		_ = src.HV.Unpause(vm.Dom.ID)
	})
	src.Trace.Emit("migrate", "rollback", vm.Name, "mode="+vm.Mode.String(), 0)
}

// writeStoreDevice writes the device's store entries and completes the
// backend handshake on the restore path.
func writeStoreDevice(e *toolstack.Env, vm *toolstack.VM, idx int, kind hv.DevKind, mac string) error {
	return e.StoreDeviceCreate(vm, idx, kind, mac)
}

// Marshal serializes the whole checkpoint (descriptor blob plus
// metadata) for storage or shipping to another host.
func (cp *Checkpoint) Marshal() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(cp); err != nil {
		return nil, fmt.Errorf("migrate: marshal checkpoint %q: %w", cp.Name, err)
	}
	return buf.Bytes(), nil
}

// UnmarshalCheckpoint parses a checkpoint serialized with Marshal.
func UnmarshalCheckpoint(data []byte) (*Checkpoint, error) {
	var cp Checkpoint
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&cp); err != nil {
		return nil, fmt.Errorf("migrate: unmarshal checkpoint: %w", err)
	}
	// Integrity: the inner descriptor must agree with the envelope.
	d, err := decode(cp.Blob)
	if err != nil {
		return nil, err
	}
	if d.Name != cp.Name || d.MemBytes != cp.MemBytes {
		return nil, fmt.Errorf("%w: %q fails integrity check", ErrBadCheckpoint, cp.Name)
	}
	if cp.Mode.UsesStore() {
		if _, err := xenstore.DeserializeSnapshot(cp.StoreState); err != nil {
			return nil, fmt.Errorf("%w: %q store state: %v", ErrBadCheckpoint, cp.Name, err)
		}
	}
	return &cp, nil
}
