package migrate

import (
	"errors"
	"testing"

	"lightvm/internal/faults"
	"lightvm/internal/hv"
	"lightvm/internal/sim"
	"lightvm/internal/toolstack"
)

func TestCorruptCheckpointBlobIsTyped(t *testing.T) {
	clock := sim.NewClock()
	e := newEnv(clock)
	vm, _ := createVM(t, e, toolstack.ModeChaosNoXS, "corrupt")
	cp, _, err := Save(e, vm)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("truncated", func(t *testing.T) {
		bad := &Checkpoint{Name: cp.Name, Image: cp.Image, Mode: cp.Mode, MemBytes: cp.MemBytes}
		bad.Blob = append([]byte(nil), cp.Blob[:len(cp.Blob)/2]...)
		if _, _, err := Restore(e, bad); !errors.Is(err, ErrBadCheckpoint) {
			t.Fatalf("restore of truncated blob: %v, want ErrBadCheckpoint", err)
		}
	})

	t.Run("bit-flipped", func(t *testing.T) {
		bad := &Checkpoint{Name: cp.Name, Image: cp.Image, Mode: cp.Mode, MemBytes: cp.MemBytes}
		bad.Blob = append([]byte(nil), cp.Blob...)
		// Flip every byte: whatever gob makes of that, the descriptor
		// either fails to decode or fails the integrity check.
		for i := range bad.Blob {
			bad.Blob[i] ^= 0xff
		}
		if _, _, err := Restore(e, bad); !errors.Is(err, ErrBadCheckpoint) {
			t.Fatalf("restore of corrupted blob: %v, want ErrBadCheckpoint", err)
		}
	})

	t.Run("envelope-mismatch", func(t *testing.T) {
		bad := &Checkpoint{Name: "somebody-else", Image: cp.Image, Mode: cp.Mode, MemBytes: cp.MemBytes, Blob: cp.Blob}
		if _, _, err := Restore(e, bad); !errors.Is(err, ErrBadCheckpoint) {
			t.Fatalf("restore with mismatched envelope: %v, want ErrBadCheckpoint", err)
		}
	})

	t.Run("unmarshal-corrupted", func(t *testing.T) {
		raw, err := cp.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := UnmarshalCheckpoint(raw[:len(raw)-4]); err == nil {
			t.Fatal("unmarshal of truncated checkpoint succeeded")
		}
	})

	// The pristine checkpoint must still restore (corruption detection
	// has no false positives).
	if _, _, err := Restore(e, cp); err != nil {
		t.Fatalf("pristine checkpoint failed to restore: %v", err)
	}
}

// dropPlan forces every migration stream attempt to drop.
func dropPlan(clock *sim.Clock) *faults.Injector {
	return faults.New(clock, 21, faults.Plan{Rate: 1, Kinds: []faults.Kind{faults.KindMigrationDrop}})
}

func TestMigrationDropRollsBackStorePath(t *testing.T) {
	clock := sim.NewClock()
	src, dst := newEnv(clock), newEnv(clock)
	vm, _ := createVM(t, src, toolstack.ModeXL, "mg")
	src.SetFaults(dropPlan(clock))

	dstNodes := dst.Store.NumNodes()
	dstDoms := dst.HV.NumDomains()

	_, _, err := Migrate(src, dst, vm)
	if !errors.Is(err, ErrMigrationAborted) {
		t.Fatalf("store-path drop: %v, want ErrMigrationAborted", err)
	}
	// Source resumed in place.
	back, verr := src.VM("mg")
	if verr != nil {
		t.Fatalf("source VM gone after rollback: %v", verr)
	}
	if !back.Booted {
		t.Fatal("source VM not booted after rollback")
	}
	if back.Dom.State != hv.StateRunning {
		t.Fatalf("source domain state %v after rollback, want running", back.Dom.State)
	}
	// Destination fully reaped: no VM, no domain, store subtree clean.
	if dst.VMs() != 0 {
		t.Fatal("destination still tracks the aborted VM")
	}
	if dst.HV.NumDomains() != dstDoms {
		t.Fatal("destination domain leaked by rollback")
	}
	if got := dst.Store.NumNodes(); got != dstNodes {
		t.Fatalf("destination store has %d nodes after rollback, want %d", got, dstNodes)
	}
}

func TestMigrationDropExhaustsResumesOnNoxs(t *testing.T) {
	clock := sim.NewClock()
	src, dst := newEnv(clock), newEnv(clock)
	vm, _ := createVM(t, src, toolstack.ModeChaosNoXS, "mg")
	inj := dropPlan(clock)
	src.SetFaults(inj)

	dstDoms := dst.HV.NumDomains()
	_, _, err := Migrate(src, dst, vm)
	if !errors.Is(err, ErrMigrationAborted) {
		t.Fatalf("noxs path with every attempt dropped: %v, want ErrMigrationAborted", err)
	}
	// The noxs stream resumed before giving up: one initial attempt
	// plus migrationRetries resumes were all dropped.
	if got := inj.Injected(faults.KindMigrationDrop); got != migrationRetries+1 {
		t.Fatalf("got %d drops before abort, want %d", got, migrationRetries+1)
	}
	if _, verr := src.VM("mg"); verr != nil {
		t.Fatalf("source VM gone after rollback: %v", verr)
	}
	if dst.VMs() != 0 || dst.HV.NumDomains() != dstDoms {
		t.Fatal("destination not reaped after noxs rollback")
	}
}

func TestMigrationResumeSurvivesTransientDrops(t *testing.T) {
	// With a drop probability of 0.5 some seed quickly yields a
	// migration that drops at least once yet completes via the noxs
	// resume protocol, paying more than the undisturbed transfer.
	baselineClock := sim.NewClock()
	bSrc, bDst := newEnv(baselineClock), newEnv(baselineClock)
	bVM, _ := createVM(t, bSrc, toolstack.ModeChaosNoXS, "mg")
	_, baseline, err := Migrate(bSrc, bDst, bVM)
	if err != nil {
		t.Fatal(err)
	}

	for seed := uint64(1); seed <= 64; seed++ {
		clock := sim.NewClock()
		src, dst := newEnv(clock), newEnv(clock)
		vm, _ := createVM(t, src, toolstack.ModeChaosNoXS, "mg")
		inj := faults.New(clock, seed, faults.Plan{Rate: 0.5, Kinds: []faults.Kind{faults.KindMigrationDrop}})
		src.SetFaults(inj)
		moved, d, err := Migrate(src, dst, vm)
		if err != nil || inj.Injected(faults.KindMigrationDrop) == 0 {
			continue // aborted, or no drop happened — try the next seed
		}
		if moved == nil || !moved.Booted {
			t.Fatal("resumed migration returned a dead VM")
		}
		if d <= baseline {
			t.Fatalf("migration with %d drops took %v, not slower than undisturbed %v",
				inj.Injected(faults.KindMigrationDrop), d, baseline)
		}
		return
	}
	t.Fatal("no seed in 1..64 produced a dropped-then-resumed migration")
}

func TestMigrationRollbackKeepsSourceUsable(t *testing.T) {
	clock := sim.NewClock()
	src, dst := newEnv(clock), newEnv(clock)
	vm, drv := createVM(t, src, toolstack.ModeXL, "mg")
	src.SetFaults(dropPlan(clock))
	if _, _, err := Migrate(src, dst, vm); !errors.Is(err, ErrMigrationAborted) {
		t.Fatalf("want ErrMigrationAborted, got %v", err)
	}
	// Clear the fault plane: the rolled-back VM must migrate cleanly
	// now and be destroyable afterwards — rollback left no debris.
	src.SetFaults(nil)
	src.Store.Faults = nil
	moved, d, err := Migrate(src, dst, vm)
	if err != nil {
		t.Fatalf("migration after rollback: %v", err)
	}
	if d <= 0 {
		t.Fatal("zero migration time")
	}
	if err := dst.ForMode(moved.Mode).Destroy(moved); err != nil {
		t.Fatalf("destroy after recovered migration: %v", err)
	}
	_ = drv
}
