package migrate

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"lightvm/internal/guest"
	"lightvm/internal/sched"
	"lightvm/internal/sim"
	"lightvm/internal/toolstack"
)

func newEnv(clock *sim.Clock) *toolstack.Env {
	return toolstack.NewEnv(clock, sched.Xeon4Ckpt)
}

func createVM(t *testing.T, e *toolstack.Env, mode toolstack.Mode, name string) (*toolstack.VM, toolstack.Driver) {
	t.Helper()
	drv := e.ForMode(mode)
	vm, err := drv.Create(name, guest.Daytime())
	if err != nil {
		t.Fatal(err)
	}
	return vm, drv
}

func TestSaveRestoreRoundTrip(t *testing.T) {
	for _, mode := range []toolstack.Mode{toolstack.ModeXL, toolstack.ModeChaosXS, toolstack.ModeChaosNoXS} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			clock := sim.NewClock()
			e := newEnv(clock)
			vm, _ := createVM(t, e, mode, "ckpt")
			domsBefore := e.HV.NumDomains()

			cp, saveTime, err := Save(e, vm)
			if err != nil {
				t.Fatal(err)
			}
			if saveTime <= 0 {
				t.Fatal("zero save time")
			}
			if e.HV.NumDomains() != domsBefore-1 {
				t.Fatal("saved domain still present")
			}
			if e.VMs() != 0 {
				t.Fatal("saved VM still tracked")
			}
			if len(cp.Blob) == 0 {
				t.Fatal("checkpoint has no serialized descriptor")
			}

			restored, restoreTime, err := Restore(e, cp)
			if err != nil {
				t.Fatal(err)
			}
			if restoreTime <= 0 {
				t.Fatal("zero restore time")
			}
			if restored.Name != "ckpt" || !restored.Booted {
				t.Fatalf("restored VM state: %+v", restored)
			}
			if e.HV.NumDomains() != domsBefore {
				t.Fatal("restore did not recreate the domain")
			}
		})
	}
}

func TestCheckpointBlobDecodes(t *testing.T) {
	clock := sim.NewClock()
	e := newEnv(clock)
	vm, _ := createVM(t, e, toolstack.ModeChaosNoXS, "enc")
	cp, _, err := Save(e, vm)
	if err != nil {
		t.Fatal(err)
	}
	d, err := decode(cp.Blob)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "enc" || d.ImageName != "daytime" || d.MemBytes != guest.Daytime().MemBytes {
		t.Fatalf("descriptor = %+v", d)
	}
	if len(d.Devices) != 1 {
		t.Fatalf("descriptor devices = %v", d.Devices)
	}
	if _, err := decode([]byte("garbage")); err == nil {
		t.Fatal("garbage blob decoded")
	}
}

func TestLightVMCheckpointTimes(t *testing.T) {
	// §6.1/§6.2: "LightVM can save a VM in around 30ms and restore it
	// in 20ms ... while standard Xen needs 128ms and 550ms".
	clock := sim.NewClock()
	e := newEnv(clock)
	vm, _ := createVM(t, e, toolstack.ModeChaosNoXS, "lv")
	cp, saveT, err := Save(e, vm)
	if err != nil {
		t.Fatal(err)
	}
	if saveT < 10*time.Millisecond || saveT > 80*time.Millisecond {
		t.Fatalf("LightVM save = %v, want ≈30ms", saveT)
	}
	_, restT, err := Restore(e, cp)
	if err != nil {
		t.Fatal(err)
	}
	if restT < 5*time.Millisecond || restT > 60*time.Millisecond {
		t.Fatalf("LightVM restore = %v, want ≈20ms", restT)
	}
}

func TestXLCheckpointSlower(t *testing.T) {
	clock := sim.NewClock()
	e := newEnv(clock)
	vmXL, _ := createVM(t, e, toolstack.ModeXL, "xl")
	cpXL, saveXL, err := Save(e, vmXL)
	if err != nil {
		t.Fatal(err)
	}
	_, restXL, err := Restore(e, cpXL)
	if err != nil {
		t.Fatal(err)
	}

	clock2 := sim.NewClock()
	e2 := newEnv(clock2)
	vmLV, _ := createVM(t, e2, toolstack.ModeChaosNoXS, "lv")
	cpLV, saveLV, err := Save(e2, vmLV)
	if err != nil {
		t.Fatal(err)
	}
	_, restLV, err := Restore(e2, cpLV)
	if err != nil {
		t.Fatal(err)
	}
	if saveXL <= 2*saveLV {
		t.Fatalf("xl save (%v) should be ≫ noxs save (%v)", saveXL, saveLV)
	}
	if restXL <= 5*restLV {
		t.Fatalf("xl restore (%v) should be ≫ noxs restore (%v)", restXL, restLV)
	}
	// Paper magnitudes: xl ≈128ms save, ≈550ms restore.
	if saveXL < 80*time.Millisecond || saveXL > 300*time.Millisecond {
		t.Fatalf("xl save = %v, want ≈128ms", saveXL)
	}
	if restXL < 350*time.Millisecond || restXL > 900*time.Millisecond {
		t.Fatalf("xl restore = %v, want ≈550ms", restXL)
	}
}

func TestMigrateMovesVM(t *testing.T) {
	clock := sim.NewClock()
	src := newEnv(clock)
	dst := newEnv(clock)
	vm, _ := createVM(t, src, toolstack.ModeChaosNoXS, "mig")
	newVM, migT, err := Migrate(src, dst, vm)
	if err != nil {
		t.Fatal(err)
	}
	if migT <= 0 {
		t.Fatal("zero migration time")
	}
	if src.VMs() != 0 || src.HV.NumDomains() != 0 {
		t.Fatal("source still holds the VM")
	}
	if dst.VMs() != 1 || dst.HV.NumDomains() != 1 {
		t.Fatal("target does not hold the VM")
	}
	if !newVM.Booted || newVM.Name != "mig" {
		t.Fatalf("migrated VM: %+v", newVM)
	}
	// §6.2: ~60ms for the daytime unikernel with everything on.
	if migT < 30*time.Millisecond || migT > 200*time.Millisecond {
		t.Fatalf("LightVM-ish migration = %v, want ≈60ms", migT)
	}
}

func TestMigrateRequiresSharedClock(t *testing.T) {
	src := newEnv(sim.NewClock())
	dst := newEnv(sim.NewClock())
	vm, _ := createVM(t, src, toolstack.ModeChaosNoXS, "m")
	if _, _, err := Migrate(src, dst, vm); err == nil {
		t.Fatal("cross-clock migration accepted")
	}
}

func TestNoxsTeardownPenaltyVisible(t *testing.T) {
	// §6.2: "For low number of VMs the chaos + XenStore slightly
	// outperforms LightVM: this is due to device destruction times in
	// noxs which we have not yet optimized."
	migTime := func(mode toolstack.Mode) time.Duration {
		clock := sim.NewClock()
		src := newEnv(clock)
		dst := newEnv(clock)
		vm, _ := createVM(t, src, mode, "m")
		_, d, err := Migrate(src, dst, vm)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	xs := migTime(toolstack.ModeChaosXS)
	noxs := migTime(toolstack.ModeChaosNoXS)
	if xs >= noxs {
		t.Fatalf("at low N, chaos[XS] (%v) should beat chaos[NoXS] (%v)", xs, noxs)
	}
}

func TestMigrationScalesFlatForNoxs(t *testing.T) {
	clock := sim.NewClock()
	src := newEnv(clock)
	dst := newEnv(clock)
	drv := src.ForMode(toolstack.ModeChaosNoXS)
	var firstT, lastT time.Duration
	const rounds = 60
	for i := 0; i < rounds; i++ {
		vm, err := drv.Create(fmt.Sprintf("g%d", i), guest.Daytime())
		if err != nil {
			t.Fatal(err)
		}
		_, d, err := Migrate(src, dst, vm)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			firstT = d
		}
		if i == rounds-1 {
			lastT = d
		}
	}
	if float64(lastT) > 1.4*float64(firstT) {
		t.Fatalf("noxs migration grew: %v → %v", firstT, lastT)
	}
}

func TestRestoreDuplicateNameRejected(t *testing.T) {
	clock := sim.NewClock()
	e := newEnv(clock)
	vm, _ := createVM(t, e, toolstack.ModeChaosNoXS, "dup")
	cp, _, err := Save(e, vm)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Restore(e, cp); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Restore(e, cp); err == nil {
		t.Fatal("second restore of same name accepted")
	}
}

func TestCheckpointMarshalRoundTrip(t *testing.T) {
	clock := sim.NewClock()
	e := newEnv(clock)
	vm, _ := createVM(t, e, toolstack.ModeChaosNoXS, "ship")
	cp, _, err := Save(e, vm)
	if err != nil {
		t.Fatal(err)
	}
	data, err := cp.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// The checkpoint travels to a different host (fresh env, later
	// virtual time) and restores there.
	e2 := newEnv(clock)
	cp2, err := UnmarshalCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	restored, _, err := Restore(e2, cp2)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Name != "ship" || !restored.Booted {
		t.Fatalf("restored: %+v", restored)
	}
	// Corruption is caught.
	if _, err := UnmarshalCheckpoint(data[:len(data)/2]); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
	if _, err := UnmarshalCheckpoint([]byte("junk")); err == nil {
		t.Fatal("junk checkpoint accepted")
	}
}

func TestCheckpointCarriesStoreState(t *testing.T) {
	clock := sim.NewClock()
	e := newEnv(clock)
	vm, _ := createVM(t, e, toolstack.ModeChaosXS, "xsvm")
	oldDom := vm.Dom.ID
	cp, _, err := Save(e, vm)
	if err != nil {
		t.Fatal(err)
	}
	if len(cp.StoreState) == 0 {
		t.Fatal("store-backed checkpoint carries no registry snapshot")
	}
	// A fresh host knows nothing about the guest; the graft must bring
	// the registry entries back under the NEW domain id. The filler VM
	// shifts the id space so reuse would be visible.
	e2 := newEnv(clock)
	createVM(t, e2, toolstack.ModeChaosXS, "filler")
	restored, _, err := Restore(e2, cp)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Dom.ID == oldDom {
		t.Fatalf("restore reused domain id %d", oldDom)
	}
	path := fmt.Sprintf("/local/domain/%d/name", restored.Dom.ID)
	if v, err := e2.Store.Read(path); err != nil || v != "xsvm" {
		t.Fatalf("restored registry %s = %q, %v", path, v, err)
	}

	// Tampered registry state is rejected, both by the wire decoder and
	// by Restore itself.
	data, err := cp.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	bad := *cp
	bad.StoreState = append([]byte{}, cp.StoreState...)
	bad.StoreState[len(bad.StoreState)-1] ^= 0xff
	if _, _, err := Restore(newEnv(clock), &bad); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("tampered store state restore: %v", err)
	}
	if _, err := UnmarshalCheckpoint(data); err != nil {
		t.Fatalf("pristine checkpoint rejected: %v", err)
	}
	bad2 := *cp
	bad2.StoreState = nil
	if _, _, err := Restore(newEnv(clock), &bad2); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("missing store state restore: %v", err)
	}

	// noxs checkpoints stay store-free.
	e3 := newEnv(clock)
	vm3, _ := createVM(t, e3, toolstack.ModeChaosNoXS, "noxs")
	cp3, _, err := Save(e3, vm3)
	if err != nil {
		t.Fatal(err)
	}
	if cp3.StoreState != nil {
		t.Fatal("noxs checkpoint grew a store snapshot")
	}
}

func TestMigrationFailureLeavesSourceIntact(t *testing.T) {
	clock := sim.NewClock()
	src := newEnv(clock)
	// Destination too small for anything after Dom0.
	dst := toolstack.NewEnv(clock, sched.Machine{Name: "full", Cores: 4, Dom0Cores: 2, MemoryGB: 1})
	// Fill the destination with small guests until nothing fits…
	fillDrv := dst.ForMode(toolstack.ModeChaosNoXS)
	for i := 0; i < 512; i++ {
		if _, err := fillDrv.Create(fmt.Sprintf("f%d", i), guest.Noop()); err != nil {
			break
		}
	}
	// …then migrate a guest that needs more than any remaining hole.
	drv := src.ForMode(toolstack.ModeChaosNoXS)
	vm, err := drv.Create("survivor", guest.Minipython())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Migrate(src, dst, vm); err == nil {
		t.Fatal("migration to a full host succeeded")
	}
	// The source VM is untouched and still serviceable.
	got, err := src.VM("survivor")
	if err != nil || !got.Booted {
		t.Fatalf("source VM damaged: %v %v", got, err)
	}
	cp, _, err := Save(src, got)
	if err != nil || cp == nil {
		t.Fatalf("source VM unusable after failed migration: %v", err)
	}
}

func TestFailedMigrationLeaksNothingOnTarget(t *testing.T) {
	clock := sim.NewClock()
	src := newEnv(clock)
	dst := toolstack.NewEnv(clock, sched.Machine{Name: "full2", Cores: 4, Dom0Cores: 2, MemoryGB: 1})
	fillDrv := dst.ForMode(toolstack.ModeChaosNoXS)
	filled := 0
	for i := 0; i < 512; i++ {
		if _, err := fillDrv.Create(fmt.Sprintf("f%d", i), guest.Noop()); err != nil {
			break
		}
		filled++
	}
	domsBefore := dst.HV.NumDomains()
	vmsBefore := dst.VMs()
	drv := src.ForMode(toolstack.ModeChaosNoXS)
	vm, err := drv.Create("m", guest.Minipython())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Migrate(src, dst, vm); err == nil {
		t.Skip("destination unexpectedly had room")
	}
	if dst.HV.NumDomains() != domsBefore {
		t.Fatalf("failed migration leaked a domain on dst: %d → %d", domsBefore, dst.HV.NumDomains())
	}
	if dst.VMs() != vmsBefore {
		t.Fatal("failed migration left a tracked VM on dst")
	}
	_ = filled
}

// TestStreamCostScalesWithMemory: the logical-process migration delay
// is TCP setup + pages over the wire + an RTT, so a bigger guest must
// cost proportionally more and nothing can beat the fixed floor.
func TestStreamCostScalesWithMemory(t *testing.T) {
	clock := sim.NewClock()
	e := newEnv(clock)
	small, _ := createVM(t, e, toolstack.ModeChaosXS, "small")
	cpSmall, _, err := Save(e, small)
	if err != nil {
		t.Fatal(err)
	}
	costSmall := StreamCost(cpSmall)
	if costSmall <= 0 {
		t.Fatalf("StreamCost = %v, want > 0", costSmall)
	}
	double := *cpSmall
	double.MemBytes *= 2
	if StreamCost(&double) <= costSmall {
		t.Fatalf("doubling memory did not raise the stream cost (%v vs %v)",
			StreamCost(&double), costSmall)
	}
	wireOnly := *cpSmall
	wireOnly.MemBytes = 0
	if got := StreamCost(&wireOnly); got <= 0 {
		t.Fatalf("zero-page checkpoint costs %v, want the TCP setup + RTT floor", got)
	}
}

// TestSaveShipRestoreAcrossClocks is the sharded cluster's migration
// path in miniature: Save on the source host's private timeline, a
// StreamCost of wire delay, Restore on a destination running its own
// clock. Migrate() requires a shared clock; the checkpoint hop must
// not.
func TestSaveShipRestoreAcrossClocks(t *testing.T) {
	srcClock, dstClock := sim.NewClock(), sim.NewClock()
	src, dst := newEnv(srcClock), newEnv(dstClock)
	// Skew the timelines: the destination lives in the source's past.
	srcClock.Sleep(5 * time.Second)

	vm, _ := createVM(t, src, toolstack.ModeChaosXS, "roam")
	cp, saveTime, err := Save(src, vm)
	if err != nil {
		t.Fatal(err)
	}
	if saveTime <= 0 {
		t.Fatal("save charged no virtual time")
	}
	// Ship: the wire delay lands on the destination's own timeline.
	dstClock.Sleep(StreamCost(cp))
	restored, restoreTime, err := Restore(dst, cp)
	if err != nil {
		t.Fatal(err)
	}
	if restoreTime <= 0 {
		t.Fatal("restore charged no virtual time")
	}
	if !restored.Booted || restored.Name != "roam" {
		t.Fatalf("restored VM not serviceable: %+v", restored)
	}
	if _, err := src.VM("roam"); err == nil {
		t.Fatal("source still tracks the migrated VM")
	}
	if got, err := dst.VM("roam"); err != nil || got != restored {
		t.Fatalf("destination does not track the restored VM: %v", err)
	}
	// The two clocks never interacted: the source is still where Save
	// left it, far ahead of the destination.
	if srcClock.Now() <= dstClock.Now() {
		t.Fatalf("clock skew collapsed: src %v, dst %v", srcClock.Now(), dstClock.Now())
	}
}
