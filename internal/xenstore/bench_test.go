package xenstore

import (
	"strconv"
	"testing"
)

// Microbenchmarks for the store's hot operations. The experiment
// sweeps hammer exactly these paths (a single xl creation issues ~250
// store ops), so together with the alloc budgets in alloc_test.go
// they are the first line of defense against hot-path regressions:
// run with -benchmem and compare allocs/op before trusting a BENCH
// comparison.

// benchStore builds a store shaped like a small host: a handful of
// domains with device entries, so resolves walk realistic depth and
// directory listings have realistic fanout.
func benchStore(b *testing.B) *Store {
	b.Helper()
	s, _ := newStore()
	for d := 0; d < 8; d++ {
		dom := "/local/domain/" + strconv.Itoa(d)
		s.Write(dom+"/name", "g"+strconv.Itoa(d))
		s.Write(dom+"/device/vif/0/state", "4")
		s.Write(dom+"/device/vif/0/mac", "00:16:3e:00:00:01")
		s.Write("/local/domain/0/backend/vif/"+strconv.Itoa(d)+"/0/state", "4")
	}
	return s
}

func BenchmarkWrite(b *testing.B) {
	s := benchStore(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Write("/local/domain/3/device/vif/0/state", "4")
	}
}

func BenchmarkRead(b *testing.B) {
	s := benchStore(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Read("/local/domain/3/device/vif/0/state"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDirectory(b *testing.B) {
	s := benchStore(b)
	var buf []string
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		if buf, err = s.DirectoryAppend("/local/domain", buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTxnCommit(b *testing.B) {
	s := benchStore(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		err := s.Txn(8, func(tx *Tx) error {
			tx.Write("/local/domain/3/device/vif/0/state", "4")
			tx.Write("/local/domain/3/device/vif/0/event-channel", "17")
			if _, err := tx.Read("/local/domain/3/name"); err != nil {
				return err
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWatchFire(b *testing.B) {
	s := benchStore(b)
	fired := 0
	s.Watch("/local/domain/3/device", "tok", func(string, string) { fired++ })
	// Unrelated watches: delivery must look up the written path's own
	// buckets, not scan these.
	for d := 0; d < 32; d++ {
		s.Watch("/local/domain/0/backend/vif/"+strconv.Itoa(d), "other", func(string, string) {})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Write("/local/domain/3/device/vif/0/state", "4")
	}
	if fired != b.N {
		b.Fatalf("watch fired %d times over %d writes", fired, b.N)
	}
}
