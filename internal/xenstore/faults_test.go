package xenstore

import (
	"errors"
	"testing"

	"lightvm/internal/costs"
	"lightvm/internal/faults"
	"lightvm/internal/sim"
)

// conflictStore returns a store whose every commit is forced to
// conflict by the fault plane.
func conflictStore() (*Store, *sim.Clock) {
	clock := sim.NewClock()
	s := New(clock)
	s.Faults = faults.New(clock, 1, faults.Plan{Rate: 1, Kinds: []faults.Kind{faults.KindTxnConflict}})
	return s, clock
}

func TestTxnRetryExhaustionIsTyped(t *testing.T) {
	s, _ := conflictStore()
	err := s.Txn(3, func(tx *Tx) error {
		tx.Write("/a", "1")
		return nil
	})
	if err == nil {
		t.Fatal("forced-conflict txn succeeded")
	}
	if !errors.Is(err, ErrTxnRetriesExhausted) {
		t.Fatalf("error %v is not ErrTxnRetriesExhausted", err)
	}
	if !errors.Is(err, ErrAgain) {
		t.Fatalf("error %v does not wrap ErrAgain", err)
	}
	// 1 initial attempt + 3 retries, all rejected.
	if s.Count.InjectedConflicts != 4 {
		t.Fatalf("got %d injected conflicts, want 4", s.Count.InjectedConflicts)
	}
	if s.Count.TxnCommits != 0 {
		t.Fatal("a forced-conflict commit was applied")
	}
}

func TestTxnRetryBackoffGrowsAndIsCapped(t *testing.T) {
	// Attempt 0 must cost exactly the old flat penalty (undisturbed
	// runs stay byte-identical); later attempts double up to the cap.
	if got := txnBackoff(0); got != costs.XSTxnRetry {
		t.Fatalf("attempt-0 backoff %v, want %v", got, costs.XSTxnRetry)
	}
	if got := txnBackoff(1); got != 2*costs.XSTxnRetry {
		t.Fatalf("attempt-1 backoff %v, want %v", got, 2*costs.XSTxnRetry)
	}
	if got := txnBackoff(50); got != costs.XSTxnBackoffMax {
		t.Fatalf("deep backoff %v, want cap %v", got, costs.XSTxnBackoffMax)
	}
	prev := txnBackoff(0)
	for i := 1; i < 12; i++ {
		cur := txnBackoff(i)
		if cur < prev {
			t.Fatalf("backoff shrank at attempt %d: %v < %v", i, cur, prev)
		}
		prev = cur
	}
}

func TestTxnRecoversWhenConflictsStop(t *testing.T) {
	clock := sim.NewClock()
	s := New(clock)
	// Conflicts only inside a window that closes before the retries
	// finish: the txn must eventually commit. The window must be wide
	// enough for the first attempt's charged ops (begin + write) to
	// reach commit inside it, but close during the backoff sleeps
	// (120 µs, 240 µs, ...) so a later retry lands clean.
	s.Faults = faults.New(clock, 2, faults.Plan{
		Rate:   1,
		Kinds:  []faults.Kind{faults.KindTxnConflict},
		Window: faults.Window{To: clock.Now().Add(2 * costs.XSTxnRetry)},
	})
	err := s.Txn(8, func(tx *Tx) error {
		tx.Write("/b", "2")
		return nil
	})
	if err != nil {
		t.Fatalf("txn did not recover after conflict window closed: %v", err)
	}
	if s.Count.InjectedConflicts == 0 {
		t.Fatal("no conflict was injected before the window closed")
	}
	if v, rerr := s.Read("/b"); rerr != nil || v != "2" {
		t.Fatalf("committed value lost: %q, %v", v, rerr)
	}
}

func TestStoreStallChargesAndCounts(t *testing.T) {
	clock := sim.NewClock()
	s := New(clock)
	s.Faults = faults.New(clock, 3, faults.Plan{Rate: 1, Kinds: []faults.Kind{faults.KindStoreStall}})
	before := clock.Now()
	s.Write("/stalled", "x")
	elapsed := clock.Now().Sub(before)
	if s.Count.Stalls == 0 {
		t.Fatal("stall not counted")
	}
	if elapsed < costs.XSStoreStall {
		t.Fatalf("stalled op took %v, want at least %v", elapsed, costs.XSStoreStall)
	}
}
