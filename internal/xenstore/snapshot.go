package xenstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
)

// Snapshot is an immutable capture of the store at one published
// version. Taking one is O(1) — a single atomic load of the root
// pointer — because the tree is never mutated in place (tree.go);
// the snapshot stays frozen forever while the live store keeps moving.
//
// Snapshots never charge the virtual clock: capturing one models a
// pointer swap inside the daemon, and reading one models the consumer
// (toolstack, migration code) walking its own frozen copy without a
// round trip to the daemon. Consumers that want the protocol-level
// cost of asking the daemon for a snapshot charge
// costs.CostStoreSnapshot on their own clock (see internal/migrate).
// This is also what makes Snapshot safe to call from any goroutine
// while the owning timeline mutates: it touches only the atomic root
// and an atomic counter.
type Snapshot struct {
	root *node
	gen  uint64
}

// Snapshot captures the current store state in O(1).
//
// The snapshot epoch MUST be bumped before the root is loaded: the
// pool (pool.go) recycles retired nodes only when the epoch did not
// move during their lifetime, and sequentially-consistent ordering of
// the two atomics guarantees that any root this load can observe is
// either seen by the mutator's flush as epoch-protected, or was
// published after the bump (in which case the nodes this snapshot can
// reach were not retired before it). Loading first would open a window
// where a concurrently-retired node is recycled while this snapshot
// still references it.
func (s *Store) Snapshot() *Snapshot {
	s.snapEpoch.Add(1)
	st := s.state.Load()
	atomic.AddUint64(&s.Count.Snapshots, 1)
	return &Snapshot{root: st.root, gen: st.gen}
}

// Gen reports the store generation the snapshot was taken at.
func (sn *Snapshot) Gen() uint64 { return sn.gen }

// NumNodes reports how many nodes the snapshot captured, including its
// own root. O(1): subtree sizes ride along on every copy.
func (sn *Snapshot) NumNodes() int { return sn.root.size }

// Read returns the value at path inside the frozen tree.
func (sn *Snapshot) Read(path string) (string, error) {
	n, _ := resolveFrom(sn.root, path)
	if n == nil {
		return "", fmt.Errorf("%w: %s", ErrNoEnt, path)
	}
	return n.value, nil
}

// Exists reports whether path resolved at capture time.
func (sn *Snapshot) Exists(path string) bool {
	n, _ := resolveFrom(sn.root, path)
	return n != nil
}

// Directory lists the children of path at capture time, sorted.
func (sn *Snapshot) Directory(path string) ([]string, error) {
	n, _ := resolveFrom(sn.root, path)
	if n == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoEnt, path)
	}
	out := appendChildNames(n.kids, make([]string, 0, n.nkids))
	sort.Strings(out)
	return out, nil
}

// Subtree returns a snapshot rooted at path (sharing the same frozen
// nodes; O(depth of path)).
func (sn *Snapshot) Subtree(path string) (*Snapshot, error) {
	n, _ := resolveFrom(sn.root, path)
	if n == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoEnt, path)
	}
	return &Snapshot{root: n, gen: sn.gen}, nil
}

// ---------------------------------------------------------------------------
// Serialization. The format is canonical: children are emitted in
// sorted name order and every varint is minimal, so for any blob that
// DeserializeSnapshot accepts, Serialize(Deserialize(blob)) == blob.
// FuzzSnapshotRoundTrip leans on that exact property.
// ---------------------------------------------------------------------------

// snapMagic versions the wire format.
const snapMagic = "xsnap1\n"

// ErrBadSnapshot is returned for malformed or non-canonical blobs.
var ErrBadSnapshot = errors.New("xenstore: malformed snapshot")

// Serialize encodes the snapshot into the canonical byte format.
func (sn *Snapshot) Serialize() []byte {
	buf := make([]byte, 0, 64+sn.root.size*24)
	buf = append(buf, snapMagic...)
	buf = binary.AppendUvarint(buf, sn.gen)
	var scratch []*node
	return appendNode(buf, sn.root, &scratch)
}

// SerializeSubtree encodes the subtree at path in the canonical
// snapshot format, byte-identical to
// Snapshot().Subtree(path).Serialize(). Unlike that chain it runs
// entirely on the mutator's side and retains no reference to the tree
// after returning, so it does not bump the snapshot epoch: a
// checkpoint save no longer excludes every node whose lifetime spans
// it from pool recycling. Callers that keep a live Snapshot (clone's
// same-store graft) must still use Snapshot().
func (s *Store) SerializeSubtree(path string) ([]byte, error) {
	st := s.loaded()
	n, _ := resolveFrom(st.root, path)
	if n == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoEnt, path)
	}
	atomic.AddUint64(&s.Count.Snapshots, 1)
	buf := make([]byte, 0, 64+n.size*24)
	buf = append(buf, snapMagic...)
	buf = binary.AppendUvarint(buf, st.gen)
	var scratch []*node
	return appendNode(buf, n, &scratch), nil
}

// appendNode encodes one node and its children (sorted by name).
func appendNode(buf []byte, n *node, scratch *[]*node) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(n.name)))
	buf = append(buf, n.name...)
	buf = binary.AppendUvarint(buf, uint64(len(n.value)))
	buf = append(buf, n.value...)
	buf = binary.AppendUvarint(buf, n.gen)
	buf = binary.AppendUvarint(buf, uint64(n.owner))
	buf = binary.AppendUvarint(buf, uint64(n.perm))
	buf = binary.AppendUvarint(buf, uint64(n.nkids))
	// Children are collected into a shared scratch stack (one backing
	// array per Serialize instead of one slice per node) and sorted
	// with a tiny insertion sort: child lists are small, and this
	// keeps the encoder free of per-node sort machinery allocations.
	// Deeper recursion only appends past start and truncates back, so
	// the kids view stays intact even if the stack reallocates.
	start := len(*scratch)
	*scratch = appendChildren(n.kids, *scratch)
	kids := (*scratch)[start:]
	for i := 1; i < len(kids); i++ {
		for j := i; j > 0 && kids[j].name < kids[j-1].name; j-- {
			kids[j], kids[j-1] = kids[j-1], kids[j]
		}
	}
	for i := range kids {
		buf = appendNode(buf, kids[i], scratch)
	}
	*scratch = (*scratch)[:start]
	return buf
}

// internTab holds the xenstore vocabulary that appears in practically
// every serialized guest subtree: device entry names, domain registry
// keys, and the small state/flag values. It is built once and
// read-only thereafter, so concurrent deserializers share it without
// locking and a blob's standard strings never touch the per-reader
// map.
var internTab = func() map[string]string {
	m := make(map[string]string, 64)
	for _, s := range []string{
		"", "0", "1", "2", "3", "4", "5", "6", "7", "8", "9",
		"backend", "backend-id", "bridge", "event-channel",
		"frontend", "frontend-id", "grant-ref", "handle", "mac",
		"online", "state", "device", "vif", "vbd", "console",
		"name", "vm", "domid", "memory", "target", "static-max",
		"cpu", "availability", "limit", "type", "control",
		"platform-feature-multiprocessor-suspend", "shutdown",
		"image", "entry", "unpaused", "ring-ref", "port",
		"xenbr0", "xenconsoled", "1048576",
	} {
		m[s] = s
	}
	return m
}()

// snapReader is a bounds-checked cursor over a snapshot blob.
type snapReader struct {
	data   []byte
	off    int
	maxGen uint64
	// interned deduplicates the blob's strings: xenstore trees repeat
	// the same handful of names and values across every device
	// directory ("state", "event-channel", "1", ...), so each decoded
	// string is materialized once per blob and shared thereafter. The
	// map is keyed by its own values, so lookups from the raw byte
	// window never allocate.
	interned map[string]string
}

// uvarint reads a minimally-encoded varint (non-minimal encodings are
// rejected to keep the format canonical).
func (r *snapReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: truncated varint at %d", ErrBadSnapshot, r.off)
	}
	if n > 1 && r.data[r.off+n-1] == 0 {
		return 0, fmt.Errorf("%w: non-minimal varint at %d", ErrBadSnapshot, r.off)
	}
	r.off += n
	return v, nil
}

// str reads a length-prefixed string.
func (r *snapReader) str() (string, error) {
	l, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if l > uint64(len(r.data)-r.off) {
		return "", fmt.Errorf("%w: string length %d overruns input", ErrBadSnapshot, l)
	}
	b := r.data[r.off : r.off+int(l)]
	r.off += int(l)
	if s, ok := internTab[string(b)]; ok {
		return s, nil
	}
	if s, ok := r.interned[string(b)]; ok {
		return s, nil
	}
	s := string(b)
	if r.interned == nil {
		r.interned = make(map[string]string, 16)
	}
	r.interned[s] = s
	return s, nil
}

// readNode decodes one node subtree. Child names must be strictly
// ascending (sorted and duplicate-free — the canonical order), and
// child names must be valid single path segments.
func (r *snapReader) readNode(depth int) (*node, error) {
	const maxDepth = 512
	if depth > maxDepth {
		return nil, fmt.Errorf("%w: nesting deeper than %d", ErrBadSnapshot, maxDepth)
	}
	name, err := r.str()
	if err != nil {
		return nil, err
	}
	value, err := r.str()
	if err != nil {
		return nil, err
	}
	gen, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	owner, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	perm, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if perm > uint64(PermBoth) {
		return nil, fmt.Errorf("%w: perm %d out of range", ErrBadSnapshot, perm)
	}
	nkids, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if gen > r.maxGen {
		r.maxGen = gen
	}
	n := &node{name: name, hsh: nameHash(name), value: value, gen: gen, owner: int(owner), perm: Perm(perm), size: 1}
	prev := ""
	for i := uint64(0); i < nkids; i++ {
		c, err := r.readNode(depth + 1)
		if err != nil {
			return nil, err
		}
		if !validSegment(c.name) {
			return nil, fmt.Errorf("%w: bad child name %q", ErrBadSnapshot, c.name)
		}
		if i > 0 && c.name <= prev {
			return nil, fmt.Errorf("%w: children out of order (%q after %q)", ErrBadSnapshot, c.name, prev)
		}
		prev = c.name
		// amtBuild mutates the build-private trie in place (one
		// allocation per level instead of a copied spine per child).
		// Deserialized nodes are unpooled (ptag 0) — they may be
		// grafted into any store and must never be recycled.
		n.kids = amtBuild(n.kids, 0, c)
		n.nkids++
		n.size += c.size
	}
	return n, nil
}

// validSegment reports whether s can be one path component.
func validSegment(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] == '/' {
			return false
		}
	}
	return true
}

// DeserializeSnapshot decodes a blob produced by Serialize, validating
// structure, bounds and canonical ordering. The resulting snapshot's
// generation is at least the largest node generation it contains, so
// grafting it never rewinds a destination store's generation order.
func DeserializeSnapshot(data []byte) (*Snapshot, error) {
	if len(data) < len(snapMagic) || string(data[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadSnapshot)
	}
	r := &snapReader{data: data, off: len(snapMagic)}
	gen, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	root, err := r.readNode(0)
	if err != nil {
		return nil, err
	}
	if root.name != "/" && !validSegment(root.name) {
		return nil, fmt.Errorf("%w: bad root name %q", ErrBadSnapshot, root.name)
	}
	if r.off != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadSnapshot, len(data)-r.off)
	}
	if r.maxGen > gen {
		return nil, fmt.Errorf("%w: node generation %d exceeds snapshot generation %d", ErrBadSnapshot, r.maxGen, gen)
	}
	return &Snapshot{root: root, gen: gen}, nil
}

// ---------------------------------------------------------------------------
// Grafting: installing a frozen subtree into a live store.
// ---------------------------------------------------------------------------

// lastSegment returns the final component of path ("" for the root).
func lastSegment(path string) string {
	it := segments(path)
	last := ""
	for {
		seg, ok := it.next()
		if !ok {
			return last
		}
		last = seg
	}
}

// GraftSnapshot installs the subtree at srcPath of sn under dstPath,
// replacing whatever is there. The grafted nodes are shared with the
// snapshot (structural sharing: only the destination spine and the
// grafted root are copied), which is what makes restore and clone
// independent of subtree size. The grafted root gets a fresh
// generation; interior nodes keep their captured generations, and the
// store's counter is advanced past the snapshot's so generation order
// stays monotonic even for snapshots carried over from another store.
//
// Grafting maintains the quota ledger like any other mutation: nodes
// displaced from dstPath return quota to their owners, and grafted
// nodes that carry a non-zero owner are charged to that domain
// (recorded, not enforced — a restore is a Dom0 operation and must
// not half-fail). One op is charged and watches fire once, on
// dstPath.
func (s *Store) GraftSnapshot(sn *Snapshot, srcPath, dstPath string) error {
	s.enter()
	defer s.exit()
	sub, _ := resolveFrom(sn.root, srcPath)
	if sub == nil {
		s.chargeOp(1)
		return fmt.Errorf("%w: snapshot path %s", ErrNoEnt, srcPath)
	}
	name := lastSegment(dstPath)
	if name == "" {
		s.chargeOp(1)
		return errors.New("xenstore: cannot graft onto the root")
	}
	if displaced, _ := s.resolve(dstPath); displaced != nil {
		s.debitOwners(displaced)
	}
	s.creditOwners(sub)
	if sn.gen > s.gen {
		s.gen = sn.gen
	}
	grafted := sub.clone(s.pl)
	grafted.name = name
	grafted.hsh = nameHash(name) // renamed: its segment id moves with it
	s.gen++
	grafted.gen = s.gen
	it := hashSegments(dstPath)
	op := leafOp{kind: leafReplace, repl: grafted}
	newRoot, touched, _ := s.applyWrite(s.loaded().root, &it, 0, &op)
	s.publish(newRoot)
	s.chargeOp(touched + s.matchCost(dstPath))
	s.fireWatches(dstPath)
	return nil
}
