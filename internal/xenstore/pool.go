package xenstore

import "sync/atomic"

// Node and trie-level pooling for the mutation path.
//
// Every Write/Rm/SetPerm copies the spine of the immutable tree — that
// is the price of O(1) snapshots — and before this pool existed, every
// copy was a fresh heap allocation and every replaced spine became GC
// work. The profile attributed ~60% of fig12a's allocations to exactly
// those spine copies (node.clone, amtNode.withSlot/withInsert). The
// pool closes the loop: the mutation path retires the objects it
// replaces and draws replacements from a free list.
//
// Recycling a node from an immutable, structurally-shared tree is only
// sound if nothing can still reach the retired object. Three guards
// make it COW-safe:
//
//  1. Provenance (ptag): a pool only recycles objects it allocated.
//     Nodes that arrived by structural sharing from elsewhere —
//     deserialized snapshots, grafts from another store — carry a
//     foreign (or zero) tag and are never touched.
//
//  2. Snapshot epoch (birth): Store.Snapshot atomically bumps the
//     store's snapshot epoch *before* loading the root (see
//     snapshot.go), and a retired object is recycled only if the epoch
//     still equals the one recorded at its allocation. Any object
//     whose lifetime overlapped a snapshot — including a snapshot
//     taken concurrently from another goroutine, which the
//     sequentially-consistent atomics order correctly — is left for
//     the GC, because that snapshot (or a graft made from it) may
//     reach it forever. This is also what keeps self-grafts sound: a
//     subtree can only become doubly-referenced via a snapshot, and
//     taking that snapshot permanently excludes its nodes from reuse.
//
//  3. Operation nesting (depth): charging the virtual clock can run
//     scheduled events that re-enter the store (a watch callback
//     writing mid-charge), while the outer operation still holds
//     pointers into the pre-mutation tree (Store.Read keeps its
//     resolved node across the charge). Retired objects therefore
//     park in a pending list and are only recycled when the outermost
//     operation exits.
//
// The free lists are bounded (poolMaxFree) so a burst — one huge Rm —
// cannot pin an arbitrary amount of memory.

const poolMaxFree = 8192

// pool is a Store's allocation recycler. It is mutator-side state:
// only the goroutine that owns the store's timeline touches it.
type pool struct {
	tag   uint32         // unique per store; 0 is reserved for "unpooled"
	epoch *atomic.Uint64 // the owning store's snapshot epoch

	freeN []*node
	freeA []*amtNode
	freeT []*treeState

	// Objects retired by in-flight operations, recycled at depth 0.
	pendN []*node
	pendA []*amtNode
	pendT []*treeState

	depth int
}

// poolTags hands out store-unique pool tags (stores can live on
// different goroutines, so the counter is atomic).
var poolTags atomic.Uint32

func newPool(epoch *atomic.Uint64) *pool {
	return &pool{tag: poolTags.Add(1), epoch: epoch}
}

// getNode returns a zeroed node stamped with the pool's provenance.
// A nil pool (deserialization, tests) falls back to plain allocation.
func (p *pool) getNode() *node {
	if p == nil {
		return &node{}
	}
	if n := len(p.freeN); n > 0 {
		nd := p.freeN[n-1]
		p.freeN[n-1] = nil
		p.freeN = p.freeN[:n-1]
		nd.birth = p.epoch.Load()
		return nd
	}
	return &node{ptag: p.tag, birth: p.epoch.Load()}
}

// amtSlotCap rounds a slot-array capacity request up to the next
// bracket of 8 (capped by the trie width). Recycled levels keep their
// backing arrays only while the capacity fits the next request, so
// exact-size arrays thrash between adjacent sizes; bracketed arrays
// are reusable across the whole bracket for at most 7 spare slots.
func amtSlotCap(nslots int) int {
	if nslots >= amtWidth {
		return nslots
	}
	return (nslots + 7) &^ 7
}

// getAMT returns a trie level with exactly nslots slots, reusing a
// retired level's backing array when it is big enough.
func (p *pool) getAMT(nslots int) *amtNode {
	if p == nil {
		return &amtNode{slots: make([]any, nslots)}
	}
	if n := len(p.freeA); n > 0 {
		a := p.freeA[n-1]
		p.freeA[n-1] = nil
		p.freeA = p.freeA[:n-1]
		if cap(a.slots) < nslots {
			a.slots = make([]any, nslots, amtSlotCap(nslots))
		} else {
			a.slots = a.slots[:nslots]
		}
		a.birth = p.epoch.Load()
		return a
	}
	return &amtNode{ptag: p.tag, birth: p.epoch.Load(), slots: make([]any, nslots, amtSlotCap(nslots))}
}

// getTS returns a treeState for the next publish. treeStates never
// cross stores (each publish makes its own), so no provenance tag is
// needed — only the snapshot-epoch birth stamp.
func (p *pool) getTS() *treeState {
	if n := len(p.freeT); n > 0 {
		ts := p.freeT[n-1]
		p.freeT[n-1] = nil
		p.freeT = p.freeT[:n-1]
		ts.birth = p.epoch.Load()
		return ts
	}
	return &treeState{birth: p.epoch.Load()}
}

// retireTS parks the version a publish replaced. A concurrent
// snapshotter that could still be reading it necessarily bumped the
// epoch before loading it, which excludes it from reuse at flush.
func (p *pool) retireTS(ts *treeState) {
	if ts != nil {
		p.pendT = append(p.pendT, ts)
	}
}

// retireNode parks a replaced node for recycling. Foreign or unpooled
// nodes are ignored.
func (p *pool) retireNode(n *node) {
	if p == nil || n == nil || n.ptag != p.tag {
		return
	}
	p.pendN = append(p.pendN, n)
}

// retireAMT parks a replaced trie level.
func (p *pool) retireAMT(a *amtNode) {
	if p == nil || a == nil || a.ptag != p.tag {
		return
	}
	p.pendA = append(p.pendA, a)
}

// retireTree parks an entire removed subtree: the nodes and the trie
// levels beneath them. Rm and GraftSnapshot displace whole subtrees;
// without this walk their nodes would always be GC work even when no
// snapshot can see them.
func (p *pool) retireTree(n *node) {
	if p == nil || n == nil {
		return
	}
	p.retireAMTTree(n.kids)
	p.retireNode(n)
}

func (p *pool) retireAMTTree(a *amtNode) {
	if a == nil {
		return
	}
	for _, s := range a.slots {
		switch e := s.(type) {
		case *node:
			p.retireTree(e)
		case *amtNode:
			p.retireAMTTree(e)
		case *amtCollision:
			for _, n := range e.entries {
				p.retireTree(n)
			}
		}
	}
	p.retireAMT(a)
}

// enter/exit bracket one public store operation. Nested operations
// (clock callbacks re-entering the store mid-charge) stack; pending
// retirements are only recycled when the outermost operation leaves.
func (p *pool) enter() { p.depth++ }

func (p *pool) exit() {
	if p.depth--; p.depth == 0 && (len(p.pendN) > 0 || len(p.pendA) > 0 || len(p.pendT) > 0) {
		p.flush()
	}
}

// flush recycles pending retirements whose lifetime did not overlap a
// snapshot, and abandons the rest to the GC.
func (p *pool) flush() {
	e := p.epoch.Load()
	for i, n := range p.pendN {
		p.pendN[i] = nil
		if n.birth == e && len(p.freeN) < poolMaxFree {
			tag := n.ptag
			*n = node{ptag: tag}
			p.freeN = append(p.freeN, n)
		}
	}
	p.pendN = p.pendN[:0]
	for i, a := range p.pendA {
		p.pendA[i] = nil
		if a.birth == e && len(p.freeA) < poolMaxFree {
			slots := a.slots[:0]
			for j := range a.slots {
				a.slots[j] = nil // unpin whatever the dead level referenced
			}
			*a = amtNode{ptag: p.tag, slots: slots}
			p.freeA = append(p.freeA, a)
		}
	}
	p.pendA = p.pendA[:0]
	for i, ts := range p.pendT {
		p.pendT[i] = nil
		if ts.birth == e && len(p.freeT) < poolMaxFree {
			ts.root = nil
			p.freeT = append(p.freeT, ts)
		}
	}
	p.pendT = p.pendT[:0]
}
