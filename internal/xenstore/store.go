// Package xenstore implements the centralized registry that stock Xen
// builds its control plane on (paper §4.1/§4.2) — the component
// LightVM removes. It is a real hierarchical store: a tree of nodes
// with values, per-node generation counters, prefix watches, and
// transactions that fail and retry on conflict.
//
// Every operation charges the virtual clock the paper's message cost:
// "each operation requires sending a message and receiving an
// acknowledgment, each triggering a software interrupt: a single read
// or write thus triggers at least two, and most often four, software
// interrupts and multiple domain changes" (§4.2). On top of that, the
// store charges for the nodes it actually touches (path resolution,
// directory listing, commit validation, watch matching), which is what
// makes creation cost grow with the number of guests, and it appends
// to 20 access-log files that rotate every 13,215 lines — the spikes
// in Fig. 5 and Fig. 9.
package xenstore

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"lightvm/internal/costs"
	"lightvm/internal/sim"
)

// Errors.
var (
	ErrNoEnt  = errors.New("xenstore: no such node")
	ErrAgain  = errors.New("xenstore: transaction conflict, retry")
	ErrBadTxn = errors.New("xenstore: no such transaction")
	ErrExists = errors.New("xenstore: node exists")
)

// Counters aggregates store activity for tests and Fig. 5 attribution.
type Counters struct {
	Ops          uint64
	SoftIRQs     uint64
	Crossings    uint64
	NodesTouched uint64
	WatchFires   uint64
	TxnStarts    uint64
	TxnCommits   uint64
	TxnConflicts uint64
	LogLines     uint64
	LogRotations uint64
	UniqScans    uint64
}

type node struct {
	name     string
	value    string
	children map[string]*node
	gen      uint64 // bumped on any modification (incl. child add/rm)
	owner    int    // domain that owns the node (permission model)
	perm     Perm   // access class for non-owners
}

// Store is the oxenstored-equivalent.
type Store struct {
	clock *sim.Clock
	root  *node
	gen   uint64

	watches   []*watch
	nextWatch int

	txns    map[TxnID]*txn
	nextTxn TxnID

	// Logging: one logical line counter stands in for the 20 files
	// (they rotate together).
	LoggingEnabled bool
	logLines       int

	// Connections is the number of open store connections (one per
	// running guest with a xenbus ring, plus Dom0 daemons). The store
	// daemon's event loop scans every connection per operation, so
	// each op pays Connections × costs.XSPerConnection. The toolstack
	// maintains this count as guests come and go.
	Connections int

	// variant selects oxenstored (default) or the slower cxenstored.
	variant Variant
	// nodeQuota is the per-domain node limit (see quota.go).
	nodeQuota int
	// ownerNodes tracks quota usage per owning domain.
	ownerNodes map[int]int

	Count Counters
}

// New creates an empty store on clock with access logging enabled
// (the stock oxenstored configuration).
func New(clock *sim.Clock) *Store {
	return &Store{
		clock:          clock,
		root:           &node{name: "/", children: map[string]*node{}},
		txns:           make(map[TxnID]*txn),
		LoggingEnabled: true,
		nodeQuota:      DefaultNodeQuota,
		ownerNodes:     make(map[int]int),
	}
}

// split turns "/a/b/c" into []{"a","b","c"}.
func split(path string) []string {
	path = strings.Trim(path, "/")
	if path == "" {
		return nil
	}
	return strings.Split(path, "/")
}

// chargeOp accounts one protocol round trip plus extra node touches.
func (s *Store) chargeOp(nodesTouched int) {
	s.Count.Ops++
	s.Count.SoftIRQs += costs.XSRequestInterrupts
	s.Count.Crossings += costs.XSRequestCrossings
	s.Count.NodesTouched += uint64(nodesTouched)
	d := costs.XSRequestInterrupts*costs.SoftIRQ +
		costs.XSRequestCrossings*costs.DomainCrossing +
		costs.XSProcess +
		sim.Duration(nodesTouched)*costs.XSPerNodeTouch +
		sim.Duration(s.Connections)*costs.XSPerConnection
	d += s.variantExtra(costs.XSProcess + sim.Duration(nodesTouched)*costs.XSPerNodeTouch)
	s.clock.Sleep(d)
	s.logAccess()
}

// logAccess appends one line to each of the 20 access logs and rotates
// them at the threshold, charging the rotation pause.
func (s *Store) logAccess() {
	if !s.LoggingEnabled {
		return
	}
	s.logLines++
	s.Count.LogLines += costs.XSLogFiles
	s.clock.Sleep(costs.XSLogFiles * costs.XSLogLine)
	if s.logLines >= costs.XSLogRotateLines {
		s.logLines = 0
		s.Count.LogRotations++
		s.clock.Sleep(costs.XSLogRotateCost)
	}
}

// lookup resolves a path, returning the node and the number of nodes
// visited. Missing nodes return ErrNoEnt.
func (s *Store) lookup(path string) (*node, int, error) {
	parts := split(path)
	n := s.root
	touched := 1
	for _, p := range parts {
		child, ok := n.children[p]
		if !ok {
			return nil, touched, fmt.Errorf("%w: %s", ErrNoEnt, path)
		}
		n = child
		touched++
	}
	return n, touched, nil
}

// ensure creates intermediate directories and returns the leaf,
// reporting nodes visited/created and whether the leaf was created.
func (s *Store) ensure(path string, owner int) (*node, int, bool) {
	parts := split(path)
	n := s.root
	touched := 1
	created := false
	for _, p := range parts {
		child, ok := n.children[p]
		if !ok {
			child = &node{name: p, children: map[string]*node{}, owner: owner}
			n.children[p] = child
			s.gen++
			n.gen = s.gen // directory modified
			created = true
		}
		n = child
		touched++
	}
	return n, touched, created
}

// Write sets path to value (creating intermediate directories),
// firing matching watches.
func (s *Store) Write(path, value string) {
	s.WriteAs(0, path, value)
}

// WriteAs is Write with an owning domain for new nodes.
func (s *Store) WriteAs(owner int, path, value string) {
	n, touched, _ := s.ensure(path, owner)
	n.value = value
	s.gen++
	n.gen = s.gen
	s.chargeOp(touched + s.matchCost(path))
	s.fireWatches(path)
}

// Read returns the value at path.
func (s *Store) Read(path string) (string, error) {
	n, touched, err := s.lookup(path)
	s.chargeOp(touched)
	if err != nil {
		return "", err
	}
	return n.value, nil
}

// Exists reports whether path resolves.
func (s *Store) Exists(path string) bool {
	n, touched, err := s.lookup(path)
	s.chargeOp(touched)
	return err == nil && n != nil
}

// Mkdir creates a directory node.
func (s *Store) Mkdir(path string) {
	_, touched, created := s.ensure(path, 0)
	if created {
		s.chargeOp(touched + s.matchCost(path))
		s.fireWatches(path)
	} else {
		s.chargeOp(touched)
	}
}

// Directory lists the children of path in sorted order. Listing
// touches every child — this is one of the O(#guests) costs on the
// creation path when listing /local/domain.
func (s *Store) Directory(path string) ([]string, error) {
	n, touched, err := s.lookup(path)
	if err != nil {
		s.chargeOp(touched)
		return nil, err
	}
	out := make([]string, 0, len(n.children))
	for name := range n.children {
		out = append(out, name)
	}
	sort.Strings(out)
	s.chargeOp(touched + len(n.children))
	return out, nil
}

// Rm removes path and its subtree.
func (s *Store) Rm(path string) error {
	parts := split(path)
	if len(parts) == 0 {
		return errors.New("xenstore: cannot remove root")
	}
	parentPath := "/" + strings.Join(parts[:len(parts)-1], "/")
	parent, touched, err := s.lookup(parentPath)
	if err != nil {
		s.chargeOp(touched)
		return err
	}
	leaf := parts[len(parts)-1]
	child, ok := parent.children[leaf]
	if !ok {
		s.chargeOp(touched)
		return fmt.Errorf("%w: %s", ErrNoEnt, path)
	}
	sub := countNodes(child)
	delete(parent.children, leaf)
	s.gen++
	parent.gen = s.gen
	s.chargeOp(touched + sub + s.matchCost(path))
	s.fireWatches(path)
	return nil
}

func countNodes(n *node) int {
	total := 1
	for _, c := range n.children {
		total += countNodes(c)
	}
	return total
}

// NumNodes reports the total node count (diagnostic; grows ~40 per
// guest with the stock toolstack).
func (s *Store) NumNodes() int { return countNodes(s.root) - 1 }

// WriteUniqueName records a guest name under dir, performing the
// uniqueness check the paper calls out: "the XenStore compares the new
// entry against the names of all other already-running guests before
// accepting the new guest's name" (§4.2). The scan happens inside the
// store daemon (one protocol op from the client's perspective) but its
// cost is linear in the number of registered guests — and the
// comparisons are real.
func (s *Store) WriteUniqueName(dir, key, name string) error {
	s.Count.UniqScans++
	n, _, err := s.lookup(dir)
	if err == nil {
		for _, child := range n.children {
			s.clock.Sleep(costs.XSNameUniquenessPerGuest)
			if child.value == name {
				s.chargeOp(len(n.children))
				return fmt.Errorf("%w: name %q", ErrExists, name)
			}
		}
	}
	s.WriteAs(0, dir+"/"+key, name)
	return nil
}
