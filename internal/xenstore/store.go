// Package xenstore implements the centralized registry that stock Xen
// builds its control plane on (paper §4.1/§4.2) — the component
// LightVM removes. It is a real hierarchical store: a tree of nodes
// with values, per-node generation counters, prefix watches, and
// transactions that fail and retry on conflict.
//
// The tree is immutable and structurally shared (see tree.go): every
// mutation builds a new root by copying only the spine and publishes
// it with one atomic pointer store. Store.Snapshot is therefore an
// O(1) root capture, and snapshots stay frozen forever while the live
// tree keeps moving — the basis of the O(1) checkpoint/clone paths in
// internal/migrate and internal/toolstack.
//
// Every operation charges the virtual clock the paper's message cost:
// "each operation requires sending a message and receiving an
// acknowledgment, each triggering a software interrupt: a single read
// or write thus triggers at least two, and most often four, software
// interrupts and multiple domain changes" (§4.2). On top of that, the
// store charges for the nodes it actually touches (path resolution,
// directory listing, commit validation, watch matching), which is what
// makes creation cost grow with the number of guests, and it appends
// to 20 access-log files that rotate every 13,215 lines — the spikes
// in Fig. 5 and Fig. 9.
//
// Concurrency contract: mutations (and clock-charging reads) stay
// single-threaded, like the real single-threaded oxenstored event
// loop and like the rest of the simulation, which shares one
// sim.Clock per timeline. Snapshot is the exception: it only loads
// the atomically-published root, so any goroutine may take and read
// snapshots while the owning timeline keeps mutating.
//
// Hot-path structure (profile-guided; DESIGN.md §9): path segments are
// hashed once while the path is being split (hashIter) and compared as
// 64-bit ids from then on; spine copies recycle through the store's
// pool (pool.go); operations bracket themselves with enter/exit so
// recycling stays safe across the re-entrant clock charge.
package xenstore

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"lightvm/internal/costs"
	"lightvm/internal/faults"
	"lightvm/internal/sim"
)

// Errors.
var (
	ErrNoEnt  = errors.New("xenstore: no such node")
	ErrAgain  = errors.New("xenstore: transaction conflict, retry")
	ErrBadTxn = errors.New("xenstore: no such transaction")
	ErrExists = errors.New("xenstore: node exists")
	// ErrTxnRetriesExhausted is returned by Store.Txn when a body keeps
	// conflicting past its retry budget; it wraps ErrAgain, so callers
	// can match either the exhaustion or the underlying conflict.
	ErrTxnRetriesExhausted = errors.New("xenstore: transaction retries exhausted")

	errRmRoot = errors.New("xenstore: cannot remove root")
)

// noEntError is the concrete miss error. The hot paths used to build
// it with fmt.Errorf("%w: %s", ...) — several allocations per miss,
// and transaction observes produced (and discarded) one per absent
// node. This type defers all formatting to Error() and still matches
// errors.Is(err, ErrNoEnt) via Unwrap.
type noEntError struct{ path string }

func (e *noEntError) Error() string { return "xenstore: no such node: " + e.path }
func (e *noEntError) Unwrap() error { return ErrNoEnt }

// Counters aggregates store activity for tests and Fig. 5 attribution.
type Counters struct {
	Ops          uint64
	SoftIRQs     uint64
	Crossings    uint64
	NodesTouched uint64
	WatchFires   uint64
	TxnStarts    uint64
	TxnCommits   uint64
	TxnConflicts uint64
	LogLines     uint64
	LogRotations uint64
	UniqScans    uint64
	// Snapshots counts O(1) root captures. It is incremented atomically
	// (Snapshot may be called from any goroutine) and must be read with
	// atomic.LoadUint64 while snapshotters are live.
	Snapshots uint64
	// Stalls counts injected store-daemon freezes (fault plane).
	Stalls uint64
	// InjectedConflicts counts commits aborted by the fault plane
	// (a subset of TxnConflicts).
	InjectedConflicts uint64
}

// treeState is one published version of the store: the immutable root
// plus the generation counter it was published at. Root and generation
// travel together so Snapshot captures a consistent pair. birth is the
// snapshot epoch at allocation (treeStates recycle through the pool
// under the same epoch rule as nodes).
type treeState struct {
	root  *node
	gen   uint64
	birth uint64
}

// Store is the oxenstored-equivalent.
type Store struct {
	clock *sim.Clock
	state atomic.Pointer[treeState]
	gen   uint64 // mutator-side generation counter (mirrored into state)

	// snapEpoch is bumped by Snapshot *before* it loads the root; the
	// pool recycles only objects whose lifetime saw no bump (pool.go).
	snapEpoch atomic.Uint64
	pl        *pool
	// pubs counts publishes (including SetPerm, which publishes without
	// a generation bump). Reads use it to skip their end-of-round-trip
	// re-resolve when nothing was published during the charge.
	pubs uint64

	// resCache memoizes the most recent resolve against the current
	// publish count: toolstack flows re-read one path hundreds of
	// times between mutations (libxl's state re-reads), and each hit
	// skips the physical trie walk while still charging the identical
	// modeled cost. pubs is monotonic, so a hit can never alias a
	// recycled root pointer.
	resCachePubs    uint64
	resCachePath    string
	resCacheNode    *node
	resCacheTouched int

	watches   []*watch
	nextWatch int
	// watchIndex buckets watches by their full normalized prefix: the
	// watches matching a write are exactly those registered on one of
	// the written path's ancestors, so delivery looks up O(depth)
	// buckets instead of scanning every registered watch. rootWatches
	// holds watches on "/" (they match every path).
	watchIndex  map[string][]*watch
	rootWatches []*watch
	// Per-commit watch delivery batching (watch.go): merged candidate
	// lists are built in per-depth scratch buffers and the depth-0 list
	// is cached across consecutive fires of the same path. mergeBufs is
	// the per-depth bucket scratch for the id-order merge.
	fireBufs   [][]*watch
	mergeBufs  [][][]*watch
	fireDepth  int
	batchPath  string
	batchValid bool
	batchCands []*watch

	// Transactions: open set, recycled txn structs, and the path symbol
	// table interning txn-observed paths to dense ids (txn.go).
	openTxns []*txn
	freeTxns []*txn
	nextTxn  TxnID
	pathIDs  map[string]uint32
	paths    []string

	// Logging: one logical line counter stands in for the 20 files
	// (they rotate together).
	LoggingEnabled bool
	logLines       int

	// Connections is the number of open store connections (one per
	// running guest with a xenbus ring, plus Dom0 daemons). The store
	// daemon's event loop scans every connection per operation, so
	// each op pays Connections × costs.XSPerConnection. The toolstack
	// maintains this count as guests come and go.
	Connections int

	// Faults, when non-nil, lets the fault plane stall operations and
	// abort transaction commits (faults.KindStoreStall /
	// faults.KindTxnConflict). Nil costs one pointer check per op.
	Faults *faults.Injector

	// variant selects oxenstored (default) or the slower cxenstored.
	variant Variant
	// nodeQuota is the per-domain node limit (see quota.go).
	nodeQuota int
	// ownerNodes tracks quota usage per owning domain.
	ownerNodes map[int]int
	// watchQuota is the per-domain watch limit (see quota.go).
	watchQuota int
	// ownerWatches tracks registered watches per owning domain.
	ownerWatches map[int]int

	Count Counters
}

// New creates an empty store on clock with access logging enabled
// (the stock oxenstored configuration).
func New(clock *sim.Clock) *Store {
	s := &Store{
		clock:          clock,
		LoggingEnabled: true,
		nodeQuota:      DefaultNodeQuota,
		ownerNodes:     make(map[int]int),
		watchQuota:     DefaultWatchQuota,
	}
	s.pl = newPool(&s.snapEpoch)
	s.state.Store(&treeState{root: &node{name: "/", hsh: nameHash("/"), size: 1}})
	return s
}

// loaded returns the current published tree version.
func (s *Store) loaded() *treeState { return s.state.Load() }

// publish installs root as the current tree version. Mutator-side
// only; concurrent snapshotters observe either the old or the new
// version, never a mix. The replaced version is retired to the pool.
func (s *Store) publish(root *node) {
	ts := s.pl.getTS()
	ts.root, ts.gen = root, s.gen
	s.pl.retireTS(s.state.Swap(ts))
	s.pubs++
}

// enter/exit bracket every public operation so pool recycling is
// deferred past the operation's own node references and past any
// nested operations run by clock callbacks mid-charge (pool.go).
func (s *Store) enter() { s.pl.enter() }
func (s *Store) exit()  { s.pl.exit() }

// segIter walks a path's components without allocating: "/a/b/c"
// yields "a", "b", "c" as substrings of the input.
type segIter struct {
	rest string
}

// segments returns an iterator over path's components.
func segments(path string) segIter {
	return segIter{rest: strings.Trim(path, "/")}
}

// next returns the following component, or ok=false at the end. Empty
// components ("//" runs) are skipped, so every node name the store ever
// creates is a valid segment — which keeps snapshot serialization
// canonical for any reachable tree (FuzzPath leans on this).
func (it *segIter) next() (seg string, ok bool) {
	for {
		if it.rest == "" {
			return "", false
		}
		if i := strings.IndexByte(it.rest, '/'); i >= 0 {
			seg, it.rest = it.rest[:i], it.rest[i+1:]
		} else {
			seg, it.rest = it.rest, ""
		}
		if seg != "" {
			return seg, true
		}
	}
}

// hashIter is segIter fused with segment interning: it yields each
// component together with its 64-bit FNV-1a id, computed in the same
// pass that finds the separators. Resolution and spine rebuilds are the
// store's hottest loops; they descend the trie on the id and only
// touch the segment string to guard against full-hash collisions.
type hashIter struct {
	rest string
}

// hashSegments returns a hashing iterator over path's components.
func hashSegments(path string) hashIter {
	i, j := 0, len(path)
	for i < j && path[i] == '/' {
		i++
	}
	for j > i && path[j-1] == '/' {
		j--
	}
	return hashIter{rest: path[i:j]}
}

// next returns the following component and its segment id.
func (it *hashIter) next() (seg string, h uint64, ok bool) {
	for it.rest != "" {
		seg = it.rest
		if i := strings.IndexByte(seg, '/'); i >= 0 {
			seg, it.rest = seg[:i], seg[i+1:]
		} else {
			it.rest = ""
		}
		if seg == "" {
			continue
		}
		h = fnvOffset64
		for k := 0; k < len(seg); k++ {
			h ^= uint64(seg[k])
			h *= fnvPrime64
		}
		return seg, h, true
	}
	return "", 0, false
}

// chargeOp accounts one protocol round trip plus extra node touches.
func (s *Store) chargeOp(nodesTouched int) {
	s.Count.Ops++
	s.Count.SoftIRQs += costs.XSRequestInterrupts
	s.Count.Crossings += costs.XSRequestCrossings
	s.Count.NodesTouched += uint64(nodesTouched)
	d := costs.XSRequestInterrupts*costs.SoftIRQ +
		costs.XSRequestCrossings*costs.DomainCrossing +
		costs.XSProcess +
		sim.Duration(nodesTouched)*costs.XSPerNodeTouch +
		sim.Duration(s.Connections)*costs.XSPerConnection
	d += s.variantExtra(costs.XSProcess + sim.Duration(nodesTouched)*costs.XSPerNodeTouch)
	if s.Faults.Fire(faults.KindStoreStall) {
		// The store daemon freezes (GC pause, log fsync, scheduling
		// gap): the requesting client simply sees a slow reply.
		s.Count.Stalls++
		d += costs.XSStoreStall
	}
	s.clock.Sleep(d)
	s.logAccess()
}

// logAccess appends one line to each of the 20 access logs and rotates
// them at the threshold, charging the rotation pause.
func (s *Store) logAccess() {
	if !s.LoggingEnabled {
		return
	}
	s.logLines++
	s.Count.LogLines += costs.XSLogFiles
	s.clock.Sleep(costs.XSLogFiles * costs.XSLogLine)
	if s.logLines >= costs.XSLogRotateLines {
		s.logLines = 0
		s.Count.LogRotations++
		s.clock.Sleep(costs.XSLogRotateCost)
	}
}

// resolveFrom walks a path from root without allocating, returning the
// node (nil if missing) and the number of nodes visited. Shared by the
// live store and frozen snapshots.
func resolveFrom(root *node, path string) (*node, int) {
	it := hashSegments(path)
	n := root
	touched := 1
	for {
		seg, h, ok := it.next()
		if !ok {
			return n, touched
		}
		child := n.childByID(h, seg)
		if child == nil {
			return nil, touched
		}
		n = child
		touched++
	}
}

// resolve walks a path in the live tree.
func (s *Store) resolve(path string) (*node, int) {
	if s.resCachePubs == s.pubs && s.resCachePath == path && s.resCachePath != "" {
		return s.resCacheNode, s.resCacheTouched
	}
	n, touched := resolveFrom(s.loaded().root, path)
	s.resCachePubs, s.resCachePath = s.pubs, path
	s.resCacheNode, s.resCacheTouched = n, touched
	return n, touched
}

// lookup resolves a path, returning the node and the number of nodes
// visited. Missing nodes return ErrNoEnt.
func (s *Store) lookup(path string) (*node, int, error) {
	n, touched := s.resolve(path)
	if n == nil {
		return nil, touched, &noEntError{path}
	}
	return n, touched, nil
}

// leafOp describes what a spine rebuild does to the final node. It
// replaces the per-call closure applyWrite used to take — the closure
// captured locals and allocated on every Write; the op struct lives on
// the caller's stack.
type leafOp struct {
	kind  leafKind
	value string // leafValue: the value to set
	repl  *node  // leafReplace: the subtree to install
}

type leafKind int

const (
	// leafEnsure leaves an existing final node untouched (Mkdir).
	leafEnsure leafKind = iota
	// leafValue sets the final node's value with a generation bump.
	leafValue
	// leafReplace swaps in a prepared subtree (GraftSnapshot), retiring
	// whatever was there.
	leafReplace
)

// applyLeaf applies op to the final node of a spine rebuild.
func (s *Store) applyLeaf(n *node, op *leafOp) *node {
	switch op.kind {
	case leafValue:
		c := n.clone(s.pl)
		c.value = op.value
		s.gen++
		c.gen = s.gen
		s.pl.retireNode(n)
		return c
	case leafReplace:
		s.pl.retireTree(n)
		return op.repl
	default: // leafEnsure
		return n
	}
}

// applyWrite rebuilds the spine from n down the remaining path,
// creating missing components (owned by owner, gen 0 — see node) and
// applying op to the final node. Generation bumps happen top-down in
// the same order as the historical mutable implementation: a parent's
// generation is bumped at the moment a child is created under it,
// before deeper creations. It returns the new subtree root, the nodes
// visited, and whether any component was created. When op changes
// nothing and nothing was created, the original n is returned
// (pointer-equal), so no-op mutations publish nothing.
func (s *Store) applyWrite(n *node, it *hashIter, owner int, op *leafOp) (*node, int, bool) {
	seg, h, ok := it.next()
	if !ok {
		return s.applyLeaf(n, op), 1, false
	}
	child := n.childByID(h, seg)
	created := false
	var parentGen uint64
	if child == nil {
		child = s.pl.getNode()
		child.name, child.hsh, child.owner, child.size = seg, h, owner, 1
		s.gen++
		parentGen = s.gen
		created = true
	}
	newChild, touched, deeper := s.applyWrite(child, it, owner, op)
	if newChild == child && !created {
		return n, touched + 1, deeper
	}
	nn := n.withChild(s.pl, newChild)
	if created {
		nn.gen = parentGen
	}
	return nn, touched + 1, created || deeper
}

// Write sets path to value (creating intermediate directories),
// firing matching watches.
func (s *Store) Write(path, value string) {
	s.WriteAs(0, path, value)
}

// WriteAs is Write with an owning domain for new nodes.
func (s *Store) WriteAs(owner int, path, value string) {
	s.enter()
	defer s.exit()
	it := hashSegments(path)
	op := leafOp{kind: leafValue, value: value}
	newRoot, touched, _ := s.applyWrite(s.loaded().root, &it, owner, &op)
	s.publish(newRoot)
	s.chargeOp(touched + s.matchCost(path))
	s.fireWatches(path)
}

// Read returns the value at path. The reply carries the value as of
// the END of the charged round trip: clock events that fire during the
// charge (a backend's setup commit, a watch callback) may update the
// node before the reply is delivered, and the client sees that update
// — the behaviour of a store daemon that serializes the reply after
// processing everything ahead of it. Whether the node exists is
// decided at the START of the op (a node appearing mid-charge does not
// turn an ErrNoEnt into a hit). The publish counter makes the common
// case — nothing happened during the charge — free: the second resolve
// runs only when something was actually published.
func (s *Store) Read(path string) (string, error) {
	s.enter()
	defer s.exit()
	n, touched := s.resolve(path)
	pubs := s.pubs
	s.chargeOp(touched)
	if n == nil {
		return "", &noEntError{path}
	}
	if s.pubs != pubs {
		if cur, _ := s.resolve(path); cur != nil {
			return cur.value, nil
		}
	}
	return n.value, nil
}

// Exists reports whether path resolves.
func (s *Store) Exists(path string) bool {
	s.enter()
	defer s.exit()
	n, touched := s.resolve(path)
	s.chargeOp(touched)
	return n != nil
}

// Mkdir creates a directory node.
func (s *Store) Mkdir(path string) {
	s.enter()
	defer s.exit()
	it := hashSegments(path)
	op := leafOp{kind: leafEnsure}
	newRoot, touched, created := s.applyWrite(s.loaded().root, &it, 0, &op)
	if created {
		s.publish(newRoot)
		s.chargeOp(touched + s.matchCost(path))
		s.fireWatches(path)
	} else {
		s.chargeOp(touched)
	}
}

// Directory lists the children of path in sorted order. Listing
// touches every child — this is one of the O(#guests) costs on the
// creation path when listing /local/domain.
func (s *Store) Directory(path string) ([]string, error) {
	return s.DirectoryAppend(path, nil)
}

// DirectoryAppend is Directory appending into buf (sliced to zero
// length first). Callers that list repeatedly — the toolstack lists
// /local/domain on every creation — pass the previous result back in
// so the listing reuses one buffer instead of allocating O(#guests)
// per operation.
func (s *Store) DirectoryAppend(path string, buf []string) ([]string, error) {
	s.enter()
	defer s.exit()
	n, touched := s.resolve(path)
	if n == nil {
		s.chargeOp(touched)
		return nil, &noEntError{path}
	}
	pubs := s.pubs
	s.chargeOp(touched + n.nkids)
	// Like Read, the listing reflects children as of the end of the
	// charge (the cost was fixed at op start).
	if s.pubs != pubs {
		if cur, _ := s.resolve(path); cur != nil {
			n = cur
		}
	}
	out := appendChildNames(n.kids, buf[:0])
	sort.Strings(out)
	return out, nil
}

// appendChildNames collects a trie's entry names into buf. It is a
// plain function (no closure) so a warm buffer makes the listing
// allocation-free.
func appendChildNames(a *amtNode, buf []string) []string {
	if a == nil {
		return buf
	}
	for _, s := range a.slots {
		switch e := s.(type) {
		case *node:
			buf = append(buf, e.name)
		case *amtNode:
			buf = appendChildNames(e, buf)
		case *amtCollision:
			for _, n := range e.entries {
				buf = append(buf, n.name)
			}
		}
	}
	return buf
}

// applyRm rebuilds the spine with the subtree at (remaining path,
// final component leaf) removed. The visited-node count reproduces the
// historical walk exactly: one per ancestor reached, whether or not
// the final component exists.
func (s *Store) applyRm(n *node, it *hashIter, leaf string, leafH uint64) (newN, removed *node, touched int, found bool) {
	next, nextH, more := it.next()
	if !more {
		nn, rm := n.withoutChild(s.pl, leaf, leafH)
		if rm == nil {
			return nil, nil, 1, false
		}
		s.gen++
		nn.gen = s.gen
		return nn, rm, 1, true
	}
	child := n.childByID(leafH, leaf)
	if child == nil {
		return nil, nil, 1, false
	}
	newChild, rm, t, ok := s.applyRm(child, it, next, nextH)
	if !ok {
		return nil, nil, t + 1, false
	}
	return n.withChild(s.pl, newChild), rm, t + 1, true
}

// updateAt rebuilds the spine down the remaining path and replaces the
// final node with f(final), creating nothing. The visited-node count
// matches resolveFrom. Generations are untouched unless f bumps them.
// f owns retirement of the node it replaces.
func updateAt(p *pool, n *node, it *hashIter, f func(*node) *node) (newN *node, touched int, found bool) {
	seg, h, ok := it.next()
	if !ok {
		return f(n), 1, true
	}
	child := n.childByID(h, seg)
	if child == nil {
		return nil, 1, false
	}
	newChild, t, ok := updateAt(p, child, it, f)
	if !ok {
		return nil, t + 1, false
	}
	return n.withChild(p, newChild), t + 1, true
}

// Rm removes path and its subtree.
func (s *Store) Rm(path string) error {
	s.enter()
	defer s.exit()
	it := hashSegments(path)
	leaf, leafH, ok := it.next()
	if !ok {
		return errRmRoot
	}
	newRoot, removed, touched, found := s.applyRm(s.loaded().root, &it, leaf, leafH)
	if !found {
		s.chargeOp(touched)
		return &noEntError{path}
	}
	// Return quota to each removed node's actual owner, so the ledger
	// always matches the tree (CheckConsistency's invariant).
	s.debitOwners(removed)
	rmSize := removed.size
	s.publish(newRoot)
	// The whole detached subtree is dead unless a snapshot holds it —
	// the pool's epoch check decides.
	s.pl.retireTree(removed)
	s.chargeOp(touched + rmSize + s.matchCost(path))
	s.fireWatches(path)
	return nil
}

// NumNodes reports the total node count (diagnostic; grows ~40 per
// guest with the stock toolstack). O(1): subtree sizes are maintained
// on every copy.
func (s *Store) NumNodes() int { return s.loaded().root.size - 1 }

// WriteUniqueName records a guest name under dir, performing the
// uniqueness check the paper calls out: "the XenStore compares the new
// entry against the names of all other already-running guests before
// accepting the new guest's name" (§4.2). The scan happens inside the
// store daemon (one protocol op from the client's perspective) but its
// cost is linear in the number of registered guests — and the
// comparisons are real.
func (s *Store) WriteUniqueName(dir, key, name string) error {
	s.enter()
	defer s.exit()
	s.Count.UniqScans++
	n, _ := s.resolve(dir)
	if n != nil {
		dup := false
		n.eachChild(func(child *node) bool {
			s.clock.Sleep(costs.XSNameUniquenessPerGuest)
			if child.value == name {
				dup = true
				return false
			}
			return true
		})
		if dup {
			s.chargeOp(n.nkids)
			return fmt.Errorf("%w: name %q", ErrExists, name)
		}
		// The scan touches every registered name whether or not a
		// duplicate turns up (§4.2): accepting a unique name costs the
		// same full comparison pass, so the successful path charges the
		// scan too.
		s.chargeOp(n.nkids)
	}
	s.WriteAs(0, dir+"/"+key, name)
	return nil
}
