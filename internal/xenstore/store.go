// Package xenstore implements the centralized registry that stock Xen
// builds its control plane on (paper §4.1/§4.2) — the component
// LightVM removes. It is a real hierarchical store: a tree of nodes
// with values, per-node generation counters, prefix watches, and
// transactions that fail and retry on conflict.
//
// The tree is immutable and structurally shared (see tree.go): every
// mutation builds a new root by copying only the spine and publishes
// it with one atomic pointer store. Store.Snapshot is therefore an
// O(1) root capture, and snapshots stay frozen forever while the live
// tree keeps moving — the basis of the O(1) checkpoint/clone paths in
// internal/migrate and internal/toolstack.
//
// Every operation charges the virtual clock the paper's message cost:
// "each operation requires sending a message and receiving an
// acknowledgment, each triggering a software interrupt: a single read
// or write thus triggers at least two, and most often four, software
// interrupts and multiple domain changes" (§4.2). On top of that, the
// store charges for the nodes it actually touches (path resolution,
// directory listing, commit validation, watch matching), which is what
// makes creation cost grow with the number of guests, and it appends
// to 20 access-log files that rotate every 13,215 lines — the spikes
// in Fig. 5 and Fig. 9.
//
// Concurrency contract: mutations (and clock-charging reads) stay
// single-threaded, like the real single-threaded oxenstored event
// loop and like the rest of the simulation, which shares one
// sim.Clock per timeline. Snapshot is the exception: it only loads
// the atomically-published root, so any goroutine may take and read
// snapshots while the owning timeline keeps mutating.
package xenstore

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"lightvm/internal/costs"
	"lightvm/internal/faults"
	"lightvm/internal/sim"
)

// Errors.
var (
	ErrNoEnt  = errors.New("xenstore: no such node")
	ErrAgain  = errors.New("xenstore: transaction conflict, retry")
	ErrBadTxn = errors.New("xenstore: no such transaction")
	ErrExists = errors.New("xenstore: node exists")
	// ErrTxnRetriesExhausted is returned by Store.Txn when a body keeps
	// conflicting past its retry budget; it wraps ErrAgain, so callers
	// can match either the exhaustion or the underlying conflict.
	ErrTxnRetriesExhausted = errors.New("xenstore: transaction retries exhausted")
)

// Counters aggregates store activity for tests and Fig. 5 attribution.
type Counters struct {
	Ops          uint64
	SoftIRQs     uint64
	Crossings    uint64
	NodesTouched uint64
	WatchFires   uint64
	TxnStarts    uint64
	TxnCommits   uint64
	TxnConflicts uint64
	LogLines     uint64
	LogRotations uint64
	UniqScans    uint64
	// Snapshots counts O(1) root captures. It is incremented atomically
	// (Snapshot may be called from any goroutine) and must be read with
	// atomic.LoadUint64 while snapshotters are live.
	Snapshots uint64
	// Stalls counts injected store-daemon freezes (fault plane).
	Stalls uint64
	// InjectedConflicts counts commits aborted by the fault plane
	// (a subset of TxnConflicts).
	InjectedConflicts uint64
}

// treeState is one published version of the store: the immutable root
// plus the generation counter it was published at. Root and generation
// travel together so Snapshot captures a consistent pair.
type treeState struct {
	root *node
	gen  uint64
}

// Store is the oxenstored-equivalent.
type Store struct {
	clock *sim.Clock
	state atomic.Pointer[treeState]
	gen   uint64 // mutator-side generation counter (mirrored into state)

	watches   []*watch
	nextWatch int
	// watchIndex buckets watches by the first segment of their prefix
	// so fireWatches only scans the modified subtree's candidates;
	// rootWatches holds watches on "/" (they match every path).
	watchIndex  map[string][]*watch
	rootWatches []*watch

	txns    map[TxnID]*txn
	nextTxn TxnID

	// Logging: one logical line counter stands in for the 20 files
	// (they rotate together).
	LoggingEnabled bool
	logLines       int

	// Connections is the number of open store connections (one per
	// running guest with a xenbus ring, plus Dom0 daemons). The store
	// daemon's event loop scans every connection per operation, so
	// each op pays Connections × costs.XSPerConnection. The toolstack
	// maintains this count as guests come and go.
	Connections int

	// Faults, when non-nil, lets the fault plane stall operations and
	// abort transaction commits (faults.KindStoreStall /
	// faults.KindTxnConflict). Nil costs one pointer check per op.
	Faults *faults.Injector

	// variant selects oxenstored (default) or the slower cxenstored.
	variant Variant
	// nodeQuota is the per-domain node limit (see quota.go).
	nodeQuota int
	// ownerNodes tracks quota usage per owning domain.
	ownerNodes map[int]int

	Count Counters
}

// New creates an empty store on clock with access logging enabled
// (the stock oxenstored configuration).
func New(clock *sim.Clock) *Store {
	s := &Store{
		clock:          clock,
		txns:           make(map[TxnID]*txn),
		LoggingEnabled: true,
		nodeQuota:      DefaultNodeQuota,
		ownerNodes:     make(map[int]int),
	}
	s.state.Store(&treeState{root: &node{name: "/", size: 1}})
	return s
}

// loaded returns the current published tree version.
func (s *Store) loaded() *treeState { return s.state.Load() }

// publish installs root as the current tree version. Mutator-side
// only; concurrent snapshotters observe either the old or the new
// version, never a mix.
func (s *Store) publish(root *node) {
	s.state.Store(&treeState{root: root, gen: s.gen})
}

// segIter walks a path's components without allocating: "/a/b/c"
// yields "a", "b", "c" as substrings of the input. Path resolution is
// the store's hottest loop (every read/write/ensure), so it must not
// build a []string per operation the way strings.Split does.
type segIter struct {
	rest string
}

// segments returns an iterator over path's components.
func segments(path string) segIter {
	return segIter{rest: strings.Trim(path, "/")}
}

// next returns the following component, or ok=false at the end. Empty
// components ("//" runs) are skipped, so every node name the store ever
// creates is a valid segment — which keeps snapshot serialization
// canonical for any reachable tree (FuzzPath leans on this).
func (it *segIter) next() (seg string, ok bool) {
	for {
		if it.rest == "" {
			return "", false
		}
		if i := strings.IndexByte(it.rest, '/'); i >= 0 {
			seg, it.rest = it.rest[:i], it.rest[i+1:]
		} else {
			seg, it.rest = it.rest, ""
		}
		if seg != "" {
			return seg, true
		}
	}
}

// firstSegment returns the first component of path ("" for the root).
func firstSegment(path string) string {
	it := segments(path)
	seg, _ := it.next()
	return seg
}

// chargeOp accounts one protocol round trip plus extra node touches.
func (s *Store) chargeOp(nodesTouched int) {
	s.Count.Ops++
	s.Count.SoftIRQs += costs.XSRequestInterrupts
	s.Count.Crossings += costs.XSRequestCrossings
	s.Count.NodesTouched += uint64(nodesTouched)
	d := costs.XSRequestInterrupts*costs.SoftIRQ +
		costs.XSRequestCrossings*costs.DomainCrossing +
		costs.XSProcess +
		sim.Duration(nodesTouched)*costs.XSPerNodeTouch +
		sim.Duration(s.Connections)*costs.XSPerConnection
	d += s.variantExtra(costs.XSProcess + sim.Duration(nodesTouched)*costs.XSPerNodeTouch)
	if s.Faults.Fire(faults.KindStoreStall) {
		// The store daemon freezes (GC pause, log fsync, scheduling
		// gap): the requesting client simply sees a slow reply.
		s.Count.Stalls++
		d += costs.XSStoreStall
	}
	s.clock.Sleep(d)
	s.logAccess()
}

// logAccess appends one line to each of the 20 access logs and rotates
// them at the threshold, charging the rotation pause.
func (s *Store) logAccess() {
	if !s.LoggingEnabled {
		return
	}
	s.logLines++
	s.Count.LogLines += costs.XSLogFiles
	s.clock.Sleep(costs.XSLogFiles * costs.XSLogLine)
	if s.logLines >= costs.XSLogRotateLines {
		s.logLines = 0
		s.Count.LogRotations++
		s.clock.Sleep(costs.XSLogRotateCost)
	}
}

// resolveFrom walks a path from root without allocating, returning the
// node (nil if missing) and the number of nodes visited. Shared by the
// live store and frozen snapshots.
func resolveFrom(root *node, path string) (*node, int) {
	it := segments(path)
	n := root
	touched := 1
	for {
		p, ok := it.next()
		if !ok {
			return n, touched
		}
		child := n.child(p)
		if child == nil {
			return nil, touched
		}
		n = child
		touched++
	}
}

// resolve walks a path in the live tree.
func (s *Store) resolve(path string) (*node, int) {
	return resolveFrom(s.loaded().root, path)
}

// lookup resolves a path, returning the node and the number of nodes
// visited. Missing nodes return ErrNoEnt.
func (s *Store) lookup(path string) (*node, int, error) {
	n, touched := s.resolve(path)
	if n == nil {
		return nil, touched, fmt.Errorf("%w: %s", ErrNoEnt, path)
	}
	return n, touched, nil
}

// applyWrite rebuilds the spine from n down the remaining path,
// creating missing components (owned by owner, gen 0 — see node) and
// replacing the final node with leaf(final). Generation bumps happen
// top-down in the same order as the historical mutable implementation:
// a parent's generation is bumped at the moment a child is created
// under it, before deeper creations. It returns the new subtree root,
// the nodes visited, and whether any component was created. When leaf
// returns its argument unchanged and nothing was created, the original
// n is returned (pointer-equal), so no-op mutations publish nothing.
func (s *Store) applyWrite(n *node, it *segIter, owner int, leaf func(*node) *node) (*node, int, bool) {
	seg, ok := it.next()
	if !ok {
		return leaf(n), 1, false
	}
	child := n.child(seg)
	created := false
	var parentGen uint64
	if child == nil {
		child = &node{name: seg, owner: owner, size: 1}
		s.gen++
		parentGen = s.gen
		created = true
	}
	newChild, touched, deeper := s.applyWrite(child, it, owner, leaf)
	if newChild == child && !created {
		return n, touched + 1, deeper
	}
	nn := n.withChild(newChild)
	if created {
		nn.gen = parentGen
	}
	return nn, touched + 1, created || deeper
}

// Write sets path to value (creating intermediate directories),
// firing matching watches.
func (s *Store) Write(path, value string) {
	s.WriteAs(0, path, value)
}

// WriteAs is Write with an owning domain for new nodes.
func (s *Store) WriteAs(owner int, path, value string) {
	it := segments(path)
	newRoot, touched, _ := s.applyWrite(s.loaded().root, &it, owner, func(n *node) *node {
		c := n.clone()
		c.value = value
		s.gen++
		c.gen = s.gen
		return c
	})
	s.publish(newRoot)
	s.chargeOp(touched + s.matchCost(path))
	s.fireWatches(path)
}

// Read returns the value at path. The reply carries the value as of
// the END of the charged round trip: clock events that fire during the
// charge (a backend's setup commit, a watch callback) may update the
// node before the reply is delivered, and the client sees that update
// — the behaviour of a store daemon that serializes the reply after
// processing everything ahead of it. Whether the node exists is
// decided at the START of the op (a node appearing mid-charge does not
// turn an ErrNoEnt into a hit).
func (s *Store) Read(path string) (string, error) {
	n, touched, err := s.lookup(path)
	s.chargeOp(touched)
	if err != nil {
		return "", err
	}
	if cur, _ := s.resolve(path); cur != nil {
		return cur.value, nil
	}
	return n.value, nil
}

// Exists reports whether path resolves.
func (s *Store) Exists(path string) bool {
	n, touched := s.resolve(path)
	s.chargeOp(touched)
	return n != nil
}

// Mkdir creates a directory node.
func (s *Store) Mkdir(path string) {
	it := segments(path)
	newRoot, touched, created := s.applyWrite(s.loaded().root, &it, 0, func(n *node) *node { return n })
	if created {
		s.publish(newRoot)
		s.chargeOp(touched + s.matchCost(path))
		s.fireWatches(path)
	} else {
		s.chargeOp(touched)
	}
}

// Directory lists the children of path in sorted order. Listing
// touches every child — this is one of the O(#guests) costs on the
// creation path when listing /local/domain.
func (s *Store) Directory(path string) ([]string, error) {
	return s.DirectoryAppend(path, nil)
}

// DirectoryAppend is Directory appending into buf (sliced to zero
// length first). Callers that list repeatedly — the toolstack lists
// /local/domain on every creation — pass the previous result back in
// so the listing reuses one buffer instead of allocating O(#guests)
// per operation.
func (s *Store) DirectoryAppend(path string, buf []string) ([]string, error) {
	n, touched, err := s.lookup(path)
	if err != nil {
		s.chargeOp(touched)
		return nil, err
	}
	s.chargeOp(touched + n.nkids)
	// Like Read, the listing reflects children as of the end of the
	// charge (the cost was fixed at op start).
	if cur, _ := s.resolve(path); cur != nil {
		n = cur
	}
	out := appendChildNames(n.kids, buf[:0])
	sort.Strings(out)
	return out, nil
}

// appendChildNames collects a trie's entry names into buf. It is a
// plain function (no closure) so a warm buffer makes the listing
// allocation-free.
func appendChildNames(a *amtNode, buf []string) []string {
	if a == nil {
		return buf
	}
	for _, s := range a.slots {
		switch e := s.(type) {
		case *node:
			buf = append(buf, e.name)
		case *amtNode:
			buf = appendChildNames(e, buf)
		case *amtCollision:
			for _, n := range e.entries {
				buf = append(buf, n.name)
			}
		}
	}
	return buf
}

// applyRm rebuilds the spine with the subtree at (remaining path,
// final component leaf) removed. The visited-node count reproduces the
// historical walk exactly: one per ancestor reached, whether or not
// the final component exists.
func (s *Store) applyRm(n *node, it *segIter, leaf string) (newN, removed *node, touched int, found bool) {
	next, more := it.next()
	if !more {
		nn, rm := n.withoutChild(leaf)
		if rm == nil {
			return nil, nil, 1, false
		}
		s.gen++
		nn.gen = s.gen
		return nn, rm, 1, true
	}
	child := n.child(leaf)
	if child == nil {
		return nil, nil, 1, false
	}
	newChild, rm, t, ok := s.applyRm(child, it, next)
	if !ok {
		return nil, nil, t + 1, false
	}
	return n.withChild(newChild), rm, t + 1, true
}

// updateAt rebuilds the spine down the remaining path and replaces the
// final node with f(final), creating nothing. The visited-node count
// matches resolveFrom. Generations are untouched unless f bumps them.
func updateAt(n *node, it *segIter, f func(*node) *node) (newN *node, touched int, found bool) {
	seg, ok := it.next()
	if !ok {
		return f(n), 1, true
	}
	child := n.child(seg)
	if child == nil {
		return nil, 1, false
	}
	newChild, t, ok := updateAt(child, it, f)
	if !ok {
		return nil, t + 1, false
	}
	return n.withChild(newChild), t + 1, true
}

// Rm removes path and its subtree.
func (s *Store) Rm(path string) error {
	it := segments(path)
	leaf, ok := it.next()
	if !ok {
		return errors.New("xenstore: cannot remove root")
	}
	newRoot, removed, touched, found := s.applyRm(s.loaded().root, &it, leaf)
	if !found {
		s.chargeOp(touched)
		return fmt.Errorf("%w: %s", ErrNoEnt, path)
	}
	// Return quota to each removed node's actual owner, so the ledger
	// always matches the tree (CheckConsistency's invariant).
	s.debitOwners(removed)
	s.publish(newRoot)
	s.chargeOp(touched + removed.size + s.matchCost(path))
	s.fireWatches(path)
	return nil
}

// NumNodes reports the total node count (diagnostic; grows ~40 per
// guest with the stock toolstack). O(1): subtree sizes are maintained
// on every copy.
func (s *Store) NumNodes() int { return s.loaded().root.size - 1 }

// WriteUniqueName records a guest name under dir, performing the
// uniqueness check the paper calls out: "the XenStore compares the new
// entry against the names of all other already-running guests before
// accepting the new guest's name" (§4.2). The scan happens inside the
// store daemon (one protocol op from the client's perspective) but its
// cost is linear in the number of registered guests — and the
// comparisons are real.
func (s *Store) WriteUniqueName(dir, key, name string) error {
	s.Count.UniqScans++
	n, _ := s.resolve(dir)
	if n != nil {
		dup := false
		n.eachChild(func(child *node) bool {
			s.clock.Sleep(costs.XSNameUniquenessPerGuest)
			if child.value == name {
				dup = true
				return false
			}
			return true
		})
		if dup {
			s.chargeOp(n.nkids)
			return fmt.Errorf("%w: name %q", ErrExists, name)
		}
		// The scan touches every registered name whether or not a
		// duplicate turns up (§4.2): accepting a unique name costs the
		// same full comparison pass, so the successful path charges the
		// scan too.
		s.chargeOp(n.nkids)
	}
	s.WriteAs(0, dir+"/"+key, name)
	return nil
}
