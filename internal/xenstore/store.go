// Package xenstore implements the centralized registry that stock Xen
// builds its control plane on (paper §4.1/§4.2) — the component
// LightVM removes. It is a real hierarchical store: a tree of nodes
// with values, per-node generation counters, prefix watches, and
// transactions that fail and retry on conflict.
//
// Every operation charges the virtual clock the paper's message cost:
// "each operation requires sending a message and receiving an
// acknowledgment, each triggering a software interrupt: a single read
// or write thus triggers at least two, and most often four, software
// interrupts and multiple domain changes" (§4.2). On top of that, the
// store charges for the nodes it actually touches (path resolution,
// directory listing, commit validation, watch matching), which is what
// makes creation cost grow with the number of guests, and it appends
// to 20 access-log files that rotate every 13,215 lines — the spikes
// in Fig. 5 and Fig. 9.
package xenstore

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"lightvm/internal/costs"
	"lightvm/internal/faults"
	"lightvm/internal/sim"
)

// Errors.
var (
	ErrNoEnt  = errors.New("xenstore: no such node")
	ErrAgain  = errors.New("xenstore: transaction conflict, retry")
	ErrBadTxn = errors.New("xenstore: no such transaction")
	ErrExists = errors.New("xenstore: node exists")
	// ErrTxnRetriesExhausted is returned by Store.Txn when a body keeps
	// conflicting past its retry budget; it wraps ErrAgain, so callers
	// can match either the exhaustion or the underlying conflict.
	ErrTxnRetriesExhausted = errors.New("xenstore: transaction retries exhausted")
)

// Counters aggregates store activity for tests and Fig. 5 attribution.
type Counters struct {
	Ops          uint64
	SoftIRQs     uint64
	Crossings    uint64
	NodesTouched uint64
	WatchFires   uint64
	TxnStarts    uint64
	TxnCommits   uint64
	TxnConflicts uint64
	LogLines     uint64
	LogRotations uint64
	UniqScans    uint64
	// Stalls counts injected store-daemon freezes (fault plane).
	Stalls uint64
	// InjectedConflicts counts commits aborted by the fault plane
	// (a subset of TxnConflicts).
	InjectedConflicts uint64
}

type node struct {
	name     string
	value    string
	children map[string]*node
	gen      uint64 // bumped on any modification (incl. child add/rm)
	owner    int    // domain that owns the node (permission model)
	perm     Perm   // access class for non-owners
}

// Store is the oxenstored-equivalent.
type Store struct {
	clock *sim.Clock
	root  *node
	gen   uint64

	watches   []*watch
	nextWatch int
	// watchIndex buckets watches by the first segment of their prefix
	// so fireWatches only scans the modified subtree's candidates;
	// rootWatches holds watches on "/" (they match every path).
	watchIndex  map[string][]*watch
	rootWatches []*watch

	txns    map[TxnID]*txn
	nextTxn TxnID

	// Logging: one logical line counter stands in for the 20 files
	// (they rotate together).
	LoggingEnabled bool
	logLines       int

	// Connections is the number of open store connections (one per
	// running guest with a xenbus ring, plus Dom0 daemons). The store
	// daemon's event loop scans every connection per operation, so
	// each op pays Connections × costs.XSPerConnection. The toolstack
	// maintains this count as guests come and go.
	Connections int

	// Faults, when non-nil, lets the fault plane stall operations and
	// abort transaction commits (faults.KindStoreStall /
	// faults.KindTxnConflict). Nil costs one pointer check per op.
	Faults *faults.Injector

	// variant selects oxenstored (default) or the slower cxenstored.
	variant Variant
	// nodeQuota is the per-domain node limit (see quota.go).
	nodeQuota int
	// ownerNodes tracks quota usage per owning domain.
	ownerNodes map[int]int

	Count Counters
}

// New creates an empty store on clock with access logging enabled
// (the stock oxenstored configuration).
func New(clock *sim.Clock) *Store {
	return &Store{
		clock:          clock,
		root:           &node{name: "/", children: map[string]*node{}},
		txns:           make(map[TxnID]*txn),
		LoggingEnabled: true,
		nodeQuota:      DefaultNodeQuota,
		ownerNodes:     make(map[int]int),
	}
}

// segIter walks a path's components without allocating: "/a/b/c"
// yields "a", "b", "c" as substrings of the input. Path resolution is
// the store's hottest loop (every read/write/ensure), so it must not
// build a []string per operation the way strings.Split does.
type segIter struct {
	rest string
}

// segments returns an iterator over path's components.
func segments(path string) segIter {
	return segIter{rest: strings.Trim(path, "/")}
}

// next returns the following component, or ok=false at the end.
func (it *segIter) next() (seg string, ok bool) {
	if it.rest == "" {
		return "", false
	}
	if i := strings.IndexByte(it.rest, '/'); i >= 0 {
		seg, it.rest = it.rest[:i], it.rest[i+1:]
	} else {
		seg, it.rest = it.rest, ""
	}
	return seg, true
}

// firstSegment returns the first component of path ("" for the root).
func firstSegment(path string) string {
	it := segments(path)
	seg, _ := it.next()
	return seg
}

// chargeOp accounts one protocol round trip plus extra node touches.
func (s *Store) chargeOp(nodesTouched int) {
	s.Count.Ops++
	s.Count.SoftIRQs += costs.XSRequestInterrupts
	s.Count.Crossings += costs.XSRequestCrossings
	s.Count.NodesTouched += uint64(nodesTouched)
	d := costs.XSRequestInterrupts*costs.SoftIRQ +
		costs.XSRequestCrossings*costs.DomainCrossing +
		costs.XSProcess +
		sim.Duration(nodesTouched)*costs.XSPerNodeTouch +
		sim.Duration(s.Connections)*costs.XSPerConnection
	d += s.variantExtra(costs.XSProcess + sim.Duration(nodesTouched)*costs.XSPerNodeTouch)
	if s.Faults.Fire(faults.KindStoreStall) {
		// The store daemon freezes (GC pause, log fsync, scheduling
		// gap): the requesting client simply sees a slow reply.
		s.Count.Stalls++
		d += costs.XSStoreStall
	}
	s.clock.Sleep(d)
	s.logAccess()
}

// logAccess appends one line to each of the 20 access logs and rotates
// them at the threshold, charging the rotation pause.
func (s *Store) logAccess() {
	if !s.LoggingEnabled {
		return
	}
	s.logLines++
	s.Count.LogLines += costs.XSLogFiles
	s.clock.Sleep(costs.XSLogFiles * costs.XSLogLine)
	if s.logLines >= costs.XSLogRotateLines {
		s.logLines = 0
		s.Count.LogRotations++
		s.clock.Sleep(costs.XSLogRotateCost)
	}
}

// resolve walks a path without allocating, returning the node (nil if
// missing) and the number of nodes visited.
func (s *Store) resolve(path string) (*node, int) {
	it := segments(path)
	n := s.root
	touched := 1
	for {
		p, ok := it.next()
		if !ok {
			return n, touched
		}
		child, ok := n.children[p]
		if !ok {
			return nil, touched
		}
		n = child
		touched++
	}
}

// lookup resolves a path, returning the node and the number of nodes
// visited. Missing nodes return ErrNoEnt.
func (s *Store) lookup(path string) (*node, int, error) {
	n, touched := s.resolve(path)
	if n == nil {
		return nil, touched, fmt.Errorf("%w: %s", ErrNoEnt, path)
	}
	return n, touched, nil
}

// childMapHint pre-sizes newly created child maps: store directories
// are mostly small (a device dir holds a handful of entries), so a
// small hint avoids growth rehashes without wasting space on leaves.
const childMapHint = 4

// ensure creates intermediate directories and returns the leaf,
// reporting nodes visited/created and whether the leaf was created.
// Child maps are allocated lazily: leaf nodes (the common case) never
// pay for an empty map.
func (s *Store) ensure(path string, owner int) (*node, int, bool) {
	it := segments(path)
	n := s.root
	touched := 1
	created := false
	for {
		p, ok := it.next()
		if !ok {
			return n, touched, created
		}
		child, ok := n.children[p]
		if !ok {
			child = &node{name: p, owner: owner}
			if n.children == nil {
				n.children = make(map[string]*node, childMapHint)
			}
			n.children[p] = child
			s.gen++
			n.gen = s.gen // directory modified
			created = true
		}
		n = child
		touched++
	}
}

// Write sets path to value (creating intermediate directories),
// firing matching watches.
func (s *Store) Write(path, value string) {
	s.WriteAs(0, path, value)
}

// WriteAs is Write with an owning domain for new nodes.
func (s *Store) WriteAs(owner int, path, value string) {
	n, touched, _ := s.ensure(path, owner)
	n.value = value
	s.gen++
	n.gen = s.gen
	s.chargeOp(touched + s.matchCost(path))
	s.fireWatches(path)
}

// Read returns the value at path.
func (s *Store) Read(path string) (string, error) {
	n, touched, err := s.lookup(path)
	s.chargeOp(touched)
	if err != nil {
		return "", err
	}
	return n.value, nil
}

// Exists reports whether path resolves.
func (s *Store) Exists(path string) bool {
	n, touched := s.resolve(path)
	s.chargeOp(touched)
	return n != nil
}

// Mkdir creates a directory node.
func (s *Store) Mkdir(path string) {
	_, touched, created := s.ensure(path, 0)
	if created {
		s.chargeOp(touched + s.matchCost(path))
		s.fireWatches(path)
	} else {
		s.chargeOp(touched)
	}
}

// Directory lists the children of path in sorted order. Listing
// touches every child — this is one of the O(#guests) costs on the
// creation path when listing /local/domain.
func (s *Store) Directory(path string) ([]string, error) {
	return s.DirectoryAppend(path, nil)
}

// DirectoryAppend is Directory appending into buf (sliced to zero
// length first). Callers that list repeatedly — the toolstack lists
// /local/domain on every creation — pass the previous result back in
// so the listing reuses one buffer instead of allocating O(#guests)
// per operation.
func (s *Store) DirectoryAppend(path string, buf []string) ([]string, error) {
	n, touched, err := s.lookup(path)
	if err != nil {
		s.chargeOp(touched)
		return nil, err
	}
	out := buf[:0]
	for name := range n.children {
		out = append(out, name)
	}
	sort.Strings(out)
	s.chargeOp(touched + len(n.children))
	return out, nil
}

// Rm removes path and its subtree.
func (s *Store) Rm(path string) error {
	it := segments(path)
	leaf, ok := it.next()
	if !ok {
		return errors.New("xenstore: cannot remove root")
	}
	// Walk to the parent of the final component without rebuilding the
	// parent path string.
	parent := s.root
	touched := 1
	for {
		next, more := it.next()
		if !more {
			break
		}
		child, ok := parent.children[leaf]
		if !ok {
			s.chargeOp(touched)
			return fmt.Errorf("%w: %s", ErrNoEnt, path)
		}
		parent = child
		touched++
		leaf = next
	}
	child, ok := parent.children[leaf]
	if !ok {
		s.chargeOp(touched)
		return fmt.Errorf("%w: %s", ErrNoEnt, path)
	}
	sub := countNodes(child)
	delete(parent.children, leaf)
	s.gen++
	parent.gen = s.gen
	s.chargeOp(touched + sub + s.matchCost(path))
	s.fireWatches(path)
	return nil
}

func countNodes(n *node) int {
	total := 1
	for _, c := range n.children {
		total += countNodes(c)
	}
	return total
}

// NumNodes reports the total node count (diagnostic; grows ~40 per
// guest with the stock toolstack).
func (s *Store) NumNodes() int { return countNodes(s.root) - 1 }

// WriteUniqueName records a guest name under dir, performing the
// uniqueness check the paper calls out: "the XenStore compares the new
// entry against the names of all other already-running guests before
// accepting the new guest's name" (§4.2). The scan happens inside the
// store daemon (one protocol op from the client's perspective) but its
// cost is linear in the number of registered guests — and the
// comparisons are real.
func (s *Store) WriteUniqueName(dir, key, name string) error {
	s.Count.UniqScans++
	n, _ := s.resolve(dir)
	if n != nil {
		for _, child := range n.children {
			s.clock.Sleep(costs.XSNameUniquenessPerGuest)
			if child.value == name {
				s.chargeOp(len(n.children))
				return fmt.Errorf("%w: name %q", ErrExists, name)
			}
		}
		// The scan touches every registered name whether or not a
		// duplicate turns up (§4.2): accepting a unique name costs the
		// same full comparison pass, so the successful path charges the
		// scan too.
		s.chargeOp(len(n.children))
	}
	s.WriteAs(0, dir+"/"+key, name)
	return nil
}
