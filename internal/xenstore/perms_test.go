package xenstore

import (
	"errors"
	"testing"
)

func TestGuestCannotReadForeignDomainPath(t *testing.T) {
	s, _ := newStore()
	s.Write("/local/domain/7/device/vif/0/mac", "aa:bb")
	// Guest 7 reads its own subtree freely.
	if _, err := s.GuestRead(7, "/local/domain/7/device/vif/0/mac"); err != nil {
		t.Fatalf("own read denied: %v", err)
	}
	// Guest 8 may not.
	if _, err := s.GuestRead(8, "/local/domain/7/device/vif/0/mac"); !errors.Is(err, ErrPermission) {
		t.Fatalf("foreign read: %v", err)
	}
	// Dom0 always may.
	if _, err := s.GuestRead(0, "/local/domain/7/device/vif/0/mac"); err != nil {
		t.Fatalf("dom0 read denied: %v", err)
	}
}

func TestGuestWriteACL(t *testing.T) {
	s, _ := newStore()
	s.Write("/local/domain/5/data/x", "1")
	if err := s.GuestWrite(5, "/local/domain/5/data/y", "2"); err != nil {
		t.Fatalf("own write denied: %v", err)
	}
	if err := s.GuestWrite(6, "/local/domain/5/data/z", "3"); !errors.Is(err, ErrPermission) {
		t.Fatalf("foreign write: %v", err)
	}
	if s.Exists("/local/domain/5/data/z") {
		t.Fatal("denied write landed")
	}
}

func TestSharedNodePerms(t *testing.T) {
	s, _ := newStore()
	s.Write("/shared/clock", "tick")
	if err := s.SetPerm("/shared/clock", 0, PermRead); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GuestRead(9, "/shared/clock"); err != nil {
		t.Fatalf("world-readable node denied: %v", err)
	}
	if err := s.GuestWrite(9, "/shared/clock", "tock"); !errors.Is(err, ErrPermission) {
		t.Fatalf("read-only node written: %v", err)
	}
	if err := s.SetPerm("/shared/clock", 0, PermBoth); err != nil {
		t.Fatal(err)
	}
	if err := s.GuestWrite(9, "/shared/clock", "tock"); err != nil {
		t.Fatalf("both-perm write denied: %v", err)
	}
	v, _ := s.Read("/shared/clock")
	if v != "tock" {
		t.Fatalf("value = %q", v)
	}
}

func TestOwnerBypassesACL(t *testing.T) {
	s, _ := newStore()
	s.Write("/backend/vif/3/0/state", "4")
	if err := s.SetPerm("/backend/vif/3/0/state", 3, PermNone); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GuestRead(3, "/backend/vif/3/0/state"); err != nil {
		t.Fatalf("owner read denied: %v", err)
	}
	if err := s.GuestWrite(3, "/backend/vif/3/0/state", "5"); err != nil {
		t.Fatalf("owner write denied: %v", err)
	}
	if _, err := s.GuestRead(4, "/backend/vif/3/0/state"); !errors.Is(err, ErrPermission) {
		t.Fatalf("non-owner read: %v", err)
	}
}

func TestPermOfAndStrings(t *testing.T) {
	s, _ := newStore()
	s.Write("/p", "v")
	_ = s.SetPerm("/p", 2, PermWrite)
	owner, perm, err := s.PermOf("/p")
	if err != nil || owner != 2 || perm != PermWrite {
		t.Fatalf("PermOf = %d,%v,%v", owner, perm, err)
	}
	if _, _, err := s.PermOf("/missing"); err == nil {
		t.Fatal("PermOf on missing node")
	}
	if err := s.SetPerm("/missing", 1, PermRead); err == nil {
		t.Fatal("SetPerm on missing node")
	}
	for p, want := range map[Perm]string{PermNone: "n", PermRead: "r", PermWrite: "w", PermBoth: "b"} {
		if p.String() != want {
			t.Fatalf("Perm %d = %q", p, p.String())
		}
	}
}

func TestMissingNodeGuestRead(t *testing.T) {
	s, _ := newStore()
	if _, err := s.GuestRead(4, "/local/domain/4/absent"); !errors.Is(err, ErrNoEnt) {
		t.Fatalf("missing own node: %v", err)
	}
}
