package xenstore

import (
	"fmt"
	"testing"
)

// Allocation budgets for the store's hot paths. The experiment sweeps
// issue hundreds of store operations per guest creation (xl performs
// ~250), so per-op garbage multiplies into GC pressure at fig10/fig16
// volumes. These guards keep the allocation diet from silently
// regressing: path resolution must not allocate at all on a warm tree.

// warmPath is a realistic 5-level device path.
const warmPath = "/local/domain/7/device/vif"

func warmStore() *Store {
	s, _ := newStore()
	s.Write(warmPath+"/0/state", "1")
	s.Write(warmPath+"/0/mac", "00:16:3e:00:00:07")
	s.Write("/local/domain/7/name", "guest7")
	return s
}

func TestReadAllocFree(t *testing.T) {
	s := warmStore()
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := s.Read(warmPath + "/0/state"); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("Store.Read on a warm 5-level path allocates %.1f objects/op, want 0", allocs)
	}
}

func TestExistsAllocFree(t *testing.T) {
	s := warmStore()
	// Both the hit and the miss path must stay allocation-free: the
	// toolstacks probe for absent nodes constantly.
	allocs := testing.AllocsPerRun(200, func() {
		if !s.Exists(warmPath + "/0/state") {
			t.Fatal("node vanished")
		}
		if s.Exists(warmPath + "/9/state") {
			t.Fatal("phantom node")
		}
	})
	if allocs > 0 {
		t.Fatalf("Store.Exists allocates %.1f objects/op, want 0", allocs)
	}
}

func TestWriteWarmAllocBudget(t *testing.T) {
	s := warmStore()
	// An unrelated watch must not drag allocations into the write path:
	// the bucket index rules it out without building candidate sets.
	s.Watch("/backend/vbd", "tok", func(string, string) {})
	// A warm write copies the spine of the immutable tree — that is the
	// price of O(1) snapshots — but the copy must stay a small constant:
	// one node plus one or two trie levels per path component, plus the
	// published treeState. Anything beyond the budget means structural
	// sharing broke and writes started copying whole directories.
	const writeAllocBudget = 32
	allocs := testing.AllocsPerRun(200, func() {
		s.Write(warmPath+"/0/state", "4")
	})
	if allocs > writeAllocBudget {
		t.Fatalf("Store.Write on a warm path allocates %.1f objects/op, budget %d (spine copy only)",
			allocs, writeAllocBudget)
	}
}

func TestWriteAllocsIndependentOfFanout(t *testing.T) {
	// The proof that writes copy spines, not directories: the per-write
	// allocation count must not grow with the number of siblings. A
	// naive copy-on-write (clone the whole children map) would allocate
	// O(fanout) here and fail by orders of magnitude.
	small := warmStore()
	base := testing.AllocsPerRun(200, func() {
		small.Write(warmPath+"/0/state", "4")
	})
	big := warmStore()
	for i := 0; i < 4096; i++ {
		big.Write(fmt.Sprintf("/local/domain/%d/name", i), "g")
	}
	wide := testing.AllocsPerRun(200, func() {
		big.Write(warmPath+"/0/state", "4")
	})
	// 4096 siblings add at most a couple of trie levels to the spine
	// (log32), never a fanout-proportional copy.
	if wide > base+8 {
		t.Fatalf("write allocations grew with fanout: %.1f objects/op at 4096 siblings vs %.1f at 3 — directory copied instead of shared",
			wide, base)
	}
}

func TestDirectoryAppendReusesBuffer(t *testing.T) {
	s, _ := newStore()
	for i := 0; i < 64; i++ {
		s.Write(fmt.Sprintf("/local/domain/%d/name", i), "g")
	}
	buf, err := s.DirectoryAppend("/local/domain", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != 64 {
		t.Fatalf("listing = %d entries", len(buf))
	}
	allocs := testing.AllocsPerRun(100, func() {
		var err error
		buf, err = s.DirectoryAppend("/local/domain", buf)
		if err != nil || len(buf) != 64 {
			t.Fatalf("DirectoryAppend = %d entries, %v", len(buf), err)
		}
	})
	if allocs > 0 {
		t.Fatalf("DirectoryAppend with a warm buffer allocates %.1f objects/op, want 0", allocs)
	}
}

func TestWatchDeliveryScansOwnBucketOnly(t *testing.T) {
	s, _ := newStore()
	fired := 0
	s.Watch("/backend/vif", "t", func(string, string) { fired++ })
	// Pile unrelated watches into other buckets; delivery must still
	// work and root-level watches must still match everything.
	for i := 0; i < 50; i++ {
		s.Watch(fmt.Sprintf("/other%d", i), "t", func(string, string) { t.Fatal("unrelated watch fired") })
	}
	rootFired := 0
	s.Watch("/", "r", func(string, string) { rootFired++ })
	s.Write("/backend/vif/1/0/state", "1")
	if fired != 1 {
		t.Fatalf("subtree watch fired %d times, want 1", fired)
	}
	if rootFired != 1 {
		t.Fatalf("root watch fired %d times, want 1", rootFired)
	}
	// Simulated cost still models the full linear scan.
	if got := s.matchCost("/backend/vif/1/0/state"); got != s.NumWatches() {
		t.Fatalf("matchCost = %d, want %d (modelled linear scan)", got, s.NumWatches())
	}
}

func TestWatchOrderPreservedAcrossBuckets(t *testing.T) {
	s, _ := newStore()
	var order []string
	s.Watch("/", "a", func(string, string) { order = append(order, "a") })
	s.Watch("/x", "b", func(string, string) { order = append(order, "b") })
	s.Watch("/", "c", func(string, string) { order = append(order, "c") })
	s.Watch("/x/y", "d", func(string, string) { order = append(order, "d") })
	s.Write("/x/y/z", "1")
	want := "a,b,c,d"
	got := ""
	for i, o := range order {
		if i > 0 {
			got += ","
		}
		got += o
	}
	if got != want {
		t.Fatalf("delivery order = %s, want %s (registration order)", got, want)
	}
}

func TestUnwatchRemovesFromIndex(t *testing.T) {
	s, _ := newStore()
	count := 0
	id := s.Watch("/a", "t1", func(string, string) { count++ })
	s.Watch("/a/b", "t2", func(string, string) { count++ })
	s.Unwatch(id)
	s.Write("/a/b/c", "1")
	if count != 1 {
		t.Fatalf("fired %d times after Unwatch, want 1", count)
	}
	if n := s.UnwatchByToken("t2"); n != 1 {
		t.Fatalf("UnwatchByToken removed %d, want 1", n)
	}
	s.Write("/a/b/c", "2")
	if count != 1 {
		t.Fatalf("fired %d times after UnwatchByToken, want 1", count)
	}
}
