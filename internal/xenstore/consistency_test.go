package xenstore

import (
	"strings"
	"testing"
)

func TestLedgerFollowsPlainRm(t *testing.T) {
	// A toolstack destroy removes guest-owned nodes with plain Rm; the
	// quota must come back to the actual owner anyway.
	s, _ := newStore()
	for _, p := range []string{"/local/domain/9/data/a", "/local/domain/9/data/b"} {
		if err := s.WriteAsGuest(9, p, "v"); err != nil {
			t.Fatal(err)
		}
	}
	if s.OwnerNodes(9) == 0 {
		t.Fatal("no quota charged")
	}
	if err := s.Rm("/local/domain/9"); err != nil {
		t.Fatal(err)
	}
	// /local and /local/domain were also created (and owned) by the
	// guest write and survive the subtree removal.
	if got := s.OwnerNodes(9); got != 2 {
		t.Fatalf("domain 9 charged %d nodes after subtree Rm, want 2", got)
	}
	if v := s.CheckConsistency(); len(v) != 0 {
		t.Fatalf("CheckConsistency mid-way: %v", v)
	}
	if err := s.Rm("/local"); err != nil {
		t.Fatal(err)
	}
	if got := s.OwnerNodes(9); got != 0 {
		t.Fatalf("plain Rm left domain 9 charged %d nodes", got)
	}
	if v := s.CheckConsistency(); len(v) != 0 {
		t.Fatalf("CheckConsistency: %v", v)
	}
}

func TestLedgerFollowsSetPerm(t *testing.T) {
	s, _ := newStore()
	s.Write("/shared/ring", "x")
	if err := s.SetPerm("/shared/ring", 4, PermRead); err != nil {
		t.Fatal(err)
	}
	if got := s.OwnerNodes(4); got != 1 {
		t.Fatalf("ownership transfer charged %d nodes, want 1", got)
	}
	if err := s.SetPerm("/shared/ring", 0, PermNone); err != nil {
		t.Fatal(err)
	}
	if got := s.OwnerNodes(4); got != 0 {
		t.Fatalf("transfer back left %d nodes charged", got)
	}
	if v := s.CheckConsistency(); len(v) != 0 {
		t.Fatalf("CheckConsistency: %v", v)
	}
}

func TestLedgerFollowsGraft(t *testing.T) {
	src, _ := newStore()
	if err := src.WriteAsGuest(3, "/local/domain/3/data/k", "v"); err != nil {
		t.Fatal(err)
	}
	sn := src.Snapshot()

	dst, _ := newStore()
	dst.Write("/local/domain/3/stale", "old")
	if err := dst.GraftSnapshot(sn, "/local/domain/3", "/local/domain/3"); err != nil {
		t.Fatal(err)
	}
	// The grafted subtree carries domain 3's owned nodes ("3" itself,
	// "data", "k" — all created by the guest write on the source).
	if got := dst.OwnerNodes(3); got != 3 {
		t.Fatalf("graft charged %d nodes to domain 3, want 3", got)
	}
	if v := dst.CheckConsistency(); len(v) != 0 {
		t.Fatalf("CheckConsistency after graft: %v", v)
	}
	if err := dst.Rm("/local/domain/3"); err != nil {
		t.Fatal(err)
	}
	if got := dst.OwnerNodes(3); got != 0 {
		t.Fatalf("rm after graft left %d nodes charged", got)
	}
}

func TestCheckConsistencyDetectsCorruption(t *testing.T) {
	s, _ := newStore()
	s.Write("/a/b", "v")
	if v := s.CheckConsistency(); len(v) != 0 {
		t.Fatalf("clean store reported: %v", v)
	}
	before := s.clock.Now()
	s.ownerNodes[12] = 5 // simulate a leaked ledger entry
	v := s.CheckConsistency()
	if len(v) != 1 || !strings.Contains(v[0], "domain 12") {
		t.Fatalf("corruption not reported: %v", v)
	}
	if s.clock.Now() != before {
		t.Fatal("CheckConsistency charged virtual time")
	}
	delete(s.ownerNodes, 12)
}

func TestWatchTokensSortedAndClockFree(t *testing.T) {
	s, _ := newStore()
	s.Watch("/local/domain/2", "fe-2-vif-0", func(string, string) {})
	s.Watch("/local/domain/1", "fe-1-vif-0", func(string, string) {})
	before := s.clock.Now()
	got := s.WatchTokens()
	if s.clock.Now() != before {
		t.Fatal("WatchTokens charged virtual time")
	}
	if len(got) != 2 || got[0] != "fe-1-vif-0" || got[1] != "fe-2-vif-0" {
		t.Fatalf("WatchTokens = %v", got)
	}
}
