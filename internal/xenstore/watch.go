package xenstore

import (
	"sort"
	"strings"

	"lightvm/internal/costs"
	"lightvm/internal/sim"
)

// WatchFn is a watch callback: it receives the modified path and the
// token supplied at registration. Callbacks run inline at modification
// time (after the upcall cost is charged), matching the event-channel
// kick oxenstored sends; handlers that model slow backends should
// schedule their real work on the clock rather than block.
type WatchFn func(path, token string)

type watch struct {
	id     int
	prefix string
	token  string
	owner  int // owning domain for quota (0 = dom0, unquota'd)
	fn     WatchFn
}

// WatchID identifies a registered watch for removal.
type WatchID int

// Watch registers fn on path: it fires for modifications of the node
// or anything beneath it (Xen semantics). Watches are indexed by their
// full normalized prefix; buckets stay sorted by id because ids only
// grow.
func (s *Store) Watch(path, token string, fn WatchFn) WatchID {
	s.batchValid = false
	s.nextWatch++
	w := &watch{id: s.nextWatch, prefix: normalize(path), token: token, fn: fn}
	s.watches = append(s.watches, w)
	if w.prefix == "/" {
		s.rootWatches = append(s.rootWatches, w)
	} else {
		if s.watchIndex == nil {
			s.watchIndex = make(map[string][]*watch)
		}
		s.watchIndex[w.prefix] = append(s.watchIndex[w.prefix], w)
	}
	s.chargeOp(1)
	return WatchID(w.id)
}

// watchOwners records the owning domain on a just-registered watch so
// its quota is returned when the watch dies (see WatchAsGuest).
func (s *Store) watchOwners(id WatchID, owner int) {
	for i := len(s.watches) - 1; i >= 0; i-- {
		if s.watches[i].id == int(id) {
			s.watches[i].owner = owner
			return
		}
	}
}

// unchargeWatch returns a dying watch's quota to its owner.
func (s *Store) unchargeWatch(w *watch) {
	if w.owner == 0 || s.ownerWatches == nil {
		return
	}
	if next := s.ownerWatches[w.owner] - 1; next <= 0 {
		delete(s.ownerWatches, w.owner)
	} else {
		s.ownerWatches[w.owner] = next
	}
}

// dropIndexed removes w from its index bucket, preserving order.
func (s *Store) dropIndexed(w *watch) {
	if w.prefix == "/" {
		s.rootWatches = removeWatch(s.rootWatches, w)
		return
	}
	bucket := removeWatch(s.watchIndex[w.prefix], w)
	if len(bucket) == 0 {
		delete(s.watchIndex, w.prefix)
	} else {
		s.watchIndex[w.prefix] = bucket
	}
}

func removeWatch(ws []*watch, w *watch) []*watch {
	for i, x := range ws {
		if x == w {
			return append(ws[:i], ws[i+1:]...)
		}
	}
	return ws
}

// Unwatch removes a watch.
func (s *Store) Unwatch(id WatchID) {
	s.batchValid = false
	for i, w := range s.watches {
		if w.id == int(id) {
			s.watches = append(s.watches[:i], s.watches[i+1:]...)
			s.dropIndexed(w)
			s.unchargeWatch(w)
			break
		}
	}
	s.chargeOp(1)
}

// UnwatchByToken removes every watch registered with token (device
// teardown: the netfront's watch dies with its device).
func (s *Store) UnwatchByToken(token string) int {
	s.batchValid = false
	removed := 0
	out := s.watches[:0]
	for _, w := range s.watches {
		if w.token == token {
			s.dropIndexed(w)
			s.unchargeWatch(w)
			removed++
			continue
		}
		out = append(out, w)
	}
	s.watches = out
	s.chargeOp(1)
	return removed
}

// NumWatches reports registered watches (diagnostic).
func (s *Store) NumWatches() int { return len(s.watches) }

// WatchTokens lists every registered watch's token, sorted. Clock-free
// — the invariant checker uses it to find watches whose owning domain
// is gone (each orphan inflates matchCost on every subsequent write,
// one of the ways crash residue slows the store down).
func (s *Store) WatchTokens() []string {
	if len(s.watches) == 0 {
		return nil
	}
	out := make([]string, len(s.watches))
	for i, w := range s.watches {
		out[i] = w.token
	}
	sort.Strings(out)
	return out
}

func normalize(path string) string {
	if len(path) > 1 && path[0] == '/' && path[len(path)-1] != '/' {
		// Already normalized — the overwhelmingly common case on the
		// write path; skip the Trim allocation.
		return path
	}
	return "/" + strings.Trim(path, "/")
}

// matchCost is the per-write overhead of checking the modified path
// against every registered watch. oxenstored does this linear scan on
// each commit point; as guests accumulate watches (each device leaves
// one on its backend directory), writes get slower — one of the
// mechanisms behind the superlinear XenStore curve in Fig. 5.
//
// The *simulated* cost stays linear in the watch count (that is the
// modelled daemon's behaviour); the simulator itself answers in O(1)
// and only walks the modified subtree's own bucket when delivering.
func (s *Store) matchCost(string) int {
	// Each watch comparison costs about one node touch.
	return len(s.watches)
}

// watchMatches reports whether a watch on prefix covers path (the node
// itself or anything beneath it). Both are normalized; the comparison
// allocates nothing.
func watchMatches(prefix, path string) bool {
	if prefix == "/" {
		return true
	}
	if !strings.HasPrefix(path, prefix) {
		return false
	}
	return len(path) == len(prefix) || path[len(prefix)] == '/'
}

// mergeCandidates builds the id-ordered candidate list for a modified
// path into the scratch buffer for the given fire-nesting depth: the
// root bucket plus one bucket per ancestor prefix of p, k-way merged
// by registration id so delivery order matches the historical
// single-list scan. Per-depth buffers keep re-entrant fires (a watch
// callback writing, which fires watches again) from clobbering an
// iteration in progress, without allocating per fire.
func (s *Store) mergeCandidates(depth int, p string) []*watch {
	for len(s.fireBufs) <= depth {
		s.fireBufs = append(s.fireBufs, nil)
		s.mergeBufs = append(s.mergeBufs, nil)
	}
	bufs := s.mergeBufs[depth][:0]
	if len(s.rootWatches) > 0 {
		bufs = append(bufs, s.rootWatches)
	}
	if p != "/" && len(s.watchIndex) > 0 {
		// Every ancestor prefix of p, including p itself.
		for i := 1; i <= len(p); i++ {
			if i == len(p) || p[i] == '/' {
				if b := s.watchIndex[p[:i]]; len(b) > 0 {
					bufs = append(bufs, b)
				}
			}
		}
	}
	s.mergeBufs[depth] = bufs
	buf := s.fireBufs[depth][:0]
	for len(bufs) > 0 {
		min := 0
		for i := 1; i < len(bufs); i++ {
			if bufs[i][0].id < bufs[min][0].id {
				min = i
			}
		}
		buf = append(buf, bufs[min][0])
		if bufs[min] = bufs[min][1:]; len(bufs[min]) == 0 {
			bufs[min] = bufs[len(bufs)-1]
			bufs = bufs[:len(bufs)-1]
		}
	}
	s.fireBufs[depth] = buf
	return buf
}

// fireWatches delivers events for a modified path. The delivery cost
// is charged per matching watch. Candidates are the watches registered
// on the path's ancestors (prefix-indexed, so delivery does O(depth)
// bucket lookups instead of scanning every watch) plus the root
// watches, merged by registration id — every candidate matches by
// construction.
//
// Delivery is batched per commit: repeated fires of the same path
// (touched-parent notifications in a burst of writes) reuse the cached
// depth-0 candidate list until the path changes or the watch set is
// modified. The virtual costs and the fire order are identical to
// merging from scratch — only the repeated merge work disappears.
func (s *Store) fireWatches(path string) {
	if len(s.watchIndex) == 0 && len(s.rootWatches) == 0 {
		return
	}
	p := normalize(path)
	var cands []*watch
	if s.fireDepth == 0 && s.batchValid && s.batchPath == p {
		cands = s.batchCands
	} else {
		cands = s.mergeCandidates(s.fireDepth, p)
		if s.fireDepth == 0 {
			s.batchCands, s.batchPath, s.batchValid = cands, p, true
		}
	}
	s.fireDepth++
	for _, w := range cands {
		s.Count.WatchFires++
		s.clock.Sleep(sim.Duration(costs.XSWatchFire))
		w.fn(p, w.token)
	}
	s.fireDepth--
}
