package xenstore

import (
	"sort"
	"strings"

	"lightvm/internal/costs"
	"lightvm/internal/sim"
)

// WatchFn is a watch callback: it receives the modified path and the
// token supplied at registration. Callbacks run inline at modification
// time (after the upcall cost is charged), matching the event-channel
// kick oxenstored sends; handlers that model slow backends should
// schedule their real work on the clock rather than block.
type WatchFn func(path, token string)

type watch struct {
	id     int
	prefix string
	token  string
	fn     WatchFn
}

// WatchID identifies a registered watch for removal.
type WatchID int

// watchBucket returns the index bucket for a watch prefix or modified
// path: watches are bucketed by their first path segment, so a write
// only scans the watches rooted in its own subtree instead of every
// registered watch. Watches on "/" live in rootWatches and match
// everything.
func (s *Store) watchBucket(first string) []*watch {
	if s.watchIndex == nil {
		return nil
	}
	return s.watchIndex[first]
}

// Watch registers fn on path: it fires for modifications of the node
// or anything beneath it (Xen semantics).
func (s *Store) Watch(path, token string, fn WatchFn) WatchID {
	s.nextWatch++
	w := &watch{id: s.nextWatch, prefix: normalize(path), token: token, fn: fn}
	s.watches = append(s.watches, w)
	if w.prefix == "/" {
		s.rootWatches = append(s.rootWatches, w)
	} else {
		if s.watchIndex == nil {
			s.watchIndex = make(map[string][]*watch)
		}
		first := firstSegment(w.prefix)
		s.watchIndex[first] = append(s.watchIndex[first], w)
	}
	s.chargeOp(1)
	return WatchID(w.id)
}

// dropIndexed removes w from its index bucket, preserving order.
func (s *Store) dropIndexed(w *watch) {
	if w.prefix == "/" {
		s.rootWatches = removeWatch(s.rootWatches, w)
		return
	}
	first := firstSegment(w.prefix)
	bucket := removeWatch(s.watchIndex[first], w)
	if len(bucket) == 0 {
		delete(s.watchIndex, first)
	} else {
		s.watchIndex[first] = bucket
	}
}

func removeWatch(ws []*watch, w *watch) []*watch {
	for i, x := range ws {
		if x == w {
			return append(ws[:i], ws[i+1:]...)
		}
	}
	return ws
}

// Unwatch removes a watch.
func (s *Store) Unwatch(id WatchID) {
	for i, w := range s.watches {
		if w.id == int(id) {
			s.watches = append(s.watches[:i], s.watches[i+1:]...)
			s.dropIndexed(w)
			break
		}
	}
	s.chargeOp(1)
}

// UnwatchByToken removes every watch registered with token (device
// teardown: the netfront's watch dies with its device).
func (s *Store) UnwatchByToken(token string) int {
	removed := 0
	out := s.watches[:0]
	for _, w := range s.watches {
		if w.token == token {
			s.dropIndexed(w)
			removed++
			continue
		}
		out = append(out, w)
	}
	s.watches = out
	s.chargeOp(1)
	return removed
}

// NumWatches reports registered watches (diagnostic).
func (s *Store) NumWatches() int { return len(s.watches) }

// WatchTokens lists every registered watch's token, sorted. Clock-free
// — the invariant checker uses it to find watches whose owning domain
// is gone (each orphan inflates matchCost on every subsequent write,
// one of the ways crash residue slows the store down).
func (s *Store) WatchTokens() []string {
	if len(s.watches) == 0 {
		return nil
	}
	out := make([]string, len(s.watches))
	for i, w := range s.watches {
		out[i] = w.token
	}
	sort.Strings(out)
	return out
}

func normalize(path string) string {
	if len(path) > 1 && path[0] == '/' && path[len(path)-1] != '/' {
		// Already normalized — the overwhelmingly common case on the
		// write path; skip the Trim allocation.
		return path
	}
	return "/" + strings.Trim(path, "/")
}

// matchCost is the per-write overhead of checking the modified path
// against every registered watch. oxenstored does this linear scan on
// each commit point; as guests accumulate watches (each device leaves
// one on its backend directory), writes get slower — one of the
// mechanisms behind the superlinear XenStore curve in Fig. 5.
//
// The *simulated* cost stays linear in the watch count (that is the
// modelled daemon's behaviour); the simulator itself answers in O(1)
// and only walks the modified subtree's own bucket when delivering.
func (s *Store) matchCost(string) int {
	// Each watch comparison costs about one node touch.
	return len(s.watches)
}

// watchMatches reports whether a watch on prefix covers path (the node
// itself or anything beneath it). Both are normalized; the comparison
// allocates nothing.
func watchMatches(prefix, path string) bool {
	if prefix == "/" {
		return true
	}
	if !strings.HasPrefix(path, prefix) {
		return false
	}
	return len(path) == len(prefix) || path[len(prefix)] == '/'
}

// fireWatches delivers events for a modified path. The delivery cost
// is charged per matching watch. Candidates come from the root bucket
// plus the bucket of the path's first segment, merged by registration
// id so delivery order matches the single-list implementation.
func (s *Store) fireWatches(path string) {
	bucket := s.watchBucket(firstSegment(path))
	if len(bucket) == 0 && len(s.rootWatches) == 0 {
		return
	}
	p := normalize(path)
	root := s.rootWatches
	for len(bucket) > 0 || len(root) > 0 {
		var w *watch
		switch {
		case len(bucket) == 0:
			w, root = root[0], root[1:]
		case len(root) == 0 || bucket[0].id < root[0].id:
			w, bucket = bucket[0], bucket[1:]
		default:
			w, root = root[0], root[1:]
		}
		if watchMatches(w.prefix, p) {
			s.Count.WatchFires++
			s.clock.Sleep(sim.Duration(costs.XSWatchFire))
			w.fn(p, w.token)
		}
	}
}
