package xenstore

import (
	"strings"

	"lightvm/internal/costs"
	"lightvm/internal/sim"
)

// WatchFn is a watch callback: it receives the modified path and the
// token supplied at registration. Callbacks run inline at modification
// time (after the upcall cost is charged), matching the event-channel
// kick oxenstored sends; handlers that model slow backends should
// schedule their real work on the clock rather than block.
type WatchFn func(path, token string)

type watch struct {
	id     int
	prefix string
	token  string
	fn     WatchFn
}

// WatchID identifies a registered watch for removal.
type WatchID int

// Watch registers fn on path: it fires for modifications of the node
// or anything beneath it (Xen semantics).
func (s *Store) Watch(path, token string, fn WatchFn) WatchID {
	s.nextWatch++
	w := &watch{id: s.nextWatch, prefix: normalize(path), token: token, fn: fn}
	s.watches = append(s.watches, w)
	s.chargeOp(1)
	return WatchID(w.id)
}

// Unwatch removes a watch.
func (s *Store) Unwatch(id WatchID) {
	for i, w := range s.watches {
		if w.id == int(id) {
			s.watches = append(s.watches[:i], s.watches[i+1:]...)
			break
		}
	}
	s.chargeOp(1)
}

// UnwatchByToken removes every watch registered with token (device
// teardown: the netfront's watch dies with its device).
func (s *Store) UnwatchByToken(token string) int {
	removed := 0
	out := s.watches[:0]
	for _, w := range s.watches {
		if w.token == token {
			removed++
			continue
		}
		out = append(out, w)
	}
	s.watches = out
	s.chargeOp(1)
	return removed
}

// NumWatches reports registered watches (diagnostic).
func (s *Store) NumWatches() int { return len(s.watches) }

func normalize(path string) string {
	return "/" + strings.Trim(path, "/")
}

// matchCost is the per-write overhead of checking the modified path
// against every registered watch. oxenstored does this linear scan on
// each commit point; as guests accumulate watches (each device leaves
// one on its backend directory), writes get slower — one of the
// mechanisms behind the superlinear XenStore curve in Fig. 5.
func (s *Store) matchCost(string) int {
	// Each watch comparison costs about one node touch.
	return len(s.watches)
}

// fireWatches delivers events for a modified path. The delivery cost
// is charged per matching watch.
func (s *Store) fireWatches(path string) {
	p := normalize(path)
	for _, w := range s.watches {
		if p == w.prefix || strings.HasPrefix(p, w.prefix+"/") {
			s.Count.WatchFires++
			s.clock.Sleep(sim.Duration(costs.XSWatchFire))
			w.fn(p, w.token)
		}
	}
}
