package xenstore

import (
	"fmt"
	"sort"
)

// CheckConsistency audits the store's internal bookkeeping against the
// tree itself and reports every discrepancy as a human-readable
// string (empty slice = consistent). It is the store-local leg of the
// cross-layer invariant checker (toolstack.Fsck) and also runs inside
// the model-check harness after every operation sequence.
//
// Checks:
//   - cached subtree sizes match a recount (Rm charges by size, so a
//     stale size silently misprices operations);
//   - cached child counts (nkids) match the trie;
//   - the per-domain quota ledger matches the number of nodes each
//     domain actually owns in the tree, in both directions.
//
// Like Snapshot, it only reads the published root and charges no
// virtual time, so experiments can audit themselves without
// perturbing their own figures.
func (s *Store) CheckConsistency() []string {
	var out []string
	owned := make(map[int]int)
	var walk func(path string, n *node) int
	walk = func(path string, n *node) int {
		if n.owner != 0 {
			owned[n.owner]++
		}
		size, kids := 1, 0
		n.eachChild(func(c *node) bool {
			kids++
			size += walk(path+"/"+c.name, c)
			return true
		})
		if kids != n.nkids {
			out = append(out, fmt.Sprintf("node %s: nkids %d, trie has %d children", path, n.nkids, kids))
		}
		if size != n.size {
			out = append(out, fmt.Sprintf("node %s: cached size %d, recount %d", path, n.size, size))
		}
		return size
	}
	root := s.loaded().root
	walk("", root)
	for owner, n := range owned {
		if got := s.ownerNodes[owner]; got != n {
			out = append(out, fmt.Sprintf("quota ledger: domain %d charged %d nodes, owns %d", owner, got, n))
		}
	}
	for owner, n := range s.ownerNodes {
		if owner == 0 {
			out = append(out, fmt.Sprintf("quota ledger: dom0 charged %d nodes (never recorded)", n))
			continue
		}
		if owned[owner] == 0 {
			out = append(out, fmt.Sprintf("quota ledger: domain %d charged %d nodes, owns none", owner, n))
		}
	}
	sort.Strings(out)
	return out
}
