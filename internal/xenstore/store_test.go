package xenstore

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"lightvm/internal/costs"
	"lightvm/internal/sim"
)

func newStore() (*Store, *sim.Clock) {
	c := sim.NewClock()
	return New(c), c
}

func TestWriteRead(t *testing.T) {
	s, _ := newStore()
	s.Write("/local/domain/1/name", "guest1")
	v, err := s.Read("/local/domain/1/name")
	if err != nil || v != "guest1" {
		t.Fatalf("Read = %q, %v", v, err)
	}
	if _, err := s.Read("/local/domain/2/name"); !errors.Is(err, ErrNoEnt) {
		t.Fatalf("missing node: %v", err)
	}
}

func TestIntermediateDirectoriesCreated(t *testing.T) {
	s, _ := newStore()
	s.Write("/a/b/c/d", "x")
	if !s.Exists("/a/b") {
		t.Fatal("intermediate dir missing")
	}
	names, err := s.Directory("/a/b")
	if err != nil || len(names) != 1 || names[0] != "c" {
		t.Fatalf("Directory = %v, %v", names, err)
	}
}

func TestDirectorySorted(t *testing.T) {
	s, _ := newStore()
	for _, k := range []string{"z", "a", "m"} {
		s.Write("/dir/"+k, k)
	}
	names, _ := s.Directory("/dir")
	if len(names) != 3 || names[0] != "a" || names[1] != "m" || names[2] != "z" {
		t.Fatalf("Directory = %v", names)
	}
}

func TestRmSubtree(t *testing.T) {
	s, _ := newStore()
	s.Write("/a/b/c", "1")
	s.Write("/a/b/d", "2")
	s.Write("/a/e", "3")
	if err := s.Rm("/a/b"); err != nil {
		t.Fatal(err)
	}
	if s.Exists("/a/b/c") || s.Exists("/a/b") {
		t.Fatal("subtree survived Rm")
	}
	if !s.Exists("/a/e") {
		t.Fatal("sibling removed")
	}
	if err := s.Rm("/a/b"); !errors.Is(err, ErrNoEnt) {
		t.Fatalf("double Rm: %v", err)
	}
	if err := s.Rm("/"); err == nil {
		t.Fatal("root Rm accepted")
	}
}

func TestNumNodes(t *testing.T) {
	s, _ := newStore()
	if s.NumNodes() != 0 {
		t.Fatalf("empty store has %d nodes", s.NumNodes())
	}
	s.Write("/a/b", "1") // creates a, b
	s.Write("/a/c", "2") // creates c
	if s.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d, want 3", s.NumNodes())
	}
}

func TestOpsChargeClock(t *testing.T) {
	s, c := newStore()
	before := c.Now()
	s.Write("/x", "1")
	if c.Now() <= before {
		t.Fatal("write charged no time")
	}
	perOp := c.Now().Sub(before)
	min := costs.XSRequestInterrupts*costs.SoftIRQ + costs.XSRequestCrossings*costs.DomainCrossing
	if perOp < min {
		t.Fatalf("op cost %v below protocol floor %v", perOp, min)
	}
}

func TestLogRotationSpike(t *testing.T) {
	s, c := newStore()
	// Drive just under the rotation threshold, then measure the spike.
	for i := 0; i < costs.XSLogRotateLines-1; i++ {
		s.logAccess()
	}
	before := c.Now()
	s.logAccess()
	spike := c.Now().Sub(before)
	if spike < costs.XSLogRotateCost {
		t.Fatalf("rotation charged %v, want ≥%v", spike, costs.XSLogRotateCost)
	}
	if s.Count.LogRotations != 1 {
		t.Fatalf("rotations = %d", s.Count.LogRotations)
	}
}

func TestLoggingDisabledNoRotation(t *testing.T) {
	s, c := newStore()
	s.LoggingEnabled = false
	for i := 0; i < 2*costs.XSLogRotateLines; i++ {
		s.logAccess()
	}
	if s.Count.LogRotations != 0 || c.Now() != 0 {
		t.Fatal("disabled logging still charged")
	}
}

func TestWatchFiresOnSubtree(t *testing.T) {
	s, _ := newStore()
	var fired []string
	s.Watch("/backend/vif", "tok", func(path, token string) {
		fired = append(fired, path+"#"+token)
	})
	s.Write("/backend/vif/1/0/state", "1") // below prefix → fires
	s.Write("/backend/vbd/1/0/state", "1") // other tree → no fire
	s.Write("/backend/vif", "x")           // node itself → fires
	if len(fired) != 2 {
		t.Fatalf("watch fired %d times: %v", len(fired), fired)
	}
	if fired[0] != "/backend/vif/1/0/state#tok" {
		t.Fatalf("first fire = %q", fired[0])
	}
}

func TestWatchNotFiredOnPrefixSibling(t *testing.T) {
	s, _ := newStore()
	count := 0
	s.Watch("/backend/vif", "t", func(string, string) { count++ })
	s.Write("/backend/vif2/1", "x") // shares string prefix, different node
	if count != 0 {
		t.Fatal("watch fired on sibling with shared name prefix")
	}
}

func TestUnwatch(t *testing.T) {
	s, _ := newStore()
	count := 0
	id := s.Watch("/a", "t", func(string, string) { count++ })
	s.Write("/a/x", "1")
	s.Unwatch(id)
	s.Write("/a/y", "2")
	if count != 1 {
		t.Fatalf("fired %d times, want 1", count)
	}
	if s.NumWatches() != 0 {
		t.Fatal("watch not removed")
	}
}

func TestWatchFiresOnRmAndMkdir(t *testing.T) {
	s, _ := newStore()
	count := 0
	s.Watch("/a", "t", func(string, string) { count++ })
	s.Write("/a/x", "1") // fire 1
	if err := s.Rm("/a/x"); err != nil {
		t.Fatal(err)
	} // fire 2
	s.Mkdir("/a/dir") // fire 3
	s.Mkdir("/a/dir") // already exists → no fire
	if count != 3 {
		t.Fatalf("fired %d times, want 3", count)
	}
}

func TestTxnBasicCommit(t *testing.T) {
	s, _ := newStore()
	tx := s.TxnStart()
	tx.Write("/a/b", "1")
	tx.Write("/a/c", "2")
	if s.Exists("/a/b") {
		t.Fatal("txn write visible before commit")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Read("/a/b"); v != "1" {
		t.Fatal("txn write lost")
	}
}

func TestTxnReadsOwnWrites(t *testing.T) {
	s, _ := newStore()
	tx := s.TxnStart()
	tx.Write("/a", "own")
	if v, err := tx.Read("/a"); err != nil || v != "own" {
		t.Fatalf("own write invisible: %q %v", v, err)
	}
	tx.Rm("/a")
	if tx.Exists("/a") {
		t.Fatal("own delete invisible")
	}
	tx.Abort()
}

func TestTxnConflictOnRead(t *testing.T) {
	s, _ := newStore()
	s.Write("/k", "old")
	tx := s.TxnStart()
	if _, err := tx.Read("/k"); err != nil {
		t.Fatal(err)
	}
	s.Write("/k", "interloper") // concurrent modification
	tx.Write("/other", "x")
	if err := tx.Commit(); !errors.Is(err, ErrAgain) {
		t.Fatalf("conflicting commit: %v", err)
	}
	if s.Count.TxnConflicts != 1 {
		t.Fatalf("conflicts = %d", s.Count.TxnConflicts)
	}
}

func TestTxnConflictOnWrittenNode(t *testing.T) {
	s, _ := newStore()
	tx := s.TxnStart()
	tx.Write("/k", "mine")
	s.Write("/k", "theirs")
	if err := tx.Commit(); !errors.Is(err, ErrAgain) {
		t.Fatalf("write-write conflict: %v", err)
	}
	if v, _ := s.Read("/k"); v != "theirs" {
		t.Fatal("failed commit clobbered store")
	}
}

func TestTxnConflictOnAppearance(t *testing.T) {
	s, _ := newStore()
	tx := s.TxnStart()
	if tx.Exists("/new") {
		t.Fatal("phantom node")
	}
	s.Write("/new", "appeared")
	tx.Write("/x", "1")
	if err := tx.Commit(); !errors.Is(err, ErrAgain) {
		t.Fatalf("appearance conflict: %v", err)
	}
}

func TestTxnNoFalseConflict(t *testing.T) {
	s, _ := newStore()
	s.Write("/a", "1")
	tx := s.TxnStart()
	if _, err := tx.Read("/a"); err != nil {
		t.Fatal(err)
	}
	s.Write("/unrelated", "2")
	tx.Write("/b", "3")
	if err := tx.Commit(); err != nil {
		t.Fatalf("unrelated write caused conflict: %v", err)
	}
}

func TestTxnDirectoryConflictOnChildAdd(t *testing.T) {
	// Listing a directory and then having another committer add a
	// child must conflict: the parent's generation changed. This is
	// the mechanism by which sequential creations against shared
	// backend directories collide.
	s, _ := newStore()
	s.Write("/local/domain/1/name", "a")
	tx := s.TxnStart()
	if _, err := tx.Directory("/local/domain"); err != nil {
		t.Fatal(err)
	}
	s.Write("/local/domain/2/name", "b")
	tx.Write("/x", "1")
	if err := tx.Commit(); !errors.Is(err, ErrAgain) {
		t.Fatalf("directory conflict: %v", err)
	}
}

func TestTxnDirectoryMergesOwnWrites(t *testing.T) {
	s, _ := newStore()
	s.Write("/d/a", "1")
	tx := s.TxnStart()
	tx.Write("/d/b", "2")
	names, err := tx.Directory("/d")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Directory = %v", names)
	}
	tx.Abort()
}

func TestTxnHelperRetries(t *testing.T) {
	s, _ := newStore()
	s.Write("/k", "0")
	attempts := 0
	err := s.Txn(5, func(tx *Tx) error {
		attempts++
		if _, err := tx.Read("/k"); err != nil {
			return err
		}
		if attempts == 1 {
			s.Write("/k", "bump") // force one conflict
		}
		tx.Write("/out", fmt.Sprint(attempts))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2", attempts)
	}
	if v, _ := s.Read("/out"); v != "2" {
		t.Fatalf("committed value %q", v)
	}
}

func TestTxnHelperGivesUp(t *testing.T) {
	s, _ := newStore()
	s.Write("/k", "0")
	err := s.Txn(2, func(tx *Tx) error {
		if _, err := tx.Read("/k"); err != nil {
			return err
		}
		s.Write("/k", "always-conflict")
		tx.Write("/out", "x")
		return nil
	})
	if !errors.Is(err, ErrAgain) {
		t.Fatalf("exhausted retries: %v", err)
	}
}

func TestTxnBodyErrorAborts(t *testing.T) {
	s, _ := newStore()
	sentinel := errors.New("boom")
	err := s.Txn(3, func(tx *Tx) error {
		tx.Write("/x", "1")
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if s.Exists("/x") {
		t.Fatal("aborted txn leaked writes")
	}
	if len(s.openTxns) != 0 {
		t.Fatal("txn table leak")
	}
}

func TestCommitTwiceRejected(t *testing.T) {
	s, _ := newStore()
	tx := s.TxnStart()
	tx.Write("/a", "1")
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrBadTxn) {
		t.Fatalf("double commit: %v", err)
	}
}

func TestUniqueNameScanLinearCost(t *testing.T) {
	s, c := newStore()
	for i := 0; i < 50; i++ {
		if err := s.WriteUniqueName("/vm-names", fmt.Sprintf("k%d", i), fmt.Sprintf("guest%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	// Duplicate must be rejected.
	if err := s.WriteUniqueName("/vm-names", "dup", "guest7"); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate name: %v", err)
	}
	// Cost of adding one more name grows with population: compare the
	// 51st insert against the 1st.
	s2, c2 := newStore()
	before2 := c2.Now()
	_ = s2.WriteUniqueName("/vm-names", "k0", "g0")
	first := c2.Now().Sub(before2)
	before := c.Now()
	_ = s.WriteUniqueName("/vm-names", "k50", "guest-new")
	nth := c.Now().Sub(before)
	if nth <= first {
		t.Fatalf("uniqueness scan not linear: first=%v nth=%v", first, nth)
	}
}

func TestUniqueNameChargesSuccessScan(t *testing.T) {
	// The §4.2 uniqueness scan costs a full pass over the registered
	// names whether or not it finds a duplicate; the success path must
	// charge it too, not only the rejection path.
	const population = 40
	s, c := newStore()
	for i := 0; i < population; i++ {
		if err := s.WriteUniqueName("/vm-names", fmt.Sprintf("k%d", i), fmt.Sprintf("g%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	before := c.Now()
	opsBefore := s.Count.Ops
	if err := s.WriteUniqueName("/vm-names", "kx", "g-new"); err != nil {
		t.Fatal(err)
	}
	cost := c.Now().Sub(before)
	// Baseline: the same write without the uniqueness protocol.
	s2, c2 := newStore()
	for i := 0; i < population; i++ {
		s2.Write(fmt.Sprintf("/vm-names/k%d", i), fmt.Sprintf("g%d", i))
	}
	before2 := c2.Now()
	s2.Write("/vm-names/kx", "g-new")
	plain := c2.Now().Sub(before2)
	minExtra := time.Duration(population) * costs.XSNameUniquenessPerGuest
	if cost-plain < minExtra {
		t.Fatalf("successful WriteUniqueName charged only %v over a plain write, want ≥%v scan cost", cost-plain, minExtra)
	}
	// The scan is charged as a store-daemon op of its own.
	if got := s.Count.Ops - opsBefore; got != 2 {
		t.Fatalf("successful WriteUniqueName charged %d ops, want 2 (scan + write)", got)
	}
}

func TestWatchCostGrowsWithWatches(t *testing.T) {
	s, c := newStore()
	s.Write("/warm", "up")
	before := c.Now()
	s.Write("/k", "v")
	cheap := c.Now().Sub(before)
	for i := 0; i < 200; i++ {
		s.Watch(fmt.Sprintf("/w/%d", i), "t", func(string, string) {})
	}
	before = c.Now()
	s.Write("/k", "v2")
	costly := c.Now().Sub(before)
	if costly <= cheap {
		t.Fatalf("watch matching cost did not grow: %v vs %v", cheap, costly)
	}
}

// Property: committed transactions are atomic — either every write in
// the txn is visible or none is.
func TestTxnAtomicityQuick(t *testing.T) {
	f := func(keys []uint8, conflict bool) bool {
		if len(keys) == 0 {
			return true
		}
		s, _ := newStore()
		s.Write("/guard", "0")
		tx := s.TxnStart()
		if _, err := tx.Read("/guard"); err != nil {
			return false
		}
		for i, k := range keys {
			tx.Write(fmt.Sprintf("/t/%d_%d", i, k), "v")
		}
		if conflict {
			s.Write("/guard", "1")
		}
		err := tx.Commit()
		visible := 0
		for i, k := range keys {
			if s.Exists(fmt.Sprintf("/t/%d_%d", i, k)) {
				visible++
			}
		}
		if err == nil {
			return visible == len(keys)
		}
		return visible == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestConnectionCountSlowsOps(t *testing.T) {
	s, c := newStore()
	before := c.Now()
	s.Write("/k", "1")
	idle := c.Now().Sub(before)
	s.Connections = 1000
	before = c.Now()
	s.Write("/k", "2")
	loaded := c.Now().Sub(before)
	if loaded <= idle {
		t.Fatalf("op under 1000 connections (%v) not slower than idle (%v)", loaded, idle)
	}
	if loaded-idle < 1000*costs.XSPerConnection {
		t.Fatalf("connection scan under-charged: delta=%v", loaded-idle)
	}
}
