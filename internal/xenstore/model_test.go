package xenstore

// Model-checking harness: seeded random operation sequences run
// against the copy-on-write store AND a deliberately dumb reference
// model (a flat map of paths). Any divergence — values, listings,
// errors, watch firings, quota accounting, transaction conflicts, or a
// mid-sequence snapshot that fails to stay frozen — fails with the
// seed and operation index, so a failure reproduces by seed alone.
//
// The reference model mirrors the store's *semantics*, including its
// generation-bump discipline (parents bump when a child is created
// beneath them, leaves bump on value writes, Rm bumps the parent,
// SetPerm bumps nothing), so transaction conflict detection is
// predicted exactly rather than approximated.

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"
)

// ---------------------------------------------------------------------------
// Reference model
// ---------------------------------------------------------------------------

type refNode struct {
	value string
	owner int
	perm  Perm
	gen   uint64
}

type refWatch struct {
	prefix string
	token  string
	active bool
}

type watchEvent struct {
	path  string
	token string
}

type refStore struct {
	nodes   map[string]*refNode // normalized path → node; "/" always present
	gen     uint64
	quota   int
	owned   map[int]int
	watches []*refWatch // registration order (matches store delivery order)
	events  []watchEvent
}

func newRefStore(quota int) *refStore {
	return &refStore{
		nodes: map[string]*refNode{"/": {}},
		quota: quota,
		owned: map[int]int{},
	}
}

func refParent(p string) string {
	i := strings.LastIndexByte(p, '/')
	if i <= 0 {
		return "/"
	}
	return p[:i]
}

func (m *refStore) fire(path string) {
	for _, w := range m.watches {
		if w.active && watchMatches(w.prefix, path) {
			m.events = append(m.events, watchEvent{path, w.token})
		}
	}
}

// ensure creates missing components of p, owned by owner, bumping each
// parent's generation at the moment of creation (the store's top-down
// order). Reports how many components it created.
func (m *refStore) ensure(owner int, p string) int {
	segs := strings.Split(strings.Trim(p, "/"), "/")
	cur, parent := "", "/"
	created := 0
	for _, seg := range segs {
		cur += "/" + seg
		if _, ok := m.nodes[cur]; !ok {
			m.nodes[cur] = &refNode{owner: owner}
			m.gen++
			m.nodes[parent].gen = m.gen
			created++
		}
		parent = cur
	}
	return created
}

func (m *refStore) missing(p string) int {
	segs := strings.Split(strings.Trim(p, "/"), "/")
	cur, missing := "", 0
	for _, seg := range segs {
		cur += "/" + seg
		if missing > 0 {
			missing++
			continue
		}
		if _, ok := m.nodes[cur]; !ok {
			missing = 1
		}
	}
	return missing
}

func (m *refStore) writeAs(owner int, p, value string) {
	m.ensure(owner, p)
	m.gen++
	n := m.nodes[p]
	n.gen = m.gen
	n.value = value
	m.fire(p)
}

func (m *refStore) writeAsGuest(owner int, p, value string) error {
	if created := m.missing(p); created > 0 && owner != 0 {
		next := m.owned[owner] + created
		if m.quota > 0 && next > m.quota {
			return ErrQuota
		}
		m.owned[owner] = next
	}
	m.writeAs(owner, p, value)
	return nil
}

// debitOwner mirrors the store's per-node quota return.
func (m *refStore) debitOwner(owner int) {
	if owner == 0 {
		return
	}
	if m.owned[owner]--; m.owned[owner] <= 0 {
		delete(m.owned, owner)
	}
}

func (m *refStore) read(p string) (string, error) {
	n, ok := m.nodes[p]
	if !ok {
		return "", ErrNoEnt
	}
	return n.value, nil
}

func (m *refStore) exists(p string) bool {
	_, ok := m.nodes[p]
	return ok
}

func (m *refStore) children(p string) []string {
	prefix := p + "/"
	if p == "/" {
		prefix = "/"
	}
	var out []string
	for q := range m.nodes {
		if q == "/" || !strings.HasPrefix(q, prefix) {
			continue
		}
		rest := q[len(prefix):]
		if !strings.ContainsRune(rest, '/') {
			out = append(out, rest)
		}
	}
	sort.Strings(out)
	return out
}

func (m *refStore) directory(p string) ([]string, error) {
	if !m.exists(p) {
		return nil, ErrNoEnt
	}
	return m.children(p), nil
}

func (m *refStore) subtreeSize(p string) int {
	count := 0
	for q := range m.nodes {
		if q == p || strings.HasPrefix(q, p+"/") {
			count++
		}
	}
	return count
}

func (m *refStore) rm(p string) error {
	if p == "/" {
		return errors.New("cannot remove root")
	}
	if !m.exists(p) {
		return ErrNoEnt
	}
	for q := range m.nodes {
		if q == p || strings.HasPrefix(q, p+"/") {
			m.debitOwner(m.nodes[q].owner)
			delete(m.nodes, q)
		}
	}
	m.gen++
	m.nodes[refParent(p)].gen = m.gen
	m.fire(p)
	return nil
}

func (m *refStore) rmOwned(owner int, p string) error {
	if !m.exists(p) {
		return ErrNoEnt
	}
	// Quota returns to each node's actual owner inside rm.
	return m.rm(p)
}

func (m *refStore) mkdir(p string) {
	if m.ensure(0, p) > 0 {
		m.fire(p)
	}
}

func (m *refStore) setPerm(p string, owner int, perm Perm) error {
	n, ok := m.nodes[p]
	if !ok {
		return ErrNoEnt
	}
	if n.owner != owner {
		m.debitOwner(n.owner)
		if owner != 0 {
			m.owned[owner]++
		}
	}
	n.owner = owner
	n.perm = perm
	return nil
}

// mayRead / mayWrite mirror perms.go, including the plain HasPrefix on
// the guest's own subtree.
func (m *refStore) mayRead(domid int, p string, n *refNode) bool {
	if domid == 0 || n.owner == domid {
		return true
	}
	if strings.HasPrefix(p, guestDomainPrefix(domid)) {
		return true
	}
	return n.perm == PermRead || n.perm == PermBoth
}

func (m *refStore) mayWrite(domid int, p string, n *refNode) bool {
	if domid == 0 || (n != nil && n.owner == domid) {
		return true
	}
	if strings.HasPrefix(p, guestDomainPrefix(domid)) {
		return true
	}
	return n != nil && (n.perm == PermWrite || n.perm == PermBoth)
}

func (m *refStore) guestRead(domid int, p string) (string, error) {
	n, ok := m.nodes[p]
	if !ok {
		return "", ErrNoEnt
	}
	if !m.mayRead(domid, p, n) {
		return "", ErrPermission
	}
	return n.value, nil
}

func (m *refStore) guestWrite(domid int, p, value string) error {
	n := m.nodes[p]
	if !m.mayWrite(domid, p, n) {
		return ErrPermission
	}
	return m.writeAsGuest(domid, p, value)
}

func (m *refStore) writeUniqueName(dir, key, name string) error {
	if m.exists(dir) {
		for _, c := range m.children(dir) {
			if m.nodes[dir+"/"+c].value == name {
				return ErrExists
			}
		}
	}
	m.writeAs(0, dir+"/"+key, name)
	return nil
}

// refTx mirrors txn.go's buffered transaction.
type refTx struct {
	startGen uint64
	readGens map[string]uint64
	writes   map[string]*string
	order    []string
}

func (m *refStore) txnStart() *refTx {
	return &refTx{
		startGen: m.gen,
		readGens: map[string]uint64{},
		writes:   map[string]*string{},
	}
}

func (t *refTx) observe(m *refStore, p string) {
	if _, ok := t.readGens[p]; ok {
		return
	}
	if n, ok := m.nodes[p]; ok {
		t.readGens[p] = n.gen
	} else {
		t.readGens[p] = 0
	}
}

func (t *refTx) read(m *refStore, p string) (string, error) {
	if v, ok := t.writes[p]; ok {
		if v == nil {
			return "", ErrNoEnt
		}
		return *v, nil
	}
	t.observe(m, p)
	return m.read(p)
}

func (t *refTx) exists(m *refStore, p string) bool {
	if v, ok := t.writes[p]; ok {
		return v != nil
	}
	t.observe(m, p)
	return m.exists(p)
}

func (t *refTx) directory(m *refStore, p string) ([]string, error) {
	t.observe(m, p)
	names, err := m.directory(p)
	if err != nil && len(t.writes) == 0 {
		return nil, err
	}
	set := make(map[string]bool, len(names))
	for _, n := range names {
		set[n] = true
	}
	for wp, v := range t.writes {
		if !strings.HasPrefix(wp, p+"/") {
			continue
		}
		rest := strings.TrimPrefix(wp, p+"/")
		first := strings.SplitN(rest, "/", 2)[0]
		if v == nil && rest == first {
			delete(set, first)
		} else if v != nil {
			set[first] = true
		}
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out, nil
}

func (t *refTx) write(p, v string) {
	if _, ok := t.writes[p]; !ok {
		t.order = append(t.order, p)
	}
	t.writes[p] = &v
}

func (t *refTx) rm(p string) {
	if _, ok := t.writes[p]; !ok {
		t.order = append(t.order, p)
	}
	t.writes[p] = nil
}

// commit reports whether the transaction conflicts (ErrAgain on the
// real store) and applies it when it does not.
func (t *refTx) commit(m *refStore) bool {
	conflict := false
	for p, g := range t.readGens {
		n, ok := m.nodes[p]
		if (!ok && g != 0) || (ok && n.gen != g) {
			conflict = true
			break
		}
	}
	if !conflict {
		for p := range t.writes {
			if n, ok := m.nodes[p]; ok && n.gen > t.startGen {
				conflict = true
				break
			}
		}
	}
	if conflict {
		return true
	}
	for _, p := range t.order {
		if v := t.writes[p]; v == nil {
			_ = m.rm(p)
		} else {
			m.writeAs(0, p, *v)
		}
	}
	return false
}

// snapshotCopy deep-copies the model's node map for frozen comparison.
func (m *refStore) snapshotCopy() map[string]refNode {
	out := make(map[string]refNode, len(m.nodes))
	for p, n := range m.nodes {
		out[p] = *n
	}
	return out
}

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

var modelSegs = []string{"a", "b", "c", "d", "local", "domain", "0", "1", "2", "3"}

func randPath(r *rand.Rand) string {
	depth := 1 + r.Intn(3)
	var sb strings.Builder
	for i := 0; i < depth; i++ {
		sb.WriteByte('/')
		sb.WriteString(modelSegs[r.Intn(len(modelSegs))])
	}
	return sb.String()
}

func randValue(r *rand.Rand) string {
	return fmt.Sprintf("v%d", r.Intn(40))
}

// frozenPair is a mid-sequence snapshot with its model copy.
type frozenPair struct {
	opIndex int
	sn      *Snapshot
	want    map[string]refNode
}

// openTxn pairs a live transaction with its model twin.
type openTxn struct {
	tx *Tx
	rt *refTx
}

func sameErr(got error, want error) bool {
	if want == nil {
		return got == nil
	}
	return errors.Is(got, want)
}

func runModelSequence(t *testing.T, seed int64, ops int) {
	r := rand.New(rand.NewSource(seed))
	s, _ := newStore()
	const quota = 10 // small enough that guests hit ErrQuota in-sequence
	s.SetNodeQuota(quota)
	m := newRefStore(quota)

	var realEvents []watchEvent
	type liveWatch struct {
		id WatchID
		rw *refWatch
	}
	var watches []liveWatch

	var txns []openTxn
	var frozen []frozenPair

	fail := func(op int, format string, args ...any) {
		t.Helper()
		t.Fatalf("seed %d op %d: %s", seed, op, fmt.Sprintf(format, args...))
	}

	for op := 0; op < ops; op++ {
		switch k := r.Intn(100); {
		case k < 18: // Dom0 write
			p, v := randPath(r), randValue(r)
			s.Write(p, v)
			m.writeAs(0, p, v)
		case k < 26: // guest write under quota
			owner, p, v := 1+r.Intn(3), randPath(r), randValue(r)
			gotErr := s.WriteAsGuest(owner, p, v)
			wantErr := m.writeAsGuest(owner, p, v)
			if !sameErr(gotErr, wantErr) {
				fail(op, "WriteAsGuest(%d, %q): store %v, model %v", owner, p, gotErr, wantErr)
			}
		case k < 30: // ACL-checked guest write
			domid, p, v := 1+r.Intn(3), randPath(r), randValue(r)
			gotErr := s.GuestWrite(domid, p, v)
			wantErr := m.guestWrite(domid, p, v)
			if !sameErr(gotErr, wantErr) {
				fail(op, "GuestWrite(%d, %q): store %v, model %v", domid, p, gotErr, wantErr)
			}
		case k < 40: // read
			p := randPath(r)
			got, gotErr := s.Read(p)
			want, wantErr := m.read(p)
			if got != want || !sameErr(gotErr, wantErr) {
				fail(op, "Read(%q): store (%q, %v), model (%q, %v)", p, got, gotErr, want, wantErr)
			}
		case k < 44: // guest read with ACLs
			domid, p := 1+r.Intn(3), randPath(r)
			got, gotErr := s.GuestRead(domid, p)
			want, wantErr := m.guestRead(domid, p)
			if got != want || !sameErr(gotErr, wantErr) {
				fail(op, "GuestRead(%d, %q): store (%q, %v), model (%q, %v)", domid, p, got, gotErr, want, wantErr)
			}
		case k < 49: // exists
			p := randPath(r)
			if got, want := s.Exists(p), m.exists(p); got != want {
				fail(op, "Exists(%q): store %v, model %v", p, got, want)
			}
		case k < 56: // directory
			p := randPath(r)
			got, gotErr := s.Directory(p)
			want, wantErr := m.directory(p)
			if !sameErr(gotErr, wantErr) || !equalStrings(got, want) {
				fail(op, "Directory(%q): store (%v, %v), model (%v, %v)", p, got, gotErr, want, wantErr)
			}
		case k < 61: // rm
			p := randPath(r)
			gotErr := s.Rm(p)
			wantErr := m.rm(p)
			if !sameErr(gotErr, wantErr) {
				fail(op, "Rm(%q): store %v, model %v", p, gotErr, wantErr)
			}
		case k < 63: // rm with quota return
			owner, p := 1+r.Intn(3), randPath(r)
			gotErr := s.RmOwned(owner, p)
			wantErr := m.rmOwned(owner, p)
			if !sameErr(gotErr, wantErr) {
				fail(op, "RmOwned(%d, %q): store %v, model %v", owner, p, gotErr, wantErr)
			}
		case k < 66: // mkdir
			p := randPath(r)
			s.Mkdir(p)
			m.mkdir(p)
		case k < 70: // setperm (no generation bump)
			p, owner, perm := randPath(r), r.Intn(4), Perm(r.Intn(4))
			gotErr := s.SetPerm(p, owner, perm)
			wantErr := m.setPerm(p, owner, perm)
			if !sameErr(gotErr, wantErr) {
				fail(op, "SetPerm(%q): store %v, model %v", p, gotErr, wantErr)
			}
		case k < 72: // permof
			p := randPath(r)
			gotO, gotP, gotErr := s.PermOf(p)
			n, ok := m.nodes[p]
			if !ok {
				if !errors.Is(gotErr, ErrNoEnt) {
					fail(op, "PermOf(%q): store %v, model ErrNoEnt", p, gotErr)
				}
			} else if gotErr != nil || gotO != n.owner || gotP != n.perm {
				fail(op, "PermOf(%q): store (%d, %v, %v), model (%d, %v)", p, gotO, gotP, gotErr, n.owner, n.perm)
			}
		case k < 74: // unique-name registration
			dir, key, name := randPath(r), modelSegs[r.Intn(len(modelSegs))], randValue(r)
			gotErr := s.WriteUniqueName(dir, key, name)
			wantErr := m.writeUniqueName(dir, key, name)
			if !sameErr(gotErr, wantErr) {
				fail(op, "WriteUniqueName(%q, %q, %q): store %v, model %v", dir, key, name, gotErr, wantErr)
			}
		case k < 77: // register a watch
			p, tok := randPath(r), fmt.Sprintf("t%d", r.Intn(8))
			rw := &refWatch{prefix: p, token: tok, active: true}
			id := s.Watch(p, tok, func(path, token string) {
				realEvents = append(realEvents, watchEvent{path, token})
			})
			m.watches = append(m.watches, rw)
			watches = append(watches, liveWatch{id: id, rw: rw})
		case k < 79: // drop a watch
			if len(watches) > 0 {
				i := r.Intn(len(watches))
				s.Unwatch(watches[i].id)
				watches[i].rw.active = false
				watches = append(watches[:i], watches[i+1:]...)
			}
		case k < 82: // freeze a snapshot mid-sequence
			frozen = append(frozen, frozenPair{opIndex: op, sn: s.Snapshot(), want: m.snapshotCopy()})
		default: // transaction step (interleaved: up to 3 open at once)
			if len(txns) < 3 && (len(txns) == 0 || r.Intn(2) == 0) {
				txns = append(txns, openTxn{tx: s.TxnStart(), rt: m.txnStart()})
				continue
			}
			i := r.Intn(len(txns))
			o := txns[i]
			switch r.Intn(7) {
			case 0: // txn read
				p := randPath(r)
				got, gotErr := o.tx.Read(p)
				want, wantErr := o.rt.read(m, p)
				if got != want || !sameErr(gotErr, wantErr) {
					fail(op, "Tx.Read(%q): store (%q, %v), model (%q, %v)", p, got, gotErr, want, wantErr)
				}
			case 1: // txn exists
				p := randPath(r)
				if got, want := o.tx.Exists(p), o.rt.exists(m, p); got != want {
					fail(op, "Tx.Exists(%q): store %v, model %v", p, got, want)
				}
			case 2: // txn directory
				p := randPath(r)
				got, gotErr := o.tx.Directory(p)
				want, wantErr := o.rt.directory(m, p)
				if !sameErr(gotErr, wantErr) || !equalStrings(got, want) {
					fail(op, "Tx.Directory(%q): store (%v, %v), model (%v, %v)", p, got, gotErr, want, wantErr)
				}
			case 3: // txn write
				p, v := randPath(r), randValue(r)
				o.tx.Write(p, v)
				o.rt.write(p, v)
			case 4: // txn rm
				p := randPath(r)
				o.tx.Rm(p)
				o.rt.rm(p)
			case 5: // commit — conflict prediction must match exactly
				gotErr := o.tx.Commit()
				wantConflict := o.rt.commit(m)
				if wantConflict != errors.Is(gotErr, ErrAgain) || (!wantConflict && gotErr != nil) {
					fail(op, "Tx.Commit: store %v, model conflict=%v", gotErr, wantConflict)
				}
				txns = append(txns[:i], txns[i+1:]...)
			case 6: // abort
				o.tx.Abort()
				txns = append(txns[:i], txns[i+1:]...)
			}
		}

		if len(realEvents) != len(m.events) {
			fail(op, "watch event count diverged: store %d, model %d (store %v, model %v)",
				len(realEvents), len(m.events), realEvents, m.events)
		}
	}

	for _, o := range txns {
		o.tx.Abort()
	}

	// Watch firing order and content must match event-for-event.
	for i := range m.events {
		if realEvents[i] != m.events[i] {
			t.Fatalf("seed %d: watch event %d diverged: store %+v, model %+v", seed, i, realEvents[i], m.events[i])
		}
	}

	// Full end-state equivalence, read through a snapshot so the
	// comparison itself charges nothing.
	end := s.Snapshot()
	if got, want := end.NumNodes(), len(m.nodes); got != want {
		t.Fatalf("seed %d: node count: store %d, model %d", seed, got, want)
	}
	for p, n := range m.nodes {
		v, err := end.Read(p)
		if err != nil || v != n.value {
			t.Fatalf("seed %d: end state %q: store (%q, %v), model %q", seed, p, v, err, n.value)
		}
		got, err := end.Directory(p)
		if err != nil || !equalStrings(got, m.children(p)) {
			t.Fatalf("seed %d: end children of %q: store (%v, %v), model %v", seed, p, got, err, m.children(p))
		}
	}
	for owner := 1; owner <= 3; owner++ {
		if got, want := s.OwnerNodes(owner), m.owned[owner]; got != want {
			t.Fatalf("seed %d: quota ledger for domain %d: store %d, model %d", seed, owner, got, want)
		}
	}

	// The store must also self-audit clean after every sequence: cached
	// sizes, child counts, and the quota ledger all match the tree.
	if v := s.CheckConsistency(); len(v) != 0 {
		t.Fatalf("seed %d: CheckConsistency: %v", seed, v)
	}

	// Every mid-sequence snapshot must still match the model copy taken
	// at the same instant — frozen, regardless of everything since.
	for _, fz := range frozen {
		if got, want := fz.sn.NumNodes(), len(fz.want); got != want {
			t.Fatalf("seed %d: snapshot@op%d node count: store %d, model %d", seed, fz.opIndex, got, want)
		}
		for p, n := range fz.want {
			v, err := fz.sn.Read(p)
			if err != nil || v != n.value {
				t.Fatalf("seed %d: snapshot@op%d %q: store (%q, %v), model %q", seed, fz.opIndex, p, v, err, n.value)
			}
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestModelCheckStore runs ≥1,000 seeded sequences (the acceptance
// floor) of ~90 operations each. A failure message carries the seed;
// rerun with -run TestModelCheckStore on the same build to reproduce.
func TestModelCheckStore(t *testing.T) {
	const sequences = 1200
	const opsPerSequence = 90
	start := time.Now()
	for seed := int64(1); seed <= sequences; seed++ {
		runModelSequence(t, seed, opsPerSequence)
	}
	if d := time.Since(start); d > 30*time.Second {
		t.Fatalf("model check took %v for %d sequences, budget is 30s", d, sequences)
	}
}

// TestModelCheckLongSequences drives fewer but much longer sequences,
// deep enough for log rotation (13,215 lines) and quota churn to occur
// inside a single store lifetime.
func TestModelCheckLongSequences(t *testing.T) {
	for seed := int64(10_000); seed < 10_004; seed++ {
		runModelSequence(t, seed, 4000)
	}
}
