package xenstore

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

// Model-based testing: the store must agree with a trivial reference
// model (a flat map plus implicit directories) under arbitrary op
// sequences. This is the strongest guard we have on the tree logic
// that every toolstack depends on.

type storeModel struct {
	values map[string]string // path → value (leaf writes only)
}

func newModel() *storeModel { return &storeModel{values: make(map[string]string)} }

func (m *storeModel) write(path, val string) { m.values[normalize(path)] = val }

func (m *storeModel) rm(path string) bool {
	p := normalize(path)
	found := false
	for k := range m.values {
		if k == p || strings.HasPrefix(k, p+"/") {
			delete(m.values, k)
			found = true
		}
	}
	return found || m.isDir(p)
}

// isDir reports whether p is an implicit directory (prefix of some
// value path) in the model.
func (m *storeModel) isDir(p string) bool {
	for k := range m.values {
		if strings.HasPrefix(k, p+"/") {
			return true
		}
	}
	return false
}

func (m *storeModel) read(path string) (string, bool) {
	v, ok := m.values[normalize(path)]
	return v, ok
}

// children lists direct children of p.
func (m *storeModel) children(p string) []string {
	p = normalize(p)
	set := map[string]bool{}
	for k := range m.values {
		var rest string
		if p == "/" {
			rest = strings.TrimPrefix(k, "/")
		} else if strings.HasPrefix(k, p+"/") {
			rest = strings.TrimPrefix(k, p+"/")
		} else {
			continue
		}
		if rest == "" {
			continue
		}
		set[strings.SplitN(rest, "/", 2)[0]] = true
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// modelPaths is a fixed path pool so random ops collide meaningfully.
var modelPaths = []string{
	"/local/domain/1/name",
	"/local/domain/1/device/vif/0/state",
	"/local/domain/2/name",
	"/local/domain/2/device/vif/0/state",
	"/local/domain/2/device/vbd/0/state",
	"/vm/a/uuid",
	"/vm/b/uuid",
	"/tool/generation",
}

func TestStoreAgreesWithModel(t *testing.T) {
	f := func(ops []uint16) bool {
		s, _ := newStore()
		s.LoggingEnabled = false
		m := newModel()
		for step, op := range ops {
			path := modelPaths[int(op)%len(modelPaths)]
			switch (op / 16) % 3 {
			case 0: // write
				val := fmt.Sprintf("v%d", step)
				s.Write(path, val)
				m.write(path, val)
			case 1: // rm (of the leaf or one of its ancestors)
				target := path
				if op%2 == 0 {
					// Remove an ancestor directory sometimes.
					parts := strings.Split(strings.Trim(path, "/"), "/")
					cut := 1 + int(op)%(len(parts)-1)
					target = "/" + strings.Join(parts[:cut], "/")
				}
				gotErr := s.Rm(target) != nil
				wantMissing := !m.rm(target)
				// The store may retain empty directories after their
				// leaves were removed, so it can succeed where the
				// model says "missing". The reverse — an error where
				// the model still has content — is a real bug.
				if gotErr && !wantMissing {
					t.Logf("step %d: rm(%s) errored but model has content", step, target)
					return false
				}
			case 2: // read
				got, err := s.Read(path)
				want, ok := m.read(path)
				if ok {
					// Model leaf must exist with the same value…
					if err != nil || got != want {
						t.Logf("step %d: read(%s) = %q,%v want %q", step, path, got, err, want)
						return false
					}
				} else if err == nil && got != "" {
					// …absent model leaves may exist as empty
					// directories in the store, but never with a value.
					t.Logf("step %d: read(%s) = %q, model absent", step, path, got)
					return false
				}
			}
		}
		// Directory listings agree wherever the model has content.
		for _, dir := range []string{"/local/domain", "/vm", "/local/domain/2/device"} {
			want := m.children(dir)
			got, err := s.Directory(dir)
			if err != nil {
				if len(want) != 0 {
					t.Logf("Directory(%s) missing, model has %v", dir, want)
					return false
				}
				continue
			}
			// The store may hold extra empty dirs (from writes whose
			// leaves were removed individually); every model child must
			// be present.
			set := map[string]bool{}
			for _, g := range got {
				set[g] = true
			}
			for _, w := range want {
				if !set[w] {
					t.Logf("Directory(%s) = %v, missing %q", dir, got, w)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
