package xenstore

import (
	"errors"
	"fmt"
	"testing"
)

func TestCxenstoredSlower(t *testing.T) {
	// Footnote 3: "Results with cxenstored show much higher overheads."
	elapsed := func(v Variant) int64 {
		s, c := newStore()
		s.SetVariant(v)
		s.Connections = 200
		for i := 0; i < 100; i++ {
			s.Write(fmt.Sprintf("/local/domain/%d/name", i), "g")
		}
		return int64(c.Now())
	}
	ox := elapsed(Oxenstored)
	cx := elapsed(Cxenstored)
	if cx <= ox {
		t.Fatalf("cxenstored (%d) not slower than oxenstored (%d)", cx, ox)
	}
	if float64(cx)/float64(ox) < 1.5 {
		t.Fatalf("cxenstored only %.2f× slower", float64(cx)/float64(ox))
	}
}

func TestVariantNames(t *testing.T) {
	s, _ := newStore()
	if s.VariantName() != "oxenstored" {
		t.Fatalf("default variant %q", s.VariantName())
	}
	s.SetVariant(Cxenstored)
	if s.VariantName() != "cxenstored" {
		t.Fatalf("variant %q", s.VariantName())
	}
}

func TestGuestNodeQuota(t *testing.T) {
	s, _ := newStore()
	s.SetNodeQuota(10)
	// A guest can create up to its quota…
	for i := 0; i < 10; i++ {
		if err := s.WriteAsGuest(5, fmt.Sprintf("/local/domain/5/data/k%d", i), "v"); err != nil {
			// Intermediate dirs count too; accept an early quota hit
			// but require at least a few writes to land.
			if i < 3 {
				t.Fatalf("write %d: %v", i, err)
			}
			break
		}
	}
	// …and is eventually refused.
	var quotaErr error
	for i := 0; i < 20; i++ {
		if err := s.WriteAsGuest(5, fmt.Sprintf("/local/domain/5/more/k%d", i), "v"); err != nil {
			quotaErr = err
			break
		}
	}
	if !errors.Is(quotaErr, ErrQuota) {
		t.Fatalf("quota never enforced: %v", quotaErr)
	}
	if s.OwnerNodes(5) > 10 {
		t.Fatalf("owner holds %d nodes over quota", s.OwnerNodes(5))
	}
}

func TestQuotaDoesNotBindDom0(t *testing.T) {
	s, _ := newStore()
	s.SetNodeQuota(5)
	for i := 0; i < 50; i++ {
		if err := s.WriteAsGuest(0, fmt.Sprintf("/toolstack/k%d", i), "v"); err != nil {
			t.Fatalf("dom0 write refused: %v", err)
		}
	}
}

func TestQuotaReturnedOnRemove(t *testing.T) {
	s, _ := newStore()
	s.SetNodeQuota(8)
	for i := 0; i < 6; i++ {
		if err := s.WriteAsGuest(7, fmt.Sprintf("/d7/k%d", i), "v"); err != nil {
			t.Fatal(err)
		}
	}
	held := s.OwnerNodes(7)
	if held == 0 {
		t.Fatal("no quota charged")
	}
	if err := s.RmOwned(7, "/d7"); err != nil {
		t.Fatal(err)
	}
	if s.OwnerNodes(7) != 0 {
		t.Fatalf("quota not returned: %d", s.OwnerNodes(7))
	}
	// Fresh writes fit again.
	if err := s.WriteAsGuest(7, "/d7/new", "v"); err != nil {
		t.Fatalf("write after cleanup: %v", err)
	}
}

func TestQuotaRejectionLeavesStoreClean(t *testing.T) {
	s, _ := newStore()
	s.SetNodeQuota(2)
	_ = s.WriteAsGuest(3, "/g3/a", "v") // uses 2 nodes (g3, a)
	if err := s.WriteAsGuest(3, "/g3/b/c/d", "v"); !errors.Is(err, ErrQuota) {
		t.Fatalf("expected quota error, got %v", err)
	}
	if s.Exists("/g3/b") {
		t.Fatal("rejected write left partial nodes")
	}
}

func TestQuotaDisabled(t *testing.T) {
	s, _ := newStore()
	s.SetNodeQuota(0)
	for i := 0; i < 2000; i++ {
		if err := s.WriteAsGuest(9, fmt.Sprintf("/g9/k%d", i), "v"); err != nil {
			t.Fatalf("write %d with quota disabled: %v", i, err)
		}
	}
}

// TestWatchQuota: guest watch registration is bounded per domain
// (xenstored's quota-nb-watch-per-domain), the refusal is the typed
// *ErrQuotaExceeded that still matches the ErrQuota sentinel, and
// unwatching returns the quota.
func TestWatchQuota(t *testing.T) {
	s, _ := newStore()
	s.SetWatchQuota(3)
	var ids []WatchID
	for i := 0; i < 3; i++ {
		id, err := s.WatchAsGuest(7, fmt.Sprintf("/g/%d", i), "tok", func(string, string) {})
		if err != nil {
			t.Fatalf("watch %d under quota: %v", i, err)
		}
		ids = append(ids, id)
	}
	if s.OwnerWatches(7) != 3 {
		t.Fatalf("OwnerWatches = %d, want 3", s.OwnerWatches(7))
	}
	_, err := s.WatchAsGuest(7, "/g/over", "tok", func(string, string) {})
	if err == nil {
		t.Fatal("4th watch admitted past a quota of 3")
	}
	var qe *ErrQuotaExceeded
	if !errors.As(err, &qe) {
		t.Fatalf("refusal not typed: %T %v", err, err)
	}
	if qe.Resource != "watches" || qe.Domain != 7 || qe.Limit != 3 {
		t.Fatalf("typed refusal fields: %+v", qe)
	}
	if !errors.Is(err, ErrQuota) {
		t.Fatal("typed refusal does not match the ErrQuota sentinel")
	}
	// Another domain is unaffected; dom0 is never quota'd.
	if _, err := s.WatchAsGuest(8, "/g/other", "tok", func(string, string) {}); err != nil {
		t.Fatalf("domain 8 blocked by domain 7's quota: %v", err)
	}
	for i := 0; i < 5; i++ {
		if _, err := s.WatchAsGuest(0, "/dom0", "tok", func(string, string) {}); err != nil {
			t.Fatalf("dom0 watch quota'd: %v", err)
		}
	}
	// Quota returns on unwatch.
	s.Unwatch(ids[0])
	if s.OwnerWatches(7) != 2 {
		t.Fatalf("OwnerWatches after unwatch = %d, want 2", s.OwnerWatches(7))
	}
	if _, err := s.WatchAsGuest(7, "/g/again", "tok", func(string, string) {}); err != nil {
		t.Fatalf("watch after freeing quota: %v", err)
	}
	// Token teardown returns quota too.
	if s.UnwatchByToken("tok") == 0 {
		t.Fatal("token teardown removed nothing")
	}
	if s.OwnerWatches(7) != 0 || s.OwnerWatches(8) != 0 {
		t.Fatalf("quota not returned on token teardown: %d/%d", s.OwnerWatches(7), s.OwnerWatches(8))
	}
}

// TestNodeQuotaTyped: the node-quota refusal carries the typed fields
// and keeps matching the sentinel existing callers check.
func TestNodeQuotaTyped(t *testing.T) {
	s, _ := newStore()
	s.SetNodeQuota(2)
	if err := s.WriteAsGuest(5, "/local/a", "x"); err == nil {
		// /local + /a = 2 nodes: at quota, not over.
	} else if !errors.Is(err, ErrQuota) {
		t.Fatalf("unexpected error: %v", err)
	}
	err := s.WriteAsGuest(5, "/local/b", "x")
	if err == nil {
		t.Fatal("write past node quota admitted")
	}
	var qe *ErrQuotaExceeded
	if !errors.As(err, &qe) || qe.Resource != "nodes" || qe.Domain != 5 || qe.Limit != 2 {
		t.Fatalf("typed node refusal: %T %+v", err, err)
	}
}
