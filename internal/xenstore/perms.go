package xenstore

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Node access control, as real xenstored enforces it: every node has
// an owning domain plus an access class for others. The toolstack
// (Dom0) bypasses checks; guests may read shared control data but can
// only write inside their own subtree. This is part of the isolation
// story the paper leans on — a guest must not be able to tamper with
// another guest's device negotiation.

// Perm is a node's access class for non-owners.
type Perm int

// Access classes (xenstored's n/r/w/b).
const (
	// PermNone: only the owner (and Dom0) may read or write.
	PermNone Perm = iota
	// PermRead: others may read.
	PermRead
	// PermWrite: others may write (rare; e.g. shared request dirs).
	PermWrite
	// PermBoth: others may read and write.
	PermBoth
)

func (p Perm) String() string {
	switch p {
	case PermRead:
		return "r"
	case PermWrite:
		return "w"
	case PermBoth:
		return "b"
	}
	return "n"
}

// ErrPermission is returned when a guest violates a node ACL.
var ErrPermission = errors.New("xenstore: permission denied")

// SetPerm sets a node's owner and access class (toolstack operation).
// Like real xenstored's SET_PERMS it does not bump the node's
// generation (ACL changes do not conflict transactions), but in the
// immutable tree it still publishes a fresh spine.
func (s *Store) SetPerm(path string, owner int, perm Perm) error {
	s.enter()
	defer s.exit()
	it := hashSegments(path)
	oldOwner := 0
	newRoot, touched, found := updateAt(s.pl, s.loaded().root, &it, func(n *node) *node {
		oldOwner = n.owner
		c := n.clone(s.pl)
		c.owner = owner
		c.perm = perm
		s.pl.retireNode(n)
		return c
	})
	s.chargeOp(touched)
	if !found {
		return &noEntError{path}
	}
	s.publish(newRoot)
	// Ownership moved: the node's quota charge follows it (recorded,
	// not enforced — SET_PERMS is a Dom0 operation and must not fail
	// halfway), keeping ledger == tree for every domain.
	if oldOwner != owner {
		if oldOwner != 0 {
			if next := s.ownerNodes[oldOwner] - 1; next <= 0 {
				delete(s.ownerNodes, oldOwner)
			} else {
				s.ownerNodes[oldOwner] = next
			}
		}
		if owner != 0 {
			if s.ownerNodes == nil {
				s.ownerNodes = make(map[int]int)
			}
			s.ownerNodes[owner]++
		}
	}
	return nil
}

// PermOf reports a node's owner and access class (as of the end of the
// charged round trip, like Read).
func (s *Store) PermOf(path string) (owner int, perm Perm, err error) {
	s.enter()
	defer s.exit()
	n, touched := s.resolve(path)
	pubs := s.pubs
	s.chargeOp(touched)
	if n == nil {
		return 0, PermNone, &noEntError{path}
	}
	if s.pubs != pubs {
		if cur, _ := s.resolve(path); cur != nil {
			n = cur
		}
	}
	return n.owner, n.perm, nil
}

// hasGuestPrefix reports whether p (normalized) starts with the bytes
// of "/local/domain/<domid>" — exactly strings.HasPrefix against the
// formatted prefix, without the Sprintf. (The plain byte-prefix
// semantics are deliberate: they are what the historical code checked,
// and guest path authority tests pin them.)
func hasGuestPrefix(domid int, p string) bool {
	const pre = "/local/domain/"
	if !strings.HasPrefix(p, pre) {
		return false
	}
	rest := p[len(pre):]
	var buf [20]byte
	d := strconv.AppendInt(buf[:0], int64(domid), 10)
	if len(rest) < len(d) {
		return false
	}
	for i := range d {
		if rest[i] != d[i] {
			return false
		}
	}
	return true
}

// guestDomainPrefix is the subtree a guest owns implicitly.
func guestDomainPrefix(domid int) string {
	return fmt.Sprintf("/local/domain/%d", domid)
}

// mayRead reports whether domid may read the node at path.
func (s *Store) mayRead(domid int, path string, n *node) bool {
	if domid == 0 || n.owner == domid {
		return true
	}
	if hasGuestPrefix(domid, normalize(path)) {
		return true
	}
	return n.perm == PermRead || n.perm == PermBoth
}

// mayWrite reports whether domid may write the node at path.
func (s *Store) mayWrite(domid int, path string, n *node) bool {
	if domid == 0 || (n != nil && n.owner == domid) {
		return true
	}
	if hasGuestPrefix(domid, normalize(path)) {
		return true
	}
	return n != nil && (n.perm == PermWrite || n.perm == PermBoth)
}

// GuestRead is a read issued by a guest domain, subject to ACLs.
func (s *Store) GuestRead(domid int, path string) (string, error) {
	s.enter()
	defer s.exit()
	n, touched := s.resolve(path)
	pubs := s.pubs
	s.chargeOp(touched)
	if n == nil {
		return "", &noEntError{path}
	}
	// End-of-round-trip semantics, like Read.
	if s.pubs != pubs {
		if cur, _ := s.resolve(path); cur != nil {
			n = cur
		}
	}
	if !s.mayRead(domid, path, n) {
		return "", fmt.Errorf("%w: domain %d reading %s", ErrPermission, domid, path)
	}
	return n.value, nil
}

// GuestWrite is a quota- and ACL-checked write issued by a guest.
func (s *Store) GuestWrite(domid int, path, value string) error {
	n, _ := s.resolve(path)
	if !s.mayWrite(domid, path, n) {
		s.chargeOp(1)
		return fmt.Errorf("%w: domain %d writing %s", ErrPermission, domid, path)
	}
	return s.WriteAsGuest(domid, path, value)
}
