package xenstore

// Fuzz targets. Seed corpora live in testdata/fuzz/ (checked in) plus
// the f.Add calls below; `make fuzz-smoke` runs each target for 20s.

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzPath throws arbitrary path strings at the store's hot entry
// points. Invariants: nothing panics, a written path reads back, path
// normalization is idempotent, and any reachable tree serializes to a
// canonical blob (Serialize∘Deserialize∘Serialize is the identity).
func FuzzPath(f *testing.F) {
	for _, seed := range []string{
		"/",
		"",
		"/local/domain/1/name",
		"/local/domain/1/device/vif/0/state",
		"local/domain/2",
		"//double//slash//",
		"/trailing/",
		"/a/b/c/d/e/f/g/h/i/j",
		"/with space/and\ttab",
		"/\x00nul",
		"/répertoire/ünïcode",
		"/very" + string(make([]byte, 64)) + "long",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, path string) {
		s, _ := newStore()
		s.LoggingEnabled = false

		if n1 := normalize(path); normalize(n1) != n1 {
			t.Fatalf("normalize not idempotent: %q -> %q -> %q", path, n1, normalize(n1))
		}

		s.Write(path, "fuzz")
		if v, err := s.Read(path); err != nil || v != "fuzz" {
			t.Fatalf("Write-then-Read(%q) = (%q, %v)", path, v, err)
		}
		if !s.Exists(path) {
			t.Fatalf("Exists(%q) false after write", path)
		}
		if _, err := s.Directory(path); err != nil {
			t.Fatalf("Directory(%q) after write: %v", path, err)
		}

		// Every reachable tree must serialize canonically.
		sn := s.Snapshot()
		blob := sn.Serialize()
		back, err := DeserializeSnapshot(blob)
		if err != nil {
			t.Fatalf("own serialization rejected for path %q: %v", path, err)
		}
		if back.NumNodes() != sn.NumNodes() {
			t.Fatalf("round trip changed node count: %d -> %d", sn.NumNodes(), back.NumNodes())
		}
		if !bytes.Equal(back.Serialize(), blob) {
			t.Fatalf("serialization not canonical for path %q", path)
		}

		// Removal: the root is rejected, anything else disappears.
		if err := s.Rm(path); err == nil {
			if s.Exists(path) {
				t.Fatalf("Exists(%q) true after successful Rm", path)
			}
		} else if !errors.Is(err, ErrNoEnt) && normalize(path) != "/" {
			t.Fatalf("Rm(%q): unexpected error %v", path, err)
		}
	})
}

// FuzzSnapshotRoundTrip feeds arbitrary bytes to the snapshot decoder.
// Invariants: no panics; any accepted blob re-serializes to the exact
// same bytes (the canonical-format property TestSnapshotSerializeRoundTrip
// checks for well-formed trees, extended here to every acceptable
// input); and an accepted blob grafts into a live store without
// breaking generation monotonicity.
func FuzzSnapshotRoundTrip(f *testing.F) {
	// Real blobs of increasing shape complexity, plus junk.
	empty, _ := newStore()
	f.Add(empty.Snapshot().Serialize())
	populated, _ := newStore()
	populateGuests(populated, 3)
	populated.SetPerm("/local/domain/2/name", 2, PermBoth)
	f.Add(populated.Snapshot().Serialize())
	sub, _ := populated.Snapshot().Subtree("/local/domain/1")
	f.Add(sub.Serialize())
	f.Add([]byte(snapMagic))
	f.Add([]byte("not a snapshot"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		sn, err := DeserializeSnapshot(data)
		if err != nil {
			if !errors.Is(err, ErrBadSnapshot) {
				t.Fatalf("decode error %v is not ErrBadSnapshot", err)
			}
			return
		}
		if got := sn.Serialize(); !bytes.Equal(got, data) {
			t.Fatalf("accepted blob is not canonical: %d bytes in, %d out", len(data), len(got))
		}
		if sn.NumNodes() < 1 {
			t.Fatalf("accepted snapshot has %d nodes", sn.NumNodes())
		}
		// Walking the frozen tree must be safe.
		if _, err := sn.Directory("/"); err != nil {
			t.Fatalf("Directory on accepted snapshot: %v", err)
		}
		// Grafting any accepted snapshot must keep generation order
		// monotonic: a transaction right after the graft cannot see a
		// phantom conflict.
		s, _ := newStore()
		s.LoggingEnabled = false
		if err := s.GraftSnapshot(sn, "/", "/grafted"); err != nil {
			t.Fatalf("graft of accepted snapshot: %v", err)
		}
		if got, want := s.NumNodes(), sn.NumNodes(); got != want {
			t.Fatalf("graft node count: store %d, snapshot %d", got, want)
		}
		if err := s.Txn(3, func(tx *Tx) error {
			tx.Write("/grafted/probe", "1")
			return nil
		}); err != nil {
			t.Fatalf("txn after graft: %v", err)
		}
	})
}
