package xenstore

import "math/bits"

// The store's state is an immutable, structurally-shared tree: nodes
// are never modified after publication. Every mutation (write, rm,
// mkdir, perm change, transaction apply) builds a new root by copying
// only the spine — the nodes on the path from the root to the change —
// and publishes it with one atomic pointer store. Everything hanging
// off the copied spine is shared with the previous version.
//
// That single invariant is what makes Store.Snapshot O(1): a snapshot
// is just the current root pointer, and it stays internally consistent
// forever because no mutation can reach the nodes it captured.
//
// Each node's children live in a persistent hash-array-mapped trie
// (HAMT) keyed by the child name's FNV-1a hash, 5 bits of hash per
// level. Copying a directory on the spine therefore costs
// O(log32 fanout) small arrays instead of O(fanout): /local/domain
// with 8000 guests copies two ~32-slot arrays per write beneath it,
// not an 8000-entry map.

// node is one immutable store node. The zero gen means "never
// explicitly modified" — freshly ensured intermediate directories keep
// gen 0 exactly like the historical mutable implementation, which is
// load-bearing for transaction-conflict semantics (a transaction that
// observed absence does not conflict with an intermediate directory
// appearing).
type node struct {
	name  string
	value string
	gen   uint64 // bumped on any modification (incl. child add/rm)
	owner int    // domain that owns the node (permission model)
	perm  Perm   // access class for non-owners

	kids  *amtNode // nil when the node has no children
	nkids int      // direct children
	size  int      // subtree node count including this node
}

// clone returns a mutable copy of n; callers fix it up and publish it
// inside a new tree version. The original is never touched.
func (n *node) clone() *node {
	c := *n
	return &c
}

// ---------------------------------------------------------------------------
// Persistent HAMT: name → *node.
// ---------------------------------------------------------------------------

const (
	amtBits  = 5
	amtWidth = 1 << amtBits // 32
	amtMask  = amtWidth - 1
	// amtMaxShift is the hash exhaustion point: past it, entries live
	// in a collision bucket and are scanned linearly (FNV-1a makes
	// this effectively unreachable, but correctness must not rely on
	// hash quality).
	amtMaxShift = 60
)

// amtNode is one bitmap-compressed trie level. slots[i] is either a
// *node (a direct entry) or a *amtNode (a deeper level); at
// amtMaxShift, slots hold *amtCollision.
type amtNode struct {
	bitmap uint32
	slots  []any
}

// amtCollision is the (practically unreachable) full-hash-collision
// bucket.
type amtCollision struct {
	entries []*node
}

// nameHash is FNV-1a over the child name. Allocation-free.
func nameHash(s string) uint64 {
	const offset64 = 14695981039346656037
	const prime64 = 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// slotIndex maps a bitmap position to its packed slot index.
func (a *amtNode) slotIndex(bit uint32) int {
	return bits.OnesCount32(a.bitmap & (bit - 1))
}

// amtGet returns the child named name, or nil.
func amtGet(a *amtNode, h uint64, shift uint, name string) *node {
	for a != nil {
		if shift >= amtMaxShift {
			for _, s := range a.slots {
				if c, ok := s.(*amtCollision); ok {
					for _, e := range c.entries {
						if e.name == name {
							return e
						}
					}
				}
			}
			return nil
		}
		bit := uint32(1) << ((h >> shift) & amtMask)
		if a.bitmap&bit == 0 {
			return nil
		}
		switch s := a.slots[a.slotIndex(bit)].(type) {
		case *node:
			if s.name == name {
				return s
			}
			return nil
		case *amtNode:
			a, shift = s, shift+amtBits
		default:
			return nil
		}
	}
	return nil
}

// withSlot returns a copy of a with the packed slot at idx replaced.
func (a *amtNode) withSlot(idx int, s any) *amtNode {
	slots := make([]any, len(a.slots))
	copy(slots, a.slots)
	slots[idx] = s
	return &amtNode{bitmap: a.bitmap, slots: slots}
}

// withInsert returns a copy of a with a new bit set and slot inserted.
func (a *amtNode) withInsert(bit uint32, s any) *amtNode {
	idx := a.slotIndex(bit)
	slots := make([]any, len(a.slots)+1)
	copy(slots, a.slots[:idx])
	slots[idx] = s
	copy(slots[idx+1:], a.slots[idx:])
	return &amtNode{bitmap: a.bitmap | bit, slots: slots}
}

// withRemove returns a copy of a with a bit cleared and its slot
// dropped (nil when the level empties).
func (a *amtNode) withRemove(bit uint32) *amtNode {
	if a.bitmap == bit {
		return nil
	}
	idx := a.slotIndex(bit)
	slots := make([]any, len(a.slots)-1)
	copy(slots, a.slots[:idx])
	copy(slots[idx:], a.slots[idx+1:])
	return &amtNode{bitmap: a.bitmap &^ bit, slots: slots}
}

// amtSet returns a new trie with child present under its name,
// reporting whether the entry is new (vs replaced).
func amtSet(a *amtNode, h uint64, shift uint, child *node) (*amtNode, bool) {
	if a == nil {
		if shift >= amtMaxShift {
			return &amtNode{bitmap: 1, slots: []any{&amtCollision{entries: []*node{child}}}}, true
		}
		bit := uint32(1) << ((h >> shift) & amtMask)
		return &amtNode{bitmap: bit, slots: []any{child}}, true
	}
	if shift >= amtMaxShift {
		c, _ := a.slots[0].(*amtCollision)
		for i, e := range c.entries {
			if e.name == child.name {
				entries := make([]*node, len(c.entries))
				copy(entries, c.entries)
				entries[i] = child
				return &amtNode{bitmap: a.bitmap, slots: []any{&amtCollision{entries: entries}}}, false
			}
		}
		entries := make([]*node, len(c.entries)+1)
		copy(entries, c.entries)
		entries[len(c.entries)] = child
		return &amtNode{bitmap: a.bitmap, slots: []any{&amtCollision{entries: entries}}}, true
	}
	bit := uint32(1) << ((h >> shift) & amtMask)
	if a.bitmap&bit == 0 {
		return a.withInsert(bit, child), true
	}
	idx := a.slotIndex(bit)
	switch s := a.slots[idx].(type) {
	case *node:
		if s.name == child.name {
			return a.withSlot(idx, child), false
		}
		// Two names share this slot: push the old entry one level down
		// next to the new one.
		sub, _ := amtSet(nil, nameHash(s.name), shift+amtBits, s)
		sub, _ = amtSet(sub, h, shift+amtBits, child)
		return a.withSlot(idx, sub), true
	case *amtNode:
		sub, added := amtSet(s, h, shift+amtBits, child)
		return a.withSlot(idx, sub), added
	default:
		return a, false // unreachable
	}
}

// amtDel returns a new trie without name, and the removed entry (nil
// if absent). Emptied levels collapse to nil.
func amtDel(a *amtNode, h uint64, shift uint, name string) (*amtNode, *node) {
	if a == nil {
		return nil, nil
	}
	if shift >= amtMaxShift {
		c, _ := a.slots[0].(*amtCollision)
		for i, e := range c.entries {
			if e.name == name {
				if len(c.entries) == 1 {
					return nil, e
				}
				entries := make([]*node, 0, len(c.entries)-1)
				entries = append(entries, c.entries[:i]...)
				entries = append(entries, c.entries[i+1:]...)
				return &amtNode{bitmap: a.bitmap, slots: []any{&amtCollision{entries: entries}}}, e
			}
		}
		return a, nil
	}
	bit := uint32(1) << ((h >> shift) & amtMask)
	if a.bitmap&bit == 0 {
		return a, nil
	}
	idx := a.slotIndex(bit)
	switch s := a.slots[idx].(type) {
	case *node:
		if s.name != name {
			return a, nil
		}
		return a.withRemove(bit), s
	case *amtNode:
		sub, removed := amtDel(s, h, shift+amtBits, name)
		if removed == nil {
			return a, nil
		}
		if sub == nil {
			return a.withRemove(bit), removed
		}
		return a.withSlot(idx, sub), removed
	default:
		return a, nil
	}
}

// amtIter visits every entry in trie order (deterministic for a given
// content, unlike Go map iteration). fn returning false stops the walk.
func amtIter(a *amtNode, fn func(*node) bool) bool {
	if a == nil {
		return true
	}
	for _, s := range a.slots {
		switch e := s.(type) {
		case *node:
			if !fn(e) {
				return false
			}
		case *amtNode:
			if !amtIter(e, fn) {
				return false
			}
		case *amtCollision:
			for _, n := range e.entries {
				if !fn(n) {
					return false
				}
			}
		}
	}
	return true
}

// child returns n's direct child by name (nil if absent).
func (n *node) child(name string) *node {
	if n.kids == nil {
		return nil
	}
	return amtGet(n.kids, nameHash(name), 0, name)
}

// withChild returns a copy of n with child set (added or replaced),
// with size/nkids bookkeeping.
func (n *node) withChild(child *node) *node {
	c := n.clone()
	old := n.child(child.name)
	kids, added := amtSet(n.kids, nameHash(child.name), 0, child)
	c.kids = kids
	if added {
		c.nkids++
		c.size += child.size
	} else {
		c.size += child.size - old.size
	}
	return c
}

// withoutChild returns a copy of n with the named child removed, plus
// the removed child (nil, nil if absent).
func (n *node) withoutChild(name string) (*node, *node) {
	if n.kids == nil {
		return nil, nil
	}
	kids, removed := amtDel(n.kids, nameHash(name), 0, name)
	if removed == nil {
		return nil, nil
	}
	c := n.clone()
	c.kids = kids
	c.nkids--
	c.size -= removed.size
	return c, removed
}

// eachChild iterates n's direct children.
func (n *node) eachChild(fn func(*node) bool) {
	amtIter(n.kids, fn)
}

// countNodes reports the subtree size (kept for readability at call
// sites; O(1) thanks to the size field).
func countNodes(n *node) int { return n.size }
