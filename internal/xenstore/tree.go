package xenstore

import "math/bits"

// The store's state is an immutable, structurally-shared tree: nodes
// are never modified after publication. Every mutation (write, rm,
// mkdir, perm change, transaction apply) builds a new root by copying
// only the spine — the nodes on the path from the root to the change —
// and publishes it with one atomic pointer store. Everything hanging
// off the copied spine is shared with the previous version.
//
// That single invariant is what makes Store.Snapshot O(1): a snapshot
// is just the current root pointer, and it stays internally consistent
// forever because no mutation can reach the nodes it captured.
//
// Each node's children live in a persistent hash-array-mapped trie
// (HAMT) keyed by the child name's FNV-1a hash, 5 bits of hash per
// level. Copying a directory on the spine therefore costs
// O(log32 fanout) small arrays instead of O(fanout): /local/domain
// with 8000 guests copies two ~32-slot arrays per write beneath it,
// not an 8000-entry map.
//
// Hot-path mechanics (profile-guided, see DESIGN.md §9):
//
//   - every node carries its segment's 64-bit FNV id (hsh), computed
//     once at creation; trie descent and spine copies compare and key
//     on that integer and never re-hash the name string;
//   - spine copies draw node and trie-level objects from the owning
//     store's pool (pool.go) and retire the objects they replace, so
//     steady-state mutation recycles its own garbage instead of
//     feeding the GC. Retirement is COW-safe: anything a snapshot
//     could have captured is never reused.
//
// The helpers below take an optional *pool; nil (deserialization,
// tests) falls back to plain allocation and retires nothing.

// node is one immutable store node. The zero gen means "never
// explicitly modified" — freshly ensured intermediate directories keep
// gen 0 exactly like the historical mutable implementation, which is
// load-bearing for transaction-conflict semantics (a transaction that
// observed absence does not conflict with an intermediate directory
// appearing).
type node struct {
	name  string
	hsh   uint64 // FNV-1a of name: the interned segment id and trie key
	value string
	gen   uint64 // bumped on any modification (incl. child add/rm)
	owner int    // domain that owns the node (permission model)
	perm  Perm   // access class for non-owners

	kids  *amtNode // nil when the node has no children
	nkids int      // direct children
	size  int      // subtree node count including this node

	// Pool provenance (see pool.go). ptag identifies the allocating
	// store's pool (0 = unpooled: deserialized, foreign, or test
	// construction); birth is that store's snapshot epoch at
	// allocation. A node is recycled only by its own pool and only
	// when no snapshot was taken during its lifetime.
	ptag  uint32
	birth uint64
}

// clone returns a mutable copy of n drawn from p (plain allocation
// when p is nil); callers fix it up and publish it inside a new tree
// version. The original is never touched — and never retired here:
// retirement is the caller's call, because clones also copy foreign
// nodes (grafts) whose originals stay live.
func (n *node) clone(p *pool) *node {
	c := p.getNode()
	ptag, birth := c.ptag, c.birth
	*c = *n
	c.ptag, c.birth = ptag, birth
	return c
}

// ---------------------------------------------------------------------------
// Persistent HAMT: segment id (hsh) → *node.
// ---------------------------------------------------------------------------

const (
	amtBits  = 5
	amtWidth = 1 << amtBits // 32
	amtMask  = amtWidth - 1
	// amtMaxShift is the hash exhaustion point: past it, entries live
	// in a collision bucket and are scanned linearly (FNV-1a makes
	// this effectively unreachable, but correctness must not rely on
	// hash quality).
	amtMaxShift = 60
)

// amtNode is one bitmap-compressed trie level. slots[i] is either a
// *node (a direct entry) or a *amtNode (a deeper level); at
// amtMaxShift, slots hold *amtCollision. ptag/birth mirror node's
// pool provenance.
type amtNode struct {
	bitmap uint32
	ptag   uint32
	birth  uint64
	slots  []any
}

// amtCollision is the (practically unreachable) full-hash-collision
// bucket.
type amtCollision struct {
	entries []*node
}

// FNV-1a parameters, shared with hashIter (store.go), which computes
// the same hash inline while splitting paths.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// nameHash is FNV-1a over the child name — the segment's interned id.
// Allocation-free, computed once per node at creation and carried in
// node.hsh thereafter.
func nameHash(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// slotIndex maps a bitmap position to its packed slot index.
func (a *amtNode) slotIndex(bit uint32) int {
	return bits.OnesCount32(a.bitmap & (bit - 1))
}

// amtGet returns the child with segment id h named name, or nil.
// Descent keys on the integer id; the name is compared only at the
// final candidate, and only to guard against full 64-bit collisions.
func amtGet(a *amtNode, h uint64, name string) *node {
	shift := uint(0)
	for a != nil {
		if shift >= amtMaxShift {
			for _, s := range a.slots {
				if c, ok := s.(*amtCollision); ok {
					for _, e := range c.entries {
						if e.name == name {
							return e
						}
					}
				}
			}
			return nil
		}
		bit := uint32(1) << ((h >> shift) & amtMask)
		if a.bitmap&bit == 0 {
			return nil
		}
		switch s := a.slots[a.slotIndex(bit)].(type) {
		case *node:
			if s.hsh == h && s.name == name {
				return s
			}
			return nil
		case *amtNode:
			a, shift = s, shift+amtBits
		default:
			return nil
		}
	}
	return nil
}

// withSlot returns a copy of a with the packed slot at idx replaced,
// retiring the original level to p.
func (a *amtNode) withSlot(p *pool, idx int, s any) *amtNode {
	c := p.getAMT(len(a.slots))
	c.bitmap = a.bitmap
	copy(c.slots, a.slots)
	c.slots[idx] = s
	p.retireAMT(a)
	return c
}

// withInsert returns a copy of a with a new bit set and slot inserted,
// retiring the original level to p.
func (a *amtNode) withInsert(p *pool, bit uint32, s any) *amtNode {
	idx := a.slotIndex(bit)
	c := p.getAMT(len(a.slots) + 1)
	c.bitmap = a.bitmap | bit
	copy(c.slots, a.slots[:idx])
	c.slots[idx] = s
	copy(c.slots[idx+1:], a.slots[idx:])
	p.retireAMT(a)
	return c
}

// withRemove returns a copy of a with a bit cleared and its slot
// dropped (nil when the level empties), retiring the original.
func (a *amtNode) withRemove(p *pool, bit uint32) *amtNode {
	if a.bitmap == bit {
		p.retireAMT(a)
		return nil
	}
	idx := a.slotIndex(bit)
	c := p.getAMT(len(a.slots) - 1)
	c.bitmap = a.bitmap &^ bit
	copy(c.slots, a.slots[:idx])
	copy(c.slots[idx:], a.slots[idx+1:])
	p.retireAMT(a)
	return c
}

// amtBuild inserts child into a build-private trie in place. It is
// the mutating counterpart of amtSet for trees under construction
// (snapshot deserialization): every level reachable from a is
// exclusively owned by the builder and unpooled (ptag 0), so slots
// are grown and overwritten directly instead of copied — one level
// allocation per surviving level rather than one per insertion step.
// Callers guarantee child names are unique (the canonical snapshot
// format enforces strictly ascending children), so there is no
// replace case.
func amtBuild(a *amtNode, shift uint, child *node) *amtNode {
	h := child.hsh
	if a == nil {
		if shift >= amtMaxShift {
			return &amtNode{bitmap: 1, slots: []any{&amtCollision{entries: []*node{child}}}}
		}
		bit := uint32(1) << ((h >> shift) & amtMask)
		return &amtNode{bitmap: bit, slots: []any{child}}
	}
	if shift >= amtMaxShift {
		c := a.slots[0].(*amtCollision)
		c.entries = append(c.entries, child)
		return a
	}
	bit := uint32(1) << ((h >> shift) & amtMask)
	idx := a.slotIndex(bit)
	if a.bitmap&bit == 0 {
		a.bitmap |= bit
		a.slots = append(a.slots, nil)
		copy(a.slots[idx+1:], a.slots[idx:])
		a.slots[idx] = child
		return a
	}
	switch s := a.slots[idx].(type) {
	case *node:
		// Two ids share this slot: push the old entry one level down
		// next to the new one.
		a.slots[idx] = amtBuild(amtBuild(nil, shift+amtBits, s), shift+amtBits, child)
	case *amtNode:
		a.slots[idx] = amtBuild(s, shift+amtBits, child)
	}
	return a
}

// amtSet returns a new trie with child present under its id (hsh),
// reporting whether the entry is new (vs replaced). Replaced levels
// are retired to p; the replaced entry node is not (the caller owns
// that decision).
func amtSet(p *pool, a *amtNode, shift uint, child *node) (*amtNode, bool) {
	h := child.hsh
	if a == nil {
		if shift >= amtMaxShift {
			c := p.getAMT(1)
			c.bitmap = 1
			c.slots[0] = &amtCollision{entries: []*node{child}}
			return c, true
		}
		bit := uint32(1) << ((h >> shift) & amtMask)
		c := p.getAMT(1)
		c.bitmap = bit
		c.slots[0] = child
		return c, true
	}
	if shift >= amtMaxShift {
		c, _ := a.slots[0].(*amtCollision)
		for i, e := range c.entries {
			if e.name == child.name {
				entries := make([]*node, len(c.entries))
				copy(entries, c.entries)
				entries[i] = child
				return a.withSlot(p, 0, &amtCollision{entries: entries}), false
			}
		}
		entries := make([]*node, len(c.entries)+1)
		copy(entries, c.entries)
		entries[len(c.entries)] = child
		return a.withSlot(p, 0, &amtCollision{entries: entries}), true
	}
	bit := uint32(1) << ((h >> shift) & amtMask)
	if a.bitmap&bit == 0 {
		return a.withInsert(p, bit, child), true
	}
	idx := a.slotIndex(bit)
	switch s := a.slots[idx].(type) {
	case *node:
		if s.hsh == h && s.name == child.name {
			return a.withSlot(p, idx, child), false
		}
		// Two ids share this slot: push the old entry one level down
		// next to the new one. s.hsh is already computed — no rehash.
		sub, _ := amtSet(p, nil, shift+amtBits, s)
		sub, _ = amtSet(p, sub, shift+amtBits, child)
		return a.withSlot(p, idx, sub), true
	case *amtNode:
		sub, added := amtSet(p, s, shift+amtBits, child)
		return a.withSlot(p, idx, sub), added
	default:
		return a, false // unreachable
	}
}

// amtDel returns a new trie without the entry with id h named name,
// and the removed entry (nil if absent). Emptied levels collapse to
// nil; replaced levels are retired to p.
func amtDel(p *pool, a *amtNode, h uint64, shift uint, name string) (*amtNode, *node) {
	if a == nil {
		return nil, nil
	}
	if shift >= amtMaxShift {
		c, _ := a.slots[0].(*amtCollision)
		for i, e := range c.entries {
			if e.name == name {
				if len(c.entries) == 1 {
					p.retireAMT(a)
					return nil, e
				}
				entries := make([]*node, 0, len(c.entries)-1)
				entries = append(entries, c.entries[:i]...)
				entries = append(entries, c.entries[i+1:]...)
				return a.withSlot(p, 0, &amtCollision{entries: entries}), e
			}
		}
		return a, nil
	}
	bit := uint32(1) << ((h >> shift) & amtMask)
	if a.bitmap&bit == 0 {
		return a, nil
	}
	idx := a.slotIndex(bit)
	switch s := a.slots[idx].(type) {
	case *node:
		if s.hsh != h || s.name != name {
			return a, nil
		}
		return a.withRemove(p, bit), s
	case *amtNode:
		sub, removed := amtDel(p, s, h, shift+amtBits, name)
		if removed == nil {
			return a, nil
		}
		if sub == nil {
			return a.withRemove(p, bit), removed
		}
		return a.withSlot(p, idx, sub), removed
	default:
		return a, nil
	}
}

// amtIter visits every entry in trie order (deterministic for a given
// content, unlike Go map iteration). fn returning false stops the walk.
func amtIter(a *amtNode, fn func(*node) bool) bool {
	if a == nil {
		return true
	}
	for _, s := range a.slots {
		switch e := s.(type) {
		case *node:
			if !fn(e) {
				return false
			}
		case *amtNode:
			if !amtIter(e, fn) {
				return false
			}
		case *amtCollision:
			for _, n := range e.entries {
				if !fn(n) {
					return false
				}
			}
		}
	}
	return true
}

// child returns n's direct child by name (nil if absent).
func (n *node) child(name string) *node {
	if n.kids == nil {
		return nil
	}
	return amtGet(n.kids, nameHash(name), name)
}

// childByID returns n's direct child by precomputed segment id.
func (n *node) childByID(h uint64, name string) *node {
	if n.kids == nil {
		return nil
	}
	return amtGet(n.kids, h, name)
}

// withChild returns a copy of n with child set (added or replaced),
// with size/nkids bookkeeping. The spine copy and any replaced trie
// levels come from / retire to p; n itself is retired (every caller
// replaces n with the copy in the published tree).
func (n *node) withChild(p *pool, child *node) *node {
	c := n.clone(p)
	old := n.childByID(child.hsh, child.name)
	kids, added := amtSet(p, n.kids, 0, child)
	c.kids = kids
	if added {
		c.nkids++
		c.size += child.size
	} else {
		c.size += child.size - old.size
	}
	p.retireNode(n)
	return c
}

// withoutChild returns a copy of n with the child with id h named name
// removed, plus the removed child (nil, nil if absent). n is retired
// on success.
func (n *node) withoutChild(p *pool, name string, h uint64) (*node, *node) {
	if n.kids == nil {
		return nil, nil
	}
	kids, removed := amtDel(p, n.kids, h, 0, name)
	if removed == nil {
		return nil, nil
	}
	c := n.clone(p)
	c.kids = kids
	c.nkids--
	c.size -= removed.size
	p.retireNode(n)
	return c, removed
}

// eachChild iterates n's direct children.
func (n *node) eachChild(fn func(*node) bool) {
	amtIter(n.kids, fn)
}

// appendChildren appends every child of n to dst in trie (hash)
// order. It exists alongside eachChild for hot paths: a collecting
// callback closes over its destination and Go heap-allocates the
// closure per call, while this plain recursion allocates nothing.
func appendChildren(a *amtNode, dst []*node) []*node {
	if a == nil {
		return dst
	}
	for _, s := range a.slots {
		switch c := s.(type) {
		case *node:
			dst = append(dst, c)
		case *amtNode:
			dst = appendChildren(c, dst)
		case *amtCollision:
			dst = append(dst, c.entries...)
		}
	}
	return dst
}

// countNodes reports the subtree size (kept for readability at call
// sites; O(1) thanks to the size field).
func countNodes(n *node) int { return n.size }
