package xenstore

import (
	"errors"
	"fmt"

	"lightvm/internal/costs"
	"lightvm/internal/faults"
	"lightvm/internal/sim"
)

// Implementation variants and per-domain quotas — two pieces of real
// xenstored behaviour the paper leans on:
//
//   - Footnote 3: "this already uses oxenstored, the faster of the two
//     available implementations of the XenStore. Results with
//     cxenstored show much higher overheads." The C implementation
//     processes requests more slowly and walks its connection list
//     with worse constants.
//   - xenstored enforces a per-domain node quota (default 1000 nodes)
//     so one guest cannot fill the store — the DoS concern of §1
//     applied to the control plane itself.

// Variant selects the store daemon implementation.
type Variant int

// Store daemon implementations.
const (
	// Oxenstored is the OCaml daemon the paper benchmarks against.
	Oxenstored Variant = iota
	// Cxenstored is the C daemon with "much higher overheads".
	Cxenstored
)

func (v Variant) String() string {
	if v == Cxenstored {
		return "cxenstored"
	}
	return "oxenstored"
}

// cxenstoredFactor multiplies the daemon-side processing and
// connection-scan costs for the C implementation.
const cxenstoredFactor = 3

// ErrQuota is the sentinel all quota refusals match via errors.Is.
var ErrQuota = errors.New("xenstore: domain node quota exceeded")

// DefaultNodeQuota mirrors xenstored's quota-nb-entries default.
const DefaultNodeQuota = 1000

// DefaultWatchQuota mirrors xenstored's quota-nb-watch-per-domain
// default.
const DefaultWatchQuota = 128

// ErrQuotaExceeded is the typed quota refusal: which domain hit which
// per-domain limit. It matches ErrQuota under errors.Is, so existing
// sentinel checks keep working; overload-aware callers errors.As it to
// turn the refusal into a typed rejection instead of a run abort.
type ErrQuotaExceeded struct {
	Domain   int
	Resource string // "nodes" or "watches"
	Limit    int
	Used     int
}

func (e *ErrQuotaExceeded) Error() string {
	return fmt.Sprintf("xenstore: domain %d %s quota exceeded (%d/%d)",
		e.Domain, e.Resource, e.Used, e.Limit)
}

// Is makes every typed refusal match the ErrQuota sentinel.
func (e *ErrQuotaExceeded) Is(target error) bool { return target == ErrQuota }

// SetVariant switches the daemon implementation (affects every
// subsequent operation's cost).
func (s *Store) SetVariant(v Variant) { s.variant = v }

// VariantName reports the active implementation.
func (s *Store) VariantName() string { return s.variant.String() }

// variantFactor is the cost multiplier of the active implementation.
func (s *Store) variantFactor() sim.Duration {
	if s.variant == Cxenstored {
		return cxenstoredFactor
	}
	return 1
}

// SetNodeQuota sets the per-domain node limit (0 disables checks).
func (s *Store) SetNodeQuota(limit int) { s.nodeQuota = limit }

// SetWatchQuota sets the per-domain watch limit (0 disables checks).
func (s *Store) SetWatchQuota(limit int) { s.watchQuota = limit }

// OwnerWatches reports the watch count charged to a domain.
func (s *Store) OwnerWatches(owner int) int { return s.ownerWatches[owner] }

// ChargeRefusal charges one daemon round trip — the cost of the
// daemon refusing an operation. Quota injection sites outside the
// store (the toolstack create paths) pay it before surfacing a typed
// refusal, so an injected quota exhaustion costs what a real one does.
func (s *Store) ChargeRefusal() { s.chargeOp(1) }

// quotaFault consults the fault plane's store-quota kind: when it
// fires, the daemon behaves as if the domain were already at its
// limit for resource. One daemon round trip is charged — the cost of
// being told no — and the typed refusal is returned.
func (s *Store) quotaFault(owner int, resource string, limit, used int) error {
	if s.Faults.Fire(faults.KindStoreQuota) {
		s.chargeOp(1)
		return &ErrQuotaExceeded{Domain: owner, Resource: resource, Limit: limit, Used: used}
	}
	return nil
}

// chargeQuota tracks per-owner node counts for quota enforcement.
// Dom0 is never recorded: it is unquota'd, and keeping it out of the
// ledger preserves the invariant CheckConsistency audits — for every
// owner ≠ 0, ledger count == nodes in the tree owned by that domain.
func (s *Store) chargeQuota(owner int, delta int) error {
	if owner == 0 {
		return nil
	}
	if s.ownerNodes == nil {
		s.ownerNodes = make(map[int]int)
	}
	next := s.ownerNodes[owner] + delta
	if s.nodeQuota > 0 && next > s.nodeQuota {
		return &ErrQuotaExceeded{Domain: owner, Resource: "nodes",
			Limit: s.nodeQuota, Used: s.ownerNodes[owner]}
	}
	s.ownerNodes[owner] = next
	if next <= 0 {
		delete(s.ownerNodes, owner)
	}
	return nil
}

// debitOwners returns quota for every owned node in a removed subtree,
// crediting each node's actual owner (not whoever issued the remove).
// With an empty ledger there is nothing to return, so toolstack-only
// stores skip the walk entirely.
func (s *Store) debitOwners(n *node) {
	if len(s.ownerNodes) == 0 {
		return
	}
	if n.owner != 0 {
		if next := s.ownerNodes[n.owner] - 1; next <= 0 {
			delete(s.ownerNodes, n.owner)
		} else {
			s.ownerNodes[n.owner] = next
		}
	}
	n.eachChild(func(c *node) bool {
		s.debitOwners(c)
		return true
	})
}

// creditOwners charges every owned node in a grafted subtree to its
// owner. Restores are Dom0 operations, so quota limits are recorded
// but not enforced (a restore must not half-fail).
func (s *Store) creditOwners(n *node) {
	if n.owner != 0 {
		if s.ownerNodes == nil {
			s.ownerNodes = make(map[int]int)
		}
		s.ownerNodes[n.owner]++
	}
	n.eachChild(func(c *node) bool {
		s.creditOwners(c)
		return true
	})
}

// OwnerNodes reports the node count charged to a domain.
func (s *Store) OwnerNodes(owner int) int { return s.ownerNodes[owner] }

// WriteAsGuest performs a guest-originated write: unlike Dom0's
// toolstack writes, it is subject to the owner's node quota. It
// returns ErrQuota without modifying the store when the quota would be
// exceeded.
func (s *Store) WriteAsGuest(owner int, path, value string) error {
	if err := s.quotaFault(owner, "nodes", s.nodeQuota, s.OwnerNodes(owner)); err != nil {
		return err
	}
	// Count how many nodes the write would create.
	created := s.missingNodes(path)
	if created > 0 {
		if err := s.chargeQuota(owner, created); err != nil {
			s.chargeOp(1)
			return err
		}
	}
	s.WriteAs(owner, path, value)
	return nil
}

// WatchAsGuest registers a guest-originated watch, subject to the
// owner's watch quota (xenstored's quota-nb-watch-per-domain): the
// registration is refused with a typed *ErrQuotaExceeded when the
// domain is at its limit. Dom0 (owner 0) is unquota'd, as with nodes.
func (s *Store) WatchAsGuest(owner int, path, token string, fn WatchFn) (WatchID, error) {
	if err := s.quotaFault(owner, "watches", s.watchQuota, s.ownerWatches[owner]); err != nil {
		return 0, err
	}
	if owner != 0 && s.watchQuota > 0 && s.ownerWatches[owner] >= s.watchQuota {
		s.chargeOp(1)
		return 0, &ErrQuotaExceeded{Domain: owner, Resource: "watches",
			Limit: s.watchQuota, Used: s.ownerWatches[owner]}
	}
	id := s.Watch(path, token, fn)
	if owner != 0 {
		if s.ownerWatches == nil {
			s.ownerWatches = make(map[int]int)
		}
		s.ownerWatches[owner]++
		s.watchOwners(id, owner)
	}
	return id, nil
}

// missingNodes reports how many path components do not yet exist.
func (s *Store) missingNodes(path string) int {
	it := hashSegments(path)
	n := s.loaded().root
	missing := 0
	for {
		p, h, ok := it.next()
		if !ok {
			return missing
		}
		if missing > 0 {
			missing++
			continue
		}
		child := n.childByID(h, p)
		if child == nil {
			missing = 1
			continue
		}
		n = child
	}
}

// RmOwned removes a path on behalf of a guest. Quota is returned by
// Rm itself, to each removed node's actual owner — the issuing domain
// is only used for the error path, so a guest cannot launder another
// domain's quota by removing a mixed-ownership subtree.
func (s *Store) RmOwned(owner int, path string) error {
	if _, _, err := s.lookup(path); err != nil {
		s.chargeOp(1)
		return err
	}
	return s.Rm(path)
}

// variantExtra is folded into chargeOp: the C daemon pays the factor
// on its processing plus a harsher connection scan.
func (s *Store) variantExtra(base sim.Duration) sim.Duration {
	if s.variant == Cxenstored {
		return base*(cxenstoredFactor-1) +
			sim.Duration(s.Connections)*costs.XSPerConnection*(cxenstoredFactor-1)
	}
	return 0
}
