package xenstore

import (
	"errors"
	"fmt"

	"lightvm/internal/costs"
	"lightvm/internal/sim"
)

// Implementation variants and per-domain quotas — two pieces of real
// xenstored behaviour the paper leans on:
//
//   - Footnote 3: "this already uses oxenstored, the faster of the two
//     available implementations of the XenStore. Results with
//     cxenstored show much higher overheads." The C implementation
//     processes requests more slowly and walks its connection list
//     with worse constants.
//   - xenstored enforces a per-domain node quota (default 1000 nodes)
//     so one guest cannot fill the store — the DoS concern of §1
//     applied to the control plane itself.

// Variant selects the store daemon implementation.
type Variant int

// Store daemon implementations.
const (
	// Oxenstored is the OCaml daemon the paper benchmarks against.
	Oxenstored Variant = iota
	// Cxenstored is the C daemon with "much higher overheads".
	Cxenstored
)

func (v Variant) String() string {
	if v == Cxenstored {
		return "cxenstored"
	}
	return "oxenstored"
}

// cxenstoredFactor multiplies the daemon-side processing and
// connection-scan costs for the C implementation.
const cxenstoredFactor = 3

// ErrQuota is returned when a domain exceeds its node quota.
var ErrQuota = errors.New("xenstore: domain node quota exceeded")

// DefaultNodeQuota mirrors xenstored's quota-nb-entries default.
const DefaultNodeQuota = 1000

// SetVariant switches the daemon implementation (affects every
// subsequent operation's cost).
func (s *Store) SetVariant(v Variant) { s.variant = v }

// VariantName reports the active implementation.
func (s *Store) VariantName() string { return s.variant.String() }

// variantFactor is the cost multiplier of the active implementation.
func (s *Store) variantFactor() sim.Duration {
	if s.variant == Cxenstored {
		return cxenstoredFactor
	}
	return 1
}

// SetNodeQuota sets the per-domain node limit (0 disables checks).
func (s *Store) SetNodeQuota(limit int) { s.nodeQuota = limit }

// chargeQuota tracks per-owner node counts for quota enforcement.
// Dom0 is never recorded: it is unquota'd, and keeping it out of the
// ledger preserves the invariant CheckConsistency audits — for every
// owner ≠ 0, ledger count == nodes in the tree owned by that domain.
func (s *Store) chargeQuota(owner int, delta int) error {
	if owner == 0 {
		return nil
	}
	if s.ownerNodes == nil {
		s.ownerNodes = make(map[int]int)
	}
	next := s.ownerNodes[owner] + delta
	if s.nodeQuota > 0 && next > s.nodeQuota {
		return fmt.Errorf("%w: domain %d at %d nodes", ErrQuota, owner, s.ownerNodes[owner])
	}
	s.ownerNodes[owner] = next
	if next <= 0 {
		delete(s.ownerNodes, owner)
	}
	return nil
}

// debitOwners returns quota for every owned node in a removed subtree,
// crediting each node's actual owner (not whoever issued the remove).
// With an empty ledger there is nothing to return, so toolstack-only
// stores skip the walk entirely.
func (s *Store) debitOwners(n *node) {
	if len(s.ownerNodes) == 0 {
		return
	}
	if n.owner != 0 {
		if next := s.ownerNodes[n.owner] - 1; next <= 0 {
			delete(s.ownerNodes, n.owner)
		} else {
			s.ownerNodes[n.owner] = next
		}
	}
	n.eachChild(func(c *node) bool {
		s.debitOwners(c)
		return true
	})
}

// creditOwners charges every owned node in a grafted subtree to its
// owner. Restores are Dom0 operations, so quota limits are recorded
// but not enforced (a restore must not half-fail).
func (s *Store) creditOwners(n *node) {
	if n.owner != 0 {
		if s.ownerNodes == nil {
			s.ownerNodes = make(map[int]int)
		}
		s.ownerNodes[n.owner]++
	}
	n.eachChild(func(c *node) bool {
		s.creditOwners(c)
		return true
	})
}

// OwnerNodes reports the node count charged to a domain.
func (s *Store) OwnerNodes(owner int) int { return s.ownerNodes[owner] }

// WriteAsGuest performs a guest-originated write: unlike Dom0's
// toolstack writes, it is subject to the owner's node quota. It
// returns ErrQuota without modifying the store when the quota would be
// exceeded.
func (s *Store) WriteAsGuest(owner int, path, value string) error {
	// Count how many nodes the write would create.
	created := s.missingNodes(path)
	if created > 0 {
		if err := s.chargeQuota(owner, created); err != nil {
			s.chargeOp(1)
			return err
		}
	}
	s.WriteAs(owner, path, value)
	return nil
}

// missingNodes reports how many path components do not yet exist.
func (s *Store) missingNodes(path string) int {
	it := hashSegments(path)
	n := s.loaded().root
	missing := 0
	for {
		p, h, ok := it.next()
		if !ok {
			return missing
		}
		if missing > 0 {
			missing++
			continue
		}
		child := n.childByID(h, p)
		if child == nil {
			missing = 1
			continue
		}
		n = child
	}
}

// RmOwned removes a path on behalf of a guest. Quota is returned by
// Rm itself, to each removed node's actual owner — the issuing domain
// is only used for the error path, so a guest cannot launder another
// domain's quota by removing a mixed-ownership subtree.
func (s *Store) RmOwned(owner int, path string) error {
	if _, _, err := s.lookup(path); err != nil {
		s.chargeOp(1)
		return err
	}
	return s.Rm(path)
}

// variantExtra is folded into chargeOp: the C daemon pays the factor
// on its processing plus a harsher connection scan.
func (s *Store) variantExtra(base sim.Duration) sim.Duration {
	if s.variant == Cxenstored {
		return base*(cxenstoredFactor-1) +
			sim.Duration(s.Connections)*costs.XSPerConnection*(cxenstoredFactor-1)
	}
	return 0
}
