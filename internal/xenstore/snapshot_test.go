package xenstore

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// populateGuests writes a realistic per-guest subtree for n guests
// (about 6 nodes each, echoing the toolstack's registry shape).
func populateGuests(s *Store, n int) {
	for i := 0; i < n; i++ {
		d := fmt.Sprintf("/local/domain/%d", i+1)
		s.Write(d+"/name", fmt.Sprintf("g%d", i+1))
		s.Write(d+"/memory/target", "8192")
		s.Write(d+"/device/vif/0/state", "4")
		s.Write(d+"/control/shutdown", "")
	}
}

func TestSnapshotFrozenWhileLiveTreeMoves(t *testing.T) {
	s, _ := newStore()
	populateGuests(s, 5)
	sn := s.Snapshot()
	wantNodes := sn.NumNodes()

	// Mutate the live tree hard: overwrite, delete, create, set perms.
	s.Write("/local/domain/1/name", "renamed")
	if err := s.Rm("/local/domain/2"); err != nil {
		t.Fatal(err)
	}
	s.Write("/local/domain/99/name", "late")
	if err := s.SetPerm("/local/domain/3/name", 3, PermRead); err != nil {
		t.Fatal(err)
	}

	if v, err := sn.Read("/local/domain/1/name"); err != nil || v != "g1" {
		t.Fatalf("snapshot saw live write: %q, %v", v, err)
	}
	if !sn.Exists("/local/domain/2/name") {
		t.Fatal("snapshot lost a node deleted later")
	}
	if sn.Exists("/local/domain/99") {
		t.Fatal("snapshot gained a node created later")
	}
	if sn.NumNodes() != wantNodes {
		t.Fatalf("snapshot node count moved: %d -> %d", wantNodes, sn.NumNodes())
	}
	kids, err := sn.Directory("/local/domain")
	if err != nil || len(kids) != 5 {
		t.Fatalf("snapshot directory = %v, %v (want the 5 captured guests)", kids, err)
	}
	// And the live store did move.
	if v, _ := s.Read("/local/domain/1/name"); v != "renamed" {
		t.Fatalf("live read = %q", v)
	}
	if s.Exists("/local/domain/2") {
		t.Fatal("live delete lost")
	}
}

func TestSnapshotDoesNotChargeClock(t *testing.T) {
	s, clock := newStore()
	populateGuests(s, 20)
	before := clock.Now()
	sn := s.Snapshot()
	if _, err := sn.Read("/local/domain/7/name"); err != nil {
		t.Fatal(err)
	}
	if _, err := sn.Directory("/local/domain"); err != nil {
		t.Fatal(err)
	}
	if clock.Now() != before {
		t.Fatal("snapshot capture/reads charged the virtual clock")
	}
	if got := atomic.LoadUint64(&s.Count.Snapshots); got != 1 {
		t.Fatalf("Snapshots counter = %d, want 1", got)
	}
}

func TestSnapshotSerializeRoundTrip(t *testing.T) {
	s, _ := newStore()
	populateGuests(s, 7)
	if err := s.SetPerm("/local/domain/3/name", 3, PermBoth); err != nil {
		t.Fatal(err)
	}
	sn := s.Snapshot()
	blob := sn.Serialize()
	back, err := DeserializeSnapshot(blob)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != sn.NumNodes() {
		t.Fatalf("round trip node count %d != %d", back.NumNodes(), sn.NumNodes())
	}
	if v, err := back.Read("/local/domain/3/name"); err != nil || v != "g3" {
		t.Fatalf("round-trip read = %q, %v", v, err)
	}
	d1, _ := sn.Directory("/local/domain")
	d2, err := back.Directory("/local/domain")
	if err != nil || len(d1) != len(d2) {
		t.Fatalf("round-trip directory = %v vs %v (%v)", d2, d1, err)
	}
	// Canonical format: re-serializing the round-tripped snapshot must
	// reproduce the exact bytes.
	if !bytes.Equal(back.Serialize(), blob) {
		t.Fatal("serialize(deserialize(blob)) != blob — format not canonical")
	}
}

func TestDeserializeRejectsMalformed(t *testing.T) {
	s, _ := newStore()
	populateGuests(s, 2)
	good := s.Snapshot().Serialize()
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   []byte("not-a-snapshot"),
		"truncated":   good[:len(good)-3],
		"trailing":    append(append([]byte{}, good...), 0x00),
		"flipped len": append([]byte{}, good...),
	}
	cases["flipped len"][len(snapMagic)+1] = 0xff // huge name length
	for name, blob := range cases {
		if _, err := DeserializeSnapshot(blob); err == nil {
			t.Errorf("%s: malformed blob accepted", name)
		} else if !errors.Is(err, ErrBadSnapshot) {
			t.Errorf("%s: error %v is not ErrBadSnapshot", name, err)
		}
	}
}

func TestSubtreeSnapshotAndGraft(t *testing.T) {
	src, _ := newStore()
	populateGuests(src, 3)
	sub, err := src.Snapshot().Subtree("/local/domain/2")
	if err != nil {
		t.Fatal(err)
	}
	if v, err := sub.Read("/name"); err != nil || v != "g2" {
		t.Fatalf("subtree read = %q, %v", v, err)
	}

	dst, _ := newStore()
	dst.Write("/local/domain/9/placeholder", "x")
	fired := 0
	dst.Watch("/local/domain/9", "tok", func(string, string) { fired++ })
	if err := dst.GraftSnapshot(src.Snapshot(), "/local/domain/2", "/local/domain/9"); err != nil {
		t.Fatal(err)
	}
	if v, err := dst.Read("/local/domain/9/name"); err != nil || v != "g2" {
		t.Fatalf("grafted read = %q, %v", v, err)
	}
	if dst.Exists("/local/domain/9/placeholder") {
		t.Fatal("graft merged instead of replacing the destination")
	}
	if fired != 1 {
		t.Fatalf("graft fired %d watch events at dst, want 1", fired)
	}
	// Generation order must stay monotonic after grafting foreign-store
	// state: a fresh transaction must not see phantom conflicts.
	if err := dst.Txn(3, func(tx *Tx) error {
		if _, err := tx.Read("/local/domain/9/name"); err != nil {
			return err
		}
		tx.Write("/local/domain/9/resumed", "1")
		return nil
	}); err != nil {
		t.Fatalf("txn after graft: %v", err)
	}

	// Graft from a serialized checkpoint (the migrate path).
	dst2, _ := newStore()
	blob := src.Snapshot().Serialize()
	back, err := DeserializeSnapshot(blob)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst2.GraftSnapshot(back, "/local/domain/2", "/local/domain/4"); err != nil {
		t.Fatal(err)
	}
	if v, err := dst2.Read("/local/domain/4/device/vif/0/state"); err != nil || v != "4" {
		t.Fatalf("deserialized graft read = %q, %v", v, err)
	}

	if err := dst.GraftSnapshot(sub, "/missing", "/x"); !errors.Is(err, ErrNoEnt) {
		t.Fatalf("graft of missing src path: %v", err)
	}
	if err := dst.GraftSnapshot(sub, "/", "/"); err == nil {
		t.Fatal("graft onto the root accepted")
	}
}

func TestSnapshotAllocsFlat(t *testing.T) {
	// O(1) capture, allocation view: taking a snapshot allocates the
	// same tiny constant whether the store holds 10 or 10,000 guests'
	// worth of nodes.
	small, _ := newStore()
	populateGuests(small, 10)
	big, _ := newStore()
	populateGuests(big, 2000)
	a1 := testing.AllocsPerRun(100, func() { _ = small.Snapshot() })
	a2 := testing.AllocsPerRun(100, func() { _ = big.Snapshot() })
	if a1 != a2 {
		t.Fatalf("snapshot allocations scale with store size: %.1f at 10 guests vs %.1f at 2000", a1, a2)
	}
	if a1 > 1 {
		t.Fatalf("snapshot allocates %.1f objects, want ≤1", a1)
	}
}

// TestSnapshotRaceHammer drives Snapshot() and snapshot reads from
// many goroutines while the owning timeline keeps committing
// transactions and delivering watch events. Run under -race (make
// verify-race); the single-mutator/multi-observer contract means the
// only shared state is the atomic root.
func TestSnapshotRaceHammer(t *testing.T) {
	s, _ := newStore()
	populateGuests(s, 50)
	s.Watch("/local/domain", "hammer", func(string, string) {})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				sn := s.Snapshot()
				if sn.NumNodes() == 0 {
					t.Error("snapshot saw an empty store")
					return
				}
				if _, err := sn.Read("/local/domain/1/name"); err != nil {
					t.Errorf("snapshot read: %v", err)
					return
				}
				if _, err := sn.Directory("/local/domain"); err != nil {
					t.Errorf("snapshot directory: %v", err)
					return
				}
				_ = sn.Serialize()
			}
		}()
	}
	// The mutator stays on this goroutine: transactions, plain writes,
	// deletes, watch-triggering paths.
	for i := 0; i < 300; i++ {
		d := fmt.Sprintf("/local/domain/%d", 1+i%50)
		if err := s.Txn(8, func(tx *Tx) error {
			tx.Write(d+"/control/shutdown", "suspend")
			tx.Write(d+"/memory/target", "4096")
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		s.Write(d+"/device/vif/0/state", "2")
		_ = s.Rm(d + "/control/shutdown")
	}
	close(stop)
	wg.Wait()
}

// BenchmarkSnapshot is the O(1) acceptance benchmark: capture time
// must stay flat (within noise) from 10 to 10,000 guests' worth of
// store nodes.
func BenchmarkSnapshot(b *testing.B) {
	for _, guests := range []int{10, 100, 1000, 10000} {
		b.Run(fmt.Sprintf("guests=%d", guests), func(b *testing.B) {
			s, _ := newStore()
			s.LoggingEnabled = false
			populateGuests(s, guests)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = s.Snapshot()
			}
		})
	}
}
