package xenstore

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"lightvm/internal/costs"
	"lightvm/internal/faults"
)

// TxnID identifies an open transaction.
type TxnID uint64

type txn struct {
	id       TxnID
	startGen uint64
	readGens map[string]uint64  // path → generation observed (0 = absent)
	writes   map[string]*string // path → value; nil means delete
	order    []string           // write application order
}

// Tx is the client handle for operations inside a transaction.
// Reads observe committed state (plus the transaction's own writes);
// writes are buffered until Commit. Any node observed or written that
// another committer modifies in the meantime aborts the commit with
// ErrAgain — exactly the overlap failure mode the paper blames for
// XenStore slowdowns under load (§4.2).
type Tx struct {
	s *Store
	t *txn
}

// TxnStart opens a transaction.
func (s *Store) TxnStart() *Tx {
	s.nextTxn++
	t := &txn{
		id:       s.nextTxn,
		startGen: s.gen,
		readGens: make(map[string]uint64),
		writes:   make(map[string]*string),
	}
	s.txns[t.id] = t
	s.Count.TxnStarts++
	s.chargeOp(1)
	return &Tx{s: s, t: t}
}

// observe records the generation of path at read time.
func (tx *Tx) observe(path string) {
	p := normalize(path)
	if _, ok := tx.t.readGens[p]; ok {
		return
	}
	n, _, err := tx.s.lookup(p)
	if err != nil {
		tx.t.readGens[p] = 0
		return
	}
	tx.t.readGens[p] = n.gen
}

// Read returns the value at path as seen by the transaction.
func (tx *Tx) Read(path string) (string, error) {
	p := normalize(path)
	if v, ok := tx.t.writes[p]; ok {
		tx.s.chargeOp(1)
		if v == nil {
			return "", fmt.Errorf("%w: %s", ErrNoEnt, path)
		}
		return *v, nil
	}
	tx.observe(p)
	return tx.s.Read(p)
}

// Exists reports whether path resolves within the transaction.
func (tx *Tx) Exists(path string) bool {
	p := normalize(path)
	if v, ok := tx.t.writes[p]; ok {
		tx.s.chargeOp(1)
		return v != nil
	}
	tx.observe(p)
	return tx.s.Exists(p)
}

// Directory lists children of path (committed view merged with the
// transaction's own writes directly beneath path).
func (tx *Tx) Directory(path string) ([]string, error) {
	p := normalize(path)
	tx.observe(p)
	names, err := tx.s.Directory(p)
	if err != nil && len(tx.t.writes) == 0 {
		return nil, err
	}
	set := make(map[string]bool, len(names))
	for _, n := range names {
		set[n] = true
	}
	for wp, v := range tx.t.writes {
		if !strings.HasPrefix(wp, p+"/") {
			continue
		}
		rest := strings.TrimPrefix(wp, p+"/")
		first := strings.SplitN(rest, "/", 2)[0]
		if v == nil && rest == first {
			delete(set, first)
		} else if v != nil {
			set[first] = true
		}
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out, nil
}

// Write buffers a write.
func (tx *Tx) Write(path, value string) {
	p := normalize(path)
	if _, ok := tx.t.writes[p]; !ok {
		tx.t.order = append(tx.t.order, p)
	}
	v := value
	tx.t.writes[p] = &v
	tx.s.chargeOp(1)
}

// Rm buffers a delete.
func (tx *Tx) Rm(path string) {
	p := normalize(path)
	if _, ok := tx.t.writes[p]; !ok {
		tx.t.order = append(tx.t.order, p)
	}
	tx.t.writes[p] = nil
	tx.s.chargeOp(1)
}

// Abort discards the transaction.
func (tx *Tx) Abort() {
	delete(tx.s.txns, tx.t.id)
	tx.s.chargeOp(1)
}

// Commit validates and applies the transaction. It returns ErrAgain
// if any observed or written node changed since it was accessed;
// callers re-run their transaction body (see Store.Txn).
func (tx *Tx) Commit() error {
	s := tx.s
	t := tx.t
	if _, ok := s.txns[t.id]; !ok {
		return ErrBadTxn
	}
	if s.Faults.Fire(faults.KindTxnConflict) {
		// An overlapping committer got in first (§4.2's failure mode,
		// forced): the daemon rejects the commit exactly as it would a
		// genuine generation mismatch.
		s.chargeOp(1)
		s.Count.TxnConflicts++
		s.Count.InjectedConflicts++
		delete(s.txns, t.id)
		return ErrAgain
	}
	// Validation: every read must still be at the observed generation,
	// and every written path must not have been modified since start.
	touched := 0
	conflict := false
	for p, g := range t.readGens {
		touched++
		n, _, err := s.lookup(p)
		switch {
		case err != nil && g != 0:
			conflict = true // node vanished
		case err == nil && n.gen != g:
			conflict = true // node changed (or appeared: g==0)
		}
		if conflict {
			break
		}
	}
	if !conflict {
		for p := range t.writes {
			touched++
			if n, _, err := s.lookup(p); err == nil && n.gen > t.startGen {
				conflict = true
				break
			}
		}
	}
	s.chargeOp(touched + 1)
	if conflict {
		s.Count.TxnConflicts++
		delete(s.txns, t.id)
		return ErrAgain
	}
	// Apply in order; watches fire per write, as on a real commit.
	for _, p := range t.order {
		v := t.writes[p]
		if v == nil {
			_ = s.Rm(p)
		} else {
			s.WriteAs(0, p, *v)
		}
	}
	s.Count.TxnCommits++
	delete(s.txns, t.id)
	return nil
}

// Txn runs body in a transaction, retrying on ErrAgain up to
// maxRetries times. Backoff between attempts is exponential — the
// paper's retry penalty doubling per attempt, capped at
// costs.XSTxnBackoffMax — plus deterministic jitter from the fault
// plane when one is attached (nil injectors add nothing, so
// undisturbed runs are byte-identical). Exhausting the budget returns
// ErrTxnRetriesExhausted (wrapping ErrAgain).
func (s *Store) Txn(maxRetries int, body func(tx *Tx) error) error {
	for attempt := 0; ; attempt++ {
		tx := s.TxnStart()
		if err := body(tx); err != nil {
			tx.Abort()
			return err
		}
		err := tx.Commit()
		if err == nil {
			return nil
		}
		if !errors.Is(err, ErrAgain) {
			return err
		}
		if attempt >= maxRetries {
			return fmt.Errorf("%w: gave up after %d attempts: %w",
				ErrTxnRetriesExhausted, attempt+1, err)
		}
		s.clock.Sleep(txnBackoff(attempt) + s.Faults.Jitter(faults.KindTxnConflict, costs.XSTxnRetry))
	}
}

// txnBackoff is the delay before retry attempt+1: the base penalty
// doubled per failed attempt, capped so a deep conflict storm cannot
// park a toolstack for seconds.
func txnBackoff(attempt int) time.Duration {
	d := costs.XSTxnRetry
	for i := 0; i < attempt && d < costs.XSTxnBackoffMax; i++ {
		d *= 2
	}
	if d > costs.XSTxnBackoffMax {
		d = costs.XSTxnBackoffMax
	}
	return d
}
