package xenstore

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"lightvm/internal/costs"
	"lightvm/internal/faults"
)

// TxnID identifies an open transaction.
type TxnID uint64

// Transactions are the second-hottest xenstore path after plain writes
// (every toolstack create commits two, every device another). The
// original implementation allocated two maps per TxnStart and boxed
// every buffered value in a *string; this one keeps read and write
// sets in small reusable slices keyed by interned path ids, and the
// txn structs themselves recycle through a per-store free list — a
// warm transaction start/observe/write/commit cycle allocates only
// its handle.
//
// Paths are interned into the store's symbol table (pathID): dense
// uint32 ids assigned in first-seen order, so they are deterministic
// for a deterministic op sequence and cheap to compare and sort.
// Conflict detection semantics are identical to the map-based
// implementation; the only observable refinement is that validation
// now walks the read set in sorted-id order (the map version walked it
// in Go's randomized map order), which makes the touched-node count of
// a genuinely conflicting commit deterministic — a property the
// model-check harness and the byte-identical golden figures rely on.

// readEnt records the generation a transaction observed for a path
// (0 = absent). The read set is kept sorted by path id.
type readEnt struct {
	path uint32
	gen  uint64
}

// writeEnt is one buffered write (del means delete). The write set
// preserves first-write order — commits apply in that order, with
// later writes to the same path updated in place.
type writeEnt struct {
	path uint32
	val  string
	del  bool
}

type txn struct {
	id       TxnID
	startGen uint64
	live     bool
	reads    []readEnt
	writes   []writeEnt
}

// Tx is the client handle for operations inside a transaction.
// Reads observe committed state (plus the transaction's own writes);
// writes are buffered until Commit. Any node observed or written that
// another committer modifies in the meantime aborts the commit with
// ErrAgain — exactly the overlap failure mode the paper blames for
// XenStore slowdowns under load (§4.2). The id field guards against
// stale handles: the underlying txn struct is recycled, and a handle
// whose id no longer matches is treated as a dead transaction.
type Tx struct {
	s  *Store
	t  *txn
	id TxnID
}

// valid reports whether the handle still refers to its live txn.
func (tx *Tx) valid() bool {
	return tx.t != nil && tx.t.live && tx.t.id == tx.id
}

// pathID interns p into the store's symbol table.
func (s *Store) pathID(p string) uint32 {
	if id, ok := s.pathIDs[p]; ok {
		return id
	}
	if s.pathIDs == nil {
		s.pathIDs = make(map[string]uint32)
	}
	id := uint32(len(s.paths))
	s.paths = append(s.paths, p)
	s.pathIDs[p] = id
	return id
}

// pathTabMax bounds the symbol table: when no transaction is open and
// the table has grown past this, it is rebuilt empty (ids are only
// meaningful within a transaction's lifetime).
const pathTabMax = 1 << 15

func (s *Store) maybeResetPaths() {
	if len(s.openTxns) == 0 && len(s.paths) > pathTabMax {
		s.pathIDs = nil
		s.paths = s.paths[:0]
	}
}

// getTxn draws a recycled txn struct or makes a fresh one.
func (s *Store) getTxn() *txn {
	if n := len(s.freeTxns); n > 0 {
		t := s.freeTxns[n-1]
		s.freeTxns[n-1] = nil
		s.freeTxns = s.freeTxns[:n-1]
		return t
	}
	return &txn{}
}

// recycleTxn closes t (commit, abort, conflict) and returns it to the
// free list with its sets emptied.
func (s *Store) recycleTxn(t *txn) {
	for i, x := range s.openTxns {
		if x == t {
			s.openTxns = append(s.openTxns[:i], s.openTxns[i+1:]...)
			break
		}
	}
	t.live = false
	t.reads = t.reads[:0]
	for i := range t.writes {
		t.writes[i] = writeEnt{} // unpin buffered value strings
	}
	t.writes = t.writes[:0]
	if len(s.freeTxns) < 64 {
		s.freeTxns = append(s.freeTxns, t)
	}
}

// TxnStart opens a transaction.
func (s *Store) TxnStart() *Tx {
	s.maybeResetPaths()
	s.nextTxn++
	t := s.getTxn()
	t.id = s.nextTxn
	t.startGen = s.gen
	t.live = true
	s.openTxns = append(s.openTxns, t)
	s.Count.TxnStarts++
	s.chargeOp(1)
	return &Tx{s: s, t: t, id: t.id}
}

// findRead returns the index of id in t.reads, or the insertion point
// with found=false. Hand-rolled binary search: no func value, no
// bounds surprises.
func (t *txn) findRead(id uint32) (int, bool) {
	lo, hi := 0, len(t.reads)
	for lo < hi {
		mid := (lo + hi) / 2
		if t.reads[mid].path < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(t.reads) && t.reads[lo].path == id
}

// observe records the generation of path at read time.
func (tx *Tx) observe(p string) {
	if !tx.valid() {
		return
	}
	id := tx.s.pathID(p)
	t := tx.t
	i, found := t.findRead(id)
	if found {
		return
	}
	var g uint64
	if n, _ := tx.s.resolve(p); n != nil {
		g = n.gen
	}
	t.reads = append(t.reads, readEnt{})
	copy(t.reads[i+1:], t.reads[i:])
	t.reads[i] = readEnt{path: id, gen: g}
}

// findWrite returns the buffered write for p, or nil.
func (tx *Tx) findWrite(p string) *writeEnt {
	if !tx.valid() || len(tx.t.writes) == 0 {
		return nil
	}
	id, ok := tx.s.pathIDs[p]
	if !ok {
		return nil
	}
	for i := range tx.t.writes {
		if tx.t.writes[i].path == id {
			return &tx.t.writes[i]
		}
	}
	return nil
}

// Read returns the value at path as seen by the transaction.
func (tx *Tx) Read(path string) (string, error) {
	p := normalize(path)
	if w := tx.findWrite(p); w != nil {
		tx.s.chargeOp(1)
		if w.del {
			return "", &noEntError{path}
		}
		return w.val, nil
	}
	tx.observe(p)
	return tx.s.Read(p)
}

// Exists reports whether path resolves within the transaction.
func (tx *Tx) Exists(path string) bool {
	p := normalize(path)
	if w := tx.findWrite(p); w != nil {
		tx.s.chargeOp(1)
		return !w.del
	}
	tx.observe(p)
	return tx.s.Exists(p)
}

// Directory lists children of path (committed view merged with the
// transaction's own writes directly beneath path).
func (tx *Tx) Directory(path string) ([]string, error) {
	p := normalize(path)
	tx.observe(p)
	names, err := tx.s.Directory(p)
	if !tx.valid() || len(tx.t.writes) == 0 {
		return names, err
	}
	if err != nil {
		names = names[:0]
	}
	prefix := p + "/"
	out := names
	for _, w := range tx.t.writes {
		wp := tx.s.paths[w.path]
		if !strings.HasPrefix(wp, prefix) {
			continue
		}
		rest := wp[len(prefix):]
		first := rest
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			first = rest[:i]
		}
		if w.del && rest == first {
			for i, n := range out {
				if n == first {
					out = append(out[:i], out[i+1:]...)
					break
				}
			}
		} else if !w.del {
			dup := false
			for _, n := range out {
				if n == first {
					dup = true
					break
				}
			}
			if !dup {
				out = append(out, first)
			}
		}
	}
	sort.Strings(out)
	return out, nil
}

// put buffers a write or delete for p, preserving first-write order.
func (tx *Tx) put(p, val string, del bool) {
	if !tx.valid() {
		return
	}
	id := tx.s.pathID(p)
	t := tx.t
	for i := range t.writes {
		if t.writes[i].path == id {
			t.writes[i].val, t.writes[i].del = val, del
			return
		}
	}
	t.writes = append(t.writes, writeEnt{path: id, val: val, del: del})
}

// Write buffers a write.
func (tx *Tx) Write(path, value string) {
	tx.put(normalize(path), value, false)
	tx.s.chargeOp(1)
}

// Rm buffers a delete.
func (tx *Tx) Rm(path string) {
	tx.put(normalize(path), "", true)
	tx.s.chargeOp(1)
}

// Abort discards the transaction.
func (tx *Tx) Abort() {
	if tx.valid() {
		tx.s.recycleTxn(tx.t)
	}
	tx.s.chargeOp(1)
}

// Commit validates and applies the transaction. It returns ErrAgain
// if any observed or written node changed since it was accessed;
// callers re-run their transaction body (see Store.Txn).
func (tx *Tx) Commit() error {
	s := tx.s
	if !tx.valid() {
		return ErrBadTxn
	}
	t := tx.t
	if s.Faults.Fire(faults.KindTxnConflict) {
		// An overlapping committer got in first (§4.2's failure mode,
		// forced): the daemon rejects the commit exactly as it would a
		// genuine generation mismatch.
		s.chargeOp(1)
		s.Count.TxnConflicts++
		s.Count.InjectedConflicts++
		s.recycleTxn(t)
		return ErrAgain
	}
	// Validation: every read must still be at the observed generation,
	// and every written path must not have been modified since start.
	touched := 0
	conflict := false
	for _, r := range t.reads {
		touched++
		n, _ := s.resolve(s.paths[r.path])
		switch {
		case n == nil && r.gen != 0:
			conflict = true // node vanished
		case n != nil && n.gen != r.gen:
			conflict = true // node changed (or appeared: gen==0)
		}
		if conflict {
			break
		}
	}
	if !conflict {
		for i := range t.writes {
			touched++
			if n, _ := s.resolve(s.paths[t.writes[i].path]); n != nil && n.gen > t.startGen {
				conflict = true
				break
			}
		}
	}
	s.chargeOp(touched + 1)
	if conflict {
		s.Count.TxnConflicts++
		s.recycleTxn(t)
		return ErrAgain
	}
	// Apply in order; watches fire per write, as on a real commit.
	for i := range t.writes {
		w := &t.writes[i]
		if w.del {
			_ = s.Rm(s.paths[w.path])
		} else {
			s.WriteAs(0, s.paths[w.path], w.val)
		}
	}
	s.Count.TxnCommits++
	s.recycleTxn(t)
	return nil
}

// Txn runs body in a transaction, retrying on ErrAgain up to
// maxRetries times. Backoff between attempts is exponential — the
// paper's retry penalty doubling per attempt, capped at
// costs.XSTxnBackoffMax — plus deterministic jitter from the fault
// plane when one is attached (nil injectors add nothing, so
// undisturbed runs are byte-identical). Exhausting the budget returns
// ErrTxnRetriesExhausted (wrapping ErrAgain).
func (s *Store) Txn(maxRetries int, body func(tx *Tx) error) error {
	for attempt := 0; ; attempt++ {
		tx := s.TxnStart()
		if err := body(tx); err != nil {
			tx.Abort()
			return err
		}
		err := tx.Commit()
		if err == nil {
			return nil
		}
		if !errors.Is(err, ErrAgain) {
			return err
		}
		if attempt >= maxRetries {
			return fmt.Errorf("%w: gave up after %d attempts: %w",
				ErrTxnRetriesExhausted, attempt+1, err)
		}
		s.clock.Sleep(txnBackoff(attempt) + s.Faults.Jitter(faults.KindTxnConflict, costs.XSTxnRetry))
	}
}

// txnBackoff is the delay before retry attempt+1: the base penalty
// doubled per failed attempt, capped so a deep conflict storm cannot
// park a toolstack for seconds.
func txnBackoff(attempt int) time.Duration {
	d := costs.XSTxnRetry
	for i := 0; i < attempt && d < costs.XSTxnBackoffMax; i++ {
		d *= 2
	}
	if d > costs.XSTxnBackoffMax {
		d = costs.XSTxnBackoffMax
	}
	return d
}
