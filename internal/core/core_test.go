package core

import (
	"fmt"
	"testing"
	"time"

	"lightvm/internal/apps"
	"lightvm/internal/guest"
	"lightvm/internal/sched"
	"lightvm/internal/sim"
	"lightvm/internal/toolstack"
	"lightvm/internal/vnet"
)

func newHost(t *testing.T) *Host {
	t.Helper()
	h, err := NewHost(sched.Xeon4, 1)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHostLifecycle(t *testing.T) {
	h := newHost(t)
	vm, err := h.CreateVM(toolstack.ModeChaosNoXS, "g1", guest.Daytime())
	if err != nil {
		t.Fatal(err)
	}
	if h.VMs() != 1 {
		t.Fatalf("VMs = %d", h.VMs())
	}
	// The vif landed on the real switch.
	if h.Switch.Ports() != 1 {
		t.Fatalf("switch ports = %d", h.Switch.Ports())
	}
	if err := h.DestroyVM(vm); err != nil {
		t.Fatal(err)
	}
	if h.VMs() != 0 || h.Switch.Ports() != 0 {
		t.Fatalf("teardown incomplete: vms=%d ports=%d", h.VMs(), h.Switch.Ports())
	}
}

func TestDriverCached(t *testing.T) {
	h := newHost(t)
	if h.Driver(toolstack.ModeXL) != h.Driver(toolstack.ModeXL) {
		t.Fatal("driver not cached")
	}
}

func TestEnsureFlavorStocksPool(t *testing.T) {
	h := newHost(t)
	if err := h.EnsureFlavor(guest.Daytime(), toolstack.ModeLightVM); err != nil {
		t.Fatal(err)
	}
	vm, err := h.CreateVM(toolstack.ModeLightVM, "fast", guest.Daytime())
	if err != nil {
		t.Fatal(err)
	}
	total := vm.CreateTime + vm.BootTime
	if total > 8*time.Millisecond {
		t.Fatalf("LightVM create+boot with stocked pool = %v", total)
	}
	// No pool miss beyond the initial flavor registration.
	if h.Env.Pool.Stats.Misses > 1 {
		t.Fatalf("misses = %d", h.Env.Pool.Stats.Misses)
	}
}

func TestVMsAndContainersShareMemoryBudget(t *testing.T) {
	h := newHost(t)
	before := h.MemoryUsedBytes()
	if _, err := h.CreateVM(toolstack.ModeChaosNoXS, "vm", guest.Minipython()); err != nil {
		t.Fatal(err)
	}
	afterVM := h.MemoryUsedBytes()
	if afterVM <= before {
		t.Fatal("VM consumed no memory")
	}
	if _, err := h.Docker.Run("micropython"); err != nil {
		t.Fatal(err)
	}
	if h.MemoryUsedBytes() <= afterVM {
		t.Fatal("container consumed no memory")
	}
	if _, err := h.Procs.Spawn(1 << 20); err != nil {
		t.Fatal(err)
	}
}

func TestCPUUtilizationGrowsWithDebianGuests(t *testing.T) {
	h, err := NewHost(sched.Machine{Name: "big", Cores: 4, Dom0Cores: 1, MemoryGB: 512}, 1)
	if err != nil {
		t.Fatal(err)
	}
	u0 := h.CPUUtilization()
	for i := 0; i < 50; i++ {
		if _, err := h.CreateVM(toolstack.ModeChaosNoXS, fmt.Sprintf("d%d", i), guest.DebianMinimal()); err != nil {
			t.Fatal(err)
		}
	}
	if h.CPUUtilization() <= u0 {
		t.Fatal("utilization flat with 50 Debian guests")
	}
}

func TestSaveRestoreThroughHost(t *testing.T) {
	h := newHost(t)
	vm, err := h.CreateVM(toolstack.ModeChaosNoXS, "ck", guest.Daytime())
	if err != nil {
		t.Fatal(err)
	}
	cp, saveT, err := h.Save(vm)
	if err != nil {
		t.Fatal(err)
	}
	restored, restT, err := h.Restore(cp)
	if err != nil {
		t.Fatal(err)
	}
	if saveT <= 0 || restT <= 0 || restored.Name != "ck" {
		t.Fatalf("save=%v restore=%v vm=%+v", saveT, restT, restored)
	}
}

func TestMigrateBetweenHosts(t *testing.T) {
	clock := sim.NewClock()
	src, err := NewHostOn(clock, sched.Xeon4, 1)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := NewHostOn(clock, sched.Xeon4, 2)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := src.CreateVM(toolstack.ModeChaosNoXS, "m", guest.Daytime())
	if err != nil {
		t.Fatal(err)
	}
	moved, d, err := src.MigrateTo(dst, vm)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 || moved.Name != "m" || src.VMs() != 0 || dst.VMs() != 1 {
		t.Fatalf("migration wrong: d=%v src=%d dst=%d", d, src.VMs(), dst.VMs())
	}
}

func TestGuestTable(t *testing.T) {
	rows := GuestTable()
	if len(rows) < 10 {
		t.Fatalf("guest table has %d rows", len(rows))
	}
	for _, r := range rows {
		if r.ImageMB <= 0 || r.RuntimeMB <= 0 {
			t.Fatalf("bad row %+v", r)
		}
	}
}

func TestDeterministicAcrossHosts(t *testing.T) {
	run := func() (time.Duration, uint64) {
		h, err := NewHost(sched.Xeon4, 42)
		if err != nil {
			t.Fatal(err)
		}
		vm, err := h.CreateVM(toolstack.ModeChaosXS, "d", guest.TinyxNoop())
		if err != nil {
			t.Fatal(err)
		}
		return vm.CreateTime + vm.BootTime, h.MemoryUsedBytes()
	}
	t1, m1 := run()
	t2, m2 := run()
	if t1 != t2 || m1 != m2 {
		t.Fatalf("non-deterministic: %v/%v %d/%d", t1, t2, m1, m2)
	}
}

func TestTraceRecordsLifecycle(t *testing.T) {
	h := newHost(t)
	log := h.EnableTrace(0)
	vm, err := h.CreateVM(toolstack.ModeChaosNoXS, "traced", guest.Daytime())
	if err != nil {
		t.Fatal(err)
	}
	cp, _, err := h.Save(vm)
	if err != nil {
		t.Fatal(err)
	}
	vm2, _, err := h.Restore(cp)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.DestroyVM(vm2); err != nil {
		t.Fatal(err)
	}
	if len(log.Filter("toolstack", "create")) != 1 {
		t.Fatalf("create events = %d", len(log.Filter("toolstack", "create")))
	}
	if len(log.Filter("migrate", "save")) != 1 || len(log.Filter("migrate", "restore")) != 1 {
		t.Fatal("checkpoint events missing")
	}
	if len(log.Filter("toolstack", "destroy")) != 1 {
		t.Fatal("destroy event missing")
	}
	// Timestamps are monotone.
	evs := log.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatal("trace out of order")
		}
	}
}

func TestFirewallDataPathEndToEnd(t *testing.T) {
	// Packet-level validation of the §7.1 use case: a real flow
	// through the host switch into a firewall VM's rule engine.
	h := newHost(t)
	vm, err := h.CreateVM(toolstack.ModeChaosNoXS, "fw", guest.ClickOSFirewall())
	if err != nil {
		t.Fatal(err)
	}
	fw, err := apps.NewPersonalFirewall("10.7.0.0/16", []string{"203.0.113.0/24"})
	if err != nil {
		t.Fatal(err)
	}
	good, _ := apps.ParseIPv4("10.7.1.2")
	bad, _ := apps.ParseIPv4("203.0.113.5")
	dst, _ := apps.ParseIPv4("198.51.100.1")

	vif := fmt.Sprintf("vif%d.0", vm.Dom.ID)
	forwarded, blocked := 0, 0
	if err := h.Switch.SetHandler(vif, func(p vnet.Packet) {
		src := good
		if p.Seq%2 == 0 {
			src = bad
		}
		if fw.Filter(src, dst, 443) == apps.Allow {
			forwarded++
		} else {
			blocked++
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := h.Switch.AttachPort("uplink"); err != nil {
		t.Fatal(err)
	}
	if err := h.Switch.SetHandler("uplink", func(vnet.Packet) {}); err != nil {
		t.Fatal(err)
	}
	flow, err := vnet.NewFlow(h.Switch, "uplink", vif, 10_000_000, 1500)
	if err != nil {
		t.Fatal(err)
	}
	delivered := flow.Run(100 * time.Millisecond)
	if delivered == 0 {
		t.Fatal("no packets delivered")
	}
	if forwarded == 0 || blocked == 0 {
		t.Fatalf("verdicts: forwarded=%d blocked=%d", forwarded, blocked)
	}
	if forwarded+blocked != int(delivered) {
		t.Fatalf("verdicts %d != delivered %d", forwarded+blocked, delivered)
	}
	if fw.Denied == 0 {
		t.Fatal("firewall counters untouched")
	}
}

func TestAppWiringAnswersPings(t *testing.T) {
	h := newHost(t)
	vm, err := h.CreateVM(toolstack.ModeChaosNoXS, "pingme", guest.Daytime())
	if err != nil {
		t.Fatal(err)
	}
	if !h.Ping(vm) {
		t.Fatal("booted daytime VM did not answer a ping")
	}
	// The daytime app serves TCP connections.
	d, ok := h.AppOf("pingme").(*apps.Daytime)
	if !ok {
		t.Fatalf("AppOf = %T", h.AppOf("pingme"))
	}
	vif := fmt.Sprintf("vif%d.0", vm.Dom.ID)
	h.Switch.Send(vnet.Packet{Src: "ping-probe", Dst: vif, Kind: vnet.PktTCP, Size: 64})
	if d.Served != 1 {
		t.Fatalf("daytime served %d connections", d.Served)
	}
	// Noop guests have no vif: no ping, no app.
	noop, err := h.CreateVM(toolstack.ModeChaosNoXS, "quiet", guest.Noop())
	if err != nil {
		t.Fatal(err)
	}
	if h.Ping(noop) {
		t.Fatal("device-less guest answered a ping")
	}
	if err := h.DestroyVM(vm); err != nil {
		t.Fatal(err)
	}
	if h.AppOf("pingme") != nil {
		t.Fatal("app survived destroy")
	}
}

func TestPauseUnpause(t *testing.T) {
	h, err := NewHost(sched.Machine{Name: "p", Cores: 4, Dom0Cores: 1, MemoryGB: 64}, 1)
	if err != nil {
		t.Fatal(err)
	}
	var vms []*toolstack.VM
	for i := 0; i < 30; i++ {
		vm, err := h.CreateVM(toolstack.ModeChaosNoXS, fmt.Sprintf("d%d", i), guest.DebianMinimal())
		if err != nil {
			t.Fatal(err)
		}
		vms = append(vms, vm)
	}
	busy := h.CPUUtilization()
	memBusy := h.MemoryUsedBytes()
	for _, vm := range vms {
		if err := h.PauseVM(vm); err != nil {
			t.Fatal(err)
		}
	}
	// Frozen guests burn no CPU but keep their memory (the Lambda
	// freeze semantics of §2).
	if got := h.CPUUtilization(); got >= busy {
		t.Fatalf("utilization after pause = %v, was %v", got, busy)
	}
	if h.MemoryUsedBytes() != memBusy {
		t.Fatal("pause released memory")
	}
	// Double pause is rejected; thaw restores the load.
	if err := h.PauseVM(vms[0]); err == nil {
		t.Fatal("double pause accepted")
	}
	start := h.Clock.Now()
	for _, vm := range vms {
		if err := h.UnpauseVM(vm); err != nil {
			t.Fatal(err)
		}
	}
	thaw := time.Duration(h.Clock.Now().Sub(start)) / 30
	if thaw > time.Millisecond {
		t.Fatalf("unpause cost %v per guest, want ≪1ms", thaw)
	}
	if got := h.CPUUtilization(); got < busy*0.95 {
		t.Fatalf("utilization after thaw = %v, was %v", got, busy)
	}
}
