package core

import (
	"fmt"

	"lightvm/internal/apps"
	"lightvm/internal/hv"
	"lightvm/internal/toolstack"
	"lightvm/internal/vnet"
)

// wireApp installs the guest application's packet handler on the VM's
// first vif, so freshly booted guests answer traffic on the host's
// software switch without per-experiment plumbing. Every networked
// guest answers ICMP echoes (the §7.1/§7.2 ping clients); application
// behaviour rides on top.
func (h *Host) wireApp(vm *toolstack.VM) error {
	vif := vifName(vm)
	if vif == "" {
		return nil // no network device (e.g. the noop unikernel)
	}
	reply := func(p vnet.Packet) {
		if p.Kind == vnet.PktICMPEcho {
			h.Switch.Send(vnet.Packet{Src: vif, Dst: p.Src, Kind: vnet.PktICMPReply, Size: p.Size, Seq: p.Seq})
		}
	}
	var handler vnet.Handler
	switch vm.Image.App {
	case "daytime":
		d := &apps.Daytime{Clock: h.Clock}
		h.appOf[vm.Name] = d
		handler = func(p vnet.Packet) {
			reply(p)
			if p.Kind == vnet.PktTCP {
				d.Serve()
			}
		}
	case "firewall":
		fw, err := apps.NewPersonalFirewall("10.0.0.0/8", []string{"203.0.113.0/24"})
		if err != nil {
			return err
		}
		h.appOf[vm.Name] = fw
		handler = func(p vnet.Packet) {
			reply(p)
			if p.Kind == vnet.PktUDP || p.Kind == vnet.PktTCP {
				// Classify on the flow's synthetic addresses: the Seq
				// low bits stand in for the 5-tuple hash in this model.
				src := uint32(0x0a000001 + p.Seq%1024)
				dst := uint32(0xc6336401)
				fw.Filter(src, dst, 443)
			}
		}
	case "minipython":
		pf := &apps.PyFunc{}
		h.appOf[vm.Name] = pf
		handler = reply
	default:
		handler = reply
	}
	if err := h.Switch.SetHandler(vif, handler); err != nil {
		return fmt.Errorf("core: wire %s app on %s: %w", vm.Image.App, vif, err)
	}
	return nil
}

// vifName returns the VM's first vif port name, or "" when it has no
// network device.
func vifName(vm *toolstack.VM) string {
	for _, d := range vm.Image.Devices {
		if d.Kind == hv.DevVif {
			return fmt.Sprintf("vif%d.0", vm.Dom.ID)
		}
	}
	return ""
}

// AppOf returns the application instance wired to a VM (e.g.
// *apps.Daytime, *apps.Firewall), or nil.
func (h *Host) AppOf(name string) interface{} { return h.appOf[name] }

// Ping sends an ICMP echo from a transient client port to the VM's
// vif and reports whether it answered (booted guests with a network
// device always do).
func (h *Host) Ping(vm *toolstack.VM) bool {
	vif := vifName(vm)
	if vif == "" {
		return false
	}
	const probe = "ping-probe"
	if _, attached := h.pingPort[probe]; !attached {
		if err := h.Switch.AttachPort(probe); err == nil {
			h.pingPort[probe] = true
		}
	}
	h.pingSeq++
	return h.Switch.Ping(probe, vif, h.pingSeq)
}
