// Package core assembles the complete LightVM host: the hypervisor and
// its control planes (xl / chaos / split / noxs), the Dom0 software
// switch, the Docker-like container engine and the fork/exec process
// runner — everything a paper experiment or a library user needs on
// one simulated machine.
package core

import (
	"fmt"
	"time"

	"lightvm/internal/container"
	"lightvm/internal/guest"
	"lightvm/internal/migrate"
	"lightvm/internal/sched"
	"lightvm/internal/sim"
	"lightvm/internal/toolstack"
	"lightvm/internal/trace"
	"lightvm/internal/vnet"
)

// Host is one simulated machine.
type Host struct {
	Clock   *sim.Clock
	Machine sched.Machine
	Env     *toolstack.Env
	Switch  *vnet.Switch
	Docker  *container.Engine
	Procs   *container.ProcessRunner
	RNG     *sim.RNG

	drivers  map[toolstack.Mode]toolstack.Driver
	appOf    map[string]interface{}
	pingPort map[string]bool
	pingSeq  uint64
}

// NewHost builds a host on machine; seed fixes all stochastic
// behaviour (process-spawn tails etc.), keeping runs reproducible.
func NewHost(machine sched.Machine, seed uint64) (*Host, error) {
	clock := sim.NewClock()
	return NewHostOn(clock, machine, seed)
}

// NewHostOn builds a host on an existing clock (migration experiments
// need two hosts sharing one timeline).
func NewHostOn(clock *sim.Clock, machine sched.Machine, seed uint64) (*Host, error) {
	h := &Host{
		Clock:    clock,
		Machine:  machine,
		Env:      toolstack.NewEnv(clock, machine),
		RNG:      sim.NewRNG(seed),
		drivers:  make(map[toolstack.Mode]toolstack.Driver),
		appOf:    make(map[string]interface{}),
		pingPort: make(map[string]bool),
	}
	h.Switch = vnet.NewSwitch(clock)
	// Plumb the real software switch into both hotplug mechanisms.
	h.Env.Bash.Bridge = h.Switch
	h.Env.Xendevd.Bridge = h.Switch
	h.Env.Bridge = h.Switch

	docker, err := container.NewEngine(clock, h.Env.HV.Mem)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	docker.Pull(container.MicropythonImage())
	docker.Pull(container.NoopImage())
	h.Docker = docker
	h.Procs = container.NewProcessRunner(clock, h.Env.HV.Mem, h.RNG)
	return h, nil
}

// Driver returns (and caches) the toolstack for a mode. Note that xl
// and chaos reconfigure the vif hotplug mechanism when constructed, so
// a host should stick to one mode per experiment, as the paper does.
func (h *Host) Driver(mode toolstack.Mode) toolstack.Driver {
	d, ok := h.drivers[mode]
	if !ok {
		d = h.Env.ForMode(mode)
		h.drivers[mode] = d
	}
	return d
}

// EnsureFlavor registers an image's shell flavor with the split-
// toolstack pool and fills it; call before measuring split-mode
// creations, as the chaos daemon does on configuration.
func (h *Host) EnsureFlavor(img guest.Image, mode toolstack.Mode) error {
	if !mode.UsesSplit() {
		return nil
	}
	f := toolstack.FlavorFor(img, mode.UsesStore())
	// Register rather than Take: a probing Take would pull a shell out
	// of the pool with no way to put it back, leaking its domain.
	h.Env.Pool.Register(f)
	return h.Env.Pool.Replenish()
}

// Replenish tops up the shell pool (the daemon's background beat; the
// experiment harness calls it between measured creations).
func (h *Host) Replenish() error { return h.Env.Pool.Replenish() }

// EnableMemDedup turns on the §9 memory-sharing extension: unikernel
// guests booted from the same image share its resident pages.
func (h *Host) EnableMemDedup() { h.Env.MemDedup = true }

// EnableTrace attaches an operation trace (max 0 = default cap) and
// returns it.
func (h *Host) EnableTrace(max int) *trace.Log {
	h.Env.Trace = trace.New(h.Clock, max)
	return h.Env.Trace
}

// CreateVM creates and boots a guest with the mode's toolstack, then
// wires its application onto the host switch.
func (h *Host) CreateVM(mode toolstack.Mode, name string, img guest.Image) (*toolstack.VM, error) {
	vm, err := h.Driver(mode).Create(name, img)
	if err != nil {
		return nil, err
	}
	if err := h.wireApp(vm); err != nil {
		_ = h.Driver(mode).Destroy(vm)
		return nil, err
	}
	return vm, nil
}

// DestroyVM tears a guest down.
func (h *Host) DestroyVM(vm *toolstack.VM) error {
	delete(h.appOf, vm.Name)
	return h.Driver(vm.Mode).Destroy(vm)
}

// PauseVM freezes a running guest (state resident, no CPU).
func (h *Host) PauseVM(vm *toolstack.VM) error { return h.Env.PauseVM(vm) }

// UnpauseVM thaws a frozen guest with a single hypercall.
func (h *Host) UnpauseVM(vm *toolstack.VM) error { return h.Env.UnpauseVM(vm) }

// CloneVM forks a running guest SnowFlock-style: the child resumes
// from the parent's state sharing its memory copy-on-write. See
// toolstack.Env.CloneVM.
func (h *Host) CloneVM(parent *toolstack.VM, name string) (*toolstack.VM, error) {
	vm, err := h.Env.CloneVM(parent, name)
	if err != nil {
		return nil, err
	}
	if err := h.wireApp(vm); err != nil {
		_ = h.DestroyVM(vm)
		return nil, err
	}
	return vm, nil
}

// Save checkpoints a VM.
func (h *Host) Save(vm *toolstack.VM) (*migrate.Checkpoint, time.Duration, error) {
	return migrate.Save(h.Env, vm)
}

// Restore resumes a checkpoint on this host.
func (h *Host) Restore(cp *migrate.Checkpoint) (*toolstack.VM, time.Duration, error) {
	return migrate.Restore(h.Env, cp)
}

// MigrateTo live-migrates a VM to dst (same clock required).
func (h *Host) MigrateTo(dst *Host, vm *toolstack.VM) (*toolstack.VM, time.Duration, error) {
	return migrate.Migrate(h.Env, dst.Env, vm)
}

// VMs reports tracked guests.
func (h *Host) VMs() int { return h.Env.VMs() }

// MemoryUsedBytes reports total host memory in use (Dom0 + guests +
// containers + processes; they all share the same allocator).
func (h *Host) MemoryUsedBytes() uint64 { return h.Env.HV.UsedMemBytes() }

// CPUUtilization reports the Fig. 15 metric as a fraction of the
// machine.
func (h *Host) CPUUtilization() float64 { return h.Env.Sched.Utilization() }

// GuestTableRow summarizes one catalog image for the §3/§6 inventory.
type GuestTableRow struct {
	Name        string
	Kind        guest.Kind
	ImageMB     float64
	RuntimeMB   float64
	BootWork    time.Duration
	DeviceCount int
}

// GuestTable returns the guest inventory rows.
func GuestTable() []GuestTableRow {
	var out []GuestTableRow
	for _, im := range guest.Catalog() {
		out = append(out, GuestTableRow{
			Name:        im.Name,
			Kind:        im.Kind,
			ImageMB:     float64(im.SizeBytes) / (1 << 20),
			RuntimeMB:   float64(im.MemBytes) / (1 << 20),
			BootWork:    im.BootWork,
			DeviceCount: len(im.Devices),
		})
	}
	return out
}
