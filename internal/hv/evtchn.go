package hv

import (
	"fmt"
	"sort"

	"lightvm/internal/costs"
)

// Port identifies an event channel endpoint.
type Port uint32

// Handler is invoked when an event is delivered on a port. Delivery
// happens synchronously at Send time (the upcall cost is charged
// first), mirroring how a software interrupt preempts the vCPU.
type Handler func()

// channel is an inter-domain event channel.
type channel struct {
	owner   DomID // allocating side
	peer    DomID
	handler Handler // receiver's upcall
	bound   bool
	pending uint64
}

// AllocUnboundPort allocates an event channel for owner that peer may
// later bind (the classic backend flow: backend allocates, writes the
// port to the store or device page, frontend binds).
func (h *Hypervisor) AllocUnboundPort(owner, peer DomID) (Port, error) {
	if _, err := h.Domain(owner); err != nil {
		return 0, err
	}
	h.nextPort++
	p := h.nextPort
	h.ports[p] = &channel{owner: owner, peer: peer}
	h.charge(costs.EventChannelAlloc)
	return p, nil
}

// BindPort attaches the peer's upcall handler to the channel.
func (h *Hypervisor) BindPort(p Port, peer DomID, fn Handler) error {
	ch, ok := h.ports[p]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoSuchPort, p)
	}
	if ch.peer != peer {
		return fmt.Errorf("hv: port %d reserved for domain %d, bind from %d", p, ch.peer, peer)
	}
	ch.handler = fn
	ch.bound = true
	h.charge(0)
	return nil
}

// Send notifies the remote end of the channel. The upcall (software
// interrupt) is charged and the handler runs inline.
func (h *Hypervisor) Send(p Port) error {
	ch, ok := h.ports[p]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoSuchPort, p)
	}
	h.Count.EvtchnSends++
	h.charge(costs.SoftIRQ)
	ch.pending++
	if ch.bound && ch.handler != nil {
		ch.handler()
	}
	return nil
}

// ClosePort tears down an event channel.
func (h *Hypervisor) ClosePort(p Port) error {
	if _, ok := h.ports[p]; !ok {
		return fmt.Errorf("%w: %d", ErrNoSuchPort, p)
	}
	delete(h.ports, p)
	h.charge(0)
	return nil
}

// PortPending reports the number of undelivered-or-delivered sends on
// a port (diagnostic).
func (h *Hypervisor) PortPending(p Port) uint64 {
	if ch, ok := h.ports[p]; ok {
		return ch.pending
	}
	return 0
}

// NumPorts reports live event channels (diagnostic).
func (h *Hypervisor) NumPorts() int { return len(h.ports) }

// GrantRef names an entry in a domain's grant table.
type GrantRef uint32

// grant is a page shared by owner with a specific peer.
type grant struct {
	owner    DomID
	peer     DomID
	frame    uint64
	readonly bool
	mapped   bool
}

// GrantAccess shares frame of owner's memory with peer.
func (h *Hypervisor) GrantAccess(owner, peer DomID, frame uint64, readonly bool) (GrantRef, error) {
	if _, err := h.Domain(owner); err != nil {
		return 0, err
	}
	h.nextGrant++
	r := h.nextGrant
	h.grants[r] = &grant{owner: owner, peer: peer, frame: frame, readonly: readonly}
	h.charge(costs.GrantRefSetup)
	return r, nil
}

// MapGrant maps a granted page into peer's address space.
func (h *Hypervisor) MapGrant(r GrantRef, peer DomID) (uint64, error) {
	g, ok := h.grants[r]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrNoSuchGrant, r)
	}
	if g.peer != peer {
		return 0, fmt.Errorf("hv: grant %d not for domain %d", r, peer)
	}
	g.mapped = true
	h.Count.GrantMaps++
	h.charge(costs.GrantRefSetup)
	return g.frame, nil
}

// EndGrant revokes a grant.
func (h *Hypervisor) EndGrant(r GrantRef) error {
	if _, ok := h.grants[r]; !ok {
		return fmt.Errorf("%w: %d", ErrNoSuchGrant, r)
	}
	delete(h.grants, r)
	h.charge(0)
	return nil
}

// NumGrants reports live grant entries (diagnostic).
func (h *Hypervisor) NumGrants() int { return len(h.grants) }

// Endpoint names one side of an event channel or grant as seen by an
// auditor: which domains the entry ties together.
type Endpoint struct {
	Owner DomID
	Peer  DomID
}

// PortEndpoints lists every live event channel's (owner, peer) pair,
// sorted by port number. It is a pure inspection: no virtual time is
// charged, so invariant checkers can call it without perturbing runs.
func (h *Hypervisor) PortEndpoints() []Endpoint {
	ports := make([]Port, 0, len(h.ports))
	for p := range h.ports {
		ports = append(ports, p)
	}
	sort.Slice(ports, func(i, j int) bool { return ports[i] < ports[j] })
	out := make([]Endpoint, len(ports))
	for i, p := range ports {
		ch := h.ports[p]
		out[i] = Endpoint{Owner: ch.owner, Peer: ch.peer}
	}
	return out
}

// GrantEndpoints lists every live grant's (owner, peer) pair, sorted
// by grant ref. Clock-free, like PortEndpoints.
func (h *Hypervisor) GrantEndpoints() []Endpoint {
	refs := make([]GrantRef, 0, len(h.grants))
	for r := range h.grants {
		refs = append(refs, r)
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i] < refs[j] })
	out := make([]Endpoint, len(refs))
	for i, r := range refs {
		g := h.grants[r]
		out[i] = Endpoint{Owner: g.owner, Peer: g.peer}
	}
	return out
}

// HasPort reports whether a port exists, without charging time.
func (h *Hypervisor) HasPort(p Port) bool {
	_, ok := h.ports[p]
	return ok
}

// HasGrant reports whether a grant ref exists, without charging time.
func (h *Hypervisor) HasGrant(r GrantRef) bool {
	_, ok := h.grants[r]
	return ok
}
