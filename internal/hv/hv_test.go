package hv

import (
	"errors"
	"testing"

	"lightvm/internal/sim"
)

const mib = 1024 * 1024

func newHV() *Hypervisor {
	return New(sim.NewClock(), 8*1024*mib)
}

func TestNewReservesDom0(t *testing.T) {
	h := newHV()
	if h.NumDomains() != 0 {
		t.Fatalf("fresh hypervisor has %d guests", h.NumDomains())
	}
	d0, err := h.Domain(0)
	if err != nil {
		t.Fatal(err)
	}
	if d0.State != StateRunning {
		t.Fatalf("Dom0 state %v", d0.State)
	}
	if h.UsedMemBytes() == 0 {
		t.Fatal("Dom0 memory not reserved")
	}
}

func TestDomainLifecycle(t *testing.T) {
	h := newHV()
	d, err := h.CreateDomain(Config{MaxMem: 8 * mib, VCPUs: 1, Cores: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	if d.State != StateCreated {
		t.Fatalf("state after create: %v", d.State)
	}
	if err := h.PopulatePhysmap(d.ID, 8*mib); err != nil {
		t.Fatal(err)
	}
	if d.MemBytes != 8*mib {
		t.Fatalf("MemBytes = %d", d.MemBytes)
	}
	if err := h.LoadImage(d.ID, "daytime", 480*1024); err != nil {
		t.Fatal(err)
	}
	if d.State != StatePaused {
		t.Fatalf("state after load: %v", d.State)
	}
	if err := h.Unpause(d.ID); err != nil {
		t.Fatal(err)
	}
	if d.State != StateRunning {
		t.Fatalf("state after unpause: %v", d.State)
	}
	used := h.UsedMemBytes()
	if err := h.DestroyDomain(d.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Domain(d.ID); !errors.Is(err, ErrNoSuchDomain) {
		t.Fatalf("destroyed domain still resolvable: %v", err)
	}
	if h.UsedMemBytes() >= used {
		t.Fatal("destroy did not release memory")
	}
}

func TestLoadImageRequiresPopulatedMemory(t *testing.T) {
	h := newHV()
	d, _ := h.CreateDomain(Config{MaxMem: mib})
	if err := h.LoadImage(d.ID, "img", mib); err == nil {
		t.Fatal("image load into unpopulated domain accepted")
	}
}

func TestUnpauseRequiresImage(t *testing.T) {
	h := newHV()
	d, _ := h.CreateDomain(Config{MaxMem: mib})
	if err := h.Unpause(d.ID); !errors.Is(err, ErrBadState) {
		t.Fatalf("unpause of unbuilt domain: %v", err)
	}
}

func TestDestroyDom0Refused(t *testing.T) {
	h := newHV()
	if err := h.DestroyDomain(0); !errors.Is(err, ErrNotPrivileged) {
		t.Fatalf("Dom0 destroy: %v", err)
	}
}

func TestVCPUPinningRoundRobin(t *testing.T) {
	h := newHV()
	d, _ := h.CreateDomain(Config{MaxMem: mib, VCPUs: 5, Cores: []int{2, 3}})
	want := []int{2, 3, 2, 3, 2}
	for i, v := range d.VCPUs {
		if v.Core != want[i] {
			t.Fatalf("vcpu %d pinned to core %d, want %d", i, v.Core, want[i])
		}
	}
}

func TestDomainIDsSorted(t *testing.T) {
	h := newHV()
	for i := 0; i < 5; i++ {
		if _, err := h.CreateDomain(Config{MaxMem: mib}); err != nil {
			t.Fatal(err)
		}
	}
	ids := h.DomainIDs()
	if len(ids) != 5 {
		t.Fatalf("DomainIDs len = %d", len(ids))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatalf("ids not ascending: %v", ids)
		}
	}
}

func TestHypercallsAdvanceClock(t *testing.T) {
	clock := sim.NewClock()
	h := New(clock, 8*1024*mib)
	before := clock.Now()
	d, _ := h.CreateDomain(Config{MaxMem: 8 * mib})
	_ = h.PopulatePhysmap(d.ID, 8*mib)
	if clock.Now() <= before {
		t.Fatal("hypercalls did not consume virtual time")
	}
	if h.Count.Hypercalls < 2 {
		t.Fatalf("hypercall counter = %d", h.Count.Hypercalls)
	}
}

func TestEventChannelFlow(t *testing.T) {
	h := newHV()
	d, _ := h.CreateDomain(Config{MaxMem: mib})
	p, err := h.AllocUnboundPort(0, d.ID)
	if err != nil {
		t.Fatal(err)
	}
	fired := 0
	if err := h.BindPort(p, d.ID, func() { fired++ }); err != nil {
		t.Fatal(err)
	}
	if err := h.Send(p); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("handler fired %d times", fired)
	}
	if h.PortPending(p) != 1 {
		t.Fatalf("pending = %d", h.PortPending(p))
	}
	if err := h.ClosePort(p); err != nil {
		t.Fatal(err)
	}
	if err := h.Send(p); err == nil {
		t.Fatal("send on closed port succeeded")
	}
}

func TestBindPortWrongPeerRejected(t *testing.T) {
	h := newHV()
	d, _ := h.CreateDomain(Config{MaxMem: mib})
	e, _ := h.CreateDomain(Config{MaxMem: mib})
	p, _ := h.AllocUnboundPort(0, d.ID)
	if err := h.BindPort(p, e.ID, func() {}); err == nil {
		t.Fatal("bind from wrong peer accepted")
	}
}

func TestSendUnboundPortNoHandler(t *testing.T) {
	h := newHV()
	d, _ := h.CreateDomain(Config{MaxMem: mib})
	p, _ := h.AllocUnboundPort(0, d.ID)
	if err := h.Send(p); err != nil { // event is queued, no upcall
		t.Fatal(err)
	}
}

func TestGrantFlow(t *testing.T) {
	h := newHV()
	d, _ := h.CreateDomain(Config{MaxMem: mib})
	r, err := h.GrantAccess(d.ID, 0, 0x1000, false)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := h.MapGrant(r, 0)
	if err != nil {
		t.Fatal(err)
	}
	if frame != 0x1000 {
		t.Fatalf("mapped frame %#x", frame)
	}
	if _, err := h.MapGrant(r, DomID(99)); err == nil {
		t.Fatal("map by wrong peer accepted")
	}
	if err := h.EndGrant(r); err != nil {
		t.Fatal(err)
	}
	if _, err := h.MapGrant(r, 0); err == nil {
		t.Fatal("map of revoked grant accepted")
	}
}

func TestDestroyCleansChannelsAndGrants(t *testing.T) {
	h := newHV()
	d, _ := h.CreateDomain(Config{MaxMem: mib})
	_ = h.PopulatePhysmap(d.ID, mib)
	p, _ := h.AllocUnboundPort(d.ID, 0)
	r, _ := h.GrantAccess(d.ID, 0, 1, true)
	if err := h.DestroyDomain(d.ID); err != nil {
		t.Fatal(err)
	}
	if err := h.Send(p); err == nil {
		t.Fatal("channel survived domain destroy")
	}
	if _, err := h.MapGrant(r, 0); err == nil {
		t.Fatal("grant survived domain destroy")
	}
	if h.NumPorts() != 0 || h.NumGrants() != 0 {
		t.Fatalf("leak: ports=%d grants=%d", h.NumPorts(), h.NumGrants())
	}
}

func TestDevicePage(t *testing.T) {
	h := newHV()
	d, _ := h.CreateDomain(Config{MaxMem: mib})
	if err := h.CreateDevicePage(d.ID); err != nil {
		t.Fatal(err)
	}
	e := DevEntry{Kind: DevVif, Index: 0, BackendID: 0, Evtchn: 7, CtrlGrant: 9, MAC: "00:16:3e:00:00:01"}
	if err := h.DevicePageWrite(0, d.ID, e); err != nil {
		t.Fatal(err)
	}
	got, err := h.DevicePageMap(d.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].MAC != e.MAC || got[0].Evtchn != 7 {
		t.Fatalf("device page read %+v", got)
	}
	// Snapshot semantics: mutating the returned slice must not affect
	// the page.
	got[0].MAC = "mutated"
	got2, _ := h.DevicePageMap(d.ID)
	if got2[0].MAC != e.MAC {
		t.Fatal("DevicePageMap returned aliased storage")
	}
	if err := h.DevicePageRemove(0, d.ID, DevVif, 0); err != nil {
		t.Fatal(err)
	}
	if err := h.DevicePageRemove(0, d.ID, DevVif, 0); err == nil {
		t.Fatal("double remove accepted")
	}
}

func TestDevicePageOnlyDom0Writes(t *testing.T) {
	h := newHV()
	d, _ := h.CreateDomain(Config{MaxMem: mib})
	err := h.DevicePageWrite(d.ID, d.ID, DevEntry{Kind: DevVif})
	if !errors.Is(err, ErrNotPrivileged) {
		t.Fatalf("guest write to device page: %v", err)
	}
	if err := h.DevicePageRemove(d.ID, d.ID, DevVif, 0); !errors.Is(err, ErrNotPrivileged) {
		t.Fatalf("guest remove from device page: %v", err)
	}
}

func TestDevicePageFull(t *testing.T) {
	h := newHV()
	d, _ := h.CreateDomain(Config{MaxMem: mib})
	for i := 0; i < DevicePageSlots; i++ {
		if err := h.DevicePageWrite(0, d.ID, DevEntry{Kind: DevVif, Index: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.DevicePageWrite(0, d.ID, DevEntry{Kind: DevVif, Index: 99}); !errors.Is(err, ErrDevPageFull) {
		t.Fatalf("overfull device page: %v", err)
	}
}

func TestSuspendAndResume(t *testing.T) {
	h := newHV()
	d, _ := h.CreateDomain(Config{MaxMem: 8 * mib})
	_ = h.PopulatePhysmap(d.ID, 8*mib)
	_ = h.LoadImage(d.ID, "daytime", 480*1024)
	_ = h.Unpause(d.ID)
	if err := h.Suspend(d.ID, "suspend"); err != nil {
		t.Fatal(err)
	}
	if d.State != StateSuspended || d.ShutdownReason != "suspend" {
		t.Fatalf("state=%v reason=%q", d.State, d.ShutdownReason)
	}
	if err := h.Unpause(d.ID); err != nil {
		t.Fatal(err)
	}
	if d.State != StateRunning {
		t.Fatalf("resume left state %v", d.State)
	}
}

func TestStateString(t *testing.T) {
	if StateRunning.String() != "running" || State(99).String() == "" {
		t.Fatal("State.String broken")
	}
	if DevSysctl.String() != "sysctl" || DevKind(99).String() == "" {
		t.Fatal("DevKind.String broken")
	}
}

func TestManyDomainsMemoryAccounting(t *testing.T) {
	h := New(sim.NewClock(), 64*1024*mib)
	base := h.UsedMemBytes()
	const n = 100
	for i := 0; i < n; i++ {
		d, err := h.CreateDomain(Config{MaxMem: 8 * mib})
		if err != nil {
			t.Fatal(err)
		}
		if err := h.PopulatePhysmap(d.ID, 8*mib); err != nil {
			t.Fatal(err)
		}
	}
	got := h.UsedMemBytes() - base
	if got != n*8*mib {
		t.Fatalf("guest memory accounted %d, want %d", got, n*8*mib)
	}
	for _, id := range h.DomainIDs() {
		if err := h.DestroyDomain(id); err != nil {
			t.Fatal(err)
		}
	}
	if h.UsedMemBytes() != base {
		t.Fatal("memory not fully released after mass destroy")
	}
}

func TestPopulateSharedDedup(t *testing.T) {
	h := newHV()
	used0 := h.UsedMemBytes()
	var doms []*Domain
	for i := 0; i < 10; i++ {
		d, err := h.CreateDomain(Config{MaxMem: 8 * mib})
		if err != nil {
			t.Fatal(err)
		}
		if err := h.PopulatePhysmap(d.ID, 4*mib); err != nil {
			t.Fatal(err)
		}
		if err := h.PopulateShared(d.ID, "img:shared-kernel", 4*mib); err != nil {
			t.Fatal(err)
		}
		if d.MemBytes != 8*mib || d.SharedBytes != 4*mib {
			t.Fatalf("dom accounting: mem=%d shared=%d", d.MemBytes, d.SharedBytes)
		}
		doms = append(doms, d)
	}
	// Host pays 10×4MiB private + 1×4MiB shared.
	wantHost := uint64(10*4*mib + 4*mib)
	if got := h.UsedMemBytes() - used0; got != wantHost {
		t.Fatalf("host usage = %d, want %d", got, wantHost)
	}
	if h.Share.Refs("img:shared-kernel") != 10 {
		t.Fatalf("share refs = %d", h.Share.Refs("img:shared-kernel"))
	}
	// Destroying releases both private and shared references.
	for _, d := range doms {
		if err := h.DestroyDomain(d.ID); err != nil {
			t.Fatal(err)
		}
	}
	if h.UsedMemBytes() != used0 {
		t.Fatalf("leak after destroy: %d vs %d", h.UsedMemBytes(), used0)
	}
	if h.Share.Regions() != 0 {
		t.Fatal("shared region survived all sharers")
	}
}

func TestPopulateSharedCheaperThanPrivate(t *testing.T) {
	clock := sim.NewClock()
	h := New(clock, 8*1024*mib)
	d1, _ := h.CreateDomain(Config{MaxMem: 64 * mib})
	t0 := clock.Now()
	_ = h.PopulatePhysmap(d1.ID, 32*mib)
	privateCost := clock.Now().Sub(t0)
	d2, _ := h.CreateDomain(Config{MaxMem: 64 * mib})
	_ = h.PopulateShared(d2.ID, "k", 32*mib) // first sharer allocates
	d3, _ := h.CreateDomain(Config{MaxMem: 64 * mib})
	t1 := clock.Now()
	_ = h.PopulateShared(d3.ID, "k", 32*mib) // hit: mapping only
	sharedCost := clock.Now().Sub(t1)
	if sharedCost >= privateCost {
		t.Fatalf("shared mapping (%v) not cheaper than populate (%v)", sharedCost, privateCost)
	}
}

func TestDestroyReleasesPeerGrants(t *testing.T) {
	h := newHV()
	d, _ := h.CreateDomain(Config{MaxMem: mib})
	// Classic backend shape: Dom0 grants its pages to the guest.
	r, err := h.GrantAccess(0, d.ID, 42, false)
	if err != nil {
		t.Fatal(err)
	}
	own, err := h.GrantAccess(d.ID, 0, 7, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.DestroyDomain(d.ID); err != nil {
		t.Fatal(err)
	}
	if h.HasGrant(r) {
		t.Fatal("Dom0→guest grant survived the guest's destruction")
	}
	if h.HasGrant(own) {
		t.Fatal("guest-owned grant survived the guest's destruction")
	}
	if h.NumGrants() != 0 {
		t.Fatalf("%d grants leaked after destroy", h.NumGrants())
	}
}

func TestEndpointIntrospectionIsClockFree(t *testing.T) {
	h := newHV()
	d, _ := h.CreateDomain(Config{MaxMem: mib})
	p, _ := h.AllocUnboundPort(0, d.ID)
	g, _ := h.GrantAccess(0, d.ID, 1, false)
	before := h.Clock.Now()
	pe := h.PortEndpoints()
	ge := h.GrantEndpoints()
	_ = h.HasPort(p)
	_ = h.HasGrant(g)
	if h.Clock.Now() != before {
		t.Fatal("introspection charged virtual time")
	}
	if len(pe) != 1 || pe[0] != (Endpoint{Owner: 0, Peer: d.ID}) {
		t.Fatalf("PortEndpoints = %+v", pe)
	}
	if len(ge) != 1 || ge[0] != (Endpoint{Owner: 0, Peer: d.ID}) {
		t.Fatalf("GrantEndpoints = %+v", ge)
	}
}
